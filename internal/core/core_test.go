package core

import (
	"strings"
	"testing"

	"dsprof/internal/analyzer"
	"dsprof/internal/cc"
	"dsprof/internal/hwc"
	"dsprof/internal/machine"
	"dsprof/internal/mcf"
)

// Tests run a reduced-scale study (the benchmarks in bench_test.go run
// the full paper-scale study); the qualitative shape assertions here are
// the ones the paper's figures rest on.

const testTrips = 500

var testStudy *Study

func studyForTest(t *testing.T) *Study {
	t.Helper()
	if testStudy == nil {
		p := DefaultStudy()
		p.Trips = testTrips
		// Scale the TLB down with the instance so the DTLB shape of the
		// paper-scale study (whose node array exceeds the TLB reach)
		// also appears at test scale.
		cfg := StudyMachine()
		cfg.TLB.Entries = 8
		p.Machine = &cfg
		s, err := RunStudy(p)
		if err != nil {
			t.Fatal(err)
		}
		testStudy = s
	}
	return testStudy
}

func TestStudySolvesCorrectly(t *testing.T) {
	s := studyForTest(t)
	// The profiled program's answer must equal the independent Go
	// solvers' optimum.
	ins := mcf.Generate(mcf.DefaultGenParams(testTrips, s.Params.Seed))
	want, err := mcf.SolveSSP(ins)
	if err != nil {
		t.Fatal(err)
	}
	if s.Output.Cost != want {
		t.Fatalf("profiled MCF cost %d, SSP optimum %d", s.Output.Cost, want)
	}
	goCost, goStats, err := mcf.SolveNetSimplex(ins)
	if err != nil {
		t.Fatal(err)
	}
	if goCost != want || int64(goStats.Pivots) != s.Output.Pivots {
		t.Fatalf("Go twin disagrees: cost=%d pivots=%d vs MC pivots=%d", goCost, goStats.Pivots, s.Output.Pivots)
	}
}

func TestStudyFunctionShape(t *testing.T) {
	s := studyForTest(t)
	// refresh_potential and primal_bea_mpp must dominate, with
	// refresh_potential owning the majority of E$ stall and DTLB misses
	// (paper Figure 2: 62% and 88%).
	refreshStall := s.FunctionShare("refresh_potential", hwc.EvECStall, false)
	beaStall := s.FunctionShare("primal_bea_mpp", hwc.EvECStall, false)
	if refreshStall < 0.3 {
		t.Errorf("refresh_potential E$ stall share %.2f, want >= 0.3", refreshStall)
	}
	if refreshStall+beaStall < 0.7 {
		t.Errorf("top-2 functions E$ stall share %.2f, want >= 0.7", refreshStall+beaStall)
	}
	// At full study scale refresh_potential owns the large majority of
	// DTLB misses (paper: 88%; the paper-scale study in bench_test.go
	// measures ~85%). At this reduced test scale the node:arc page ratio
	// shifts, so only require a substantial share.
	refreshDTLB := s.FunctionShare("refresh_potential", hwc.EvDTLBMiss, false)
	if refreshDTLB < 0.2 {
		t.Errorf("refresh_potential DTLB share %.2f, want >= 0.2", refreshDTLB)
	}
	// primal_bea_mpp: many E$ refs relative to its read misses — the
	// paper's sequential-scan signature (0.6%% miss rate vs 10.3%% for
	// refresh_potential).
	beaRefs := s.FunctionShare("primal_bea_mpp", hwc.EvECRef, false)
	beaMiss := s.FunctionShare("primal_bea_mpp", hwc.EvECRdMiss, false)
	refreshRefs := s.FunctionShare("refresh_potential", hwc.EvECRef, false)
	refreshMiss := s.FunctionShare("refresh_potential", hwc.EvECRdMiss, false)
	if beaMiss/beaRefs >= refreshMiss/refreshRefs {
		t.Errorf("miss-per-ref shape wrong: bea %.2f >= refresh %.2f",
			beaMiss/beaRefs, refreshMiss/refreshRefs)
	}
}

func TestStudyDataObjectShape(t *testing.T) {
	s := studyForTest(t)
	arc := s.ObjectShare("arc", hwc.EvECStall)
	node := s.ObjectShare("node", hwc.EvECStall)
	// Paper Figure 6: arc 56%, node 42%, everything else negligible.
	if arc+node < 0.85 {
		t.Errorf("arc+node stall share %.2f, want >= 0.85 (paper: 98%%)", arc+node)
	}
	if arc < 0.25 || node < 0.25 {
		t.Errorf("arc %.2f / node %.2f: both must carry substantial stall", arc, node)
	}
}

func TestStudyMemberShape(t *testing.T) {
	s := studyForTest(t)
	id, _ := s.Analyzer.Tab.TypeByName("node")
	rows := s.Analyzer.Members(id)
	stallOf := func(name string) uint64 {
		for _, r := range rows {
			if strings.Contains(r.Name, " "+name+"}") {
				return r.M.Events[hwc.EvECStall]
			}
		}
		return 0
	}
	// Paper Figure 7: child, orientation and potential dominate node
	// stall; cold members (number, mark) are negligible.
	hot := stallOf("child") + stallOf("orientation") + stallOf("potential") +
		stallOf("pred") + stallOf("basic_arc")
	cold := stallOf("number") + stallOf("mark") + stallOf("firstout") + stallOf("firstin")
	if hot == 0 {
		t.Fatal("no stall attributed to hot node members")
	}
	if cold*5 > hot {
		t.Errorf("cold members too hot: hot=%d cold=%d", hot, cold)
	}
}

func TestStudyEffectiveness(t *testing.T) {
	s := studyForTest(t)
	a := s.Analyzer
	// Paper §3.2.5: >99% for E$ stall, ~100% for E$ read misses, 100%
	// for DTLB (precise), ~94% for E$ refs (widest skid).
	if eff := a.Effectiveness(hwc.EvECStall); eff < 0.97 {
		t.Errorf("E$ stall effectiveness %.3f, want >= 0.97", eff)
	}
	if eff := a.Effectiveness(hwc.EvECRdMiss); eff < 0.97 {
		t.Errorf("E$ read miss effectiveness %.3f, want >= 0.97", eff)
	}
	if eff := a.Effectiveness(hwc.EvDTLBMiss); eff < 0.995 {
		t.Errorf("DTLB effectiveness %.3f, want ~1 (precise)", eff)
	}
	ecref := a.Effectiveness(hwc.EvECRef)
	if ecref < 0.75 || ecref >= a.Effectiveness(hwc.EvECRdMiss) {
		t.Errorf("E$ ref effectiveness %.3f: must be high but below the stall/miss metrics", ecref)
	}
}

func TestStudyFiguresRender(t *testing.T) {
	s := studyForTest(t)
	var b strings.Builder
	s.Figure1(&b)
	if !strings.Contains(b.String(), "E$ Read Miss Rate") {
		t.Error("Figure 1 incomplete")
	}
	b.Reset()
	s.Figure2(&b)
	if !strings.Contains(b.String(), "refresh_potential") {
		t.Error("Figure 2 incomplete")
	}
	b.Reset()
	if err := s.Figure3(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "node->orientation == 1") {
		t.Errorf("Figure 3 missing critical-loop source:\n%s", b.String())
	}
	b.Reset()
	if err := s.Figure4(&b); err != nil {
		t.Fatal(err)
	}
	dis := b.String()
	for _, want := range []string{"ldx", "{structure:node -}{long orientation}", "<branch target>"} {
		if !strings.Contains(dis, want) {
			t.Errorf("Figure 4 missing %q", want)
		}
	}
	b.Reset()
	s.Figure5(&b, 10)
	if !strings.Contains(b.String(), "{structure:") {
		t.Error("Figure 5 missing data-object descriptors")
	}
	b.Reset()
	s.Figure6(&b)
	if !strings.Contains(b.String(), "{structure:arc -}") || !strings.Contains(b.String(), "effectiveness") {
		t.Error("Figure 6 incomplete")
	}
	b.Reset()
	if err := s.Figure7(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "+56") || !strings.Contains(b.String(), "split across") {
		t.Errorf("Figure 7 incomplete:\n%s", b.String())
	}
}

func TestFigure4CriticalLoopLooksLikeThePaper(t *testing.T) {
	// The annotated disassembly of refresh_potential's critical loop must
	// show the paper's signature: costly metrics on the orientation and
	// cost loads, with data-object descriptors naming them.
	s := studyForTest(t)
	var b strings.Builder
	if err := s.Figure4(&b); err != nil {
		t.Fatal(err)
	}
	dis := b.String()
	for _, want := range []string{
		"{structure:node -}{long orientation}",
		"{structure:node -}{pointer+structure:node child}",
		"{structure:arc -}{cost_t=long cost}",
		"{structure:node -}{cost_t=long potential}",
		"{structure:node -}{pointer+structure:node pred}",
	} {
		if !strings.Contains(dis, want) {
			t.Errorf("critical loop missing annotation %q", want)
		}
	}
}

func TestSplitObjectsPaperLayout(t *testing.T) {
	s := studyForTest(t)
	st, err := s.Analyzer.SplitObjects("node")
	if err != nil {
		t.Fatal(err)
	}
	if st.Size != 120 || st.LineBytes != 512 {
		t.Fatalf("split stats geometry wrong: %+v", st)
	}
	// 120-byte objects on a 16-byte-aligned base: roughly one in five
	// straddles a 512-byte line (the paper reports 28% for its layout).
	if f := st.Fraction(); f < 0.10 || f > 0.35 {
		t.Errorf("split fraction %.2f outside the plausible band", f)
	}
}

func TestPaperIntervalDefaults(t *testing.T) {
	iv := PaperIntervals{}.withDefaults()
	if iv.ECStall == 0 || iv.ECRdMiss == 0 || iv.ECRef == 0 || iv.DTLBMiss == 0 {
		t.Error("defaults incomplete")
	}
	iv2 := PaperIntervals{ECStall: 5}.withDefaults()
	if iv2.ECStall != 5 {
		t.Error("explicit interval overridden")
	}
}

func TestCompileDefaultsToHWCProf(t *testing.T) {
	prog, err := Compile("t", []cc.Source{{Name: "t.mc", Text: "long main() { return 0; }"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f := prog.Debug.FuncByName("main"); f == nil || !f.HWCProf {
		t.Error("Compile default did not enable memory profiling")
	}
}

func TestRunOnceAppliesHeapPageSize(t *testing.T) {
	src := `
long main() {
	long *p;
	long i;
	long s;
	p = (long *) malloc(1024 * 1024 * 16);
	s = 0;
	for (i = 0; i < 16384; i++) { s += p[i * 128]; }
	return s;
}`
	small, err := Compile("t", []cc.Source{{Name: "t.mc", Text: src}}, &cc.Options{HWCProf: true})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Compile("t", []cc.Source{{Name: "t.mc", Text: src}}, &cc.Options{HWCProf: true, PageSizeHeap: 512 << 10})
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.ScaledConfig()
	m1, err := RunOnce(small, nil, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := RunOnce(big, nil, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Stats().DTLBMisses*10 >= m1.Stats().DTLBMisses {
		t.Errorf("512K pages: %d misses vs %d with 8K — expected >10x reduction",
			m2.Stats().DTLBMisses, m1.Stats().DTLBMisses)
	}
}

func TestCollectRunSpec(t *testing.T) {
	prog, err := Compile("t", []cc.Source{{Name: "t.mc", Text: "long main() { return 0; }"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.ScaledConfig()
	res, err := CollectRun(prog, nil, &cfg, true, "+ecrm,1009")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exp.Meta.ClockProfiling {
		t.Error("clock profiling not enabled")
	}
	if _, err := CollectRun(prog, nil, &cfg, false, "nonsense,1"); err == nil {
		t.Error("bad counter spec accepted")
	}
}

func TestAblationNoPaddingReducesValidation(t *testing.T) {
	// Compile MCF without -xhwcprof but with DWARF: xrefs and branch
	// targets are absent, so every backtracked event is (Unascertainable)
	// and the data-object view collapses — the compiler-support ablation.
	prog, err := mcf.Program(mcf.LayoutPaper, cc.Options{HWCProf: false})
	if err != nil {
		t.Fatal(err)
	}
	ins := mcf.Generate(mcf.DefaultGenParams(300, 7))
	cfg := StudyMachine()
	res, err := CollectRun(prog, ins.Encode(), &cfg, false, "+ecstall,20011")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(res.Exp)
	if err != nil {
		t.Fatal(err)
	}
	if eff := a.Effectiveness(hwc.EvECStall); eff > 0.10 {
		t.Errorf("without -xhwcprof, effectiveness should collapse; got %.2f", eff)
	}
	for _, r := range a.DataObjects(analyzer.ByEvent(hwc.EvECStall)) {
		if strings.HasPrefix(r.Name, "{structure:") && r.M.Events[hwc.EvECStall] > 0 {
			t.Errorf("struct attribution %s without compiler support", r.Name)
		}
	}
}
