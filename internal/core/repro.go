package core

import (
	"fmt"
	"io"

	"dsprof/internal/analyzer"
	"dsprof/internal/cc"
	"dsprof/internal/hwc"
	"dsprof/internal/machine"
	"dsprof/internal/mcf"
	"dsprof/internal/tlb"
)

// repro.go is the paper-reproduction harness: it runs the MCF case study
// (§3) end to end and regenerates each figure of the evaluation. The
// study runs on a proportionally scaled system (see StudyMachine) with
// instance sizes chosen so the working-set:cache ratios match the
// paper's regime; EXPERIMENTS.md records paper-vs-measured values.

// StudyParams configure one MCF profiling study.
type StudyParams struct {
	Trips  int
	Seed   uint64
	Layout mcf.Layout
	// PageSizeHeap compiles with -xpagesize_heap (0 = default 8 KB).
	PageSizeHeap uint64
	// HWCProf disables -xhwcprof when false (overhead experiment).
	HWCProf bool
	Machine *machine.Config
}

// DefaultStudy returns the standard scaled study setup.
func DefaultStudy() StudyParams {
	return StudyParams{Trips: 1200, Seed: 20030717, Layout: mcf.LayoutPaper, HWCProf: true}
}

// StudyMachine is the scaled stand-in for the paper's 900 MHz
// UltraSPARC-III Cu (Sun Fire 280R): cache line sizes and associativities
// are the real machine's; capacities are scaled 1/16 so that the scaled
// MCF instances stress the hierarchy exactly as the full-size benchmark
// stressed the real 8 MB E$.
func StudyMachine() machine.Config {
	cfg := machine.DefaultConfig()
	cfg.DCache.SizeBytes = 4 << 10   // 64 KB / 16
	cfg.ECache.SizeBytes = 512 << 10 // 8 MB / 16
	cfg.TLB = tlb.Config{Entries: 128, Assoc: 2}
	cfg.MaxInstrs = 20_000_000_000
	return cfg
}

// Study is a completed MCF profiling study: the merged analyzer plus the
// raw run results.
type Study struct {
	Params   StudyParams
	Analyzer *analyzer.Analyzer
	Output   *mcf.Output
	Cycles   uint64
	Seconds  float64
}

// RunStudy compiles MCF with the requested layout/flags, generates the
// instance, runs the paper's two profiled experiments and merges them.
func RunStudy(p StudyParams) (*Study, error) {
	if p.Trips == 0 {
		p = DefaultStudy()
	}
	prog, err := mcf.Program(p.Layout, cc.Options{
		HWCProf:      p.HWCProf,
		PageSizeHeap: p.PageSizeHeap,
	})
	if err != nil {
		return nil, err
	}
	ins := mcf.Generate(mcf.DefaultGenParams(p.Trips, p.Seed))
	cfg := StudyMachine()
	if p.Machine != nil {
		cfg = *p.Machine
	}
	a, resA, _, err := ProfilePaperStyle(prog, ins.Encode(), &cfg, PaperIntervals{})
	if err != nil {
		return nil, err
	}
	out, err := mcf.ParseOutput(resA.Machine.OutputLongs())
	if err != nil {
		return nil, err
	}
	if out.Status != 0 {
		return nil, fmt.Errorf("mcf run failed with status %d", out.Status)
	}
	st := resA.Machine.Stats()
	return &Study{
		Params:   p,
		Analyzer: a,
		Output:   out,
		Cycles:   st.Cycles,
		Seconds:  resA.Machine.Seconds(st.Cycles),
	}, nil
}

// TimeMCF runs MCF once without profiling and returns simulated cycles —
// the measurement behind the §3.3 speedup and §2.1 overhead experiments.
func TimeMCF(p StudyParams) (uint64, *mcf.Output, error) {
	prog, err := mcf.Program(p.Layout, cc.Options{
		HWCProf:      p.HWCProf,
		PageSizeHeap: p.PageSizeHeap,
	})
	if err != nil {
		return 0, nil, err
	}
	ins := mcf.Generate(mcf.DefaultGenParams(p.Trips, p.Seed))
	cfg := StudyMachine()
	if p.Machine != nil {
		cfg = *p.Machine
	}
	m, err := RunOnce(prog, ins.Encode(), &cfg)
	if err != nil {
		return 0, nil, err
	}
	out, err := mcf.ParseOutput(m.OutputLongs())
	if err != nil {
		return 0, nil, err
	}
	if out.Status != 0 {
		return 0, nil, fmt.Errorf("mcf run failed with status %d", out.Status)
	}
	return m.Stats().Cycles, out, nil
}

// --- figure renderers ---

// Figure1 renders the <Total> metrics (paper Figure 1).
func (s *Study) Figure1(w io.Writer) {
	fmt.Fprintf(w, "Figure 1: performance metrics for <Total>  (trips=%d, layout=%v)\n\n",
		s.Params.Trips, s.Params.Layout)
	s.Analyzer.TotalReport(w)
}

// Figure2 renders the function list (paper Figure 2).
func (s *Study) Figure2(w io.Writer) {
	fmt.Fprintf(w, "Figure 2: the function list\n\n")
	s.Analyzer.FunctionList(w, analyzer.ByUserCPU)
}

// Figure3 renders the annotated source of refresh_potential's critical
// loop (paper Figure 3).
func (s *Study) Figure3(w io.Writer) error {
	fmt.Fprintf(w, "Figure 3: annotated source of refresh_potential\n\n")
	return s.Analyzer.AnnotatedSource(w, "refresh_potential")
}

// Figure4 renders the annotated disassembly of refresh_potential (paper
// Figure 4).
func (s *Study) Figure4(w io.Writer) error {
	fmt.Fprintf(w, "Figure 4: annotated disassembly of refresh_potential\n\n")
	return s.Analyzer.AnnotatedDisasm(w, "refresh_potential")
}

// Figure5 renders the top PCs ranked by E$ read misses (paper Figure 5).
func (s *Study) Figure5(w io.Writer, n int) {
	fmt.Fprintf(w, "Figure 5: PCs ranked by E$ Read Misses\n\n")
	s.Analyzer.PCList(w, analyzer.ByEvent(hwc.EvECRdMiss), n)
}

// Figure6 renders the data objects ranked by E$ stall cycles (paper
// Figure 6), plus the backtracking-effectiveness summary the paper
// derives from it.
func (s *Study) Figure6(w io.Writer) {
	fmt.Fprintf(w, "Figure 6: data objects ranked by E$ Stall Cycles\n\n")
	s.Analyzer.DataObjectList(w, analyzer.ByEvent(hwc.EvECStall))
	fmt.Fprintf(w, "\n")
	s.Analyzer.EffectivenessReport(w)
}

// Figure7 renders the structure:node member expansion (paper Figure 7)
// and the split-object statistic discussed with it.
func (s *Study) Figure7(w io.Writer) error {
	fmt.Fprintf(w, "Figure 7: data object structure:node expansion\n\n")
	if err := s.Analyzer.MemberList(w, "node"); err != nil {
		return err
	}
	st, err := s.Analyzer.SplitObjects("node")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\n%d-byte node objects split across %d-byte E$ lines: %d of %d (%.0f%%)\n",
		st.Size, st.LineBytes, st.Split, st.Total, 100*st.Fraction())
	return nil
}

// FunctionShare returns a function's share (0..1) of the given metric,
// for shape assertions in tests and EXPERIMENTS.md.
func (s *Study) FunctionShare(fn string, ev hwc.Event, clock bool) float64 {
	rows := s.Analyzer.Functions(analyzer.ByUserCPU)
	var total, val float64
	for _, r := range rows {
		if r.Name == "<Total>" {
			if clock {
				total = float64(r.M.Ticks)
			} else {
				total = float64(r.M.Events[ev])
			}
		}
		if r.Name == fn {
			if clock {
				val = float64(r.M.Ticks)
			} else {
				val = float64(r.M.Events[ev])
			}
		}
	}
	if total == 0 {
		return 0
	}
	return val / total
}

// ObjectShare returns a struct type's share (0..1) of the given metric
// across all data objects.
func (s *Study) ObjectShare(structName string, ev hwc.Event) float64 {
	id, ty := s.Analyzer.Tab.TypeByName(structName)
	if ty == nil {
		return 0
	}
	m := s.Analyzer.ObjMetrics(id)
	total := s.Analyzer.Total()
	if total.Events[ev] == 0 {
		return 0
	}
	return float64(m.Events[ev]) / float64(total.Events[ev])
}
