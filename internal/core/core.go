// Package core is the top-level façade of the data-space profiling
// system: one-call helpers that chain the compiler, the collector and the
// analyzer (compile → collect → analyze), plus the paper-reproduction
// harness for the MCF case study (see repro.go).
//
// The pipeline mirrors the paper's user model (§2): compile the target
// with the memory-profiling options, run collect with clock- and/or
// hardware-counter profiling, and analyze the resulting experiments.
package core

import (
	"context"
	"fmt"

	"dsprof/internal/analyzer"
	"dsprof/internal/asm"
	"dsprof/internal/cc"
	"dsprof/internal/collect"
	"dsprof/internal/experiment"
	"dsprof/internal/machine"
)

// Compile builds an MC program with the paper's memory-profiling flags
// enabled by default (-xhwcprof -xdebugformat=dwarf).
func Compile(name string, sources []cc.Source, opts *cc.Options) (*asm.Program, error) {
	o := cc.Options{HWCProf: true}
	if opts != nil {
		o = *opts
	}
	if o.Name == "" {
		o.Name = name
	}
	return cc.Compile(sources, o)
}

// CollectRun performs one profiled run, like a collect(1) invocation:
// counterSpec uses the paper's syntax ("+ecstall,lo,+ecrm,on"), and
// clockProfile corresponds to -p on.
func CollectRun(prog *asm.Program, input []int64, cfg *machine.Config, clockProfile bool, counterSpec string) (*collect.Result, error) {
	specs, err := collect.ParseCounterSpec(counterSpec)
	if err != nil {
		return nil, err
	}
	return collect.Run(prog, collect.Options{
		ClockProfile: clockProfile,
		Counters:     specs,
		Machine:      cfg,
		Input:        input,
	})
}

// CollectRunContext is CollectRun with job-level cancellation and an
// explicit clock-profiling interval — the entry point profiling services
// (internal/profd) use for each scheduled run. A zero clockTick picks
// the collector's default.
func CollectRunContext(ctx context.Context, prog *asm.Program, input []int64, cfg *machine.Config, clockProfile bool, clockTick uint64, counterSpec string) (*collect.Result, error) {
	return CollectRunContextProv(ctx, prog, input, cfg, clockProfile, clockTick, counterSpec, false)
}

// CollectRunContextProv is CollectRunContext with allocation-site
// provenance collection switchable: with provenance on, the run also
// records every heap block's (site, instance, lifetime) into the
// experiment's prov.pv2 shards, feeding the object-centric reports.
// With it off the result is byte-identical to CollectRunContext.
func CollectRunContextProv(ctx context.Context, prog *asm.Program, input []int64, cfg *machine.Config, clockProfile bool, clockTick uint64, counterSpec string, provenance bool) (*collect.Result, error) {
	return CollectRunContextJob(ctx, prog, input, cfg, clockProfile, clockTick, counterSpec, provenance, "")
}

// CollectRunContextJob is CollectRunContextProv with the execution
// backend selectable ("", "translated", or "fast" — see
// machine.ParseBackend). Scheduled services pass a job's Backend field
// through here; the experiment produced is byte-identical whichever
// engine runs it.
func CollectRunContextJob(ctx context.Context, prog *asm.Program, input []int64, cfg *machine.Config, clockProfile bool, clockTick uint64, counterSpec string, provenance bool, backend string) (*collect.Result, error) {
	specs, err := collect.ParseCounterSpec(counterSpec)
	if err != nil {
		return nil, err
	}
	return collect.RunContext(ctx, prog, collect.Options{
		ClockProfile:        clockProfile,
		ClockIntervalCycles: clockTick,
		Counters:            specs,
		Machine:             cfg,
		Input:               input,
		Provenance:          provenance,
		Backend:             backend,
	})
}

// Analyze reduces one or more experiments.
func Analyze(exps ...*experiment.Experiment) (*analyzer.Analyzer, error) {
	return analyzer.New(exps...)
}

// ProfilePaperStyle performs the paper's full two-experiment collection
// (§3.1): experiment A with clock profiling plus E$ stall cycles and E$
// read misses, experiment B with E$ references and DTLB misses, all with
// apropos backtracking — then merges them in one analyzer.
//
// The overflow intervals are chosen from the run length budget: pass the
// expected total cycles (0 picks conservative defaults).
func ProfilePaperStyle(prog *asm.Program, input []int64, cfg *machine.Config, intervals PaperIntervals) (*analyzer.Analyzer, *collect.Result, *collect.Result, error) {
	iv := intervals.withDefaults()
	specsA, err := collect.ParseCounterSpec(fmt.Sprintf("+ecstall,%d,+ecrm,%d", iv.ECStall, iv.ECRdMiss))
	if err != nil {
		return nil, nil, nil, err
	}
	resA, err := collect.Run(prog, collect.Options{
		ClockProfile:        true,
		ClockIntervalCycles: iv.ClockTick,
		Counters:            specsA,
		Machine:             cfg,
		Input:               input,
	})
	if err != nil {
		return nil, nil, nil, fmt.Errorf("experiment A: %w", err)
	}
	specB := fmt.Sprintf("+ecref,%d,+dtlbm,%d", iv.ECRef, iv.DTLBMiss)
	resB, err := CollectRun(prog, input, cfg, false, specB)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("experiment B: %w", err)
	}
	a, err := Analyze(resA.Exp, resB.Exp)
	if err != nil {
		return nil, nil, nil, err
	}
	return a, resA, resB, nil
}

// PaperIntervals are the overflow intervals for the four counters of the
// paper's study. Zero fields get defaults suited to scaled runs (prime
// intervals, like the paper).
type PaperIntervals struct {
	ECStall  uint64
	ECRdMiss uint64
	ECRef    uint64
	DTLBMiss uint64
	// ClockTick is the clock-profiling interval in cycles; the default is
	// ~1 ms of the simulated clock (the paper's "high" rate), which gives
	// scaled runs enough samples for stable CPU-time shares.
	ClockTick uint64
}

func (p PaperIntervals) withDefaults() PaperIntervals {
	if p.ECStall == 0 {
		p.ECStall = 100003
	}
	if p.ECRdMiss == 0 {
		p.ECRdMiss = 2003
	}
	if p.ECRef == 0 {
		p.ECRef = 10007
	}
	if p.DTLBMiss == 0 {
		p.DTLBMiss = 997
	}
	if p.ClockTick == 0 {
		p.ClockTick = 900007 // ~1 ms at 900 MHz, prime
	}
	return p
}

// RunOnce executes a program without profiling and returns the machine
// (for timing comparisons such as the §3.3 speedup experiments).
func RunOnce(prog *asm.Program, input []int64, cfg *machine.Config) (*machine.Machine, error) {
	c := machine.DefaultConfig()
	if cfg != nil {
		c = *cfg
	}
	if prog.HeapPageSize != 0 {
		c.HeapPageSize = prog.HeapPageSize
	}
	m, err := machine.New(c)
	if err != nil {
		return nil, err
	}
	if err := m.LoadProgram(prog.Text, prog.Data, prog.Entry); err != nil {
		return nil, err
	}
	m.SetInput(input)
	if err := m.Run(); err != nil {
		return m, err
	}
	return m, nil
}
