package core

// faultsoak_test.go is the crash-point soak for the experiment
// pipeline: record the complete I/O trace of one spooled MCF collect
// (provisional header, shard spool, final save) through
// faultfs.Recorder, then for every operation boundary k — plus a torn
// variant for every write — materialize the directory a crash after
// operation k would leave behind, run experiment.Recover over it, and
// hold recovery to its contract:
//
//   - before the recovery floor (meta + program renamed into place)
//     Recover may refuse; after it, recovery must always succeed;
//   - the salvaged events are exactly the golden prefix the op trace
//     proves was durably written — no validated shard is ever lost and
//     none is ever fabricated;
//   - every registered report rendered from the salvaged directory
//     (the streamed, checksum-verified Open path) is byte-identical to
//     a reference reduction over the same golden prefix in memory.
//
// DSPROF_SOAK_TRIPS overrides the MCF input scale; DSPROF_SOAK_REPORT
// names a file to write the per-schedule recovery report to (the CI
// fault-soak job uploads it as an artifact).

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"testing"

	"dsprof/internal/analyzer"
	"dsprof/internal/cc"
	"dsprof/internal/collect"
	"dsprof/internal/experiment"
	"dsprof/internal/faultfs"
	"dsprof/internal/mcf"
)

// soakSchedule is one deterministic crash point: die after ops[:n]
// applied, optionally with half of write ops[n] reaching the disk.
type soakSchedule struct {
	n    int
	torn bool
}

// soakResult is one line of the recovery report artifact.
type soakResult struct {
	sched   soakSchedule
	outcome string // "unrecoverable" (pre-floor) or "recovered"
	detail  string
}

// soakReports is the report set compared between the recovered
// directory and the in-memory reference — the fixed paper reports with
// arguments, plus every registered extension.
func soakReports() []string {
	reports := []string{
		"total", "functions", "pcs", "lines", "objects", "addrspace",
		"effect", "feedback",
		"source=refresh_potential", "disasm=refresh_potential",
		"members=node", "callers=refresh_potential",
	}
	for _, name := range analyzer.ReportNames() {
		switch name {
		case "total", "functions", "source", "disasm", "pcs", "lines",
			"objects", "members", "callers", "addrspace", "feedback", "effect":
		default:
			reports = append(reports, name)
		}
	}
	return reports
}

func TestFaultSoakRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("fault soak replays hundreds of crash images; skipped with -short")
	}

	trips := 60
	if s := os.Getenv("DSPROF_SOAK_TRIPS"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v <= 0 {
			t.Fatalf("DSPROF_SOAK_TRIPS=%q: want a positive integer", s)
		}
		trips = v
	}

	// --- Record one full spooled collect + save. ---
	prog, err := mcf.Program(mcf.LayoutPaper, cc.Options{HWCProf: true})
	if err != nil {
		t.Fatal(err)
	}
	input := mcf.Generate(mcf.DefaultGenParams(trips, 20030717)).Encode()
	cfg := StudyMachine()
	cfg.TLB.Entries = 8 // scaled-down TLB so DTLB events appear at this scale
	specs, err := collect.ParseCounterSpec("+ecstall,2003,+dtlbm,127")
	if err != nil {
		t.Fatal(err)
	}
	rec := faultfs.NewRecorder(faultfs.OS)
	goldenDir := filepath.Join(t.TempDir(), "golden.er")
	res, err := collect.Run(prog, collect.Options{
		ClockProfile:        true,
		ClockIntervalCycles: 900007,
		Counters:            specs,
		Machine:             &cfg,
		Input:               input,
		SpoolDir:            goldenDir,
		SpoolShardEvents:    64,
		FS:                  rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Exp.SaveFS(rec, goldenDir); err != nil {
		t.Fatal(err)
	}
	ops := rec.Ops()

	golden, err := experiment.Load(goldenDir)
	if err != nil {
		t.Fatal(err)
	}
	man, err := experiment.ReadManifest(goldenDir)
	if err != nil {
		t.Fatal(err)
	}
	for pic := 0; pic < experiment.NumPICs; pic++ {
		if len(golden.HWC[pic]) == 0 {
			t.Fatalf("golden collect produced no PIC%d events; the soak would prove nothing", pic)
		}
	}
	if len(golden.Clock) == 0 {
		t.Fatal("golden collect produced no clock ticks")
	}

	// --- Derive, from the trace alone, when the recovery floor became
	// durable and how many spool shards each prefix completed. ---
	metaFinal := filepath.Join(goldenDir, "meta.gob")
	progFinal := filepath.Join(goldenDir, "program.obj")
	spoolPath := [experiment.NumPICs]string{}
	for pic := range spoolPath {
		spoolPath[pic] = filepath.Join(goldenDir, experiment.ShardFileName(pic))
	}
	// floorAt[n]: after ops[:n], both meta.gob and program.obj have been
	// renamed into place. shardsAt[n][pic]: spool shards whose header
	// and payload writes both completed within ops[:n]. The spool write
	// sequence per file is [magic][hdr0][pay0][hdr1][pay1]..., so w
	// completed writes mean (w-1)/2 whole shards.
	floorAt := make([]bool, len(ops)+1)
	shardsAt := make([][experiment.NumPICs]int, len(ops)+1)
	var metaDone, progDone bool
	var writes [experiment.NumPICs]int
	for n := 0; n <= len(ops); n++ {
		if n > 0 {
			op := ops[n-1]
			if op.Kind == faultfs.OpRename {
				metaDone = metaDone || op.Path2 == metaFinal
				progDone = progDone || op.Path2 == progFinal
			}
			if op.Kind == faultfs.OpWrite {
				for pic := range spoolPath {
					if op.Path == spoolPath[pic] {
						writes[pic]++
					}
				}
			}
		}
		floorAt[n] = metaDone && progDone
		for pic := range writes {
			if w := writes[pic]; w > 1 {
				shardsAt[n][pic] = (w - 1) / 2
			}
		}
	}
	if !floorAt[len(ops)] {
		t.Fatal("trace never renamed meta.gob and program.obj into place")
	}
	for pic := range writes {
		if shardsAt[len(ops)][pic] != len(man.Shards[pic]) {
			t.Fatalf("trace accounting says %d PIC%d shards, manifest certifies %d",
				shardsAt[len(ops)][pic], pic, len(man.Shards[pic]))
		}
	}

	// --- Enumerate the schedules: every prefix, plus a torn variant of
	// every write whose payload can actually be halved. ---
	var schedules []soakSchedule
	for n := 0; n <= len(ops); n++ {
		schedules = append(schedules, soakSchedule{n: n})
		if n < len(ops) && ops[n].Kind == faultfs.OpWrite && len(ops[n].Data) > 1 {
			schedules = append(schedules, soakSchedule{n: n, torn: true})
		}
	}
	if len(schedules) < 200 {
		t.Fatalf("only %d distinct crash schedules from %d recorded ops; the soak needs at least 200",
			len(schedules), len(ops))
	}

	reports := soakReports()
	scratch := t.TempDir()
	results := make([]soakResult, len(schedules))

	// refCache memoizes the reference renders: many crash points
	// salvage the same prefix, and the reference side depends only on
	// what was salvaged, not on which operation died.
	type refKey struct {
		shards [experiment.NumPICs]int
		events [experiment.NumPICs]int
		clock  int
		allocs int
		meta   string // degradation note + exit status
	}
	refCache := make(map[refKey]map[string][]byte)
	var refMu sync.Mutex

	// renderAll renders every report; a report that refuses (e.g. advice
	// over a salvaged prefix with no stall events) contributes its error
	// text instead, which must then match the reference side exactly.
	renderAll := func(a *analyzer.Analyzer) map[string][]byte {
		out := make(map[string][]byte, len(reports))
		for _, rep := range reports {
			var buf bytes.Buffer
			if err := a.Render(&buf, rep, analyzer.RenderOpts{}); err != nil {
				out[rep] = []byte("ERROR: " + err.Error())
				continue
			}
			out[rep] = buf.Bytes()
		}
		return out
	}

	runOne := func(t *testing.T, idx int) {
		sc := schedules[idx]
		imageDir := filepath.Join(scratch, fmt.Sprintf("img-%d-%v", sc.n, sc.torn))
		defer os.RemoveAll(imageDir)
		if err := faultfs.Replay(faultfs.OS, ops, sc.n, sc.torn,
			faultfs.RemapPrefix(goldenDir, imageDir)); err != nil {
			t.Errorf("schedule n=%d torn=%v: replay: %v", sc.n, sc.torn, err)
			return
		}

		rep, err := experiment.Recover(imageDir)
		if err != nil {
			if floorAt[sc.n] {
				t.Errorf("schedule n=%d torn=%v: recovery floor was durable but Recover failed: %v",
					sc.n, sc.torn, err)
			}
			results[idx] = soakResult{sched: sc, outcome: "unrecoverable", detail: err.Error()}
			return
		}
		if !floorAt[sc.n] {
			t.Errorf("schedule n=%d torn=%v: Recover succeeded before meta+program were durable",
				sc.n, sc.torn)
			return
		}

		// Zero validated shards lost: what the trace proves was durably
		// spooled is exactly what recovery kept.
		loaded, err := experiment.Load(imageDir)
		if err != nil {
			t.Errorf("schedule n=%d torn=%v: recovered experiment does not load: %v",
				sc.n, sc.torn, err)
			return
		}
		var kept [experiment.NumPICs]int
		for pic := 0; pic < experiment.NumPICs; pic++ {
			wantShards := shardsAt[sc.n][pic]
			if rep.ShardsKept[pic] != wantShards {
				t.Errorf("schedule n=%d torn=%v: PIC%d kept %d shards, trace proves %d were durable",
					sc.n, sc.torn, pic, rep.ShardsKept[pic], wantShards)
				return
			}
			wantEvents := 0
			for _, s := range man.Shards[pic][:wantShards] {
				wantEvents += s.Count
			}
			if rep.EventsKept[pic] != wantEvents || len(loaded.HWC[pic]) != wantEvents {
				t.Errorf("schedule n=%d torn=%v: PIC%d kept %d events (loaded %d), want %d",
					sc.n, sc.torn, pic, rep.EventsKept[pic], len(loaded.HWC[pic]), wantEvents)
				return
			}
			if wantEvents > 0 && !reflect.DeepEqual(loaded.HWC[pic], golden.HWC[pic][:wantEvents]) {
				t.Errorf("schedule n=%d torn=%v: PIC%d salvaged events differ from the golden prefix",
					sc.n, sc.torn, pic)
				return
			}
			kept[pic] = wantEvents
		}
		// Side data is all-or-nothing: either the golden stream or lost.
		if len(loaded.Clock) != 0 && !reflect.DeepEqual(loaded.Clock, golden.Clock) {
			t.Errorf("schedule n=%d torn=%v: recovered clock stream differs from golden", sc.n, sc.torn)
			return
		}
		if len(loaded.Allocs) != 0 && !reflect.DeepEqual(loaded.Allocs, golden.Allocs) {
			t.Errorf("schedule n=%d torn=%v: recovered alloc records differ from golden", sc.n, sc.torn)
			return
		}

		// Reports from the salvaged directory (streamed Open path,
		// checksums attached) must match a reference reduction over the
		// same golden prefix held in memory.
		opened, err := experiment.Open(imageDir)
		if err != nil {
			t.Errorf("schedule n=%d torn=%v: Open after Recover: %v", sc.n, sc.torn, err)
			return
		}
		recA, err := analyzer.New(opened)
		if err != nil {
			t.Errorf("schedule n=%d torn=%v: analyzer over recovered dir: %v", sc.n, sc.torn, err)
			return
		}
		got := renderAll(recA)

		key := refKey{
			shards: rep.ShardsKept, events: kept,
			clock: len(loaded.Clock), allocs: len(loaded.Allocs),
			meta: loaded.Meta.Degraded + "\x00" + loaded.Meta.ExitStatus,
		}
		refMu.Lock()
		want, ok := refCache[key]
		refMu.Unlock()
		if !ok {
			ref := &experiment.Experiment{Prog: loaded.Prog, Meta: loaded.Meta}
			for pic := 0; pic < experiment.NumPICs; pic++ {
				ref.HWC[pic] = golden.HWC[pic][:kept[pic]]
			}
			if len(loaded.Clock) != 0 {
				ref.Clock = golden.Clock
			}
			if len(loaded.Allocs) != 0 {
				ref.Allocs = golden.Allocs
			}
			refA, err := analyzer.New(ref)
			if err != nil {
				t.Errorf("schedule n=%d torn=%v: reference analyzer: %v", sc.n, sc.torn, err)
				return
			}
			want = renderAll(refA)
			refMu.Lock()
			refCache[key] = want
			refMu.Unlock()
		}
		for _, name := range reports {
			if !bytes.Equal(got[name], want[name]) {
				t.Errorf("schedule n=%d torn=%v: report %q differs between recovered dir and reference prefix",
					sc.n, sc.torn, name)
			}
		}
		results[idx] = soakResult{
			sched:   sc,
			outcome: "recovered",
			detail: fmt.Sprintf("shards=%v events=%v clock=%d note=%q",
				rep.ShardsKept, kept, len(loaded.Clock), loaded.Meta.Degraded),
		}
	}

	// The schedules are independent; sweep them on a worker pool.
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < runtime.GOMAXPROCS(0); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range next {
				runOne(t, idx)
			}
		}()
	}
	for idx := range schedules {
		next <- idx
	}
	close(next)
	wg.Wait()

	recovered, unrecoverable := 0, 0
	for _, r := range results {
		switch r.outcome {
		case "recovered":
			recovered++
		case "unrecoverable":
			unrecoverable++
		}
	}
	t.Logf("fault soak: %d schedules over %d recorded ops: %d recovered, %d pre-floor unrecoverable",
		len(schedules), len(ops), recovered, unrecoverable)

	if path := os.Getenv("DSPROF_SOAK_REPORT"); path != "" && !t.Failed() {
		var buf bytes.Buffer
		fmt.Fprintf(&buf, "fault soak recovery report (trips=%d)\n", trips)
		fmt.Fprintf(&buf, "%d schedules over %d recorded ops; %d recovered, %d pre-floor unrecoverable\n",
			len(schedules), len(ops), recovered, unrecoverable)
		fmt.Fprintf(&buf, "zero validated shards lost across all schedules\n\n")
		sort.SliceStable(results, func(i, j int) bool {
			if results[i].sched.n != results[j].sched.n {
				return results[i].sched.n < results[j].sched.n
			}
			return !results[i].sched.torn && results[j].sched.torn
		})
		for _, r := range results {
			fmt.Fprintf(&buf, "n=%4d torn=%-5v %-13s %s\n", r.sched.n, r.sched.torn, r.outcome, r.detail)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Errorf("writing soak report %s: %v", path, err)
		}
	}
}
