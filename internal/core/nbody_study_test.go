package core

import (
	"testing"

	"dsprof/internal/cc"
	"dsprof/internal/nbody"
)

// TestNBodyVariantStudy is the ground-truth half of the §3.3-style
// study: the hand-packed compressed-links build (paperscape's
// LAYOUT_USE_COMPRESSED_LINKS) must measurably beat the natural
// baseline on the paper's memory counters, the way the expert-optimized
// MCF layout beats the paper layout. The advisor's rediscovery of the
// same headroom from counter data alone is TestNBodyRediscovery (in
// internal/advisor); EXPERIMENTS.md records the measured deltas.
func TestNBodyVariantStudy(t *testing.T) {
	p := DefaultNBodyStudy()
	iv := NBodyIntervals(p.Papers)
	input := nbody.Generate(nbody.DefaultGenParams(p.Papers, p.Seed)).Encode()
	cfg := StudyMachine()

	type counts struct{ ecstall, ecrm, ecref, dtlbm, dcrm int }
	profile := func(v nbody.Variant) counts {
		prog, err := nbody.Program(v, cc.Options{HWCProf: true})
		if err != nil {
			t.Fatal(err)
		}
		_, resA, resB, err := ProfilePaperStyle(prog, input, &cfg, iv)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		out, err := nbody.ParseOutput(resA.Machine.OutputLongs())
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if out.Status != 0 {
			t.Fatalf("%v: status %d", v, out.Status)
		}
		// A third pass counts D$ read misses directly: at this scale the
		// node array blows through the 4 KB D$ while fitting the E$, so
		// ecrm stays near zero and dcrm carries the miss signal.
		resC, err := CollectRun(prog, input, &cfg, false, "+dcrm,997")
		if err != nil {
			t.Fatalf("%v: experiment C: %v", v, err)
		}
		return counts{
			ecstall: resA.Exp.EventCount(0),
			ecrm:    resA.Exp.EventCount(1),
			ecref:   resB.Exp.EventCount(0),
			dtlbm:   resB.Exp.EventCount(1),
			dcrm:    resC.Exp.EventCount(0),
		}
	}

	base := profile(nbody.VariantBaseline)
	comp := profile(nbody.VariantCompressed)
	t.Logf("baseline:   ecstall %d  dcrm %d  ecrm %d  ecref %d  dtlbm %d", base.ecstall, base.dcrm, base.ecrm, base.ecref, base.dtlbm)
	t.Logf("compressed: ecstall %d  dcrm %d  ecrm %d  ecref %d  dtlbm %d", comp.ecstall, comp.dcrm, comp.ecrm, comp.ecref, comp.dtlbm)

	if base.ecstall == 0 || base.dcrm == 0 {
		t.Fatalf("baseline produced no memory events: %+v", base)
	}
	// Halving link memory must show up in the counters: fewer E$ stall
	// and D$ read-miss overflows, and no E$ read-miss regression.
	if comp.ecstall >= base.ecstall {
		t.Errorf("compressed links did not reduce E$ stalls: %d -> %d", base.ecstall, comp.ecstall)
	}
	if comp.dcrm >= base.dcrm {
		t.Errorf("compressed links did not reduce D$ read misses: %d -> %d", base.dcrm, comp.dcrm)
	}
	if comp.ecrm > base.ecrm {
		t.Errorf("compressed links regressed E$ read misses: %d -> %d", base.ecrm, comp.ecrm)
	}
}
