package core

import (
	"context"
	"fmt"
	"io"

	"dsprof/internal/advisor"
	"dsprof/internal/analyzer"
	"dsprof/internal/cc"
	"dsprof/internal/machine"
	"dsprof/internal/mcf"
	"dsprof/internal/nbody"
)

// advise.go is the closed-loop advisor harness shared by cmd/dsadvise
// and internal/profd: profile a baseline, run the data-layout advisor
// over it, and validate every recommendation with a measured re-run.
// Two bundled workloads plug into the same loop: the MCF network
// simplex (§3's case study) and the n-body force-layout kernel.

// MCFTarget builds the advisor's rebuild-and-re-run target for an MCF
// study configuration.
func MCFTarget(p StudyParams) advisor.Target {
	cfg := StudyMachine()
	if p.Machine != nil {
		cfg = *p.Machine
	}
	return advisor.Target{
		Sources: []cc.Source{{Name: "mcf.mc", Text: mcf.Source(p.Layout)}},
		Options: cc.Options{
			Name:         "mcf-" + p.Layout.String(),
			HWCProf:      p.HWCProf,
			PageSizeHeap: p.PageSizeHeap,
		},
		Input:   mcf.Generate(mcf.DefaultGenParams(p.Trips, p.Seed)).Encode(),
		Machine: &cfg,
	}
}

// ScaledIntervals picks baseline overflow intervals matched to the run
// length: paper-scale instances use the paper's intervals, smoke-scale
// instances use proportionally smaller primes so even a trips≈100 run
// yields enough events to rank members.
func ScaledIntervals(trips int) PaperIntervals {
	if trips >= 600 {
		return PaperIntervals{}
	}
	return PaperIntervals{ECStall: 20011, ECRdMiss: 1009, ECRef: 4001, DTLBMiss: 503}
}

// NBodyStudyParams configure one n-body profiling study.
type NBodyStudyParams struct {
	Papers  int
	Seed    uint64
	Variant nbody.Variant
	// HWCProf disables -xhwcprof when false.
	HWCProf bool
	Machine *machine.Config
}

// DefaultNBodyStudy returns the standard scaled n-body study: a graph
// whose node array is ~36× the study machine's D$, so the force loop's
// member accesses dominate the miss profile the way MCF's node walk
// does in §3.1.
func DefaultNBodyStudy() NBodyStudyParams {
	return NBodyStudyParams{Papers: 2000, Seed: 20030717, Variant: nbody.VariantBaseline, HWCProf: true}
}

// NBodyTarget builds the advisor's rebuild-and-re-run target for an
// n-body study configuration.
func NBodyTarget(p NBodyStudyParams) advisor.Target {
	cfg := StudyMachine()
	if p.Machine != nil {
		cfg = *p.Machine
	}
	return advisor.Target{
		Sources: nbody.Source(p.Variant),
		Options: cc.Options{
			Name:    "nbody-" + p.Variant.String(),
			HWCProf: p.HWCProf,
		},
		Input:   nbody.Generate(nbody.DefaultGenParams(p.Papers, p.Seed)).Encode(),
		Machine: &cfg,
	}
}

// NBodyIntervals picks overflow intervals for an n-body baseline: the
// kernel is an order of magnitude shorter than a scaled MCF run, so
// sub-paper instances use proportionally smaller primes.
func NBodyIntervals(papers int) PaperIntervals {
	if papers >= 10000 {
		return PaperIntervals{}
	}
	return PaperIntervals{ECStall: 2003, ECRdMiss: 251, ECRef: 1009, DTLBMiss: 127, ClockTick: 90001}
}

// AdviseParams configure one closed advisor loop.
type AdviseParams struct {
	Study     StudyParams
	Intervals PaperIntervals // baseline collection intervals
	Advisor   advisor.Options
}

// NBodyAdviseParams configure one closed advisor loop on the n-body
// workload.
type NBodyAdviseParams struct {
	Study     NBodyStudyParams
	Intervals PaperIntervals
	Advisor   advisor.Options
}

// AdviseRun is a completed loop: baseline profile, ranked advice, and
// the measured validation of each recommendation. Exactly one of
// Output (MCF) and NBody (n-body) is set, per the workload advised.
type AdviseRun struct {
	Baseline *analyzer.Analyzer
	Output   *mcf.Output
	NBody    *nbody.Output
	Advice   *advisor.Advice
	Valid    *advisor.Validation
}

// AdviseMCF runs the full closed loop on MCF: baseline two-experiment
// profile (the paper's A+B collection), advisor analysis, and one
// validation re-run per recommendation plus a combined run.
func AdviseMCF(ctx context.Context, p AdviseParams) (*AdviseRun, error) {
	if p.Study.Trips == 0 {
		p.Study = DefaultStudy()
	}
	target := MCFTarget(p.Study)
	prog, err := cc.Compile(target.Sources, target.Options)
	if err != nil {
		return nil, err
	}
	a, resA, _, err := ProfilePaperStyle(prog, target.Input, target.Machine, p.Intervals)
	if err != nil {
		return nil, err
	}
	out, err := mcf.ParseOutput(resA.Machine.OutputLongs())
	if err != nil {
		return nil, err
	}
	if out.Status != 0 {
		return nil, fmt.Errorf("mcf baseline run failed with status %d", out.Status)
	}
	adv, err := advisor.Analyze(a, p.Advisor)
	if err != nil {
		return nil, err
	}
	valid, err := advisor.Validate(ctx, target, adv, a)
	if err != nil {
		return nil, err
	}
	return &AdviseRun{Baseline: a, Output: out, Advice: adv, Valid: valid}, nil
}

// AdviseNBody runs the same closed loop on the n-body workload:
// two-experiment baseline profile, advisor analysis, and one validated
// re-run per recommendation. The kernel's output vector is layout
// invariant, so the output-identity gate applies unchanged.
func AdviseNBody(ctx context.Context, p NBodyAdviseParams) (*AdviseRun, error) {
	if p.Study.Papers == 0 {
		p.Study = DefaultNBodyStudy()
	}
	target := NBodyTarget(p.Study)
	prog, err := cc.Compile(target.Sources, target.Options)
	if err != nil {
		return nil, err
	}
	a, resA, _, err := ProfilePaperStyle(prog, target.Input, target.Machine, p.Intervals)
	if err != nil {
		return nil, err
	}
	out, err := nbody.ParseOutput(resA.Machine.OutputLongs())
	if err != nil {
		return nil, err
	}
	if out.Status != 0 {
		return nil, fmt.Errorf("nbody baseline run failed with status %d", out.Status)
	}
	adv, err := advisor.Analyze(a, p.Advisor)
	if err != nil {
		return nil, err
	}
	valid, err := advisor.Validate(ctx, target, adv, a)
	if err != nil {
		return nil, err
	}
	return &AdviseRun{Baseline: a, NBody: out, Advice: adv, Valid: valid}, nil
}

// WriteReport renders the loop's report: the advice report (through the
// analyzer's report registry, so it is byte-identical to erprint's and
// profd's "advice" rendering) followed by the validation verdicts and
// the before/after function comparison.
func (r *AdviseRun) WriteReport(w io.Writer, topN int) error {
	if err := r.Baseline.Render(w, "advice", analyzer.RenderOpts{TopN: topN}); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return r.Valid.Render(w, r.Baseline, topN)
}
