package core

import (
	"context"
	"fmt"
	"io"

	"dsprof/internal/advisor"
	"dsprof/internal/analyzer"
	"dsprof/internal/cc"
	"dsprof/internal/mcf"
)

// advise.go is the closed-loop MCF harness shared by cmd/dsadvise and
// internal/profd: profile a baseline, run the data-layout advisor over
// it, and validate every recommendation with a measured re-run.

// MCFTarget builds the advisor's rebuild-and-re-run target for an MCF
// study configuration.
func MCFTarget(p StudyParams) advisor.Target {
	cfg := StudyMachine()
	if p.Machine != nil {
		cfg = *p.Machine
	}
	return advisor.Target{
		Sources: []cc.Source{{Name: "mcf.mc", Text: mcf.Source(p.Layout)}},
		Options: cc.Options{
			Name:         "mcf-" + p.Layout.String(),
			HWCProf:      p.HWCProf,
			PageSizeHeap: p.PageSizeHeap,
		},
		Input:   mcf.Generate(mcf.DefaultGenParams(p.Trips, p.Seed)).Encode(),
		Machine: &cfg,
	}
}

// ScaledIntervals picks baseline overflow intervals matched to the run
// length: paper-scale instances use the paper's intervals, smoke-scale
// instances use proportionally smaller primes so even a trips≈100 run
// yields enough events to rank members.
func ScaledIntervals(trips int) PaperIntervals {
	if trips >= 600 {
		return PaperIntervals{}
	}
	return PaperIntervals{ECStall: 20011, ECRdMiss: 1009, ECRef: 4001, DTLBMiss: 503}
}

// AdviseParams configure one closed advisor loop.
type AdviseParams struct {
	Study     StudyParams
	Intervals PaperIntervals // baseline collection intervals
	Advisor   advisor.Options
}

// AdviseRun is a completed loop: baseline profile, ranked advice, and
// the measured validation of each recommendation.
type AdviseRun struct {
	Baseline *analyzer.Analyzer
	Output   *mcf.Output
	Advice   *advisor.Advice
	Valid    *advisor.Validation
}

// AdviseMCF runs the full closed loop on MCF: baseline two-experiment
// profile (the paper's A+B collection), advisor analysis, and one
// validation re-run per recommendation plus a combined run.
func AdviseMCF(ctx context.Context, p AdviseParams) (*AdviseRun, error) {
	if p.Study.Trips == 0 {
		p.Study = DefaultStudy()
	}
	target := MCFTarget(p.Study)
	prog, err := cc.Compile(target.Sources, target.Options)
	if err != nil {
		return nil, err
	}
	a, resA, _, err := ProfilePaperStyle(prog, target.Input, target.Machine, p.Intervals)
	if err != nil {
		return nil, err
	}
	out, err := mcf.ParseOutput(resA.Machine.OutputLongs())
	if err != nil {
		return nil, err
	}
	if out.Status != 0 {
		return nil, fmt.Errorf("mcf baseline run failed with status %d", out.Status)
	}
	adv, err := advisor.Analyze(a, p.Advisor)
	if err != nil {
		return nil, err
	}
	valid, err := advisor.Validate(ctx, target, adv, a)
	if err != nil {
		return nil, err
	}
	return &AdviseRun{Baseline: a, Output: out, Advice: adv, Valid: valid}, nil
}

// WriteReport renders the loop's report: the advice report (through the
// analyzer's report registry, so it is byte-identical to erprint's and
// profd's "advice" rendering) followed by the validation verdicts and
// the before/after function comparison.
func (r *AdviseRun) WriteReport(w io.Writer, topN int) error {
	if err := r.Baseline.Render(w, "advice", analyzer.RenderOpts{TopN: topN}); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return r.Valid.Render(w, r.Baseline, topN)
}
