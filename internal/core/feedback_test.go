package core

import (
	"strings"
	"testing"

	"dsprof/internal/cc"
	"dsprof/internal/hwc"
	"dsprof/internal/isa"
	"dsprof/internal/mcf"
)

// The §4 feedback-directed prefetching loop, end to end: profile, build
// the feedback file, recompile with prefetch insertion, and verify the
// recompiled program is faster (in this model prefetch completion is
// immediate, so the gain is an upper bound) while computing the same
// answer.
func TestPrefetchFeedbackLoop(t *testing.T) {
	s := studyForTest(t)
	fb := s.Analyzer.PrefetchFeedback(0.01)
	if len(fb["mcf.mc"]) == 0 {
		t.Fatalf("no feedback lines for mcf.mc: %v", fb)
	}

	var rendered strings.Builder
	s.Analyzer.WriteFeedbackFile(&rendered, 0.01)
	if !strings.Contains(rendered.String(), "mcf.mc:") {
		t.Errorf("feedback file malformed:\n%s", rendered.String())
	}

	// Recompile with the feedback.
	prog, err := mcf.Program(mcf.LayoutPaper, cc.Options{HWCProf: true, PrefetchFeedback: fb})
	if err != nil {
		t.Fatal(err)
	}
	nPrefetch := 0
	for _, in := range prog.Text {
		if in.Op == isa.Prefetch {
			nPrefetch++
		}
	}
	if nPrefetch == 0 {
		t.Fatal("feedback compilation inserted no prefetches")
	}

	ins := mcf.Generate(mcf.DefaultGenParams(testTrips, s.Params.Seed))
	cfg := *s.Params.Machine
	m, err := RunOnce(prog, ins.Encode(), &cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, err := mcf.ParseOutput(m.OutputLongs())
	if err != nil {
		t.Fatal(err)
	}
	if out.Cost != s.Output.Cost || out.Pivots != s.Output.Pivots {
		t.Fatalf("prefetch insertion changed results: %+v vs %+v", out, s.Output)
	}
	if m.Stats().Cycles >= s.Cycles {
		t.Errorf("prefetching did not reduce cycles: %d >= %d", m.Stats().Cycles, s.Cycles)
	}
	t.Logf("prefetch feedback: %d prefetches inserted, %.1f%% cycle reduction (upper bound)",
		nPrefetch, 100*(float64(s.Cycles)-float64(m.Stats().Cycles))/float64(s.Cycles))
}

func TestFeedbackEmptyWithoutMissData(t *testing.T) {
	prog, err := Compile("t", []cc.Source{{Name: "t.mc", Text: "long main() { return 0; }"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := StudyMachine()
	res, err := CollectRun(prog, nil, &cfg, true, "")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(res.Exp)
	if err != nil {
		t.Fatal(err)
	}
	if fb := a.PrefetchFeedback(0.01); fb != nil {
		t.Errorf("feedback without miss data: %v", fb)
	}
	var b strings.Builder
	a.WriteFeedbackFile(&b, 0.01)
	if !strings.Contains(b.String(), "no E$ read-miss data") {
		t.Errorf("feedback file should note missing data: %q", b.String())
	}
	_ = hwc.EvECRdMiss
}
