package core

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"dsprof/internal/analyzer"
	"dsprof/internal/asm"
	"dsprof/internal/cc"
	"dsprof/internal/collect"
	"dsprof/internal/experiment"
	"dsprof/internal/machine"
	"dsprof/internal/mcf"
	"dsprof/internal/nbody"
)

// goldenSet is one collect invocation of a three-way backend golden.
type goldenSet struct {
	name  string
	clock bool
	spec  string
}

// TestFastPathGolden is the differential golden test for the batched
// execution engines: a full MCF collect — both of the paper's counter
// sets, clock profiling on — run on the instruction-granular reference
// stepper, the event-horizon interpreter ("fast"), and the
// superblock-translating backend ("translated") must produce
// byte-identical experiment directories and byte-identical rendered
// reports. Any drift in event streams, skid draws, cycle counts, or
// attribution shows up as a file diff here.
func TestFastPathGolden(t *testing.T) {
	prog, err := mcf.Program(mcf.LayoutPaper, cc.Options{HWCProf: true})
	if err != nil {
		t.Fatal(err)
	}
	input := mcf.Generate(mcf.DefaultGenParams(300, 20030717)).Encode()
	cfg := StudyMachine()
	cfg.TLB.Entries = 8 // scaled-down TLB so DTLB events appear at this scale

	counterSets := []goldenSet{
		{"A", true, "+ecstall,20011,+ecrm,997"},
		{"B", false, "+ecref,2003,+dtlbm,499"},
		// I$ misses alongside D$ read misses: the two event classes whose
		// translated-block budgets are armed per-instruction and
		// per-access respectively, in one run.
		{"C", true, "+icm,61,+dcrm,757"},
	}
	reports := []string{
		"total", "functions", "pcs", "lines", "objects", "addrspace",
		"effect", "feedback",
		"source=refresh_potential", "disasm=refresh_potential",
		"members=node", "callers=refresh_potential",
		"obj-timeline=read_min",
	}
	runThreeWayGolden(t, prog, input, cfg, counterSets, reports)
}

// TestFastPathGoldenNBody is the same three-way golden over the second
// workload family: the n-body force-layout kernel, whose Q16.16 float
// lowering and anonymous-union members must simulate identically on all
// three engines. Byte-identical experiment directories here are what
// let profd's ConfigHash keep excluding Backend for nbody jobs too.
func TestFastPathGoldenNBody(t *testing.T) {
	prog, err := nbody.Program(nbody.VariantBaseline, cc.Options{HWCProf: true})
	if err != nil {
		t.Fatal(err)
	}
	input := nbody.Generate(nbody.DefaultGenParams(400, 20030717)).Encode()
	cfg := StudyMachine()
	cfg.TLB.Entries = 8            // scaled-down TLB so DTLB events appear
	cfg.ECache.SizeBytes = 1 << 15 // 32 KB E$ so the small graph still misses it

	counterSets := []goldenSet{
		{"A", true, "+ecstall,2003,+ecrm,251"},
		{"B", false, "+ecref,1009,+dtlbm,127"},
	}
	reports := []string{
		"total", "functions", "pcs", "lines", "objects", "addrspace",
		"effect", "feedback",
		"source=force_pass", "disasm=force_pass",
		"members=lnode", "callers=force_pass",
		"obj-timeline=main",
	}
	runThreeWayGolden(t, prog, input, cfg, counterSets, reports)
}

// runThreeWayGolden collects every counter set on the reference
// stepper, the fast interpreter and the translated backend, then
// requires byte-identical experiment directories and byte-identical
// renderings of every registered report.
func runThreeWayGolden(t *testing.T, prog *asm.Program, input []int64, cfg machine.Config, counterSets []goldenSet, reports []string) {
	t.Helper()
	collectPair := func(singleStep bool, backend string) ([]*experiment.Experiment, []string) {
		var exps []*experiment.Experiment
		var dirs []string
		for _, cs := range counterSets {
			specs, err := collect.ParseCounterSpec(cs.spec)
			if err != nil {
				t.Fatal(err)
			}
			res, err := collect.Run(prog, collect.Options{
				ClockProfile:        cs.clock,
				ClockIntervalCycles: 900007,
				Counters:            specs,
				Machine:             &cfg,
				Input:               input,
				SingleStep:          singleStep,
				Backend:             backend,
				Provenance:          true,
			})
			if err != nil {
				t.Fatalf("collect %s (singleStep=%v, backend=%q): %v", cs.name, singleStep, backend, err)
			}
			// Pin the only intentionally non-deterministic field so the
			// directories can be compared byte for byte.
			res.Exp.Meta.When = time.Unix(1058400000, 0).UTC()
			dir := filepath.Join(t.TempDir(), fmt.Sprintf("exp%s", cs.name))
			if err := res.Exp.Save(dir); err != nil {
				t.Fatal(err)
			}
			exps = append(exps, res.Exp)
			dirs = append(dirs, dir)
		}
		return exps, dirs
	}

	refExps, refDirs := collectPair(true, "")
	fastExps, fastDirs := collectPair(false, "fast")
	transExps, transDirs := collectPair(false, "translated")

	// 1. The saved experiment directories must be byte-identical across
	// all three engines.
	for i := range refDirs {
		compareDirs(t, counterSets[i].name+"/fast", refDirs[i], fastDirs[i])
		compareDirs(t, counterSets[i].name+"/translated", refDirs[i], transDirs[i])
	}

	// 2. Every registered report rendered from the merged pair must be
	// byte-identical.
	refA, err := Analyze(refExps...)
	if err != nil {
		t.Fatal(err)
	}
	fastA, err := Analyze(fastExps...)
	if err != nil {
		t.Fatal(err)
	}
	transA, err := Analyze(transExps...)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range analyzer.ReportNames() {
		switch name {
		case "total", "functions", "source", "disasm", "pcs", "lines",
			"objects", "members", "callers", "addrspace", "feedback", "effect",
			"obj-timeline":
			// covered (with arguments) above
		default:
			reports = append(reports, name) // registered extensions (advice)
		}
	}
	for _, rep := range reports {
		var refBuf, fastBuf, transBuf bytes.Buffer
		if err := refA.Render(&refBuf, rep, analyzer.RenderOpts{}); err != nil {
			t.Fatalf("render %q (reference): %v", rep, err)
		}
		if err := fastA.Render(&fastBuf, rep, analyzer.RenderOpts{}); err != nil {
			t.Fatalf("render %q (fast): %v", rep, err)
		}
		if err := transA.Render(&transBuf, rep, analyzer.RenderOpts{}); err != nil {
			t.Fatalf("render %q (translated): %v", rep, err)
		}
		if !bytes.Equal(refBuf.Bytes(), fastBuf.Bytes()) {
			t.Errorf("report %q differs between reference and fast path", rep)
		}
		if !bytes.Equal(refBuf.Bytes(), transBuf.Bytes()) {
			t.Errorf("report %q differs between reference and translated backend", rep)
		}
	}

	// Sanity: the run must actually have produced events on both counters
	// of both sets, or the test proves nothing.
	for i, exp := range refExps {
		for pic := 0; pic < 2; pic++ {
			if exp.EventCount(pic) == 0 {
				t.Errorf("experiment %s PIC%d produced no events", counterSets[i].name, pic)
			}
		}
	}
	if !refExps[0].Meta.ClockProfiling || len(refExps[0].Clock) == 0 {
		t.Error("experiment A produced no clock ticks")
	}
}

// compareDirs byte-compares every file in two directory trees.
func compareDirs(t *testing.T, label, refDir, fastDir string) {
	t.Helper()
	refFiles := listFiles(t, refDir)
	fastFiles := listFiles(t, fastDir)
	if len(refFiles) == 0 {
		t.Fatalf("%s: reference experiment directory is empty", label)
	}
	if fmt.Sprint(refFiles) != fmt.Sprint(fastFiles) {
		t.Fatalf("%s: file sets differ: %v vs %v", label, refFiles, fastFiles)
	}
	for _, rel := range refFiles {
		if rel == "program.obj" {
			// The saved program is the collect *input*, identical by
			// construction, but gob encodes its debug-table maps in
			// random iteration order, so its bytes differ between any two
			// saves. Compare it semantically instead.
			refP, err := asm.LoadFile(filepath.Join(refDir, rel))
			if err != nil {
				t.Fatal(err)
			}
			fastP, err := asm.LoadFile(filepath.Join(fastDir, rel))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(refP, fastP) {
				t.Errorf("%s: %s decodes to different programs", label, rel)
			}
			continue
		}
		refB, err := os.ReadFile(filepath.Join(refDir, rel))
		if err != nil {
			t.Fatal(err)
		}
		fastB, err := os.ReadFile(filepath.Join(fastDir, rel))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(refB, fastB) {
			t.Errorf("%s: %s differs between reference and fast path (%d vs %d bytes)",
				label, rel, len(refB), len(fastB))
		}
	}
}

func listFiles(t *testing.T, dir string) []string {
	t.Helper()
	var files []string
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() {
			rel, _ := filepath.Rel(dir, path)
			files = append(files, rel)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return files
}
