package core

import (
	"strings"
	"testing"
)

// The simulation stack is fully deterministic: the same study parameters
// must reproduce byte-identical reports (EXPERIMENTS.md relies on this —
// the recorded numbers regenerate exactly).
func TestStudyDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two full studies")
	}
	p := DefaultStudy()
	p.Trips = 250
	render := func() string {
		s, err := RunStudy(p)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		s.Figure1(&b)
		s.Figure2(&b)
		s.Figure5(&b, 10)
		s.Figure6(&b)
		if err := s.Figure7(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	first := render()
	second := render()
	if first != second {
		t.Error("two identical studies rendered different reports")
	}
}

// Different seeds must produce different instances (and thus different
// profiles) — the determinism is seed-driven, not hard-coded.
func TestStudySeedSensitivity(t *testing.T) {
	a := DefaultStudy()
	a.Trips = 120
	b := a
	b.Seed = a.Seed + 1
	ca, _, err := TimeMCF(a)
	if err != nil {
		t.Fatal(err)
	}
	cb, _, err := TimeMCF(b)
	if err != nil {
		t.Fatal(err)
	}
	if ca == cb {
		t.Error("different seeds produced identical cycle counts (suspicious)")
	}
}
