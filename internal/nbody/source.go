package nbody

import "strings"

// Variant selects the link representation the kernel is compiled with.
//
// VariantBaseline is the natural encoding: a 16-byte llink holding a
// Q16.16 float weight and a node pointer. The advisor profiles this
// build; its struct lnode keeps hot force-loop members (num_links,
// links, x, y, fx, fy) scattered among cold metadata, so both a
// hot/cold split and a reorder are discoverable.
//
// VariantCompressed is the hand-packed encoding paperscape ships: one
// long per link, the target's array index in the high bits and the
// integer weight in the low 10 bits — halving link memory at the cost
// of shift/mask work in the inner loop. It is the ground-truth "expert
// optimized" build the §3.3-style study compares against.
type Variant int

// Variants.
const (
	VariantBaseline Variant = iota
	VariantCompressed
)

func (v Variant) String() string {
	if v == VariantCompressed {
		return "compressed"
	}
	return "baseline"
}

// llinkStruct returns the MC declaration of struct llink.
func llinkStruct(v Variant) string {
	if v == VariantCompressed {
		return `struct llink {
	long data;
};`
	}
	return `struct llink {
	float weight;
	struct lnode *node;
};`
}

// sub returns the variant-specific statement substitutions for the
// kernel template. Multi-line snippets carry the indentation of their
// insertion point on continuation lines.
func sub(v Variant) *strings.Replacer {
	if v == VariantCompressed {
		return strings.NewReplacer(
			"@LLINK@", llinkStruct(v),
			"@FINE_FILL@", `l->data = b * 1024 + w;`,
			"@FINE_FILL_REV@", `l->data = a * 1024 + w;`,
			"@COARSE_FILL@", `l->data = pb * 1024 + ew[i];`,
			"@COARSE_FILL_REV@", `l->data = pa * 1024 + ew[i];`,
			"@FORCE_READ@", `q = ns + (l->data >> 10);
			w = (float) (l->data & 1023);`,
			"@COMBINE_SAME@", `(pl[q2].data >> 10) == (pl[k].data >> 10)`,
			"@COMBINE_MERGE@", `pl[k].data += pl[q2].data & 1023;`,
			"@COMBINE_COPY@", `pl[t].data = pl[t + 1].data;`,
		)
	}
	return strings.NewReplacer(
		"@LLINK@", llinkStruct(v),
		"@FINE_FILL@", `l->weight = (float) w;
		l->node = nodes + b;`,
		"@FINE_FILL_REV@", `l->weight = (float) w;
		l->node = nodes + a;`,
		"@COARSE_FILL@", `l->weight = (float) ew[i];
			l->node = cnodes + pb;`,
		"@COARSE_FILL_REV@", `l->weight = (float) ew[i];
			l->node = cnodes + pa;`,
		"@FORCE_READ@", `q = l->node;
			w = l->weight;`,
		"@COMBINE_SAME@", `pl[q2].node == pl[k].node`,
		"@COMBINE_MERGE@", `pl[k].weight += pl[q2].weight;`,
		"@COMBINE_COPY@", `pl[t].weight = pl[t + 1].weight;
					pl[t].node = pl[t + 1].node;`,
	)
}

// srcTemplate is the layout kernel, a port of paperscape's hierarchical
// force-directed graph layout to the MC dialect. Leaves are papers;
// pairs of leaves aggregate into coarse nodes whose duplicate links are
// combined; the coarse graph relaxes first and seeds the fine pass.
// All arithmetic on positions and forces is Q16.16 fixed point, so the
// eight output longs are bit-exact across backends and layouts.
const srcTemplate = `/* nbody: hierarchical force layout over a citation graph. */

struct lnode;

@LLINK@

struct paper {
	long id;
	long refs;
};

struct lnode {
	long flags;
	float x;
	float fx;
	struct lnode *parent;
	float y;
	float fy;
	union {
		struct paper *paper;
		struct lnode *child0;
	};
	long num_links;
	struct llink *links;
	struct lnode *child1;
	long mass;
	long radius;
};

/* One relaxation step over ns[0..count-1]: a spring toward the origin,
 * weighted attraction along links, then an explicit Euler integration
 * with step 0.25. Links are stored in both directions, so accumulating
 * only into p keeps the forces symmetric while every link-loop memory
 * read of another node touches just its x and y. */
void force_pass(struct lnode *ns, long count) {
	long i;
	long k;
	struct lnode *p;
	struct lnode *q;
	struct llink *l;
	float dx;
	float dy;
	float w;
	for (i = 0; i < count; i++) {
		p = &ns[i];
		p->fx = 0.0 - p->x * 0.0625;
		p->fy = 0.0 - p->y * 0.0625;
	}
	for (i = 0; i < count; i++) {
		p = &ns[i];
		for (k = 0; k < p->num_links; k++) {
			l = &p->links[k];
			@FORCE_READ@
			dx = q->x - p->x;
			dy = q->y - p->y;
			p->fx += dx * w * 0.00390625;
			p->fy += dy * w * 0.00390625;
		}
	}
	for (i = 0; i < count; i++) {
		p = &ns[i];
		p->x += p->fx * 0.25;
		p->y += p->fy * 0.25;
	}
}

/* Merge duplicate links (same target) in p's segment, order preserving:
 * the survivor accumulates the duplicate's weight and later entries
 * shift left. */
void combine_links(struct lnode *p) {
	long k;
	long q2;
	long t;
	struct llink *pl;
	pl = p->links;
	for (k = 0; k < p->num_links; k++) {
		q2 = k + 1;
		while (q2 < p->num_links) {
			if (@COMBINE_SAME@) {
				@COMBINE_MERGE@
				t = q2;
				while (t + 1 < p->num_links) {
					@COMBINE_COPY@
					t++;
				}
				p->num_links--;
			} else {
				q2++;
			}
		}
	}
}

long main() {
	long n;
	long m;
	long ci;
	long fi;
	long cn;
	long i;
	long a;
	long b;
	long w;
	long pa;
	long pb;
	long off;
	long it;
	long clinks;
	long poschk;
	long forcechk;
	long paperchk;
	long masschk;
	long *ea;
	long *eb;
	long *ew;
	struct paper *papers;
	struct lnode *nodes;
	struct lnode *cnodes;
	struct llink *pool;
	struct llink *cpool;
	struct lnode *p;
	struct lnode *c;
	struct llink *l;

	n = read_long();
	m = read_long();
	ci = read_long();
	fi = read_long();
	if (n < 2) {
		write_long(1);
		write_long(0);
		write_long(0);
		write_long(0);
		write_long(0);
		write_long(0);
		write_long(0);
		write_long(0);
		return 1;
	}

	papers = (struct paper *) malloc(n * sizeof(struct paper));
	nodes = (struct lnode *) calloc(n, sizeof(struct lnode));
	ea = (long *) malloc(m * 8);
	eb = (long *) malloc(m * 8);
	ew = (long *) malloc(m * 8);

	for (i = 0; i < n; i++) {
		papers[i].id = i;
		papers[i].refs = read_long();
		p = &nodes[i];
		p->flags = 1;
		p->num_links = 0;
		p->parent = (struct lnode *) 0;
		p->paper = &papers[i];
		p->child1 = (struct lnode *) 0;
		p->links = (struct llink *) 0;
		p->mass = papers[i].refs;
		p->radius = p->mass / 2;
		p->x = (float) (i * 37 % 101 - 50);
		p->y = (float) (i * 53 % 89 - 44);
		p->fx = 0.0;
		p->fy = 0.0;
	}

	/* The input is read once; stage the edge list so the link segments
	 * can be counted, offset and filled in separate passes. Each edge is
	 * stored in both directions. */
	for (i = 0; i < m; i++) {
		ea[i] = read_long();
		eb[i] = read_long();
		ew[i] = read_long();
		nodes[ea[i]].num_links++;
		nodes[eb[i]].num_links++;
	}
	pool = (struct llink *) malloc((2 * m + 1) * sizeof(struct llink));
	off = 0;
	for (i = 0; i < n; i++) {
		nodes[i].links = pool + off;
		off += nodes[i].num_links;
		nodes[i].num_links = 0;
	}
	for (i = 0; i < m; i++) {
		a = ea[i];
		b = eb[i];
		w = ew[i];
		l = &nodes[a].links[nodes[a].num_links];
		@FINE_FILL@
		nodes[a].num_links++;
		l = &nodes[b].links[nodes[b].num_links];
		@FINE_FILL_REV@
		nodes[b].num_links++;
	}

	/* Coarse level: leaves (2i, 2i+1) pair into cnodes[i]. */
	cn = n / 2;
	cnodes = (struct lnode *) calloc(cn, sizeof(struct lnode));
	for (i = 0; i < cn; i++) {
		c = &cnodes[i];
		c->flags = 2;
		c->num_links = 0;
		c->parent = (struct lnode *) 0;
		c->child0 = &nodes[2 * i];
		c->child1 = &nodes[2 * i + 1];
		c->links = (struct llink *) 0;
		c->mass = c->child0->mass + c->child1->mass;
		c->radius = c->mass / 2;
		c->x = (c->child0->x + c->child1->x) * 0.5;
		c->y = (c->child0->y + c->child1->y) * 0.5;
		c->fx = 0.0;
		c->fy = 0.0;
		nodes[2 * i].parent = c;
		nodes[2 * i + 1].parent = c;
	}
	for (i = 0; i < m; i++) {
		pa = ea[i] / 2;
		pb = eb[i] / 2;
		if (pa != pb) {
			cnodes[pa].num_links++;
			cnodes[pb].num_links++;
		}
	}
	cpool = (struct llink *) malloc((2 * m + 1) * sizeof(struct llink));
	off = 0;
	for (i = 0; i < cn; i++) {
		cnodes[i].links = cpool + off;
		off += cnodes[i].num_links;
		cnodes[i].num_links = 0;
	}
	for (i = 0; i < m; i++) {
		pa = ea[i] / 2;
		pb = eb[i] / 2;
		if (pa != pb) {
			l = &cnodes[pa].links[cnodes[pa].num_links];
			@COARSE_FILL@
			cnodes[pa].num_links++;
			l = &cnodes[pb].links[cnodes[pb].num_links];
			@COARSE_FILL_REV@
			cnodes[pb].num_links++;
		}
	}
	for (i = 0; i < cn; i++) {
		combine_links(&cnodes[i]);
	}
	clinks = 0;
	for (i = 0; i < cn; i++) {
		clinks += cnodes[i].num_links;
	}

	for (it = 0; it < ci; it++) {
		force_pass(cnodes, cn);
	}

	/* Seed the fine level from the relaxed coarse positions, children
	 * offset by a quarter radius on either side. */
	for (i = 0; i < cn; i++) {
		c = &cnodes[i];
		c->child0->x = c->x - (float) c->radius * 0.25;
		c->child0->y = c->y - (float) c->radius * 0.25;
		c->child1->x = c->x + (float) c->radius * 0.25;
		c->child1->y = c->y + (float) c->radius * 0.25;
	}

	for (it = 0; it < fi; it++) {
		force_pass(nodes, n);
	}

	poschk = 0;
	forcechk = 0;
	paperchk = 0;
	for (i = 0; i < n; i++) {
		p = &nodes[i];
		poschk += (long) (p->x * 256.0) * (i + 1) + (long) (p->y * 256.0);
		forcechk += (long) (p->fx * 4096.0) + (long) (p->fy * 4096.0);
		paperchk += p->paper->refs * ((long) (p->x * 4.0) + i);
	}
	masschk = 0;
	for (i = 0; i < cn; i++) {
		masschk += cnodes[i].mass + cnodes[i].child1->flags;
	}

	write_long(0);
	write_long(n);
	write_long(clinks);
	write_long(poschk);
	write_long(forcechk);
	write_long(paperchk);
	write_long(masschk);
	write_long(cn);
	return 0;
}
`

// SourceText returns the MC source of the kernel for the variant.
func SourceText(v Variant) string {
	return sub(v).Replace(srcTemplate)
}
