package nbody

import (
	"fmt"

	"dsprof/internal/asm"
	"dsprof/internal/cc"
)

// Source returns the kernel as a compiler input for the variant.
func Source(v Variant) []cc.Source {
	return []cc.Source{{Name: "nbody.mc", Text: SourceText(v)}}
}

// Program compiles the kernel for the variant with the given options.
func Program(v Variant, opts cc.Options) (*asm.Program, error) {
	if opts.Name == "" {
		opts.Name = "nbody-" + v.String()
	}
	return cc.Compile(Source(v), opts)
}

// Output is the kernel's result vector: eight longs, all invariant
// under struct-layout changes (no addresses, no cycle counts).
type Output struct {
	Status      int64 // 0 on success
	N           int64 // fine node count
	CoarseLinks int64 // coarse links remaining after combine_links
	PosChk      int64 // position checksum over fine nodes
	ForceChk    int64 // residual-force checksum over fine nodes
	PaperChk    int64 // checksum mixing positions with paper metadata
	MassChk     int64 // coarse mass + child-flags checksum
	CN          int64 // coarse node count
}

// ParseOutput decodes the kernel's output vector.
func ParseOutput(longs []int64) (*Output, error) {
	if len(longs) != 8 {
		return nil, fmt.Errorf("nbody: output has %d longs, want 8", len(longs))
	}
	return &Output{
		Status:      longs[0],
		N:           longs[1],
		CoarseLinks: longs[2],
		PosChk:      longs[3],
		ForceChk:    longs[4],
		PaperChk:    longs[5],
		MassChk:     longs[6],
		CN:          longs[7],
	}, nil
}

func (o *Output) Longs() []int64 {
	return []int64{o.Status, o.N, o.CoarseLinks, o.PosChk, o.ForceChk,
		o.PaperChk, o.MassChk, o.CN}
}
