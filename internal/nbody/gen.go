// Package nbody provides the second bundled workload: a
// paperscape-style hierarchical n-body force layout over a citation
// graph. Each paper is a leaf node with hot position/force fields and
// cold metadata; pairs of leaves aggregate into coarse nodes whose
// duplicate links are combined, the coarse graph relaxes first, and the
// result seeds the fine relaxation — a pointer-chasing kernel whose
// struct-layout behavior differs sharply from MCF's.
//
// The package contains:
//
//   - a seeded deterministic citation-graph generator,
//   - the layout/force kernel written in the MC source dialect, with the
//     link representation as a compile-time variant (pointer+float
//     baseline vs the hand-packed compressed-links encoding),
//   - a Go reference model mirroring the kernel's Q16.16 fixed-point
//     arithmetic bit for bit, used to validate outputs.
package nbody

import (
	"fmt"

	"dsprof/internal/xrand"
)

// Link is one citation edge a -> b (a cites b, a > b) with an integer
// weight in [1, 9].
type Link struct {
	A, B   int32
	Weight int32
}

// Instance is a citation graph plus iteration counts.
type Instance struct {
	N           int     // papers (always even; leaves pair into coarse nodes)
	Masses      []int64 // length N, values in [1, 8]
	Links       []Link
	CoarseIters int
	FineIters   int
}

// GenParams control the citation-graph generator.
type GenParams struct {
	Papers      int    // leaf count (rounded up to even)
	Seed        uint64 // PRNG seed
	CoarseIters int
	FineIters   int
	MaxDegree   int // citations generated per paper, in [1, MaxDegree]
}

// DefaultGenParams sizes an instance of the given paper count with
// iteration counts that keep the coarse and fine relaxations both
// prominent in the profile.
func DefaultGenParams(papers int, seed uint64) GenParams {
	return GenParams{
		Papers:      papers,
		Seed:        seed,
		CoarseIters: 30,
		FineIters:   60,
		MaxDegree:   3,
	}
}

// Generate builds a citation graph: paper i cites 1..MaxDegree earlier
// papers (uniformly among 0..i-1), so edges always point from the higher
// index to the lower and the graph is connected and acyclic.
func Generate(p GenParams) *Instance {
	if p.Papers < 2 {
		p.Papers = 2
	}
	if p.Papers%2 == 1 {
		p.Papers++
	}
	if p.MaxDegree < 1 {
		p.MaxDegree = 1
	}
	if p.CoarseIters < 0 {
		p.CoarseIters = 0
	}
	if p.FineIters < 0 {
		p.FineIters = 0
	}
	r := xrand.New(p.Seed)
	ins := &Instance{
		N:           p.Papers,
		Masses:      make([]int64, p.Papers),
		CoarseIters: p.CoarseIters,
		FineIters:   p.FineIters,
	}
	for i := range ins.Masses {
		ins.Masses[i] = 1 + int64(r.Intn(8))
	}
	for i := 1; i < p.Papers; i++ {
		deg := 1 + r.Intn(p.MaxDegree)
		for d := 0; d < deg; d++ {
			j := r.Intn(i)
			w := 1 + r.Intn(9)
			ins.Links = append(ins.Links, Link{A: int32(i), B: int32(j), Weight: int32(w)})
		}
	}
	return ins
}

// Encode serializes the instance as the input vector of the MC program:
//
//	n, m, coarse_iters, fine_iters,
//	masses[0..n-1],
//	m * (a, b, weight)
func (ins *Instance) Encode() []int64 {
	out := make([]int64, 0, 4+ins.N+3*len(ins.Links))
	out = append(out, int64(ins.N), int64(len(ins.Links)),
		int64(ins.CoarseIters), int64(ins.FineIters))
	out = append(out, ins.Masses...)
	for _, l := range ins.Links {
		out = append(out, int64(l.A), int64(l.B), int64(l.Weight))
	}
	return out
}

// Decode parses an encoded instance (inverse of Encode).
func Decode(in []int64) (*Instance, error) {
	if len(in) < 4 {
		return nil, fmt.Errorf("nbody: truncated instance")
	}
	n, m := int(in[0]), int(in[1])
	ci, fi := int(in[2]), int(in[3])
	if n < 2 || n%2 != 0 || m < 0 || ci < 0 || fi < 0 || len(in) != 4+n+3*m {
		return nil, fmt.Errorf("nbody: malformed instance (n=%d m=%d len=%d)", n, m, len(in))
	}
	ins := &Instance{N: n, Masses: make([]int64, n), CoarseIters: ci, FineIters: fi}
	for i := 0; i < n; i++ {
		mass := in[4+i]
		if mass < 1 || mass > 8 {
			return nil, fmt.Errorf("nbody: paper %d has mass %d outside [1,8]", i, mass)
		}
		ins.Masses[i] = mass
	}
	off := 4 + n
	for i := 0; i < m; i++ {
		a, b, w := in[off], in[off+1], in[off+2]
		off += 3
		if a <= b || b < 0 || a >= int64(n) {
			return nil, fmt.Errorf("nbody: bad link %d -> %d", a, b)
		}
		if w < 1 || w > 9 {
			return nil, fmt.Errorf("nbody: link %d -> %d has weight %d outside [1,9]", a, b, w)
		}
		ins.Links = append(ins.Links, Link{A: int32(a), B: int32(b), Weight: int32(w)})
	}
	return ins, nil
}
