package nbody

import (
	"math"
	"reflect"
	"testing"

	"dsprof/internal/asm"
	"dsprof/internal/cc"
	"dsprof/internal/machine"
)

func runKernel(t *testing.T, prog *asm.Program, input []int64) []int64 {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.MaxInstrs = 500_000_000
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadProgram(prog.Text, prog.Data, prog.Entry); err != nil {
		t.Fatal(err)
	}
	m.SetInput(input)
	if err := m.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return m.OutputLongs()
}

func compileVariant(t *testing.T, v Variant, opts cc.Options) *asm.Program {
	t.Helper()
	prog, err := Program(v, opts)
	if err != nil {
		t.Fatalf("Program(%v): %v", v, err)
	}
	return prog
}

func TestGenerateEncodeDecode(t *testing.T) {
	ins := Generate(DefaultGenParams(50, 7)) // odd count rounds up
	if ins.N != 50 {
		t.Fatalf("N = %d, want 50", ins.N)
	}
	back, err := Decode(ins.Encode())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(ins, back) {
		t.Fatal("Decode(Encode(ins)) != ins")
	}
	if _, err := Decode([]int64{3, 0, 1, 1, 1, 1, 1}); err == nil {
		t.Fatal("odd n decoded without error")
	}
}

// The two link encodings and the Go twin must agree bit for bit: the
// output vector is layout- and variant-invariant.
func TestVariantsMatchModel(t *testing.T) {
	for _, seed := range []uint64{1, 42, 20030717} {
		ins := Generate(DefaultGenParams(60, seed))
		input := ins.Encode()
		want := Simulate(ins).Longs()
		for _, v := range []Variant{VariantBaseline, VariantCompressed} {
			prog := compileVariant(t, v, cc.Options{HWCProf: true})
			got := runKernel(t, prog, input)
			out, err := ParseOutput(got)
			if err != nil {
				t.Fatalf("seed %d %v: %v", seed, v, err)
			}
			if out.Status != 0 {
				t.Fatalf("seed %d %v: status %d", seed, v, out.Status)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("seed %d %v: output %v, want %v (Go model)", seed, v, got, want)
			}
		}
	}
}

// Advisor-style layout overrides on struct lnode must not change the
// output: every output long is layout-invariant, which is what lets the
// closed loop validate recompiles by output identity.
func TestLayoutOverrideInvariance(t *testing.T) {
	ins := Generate(DefaultGenParams(40, 9))
	input := ins.Encode()
	want := runKernel(t, compileVariant(t, VariantBaseline, cc.Options{HWCProf: true}), input)
	overrides := []*cc.LayoutOverride{
		// Hot force-loop members first (the split/reorder the advisor
		// should rediscover), cold metadata last.
		{Order: []string{"num_links", "links", "x", "y", "fx", "fy",
			"mass", "radius", "parent", "paper", "child0", "child1", "flags"}},
		// Same plus padding to a power of two.
		{Order: []string{"num_links", "links", "x", "y", "fx", "fy",
			"mass", "radius", "parent", "paper", "child0", "child1", "flags"}, PadTo: 128},
		// A hostile permutation: the union's arms land wherever their
		// first member is seen and must stay co-located.
		{Order: []string{"paper", "fy", "flags", "x", "child1", "links",
			"mass", "num_links", "child0", "parent", "radius", "y", "fx"}},
	}
	for i, ov := range overrides {
		prog := compileVariant(t, VariantBaseline, cc.Options{
			HWCProf:         true,
			LayoutOverrides: map[string]*cc.LayoutOverride{"lnode": ov},
		})
		got := runKernel(t, prog, input)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("override %d: output %v, want %v", i, got, want)
		}
	}
}

// float64 reference of the kernel, same algorithm in real arithmetic.
// The fixed-point lowering must track it within a bounded error.
func simulateFloat(ins *Instance) (xs, ys []float64) {
	n := ins.N
	type fnode struct {
		numLinks     int
		links        []mlink
		mass, radius float64
		x, y, fx, fy float64
	}
	nodes := make([]fnode, n)
	for i := 0; i < n; i++ {
		p := &nodes[i]
		p.mass = float64(ins.Masses[i])
		p.radius = float64(ins.Masses[i] / 2) // kernel divides integers
		p.x = float64(int64(i)*37%101 - 50)
		p.y = float64(int64(i)*53%89 - 44)
	}
	for _, e := range ins.Links {
		a, b := int(e.A), int(e.B)
		nodes[a].links = append(nodes[a].links, mlink{target: b, weight: int64(e.Weight)})
		nodes[a].numLinks++
		nodes[b].links = append(nodes[b].links, mlink{target: a, weight: int64(e.Weight)})
		nodes[b].numLinks++
	}
	cn := n / 2
	cnodes := make([]fnode, cn)
	for i := 0; i < cn; i++ {
		c := &cnodes[i]
		a, b := &nodes[2*i], &nodes[2*i+1]
		c.mass = a.mass + b.mass
		c.radius = float64(int64(c.mass) / 2)
		c.x = (a.x + b.x) * 0.5
		c.y = (a.y + b.y) * 0.5
	}
	addCoarse := func(from, to int, w int64) {
		for j := range cnodes[from].links {
			if cnodes[from].links[j].target == to {
				cnodes[from].links[j].weight += w
				return
			}
		}
		cnodes[from].links = append(cnodes[from].links, mlink{target: to, weight: w})
		cnodes[from].numLinks++
	}
	for _, e := range ins.Links {
		pa, pb := int(e.A)/2, int(e.B)/2
		if pa != pb {
			addCoarse(pa, pb, int64(e.Weight))
			addCoarse(pb, pa, int64(e.Weight))
		}
	}
	pass := func(ns []fnode) {
		for i := range ns {
			ns[i].fx = -ns[i].x * 0.0625
			ns[i].fy = -ns[i].y * 0.0625
		}
		for i := range ns {
			for _, l := range ns[i].links[:ns[i].numLinks] {
				q := l.target
				w := float64(l.weight)
				ns[i].fx += (ns[q].x - ns[i].x) * w * 0.00390625
				ns[i].fy += (ns[q].y - ns[i].y) * w * 0.00390625
			}
		}
		for i := range ns {
			ns[i].x += ns[i].fx * 0.25
			ns[i].y += ns[i].fy * 0.25
		}
	}
	for it := 0; it < ins.CoarseIters; it++ {
		pass(cnodes)
	}
	for i := range cnodes {
		c := &cnodes[i]
		nodes[2*i].x = c.x - c.radius*0.25
		nodes[2*i].y = c.y - c.radius*0.25
		nodes[2*i+1].x = c.x + c.radius*0.25
		nodes[2*i+1].y = c.y + c.radius*0.25
	}
	for it := 0; it < ins.FineIters; it++ {
		pass(nodes)
	}
	xs = make([]float64, n)
	ys = make([]float64, n)
	for i := range nodes {
		xs[i] = nodes[i].x
		ys[i] = nodes[i].y
	}
	return xs, ys
}

// Property: across seeds, the Q16.16 lowering stays within a bounded
// error of the float64 reference, and is bit-exact run to run.
func TestFixedPointTracksFloat(t *testing.T) {
	for _, seed := range []uint64{3, 11, 2003, 987654321} {
		ins := Generate(DefaultGenParams(80, seed))
		nodes, _ := simulateNodes(ins)
		xs, ys := simulateFloat(ins)
		var worst float64
		for i := range nodes {
			fx := float64(nodes[i].x) / 65536
			fy := float64(nodes[i].y) / 65536
			ex := math.Abs(fx - xs[i])
			ey := math.Abs(fy - ys[i])
			// Bounded absolute-or-relative error: the layout uses
			// coordinates in the tens, so 0.05 absolute (or 1% of the
			// magnitude for large coordinates) is far tighter than any
			// placement consumer needs.
			tolX := math.Max(0.05, 0.01*math.Abs(xs[i]))
			tolY := math.Max(0.05, 0.01*math.Abs(ys[i]))
			if ex > tolX || ey > tolY {
				t.Errorf("seed %d node %d: fixed (%.5f, %.5f) vs float (%.5f, %.5f)",
					seed, i, fx, fy, xs[i], ys[i])
			}
			worst = math.Max(worst, math.Max(ex, ey))
		}
		t.Logf("seed %d: worst coordinate error %.6f", seed, worst)

		// Bit-exact determinism: identical reruns, seed-sensitive output.
		if !reflect.DeepEqual(Simulate(ins).Longs(), Simulate(ins).Longs()) {
			t.Fatalf("seed %d: model not deterministic", seed)
		}
	}
	a := Simulate(Generate(DefaultGenParams(80, 3))).Longs()
	b := Simulate(Generate(DefaultGenParams(80, 11))).Longs()
	if reflect.DeepEqual(a, b) {
		t.Fatal("different seeds produced identical outputs")
	}
}

func TestParseOutputErrors(t *testing.T) {
	if _, err := ParseOutput([]int64{0, 1, 2}); err == nil {
		t.Fatal("short output parsed without error")
	}
	out, err := ParseOutput([]int64{0, 1, 2, 3, 4, 5, 6, 7})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.Longs(), []int64{0, 1, 2, 3, 4, 5, 6, 7}) {
		t.Fatal("Longs round trip mismatch")
	}
}
