package nbody

// Go reference model of the kernel, mirroring the MC program statement
// for statement at the Q16.16 bit level:
//
//   - float struct members are 4 bytes: every store truncates to int32
//     and every load sign-extends — modeled by typing the fields int32;
//   - register temporaries are 64-bit — modeled as int64 locals;
//   - float multiply lowers to Mul;Sra 16 (floor), divide to Sll 16;Div
//     (machine Div truncates toward zero, exactly Go's /);
//   - (float)i is i<<16, (long)f is f>>16 (arithmetic, floors).
//
// Both source variants (pointer+float links and compressed long links)
// compute identical values, so one model covers both.

// Q16.16 raw constants appearing in the kernel source.
const (
	rawSpring  = 4096      // 0.0625
	rawAttract = 256       // 0.00390625
	rawQuarter = 16384     // 0.25
	rawHalf    = 32768     // 0.5
	raw4       = 4 << 16   // 4.0
	raw256     = 256 << 16 // 256.0
	raw4096    = 4096 << 16
)

func fmul(a, b int64) int64 { return (a * b) >> 16 }
func toLong(f int64) int64  { return f >> 16 }

type mlink struct {
	target int
	weight int64 // integer weight; raw float value is weight<<16
}

type mnode struct {
	flags        int64
	numLinks     int64
	links        []mlink
	paper        int // leaf: index into masses
	child0       int // coarse: child indices in the fine array
	child1       int
	mass, radius int64
	x, y, fx, fy int32
}

func forcePass(ns []mnode) {
	for i := range ns {
		p := &ns[i]
		p.fx = int32(0 - fmul(int64(p.x), rawSpring))
		p.fy = int32(0 - fmul(int64(p.y), rawSpring))
	}
	for i := range ns {
		// Links are stored in both directions, so the force accumulates
		// only into the owning node.
		for k := int64(0); k < ns[i].numLinks; k++ {
			l := ns[i].links[k]
			q := l.target
			w := l.weight << 16
			dx := int64(ns[q].x) - int64(ns[i].x)
			dy := int64(ns[q].y) - int64(ns[i].y)
			ns[i].fx = int32(int64(ns[i].fx) + fmul(fmul(dx, w), rawAttract))
			ns[i].fy = int32(int64(ns[i].fy) + fmul(fmul(dy, w), rawAttract))
		}
	}
	for i := range ns {
		p := &ns[i]
		p.x = int32(int64(p.x) + fmul(int64(p.fx), rawQuarter))
		p.y = int32(int64(p.y) + fmul(int64(p.fy), rawQuarter))
	}
}

func combineLinks(p *mnode) {
	pl := p.links
	for k := int64(0); k < p.numLinks; k++ {
		q2 := k + 1
		for q2 < p.numLinks {
			if pl[q2].target == pl[k].target {
				pl[k].weight += pl[q2].weight
				for t := q2; t+1 < p.numLinks; t++ {
					pl[t] = pl[t+1]
				}
				p.numLinks--
			} else {
				q2++
			}
		}
	}
}

// Simulate runs the reference model and returns the output the MC
// kernel writes for the same instance.
func Simulate(ins *Instance) *Output {
	_, out := simulateNodes(ins)
	return out
}

// simulateNodes additionally exposes the final fine-node state, which
// the property tests compare against a float64 reference.
func simulateNodes(ins *Instance) ([]mnode, *Output) {
	n := ins.N
	nodes := make([]mnode, n)
	for i := 0; i < n; i++ {
		p := &nodes[i]
		p.flags = 1
		p.paper = i
		p.mass = ins.Masses[i]
		p.radius = p.mass / 2
		p.x = int32((int64(i)*37%101 - 50) << 16)
		p.y = int32((int64(i)*53%89 - 44) << 16)
	}
	for _, e := range ins.Links {
		a, b := int(e.A), int(e.B)
		nodes[a].links = append(nodes[a].links, mlink{target: b, weight: int64(e.Weight)})
		nodes[a].numLinks++
		nodes[b].links = append(nodes[b].links, mlink{target: a, weight: int64(e.Weight)})
		nodes[b].numLinks++
	}

	cn := n / 2
	cnodes := make([]mnode, cn)
	for i := 0; i < cn; i++ {
		c := &cnodes[i]
		c.flags = 2
		c.child0 = 2 * i
		c.child1 = 2*i + 1
		a, b := &nodes[c.child0], &nodes[c.child1]
		c.mass = a.mass + b.mass
		c.radius = c.mass / 2
		c.x = int32(fmul(int64(a.x)+int64(b.x), rawHalf))
		c.y = int32(fmul(int64(a.y)+int64(b.y), rawHalf))
	}
	for _, e := range ins.Links {
		pa, pb := int(e.A)/2, int(e.B)/2
		if pa != pb {
			cnodes[pa].links = append(cnodes[pa].links, mlink{target: pb, weight: int64(e.Weight)})
			cnodes[pa].numLinks++
			cnodes[pb].links = append(cnodes[pb].links, mlink{target: pa, weight: int64(e.Weight)})
			cnodes[pb].numLinks++
		}
	}
	for i := range cnodes {
		combineLinks(&cnodes[i])
	}
	var clinks int64
	for i := range cnodes {
		clinks += cnodes[i].numLinks
	}

	for it := 0; it < ins.CoarseIters; it++ {
		forcePass(cnodes)
	}
	for i := range cnodes {
		c := &cnodes[i]
		off := fmul(c.radius<<16, rawQuarter)
		nodes[c.child0].x = int32(int64(c.x) - off)
		nodes[c.child0].y = int32(int64(c.y) - off)
		nodes[c.child1].x = int32(int64(c.x) + off)
		nodes[c.child1].y = int32(int64(c.y) + off)
	}
	for it := 0; it < ins.FineIters; it++ {
		forcePass(nodes)
	}

	var poschk, forcechk, paperchk, masschk int64
	for i := 0; i < n; i++ {
		p := &nodes[i]
		poschk += toLong(fmul(int64(p.x), raw256))*int64(i+1) + toLong(fmul(int64(p.y), raw256))
		forcechk += toLong(fmul(int64(p.fx), raw4096)) + toLong(fmul(int64(p.fy), raw4096))
		paperchk += ins.Masses[p.paper] * (toLong(fmul(int64(p.x), raw4)) + int64(i))
	}
	for i := range cnodes {
		c := &cnodes[i]
		masschk += c.mass + nodes[c.child1].flags
	}

	return nodes, &Output{
		Status:      0,
		N:           int64(n),
		CoarseLinks: clinks,
		PosChk:      poschk,
		ForceChk:    forcechk,
		PaperChk:    paperchk,
		MassChk:     masschk,
		CN:          int64(cn),
	}
}
