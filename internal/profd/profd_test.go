package profd

// Shared test fixtures: a small two-struct workload (pointer chase +
// sequential scan, the shape of the paper's MCF study at toy scale) and
// a long-running spin program for cancellation/timeout tests.

import (
	"testing"
	"time"
)

const wlSrc = `
struct item { long weight; struct item *next; long pad1; long pad2; long pad3; long pad4; long pad5; long pad6; };
struct cell { long a; long b; };
struct item *items;
struct cell *cells;
long nitems;
void build() {
	long i;
	long j;
	items = (struct item *) malloc(nitems * sizeof(struct item));
	cells = (struct cell *) malloc(nitems * 4 * sizeof(struct cell));
	j = 0;
	for (i = 0; i < nitems; i++) {
		items[j].weight = i;
		items[j].next = &items[(j + 97) % nitems];
		j = (j + 97) % nitems;
	}
	for (i = 0; i < nitems * 4; i++) { cells[i].a = i; cells[i].b = 2 * i; }
}
long chase(long steps) {
	struct item *p;
	long sum;
	sum = 0;
	p = items;
	while (steps > 0) { sum += p->weight; p = p->next; steps--; }
	return sum;
}
long scan(long reps) {
	long i;
	long r;
	long sum;
	sum = 0;
	for (r = 0; r < reps; r++) {
		for (i = 0; i < nitems * 4; i++) { sum += cells[i].a; }
	}
	return sum;
}
long main() {
	nitems = read_long();
	build();
	write_long(chase(nitems * 4));
	write_long(scan(2));
	return 0;
}
`

// spinSrc runs for billions of instructions — far longer than any test
// waits — so cancellation and timeouts always land mid-run.
const spinSrc = `
long main() {
	long i;
	long s;
	i = 0;
	s = 0;
	while (i < 1000000000) { s = s + i; i = i + 1; }
	return s;
}
`

// specA is the paper's experiment A shape: clock + E$ stall + E$ read
// misses, with apropos backtracking.
func specA(n int64) JobSpec {
	return JobSpec{
		Source: wlSrc, Name: "wl", Input: []int64{n},
		Clock: true, ClockIntervalCycles: 9001,
		Counters:      "+ecstall,2003,+ecrm,509",
		MachineConfig: "scaled",
	}
}

// specB is experiment B: E$ references + DTLB misses.
func specB(n int64) JobSpec {
	return JobSpec{
		Source: wlSrc, Name: "wl", Input: []int64{n},
		Counters:      "+ecref,1009,+dtlbm,251",
		MachineConfig: "scaled",
	}
}

func spinSpec() JobSpec {
	return JobSpec{Source: spinSrc, Name: "spin", Clock: true, MachineConfig: "scaled"}
}

func newTestService(t *testing.T, workers int) (*Store, *Scheduler) {
	t.Helper()
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sched := NewScheduler(store, SchedulerConfig{Workers: workers, QueueDepth: 64})
	t.Cleanup(sched.Close)
	return store, sched
}

func waitState(t *testing.T, j *Job, want JobState) JobStatus {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(60 * time.Second):
		t.Fatalf("job %s stuck in %v", j.ID, j.Status().State)
	}
	st := j.Status()
	if st.State != want {
		t.Fatalf("job %s finished %v (%s), want %v", j.ID, st.State, st.Error, want)
	}
	return st
}

func TestJobSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		spec JobSpec
		ok   bool
	}{
		{"mcf ok", JobSpec{Program: "mcf", Clock: true}, true},
		{"source ok", JobSpec{Source: "long main() { return 0; }", Clock: true}, true},
		{"no program", JobSpec{Clock: true}, false},
		{"both program and source", JobSpec{Program: "mcf", Source: "x", Clock: true}, false},
		{"nothing profiled", JobSpec{Program: "mcf"}, false},
		{"bad counters", JobSpec{Program: "mcf", Counters: "bogus,on"}, false},
		{"three counters", JobSpec{Program: "mcf", Counters: "ecstall,on,ecrm,on,ecref,on"}, false},
		{"bad layout", JobSpec{Program: "mcf", Layout: "weird", Clock: true}, false},
		{"bad machine", JobSpec{Program: "mcf", Clock: true, MachineConfig: "cray"}, false},
		{"negative timeout", JobSpec{Program: "mcf", Clock: true, TimeoutSec: -1}, false},
	}
	for _, c := range cases {
		if err := c.spec.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestConfigHash(t *testing.T) {
	a, b := specA(100), specA(100)
	if a.ConfigHash() != b.ConfigHash() {
		t.Error("identical specs hash differently")
	}
	b.Counters = "+dtlbm,on"
	if a.ConfigHash() == b.ConfigHash() {
		t.Error("different counter specs hash equal")
	}
	c := specA(100)
	c.Input = []int64{101}
	if a.ConfigHash() == c.ConfigHash() {
		t.Error("different inputs hash equal")
	}
}

func TestTransientMarking(t *testing.T) {
	if IsTransient(nil) || MarkTransient(nil) != nil {
		t.Error("nil mishandled")
	}
	err := MarkTransient(errTest)
	if !IsTransient(err) {
		t.Error("marked error not transient")
	}
	if IsTransient(errTest) {
		t.Error("plain error transient")
	}
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "test error" }
