package profd

// store.go is the experiment store/registry: completed experiment
// directories persist under a managed root, indexed by program/config
// hash, and reduced analyzer.Analyzer results are memoized so repeated
// report queries never re-aggregate events.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dsprof/internal/analyzer"
	"dsprof/internal/experiment"
	"dsprof/internal/faultfs"
)

// ExpRecord is one completed experiment in the store's index.
type ExpRecord struct {
	ID       string    `json:"id"`
	Dir      string    `json:"dir"` // directory name under the store root
	Hash     string    `json:"hash"`
	Program  string    `json:"program"`
	Counters string    `json:"counters"`
	Command  string    `json:"command"`
	Label    string    `json:"label,omitempty"` // collector provenance (e.g. "reorder:node")
	When     time.Time `json:"when"`
	Cycles   uint64    `json:"cycles"`
	// Degraded carries the experiment's recovery note when the store
	// salvaged it from a failed save instead of failing the job.
	Degraded string `json:"degraded,omitempty"`
}

const indexFile = "index.json"

// maxCachedAnalyzers bounds the analyzer memo; reduction results are
// large (every attributed event), so the cache evicts beyond this.
const maxCachedAnalyzers = 32

// maxCachedPartials bounds the per-shard partial cache. A partial is
// much smaller than a whole analyzer (one shard's worth of attributed
// events), so the bound is correspondingly larger.
const maxCachedPartials = 4096

type analyzerEntry struct {
	once sync.Once
	a    *analyzer.Analyzer
	err  error
}

// shardPartialCache memoizes per-shard reduction partials across
// analyzer builds. Store experiments are immutable once committed, so a
// shard key (experiment id + shard coordinates + cycle range) always
// maps to the same partial: querying overlapping experiment sets — e.g.
// {A1} then {A1,A2} — re-reduces only the shards not already seen.
// It implements analyzer.PartialCache.
type shardPartialCache struct {
	mu     sync.Mutex
	m      map[string]*analyzer.ShardPartial
	hits   atomic.Uint64
	misses atomic.Uint64
}

func newShardPartialCache() *shardPartialCache {
	return &shardPartialCache{m: make(map[string]*analyzer.ShardPartial)}
}

func (c *shardPartialCache) Get(key string) (*analyzer.ShardPartial, bool) {
	c.mu.Lock()
	p, ok := c.m[key]
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return p, ok
}

func (c *shardPartialCache) Put(key string, p *analyzer.ShardPartial) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.m) >= maxCachedPartials {
		// Evict an arbitrary entry: partials are cheap to rebuild.
		for k := range c.m {
			delete(c.m, k)
			break
		}
	}
	c.m[key] = p
}

// Store is the on-disk experiment registry plus the analyzer memo.
type Store struct {
	root string
	fsys faultfs.FS // write-side filesystem (faultfs.OS in production)

	mu   sync.Mutex
	exps map[string]*ExpRecord // by ID
	seq  int

	cacheMu   sync.Mutex
	analyzers map[string]*analyzerEntry
	hits      atomic.Uint64
	misses    atomic.Uint64

	partials *shardPartialCache
}

// OpenStore opens (creating if needed) a managed experiment root and
// loads its index. Experiments recorded in the index whose directories
// have vanished are dropped; stray *.tmp directories from interrupted
// writes are removed.
func OpenStore(root string) (*Store, error) {
	return OpenStoreFS(faultfs.OS, root)
}

// OpenStoreFS is OpenStore with a pluggable write-side filesystem — the
// store's fault-injection seam.
func OpenStoreFS(fsys faultfs.FS, root string) (*Store, error) {
	fsys = faultfs.Or(fsys)
	if err := fsys.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("profd: store root: %w", err)
	}
	s := &Store{
		root:      root,
		fsys:      fsys,
		exps:      make(map[string]*ExpRecord),
		analyzers: make(map[string]*analyzerEntry),
		partials:  newShardPartialCache(),
	}
	if err := s.loadIndex(); err != nil {
		return nil, err
	}
	// Sweep leftovers from interrupted Put calls.
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, fmt.Errorf("profd: store root: %w", err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			fsys.RemoveAll(filepath.Join(root, e.Name()))
		}
	}
	return s, nil
}

// Root returns the managed root directory.
func (s *Store) Root() string { return s.root }

func (s *Store) loadIndex() error {
	b, err := os.ReadFile(filepath.Join(s.root, indexFile))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("profd: reading index: %w", err)
	}
	var recs []*ExpRecord
	if err := json.Unmarshal(b, &recs); err != nil {
		return fmt.Errorf("profd: corrupted index %s: %w", filepath.Join(s.root, indexFile), err)
	}
	for _, r := range recs {
		if st, err := os.Stat(filepath.Join(s.root, r.Dir)); err != nil || !st.IsDir() {
			continue // experiment vanished; drop from index
		}
		s.exps[r.ID] = r
		if n := seqOf(r.ID); n > s.seq {
			s.seq = n
		}
	}
	return nil
}

// seqOf extracts the numeric suffix of an "exp-N" id (0 if none).
func seqOf(id string) int {
	var n int
	if _, err := fmt.Sscanf(id, "exp-%d", &n); err != nil {
		return 0
	}
	return n
}

// writeIndex persists the index atomically (write-temp-then-rename).
// Callers hold s.mu.
func (s *Store) writeIndex() error {
	recs := make([]*ExpRecord, 0, len(s.exps))
	for _, r := range s.exps {
		recs = append(recs, r)
	}
	sort.Slice(recs, func(i, j int) bool { return seqOf(recs[i].ID) < seqOf(recs[j].ID) })
	b, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(s.root, indexFile+".tmp")
	if err := faultfs.WriteFile(s.fsys, tmp, b); err != nil {
		return err
	}
	if err := s.fsys.Rename(tmp, filepath.Join(s.root, indexFile)); err != nil {
		return err
	}
	// Make the committed index durable across power loss.
	return s.fsys.SyncDir(s.root)
}

// Put persists a completed experiment under the managed root and
// indexes it. The directory write is atomic: the experiment is saved to
// a temporary directory and renamed into place, so a crash or
// cancellation mid-write never leaves a partial experiment visible.
func (s *Store) Put(spec *JobSpec, exp *experiment.Experiment) (*ExpRecord, error) {
	s.mu.Lock()
	s.seq++
	id := fmt.Sprintf("exp-%d", s.seq)
	s.mu.Unlock()

	rec := &ExpRecord{
		ID:       id,
		Dir:      fmt.Sprintf("%s-%s.er", id, spec.ConfigHash()),
		Hash:     spec.ConfigHash(),
		Program:  exp.Meta.ProgName,
		Counters: spec.Counters,
		Command:  exp.Meta.Command,
		Label:    exp.Meta.Label,
		When:     exp.Meta.When,
		Cycles:   exp.Meta.Stats.Cycles,
	}
	final := filepath.Join(s.root, rec.Dir)
	tmp := final + ".tmp"
	if err := exp.SaveFS(s.fsys, tmp); err != nil {
		// Graceful degradation: a fault mid-save may still have left a
		// salvageable directory (the manifest-validated shard prefix).
		// Recover it and commit the degraded experiment rather than
		// failing the whole job; only an unrecoverable directory (or a
		// still-failing filesystem) fails the Put.
		rrep, rerr := experiment.RecoverFS(s.fsys, tmp)
		if rerr != nil {
			s.fsys.RemoveAll(tmp)
			if !errors.Is(rerr, experiment.ErrUnrecoverable) {
				return nil, fmt.Errorf("profd: saving experiment: %w (recovery also failed: %v)", err, rerr)
			}
			return nil, fmt.Errorf("profd: saving experiment: %w", err)
		}
		rec.Degraded = rrep.Summary()
	} else if exp.Meta.Degraded != "" {
		rec.Degraded = exp.Meta.Degraded
	}
	ownFinal := true
	if err := s.fsys.Rename(tmp, final); err != nil {
		// Two stores on the same root (or a crashed predecessor) can
		// race persisting the same config hash: the loser's rename onto
		// the existing experiment directory fails even though an
		// identical experiment is already in place. Verify the resident
		// directory really is the same program/config and treat that as
		// success rather than failing the job spuriously.
		if m, merr := experiment.ReadMeta(final); merr == nil &&
			m.ProgName == exp.Meta.ProgName && m.Command == exp.Meta.Command {
			s.fsys.RemoveAll(tmp)
			ownFinal = false // the resident directory is the racer's
		} else {
			s.fsys.RemoveAll(tmp)
			return nil, fmt.Errorf("profd: committing experiment: %w", err)
		}
	}
	// A failure past this point must roll the commit back: a Put that
	// reports an error while leaving a committed-but-unindexed (or
	// indexed-in-memory-only) experiment behind would let a retried job
	// store the data twice.
	rollback := func() {
		if ownFinal {
			s.fsys.RemoveAll(final)
		}
	}
	// Make the committed experiment directory durable: the rename is only
	// guaranteed to survive power loss once the parent is fsynced.
	if err := s.fsys.SyncDir(s.root); err != nil {
		rollback()
		return nil, fmt.Errorf("profd: committing experiment: %w", err)
	}

	s.mu.Lock()
	s.exps[id] = rec
	werr := s.writeIndex()
	if werr != nil {
		delete(s.exps, id)
	}
	s.mu.Unlock()
	if werr != nil {
		rollback()
		return nil, fmt.Errorf("profd: writing index: %w", werr)
	}
	return rec, nil
}

// Get looks up one experiment by ID.
func (s *Store) Get(id string) (*ExpRecord, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.exps[id]
	return r, ok
}

// Count returns the number of indexed experiments. Unlike List it does
// not build the sorted listing — the metrics path reads it on every
// scrape, concurrently with stores from the scheduler.
func (s *Store) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.exps)
}

// List returns every indexed experiment, oldest first.
func (s *Store) List() []*ExpRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	recs := make([]*ExpRecord, 0, len(s.exps))
	for _, r := range s.exps {
		recs = append(recs, r)
	}
	sort.Slice(recs, func(i, j int) bool { return seqOf(recs[i].ID) < seqOf(recs[j].ID) })
	return recs
}

// ByHash returns the experiments recorded for one program/config hash,
// oldest first — e.g. every run of the paper's experiment A.
func (s *Store) ByHash(hash string) []*ExpRecord {
	var out []*ExpRecord
	for _, r := range s.List() {
		if r.Hash == hash {
			out = append(out, r)
		}
	}
	return out
}

// Dirs resolves experiment IDs to their on-disk directories.
func (s *Store) Dirs(ids []string) ([]string, error) {
	dirs := make([]string, 0, len(ids))
	for _, id := range ids {
		r, ok := s.Get(id)
		if !ok {
			return nil, fmt.Errorf("profd: no experiment %q", id)
		}
		dirs = append(dirs, filepath.Join(s.root, r.Dir))
	}
	return dirs, nil
}

// Analyzer returns the merged, reduced analyzer over the given
// experiment IDs, memoized: the first query for a set of experiments
// loads and reduces them; repeated queries (any order of the same IDs)
// hit the cache and never re-aggregate events.
func (s *Store) Analyzer(ids []string) (*analyzer.Analyzer, error) {
	if len(ids) == 0 {
		return nil, fmt.Errorf("profd: no experiments selected")
	}
	key := cacheKey(ids)

	s.cacheMu.Lock()
	e := s.analyzers[key]
	if e == nil {
		e = &analyzerEntry{}
		// Bound the memo: evict an arbitrary entry when full. Entries
		// are cheap to rebuild relative to a profiled run.
		if len(s.analyzers) >= maxCachedAnalyzers {
			for k := range s.analyzers {
				delete(s.analyzers, k)
				break
			}
		}
		s.analyzers[key] = e
		s.misses.Add(1)
	} else {
		s.hits.Add(1)
	}
	s.cacheMu.Unlock()

	e.once.Do(func() {
		dirs, err := s.Dirs(ids)
		if err != nil {
			e.err = err
			return
		}
		exps := make([]*experiment.Experiment, 0, len(dirs))
		for _, d := range dirs {
			// Open, not Load: v2 counter events stay on disk and stream
			// shard-by-shard through the parallel reduction below.
			exp, err := experiment.Open(d)
			if err != nil {
				e.err = err
				return
			}
			exps = append(exps, exp)
		}
		// Keys[i] names exps[i] for the per-shard partial cache: store
		// experiments are immutable, so id+shard coordinates is stable.
		e.a, e.err = analyzer.NewWithConfig(analyzer.Config{
			Cache: s.partials,
			Keys:  ids,
		}, exps...)
	})
	if e.err != nil {
		// Don't pin failures in the cache: a later query retries.
		s.cacheMu.Lock()
		if s.analyzers[key] == e {
			delete(s.analyzers, key)
		}
		s.cacheMu.Unlock()
	}
	return e.a, e.err
}

// cacheKey canonicalizes an ID set (order-insensitive).
func cacheKey(ids []string) string {
	sorted := append([]string(nil), ids...)
	sort.Strings(sorted)
	return strings.Join(sorted, ",")
}

// CacheStats returns the analyzer memo's hit/miss counters.
func (s *Store) CacheStats() (hits, misses uint64) {
	return s.hits.Load(), s.misses.Load()
}

// ShardCacheStats returns the per-shard partial cache's hit/miss
// counters (one probe per shard per analyzer build).
func (s *Store) ShardCacheStats() (hits, misses uint64) {
	return s.partials.hits.Load(), s.partials.misses.Load()
}

// PartialCache exposes the store's per-shard partial cache so cluster
// worker nodes serving remote partial requests share memoization with
// local report queries: a shard reduced for either path is never
// re-attributed for the other.
func (s *Store) PartialCache() analyzer.PartialCache { return s.partials }
