package profd

// advise.go runs the closed advisor loop as a service job: a baseline
// two-experiment MCF collection through the ordinary scheduler (so the
// runs share the worker pool, builder memo and store with every other
// job), then the data-layout advisor and its validation re-runs. The
// validation experiments are stored like any other, so the before/after
// profiles stay queryable through the report API afterwards.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dsprof/internal/advisor"
	"dsprof/internal/analyzer"
	"dsprof/internal/core"
)

// AdviseSpec describes one advisor loop over the built-in MCF workload.
type AdviseSpec struct {
	Trips         int     `json:"trips,omitempty"`  // instance size (default 1200)
	Seed          uint64  `json:"seed,omitempty"`   // instance seed (default 20030717)
	Layout        string  `json:"layout,omitempty"` // "paper" (default) or "optimized"
	MachineConfig string  `json:"machine,omitempty"`
	Window        int     `json:"window,omitempty"`   // affinity window (default 16)
	MinShare      float64 `json:"minShare,omitempty"` // struct share threshold (default 0.05)
	MaxRecs       int     `json:"maxRecs,omitempty"`  // recommendation cap (default 20)
	TimeoutSec    float64 `json:"timeoutSec,omitempty"`
}

// Validate checks the spec at the API boundary.
func (s *AdviseSpec) Validate() error {
	switch s.Layout {
	case "", "paper", "optimized":
	default:
		return fmt.Errorf("profd: unknown mcf layout %q (want paper or optimized)", s.Layout)
	}
	switch s.MachineConfig {
	case "", "default", "scaled", "study":
	default:
		return fmt.Errorf("profd: unknown machine config %q (want default, scaled or study)", s.MachineConfig)
	}
	if s.Trips < 0 {
		return fmt.Errorf("profd: negative trips %d", s.Trips)
	}
	if s.Window < 0 || s.MinShare < 0 || s.MinShare > 1 || s.MaxRecs < 0 || s.TimeoutSec < 0 {
		return errors.New("profd: advise parameters must be non-negative (minShare at most 1)")
	}
	return nil
}

func (s *AdviseSpec) withDefaults() AdviseSpec {
	d := *s
	if d.Trips == 0 {
		d.Trips = 1200
	}
	if d.Seed == 0 {
		d.Seed = 20030717
	}
	if d.Layout == "" {
		d.Layout = "paper"
	}
	if d.MaxRecs == 0 {
		d.MaxRecs = 20
	}
	return d
}

// AdviseStatus is the API snapshot of one advise job.
type AdviseStatus struct {
	ID             string              `json:"id"`
	State          JobState            `json:"state"`
	Spec           AdviseSpec          `json:"spec"`
	Error          string              `json:"error,omitempty"`
	BaselineExps   []string            `json:"baselineExperiments,omitempty"`
	ValidationExps []string            `json:"validationExperiments,omitempty"`
	Advice         *advisor.Advice     `json:"advice,omitempty"`
	Results        []advisor.RecResult `json:"results,omitempty"`
	Submitted      time.Time           `json:"submitted"`
	Finished       time.Time           `json:"finished,omitzero"`
}

// AdviseJob is one running or completed advisor loop.
type AdviseJob struct {
	ID   string
	Spec AdviseSpec

	mu        sync.Mutex
	state     JobState
	err       string
	baseIDs   []string
	validIDs  []string
	advice    *advisor.Advice
	results   []advisor.RecResult
	report    []byte
	submitted time.Time
	finished  time.Time
	done      chan struct{}
}

// Status returns a consistent snapshot.
func (j *AdviseJob) Status() AdviseStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return AdviseStatus{
		ID: j.ID, State: j.state, Spec: j.Spec, Error: j.err,
		BaselineExps: j.baseIDs, ValidationExps: j.validIDs,
		Advice: j.advice, Results: j.results,
		Submitted: j.submitted, Finished: j.finished,
	}
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *AdviseJob) Done() <-chan struct{} { return j.done }

// Report returns the rendered report, or false while the job runs.
func (j *AdviseJob) Report() ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != JobDone {
		return nil, false
	}
	return j.report, true
}

// Adviser owns the advise-job table and drives each loop.
type Adviser struct {
	sched *Scheduler
	store *Store

	mu    sync.Mutex
	jobs  map[string]*AdviseJob
	order []string
	seq   int

	running atomic.Int64
	doneN   atomic.Int64
	failedN atomic.Int64
}

// NewAdviser wires an adviser over the service's scheduler and store.
func NewAdviser(sched *Scheduler, store *Store) *Adviser {
	return &Adviser{sched: sched, store: store, jobs: make(map[string]*AdviseJob)}
}

// Submit validates and starts an advise job, returning it immediately.
func (ad *Adviser) Submit(spec AdviseSpec) (*AdviseJob, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	ad.mu.Lock()
	ad.seq++
	j := &AdviseJob{
		ID: fmt.Sprintf("advise-%d", ad.seq), Spec: spec,
		state: JobRunning, submitted: time.Now(), done: make(chan struct{}),
	}
	ad.jobs[j.ID] = j
	ad.order = append(ad.order, j.ID)
	ad.mu.Unlock()
	ad.running.Add(1)
	go ad.run(j)
	return j, nil
}

// Get looks up an advise job by ID.
func (ad *Adviser) Get(id string) (*AdviseJob, bool) {
	ad.mu.Lock()
	defer ad.mu.Unlock()
	j, ok := ad.jobs[id]
	return j, ok
}

// Jobs returns every advise job in submission order.
func (ad *Adviser) Jobs() []*AdviseJob {
	ad.mu.Lock()
	defer ad.mu.Unlock()
	out := make([]*AdviseJob, 0, len(ad.order))
	for _, id := range ad.order {
		out = append(out, ad.jobs[id])
	}
	return out
}

// Counters returns the adviser's running/done/failed totals.
func (ad *Adviser) Counters() (running, done, failed int64) {
	return ad.running.Load(), ad.doneN.Load(), ad.failedN.Load()
}

func (ad *Adviser) run(j *AdviseJob) {
	err := ad.runLoop(j)
	j.mu.Lock()
	if err != nil {
		j.state = JobFailed
		j.err = err.Error()
	} else {
		j.state = JobDone
	}
	j.finished = time.Now()
	close(j.done)
	j.mu.Unlock()
	ad.running.Add(-1)
	if err != nil {
		ad.failedN.Add(1)
	} else {
		ad.doneN.Add(1)
	}
}

func (ad *Adviser) runLoop(j *AdviseJob) error {
	spec := j.Spec.withDefaults()
	ctx := context.Background()
	if spec.TimeoutSec > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(spec.TimeoutSec*float64(time.Second)))
		defer cancel()
	}

	// Baseline: the paper's two-experiment collection, as ordinary
	// scheduler jobs.
	iv := core.ScaledIntervals(spec.Trips)
	countersA := fmt.Sprintf("+ecstall,%d,+ecrm,%d", ivDefault(iv.ECStall, 100003), ivDefault(iv.ECRdMiss, 2003))
	countersB := fmt.Sprintf("+ecref,%d,+dtlbm,%d", ivDefault(iv.ECRef, 10007), ivDefault(iv.DTLBMiss, 997))
	base := JobSpec{
		Program: ProgramMCF, Layout: spec.Layout, Trips: spec.Trips, Seed: spec.Seed,
		MachineConfig: spec.MachineConfig, TimeoutSec: spec.TimeoutSec,
	}
	specA, specB := base, base
	specA.Clock = true
	specA.ClockIntervalCycles = ivDefault(iv.ClockTick, 900007)
	specA.Counters = countersA
	specB.Counters = countersB

	var ids []string
	for _, s := range []JobSpec{specA, specB} {
		job, err := ad.sched.Submit(s)
		if err != nil {
			return fmt.Errorf("profd: submitting baseline: %w", err)
		}
		st, err := job.Wait(ctx)
		if err != nil {
			return fmt.Errorf("profd: baseline run: %w", err)
		}
		if st.State != JobDone {
			return fmt.Errorf("profd: baseline job %s %s: %s", st.ID, st.State, st.Error)
		}
		ids = append(ids, st.Experiment)
	}
	j.mu.Lock()
	j.baseIDs = ids
	j.mu.Unlock()

	a, err := ad.store.Analyzer(ids)
	if err != nil {
		return err
	}
	adv, err := advisor.Analyze(a, advisor.Options{
		Window: spec.Window, MinShare: spec.MinShare, MaxRecs: spec.MaxRecs,
	})
	if err != nil {
		return err
	}
	j.mu.Lock()
	j.advice = adv
	j.mu.Unlock()

	target := core.MCFTarget(core.StudyParams{
		Trips: spec.Trips, Seed: spec.Seed, Layout: base.mcfLayout(), HWCProf: true,
		Machine: machineFor(spec.MachineConfig),
	})
	valid, err := advisor.Validate(ctx, target, adv, a)
	if err != nil {
		return err
	}

	// Persist the validation runs so their profiles stay queryable; the
	// synthetic spec records what was actually collected.
	var validIDs []string
	store := func(r *advisor.RecResult, label string) {
		if r == nil || r.Exp == nil {
			return
		}
		vs := specA
		vs.Name = label
		if rec, perr := ad.store.Put(&vs, r.Exp); perr == nil {
			validIDs = append(validIDs, rec.ID)
		}
	}
	for i := range valid.Results {
		r := &valid.Results[i]
		store(r, r.Rec.Kind+":"+r.Rec.Struct)
	}
	store(valid.Combined, "combined")

	var buf bytes.Buffer
	if err := a.Render(&buf, "advice", analyzer.RenderOpts{TopN: spec.MaxRecs}); err != nil {
		return err
	}
	fmt.Fprintln(&buf)
	if err := valid.Render(&buf, a, spec.MaxRecs); err != nil {
		return err
	}

	j.mu.Lock()
	j.validIDs = validIDs
	j.results = valid.Results
	j.report = buf.Bytes()
	j.mu.Unlock()
	return nil
}

func ivDefault(v, def uint64) uint64 {
	if v == 0 {
		return def
	}
	return v
}
