package profd

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dsprof/internal/analyzer"
)

// The advise endpoint: full closed loop over the service, and the
// byte-identity of the advice report across the HTTP report API and the
// advise job's stored report.

func TestAdvisorSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		spec AdviseSpec
		ok   bool
	}{
		{"empty (all defaults)", AdviseSpec{}, true},
		{"full", AdviseSpec{Trips: 120, Layout: "optimized", MachineConfig: "scaled", Window: 8, MinShare: 0.1, MaxRecs: 5}, true},
		{"bad layout", AdviseSpec{Layout: "upside-down"}, false},
		{"bad machine", AdviseSpec{MachineConfig: "warp"}, false},
		{"negative trips", AdviseSpec{Trips: -1}, false},
		{"minShare above 1", AdviseSpec{MinShare: 1.5}, false},
		{"negative timeout", AdviseSpec{TimeoutSec: -1}, false},
	}
	for _, tc := range cases {
		if err := tc.spec.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestAdvisorHTTPFlow(t *testing.T) {
	store, sched := newTestService(t, 2)
	srv := NewServer(sched, store)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Submit the loop at smoke scale.
	body, _ := json.Marshal(AdviseSpec{Trips: 120, MachineConfig: "scaled", MaxRecs: 10})
	resp, err := http.Post(ts.URL+"/advise", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st AdviseStatus
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /advise = %d: %s", resp.StatusCode, b)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// A report request before completion is a 409, not a hang.
	j, ok := srv.adviser.Get(st.ID)
	if !ok {
		t.Fatalf("submitted job %s not in table", st.ID)
	}
	if _, ready := j.Report(); !ready {
		if code := getJSON(t, ts.URL+"/advise/"+st.ID+"/report", nil); code != http.StatusConflict && code != http.StatusOK {
			t.Errorf("early report fetch = %d, want 409 (or 200 if already done)", code)
		}
	}

	select {
	case <-j.Done():
	case <-time.After(180 * time.Second):
		t.Fatal("advise job did not finish")
	}

	var final AdviseStatus
	if code := getJSON(t, ts.URL+"/advise/"+st.ID, &final); code != http.StatusOK {
		t.Fatalf("GET /advise/%s = %d", st.ID, code)
	}
	if final.State != JobDone {
		t.Fatalf("advise job %s finished %v: %s", final.ID, final.State, final.Error)
	}
	if len(final.BaselineExps) != 2 {
		t.Fatalf("baseline experiments = %v, want 2", final.BaselineExps)
	}
	if final.Advice == nil || len(final.Advice.Recs) == 0 {
		t.Fatal("no recommendations in final status")
	}
	if len(final.ValidationExps) == 0 {
		t.Error("validation experiments not persisted to the store")
	}
	for _, id := range final.ValidationExps {
		rec, ok := store.Get(id)
		if !ok {
			t.Errorf("validation experiment %s missing from store", id)
			continue
		}
		if rec.Label == "" {
			t.Errorf("validation experiment %s has no provenance label", id)
		}
	}

	// The job's report must start with the exact bytes of the "advice"
	// report over the baseline experiments — the same bytes the
	// /reports/advice endpoint and erprint serve.
	resp, err = http.Get(ts.URL + "/advise/" + st.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	report, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET report = %d: %s", resp.StatusCode, report)
	}

	a, err := store.Analyzer(final.BaselineExps)
	if err != nil {
		t.Fatal(err)
	}
	var direct bytes.Buffer
	if err := a.Render(&direct, "advice", analyzer.RenderOpts{TopN: 10}); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(report, direct.Bytes()) {
		t.Errorf("advise report does not embed the registry advice rendering:\n%s", report)
	}

	resp, err = http.Get(ts.URL + "/reports/advice?exp=" + strings.Join(final.BaselineExps, ",") + "&n=10")
	if err != nil {
		t.Fatal(err)
	}
	viaHTTP, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /reports/advice = %d: %s", resp.StatusCode, viaHTTP)
	}
	if !bytes.Equal(viaHTTP, direct.Bytes()) {
		t.Errorf("/reports/advice differs from direct rendering:\n%s\n--- vs ---\n%s", viaHTTP, direct.Bytes())
	}

	// The validation section follows, with verdicts and the comparison.
	tail := string(report[len(direct.Bytes()):])
	for _, want := range []string{"Validation (", "accepted", "<Total>"} {
		if !strings.Contains(tail, want) {
			t.Errorf("report tail missing %q:\n%s", want, tail)
		}
	}

	// Listing and metrics reflect the finished job.
	var list []AdviseStatus
	if code := getJSON(t, ts.URL+"/advise", &list); code != http.StatusOK || len(list) != 1 {
		t.Errorf("GET /advise = %d with %d jobs, want 200 with 1", code, len(list))
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(metrics), "profd_advise_jobs_done 1") {
		t.Errorf("metrics missing advise counters:\n%s", metrics)
	}
}

func TestAdvisorHTTPErrors(t *testing.T) {
	store, sched := newTestService(t, 1)
	ts := httptest.NewServer(NewServer(sched, store).Handler())
	defer ts.Close()

	// Invalid spec → 400.
	resp, err := http.Post(ts.URL+"/advise", "application/json", strings.NewReader(`{"layout":"bogus"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad spec = %d, want 400", resp.StatusCode)
	}
	// Unknown field → 400 (DisallowUnknownFields).
	resp, err = http.Post(ts.URL+"/advise", "application/json", strings.NewReader(`{"warp":9}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field = %d, want 400", resp.StatusCode)
	}
	// Unknown job → 404 on status and report.
	if code := getJSON(t, ts.URL+"/advise/advise-99", nil); code != http.StatusNotFound {
		t.Errorf("unknown advise job = %d, want 404", code)
	}
	if code := getJSON(t, ts.URL+"/advise/advise-99/report", nil); code != http.StatusNotFound {
		t.Errorf("unknown advise report = %d, want 404", code)
	}
}
