package profd

// faults_test.go exercises the crash-safety seams: scheduler
// retry/backoff timing under a fake clock, and the store's
// Put-under-fault behaviour (graceful degradation and
// consistency under every single-fault schedule).

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dsprof/internal/collect"
	"dsprof/internal/core"
	"dsprof/internal/experiment"
	"dsprof/internal/faultfs"
)

// fakeClock records the backoff delays the scheduler requests instead
// of sleeping, so retry tests run in microseconds and can assert the
// exact delay sequence.
type fakeClock struct {
	mu     sync.Mutex
	delays []time.Duration
}

func (c *fakeClock) Sleep(ctx context.Context, d time.Duration) {
	c.mu.Lock()
	c.delays = append(c.delays, d)
	c.mu.Unlock()
}

func (c *fakeClock) Delays() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]time.Duration(nil), c.delays...)
}

// TestRetryBackoffDelays: a job that fails transiently four times
// sleeps before every retry, with exponentially growing, capped,
// jittered delays — and the eventual success stores exactly one
// experiment directory.
func TestRetryBackoffDelays(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	base, cap_ := 100*time.Millisecond, 400*time.Millisecond
	sched := NewScheduler(store, SchedulerConfig{
		Workers: 1, QueueDepth: 8,
		RetryBackoff: base, RetryBackoffMax: cap_,
	})
	t.Cleanup(sched.Close)
	clk := &fakeClock{}
	sched.clock = clk

	const failures = 4
	var calls atomic.Int64
	real := sched.runner
	sched.runner = func(ctx context.Context, spec *JobSpec) (*collect.Result, error) {
		if calls.Add(1) <= failures {
			return nil, MarkTransient(errTest)
		}
		return real(ctx, spec)
	}
	spec := specB(16)
	spec.MaxRetries = failures
	j, err := sched.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := waitState(t, j, JobDone)
	if st.Attempts != failures+1 {
		t.Errorf("attempts = %d, want %d", st.Attempts, failures+1)
	}
	if m := sched.Metrics(); m.Retried != failures {
		t.Errorf("retried metric = %d, want %d", m.Retried, failures)
	}

	delays := clk.Delays()
	if len(delays) != failures {
		t.Fatalf("scheduler slept %d times, want %d (delays %v)", len(delays), failures, delays)
	}
	// Raw exponential schedule: base, 2*base, 4*base (= cap), cap.
	raw := []time.Duration{base, 2 * base, cap_, cap_}
	for i, d := range delays {
		lo := time.Duration(float64(raw[i]) * 0.75)
		hi := time.Duration(float64(raw[i]) * 1.25)
		if d < lo || d > hi {
			t.Errorf("retry %d slept %v, want within [%v, %v] (jittered %v)", i, d, lo, hi, raw[i])
		}
	}
	// Jitter must actually vary the delays: the two capped retries use
	// the same raw delay, so identical values would mean no jitter.
	if delays[2] == delays[3] {
		t.Errorf("capped retries slept identically (%v): jitter is not applied", delays[2])
	}

	// Retries must not leave duplicate or stray experiment dirs behind.
	if got := len(store.List()); got != 1 {
		t.Fatalf("store holds %d experiments after retries, want 1", got)
	}
	entries, err := os.ReadDir(store.Root())
	if err != nil {
		t.Fatal(err)
	}
	var dirs []string
	for _, e := range entries {
		if e.IsDir() {
			dirs = append(dirs, e.Name())
		}
	}
	if len(dirs) != 1 || !strings.HasSuffix(dirs[0], ".er") {
		t.Errorf("store root holds dirs %v, want exactly one .er directory", dirs)
	}
}

// TestBackoffCancelledPromptly: cancelling a job mid-backoff ends it
// without burning the rest of the retry budget's real time.
func TestBackoffCancelledPromptly(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sched := NewScheduler(store, SchedulerConfig{
		Workers: 1, QueueDepth: 8,
		// Long enough that a non-cancellable sleep would blow the test's
		// deadline, short enough not to stall a failing run forever.
		RetryBackoff: 30 * time.Second, RetryBackoffMax: 30 * time.Second,
	})
	t.Cleanup(sched.Close)

	entered := make(chan struct{}, 8)
	sched.runner = func(ctx context.Context, spec *JobSpec) (*collect.Result, error) {
		entered <- struct{}{}
		return nil, MarkTransient(errTest)
	}
	spec := specB(16)
	spec.MaxRetries = 5
	j, err := sched.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	<-entered // first attempt has failed; the worker is in (or entering) backoff
	if err := sched.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, j, JobCanceled)
}

// makeExperiment collects one small in-memory experiment for store
// tests.
func makeExperiment(t *testing.T) (*JobSpec, *experiment.Experiment) {
	t.Helper()
	spec := specB(16)
	prog, input, cfg, err := newBuilder().Resolve(&spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.CollectRunContext(context.Background(), prog, input, cfg,
		spec.Clock, spec.ClockIntervalCycles, spec.Counters)
	if err != nil {
		t.Fatal(err)
	}
	return &spec, res.Exp
}

// TestPutFaultSweep drives Put under a single injected write error at
// every operation index of its I/O sequence. Every outcome must be
// clean: either Put fails and the root holds no committed experiment
// (orphaned temp state is allowed and swept on reopen), or Put
// succeeds — possibly degraded — and the committed directory loads.
func TestPutFaultSweep(t *testing.T) {
	spec, exp := makeExperiment(t)

	// Discover the op count of a fault-free Put.
	probe := faultfs.NewInjected(faultfs.OS, faultfs.Schedule{Op: 1 << 30})
	store, err := OpenStoreFS(probe, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Put(spec, exp); err != nil {
		t.Fatal(err)
	}
	total := probe.Ops()
	if total < 20 {
		t.Fatalf("fault-free Put used only %d ops; the sweep would be vacuous", total)
	}

	degraded, failed := 0, 0
	for op := 1; op <= total; op++ {
		inj := faultfs.NewInjected(faultfs.OS, faultfs.Schedule{Op: op, Mode: faultfs.ModeError})
		root := t.TempDir()
		st, err := OpenStoreFS(inj, root)
		if err != nil {
			// The fault hit store setup; nothing to check.
			continue
		}
		rec, err := st.Put(spec, exp)
		if err != nil {
			failed++
			if got := len(st.List()); got != 0 {
				t.Errorf("op %d: failed Put left %d indexed experiments", op, got)
			}
			continue
		}
		dir := filepath.Join(root, rec.Dir)
		if _, err := experiment.Load(dir); err != nil {
			t.Errorf("op %d: committed experiment does not load: %v", op, err)
		}
		if rec.Degraded != "" {
			degraded++
		}
		// Reopening the store must see exactly this one experiment.
		st2, err := OpenStore(root)
		if err != nil {
			t.Errorf("op %d: reopening store: %v", op, err)
			continue
		}
		if got := len(st2.List()); got != 1 {
			t.Errorf("op %d: reopened store sees %d experiments, want 1", op, got)
		}
	}
	t.Logf("put fault sweep: %d ops, %d failed cleanly, %d committed degraded", total, failed, degraded)
	if degraded == 0 {
		t.Errorf("no injection point produced a degraded commit; the graceful-degradation path is untested")
	}
}

// TestPutDegradedMarksRecord: a fault that damages the shard stream
// mid-save commits a degraded experiment whose record and meta both
// carry the recovery note, and whose salvaged events load.
func TestPutDegradedMarksRecord(t *testing.T) {
	spec, exp := makeExperiment(t)

	// Find an op whose failure yields a degraded commit by sweeping
	// until one is seen (deterministic: the first qualifying op is
	// always the same for a given experiment).
	probe := faultfs.NewInjected(faultfs.OS, faultfs.Schedule{Op: 1 << 30})
	st0, err := OpenStoreFS(probe, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st0.Put(spec, exp); err != nil {
		t.Fatal(err)
	}
	for op := 1; op <= probe.Ops(); op++ {
		inj := faultfs.NewInjected(faultfs.OS, faultfs.Schedule{Op: op, Mode: faultfs.ModeError})
		root := t.TempDir()
		st, err := OpenStoreFS(inj, root)
		if err != nil {
			continue
		}
		rec, err := st.Put(spec, exp)
		if err != nil || rec.Degraded == "" {
			continue
		}
		dir := filepath.Join(root, rec.Dir)
		got, err := experiment.Load(dir)
		if err != nil {
			t.Fatalf("op %d: degraded experiment does not load: %v", op, err)
		}
		if got.Meta.Degraded == "" {
			t.Errorf("op %d: degraded commit but Meta.Degraded is empty", op)
		}
		if !strings.HasPrefix(rec.Degraded, "recovered:") {
			t.Errorf("op %d: record degraded note %q lacks the recovery prefix", op, rec.Degraded)
		}
		return
	}
	t.Fatal("no injection point produced a degraded commit")
}
