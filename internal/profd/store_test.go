package profd

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"dsprof/internal/core"
	"dsprof/internal/experiment"
)

// testExperiment runs one quick profiled collect of the test workload
// (memoized across tests — the store tests only need a valid
// experiment, not distinct ones).
var (
	testExpOnce sync.Once
	testExpA    *experiment.Experiment
	testExpB    *experiment.Experiment
	testExpErr  error
)

func testExperiments(t *testing.T) (*experiment.Experiment, *experiment.Experiment) {
	t.Helper()
	testExpOnce.Do(func() {
		a, b := specA(32), specB(32)
		prog, input, cfg, err := newBuilder().Resolve(&a)
		if err != nil {
			testExpErr = err
			return
		}
		resA, err := core.CollectRunContext(context.Background(), prog, input, cfg,
			a.Clock, a.ClockIntervalCycles, a.Counters)
		if err != nil {
			testExpErr = err
			return
		}
		resB, err := core.CollectRunContext(context.Background(), prog, input, cfg,
			b.Clock, b.ClockIntervalCycles, b.Counters)
		if err != nil {
			testExpErr = err
			return
		}
		testExpA, testExpB = resA.Exp, resB.Exp
	})
	if testExpErr != nil {
		t.Fatal(testExpErr)
	}
	return testExpA, testExpB
}

func TestStorePutGetReopen(t *testing.T) {
	expA, expB := testExperiments(t)
	root := t.TempDir()
	store, err := OpenStore(root)
	if err != nil {
		t.Fatal(err)
	}
	sa, sb := specA(32), specB(32)
	recA, err := store.Put(&sa, expA)
	if err != nil {
		t.Fatal(err)
	}
	recB, err := store.Put(&sb, expB)
	if err != nil {
		t.Fatal(err)
	}
	if recA.ID != "exp-1" || recB.ID != "exp-2" {
		t.Errorf("ids = %s, %s; want exp-1, exp-2", recA.ID, recB.ID)
	}
	if recA.Hash == recB.Hash {
		t.Error("different configs share a hash")
	}

	// Reopen from disk: index survives, seq continues.
	store2, err := OpenStore(root)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(store2.List()); got != 2 {
		t.Fatalf("reopened store holds %d experiments, want 2", got)
	}
	if r, ok := store2.Get("exp-1"); !ok || r.Hash != recA.Hash {
		t.Error("exp-1 lost or changed across reopen")
	}
	rec3, err := store2.Put(&sa, expA)
	if err != nil {
		t.Fatal(err)
	}
	if rec3.ID != "exp-3" {
		t.Errorf("seq after reopen gave %s, want exp-3", rec3.ID)
	}
	if got := store2.ByHash(recA.Hash); len(got) != 2 {
		t.Errorf("ByHash found %d runs of config A, want 2", len(got))
	}

	dirs, err := store2.Dirs([]string{"exp-1", "exp-2"})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs {
		if _, err := experiment.Load(d); err != nil {
			t.Errorf("stored experiment %s does not load: %v", d, err)
		}
	}
	if _, err := store2.Dirs([]string{"exp-1", "exp-99"}); err == nil {
		t.Error("Dirs resolved a missing experiment")
	}
}

// TestAnalyzerMemo: the first report query reduces, repeats (in any ID
// order) hit the cache without re-running the reduction.
func TestAnalyzerMemo(t *testing.T) {
	expA, expB := testExperiments(t)
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sa, sb := specA(32), specB(32)
	recA, _ := store.Put(&sa, expA)
	recB, _ := store.Put(&sb, expB)

	a1, err := store.Analyzer([]string{recA.ID, recB.ID})
	if err != nil {
		t.Fatal(err)
	}
	if h, m := store.CacheStats(); h != 0 || m != 1 {
		t.Errorf("after first query: hits=%d misses=%d, want 0/1", h, m)
	}
	// Same set, reversed order: must be the identical reduced analyzer.
	a2, err := store.Analyzer([]string{recB.ID, recA.ID})
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Error("repeat query re-ran the reduction (distinct analyzer)")
	}
	if h, m := store.CacheStats(); h != 1 || m != 1 {
		t.Errorf("after repeat query: hits=%d misses=%d, want 1/1", h, m)
	}
	// A different subset is a distinct reduction.
	if _, err := store.Analyzer([]string{recA.ID}); err != nil {
		t.Fatal(err)
	}
	if h, m := store.CacheStats(); h != 1 || m != 2 {
		t.Errorf("after subset query: hits=%d misses=%d, want 1/2", h, m)
	}
	// Failures are not pinned: the bad query errors every time.
	if _, err := store.Analyzer([]string{"exp-99"}); err == nil {
		t.Fatal("analyzer over missing experiment succeeded")
	}
	if _, err := store.Analyzer([]string{"exp-99"}); err == nil {
		t.Fatal("analyzer over missing experiment succeeded on retry")
	}
	if _, err := store.Analyzer(nil); err == nil {
		t.Error("analyzer over empty selection succeeded")
	}
}

// TestStorePutRaceIdentical: two stores sharing one root race to
// persist the same config. Both assign the same sequence number, so the
// loser's rename lands on an existing directory that already holds the
// identical experiment — that must count as success, not a spurious
// commit failure.
func TestStorePutRaceIdentical(t *testing.T) {
	expA, _ := testExperiments(t)
	root := t.TempDir()
	s1, err := OpenStore(root)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := OpenStore(root)
	if err != nil {
		t.Fatal(err)
	}
	sa := specA(32)
	rec1, err := s1.Put(&sa, expA)
	if err != nil {
		t.Fatal(err)
	}
	rec2, err := s2.Put(&sa, expA)
	if err != nil {
		t.Fatalf("losing Put of an identical experiment failed: %v", err)
	}
	if rec1.Dir != rec2.Dir {
		t.Fatalf("stores did not collide (dirs %s vs %s); race not exercised", rec1.Dir, rec2.Dir)
	}
	if _, err := experiment.Load(filepath.Join(root, rec2.Dir)); err != nil {
		t.Errorf("experiment unreadable after racing Put: %v", err)
	}
	if _, err := os.Stat(filepath.Join(root, rec2.Dir+".tmp")); !os.IsNotExist(err) {
		t.Error("losing Put left its .tmp directory behind")
	}

	// A resident directory that is NOT the same experiment stays an error.
	bogus := filepath.Join(root, "exp-2-"+sa.ConfigHash()+".er")
	if err := os.MkdirAll(bogus, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(bogus, "meta.gob"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Put(&sa, expA); err == nil {
		t.Error("Put onto a non-matching resident directory succeeded")
	}
}

// TestShardPartialCacheReuse: overlapping experiment selections
// re-reduce only the shards not already seen — querying {A} then {A,B}
// hits every one of A's cached partials.
func TestShardPartialCacheReuse(t *testing.T) {
	expA, expB := testExperiments(t)
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sa, sb := specA(32), specB(32)
	recA, _ := store.Put(&sa, expA)
	recB, _ := store.Put(&sb, expB)

	if _, err := store.Analyzer([]string{recA.ID}); err != nil {
		t.Fatal(err)
	}
	h0, m0 := store.ShardCacheStats()
	if h0 != 0 || m0 == 0 {
		t.Fatalf("after first build: shard hits=%d misses=%d, want 0 hits and >0 misses", h0, m0)
	}
	if _, err := store.Analyzer([]string{recA.ID, recB.ID}); err != nil {
		t.Fatal(err)
	}
	if h1, _ := store.ShardCacheStats(); h1 != m0 {
		t.Errorf("querying {A,B} after {A} hit %d shard partials, want all %d of A's", h1, m0)
	}
}

func TestOpenStoreSweepsTmp(t *testing.T) {
	root := t.TempDir()
	stray := filepath.Join(root, "exp-9-deadbeef.er.tmp")
	if err := os.MkdirAll(stray, 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(root); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Error("stray .tmp directory survived OpenStore")
	}
}

func TestOpenStoreCorruptIndex(t *testing.T) {
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, indexFile), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := OpenStore(root)
	if err == nil || !strings.Contains(err.Error(), "corrupted index") {
		t.Errorf("OpenStore on corrupt index = %v, want descriptive error", err)
	}
}

func TestOpenStoreDropsVanishedDirs(t *testing.T) {
	expA, _ := testExperiments(t)
	root := t.TempDir()
	store, err := OpenStore(root)
	if err != nil {
		t.Fatal(err)
	}
	sa := specA(32)
	rec, err := store.Put(&sa, expA)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(filepath.Join(root, rec.Dir)); err != nil {
		t.Fatal(err)
	}
	store2, err := OpenStore(root)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(store2.List()); got != 0 {
		t.Errorf("vanished experiment still indexed (%d records)", got)
	}
}
