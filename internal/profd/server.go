package profd

// server.go is the HTTP surface of the profiling service (stdlib
// net/http only):
//
//	POST /jobs                submit a profiling job (JSON JobSpec)
//	GET  /jobs                list jobs
//	GET  /jobs/{id}           one job's status
//	POST /jobs/{id}/cancel    cancel a queued or running job
//	POST /advise              run the closed data-layout advisor loop
//	GET  /advise              list advise jobs
//	GET  /advise/{id}         one advise job's status
//	GET  /advise/{id}/report  the finished loop's text report
//	GET  /experiments         list stored experiments
//	GET  /reports/{name}      a named report over ?exp=id,id,...
//	GET  /metrics             service counters (Prometheus text format)
//	GET  /healthz             liveness
//
// Report renderings dispatch through analyzer.Render — the exact code
// path cmd/erprint uses — so the text bodies are byte-identical to
// erprint's output over the same experiment directories. ?format=json
// selects the JSON rendering where one exists.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"dsprof/internal/analyzer"
	"dsprof/internal/hwc"
)

// AnalyzerProvider resolves a set of experiment IDs to a reduced
// analyzer. The store is the default provider (local reduction with
// per-shard memoization); the cluster coordinator substitutes its
// distributed reduce so report queries fan partial computation out to
// the worker nodes that hold the experiment replicas.
type AnalyzerProvider interface {
	Analyzer(ids []string) (*analyzer.Analyzer, error)
}

// Server serves the profiling service API.
type Server struct {
	sched     *Scheduler
	store     *Store
	adviser   *Adviser
	analyzers AnalyzerProvider
	// extraMetrics, when set, appends additional lines to /metrics —
	// the cluster roles install their gauges here.
	extraMetrics func(io.Writer)
	// extraRoutes, when set, registers additional handlers on the mux —
	// the cluster roles mount /cluster/... endpoints here.
	extraRoutes func(*http.ServeMux)
}

// NewServer wires the API over a scheduler and its store.
func NewServer(sched *Scheduler, store *Store) *Server {
	return &Server{sched: sched, store: store, adviser: NewAdviser(sched, store), analyzers: store}
}

// SetAnalyzerProvider replaces the report path's analyzer source (the
// store's local reduction by default).
func (s *Server) SetAnalyzerProvider(p AnalyzerProvider) {
	if p != nil {
		s.analyzers = p
	}
}

// SetMetricsExtra installs a hook that appends lines to /metrics.
func (s *Server) SetMetricsExtra(fn func(io.Writer)) { s.extraMetrics = fn }

// SetExtraRoutes installs a hook that mounts additional routes on the
// handler returned by Handler.
func (s *Server) SetExtraRoutes(fn func(*http.ServeMux)) { s.extraRoutes = fn }

// NewHTTPServer wraps a handler in an http.Server hardened for
// multi-node use: header-read and write deadlines so a slow or stalled
// peer cannot pin a handler goroutine forever, and an idle timeout so
// abandoned keep-alive connections are reaped. The write timeout is
// generous because report renderings over large experiment sets are
// legitimately slow.
func NewHTTPServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleJobs)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("POST /advise", s.handleAdviseSubmit)
	mux.HandleFunc("GET /advise", s.handleAdviseList)
	mux.HandleFunc("GET /advise/{id}", s.handleAdvise)
	mux.HandleFunc("GET /advise/{id}/report", s.handleAdviseReport)
	mux.HandleFunc("GET /experiments", s.handleExperiments)
	mux.HandleFunc("GET /reports/{name}", s.handleReport)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	if s.extraRoutes != nil {
		s.extraRoutes(mux)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding job spec: %w", err))
		return
	}
	j, err := s.sched.Submit(spec)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, ErrQueueFull) {
			// Back-pressure, not rejection: tell the client when to come
			// back instead of letting it hot-loop on resubmission.
			code = http.StatusServiceUnavailable
			w.Header().Set("Retry-After", "1")
		}
		writeError(w, code, err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.Status())
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	jobs := s.sched.Jobs()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Status())
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.sched.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.sched.Cancel(id); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	j, _ := s.sched.Get(id)
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleAdviseSubmit(w http.ResponseWriter, r *http.Request) {
	var spec AdviseSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding advise spec: %w", err))
		return
	}
	j, err := s.adviser.Submit(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.Status())
}

func (s *Server) handleAdviseList(w http.ResponseWriter, r *http.Request) {
	jobs := s.adviser.Jobs()
	out := make([]AdviseStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Status())
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleAdvise(w http.ResponseWriter, r *http.Request) {
	j, ok := s.adviser.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no advise job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleAdviseReport(w http.ResponseWriter, r *http.Request) {
	j, ok := s.adviser.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no advise job %q", r.PathValue("id")))
		return
	}
	st := j.Status()
	if st.State == JobFailed {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("advise job %s failed: %s", st.ID, st.Error))
		return
	}
	report, ok := j.Report()
	if !ok {
		writeError(w, http.StatusConflict, fmt.Errorf("advise job %s is %s; report not ready", st.ID, st.State))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(report)
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.store.List())
}

// expIDs parses the ?exp= selection: repeated params and/or
// comma-separated lists.
func expIDs(r *http.Request) []string {
	var ids []string
	for _, v := range r.URL.Query()["exp"] {
		for _, id := range strings.Split(v, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
	}
	return ids
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !analyzer.ValidReport(name) {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("unknown report %q; valid reports:\n%s", name, analyzer.ReportUsage()))
		return
	}
	ids := expIDs(r)
	if len(ids) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("select experiments with ?exp=id,id,..."))
		return
	}
	q := r.URL.Query()

	opts := analyzer.RenderOpts{}
	if v := q.Get("n"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad n %q", v))
			return
		}
		opts.TopN = n
	}
	if v := q.Get("sort"); v != "" {
		sortBy := analyzer.ByUserCPU
		if v != "cpu" {
			ev, err := hwc.ParseEvent(v)
			if err != nil {
				writeError(w, http.StatusBadRequest, err)
				return
			}
			sortBy = analyzer.ByEvent(ev)
		}
		opts.Sort = &sortBy
	}

	a, err := s.analyzers.Analyzer(ids)
	if err != nil {
		code := http.StatusBadRequest
		if strings.Contains(err.Error(), "no experiment") {
			code = http.StatusNotFound
		}
		writeError(w, code, err)
		return
	}

	report := name
	if arg := q.Get("arg"); arg != "" {
		report = name + "=" + arg
	}

	if q.Get("format") == "json" {
		v, err := a.RenderJSON(report, opts)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, v)
		return
	}
	// Render into a buffer first so argument errors (e.g. members of an
	// unknown struct) still produce a clean 400 instead of a half-sent
	// 200; the buffered bytes reach the client untouched.
	var buf bytes.Buffer
	if err := a.Render(&buf, report, opts); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(buf.Bytes())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.sched.Metrics()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "profd_workers %d\n", m.Workers)
	fmt.Fprintf(w, "profd_workers_busy %d\n", m.Busy)
	fmt.Fprintf(w, "profd_jobs_queued %d\n", m.Queued)
	fmt.Fprintf(w, "profd_jobs_running %d\n", m.Running)
	fmt.Fprintf(w, "profd_jobs_done %d\n", m.Done)
	fmt.Fprintf(w, "profd_jobs_failed %d\n", m.Failed)
	fmt.Fprintf(w, "profd_jobs_canceled %d\n", m.Canceled)
	fmt.Fprintf(w, "profd_jobs_retried %d\n", m.Retried)
	fmt.Fprintf(w, "profd_simulated_cycles_total %d\n", m.SimulatedCycles)
	fmt.Fprintf(w, "profd_analyzer_cache_hits %d\n", m.CacheHits)
	fmt.Fprintf(w, "profd_analyzer_cache_misses %d\n", m.CacheMisses)
	fmt.Fprintf(w, "profd_experiments %d\n", m.Experiments)
	sh, sm := s.store.ShardCacheStats()
	fmt.Fprintf(w, "profd_shard_cache_hits %d\n", sh)
	fmt.Fprintf(w, "profd_shard_cache_misses %d\n", sm)
	ar, ad, af := s.adviser.Counters()
	fmt.Fprintf(w, "profd_advise_jobs_running %d\n", ar)
	fmt.Fprintf(w, "profd_advise_jobs_done %d\n", ad)
	fmt.Fprintf(w, "profd_advise_jobs_failed %d\n", af)
	if s.extraMetrics != nil {
		s.extraMetrics(w)
	}
}
