package profd

// scheduler.go fans profiling jobs out to a bounded pool of workers,
// each driving an independent VM instance. Runs are embarrassingly
// parallel: programs are compiled once and shared read-only, every
// worker owns its machine, and completed experiments funnel into the
// store. Jobs carry per-job timeouts, cooperative cancellation, and a
// retry budget for transient failures.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dsprof/internal/collect"
	"dsprof/internal/core"
	"dsprof/internal/xrand"
)

// SchedulerConfig sizes the worker pool and queue.
type SchedulerConfig struct {
	// Workers is the number of concurrent VM instances (default 4).
	Workers int
	// QueueDepth bounds the submission queue (default 256); Submit
	// fails fast when the queue is full.
	QueueDepth int
	// DefaultTimeout applies to jobs that set no TimeoutSec (0 = none).
	DefaultTimeout time.Duration
	// RetryBackoff is the delay before the first retry of a transiently
	// failed job; each further retry doubles it, capped at
	// RetryBackoffMax, with ±25% deterministic jitter so a burst of
	// same-fault jobs does not retry in lockstep (default 50ms).
	RetryBackoff time.Duration
	// RetryBackoffMax caps the exponential backoff (default 2s).
	RetryBackoffMax time.Duration
	// Runner, when non-nil, replaces the local VM pool's executor: each
	// worker slot calls it instead of compiling and simulating in
	// process. The cluster coordinator installs a remote executor here
	// that fans jobs out to registered worker nodes; the returned
	// result may carry only the experiment (Machine nil).
	Runner Runner
}

func (c SchedulerConfig) withDefaults() SchedulerConfig {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	if c.RetryBackoffMax <= 0 {
		c.RetryBackoffMax = 2 * time.Second
	}
	return c
}

// clock abstracts the retry delay so tests drive backoff with a fake
// clock instead of real sleeps.
type clock interface {
	// Sleep waits for d or until ctx is cancelled.
	Sleep(ctx context.Context, d time.Duration)
}

type realClock struct{}

func (realClock) Sleep(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// Job is one scheduled profiling run.
type Job struct {
	ID   string
	Spec JobSpec

	mu        sync.Mutex
	state     JobState
	err       string
	attempts  int
	expID     string
	cycles    uint64
	submitted time.Time
	started   time.Time
	finished  time.Time

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}
}

// JobStatus is a racy-free snapshot of a job, as served by the API.
type JobStatus struct {
	ID         string    `json:"id"`
	State      JobState  `json:"state"`
	Spec       JobSpec   `json:"spec"`
	Error      string    `json:"error,omitempty"`
	Attempts   int       `json:"attempts"`
	Experiment string    `json:"experiment,omitempty"`
	Cycles     uint64    `json:"cycles,omitempty"`
	Submitted  time.Time `json:"submitted"`
	Started    time.Time `json:"started,omitzero"`
	Finished   time.Time `json:"finished,omitzero"`
}

// Status returns a consistent snapshot.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		ID: j.ID, State: j.state, Spec: j.Spec, Error: j.err,
		Attempts: j.attempts, Experiment: j.expID, Cycles: j.cycles,
		Submitted: j.submitted, Started: j.started, Finished: j.finished,
	}
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job finishes or ctx is cancelled, returning the
// final status.
func (j *Job) Wait(ctx context.Context) (JobStatus, error) {
	select {
	case <-j.done:
		return j.Status(), nil
	case <-ctx.Done():
		return j.Status(), ctx.Err()
	}
}

// Runner executes one validated job spec and returns the collect
// result. The scheduler's default runner resolves the program through
// the shared builder and calls the core collect façade; tests swap it
// to inject failures.
type Runner func(ctx context.Context, spec *JobSpec) (*collect.Result, error)

// Scheduler owns the worker pool, the job table, and service counters.
type Scheduler struct {
	store *Store
	cfg   SchedulerConfig
	build *builder

	queue  chan *Job
	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string
	seq    int
	closed bool

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	runner Runner
	clock  clock

	jitterMu sync.Mutex
	jitter   *xrand.Rand

	queued   atomic.Int64
	running  atomic.Int64
	done     atomic.Int64
	failed   atomic.Int64
	canceled atomic.Int64
	retried  atomic.Int64
	cycles   atomic.Uint64
}

// NewScheduler starts a scheduler whose completed experiments persist
// into store.
func NewScheduler(store *Store, cfg SchedulerConfig) *Scheduler {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Scheduler{
		store:      store,
		cfg:        cfg,
		build:      newBuilder(),
		queue:      make(chan *Job, cfg.QueueDepth),
		jobs:       make(map[string]*Job),
		baseCtx:    ctx,
		baseCancel: cancel,
	}
	s.runner = s.collectJob
	if cfg.Runner != nil {
		s.runner = cfg.Runner
	}
	s.clock = realClock{}
	s.jitter = xrand.New(0x9e3779b97f4a7c15)
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// collectJob is the default runner: resolve program/input/machine (the
// compile memoized across jobs) and run the collector under ctx.
func (s *Scheduler) collectJob(ctx context.Context, spec *JobSpec) (*collect.Result, error) {
	prog, input, cfg, err := s.build.Resolve(spec)
	if err != nil {
		return nil, err
	}
	return core.CollectRunContextJob(ctx, prog, input, cfg, spec.Clock, spec.ClockIntervalCycles, spec.Counters, spec.Provenance, spec.Backend)
}

// Submit validates and queues a job, returning it immediately.
func (s *Scheduler) Submit(spec JobSpec) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, errors.New("profd: scheduler is shut down")
	}
	s.seq++
	id := fmt.Sprintf("job-%d", s.seq)
	ctx, cancel := context.WithCancel(s.baseCtx)
	j := &Job{
		ID: id, Spec: spec, state: JobQueued, submitted: time.Now(),
		ctx: ctx, cancel: cancel, done: make(chan struct{}),
	}
	// The send stays under s.mu so Close (which also takes s.mu before
	// closing the queue) can never close the channel mid-send.
	select {
	case s.queue <- j:
		s.jobs[id] = j
		s.order = append(s.order, id)
		s.mu.Unlock()
		s.queued.Add(1)
		return j, nil
	default:
		s.seq--
		s.mu.Unlock()
		cancel()
		return nil, fmt.Errorf("%w (%d jobs)", ErrQueueFull, s.cfg.QueueDepth)
	}
}

// Get looks up a job by ID.
func (s *Scheduler) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns every job in submission order.
func (s *Scheduler) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Cancel cancels a job: a queued job finishes immediately as canceled,
// a running job's VM stops at the next cancellation check and no
// experiment is stored. Cancelling a finished job is a no-op.
func (s *Scheduler) Cancel(id string) error {
	j, ok := s.Get(id)
	if !ok {
		return fmt.Errorf("profd: no job %q", id)
	}
	j.mu.Lock()
	switch j.state {
	case JobQueued:
		j.state = JobCanceled
		j.err = "canceled before start"
		j.finished = time.Now()
		close(j.done)
		j.mu.Unlock()
		j.cancel()
		s.queued.Add(-1)
		s.canceled.Add(1)
		return nil
	case JobRunning:
		j.mu.Unlock()
		j.cancel()
		return nil
	default:
		j.mu.Unlock()
		return nil
	}
}

// ErrQueueFull is returned by Submit when the bounded queue is at
// capacity; the HTTP layer maps it to 503 + Retry-After.
var ErrQueueFull = errors.New("profd: queue full")

// Drain gracefully shuts the scheduler down: it stops accepting new
// jobs, lets every queued and running job finish (rather than
// cancelling them, as Close does), then closes the pool. If ctx expires
// first, the remaining jobs are cancelled Close-style. Either way the
// scheduler is fully stopped on return.
func (s *Scheduler) Drain(ctx context.Context) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true // Submit now refuses; queued jobs keep draining
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Jobs cannot be added anymore, so one pass over the current
		// table waits for everything in flight.
		for _, j := range s.Jobs() {
			select {
			case <-j.Done():
			case <-ctx.Done():
				return
			}
		}
	}()
	select {
	case <-done:
	case <-ctx.Done():
	}
	s.baseCancel() // cancels stragglers only when ctx expired
	close(s.queue)
	s.wg.Wait()
}

// Close stops accepting jobs, cancels everything in flight, and waits
// for the workers to drain.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.baseCancel()
	close(s.queue)
	s.wg.Wait()
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runOne(j)
	}
}

// runOne drives one job through its attempts to a terminal state.
func (s *Scheduler) runOne(j *Job) {
	j.mu.Lock()
	if j.state != JobQueued { // canceled while queued
		j.mu.Unlock()
		return
	}
	j.state = JobRunning
	j.started = time.Now()
	j.mu.Unlock()
	s.queued.Add(-1)
	s.running.Add(1)
	defer s.running.Add(-1)

	ctx := j.ctx
	timeout := s.cfg.DefaultTimeout
	if j.Spec.TimeoutSec > 0 {
		timeout = time.Duration(j.Spec.TimeoutSec * float64(time.Second))
	}
	var cancelTimeout context.CancelFunc
	if timeout > 0 {
		ctx, cancelTimeout = context.WithTimeout(ctx, timeout)
		defer cancelTimeout()
	}

	var (
		res *collect.Result
		err error
	)
	for attempt := 0; ; attempt++ {
		j.mu.Lock()
		j.attempts = attempt + 1
		j.mu.Unlock()
		res, err = s.runner(ctx, &j.Spec)
		if err == nil || ctx.Err() != nil || !IsTransient(err) || attempt >= j.Spec.MaxRetries {
			break
		}
		s.retried.Add(1)
		// Back off before the retry: exponential in the attempt number,
		// capped, jittered. The sleep honours cancellation, so a Cancel
		// or shutdown mid-backoff ends the job promptly.
		s.clock.Sleep(ctx, s.backoff(attempt))
	}
	// A cancellation that landed during backoff (rather than inside the
	// runner) leaves the transient error in err; classify it as the
	// cancellation it is.
	if err != nil && errors.Is(ctx.Err(), context.Canceled) {
		err = ctx.Err()
	}

	finish := func(state JobState, msg string) {
		j.mu.Lock()
		j.state = state
		j.err = msg
		j.finished = time.Now()
		close(j.done)
		j.mu.Unlock()
	}

	switch {
	case err != nil:
		// Cancellation (including scheduler shutdown) is a canceled
		// job; a timeout or simulation error is a failure. Either way
		// nothing reaches the store.
		if errors.Is(err, context.Canceled) {
			s.canceled.Add(1)
			finish(JobCanceled, err.Error())
		} else {
			s.failed.Add(1)
			finish(JobFailed, err.Error())
		}
	default:
		// A remote executor ships back the experiment without the
		// machine it ran on; the run statistics live in the experiment
		// header either way.
		st := res.Exp.Meta.Stats
		if res.Machine != nil {
			st = res.Machine.Stats()
		}
		s.cycles.Add(st.Cycles)
		rec, perr := s.store.Put(&j.Spec, res.Exp)
		if perr != nil {
			s.failed.Add(1)
			finish(JobFailed, perr.Error())
			return
		}
		j.mu.Lock()
		j.expID = rec.ID
		j.cycles = st.Cycles
		j.mu.Unlock()
		s.done.Add(1)
		finish(JobDone, "")
	}
}

// backoff computes the delay before the retry following failed attempt
// number attempt (0-based): RetryBackoff << attempt, capped at
// RetryBackoffMax, scaled by a deterministic jitter factor in
// [0.75, 1.25).
func (s *Scheduler) backoff(attempt int) time.Duration {
	d := s.cfg.RetryBackoff
	for i := 0; i < attempt && d < s.cfg.RetryBackoffMax; i++ {
		d *= 2
	}
	if d > s.cfg.RetryBackoffMax {
		d = s.cfg.RetryBackoffMax
	}
	s.jitterMu.Lock()
	f := 0.75 + 0.5*s.jitter.Float64()
	s.jitterMu.Unlock()
	return time.Duration(float64(d) * f)
}

// Metrics is a snapshot of the service counters.
type Metrics struct {
	Workers         int    `json:"workers"`
	Busy            int64  `json:"busyWorkers"`
	Queued          int64  `json:"jobsQueued"`
	Running         int64  `json:"jobsRunning"`
	Done            int64  `json:"jobsDone"`
	Failed          int64  `json:"jobsFailed"`
	Canceled        int64  `json:"jobsCanceled"`
	Retried         int64  `json:"jobsRetried"`
	SimulatedCycles uint64 `json:"simulatedCycles"`
	CacheHits       uint64 `json:"analyzerCacheHits"`
	CacheMisses     uint64 `json:"analyzerCacheMisses"`
	Experiments     int    `json:"experiments"`
}

// Metrics returns the current service counters.
func (s *Scheduler) Metrics() Metrics {
	hits, misses := s.store.CacheStats()
	return Metrics{
		Workers:         s.cfg.Workers,
		Busy:            s.running.Load(),
		Queued:          s.queued.Load(),
		Running:         s.running.Load(),
		Done:            s.done.Load(),
		Failed:          s.failed.Load(),
		Canceled:        s.canceled.Load(),
		Retried:         s.retried.Load(),
		SimulatedCycles: s.cycles.Load(),
		CacheHits:       hits,
		CacheMisses:     misses,
		Experiments:     s.store.Count(),
	}
}

// WaitAll blocks until every currently known job is terminal or ctx is
// cancelled; it returns the jobs in submission order.
func (s *Scheduler) WaitAll(ctx context.Context) ([]*Job, error) {
	jobs := s.Jobs()
	for _, j := range jobs {
		select {
		case <-j.Done():
		case <-ctx.Done():
			return jobs, ctx.Err()
		}
	}
	return jobs, nil
}
