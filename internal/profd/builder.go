package profd

// builder.go resolves job specs into runnable (program, input, machine)
// triples, memoizing compiles and generated MCF instances so a sweep of
// N jobs over one program compiles once and generates each distinct
// instance once, no matter how many workers race on it.

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"dsprof/internal/asm"
	"dsprof/internal/cc"
	"dsprof/internal/core"
	"dsprof/internal/machine"
	"dsprof/internal/mcf"
	"dsprof/internal/nbody"
)

// progEntry is one memoized compile (singleflight: the first goroutine
// to want the key compiles, the rest wait on the Once).
type progEntry struct {
	once sync.Once
	prog *asm.Program
	err  error
}

type inputEntry struct {
	once  sync.Once
	input []int64
}

type builder struct {
	mu     sync.Mutex
	progs  map[string]*progEntry
	inputs map[string]*inputEntry
}

func newBuilder() *builder {
	return &builder{
		progs:  make(map[string]*progEntry),
		inputs: make(map[string]*inputEntry),
	}
}

func (b *builder) progEntryFor(key string) *progEntry {
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.progs[key]
	if e == nil {
		e = &progEntry{}
		b.progs[key] = e
	}
	return e
}

func (b *builder) inputEntryFor(key string) *inputEntry {
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.inputs[key]
	if e == nil {
		e = &inputEntry{}
		b.inputs[key] = e
	}
	return e
}

// Resolve turns a validated spec into the program, input vector and
// machine configuration for one collect run. Compiled programs are
// shared across jobs: they are read-only during simulation.
func (b *builder) Resolve(spec *JobSpec) (*asm.Program, []int64, *machine.Config, error) {
	prog, err := b.program(spec)
	if err != nil {
		return nil, nil, nil, err
	}
	input := spec.Input
	if len(input) == 0 {
		switch spec.Program {
		case ProgramMCF:
			input = b.mcfInput(spec)
		case ProgramNBody:
			input = b.nbodyInput(spec)
		}
	}
	cfg := machineFor(spec.MachineConfig)
	return prog, input, cfg, nil
}

func (b *builder) program(spec *JobSpec) (*asm.Program, error) {
	switch {
	case spec.Program == ProgramMCF:
		key := fmt.Sprintf("mcf/%s/%d", spec.Layout, spec.PageSizeHeap)
		e := b.progEntryFor(key)
		e.once.Do(func() {
			e.prog, e.err = mcf.Program(spec.mcfLayout(), cc.Options{
				HWCProf:      true,
				PageSizeHeap: spec.PageSizeHeap,
			})
		})
		return e.prog, e.err
	case spec.Program == ProgramNBody:
		key := fmt.Sprintf("nbody/%s/%d", spec.Layout, spec.PageSizeHeap)
		e := b.progEntryFor(key)
		e.once.Do(func() {
			e.prog, e.err = nbody.Program(spec.nbodyVariant(), cc.Options{
				HWCProf:      true,
				PageSizeHeap: spec.PageSizeHeap,
			})
		})
		return e.prog, e.err
	case spec.Source != "":
		name := spec.Name
		if name == "" {
			name = "job"
		}
		sum := sha256.Sum256([]byte(spec.Source))
		key := fmt.Sprintf("src/%s/%d/%s", name, spec.PageSizeHeap, hex.EncodeToString(sum[:8]))
		e := b.progEntryFor(key)
		e.once.Do(func() {
			e.prog, e.err = core.Compile(name, []cc.Source{{Name: name + ".mc", Text: spec.Source}},
				&cc.Options{Name: name, HWCProf: true, PageSizeHeap: spec.PageSizeHeap})
		})
		return e.prog, e.err
	default:
		// A path to a compiled object file; loaded fresh each time so
		// on-disk changes between jobs are picked up.
		return asm.LoadFile(spec.Program)
	}
}

func (b *builder) mcfInput(spec *JobSpec) []int64 {
	trips := spec.Trips
	if trips == 0 {
		trips = 1200
	}
	seed := spec.Seed
	if seed == 0 {
		seed = 20030717
	}
	key := fmt.Sprintf("mcf/%d/%d", trips, seed)
	e := b.inputEntryFor(key)
	e.once.Do(func() {
		e.input = mcf.Generate(mcf.DefaultGenParams(trips, seed)).Encode()
	})
	return e.input
}

func (b *builder) nbodyInput(spec *JobSpec) []int64 {
	papers := spec.Trips
	if papers == 0 {
		papers = 2000
	}
	seed := spec.Seed
	if seed == 0 {
		seed = 20030717
	}
	key := fmt.Sprintf("nbody/%d/%d", papers, seed)
	e := b.inputEntryFor(key)
	e.once.Do(func() {
		e.input = nbody.Generate(nbody.DefaultGenParams(papers, seed)).Encode()
	})
	return e.input
}

// machineFor maps the spec's machine selector to a configuration. The
// default is the paper-scale study machine, matching core.RunStudy.
func machineFor(name string) *machine.Config {
	var cfg machine.Config
	switch name {
	case "default":
		cfg = machine.DefaultConfig()
	case "scaled":
		cfg = machine.ScaledConfig()
	default: // "study", ""
		cfg = core.StudyMachine()
	}
	return &cfg
}
