package profd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dsprof/internal/analyzer"
	"dsprof/internal/experiment"
)

func newTestServer(t *testing.T) (*httptest.Server, *Store, *Scheduler) {
	t.Helper()
	store, sched := newTestService(t, 4)
	ts := httptest.NewServer(NewServer(sched, store).Handler())
	t.Cleanup(ts.Close)
	return ts, store, sched
}

func postJob(t *testing.T, ts *httptest.Server, spec JobSpec) JobStatus {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /jobs = %d: %s", resp.StatusCode, b)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func waitJobDone(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		var st JobStatus
		if code := getJSON(t, ts.URL+"/jobs/"+id, &st); code != http.StatusOK {
			t.Fatalf("GET /jobs/%s = %d", id, code)
		}
		if st.State.Terminal() {
			if st.State != JobDone {
				t.Fatalf("job %s finished %v: %s", id, st.State, st.Error)
			}
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %v", id, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// metricValue extracts one counter from the /metrics text body.
func metricValue(t *testing.T, body, name string) int64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		var v int64
		if _, err := fmt.Sscanf(line, name+" %d", &v); err == nil {
			return v
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, body)
	return 0
}

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// TestServerEndToEnd drives the full paper workflow over HTTP: submit
// the A/B pair, wait, fetch the merged objects report, and check it is
// byte-identical to what erprint renders over the same stored
// experiment directories; then verify the analyzer cache serves the
// repeat query.
func TestServerEndToEnd(t *testing.T) {
	ts, store, _ := newTestServer(t)

	const n = 64
	ja := postJob(t, ts, specA(n))
	jb := postJob(t, ts, specB(n))
	if ja.State != JobQueued && ja.State != JobRunning {
		t.Fatalf("accepted job in state %v", ja.State)
	}
	sa := waitJobDone(t, ts, ja.ID)
	sb := waitJobDone(t, ts, jb.ID)

	// The report endpoint.
	reportURL := fmt.Sprintf("%s/reports/objects?exp=%s,%s", ts.URL, sa.Experiment, sb.Experiment)
	code, got := getBody(t, reportURL)
	if code != http.StatusOK {
		t.Fatalf("GET objects report = %d: %s", code, got)
	}

	// The erprint path over the same directories: load the stored
	// experiment dirs and render through the shared dispatcher.
	dirs, err := store.Dirs([]string{sa.Experiment, sb.Experiment})
	if err != nil {
		t.Fatal(err)
	}
	var exps []*experiment.Experiment
	for _, d := range dirs {
		e, err := experiment.Load(d)
		if err != nil {
			t.Fatal(err)
		}
		exps = append(exps, e)
	}
	a, err := analyzer.New(exps...)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := a.Render(&want, "objects", analyzer.RenderOpts{}); err != nil {
		t.Fatal(err)
	}
	if got != want.String() {
		t.Errorf("HTTP objects report differs from erprint rendering\n--- http ---\n%s\n--- erprint ---\n%s",
			got, want.String())
	}

	// Repeat query must be served from the analyzer memo.
	_, metrics := getBody(t, ts.URL+"/metrics")
	misses0 := metricValue(t, metrics, "profd_analyzer_cache_misses")
	hits0 := metricValue(t, metrics, "profd_analyzer_cache_hits")
	if code, _ := getBody(t, reportURL); code != http.StatusOK {
		t.Fatalf("repeat report query = %d", code)
	}
	_, metrics = getBody(t, ts.URL+"/metrics")
	if h := metricValue(t, metrics, "profd_analyzer_cache_hits"); h != hits0+1 {
		t.Errorf("cache hits after repeat query = %d, want %d", h, hits0+1)
	}
	if m := metricValue(t, metrics, "profd_analyzer_cache_misses"); m != misses0 {
		t.Errorf("cache misses grew on repeat query: %d -> %d", misses0, m)
	}
	if d := metricValue(t, metrics, "profd_jobs_done"); d != 2 {
		t.Errorf("profd_jobs_done = %d, want 2", d)
	}

	// JSON rendering and sort/n parameters.
	var objJSON struct {
		Objects []analyzer.NamedRowJSON `json:"objects"`
	}
	if code := getJSON(t, reportURL+"&format=json", &objJSON); code != http.StatusOK {
		t.Fatalf("json objects report = %d", code)
	}
	if len(objJSON.Objects) == 0 {
		t.Fatal("json objects report is empty")
	}
	if code, _ := getBody(t, reportURL+"&sort=ecstall&n=3"); code != http.StatusOK {
		t.Errorf("sorted report = %d, want 200", code)
	}

	// Experiments listing.
	var recs []*ExpRecord
	if code := getJSON(t, ts.URL+"/experiments", &recs); code != http.StatusOK || len(recs) != 2 {
		t.Errorf("GET /experiments = %d with %d records, want 200 with 2", code, len(recs))
	}
}

func TestServerErrors(t *testing.T) {
	ts, _, _ := newTestServer(t)

	// Unknown report name: 404 listing the valid reports.
	code, body := getBody(t, ts.URL+"/reports/bogus?exp=exp-1")
	if code != http.StatusNotFound || !strings.Contains(body, "objects") {
		t.Errorf("unknown report = %d (%q), want 404 listing reports", code, body)
	}
	// Missing exp selection.
	if code, _ := getBody(t, ts.URL+"/reports/objects"); code != http.StatusBadRequest {
		t.Errorf("report without exp = %d, want 400", code)
	}
	// Unknown experiment ID.
	if code, _ := getBody(t, ts.URL+"/reports/objects?exp=exp-42"); code != http.StatusNotFound {
		t.Errorf("report over missing experiment = %d, want 404", code)
	}
	// Bad sort event.
	if code, _ := getBody(t, ts.URL+"/reports/objects?exp=exp-1&sort=zorp"); code != http.StatusBadRequest {
		t.Errorf("bad sort = %d, want 400", code)
	}
	// Invalid job spec.
	resp, err := http.Post(ts.URL+"/jobs", "application/json",
		strings.NewReader(`{"program":"mcf"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unprofiled job spec = %d, want 400", resp.StatusCode)
	}
	// Unknown JSON field.
	resp, err = http.Post(ts.URL+"/jobs", "application/json",
		strings.NewReader(`{"program":"mcf","clock":true,"frobnicate":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown spec field = %d, want 400", resp.StatusCode)
	}
	// Unknown job.
	if code := getJSON(t, ts.URL+"/jobs/job-42", nil); code != http.StatusNotFound {
		t.Errorf("GET unknown job = %d, want 404", code)
	}
	// Health.
	if code, body := getBody(t, ts.URL+"/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("healthz = %d %q", code, body)
	}
}

func TestServerCancel(t *testing.T) {
	ts, store, _ := newTestServer(t)
	st := postJob(t, ts, spinSpec())

	resp, err := http.Post(ts.URL+"/jobs/"+st.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel = %d", resp.StatusCode)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		var js JobStatus
		getJSON(t, ts.URL+"/jobs/"+st.ID, &js)
		if js.State.Terminal() {
			if js.State != JobCanceled {
				t.Fatalf("canceled job finished %v", js.State)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("cancellation never landed")
		}
		time.Sleep(time.Millisecond)
	}
	if len(store.List()) != 0 {
		t.Error("canceled job left an experiment in the store")
	}
	// Cancel of unknown job: 404.
	resp, err = http.Post(ts.URL+"/jobs/job-99/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("cancel unknown job = %d, want 404", resp.StatusCode)
	}
}
