// Package profd is the long-running profiling service: a job scheduler
// that fans profiling runs out to a bounded pool of independent VM
// workers, an experiment store that persists and indexes completed
// experiment directories and memoizes reduced analyzers, and an HTTP
// API serving job control, the paper's reports, and service metrics.
//
// The paper's workflow is inherently multi-run — four counters need two
// collect invocations, merged at analysis time — and the deterministic
// machine/collect stack is embarrassingly parallel across runs, so the
// scheduler runs experiment A (clock,+ecstall,+ecrm), experiment B
// (+ecref,+dtlbm), and whole parameter sweeps concurrently, with
// per-job timeout, cancellation and retry-on-transient-failure.
package profd

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"

	"dsprof/internal/collect"
	"dsprof/internal/machine"
	"dsprof/internal/mcf"
	"dsprof/internal/nbody"
)

// Program selectors understood by JobSpec.Program.
const (
	// ProgramMCF is the built-in MCF workload (the paper's case study);
	// Layout/Trips/Seed select the variant and instance.
	ProgramMCF = "mcf"
	// ProgramNBody is the built-in n-body force-layout workload. It
	// reuses the same spec fields: Layout selects the link encoding
	// ("baseline" or "compressed"), Trips the instance size in papers,
	// Seed the graph seed.
	ProgramNBody = "nbody"
)

// JobSpec describes one profiling job: a program, its input, and the
// counter specification for a single collect run.
type JobSpec struct {
	// Program selects the target: "mcf" for the built-in MCF workload,
	// or a path to a compiled .obj file readable by the service. Leave
	// empty to compile Source instead.
	Program string `json:"program,omitempty"`
	// Source is inline MC source text, compiled with the paper's
	// memory-profiling flags. Name names the resulting program.
	Source string `json:"source,omitempty"`
	Name   string `json:"name,omitempty"`

	// Built-in workload parameters (Program == "mcf" or "nbody").
	// For mcf, Layout is "paper" (default) or "optimized" and Trips the
	// instance size in timetabled trips (default 1200); for nbody,
	// Layout is "baseline" (default) or "compressed" and Trips the
	// instance size in papers (default 2000).
	Layout string `json:"layout,omitempty"`
	Trips  int    `json:"trips,omitempty"`
	Seed   uint64 `json:"seed,omitempty"` // instance seed (default 20030717)

	// PageSizeHeap compiles with -xpagesize_heap (0 = default 8 KB).
	PageSizeHeap uint64 `json:"pageSizeHeap,omitempty"`

	// Input is the program's input vector, for non-MCF programs.
	Input []int64 `json:"input,omitempty"`

	// Clock enables clock profiling (-p on); ClockIntervalCycles
	// overrides the tick (0 = collector default).
	Clock               bool   `json:"clock,omitempty"`
	ClockIntervalCycles uint64 `json:"clockIntervalCycles,omitempty"`
	// Counters is the collect -h specification, e.g. "+ecstall,lo,+ecrm,on".
	Counters string `json:"counters,omitempty"`

	// MachineConfig selects the simulated system: "default", "scaled",
	// or "study" (the paper-scale study machine). Default: "study".
	MachineConfig string `json:"machine,omitempty"`

	// Provenance also records allocation-site provenance (heap block
	// birth/death with site PCs) into the experiment, enabling the
	// object-centric reports (site-heat, obj-timeline, dead-objects,
	// pool-advice). Counter event shards are unaffected either way.
	Provenance bool `json:"provenance,omitempty"`

	// Backend selects the simulator execution engine: "" or
	// "translated" (default) for the superblock-translating backend,
	// "fast" for the event-horizon interpreter alone. The experiment
	// produced is byte-identical either way, so the choice is
	// deliberately NOT part of ConfigHash: a cached result collected on
	// one backend answers a resubmission on the other.
	Backend string `json:"backend,omitempty"`

	// TimeoutSec bounds the run's wall-clock time (0 = scheduler default).
	TimeoutSec float64 `json:"timeoutSec,omitempty"`
	// MaxRetries re-runs the job after a transient failure (default 0).
	MaxRetries int `json:"maxRetries,omitempty"`
}

// Validate checks the spec is well-formed before it is queued, so
// submission errors surface synchronously at the API boundary.
func (s *JobSpec) Validate() error {
	selectors := 0
	if s.Program != "" {
		selectors++
	}
	if s.Source != "" {
		selectors++
	}
	if selectors == 0 {
		return errors.New("profd: job needs a program: set program or source")
	}
	if selectors > 1 {
		return errors.New("profd: program and source are mutually exclusive")
	}
	if s.Program == ProgramMCF || s.Program == ProgramNBody {
		if s.Program == ProgramMCF {
			switch s.Layout {
			case "", "paper", "optimized":
			default:
				return fmt.Errorf("profd: unknown mcf layout %q (want paper or optimized)", s.Layout)
			}
		} else {
			switch s.Layout {
			case "", "baseline", "compressed":
			default:
				return fmt.Errorf("profd: unknown nbody layout %q (want baseline or compressed)", s.Layout)
			}
		}
		if s.Trips < 0 {
			return fmt.Errorf("profd: negative trips %d", s.Trips)
		}
	}
	switch s.MachineConfig {
	case "", "default", "scaled", "study":
	default:
		return fmt.Errorf("profd: unknown machine config %q (want default, scaled or study)", s.MachineConfig)
	}
	if !s.Clock && s.Counters == "" {
		return errors.New("profd: job profiles nothing: enable clock or arm counters")
	}
	if _, err := collect.ParseCounterSpec(s.Counters); err != nil {
		return err
	}
	if _, err := machine.ParseBackend(s.Backend); err != nil {
		return err
	}
	if s.TimeoutSec < 0 {
		return fmt.Errorf("profd: negative timeout %g", s.TimeoutSec)
	}
	if s.MaxRetries < 0 {
		return fmt.Errorf("profd: negative maxRetries %d", s.MaxRetries)
	}
	return nil
}

// mcfLayout maps the spec's layout name to the workload parameter.
func (s *JobSpec) mcfLayout() mcf.Layout {
	if s.Layout == "optimized" {
		return mcf.LayoutOptimized
	}
	return mcf.LayoutPaper
}

// nbodyVariant maps the spec's layout name to the link encoding.
func (s *JobSpec) nbodyVariant() nbody.Variant {
	if s.Layout == "compressed" {
		return nbody.VariantCompressed
	}
	return nbody.VariantBaseline
}

// ConfigHash is the experiment-store index key: a digest of every field
// that determines the profiled run's outcome (program identity, input,
// counter arming, machine selection). Backend is excluded on purpose:
// all execution engines produce byte-identical experiments (the
// differential goldens enforce it), so runs differing only in Backend
// are the same experiment. Jobs with equal hashes produce
// byte-identical profiles on the deterministic simulator.
func (s *JobSpec) ConfigHash() string {
	canon := struct {
		Program, Source, Name, Layout string
		Trips                         int
		Seed, PageSizeHeap, ClockTick uint64
		Input                         []int64
		Clock                         bool
		Counters, Machine             string
		Provenance                    bool
	}{
		Program: s.Program, Source: s.Source, Name: s.Name, Layout: s.Layout,
		Trips: s.Trips, Seed: s.Seed, PageSizeHeap: s.PageSizeHeap,
		ClockTick: s.ClockIntervalCycles, Input: s.Input, Clock: s.Clock,
		Counters: s.Counters, Machine: s.MachineConfig,
		Provenance: s.Provenance,
	}
	b, _ := json.Marshal(&canon)
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}

// JobState is a job's lifecycle phase.
type JobState string

// Job lifecycle states.
const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// transientError marks an error as transient, i.e. worth retrying.
type transientError struct{ err error }

func (t *transientError) Error() string { return t.err.Error() }
func (t *transientError) Unwrap() error { return t.err }

// MarkTransient wraps err so the scheduler's retry policy re-runs the
// job (up to its MaxRetries). The deterministic simulator itself never
// fails transiently; the marker exists for custom runners and for
// infrastructure errors like filesystem contention.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err}
}

// IsTransient reports whether err was wrapped by MarkTransient.
func IsTransient(err error) bool {
	var t *transientError
	return errors.As(err, &t)
}
