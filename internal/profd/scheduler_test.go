package profd

import (
	"bytes"
	"context"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dsprof/internal/analyzer"
	"dsprof/internal/collect"
	"dsprof/internal/core"
)

// serialObjects is the reference rendering: run the same A/B pair
// serially through the collect façade (the path erprint consumes) and
// render the objects report from the in-memory experiments.
func serialObjects(t *testing.T, n int64) []byte {
	t.Helper()
	a, b := specA(n), specB(n)
	prog, input, cfg, err := newBuilder().Resolve(&a)
	if err != nil {
		t.Fatal(err)
	}
	resA, err := core.CollectRunContext(context.Background(), prog, input, cfg,
		a.Clock, a.ClockIntervalCycles, a.Counters)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := core.CollectRunContext(context.Background(), prog, input, cfg,
		b.Clock, b.ClockIntervalCycles, b.Counters)
	if err != nil {
		t.Fatal(err)
	}
	an, err := analyzer.New(resA.Exp, resB.Exp)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := an.Render(&buf, "objects", analyzer.RenderOpts{}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestParallelJobsDeterministic fans N jobs onto W workers and checks
// that (a) every job completes, (b) each replica of the merged A+B
// study renders byte-identically, and (c) the parallel renderings match
// a serial run of the same pair exactly.
func TestParallelJobsDeterministic(t *testing.T) {
	const n, replicas = 64, 3
	store, sched := newTestService(t, 4)

	type pair struct{ a, b *Job }
	var pairs []pair
	for i := 0; i < replicas; i++ {
		ja, err := sched.Submit(specA(n))
		if err != nil {
			t.Fatal(err)
		}
		jb, err := sched.Submit(specB(n))
		if err != nil {
			t.Fatal(err)
		}
		pairs = append(pairs, pair{ja, jb})
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if _, err := sched.WaitAll(ctx); err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		waitState(t, p.a, JobDone)
		waitState(t, p.b, JobDone)
	}
	if got := len(store.List()); got != 2*replicas {
		t.Fatalf("store holds %d experiments, want %d", got, 2*replicas)
	}

	want := serialObjects(t, n)
	for i, p := range pairs {
		a, err := store.Analyzer([]string{p.a.Status().Experiment, p.b.Status().Experiment})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := a.Render(&buf, "objects", analyzer.RenderOpts{}); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Errorf("replica %d: parallel objects report differs from serial run\n--- parallel ---\n%s\n--- serial ---\n%s",
				i, buf.Bytes(), want)
		}
	}

	m := sched.Metrics()
	if m.Done != 2*replicas || m.Failed != 0 || m.Canceled != 0 {
		t.Errorf("metrics done=%d failed=%d canceled=%d, want %d/0/0",
			m.Done, m.Failed, m.Canceled, 2*replicas)
	}
	if m.SimulatedCycles == 0 {
		t.Error("no simulated cycles recorded")
	}
}

// storeDirEntries returns the non-index entries under the store root.
func storeDirEntries(t *testing.T, store *Store) []string {
	t.Helper()
	entries, err := os.ReadDir(store.Root())
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if e.Name() != indexFile {
			names = append(names, e.Name())
		}
	}
	return names
}

// TestCancelRunningJob cancels a job mid-simulation and checks the VM
// stops promptly and nothing — not even a temp directory — reaches the
// store.
func TestCancelRunningJob(t *testing.T) {
	store, sched := newTestService(t, 1)
	j, err := sched.Submit(spinSpec())
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the worker to pick it up.
	deadline := time.Now().Add(30 * time.Second)
	for j.Status().State != JobRunning {
		if time.Now().After(deadline) {
			t.Fatalf("job never started (state %v)", j.Status().State)
		}
		time.Sleep(time.Millisecond)
	}
	if err := sched.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	st := waitState(t, j, JobCanceled)
	if !strings.Contains(st.Error, "canceled") {
		t.Errorf("canceled job error = %q, want mention of cancellation", st.Error)
	}
	if got := len(store.List()); got != 0 {
		t.Errorf("store holds %d experiments after cancellation, want 0", got)
	}
	if names := storeDirEntries(t, store); len(names) != 0 {
		t.Errorf("store root has leftovers after cancellation: %v", names)
	}
	if m := sched.Metrics(); m.Canceled != 1 {
		t.Errorf("canceled metric = %d, want 1", m.Canceled)
	}
}

// TestCancelQueuedJob cancels a job that is still waiting behind a
// busy worker: it must finish immediately, without running.
func TestCancelQueuedJob(t *testing.T) {
	_, sched := newTestService(t, 1)
	blocker, err := sched.Submit(spinSpec())
	if err != nil {
		t.Fatal(err)
	}
	queued, err := sched.Submit(spinSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	st := waitState(t, queued, JobCanceled)
	if !st.Started.IsZero() {
		t.Error("canceled queued job reports a start time")
	}
	sched.Cancel(blocker.ID)
	waitState(t, blocker, JobCanceled)
}

// TestJobTimeout runs a spin program under a tiny per-job timeout.
func TestJobTimeout(t *testing.T) {
	store, sched := newTestService(t, 1)
	spec := spinSpec()
	spec.TimeoutSec = 0.2
	j, err := sched.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := waitState(t, j, JobFailed)
	if !strings.Contains(st.Error, "deadline") {
		t.Errorf("timed-out job error = %q, want deadline exceeded", st.Error)
	}
	if got := len(store.List()); got != 0 {
		t.Errorf("store holds %d experiments after timeout, want 0", got)
	}
}

// TestRetryTransient swaps the scheduler's runner for one that fails
// transiently before delegating to the real collector.
func TestRetryTransient(t *testing.T) {
	_, sched := newTestService(t, 2)
	var calls atomic.Int64
	real := sched.runner
	sched.runner = func(ctx context.Context, spec *JobSpec) (*collect.Result, error) {
		if calls.Add(1) <= 2 {
			return nil, MarkTransient(errTest)
		}
		return real(ctx, spec)
	}
	spec := specB(16)
	spec.MaxRetries = 3
	j, err := sched.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := waitState(t, j, JobDone)
	if st.Attempts != 3 {
		t.Errorf("attempts = %d, want 3", st.Attempts)
	}
	if m := sched.Metrics(); m.Retried != 2 {
		t.Errorf("retried metric = %d, want 2", m.Retried)
	}
}

// TestNoRetryOnPermanentFailure: non-transient errors consume no retry
// budget, and exhausted transient retries fail the job.
func TestNoRetryOnPermanentFailure(t *testing.T) {
	_, sched := newTestService(t, 1)
	var calls atomic.Int64
	sched.runner = func(ctx context.Context, spec *JobSpec) (*collect.Result, error) {
		calls.Add(1)
		return nil, errTest
	}
	spec := specB(16)
	spec.MaxRetries = 5
	j, err := sched.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, JobFailed)
	if calls.Load() != 1 {
		t.Errorf("permanent failure ran %d attempts, want 1", calls.Load())
	}

	sched.runner = func(ctx context.Context, spec *JobSpec) (*collect.Result, error) {
		calls.Add(1)
		return nil, MarkTransient(errTest)
	}
	calls.Store(0)
	spec.MaxRetries = 2
	j2, err := sched.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := waitState(t, j2, JobFailed)
	if calls.Load() != 3 || st.Attempts != 3 {
		t.Errorf("exhausted retries: calls=%d attempts=%d, want 3/3", calls.Load(), st.Attempts)
	}
}

// TestQueueFull: with a single busy worker and depth-1 queue, a third
// submission fails fast.
func TestQueueFull(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sched := NewScheduler(store, SchedulerConfig{Workers: 1, QueueDepth: 1})
	defer sched.Close()

	j1, err := sched.Submit(spinSpec())
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the worker drains the queue slot.
	deadline := time.Now().Add(30 * time.Second)
	for j1.Status().State != JobRunning {
		if time.Now().After(deadline) {
			t.Fatal("blocker never started")
		}
		time.Sleep(time.Millisecond)
	}
	j2, err := sched.Submit(spinSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sched.Submit(spinSpec()); err == nil || !strings.Contains(err.Error(), "queue full") {
		t.Errorf("third submit = %v, want queue full", err)
	}
	sched.Cancel(j1.ID)
	sched.Cancel(j2.ID)
}

// TestSchedulerClose: Close cancels in-flight work and later submits
// are rejected.
func TestSchedulerClose(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sched := NewScheduler(store, SchedulerConfig{Workers: 2})
	j, err := sched.Submit(spinSpec())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { sched.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("Close did not drain")
	}
	if st := j.Status(); st.State != JobCanceled {
		t.Errorf("in-flight job after Close: %v, want canceled", st.State)
	}
	if _, err := sched.Submit(spinSpec()); err == nil || !strings.Contains(err.Error(), "shut down") {
		t.Errorf("submit after Close = %v, want shutdown error", err)
	}
	sched.Close() // idempotent
}

// TestBuilderMemoizesCompiles: many jobs over one source must compile
// it exactly once.
func TestBuilderMemoizesCompiles(t *testing.T) {
	b := newBuilder()
	spec1, spec2 := specA(16), specB(16)
	p1, _, _, err := b.Resolve(&spec1)
	if err != nil {
		t.Fatal(err)
	}
	p2, _, _, err := b.Resolve(&spec2)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("same source resolved to distinct program objects")
	}
	if len(b.progs) != 1 {
		t.Errorf("builder holds %d compile entries, want 1", len(b.progs))
	}
	other := specA(16)
	other.Source = spinSrc
	other.Name = "spin"
	p3, _, _, err := b.Resolve(&other)
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p1 {
		t.Error("different sources shared one compile")
	}
}

// TestCancelUnknownJob covers the error path.
func TestCancelUnknownJob(t *testing.T) {
	_, sched := newTestService(t, 1)
	if err := sched.Cancel("job-999"); err == nil {
		t.Error("cancel of unknown job succeeded")
	}
}
