package profd

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dsprof/internal/collect"
	"dsprof/internal/core"
)

// TestDrainFinishesInFlightJobs asserts graceful shutdown completes
// queued and running jobs instead of cancelling them.
func TestDrainFinishesInFlightJobs(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var started atomic.Int64
	release := make(chan struct{})
	s := NewScheduler(store, SchedulerConfig{
		Workers: 2,
		Runner: func(ctx context.Context, spec *JobSpec) (*collect.Result, error) {
			started.Add(1)
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return runTinyJob(ctx, spec)
		},
	})
	var jobs []*Job
	for i := 0; i < 4; i++ {
		j, err := s.Submit(tinySpec())
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	for started.Load() < 2 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	s.Drain(ctx)
	for _, j := range jobs {
		if st := j.Status(); st.State != JobDone {
			t.Errorf("job %s after drain: state %s (%s), want done", st.ID, st.State, st.Error)
		}
	}
	if _, err := s.Submit(tinySpec()); err == nil {
		t.Error("Submit succeeded after Drain")
	}
}

// TestDrainDeadlineCancels asserts an expired drain deadline falls back
// to cancellation rather than hanging.
func TestDrainDeadlineCancels(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(store, SchedulerConfig{
		Workers: 1,
		Runner: func(ctx context.Context, spec *JobSpec) (*collect.Result, error) {
			<-ctx.Done() // runs until cancelled
			return nil, ctx.Err()
		},
	})
	j, err := s.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	done := make(chan struct{})
	go func() { s.Drain(ctx); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Drain hung past its deadline")
	}
	if st := j.Status(); st.State != JobCanceled {
		t.Errorf("job state %s, want canceled", st.State)
	}
}

// TestQueueFullRetryAfter asserts the HTTP surface signals back-pressure
// with 503 + Retry-After when the bounded queue is full.
func TestQueueFullRetryAfter(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	block := make(chan struct{})
	defer close(block)
	s := NewScheduler(store, SchedulerConfig{
		Workers:    1,
		QueueDepth: 1,
		Runner: func(ctx context.Context, spec *JobSpec) (*collect.Result, error) {
			select {
			case <-block:
			case <-ctx.Done():
			}
			return nil, ctx.Err()
		},
	})
	defer s.Close()
	srv := httptest.NewServer(NewServer(s, store).Handler())
	defer srv.Close()

	submit := func() *http.Response {
		body, _ := json.Marshal(tinySpec())
		resp, err := http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	// One job occupies the worker, one fills the queue; keep submitting
	// until back-pressure appears (the first submission may drain into
	// the worker before the second lands).
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp := submit()
		if resp.StatusCode == http.StatusServiceUnavailable {
			if ra := resp.Header.Get("Retry-After"); ra == "" {
				t.Error("503 without Retry-After header")
			}
			return
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("unexpected status %d", resp.StatusCode)
		}
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
	}
}

// tinySpec is a minimal valid job spec for scheduler-level tests whose
// runner is stubbed.
func tinySpec() JobSpec {
	return JobSpec{Program: ProgramMCF, Trips: 40, Clock: true, MachineConfig: "scaled"}
}

// runTinyJob actually executes the spec (shared builder semantics are
// irrelevant here, so a throwaway builder is fine).
func runTinyJob(ctx context.Context, spec *JobSpec) (*collect.Result, error) {
	b := newBuilder()
	prog, input, cfg, err := b.Resolve(spec)
	if err != nil {
		return nil, err
	}
	return core.CollectRunContext(ctx, prog, input, cfg, spec.Clock, spec.ClockIntervalCycles, spec.Counters)
}
