package isa

import "fmt"

// Binary instruction encoding. Every instruction encodes to exactly one
// 32-bit word. Three formats, selected by the opcode:
//
//	Format A (ALU, memory, cmp, jmpl, syscall, nop, halt):
//	  [31:26] op  [25:21] rd  [20:16] rs1  [15] useImm
//	  imm form:   [14:13] must be sign bits matching imm  [12:0] imm13
//	  reg form:   [4:0] rs2
//
//	Format B (sethi):
//	  [31:26] op  [25:21] rd  [20:0] imm21 (unsigned)
//
//	Format C (branches, call):
//	  [31:26] op  [25:21] rd  [20:0] disp21 (signed word displacement)
//
// The two's-complement 13-bit immediate of format A is stored sign
// extended through bit 14 so decoding is unambiguous.

// EncodeErr describes an instruction that does not fit the encoding.
type EncodeErr struct {
	In  Instr
	Why string
}

func (e *EncodeErr) Error() string {
	return fmt.Sprintf("isa: cannot encode %v: %s", e.In, e.Why)
}

func format(op Op) int {
	switch {
	case op == SetHi:
		return 'B'
	case op.IsBranch() || op == Call:
		return 'C'
	default:
		return 'A'
	}
}

// Encode packs in into its 32-bit word form.
func Encode(in Instr) (uint32, error) {
	if in.Op >= NumOps {
		return 0, &EncodeErr{in, "invalid opcode"}
	}
	w := uint32(in.Op) << 26
	switch format(in.Op) {
	case 'B':
		if in.Imm < 0 || in.Imm > SetHiMax {
			return 0, &EncodeErr{in, "sethi immediate out of range"}
		}
		w |= uint32(in.Rd&31) << 21
		w |= uint32(in.Imm) & 0x1fffff
	case 'C':
		if in.Imm < DispMin || in.Imm > DispMax {
			return 0, &EncodeErr{in, "branch displacement out of range"}
		}
		w |= uint32(in.Rd&31) << 21
		w |= uint32(in.Imm) & 0x1fffff
	default: // 'A'
		w |= uint32(in.Rd&31) << 21
		w |= uint32(in.Rs1&31) << 16
		if in.UseImm {
			if in.Imm < ImmMin || in.Imm > ImmMax {
				return 0, &EncodeErr{in, "immediate out of range"}
			}
			w |= 1 << 15
			w |= uint32(in.Imm) & 0x7fff // sign bits 14:13 ride along
		} else {
			w |= uint32(in.Rs2 & 31)
		}
	}
	return w, nil
}

// Decode unpacks a 32-bit word into an Instr. It is the inverse of Encode
// for every word Encode can produce.
func Decode(w uint32) (Instr, error) {
	op := Op(w >> 26)
	if op >= NumOps {
		return Instr{}, fmt.Errorf("isa: invalid opcode %d in word %#08x", uint8(op), w)
	}
	in := Instr{Op: op}
	switch format(op) {
	case 'B':
		in.Rd = Reg(w >> 21 & 31)
		in.Imm = int32(w & 0x1fffff)
		in.UseImm = true
	case 'C':
		in.Rd = Reg(w >> 21 & 31)
		disp := int32(w & 0x1fffff)
		if disp&(1<<20) != 0 { // sign extend 21 bits
			disp |= ^int32(0x1fffff)
		}
		in.Imm = disp
		in.UseImm = true
	default:
		in.Rd = Reg(w >> 21 & 31)
		in.Rs1 = Reg(w >> 16 & 31)
		if w&(1<<15) != 0 {
			in.UseImm = true
			imm := int32(w & 0x7fff)
			if imm&(1<<14) != 0 { // sign extend 15 bits
				imm |= ^int32(0x7fff)
			}
			in.Imm = imm
		} else {
			in.Rs2 = Reg(w & 31)
		}
	}
	return in, nil
}

// EncodeText encodes a whole text segment to its binary image, 4 bytes per
// instruction, little endian.
func EncodeText(text []Instr) ([]byte, error) {
	buf := make([]byte, 0, len(text)*InstrBytes)
	for i := range text {
		w, err := Encode(text[i])
		if err != nil {
			return nil, fmt.Errorf("at instruction %d: %w", i, err)
		}
		buf = append(buf, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
	}
	return buf, nil
}

// DecodeText decodes a binary text image produced by EncodeText.
func DecodeText(img []byte) ([]Instr, error) {
	if len(img)%InstrBytes != 0 {
		return nil, fmt.Errorf("isa: text image length %d not a multiple of %d", len(img), InstrBytes)
	}
	text := make([]Instr, len(img)/InstrBytes)
	for i := range text {
		w := uint32(img[i*4]) | uint32(img[i*4+1])<<8 | uint32(img[i*4+2])<<16 | uint32(img[i*4+3])<<24
		in, err := Decode(w)
		if err != nil {
			return nil, fmt.Errorf("at instruction %d: %w", i, err)
		}
		text[i] = in
	}
	return text, nil
}
