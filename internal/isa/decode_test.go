package isa

import "testing"

func TestPredecodeClasses(t *testing.T) {
	for op := Op(0); op < NumOps; op++ {
		in := Instr{Op: op}
		d := Predecode(&in, 0x1000)
		if op.IsLoad() != d.Class.IsLoad() {
			t.Errorf("%v: IsLoad mismatch (class %d)", op, d.Class)
		}
		if op.IsStore() != d.Class.IsStore() {
			t.Errorf("%v: IsStore mismatch (class %d)", op, d.Class)
		}
		if op.IsMem() != d.Class.IsMem() {
			t.Errorf("%v: IsMem mismatch (class %d)", op, d.Class)
		}
		if op.IsMem() && int(d.MemSize) != op.MemBytes() {
			t.Errorf("%v: MemSize = %d, want %d", op, d.MemSize, op.MemBytes())
		}
	}
}

func TestPredecodeBranchTarget(t *testing.T) {
	const pc = 0x1000_0040
	in := Instr{Op: Be, Imm: -4}
	d := Predecode(&in, pc)
	want, _ := in.BranchTarget(pc)
	if uint64(d.Imm) != want {
		t.Errorf("branch Imm = %#x, want %#x", d.Imm, want)
	}
	call := Instr{Op: Call, Imm: 10}
	d = Predecode(&call, pc)
	want, _ = call.BranchTarget(pc)
	if d.Class != ClCall || uint64(d.Imm) != want {
		t.Errorf("call: class %d Imm %#x, want ClCall %#x", d.Class, d.Imm, want)
	}
}

func TestPredecodeSetHiFolding(t *testing.T) {
	in := Instr{Op: SetHi, Rd: O0, UseImm: true, Imm: 0x1234}
	d := Predecode(&in, 0x1000)
	if d.Class != ClMovImm {
		t.Fatalf("sethi imm class = %d, want ClMovImm", d.Class)
	}
	if d.Imm != int64(0x1234)<<SetHiShift {
		t.Errorf("folded Imm = %#x, want %#x", d.Imm, int64(0x1234)<<SetHiShift)
	}
	// Register-operand sethi keeps the unfolded class.
	reg := Instr{Op: SetHi, Rd: O0, Rs2: O1}
	if d := Predecode(&reg, 0x1000); d.Class != ClSetHi {
		t.Errorf("sethi reg class = %d, want ClSetHi", d.Class)
	}
}

func TestPredecodeRetIdiom(t *testing.T) {
	ret := Instr{Op: Jmpl, Rd: G0, Rs1: O7, UseImm: true, Imm: 8}
	if d := Predecode(&ret, 0x1000); d.Flags&DFlagRet == 0 {
		t.Error("jmpl o7+8, g0 not flagged as return")
	}
	jump := Instr{Op: Jmpl, Rd: O1, Rs1: O7, UseImm: true, Imm: 8}
	if d := Predecode(&jump, 0x1000); d.Flags&DFlagRet != 0 {
		t.Error("jmpl with a live link register wrongly flagged as return")
	}
}

func TestPredecodeImmSelection(t *testing.T) {
	imm := Instr{Op: Add, Rd: O0, Rs1: O1, UseImm: true, Imm: -7}
	d := Predecode(&imm, 0x1000)
	if d.Flags&DFlagImm == 0 || d.Imm != -7 {
		t.Errorf("imm form: flags %#x Imm %d", d.Flags, d.Imm)
	}
	reg := Instr{Op: Add, Rd: O0, Rs1: O1, Rs2: O2}
	d = Predecode(&reg, 0x1000)
	if d.Flags&DFlagImm != 0 {
		t.Errorf("reg form wrongly flagged UseImm")
	}
}

func TestPredecodeAllAddressing(t *testing.T) {
	text := []Instr{
		{Op: Nop},
		{Op: Ba, Imm: -1}, // branch to the instruction before itself
		{Op: Halt},
	}
	const base = 0x1000_0000
	dec := PredecodeAll(text, base)
	if len(dec) != len(text) {
		t.Fatalf("len = %d, want %d", len(dec), len(text))
	}
	// The branch sits at base+4 and targets base+0.
	if uint64(dec[1].Imm) != base {
		t.Errorf("branch target = %#x, want %#x", dec[1].Imm, uint64(base))
	}
}
