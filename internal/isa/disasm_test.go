package isa

import (
	"strings"
	"testing"
)

// Every opcode must render to something readable, for both immediate and
// register forms where applicable.
func TestDisasmCoversAllOpcodes(t *testing.T) {
	for op := Op(0); op < NumOps; op++ {
		imm := Instr{Op: op, Rd: O1, Rs1: O2, UseImm: true, Imm: 8}
		reg := Instr{Op: op, Rd: O1, Rs1: O2, Rs2: O3}
		for _, in := range []Instr{imm, reg} {
			s := Disasm(in, 0x10000000)
			if s == "" || strings.Contains(s, "?") {
				t.Errorf("Disasm(%v form of %v) = %q", in.UseImm, op, s)
			}
		}
	}
}

func TestOpStringsUnique(t *testing.T) {
	seen := map[string]Op{}
	for op := Op(0); op < NumOps; op++ {
		s := op.String()
		if s == "" {
			t.Errorf("op %d has empty name", op)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("ops %v and %v share name %q", prev, op, s)
		}
		seen[s] = op
	}
	if Op(200).String() == Nop.String() {
		t.Error("out-of-range op collides with nop")
	}
}

func TestDisasmMemForms(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: LdB, Rd: O1, Rs1: O2, UseImm: true, Imm: -4}, "ldsb [%o2 -4], %o1"},
		{Instr{Op: LdUB, Rd: O1, Rs1: O2, UseImm: true, Imm: 1}, "ldub [%o2 +1], %o1"},
		{Instr{Op: LdW, Rd: O1, Rs1: O2, Rs2: O3}, "ldsw [%o2 + %o3], %o1"},
		{Instr{Op: StW, Rd: O1, Rs1: O2, UseImm: true, Imm: 12}, "stw %o1, [%o2 +12]"},
		{Instr{Op: StB, Rd: O1, Rs1: O2, Rs2: O3}, "stb %o1, [%o2 + %o3]"},
		{Instr{Op: Prefetch, Rs1: O2, UseImm: true, Imm: 512}, "prefetch [%o2 +512]"},
	}
	for _, c := range cases {
		if got := Disasm(c.in, 0); got != c.want {
			t.Errorf("Disasm(%+v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestDisasmALUForms(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: Add, Rd: G1, Rs1: G2, UseImm: true, Imm: 5}, "add %g2, 5, %g1"},
		{Instr{Op: Sub, Rd: G1, Rs1: G2, Rs2: G3}, "sub %g2, %g3, %g1"},
		{Instr{Op: Mul, Rd: L0, Rs1: L1, UseImm: true, Imm: 24}, "mulx %l1, 24, %l0"},
		{Instr{Op: Div, Rd: L0, Rs1: L1, UseImm: true, Imm: 64}, "sdivx %l1, 64, %l0"},
		{Instr{Op: Sll, Rd: I0, Rs1: I1, UseImm: true, Imm: 3}, "sllx %i1, 3, %i0"},
		{Instr{Op: Sra, Rd: I0, Rs1: I1, UseImm: true, Imm: 63}, "srax %i1, 63, %i0"},
		{Instr{Op: SetHi, Rd: G1, UseImm: true, Imm: 0x8000}, "sethi %hi(0x4000000), %g1"},
		{Instr{Op: Xor, Rd: G1, Rs1: G1, UseImm: true, Imm: -1}, "xor %g1, -1, %g1"},
	}
	for _, c := range cases {
		if got := Disasm(c.in, 0); got != c.want {
			t.Errorf("Disasm(%+v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestDisasmCallAndJmpl(t *testing.T) {
	call := Instr{Op: Call, Rd: O7, UseImm: true, Imm: 16}
	if got := Disasm(call, 0x10000000); got != "call 0x10000040" {
		t.Errorf("call disasm = %q", got)
	}
	ind := Instr{Op: Jmpl, Rd: O1, Rs1: G3, UseImm: true, Imm: 0}
	if got := Disasm(ind, 0); !strings.HasPrefix(got, "jmpl ") {
		t.Errorf("jmpl disasm = %q", got)
	}
}
