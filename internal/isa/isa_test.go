package isa

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestRegNames(t *testing.T) {
	cases := []struct {
		r    Reg
		want string
	}{
		{G0, "%g0"}, {O0, "%o0"}, {SP, "%sp"}, {O7, "%o7"},
		{L3, "%l3"}, {I0, "%i0"}, {FP, "%fp"}, {I7, "%i7"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("Reg(%d).String() = %q, want %q", c.r, got, c.want)
		}
	}
	if got := Reg(40).String(); !strings.Contains(got, "40") {
		t.Errorf("out-of-range reg name = %q", got)
	}
}

func TestOpClassification(t *testing.T) {
	loads := []Op{LdB, LdUB, LdW, LdX}
	stores := []Op{StB, StW, StX}
	for _, op := range loads {
		if !op.IsLoad() || op.IsStore() || !op.IsMem() {
			t.Errorf("%v misclassified as load", op)
		}
	}
	for _, op := range stores {
		if op.IsLoad() || !op.IsStore() || !op.IsMem() {
			t.Errorf("%v misclassified as store", op)
		}
	}
	if !Prefetch.IsMem() || Prefetch.IsLoad() || Prefetch.IsStore() {
		t.Error("Prefetch misclassified")
	}
	for _, op := range []Op{Add, Sub, Nop, Cmp, Ba, Call, Halt, Syscall} {
		if op.IsMem() {
			t.Errorf("%v wrongly classified as memory op", op)
		}
	}
	for _, op := range []Op{Ba, Be, Bleu} {
		if !op.IsBranch() || !op.IsCTI() {
			t.Errorf("%v not classified as branch", op)
		}
	}
	for _, op := range []Op{Call, Jmpl} {
		if op.IsBranch() || !op.IsCTI() {
			t.Errorf("%v CTI classification wrong", op)
		}
	}
	if Cmp.IsALU() || !Add.IsALU() || !SetHi.IsALU() || Nop.IsALU() {
		t.Error("ALU classification wrong")
	}
}

func TestMemBytes(t *testing.T) {
	cases := map[Op]int{
		LdB: 1, LdUB: 1, StB: 1, LdW: 4, StW: 4, LdX: 8, StX: 8,
		Prefetch: 8, Add: 0, Nop: 0, Ba: 0,
	}
	for op, want := range cases {
		if got := op.MemBytes(); got != want {
			t.Errorf("%v.MemBytes() = %d, want %d", op, got, want)
		}
	}
}

func TestWrites(t *testing.T) {
	cases := []struct {
		in  Instr
		reg Reg
		ok  bool
	}{
		{Instr{Op: LdX, Rd: O1, Rs1: O2, UseImm: true}, O1, true},
		{Instr{Op: Add, Rd: L0, Rs1: L1, Rs2: L2}, L0, true},
		{Instr{Op: Add, Rd: G0, Rs1: L1, Rs2: L2}, 0, false},
		{Instr{Op: StX, Rd: O1, Rs1: O2, UseImm: true}, 0, false},
		{Instr{Op: Call, Imm: 4}, O7, true},
		{Instr{Op: Jmpl, Rd: G0, Rs1: O7, Imm: 8, UseImm: true}, 0, false},
		{Instr{Op: Cmp, Rs1: O0, UseImm: true, Imm: 1}, 0, false},
		{Instr{Op: Syscall, Imm: 1, UseImm: true}, O0, true},
		{Instr{Op: Prefetch, Rs1: O0, UseImm: true}, 0, false},
	}
	for _, c := range cases {
		r, ok := c.in.Writes()
		if ok != c.ok || (ok && r != c.reg) {
			t.Errorf("%v.Writes() = %v,%v want %v,%v", c.in, r, ok, c.reg, c.ok)
		}
	}
}

func TestAddrRegs(t *testing.T) {
	in := Instr{Op: LdX, Rd: O0, Rs1: O3, UseImm: true, Imm: 56}
	base, _, hasIdx, ok := in.AddrRegs()
	if !ok || base != O3 || hasIdx {
		t.Errorf("imm-form AddrRegs wrong: %v %v %v", base, hasIdx, ok)
	}
	in = Instr{Op: StX, Rd: O0, Rs1: O3, Rs2: L1}
	base, idx, hasIdx, ok := in.AddrRegs()
	if !ok || base != O3 || !hasIdx || idx != L1 {
		t.Errorf("reg-form AddrRegs wrong: %v %v %v %v", base, idx, hasIdx, ok)
	}
	if _, _, _, ok := (&Instr{Op: Add}).AddrRegs(); ok {
		t.Error("AddrRegs ok for non-memory instruction")
	}
}

func TestBranchTarget(t *testing.T) {
	in := Instr{Op: Be, Imm: -3, UseImm: true}
	if tgt, ok := in.BranchTarget(0x1000); !ok || tgt != 0x1000-12 {
		t.Errorf("BranchTarget = %#x,%v", tgt, ok)
	}
	in = Instr{Op: Call, Imm: 5, UseImm: true}
	if tgt, ok := in.BranchTarget(0x2000); !ok || tgt != 0x2000+20 {
		t.Errorf("Call target = %#x,%v", tgt, ok)
	}
	if _, ok := (&Instr{Op: Jmpl}).BranchTarget(0); ok {
		t.Error("Jmpl should have no static target")
	}
}

func TestEncodeDecodeExamples(t *testing.T) {
	examples := []Instr{
		{Op: Nop},
		{Op: Halt},
		{Op: LdX, Rd: O2, Rs1: O3, UseImm: true, Imm: 56},
		{Op: LdX, Rd: O4, Rs1: O3, Rs2: L5},
		{Op: StB, Rd: O0, Rs1: SP, UseImm: true, Imm: -120},
		{Op: Add, Rd: G1, Rs1: G4, Rs2: G5},
		{Op: Sub, Rd: G2, Rs1: G2, UseImm: true, Imm: ImmMin},
		{Op: Add, Rd: G2, Rs1: G2, UseImm: true, Imm: ImmMax},
		{Op: SetHi, Rd: G1, UseImm: true, Imm: SetHiMax},
		{Op: SetHi, Rd: G1, UseImm: true, Imm: 0},
		{Op: Cmp, Rs1: O2, UseImm: true, Imm: 1},
		{Op: Bne, UseImm: true, Imm: -40},
		{Op: Ba, UseImm: true, Imm: DispMax},
		{Op: Be, UseImm: true, Imm: DispMin},
		{Op: Call, Rd: O7, UseImm: true, Imm: 1234},
		{Op: Jmpl, Rd: G0, Rs1: O7, UseImm: true, Imm: 8},
		{Op: Syscall, UseImm: true, Imm: 3},
		{Op: Prefetch, Rs1: O1, UseImm: true, Imm: 512},
	}
	for _, in := range examples {
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("Encode(%v): %v", in, err)
		}
		got, err := Decode(w)
		if err != nil {
			t.Fatalf("Decode(%#08x): %v", w, err)
		}
		if got != in {
			t.Errorf("roundtrip %v -> %#08x -> %v", in, w, got)
		}
	}
}

func TestEncodeRejectsOutOfRange(t *testing.T) {
	bad := []Instr{
		{Op: Add, Rd: G1, Rs1: G1, UseImm: true, Imm: ImmMax + 1},
		{Op: Add, Rd: G1, Rs1: G1, UseImm: true, Imm: ImmMin - 1},
		{Op: SetHi, Rd: G1, UseImm: true, Imm: SetHiMax + 1},
		{Op: SetHi, Rd: G1, UseImm: true, Imm: -1},
		{Op: Ba, UseImm: true, Imm: DispMax + 1},
		{Op: Ba, UseImm: true, Imm: DispMin - 1},
		{Op: NumOps, UseImm: true},
	}
	for _, in := range bad {
		if _, err := Encode(in); err == nil {
			t.Errorf("Encode(%v) unexpectedly succeeded", in)
		}
	}
}

func TestDecodeRejectsInvalidOpcode(t *testing.T) {
	w := uint32(uint8(NumOps)) << 26
	if _, err := Decode(w); err == nil {
		t.Error("Decode accepted invalid opcode")
	}
}

// randInstr generates a random encodable instruction.
func randInstr(r *rand.Rand) Instr {
	for {
		in := Instr{Op: Op(r.Intn(int(NumOps)))}
		switch format(in.Op) {
		case 'B':
			in.Rd = Reg(r.Intn(32))
			in.Imm = int32(r.Intn(SetHiMax + 1))
			in.UseImm = true
		case 'C':
			in.Rd = Reg(r.Intn(32))
			in.Imm = int32(r.Intn(DispMax-DispMin+1) + DispMin)
			in.UseImm = true
		default:
			in.Rd = Reg(r.Intn(32))
			in.Rs1 = Reg(r.Intn(32))
			if r.Intn(2) == 0 {
				in.UseImm = true
				in.Imm = int32(r.Intn(ImmMax-ImmMin+1) + ImmMin)
			} else {
				in.Rs2 = Reg(r.Intn(32))
			}
		}
		return in
	}
}

func TestEncodeDecodeRoundtripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func() bool {
		in := randInstr(r)
		w, err := Encode(in)
		if err != nil {
			return false
		}
		out, err := Decode(w)
		return err == nil && out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestEncodeTextRoundtrip(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	text := make([]Instr, 257)
	for i := range text {
		text[i] = randInstr(r)
	}
	img, err := EncodeText(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(img) != len(text)*InstrBytes {
		t.Fatalf("image size %d, want %d", len(img), len(text)*InstrBytes)
	}
	back, err := DecodeText(img)
	if err != nil {
		t.Fatal(err)
	}
	for i := range text {
		if back[i] != text[i] {
			t.Fatalf("instruction %d: %v != %v", i, back[i], text[i])
		}
	}
	if _, err := DecodeText(img[:5]); err == nil {
		t.Error("DecodeText accepted truncated image")
	}
}

func TestDisasmStrings(t *testing.T) {
	cases := []struct {
		in   Instr
		pc   uint64
		want string
	}{
		{Instr{Op: LdX, Rd: O2, Rs1: O3, UseImm: true, Imm: 56}, 0, "ldx [%o3 +56], %o2"},
		{Instr{Op: StX, Rd: G2, Rs1: O3, UseImm: true, Imm: 88}, 0, "stx %g2, [%o3 +88]"},
		{Instr{Op: LdX, Rd: O2, Rs1: O3, UseImm: true, Imm: 0}, 0, "ldx [%o3], %o2"},
		{Instr{Op: Cmp, Rs1: O2, UseImm: true, Imm: 1}, 0, "cmp %o2, 1"},
		{Instr{Op: Nop}, 0, "nop"},
		{Instr{Op: Jmpl, Rd: G0, Rs1: O7, UseImm: true, Imm: 8}, 0, "retl"},
		{Instr{Op: Or, Rd: O5, Rs1: G0, UseImm: true, Imm: 7}, 0, "mov 7, %o5"},
		{Instr{Op: Or, Rd: O5, Rs1: G0, Rs2: O3}, 0, "mov %o3, %o5"},
		{Instr{Op: Syscall, UseImm: true, Imm: 2}, 0, "ta 2"},
	}
	for _, c := range cases {
		if got := Disasm(c.in, c.pc); got != c.want {
			t.Errorf("Disasm(%+v) = %q, want %q", c.in, got, c.want)
		}
	}
	// Branch target must render absolute with PC context.
	b := Instr{Op: Bne, UseImm: true, Imm: -4}
	if got := Disasm(b, 0x100003000); got != "bne 0x100002ff0" {
		t.Errorf("branch disasm = %q", got)
	}
	if got := b.String(); got != "bne .-4" {
		t.Errorf("branch String = %q", got)
	}
}
