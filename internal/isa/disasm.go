package isa

import "fmt"

// String renders the instruction in assembler syntax without PC context;
// branch and call targets print as relative word displacements. Use
// Disasm for absolute targets.
func (in Instr) String() string { return in.disasm(0, false) }

// Disasm renders the instruction as it would appear in an annotated
// disassembly listing at address pc, with absolute branch/call targets.
func Disasm(in Instr, pc uint64) string { return in.disasm(pc, true) }

func (in Instr) disasm(pc uint64, abs bool) string {
	src2 := func() string {
		if in.UseImm {
			return fmt.Sprintf("%d", in.Imm)
		}
		return in.Rs2.String()
	}
	ea := func() string {
		if in.UseImm {
			if in.Imm == 0 {
				return fmt.Sprintf("[%v]", in.Rs1)
			}
			return fmt.Sprintf("[%v %+d]", in.Rs1, in.Imm)
		}
		return fmt.Sprintf("[%v + %v]", in.Rs1, in.Rs2)
	}
	target := func() string {
		if abs {
			t, _ := in.BranchTarget(pc)
			return fmt.Sprintf("0x%x", t)
		}
		return fmt.Sprintf(".%+d", in.Imm)
	}
	switch {
	case in.Op == Nop:
		return "nop"
	case in.Op == Halt:
		return "halt"
	case in.Op.IsLoad():
		return fmt.Sprintf("%v %s, %v", in.Op, ea(), in.Rd)
	case in.Op.IsStore():
		return fmt.Sprintf("%v %v, %s", in.Op, in.Rd, ea())
	case in.Op == Prefetch:
		return fmt.Sprintf("prefetch %s", ea())
	case in.Op == SetHi:
		return fmt.Sprintf("sethi %%hi(%#x), %v", uint64(in.Imm)<<SetHiShift, in.Rd)
	case in.Op == Cmp:
		return fmt.Sprintf("cmp %v, %s", in.Rs1, src2())
	case in.Op.IsBranch():
		return fmt.Sprintf("%v %s", in.Op, target())
	case in.Op == Call:
		return fmt.Sprintf("call %s", target())
	case in.Op == Jmpl:
		if in.Rd == G0 && in.Rs1 == O7 && in.UseImm && in.Imm == 8 {
			return "retl"
		}
		return fmt.Sprintf("jmpl %v %+d, %v", in.Rs1, in.Imm, in.Rd)
	case in.Op == Syscall:
		return fmt.Sprintf("ta %d", in.Imm)
	case in.Op == Or && in.Rs1 == G0 && in.UseImm:
		return fmt.Sprintf("mov %d, %v", in.Imm, in.Rd)
	case in.Op == Or && in.Rs1 == G0 && !in.UseImm:
		return fmt.Sprintf("mov %v, %v", in.Rs2, in.Rd)
	default: // ALU
		return fmt.Sprintf("%v %v, %s, %v", in.Op, in.Rs1, src2(), in.Rd)
	}
}
