package isa

// Decoded is the predecoded execution form of one instruction: everything
// the interpreter's hot loop would otherwise recompute on every visit —
// the dispatch class, the operand-selection flag, the sign-extended (or
// pre-shifted) immediate, static branch/call targets, and the access
// width — is resolved once at program-load time. The machine fuses its
// base pipeline cost into Cost when it installs the text segment.
//
// The struct is 16 bytes so a decoded text segment packs four
// instructions per cache line.
type Decoded struct {
	// Imm is the operand immediate, pre-processed per class: sign-extended
	// to 64 bits for ALU/memory forms, the absolute target PC for
	// ClBranch/ClCall, and the already-shifted constant for ClMovImm.
	Imm int64

	Op    Op    // original opcode (branch condition selection, diagnostics)
	Class Class // dispatch class
	Rd    Reg
	Rs1   Reg
	Rs2   Reg
	Flags uint8
	// Cost is the fused base pipeline cost in cycles. Decode leaves it
	// zero; the machine fills it from its cost model at load time.
	Cost uint8
	// MemSize is the access width in bytes for memory classes (0
	// otherwise). Alignment checks use MemSize-1 as a mask.
	MemSize uint8
}

// Decoded.Flags bits.
const (
	// DFlagImm selects Imm (not Rs2) as the second operand.
	DFlagImm uint8 = 1 << iota
	// DFlagRet marks the return idiom jmpl %o7+N, %g0 — the form that
	// pops the shadow call stack.
	DFlagRet
)

// Class is the dispatch class of a decoded instruction. Loads, stores,
// and ALU sub-operations each get their own class so the interpreter
// dispatches with a single jump instead of a class switch plus an opcode
// switch.
type Class uint8

// Dispatch classes. The load and store groups are contiguous so the
// class predicates below stay range checks, mirroring Op.IsLoad et al.
const (
	ClNop Class = iota
	ClLdB
	ClLdUB
	ClLdW
	ClLdX
	ClStB
	ClStW
	ClStX
	ClPrefetch
	ClAdd
	ClSub
	ClMul
	ClDiv
	ClRem
	ClAnd
	ClOr
	ClXor
	ClSll
	ClSrl
	ClSra
	ClMovImm // SetHi with immediate: Imm holds the pre-shifted constant
	ClSetHi  // SetHi with a register operand (never emitted, but legal)
	ClCmp
	ClBranch
	ClCall
	ClJmpl
	ClSyscall
	ClHalt
)

// IsLoad reports whether the class reads memory into a register.
func (c Class) IsLoad() bool { return c >= ClLdB && c <= ClLdX }

// IsStore reports whether the class writes memory.
func (c Class) IsStore() bool { return c >= ClStB && c <= ClStX }

// IsMem reports whether the class references data memory.
func (c Class) IsMem() bool { return c >= ClLdB && c <= ClPrefetch }

// IsCTI reports whether the class is a control-transfer instruction —
// one whose successor takes effect after the architectural delay slot.
func (c Class) IsCTI() bool { return c == ClBranch || c == ClCall || c == ClJmpl }

// Successor and footprint metadata, consumed by the translating backend
// to form superblocks and bound their worst-case cost statically.

// StaticTarget returns the statically resolved control-transfer target
// (an absolute PC, precomputed by Predecode) of a branch or call, and
// whether one exists. Jmpl targets are register-relative, never static.
func (d *Decoded) StaticTarget() (uint64, bool) {
	if d.Class == ClBranch || d.Class == ClCall {
		return uint64(d.Imm), true
	}
	return 0, false
}

// Unconditional reports whether the instruction always transfers control
// when it is a CTI (ba, call, jmpl).
func (d *Decoded) Unconditional() bool {
	return d.Class == ClCall || d.Class == ClJmpl || (d.Class == ClBranch && d.Op == Ba)
}

// CanTrap reports whether executing the instruction can raise an
// architectural trap: divide/remainder (divide by zero) and the memory
// classes except prefetch (alignment, segmentation). Syscalls can trap
// too but are excluded from translation units outright, and a bad fetch
// PC traps before dispatch.
func (d *Decoded) CanTrap() bool {
	return d.Class == ClDiv || d.Class == ClRem ||
		(d.Class.IsMem() && d.Class != ClPrefetch)
}

// EndsBlock reports whether a straight-line translation unit cannot
// extend past this instruction's class: control transfers close a block
// (after their delay slot), and syscalls/halts never enter one.
func (d *Decoded) EndsBlock() bool {
	return d.Class.IsCTI() || d.Class == ClSyscall || d.Class == ClHalt
}

var opClass = [NumOps]Class{
	Nop: ClNop,
	LdB: ClLdB, LdUB: ClLdUB, LdW: ClLdW, LdX: ClLdX,
	StB: ClStB, StW: ClStW, StX: ClStX,
	Prefetch: ClPrefetch,
	Add:      ClAdd, Sub: ClSub, Mul: ClMul, Div: ClDiv, Rem: ClRem,
	And: ClAnd, Or: ClOr, Xor: ClXor,
	Sll: ClSll, Srl: ClSrl, Sra: ClSra,
	SetHi: ClSetHi, Cmp: ClCmp,
	Ba: ClBranch, Be: ClBranch, Bne: ClBranch, Bg: ClBranch, Bge: ClBranch,
	Bl: ClBranch, Ble: ClBranch, Bgu: ClBranch, Bgeu: ClBranch,
	Blu: ClBranch, Bleu: ClBranch,
	Call: ClCall, Jmpl: ClJmpl, Syscall: ClSyscall, Halt: ClHalt,
}

// Predecode predecodes in, the instruction at absolute address pc.
func Predecode(in *Instr, pc uint64) Decoded {
	d := Decoded{
		Op:    in.Op,
		Class: opClass[in.Op],
		Rd:    in.Rd,
		Rs1:   in.Rs1,
		Rs2:   in.Rs2,
		Imm:   int64(in.Imm),
	}
	if in.UseImm {
		d.Flags |= DFlagImm
	}
	switch d.Class {
	case ClBranch, ClCall:
		if t, ok := in.BranchTarget(pc); ok {
			d.Imm = int64(t)
		}
	case ClSetHi:
		if in.UseImm {
			d.Class = ClMovImm
			d.Imm = int64(in.Imm) << SetHiShift
		}
	case ClJmpl:
		if in.Rd == G0 && in.Rs1 == O7 {
			d.Flags |= DFlagRet
		}
	}
	if in.Op.IsMem() {
		d.MemSize = uint8(in.Op.MemBytes())
	}
	return d
}

// PredecodeAll predecodes a text segment loaded at base.
func PredecodeAll(text []Instr, base uint64) []Decoded {
	dec := make([]Decoded, len(text))
	for i := range text {
		dec[i] = Predecode(&text[i], base+uint64(i)*InstrBytes)
	}
	return dec
}
