// Package mem implements the sparse simulated memory of the machine.
//
// Memory is allocated lazily in fixed-size host pages, so a 64-bit
// simulated address space costs only what the target actually touches.
// All multi-byte values are little endian. Accesses must be naturally
// aligned; the machine layer enforces that and turns violations into
// alignment traps before calling into this package.
package mem

const (
	// HostPageBits is the log2 size of the host-side backing pages.
	// This is an implementation detail of the simulator and independent
	// of the simulated TLB page sizes.
	HostPageBits = 16
	hostPageSize = 1 << HostPageBits
	hostPageMask = hostPageSize - 1
)

// Memory is a sparse byte-addressable simulated memory.
type Memory struct {
	pages map[uint64][]byte

	// One-entry lookup cache: the vast majority of consecutive accesses
	// hit the same host page.
	lastBase uint64
	lastPage []byte
}

// New returns an empty memory.
func New() *Memory {
	return &Memory{pages: make(map[uint64][]byte)}
}

func (m *Memory) page(addr uint64) []byte {
	base := addr &^ uint64(hostPageMask)
	if m.lastPage != nil && base == m.lastBase {
		return m.lastPage
	}
	p, ok := m.pages[base]
	if !ok {
		p = make([]byte, hostPageSize)
		m.pages[base] = p
	}
	m.lastBase, m.lastPage = base, p
	return p
}

// Read8 reads one byte.
func (m *Memory) Read8(addr uint64) uint8 {
	return m.page(addr)[addr&hostPageMask]
}

// Write8 writes one byte.
func (m *Memory) Write8(addr uint64, v uint8) {
	m.page(addr)[addr&hostPageMask] = v
}

// Read32 reads a naturally aligned 32-bit value.
func (m *Memory) Read32(addr uint64) uint32 {
	p := m.page(addr)
	off := addr & hostPageMask
	return uint32(p[off]) | uint32(p[off+1])<<8 | uint32(p[off+2])<<16 | uint32(p[off+3])<<24
}

// Write32 writes a naturally aligned 32-bit value.
func (m *Memory) Write32(addr uint64, v uint32) {
	p := m.page(addr)
	off := addr & hostPageMask
	p[off] = byte(v)
	p[off+1] = byte(v >> 8)
	p[off+2] = byte(v >> 16)
	p[off+3] = byte(v >> 24)
}

// Read64 reads a naturally aligned 64-bit value.
func (m *Memory) Read64(addr uint64) uint64 {
	p := m.page(addr)
	off := addr & hostPageMask
	return uint64(p[off]) | uint64(p[off+1])<<8 | uint64(p[off+2])<<16 | uint64(p[off+3])<<24 |
		uint64(p[off+4])<<32 | uint64(p[off+5])<<40 | uint64(p[off+6])<<48 | uint64(p[off+7])<<56
}

// Write64 writes a naturally aligned 64-bit value.
func (m *Memory) Write64(addr uint64, v uint64) {
	p := m.page(addr)
	off := addr & hostPageMask
	p[off] = byte(v)
	p[off+1] = byte(v >> 8)
	p[off+2] = byte(v >> 16)
	p[off+3] = byte(v >> 24)
	p[off+4] = byte(v >> 32)
	p[off+5] = byte(v >> 40)
	p[off+6] = byte(v >> 48)
	p[off+7] = byte(v >> 56)
}

// ReadBytes copies n bytes starting at addr into a new slice. It may cross
// host page boundaries.
func (m *Memory) ReadBytes(addr uint64, n int) []byte {
	out := make([]byte, n)
	for i := 0; i < n; {
		p := m.page(addr + uint64(i))
		off := (addr + uint64(i)) & hostPageMask
		c := copy(out[i:], p[off:])
		i += c
	}
	return out
}

// WriteBytes copies b into memory starting at addr. It may cross host page
// boundaries.
func (m *Memory) WriteBytes(addr uint64, b []byte) {
	for i := 0; i < len(b); {
		p := m.page(addr + uint64(i))
		off := (addr + uint64(i)) & hostPageMask
		c := copy(p[off:], b[i:])
		i += c
	}
}

// ReadCString reads a NUL-terminated string starting at addr, up to max
// bytes.
func (m *Memory) ReadCString(addr uint64, max int) string {
	var out []byte
	for i := 0; i < max; i++ {
		b := m.Read8(addr + uint64(i))
		if b == 0 {
			break
		}
		out = append(out, b)
	}
	return string(out)
}

// PagesTouched reports how many host pages have been materialized.
func (m *Memory) PagesTouched() int { return len(m.pages) }

// Footprint reports the backing store size in bytes.
func (m *Memory) Footprint() int64 { return int64(len(m.pages)) * hostPageSize }
