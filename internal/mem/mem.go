// Package mem implements the sparse simulated memory of the machine.
//
// Memory is allocated lazily in fixed-size host pages, so a 64-bit
// simulated address space costs only what the target actually touches.
// All multi-byte values are little endian. Accesses must be naturally
// aligned; the machine layer enforces that and turns violations into
// alignment traps before calling into this package.
package mem

import "encoding/binary"

const (
	// HostPageBits is the log2 size of the host-side backing pages.
	// This is an implementation detail of the simulator and independent
	// of the simulated TLB page sizes.
	HostPageBits = 16
	hostPageSize = 1 << HostPageBits
	hostPageMask = hostPageSize - 1

	// HostPageMask masks an address down to its offset within the host
	// page Page returns, for callers that inline their own accesses.
	HostPageMask = hostPageMask
)

// Memory is a sparse byte-addressable simulated memory.
type Memory struct {
	pages map[uint64][]byte

	// Two-level lookup cache over the host pages. The single-entry memo
	// is the only check small enough to inline into the Read/Write
	// accessors; behind it, a direct-mapped array indexed by the low
	// page-number bits catches the handful of pages an access pattern
	// alternates between (current heap region, stack, data) without
	// paying the map's hashing. Pages are never deallocated, so memoized
	// slices cannot go stale. Empty memo slots hold an impossible page
	// number, so the hit checks are one compare each.
	lastNum  uint64
	lastPage []byte
	memoNum  [memoSlots]uint64
	memoPage [memoSlots][]byte
}

// memoSlots is the size of the second-level page memo; a power of two so
// the slot index is a mask. 256 slots (4 KB of slice headers) cover the
// working page set of a pointer-chasing heap workload; at 8 the random
// page stream of an MCF pricing sweep thrashed the memo and fell to the
// map on a third of page switches.
const memoSlots = 256

// New returns an empty memory.
func New() *Memory {
	m := &Memory{pages: make(map[uint64][]byte)}
	m.lastNum = ^uint64(0) // no 64-bit address shifts down to this
	for i := range m.memoNum {
		m.memoNum[i] = ^uint64(0)
	}
	return m
}

// page resolves addr's host page. The memo hit is small enough to inline
// into the Read/Write accessors, so accesses to recently used pages — the
// overwhelmingly common case — pay no call into the map path.
func (m *Memory) page(addr uint64) []byte {
	n := addr >> HostPageBits
	if n == m.lastNum {
		return m.lastPage
	}
	return m.pageSlow(n)
}

// pageSlow refreshes the first-level memo from the direct-mapped array,
// falling to the page map (allocating on first touch) only when both
// levels miss. Kept out of line so the memo hit in page stays under the
// inlining budget of the Read/Write accessors.
//
//go:noinline
func (m *Memory) pageSlow(n uint64) []byte {
	i := n & (memoSlots - 1)
	p := m.memoPage[i]
	if n != m.memoNum[i] {
		base := n << HostPageBits
		var ok bool
		if p, ok = m.pages[base]; !ok {
			p = make([]byte, hostPageSize)
			m.pages[base] = p
		}
		m.memoNum[i], m.memoPage[i] = n, p
	}
	m.lastNum, m.lastPage = n, p
	return p
}

// Page returns the host page backing addr, allocating it on first touch.
// The memo hit stays under the inlining budget, so hot callers (the
// machine's translated memory ops) can combine it with HostPageMask and
// perform wide accesses without paying a call per access.
func (m *Memory) Page(addr uint64) []byte {
	n := addr >> HostPageBits
	if n == m.lastNum {
		return m.lastPage
	}
	return m.pageSlow(n)
}

// Read8 reads one byte.
func (m *Memory) Read8(addr uint64) uint8 {
	return m.page(addr)[addr&hostPageMask]
}

// Write8 writes one byte.
func (m *Memory) Write8(addr uint64, v uint8) {
	m.page(addr)[addr&hostPageMask] = v
}

// Read32 reads a naturally aligned 32-bit value.
func (m *Memory) Read32(addr uint64) uint32 {
	off := addr & hostPageMask
	return binary.LittleEndian.Uint32(m.page(addr)[off:])
}

// Write32 writes a naturally aligned 32-bit value.
func (m *Memory) Write32(addr uint64, v uint32) {
	off := addr & hostPageMask
	binary.LittleEndian.PutUint32(m.page(addr)[off:], v)
}

// Read64 reads a naturally aligned 64-bit value.
func (m *Memory) Read64(addr uint64) uint64 {
	off := addr & hostPageMask
	return binary.LittleEndian.Uint64(m.page(addr)[off:])
}

// Write64 writes a naturally aligned 64-bit value.
func (m *Memory) Write64(addr uint64, v uint64) {
	off := addr & hostPageMask
	binary.LittleEndian.PutUint64(m.page(addr)[off:], v)
}

// ReadBytes copies n bytes starting at addr into a new slice. It may cross
// host page boundaries.
func (m *Memory) ReadBytes(addr uint64, n int) []byte {
	out := make([]byte, n)
	for i := 0; i < n; {
		p := m.page(addr + uint64(i))
		off := (addr + uint64(i)) & hostPageMask
		c := copy(out[i:], p[off:])
		i += c
	}
	return out
}

// WriteBytes copies b into memory starting at addr. It may cross host page
// boundaries.
func (m *Memory) WriteBytes(addr uint64, b []byte) {
	for i := 0; i < len(b); {
		p := m.page(addr + uint64(i))
		off := (addr + uint64(i)) & hostPageMask
		c := copy(p[off:], b[i:])
		i += c
	}
}

// ReadCString reads a NUL-terminated string starting at addr, up to max
// bytes.
func (m *Memory) ReadCString(addr uint64, max int) string {
	var out []byte
	for i := 0; i < max; i++ {
		b := m.Read8(addr + uint64(i))
		if b == 0 {
			break
		}
		out = append(out, b)
	}
	return string(out)
}

// PagesTouched reports how many host pages have been materialized.
func (m *Memory) PagesTouched() int { return len(m.pages) }

// Footprint reports the backing store size in bytes.
func (m *Memory) Footprint() int64 { return int64(len(m.pages)) * hostPageSize }
