package mem

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestReadWriteWidths(t *testing.T) {
	m := New()
	m.Write8(0x1000, 0xab)
	if got := m.Read8(0x1000); got != 0xab {
		t.Errorf("Read8 = %#x", got)
	}
	m.Write32(0x2000, 0xdeadbeef)
	if got := m.Read32(0x2000); got != 0xdeadbeef {
		t.Errorf("Read32 = %#x", got)
	}
	m.Write64(0x3000, 0x0123456789abcdef)
	if got := m.Read64(0x3000); got != 0x0123456789abcdef {
		t.Errorf("Read64 = %#x", got)
	}
}

func TestZeroInitialized(t *testing.T) {
	m := New()
	if m.Read64(0xffff_0000_0000) != 0 {
		t.Error("fresh memory not zero")
	}
	if m.Read8(0) != 0 {
		t.Error("address 0 not zero")
	}
}

func TestLittleEndian(t *testing.T) {
	m := New()
	m.Write64(0x100, 0x0807060504030201)
	for i := 0; i < 8; i++ {
		if got := m.Read8(0x100 + uint64(i)); got != uint8(i+1) {
			t.Errorf("byte %d = %#x, want %#x", i, got, i+1)
		}
	}
	if got := m.Read32(0x100); got != 0x04030201 {
		t.Errorf("Read32 of low half = %#x", got)
	}
}

func TestBytesAcrossPages(t *testing.T) {
	m := New()
	// Straddle a host page boundary.
	addr := uint64(1<<HostPageBits) - 3
	data := []byte{1, 2, 3, 4, 5, 6, 7}
	m.WriteBytes(addr, data)
	if got := m.ReadBytes(addr, len(data)); !bytes.Equal(got, data) {
		t.Errorf("cross-page ReadBytes = %v", got)
	}
}

func TestReadCString(t *testing.T) {
	m := New()
	m.WriteBytes(0x500, []byte("hello\x00world"))
	if got := m.ReadCString(0x500, 64); got != "hello" {
		t.Errorf("ReadCString = %q", got)
	}
	if got := m.ReadCString(0x500, 3); got != "hel" {
		t.Errorf("capped ReadCString = %q", got)
	}
}

func TestFootprintSparse(t *testing.T) {
	m := New()
	m.Write8(0, 1)
	m.Write8(1<<40, 1)
	if n := m.PagesTouched(); n != 2 {
		t.Errorf("PagesTouched = %d, want 2", n)
	}
	if f := m.Footprint(); f != 2<<HostPageBits {
		t.Errorf("Footprint = %d", f)
	}
}

// Property: a 64-bit write followed by a 64-bit read at the same aligned
// address returns the value, and writes to disjoint addresses do not
// interfere.
func TestWriteReadProperty(t *testing.T) {
	m := New()
	r := rand.New(rand.NewSource(3))
	f := func() bool {
		a := (r.Uint64() % (1 << 34)) &^ 7
		b := (r.Uint64() % (1 << 34)) &^ 7
		if a == b {
			return true
		}
		va, vb := r.Uint64(), r.Uint64()
		m.Write64(a, va)
		m.Write64(b, vb)
		return m.Read64(a) == va && m.Read64(b) == vb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
