package xrand

import "testing"

func TestDeterminism(t *testing.T) {
	a, b := New(123), New(123)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := New(124)
	same := 0
	for i := 0; i < 100; i++ {
		if New(123).Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Error("different seeds look identical")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(1)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("Intn(10) only produced %d distinct values", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(2)
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v", f)
		}
	}
}

func TestInt63NonNegative(t *testing.T) {
	r := New(3)
	for i := 0; i < 1000; i++ {
		if r.Int63() < 0 {
			t.Fatal("Int63 negative")
		}
	}
}

func TestPerm(t *testing.T) {
	r := New(4)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("bad permutation %v", p)
		}
		seen[v] = true
	}
}
