// Package xrand provides a tiny, fast, deterministic PRNG used everywhere
// the simulator needs randomness (counter skid, workload generation), so
// experiments are exactly reproducible from their seeds.
package xrand

// Rand is a SplitMix64 generator. The zero value is not usable; call New.
type Rand struct{ state uint64 }

// New returns a generator seeded with seed.
func New(seed uint64) *Rand {
	return &Rand{state: seed + 0x9e3779b97f4a7c15}
}

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative int64.
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
