package asm

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"dsprof/internal/dwarf"
	"dsprof/internal/isa"
)

// Object file container. The text segment is stored in its binary encoded
// form (one 32-bit word per instruction), so a saved program is a genuine
// machine-code image; loading decodes it back.

const objMagic = "dsprof-obj-1"

type objWire struct {
	Magic        string
	Name         string
	TextImg      []byte
	Data         []byte
	Entry        uint64
	Base         uint64
	Debug        *dwarf.Table
	HeapPageSize uint64
}

// Save writes the program as an object file.
func (p *Program) Save(w io.Writer) error {
	img, err := isa.EncodeText(p.Text)
	if err != nil {
		return fmt.Errorf("asm: encoding text: %w", err)
	}
	return gob.NewEncoder(w).Encode(&objWire{
		Magic:        objMagic,
		Name:         p.Name,
		TextImg:      img,
		Data:         p.Data,
		Entry:        p.Entry,
		Base:         p.Base,
		Debug:        p.Debug,
		HeapPageSize: p.HeapPageSize,
	})
}

// Load reads a program object file written by Save.
func Load(r io.Reader) (*Program, error) {
	var w objWire
	if err := gob.NewDecoder(r).Decode(&w); err != nil {
		return nil, fmt.Errorf("asm: decoding object: %w", err)
	}
	if w.Magic != objMagic {
		return nil, fmt.Errorf("asm: bad object magic %q", w.Magic)
	}
	text, err := isa.DecodeText(w.TextImg)
	if err != nil {
		return nil, fmt.Errorf("asm: decoding text: %w", err)
	}
	return &Program{
		Name:         w.Name,
		Text:         text,
		Data:         w.Data,
		Entry:        w.Entry,
		Base:         w.Base,
		Debug:        w.Debug,
		HeapPageSize: w.HeapPageSize,
	}, nil
}

// SaveFile writes the program to path.
func (p *Program) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := p.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a program from path.
func LoadFile(path string) (*Program, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
