package asm

import (
	"bytes"
	"path/filepath"
	"testing"

	"dsprof/internal/dwarf"
	"dsprof/internal/isa"
)

func TestLabelsAndFixups(t *testing.T) {
	b := NewBuilder(0x1000)
	if err := b.Label("start"); err != nil {
		t.Fatal(err)
	}
	b.Emit(isa.Instr{Op: isa.Nop})
	i := b.EmitBranch(isa.Ba, "end")
	b.Emit(isa.Instr{Op: isa.Nop})
	b.Label("end")
	b.Emit(isa.Instr{Op: isa.Halt})
	text, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if text[i].Imm != 2 {
		t.Errorf("forward branch displacement = %d, want 2", text[i].Imm)
	}
	if addr, ok := b.LabelAddr("end"); !ok || addr != 0x1000+3*isa.InstrBytes {
		t.Errorf("LabelAddr(end) = %#x, %v", addr, ok)
	}
}

func TestBackwardBranch(t *testing.T) {
	b := NewBuilder(0)
	b.Label("top")
	b.Emit(isa.Instr{Op: isa.Nop})
	i := b.EmitBranch(isa.Bne, "top")
	text, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if text[i].Imm != -1 {
		t.Errorf("backward displacement = %d, want -1", text[i].Imm)
	}
}

func TestUndefinedLabel(t *testing.T) {
	b := NewBuilder(0)
	b.EmitBranch(isa.Ba, "nowhere")
	if _, err := b.Finish(); err == nil {
		t.Error("Finish accepted undefined label")
	}
}

func TestDuplicateLabel(t *testing.T) {
	b := NewBuilder(0)
	if err := b.Label("x"); err != nil {
		t.Fatal(err)
	}
	if err := b.Label("x"); err == nil {
		t.Error("duplicate label accepted")
	}
}

func TestPCAndAddrOf(t *testing.T) {
	b := NewBuilder(0x2000)
	if b.PC() != 0x2000 {
		t.Errorf("initial PC = %#x", b.PC())
	}
	b.Emit(isa.Instr{Op: isa.Nop})
	if b.PC() != 0x2004 || b.AddrOf(0) != 0x2000 || b.Len() != 1 {
		t.Errorf("PC=%#x AddrOf(0)=%#x Len=%d", b.PC(), b.AddrOf(0), b.Len())
	}
}

func TestProgramInstrAt(t *testing.T) {
	p := &Program{
		Base: 0x1000,
		Text: []isa.Instr{{Op: isa.Nop}, {Op: isa.Halt}},
	}
	if in := p.InstrAt(0x1004); in == nil || in.Op != isa.Halt {
		t.Error("InstrAt(0x1004) wrong")
	}
	for _, pc := range []uint64{0xffc, 0x1008, 0x1002} {
		if p.InstrAt(pc) != nil {
			t.Errorf("InstrAt(%#x) should be nil", pc)
		}
	}
	if p.End() != 0x1008 {
		t.Errorf("End = %#x", p.End())
	}
}

func makeProgram() *Program {
	tab := dwarf.NewTable(dwarf.FormatDWARF)
	long := tab.AddType(dwarf.Type{Name: "long", Kind: dwarf.KindBase, Size: 8})
	node := tab.AddType(dwarf.Type{
		Name: "node", Kind: dwarf.KindStruct, Size: 16,
		Members: []dwarf.Member{{Name: "a", Off: 0, Type: long}, {Name: "b", Off: 8, Type: long}},
	})
	tab.AddFunc(dwarf.Func{Name: "main", Start: 0x1000, End: 0x1008, HWCProf: true})
	tab.Lines[0x1000] = 3
	tab.Xrefs[0x1000] = dwarf.DataXref{Type: node, Member: 1}
	tab.BranchTargets[0x1004] = true
	tab.Source["main.mc"] = []string{"line1", "line2", "line3"}
	return &Program{
		Name:  "test",
		Base:  0x1000,
		Entry: 0x1000,
		Text:  []isa.Instr{{Op: isa.LdX, Rd: isa.O0, Rs1: isa.O1, UseImm: true, Imm: 8}, {Op: isa.Halt}},
		Data:  []byte{1, 2, 3},
		Debug: tab,
	}
}

func TestObjectFileRoundtrip(t *testing.T) {
	p := makeProgram()
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != p.Name || q.Entry != p.Entry || q.Base != p.Base {
		t.Error("header fields lost")
	}
	if len(q.Text) != 2 || q.Text[0] != p.Text[0] {
		t.Errorf("text lost: %+v", q.Text)
	}
	if !bytes.Equal(q.Data, p.Data) {
		t.Error("data lost")
	}
	if q.Debug == nil || q.Debug.Format != dwarf.FormatDWARF {
		t.Fatal("debug table lost")
	}
	if q.Debug.Lines[0x1000] != 3 || !q.Debug.BranchTargets[0x1004] {
		t.Error("debug details lost")
	}
	if x, ok := q.Debug.Xrefs[0x1000]; !ok || x.Member != 1 {
		t.Error("xrefs lost")
	}
	if f := q.Debug.FuncAt(0x1004); f == nil || f.Name != "main" {
		t.Error("funcs lost")
	}
}

func TestObjectFileOnDisk(t *testing.T) {
	p := makeProgram()
	path := filepath.Join(t.TempDir(), "test.obj")
	if err := p.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	q, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != "test" {
		t.Error("roundtrip through file failed")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.obj")); err == nil {
		t.Error("LoadFile of missing path succeeded")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not an object file"))); err == nil {
		t.Error("Load accepted garbage")
	}
}
