// Package asm provides the program builder used by the compiler backend
// (and by tests that hand-write machine code): it assembles instructions
// with symbolic labels, resolves branch/call fixups, and packages the
// result together with its debug tables into a loadable Program.
package asm

import (
	"fmt"

	"dsprof/internal/dwarf"
	"dsprof/internal/isa"
)

// Builder accumulates a text segment with symbolic labels.
type Builder struct {
	base   uint64
	instrs []isa.Instr
	labels map[string]int
	fixups []fixup
}

type fixup struct {
	at    int // instruction index of the branch/call
	label string
}

// NewBuilder returns a builder whose first instruction will live at base.
func NewBuilder(base uint64) *Builder {
	return &Builder{base: base, labels: make(map[string]int)}
}

// PC returns the address the next emitted instruction will have.
func (b *Builder) PC() uint64 {
	return b.base + uint64(len(b.instrs))*isa.InstrBytes
}

// Len returns the number of instructions emitted so far.
func (b *Builder) Len() int { return len(b.instrs) }

// AddrOf returns the PC of instruction index i.
func (b *Builder) AddrOf(i int) uint64 {
	return b.base + uint64(i)*isa.InstrBytes
}

// Label defines name at the current position. Redefinition is an error.
func (b *Builder) Label(name string) error {
	if _, dup := b.labels[name]; dup {
		return fmt.Errorf("asm: label %q redefined", name)
	}
	b.labels[name] = len(b.instrs)
	return nil
}

// LabelAddr returns the address of a defined label.
func (b *Builder) LabelAddr(name string) (uint64, bool) {
	i, ok := b.labels[name]
	if !ok {
		return 0, false
	}
	return b.AddrOf(i), true
}

// Emit appends one instruction and returns its index.
func (b *Builder) Emit(in isa.Instr) int {
	b.instrs = append(b.instrs, in)
	return len(b.instrs) - 1
}

// Instr returns a pointer to the instruction at index i for patching.
func (b *Builder) Instr(i int) *isa.Instr { return &b.instrs[i] }

// EmitBranch appends a branch to a (possibly not yet defined) label and
// returns its index. The displacement is fixed up in Finish.
func (b *Builder) EmitBranch(op isa.Op, label string) int {
	i := b.Emit(isa.Instr{Op: op, UseImm: true})
	b.fixups = append(b.fixups, fixup{at: i, label: label})
	return i
}

// EmitCall appends a call to a label.
func (b *Builder) EmitCall(label string) int {
	i := b.Emit(isa.Instr{Op: isa.Call, Rd: isa.O7, UseImm: true})
	b.fixups = append(b.fixups, fixup{at: i, label: label})
	return i
}

// Finish resolves all fixups and returns the text segment.
func (b *Builder) Finish() ([]isa.Instr, error) {
	for _, f := range b.fixups {
		ti, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("asm: undefined label %q", f.label)
		}
		disp := ti - f.at
		if disp < isa.DispMin || disp > isa.DispMax {
			return nil, fmt.Errorf("asm: branch to %q out of range (%d words)", f.label, disp)
		}
		b.instrs[f.at].Imm = int32(disp)
	}
	b.fixups = nil
	return b.instrs, nil
}

// Program is a loadable executable: text, initialized data, entry point
// and debug tables. It corresponds to the paper's a.out-plus-symbol-tables
// artifact.
type Program struct {
	Name  string
	Text  []isa.Instr
	Data  []byte
	Entry uint64
	Base  uint64 // address of Text[0]
	Debug *dwarf.Table

	// HeapPageSize is the page size the program requests for its heap
	// segment (-xpagesize_heap); 0 means the system default.
	HeapPageSize uint64
}

// InstrAt returns the instruction at pc, or nil if pc is outside text.
func (p *Program) InstrAt(pc uint64) *isa.Instr {
	if pc < p.Base || pc%isa.InstrBytes != 0 {
		return nil
	}
	i := (pc - p.Base) / isa.InstrBytes
	if i >= uint64(len(p.Text)) {
		return nil
	}
	return &p.Text[i]
}

// End returns one past the last text PC.
func (p *Program) End() uint64 {
	return p.Base + uint64(len(p.Text))*isa.InstrBytes
}
