// Package cli holds the suite's command-line entry conventions: every
// command's main is a thin wrapper over a run() error function, so error
// paths return through normal control flow — deferred cleanup (spool
// tail flushes, temp files, HTTP drains) runs — and the process exit
// code is assigned in exactly one place. Exit codes follow cmd/collect:
// 2 for usage errors, 1 for runtime failures.
package cli

import (
	"errors"
	"fmt"
	"os"
)

// UsageError marks a command-line usage problem; Main exits 2 for it
// (the same code flag.ExitOnError uses) instead of the runtime 1.
type UsageError struct{ Err error }

func (e UsageError) Error() string { return e.Err.Error() }
func (e UsageError) Unwrap() error { return e.Err }

// Usagef builds a UsageError.
func Usagef(format string, args ...any) error {
	return UsageError{Err: fmt.Errorf(format, args...)}
}

// Main runs fn and exits the process with the conventional code: 0 on
// nil, 2 for usage errors, 1 otherwise. The error is printed to stderr
// prefixed with the command name. It must be the last call in main —
// nothing after it runs on failure — and fn must do its own cleanup via
// defer, which is the point: returning an error unwinds fn normally.
func Main(name string, fn func() error) {
	err := fn()
	if err == nil {
		return
	}
	fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
	var ue UsageError
	if errors.As(err, &ue) {
		os.Exit(2)
	}
	os.Exit(1)
}
