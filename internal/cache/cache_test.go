package cache

import (
	"testing"
	"testing/quick"

	"dsprof/internal/xrand"
)

func mustNew(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Name: "x", SizeBytes: 100, LineBytes: 32, Assoc: 2},
		{Name: "x", SizeBytes: 1024, LineBytes: 24, Assoc: 2},
		{Name: "x", SizeBytes: 1024, LineBytes: 32, Assoc: 3},
		{Name: "x", SizeBytes: 32, LineBytes: 32, Assoc: 2},
		{Name: "x", SizeBytes: 0, LineBytes: 32, Assoc: 2},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted bad config", cfg)
		}
	}
	good := Config{Name: "d", SizeBytes: 64 << 10, LineBytes: 32, Assoc: 4}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate(%+v): %v", good, err)
	}
	if got := good.Sets(); got != 512 {
		t.Errorf("Sets = %d, want 512", got)
	}
}

func TestHitAfterMiss(t *testing.T) {
	c := mustNew(t, Config{Name: "t", SizeBytes: 1024, LineBytes: 32, Assoc: 2})
	if hit, _ := c.Access(0x1000, false, true); hit {
		t.Error("cold access hit")
	}
	if hit, _ := c.Access(0x1000, false, true); !hit {
		t.Error("second access missed")
	}
	// Same line, different offset.
	if hit, _ := c.Access(0x101f, false, true); !hit {
		t.Error("same-line access missed")
	}
	// Next line misses.
	if hit, _ := c.Access(0x1020, false, true); hit {
		t.Error("next-line access hit")
	}
	if c.Reads != 4 || c.ReadMisses != 2 {
		t.Errorf("stats reads=%d misses=%d", c.Reads, c.ReadMisses)
	}
}

func TestLRUEviction(t *testing.T) {
	// 2-way, 32B lines, 2 sets (128 B total).
	c := mustNew(t, Config{Name: "t", SizeBytes: 128, LineBytes: 32, Assoc: 2})
	// Three lines mapping to set 0: line numbers 0, 2, 4 -> addrs 0, 64, 128.
	c.Access(0, false, true)
	c.Access(64, false, true)
	c.Access(0, false, true)   // touch 0 so 64 is LRU
	c.Access(128, false, true) // evicts 64
	if !c.Contains(0) || c.Contains(64) || !c.Contains(128) {
		t.Errorf("LRU eviction wrong: 0=%v 64=%v 128=%v",
			c.Contains(0), c.Contains(64), c.Contains(128))
	}
}

func TestNoAllocate(t *testing.T) {
	c := mustNew(t, Config{Name: "t", SizeBytes: 1024, LineBytes: 32, Assoc: 2})
	if hit, _ := c.Access(0x40, true, false); hit {
		t.Error("cold store hit")
	}
	if c.Contains(0x40) {
		t.Error("no-allocate store installed a line")
	}
	if c.WriteMisses != 1 {
		t.Errorf("WriteMisses = %d", c.WriteMisses)
	}
}

func TestDirtyWriteback(t *testing.T) {
	// Direct-mapped single set: 1 line of 32 B.
	c := mustNew(t, Config{Name: "t", SizeBytes: 32, LineBytes: 32, Assoc: 1})
	c.Access(0, true, true) // install dirty
	_, wb := c.Access(32, false, true)
	if !wb {
		t.Error("evicting dirty line reported no writeback")
	}
	_, wb = c.Access(64, false, true) // clean victim
	if wb {
		t.Error("evicting clean line reported writeback")
	}
	// Read-installed then written: dirty on eviction.
	c.Flush()
	c.Access(0, false, true)
	c.Access(0, true, true)
	if _, wb := c.Access(32, false, true); !wb {
		t.Error("written line not dirty on eviction")
	}
}

func TestFlush(t *testing.T) {
	c := mustNew(t, Config{Name: "t", SizeBytes: 1024, LineBytes: 32, Assoc: 2})
	c.Access(0x100, false, true)
	c.Flush()
	if c.Contains(0x100) {
		t.Error("Flush left valid line")
	}
	if c.Reads != 0 || c.ReadMisses != 0 {
		t.Error("Flush left stats")
	}
}

// Property: the cache never holds more distinct lines than its capacity,
// and an access to a just-installed line always hits.
func TestCapacityProperty(t *testing.T) {
	c := mustNew(t, Config{Name: "t", SizeBytes: 512, LineBytes: 32, Assoc: 4})
	r := xrand.New(7)
	f := func() bool {
		addr := uint64(r.Intn(1 << 20))
		c.Access(addr, r.Intn(2) == 0, true)
		if !c.Contains(addr) {
			return false
		}
		hit, _ := c.Access(addr, false, true)
		return hit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// Property: with a working set that fits, steady state has no misses.
func TestFittingWorkingSetNoMisses(t *testing.T) {
	c := mustNew(t, Config{Name: "t", SizeBytes: 4096, LineBytes: 32, Assoc: 4})
	for pass := 0; pass < 3; pass++ {
		for a := uint64(0); a < 4096; a += 32 {
			c.Access(a, false, true)
		}
	}
	if c.ReadMisses != 4096/32 {
		t.Errorf("misses = %d, want compulsory %d", c.ReadMisses, 4096/32)
	}
}

func TestHierarchyLoadPath(t *testing.T) {
	h, err := NewHierarchy(
		Config{Name: "D$", SizeBytes: 1024, LineBytes: 32, Assoc: 4},
		Config{Name: "E$", SizeBytes: 8192, LineBytes: 512, Assoc: 2},
		DefaultCosts(),
	)
	if err != nil {
		t.Fatal(err)
	}
	// Cold load: misses both.
	r := h.Load(0x10000)
	if !r.DCRdMiss || !r.ECRef || !r.ECRdMiss || r.Stall != DefaultCosts().MemStall {
		t.Errorf("cold load result %+v", r)
	}
	// Hot load: D$ hit, nothing else.
	r = h.Load(0x10000)
	if !r.DCHit || r.ECRef || r.Stall != 0 {
		t.Errorf("hot load result %+v", r)
	}
	// Same E$ line (512 B), different D$ line: D$ miss, E$ hit.
	r = h.Load(0x10000 + 64)
	if !r.DCRdMiss || !r.ECRef || r.ECRdMiss || r.Stall != DefaultCosts().EHitStall {
		t.Errorf("E$-hit load result %+v", r)
	}
	if h.ECStallCycles != uint64(DefaultCosts().MemStall+DefaultCosts().EHitStall) {
		t.Errorf("ECStallCycles = %d", h.ECStallCycles)
	}
}

func TestHierarchyStorePath(t *testing.T) {
	h, err := NewHierarchy(
		Config{Name: "D$", SizeBytes: 1024, LineBytes: 32, Assoc: 4},
		Config{Name: "E$", SizeBytes: 8192, LineBytes: 512, Assoc: 2},
		DefaultCosts(),
	)
	if err != nil {
		t.Fatal(err)
	}
	// Cold store: D$ miss (no allocate), E$ write-allocate miss.
	r := h.Store(0x20000)
	if r.DCHit || !r.ECRef || !r.ECMiss || r.ECRdMiss || r.Stall != DefaultCosts().StoreMissStall {
		t.Errorf("cold store result %+v", r)
	}
	if h.D.Contains(0x20000) {
		t.Error("store allocated into D$")
	}
	if !h.E.Contains(0x20000) {
		t.Error("store did not allocate into E$")
	}
	// Store again: still D$ miss (never allocated), but E$ hit now.
	r = h.Store(0x20000)
	if !r.ECRef || r.ECMiss || r.Stall != 0 {
		t.Errorf("warm store result %+v", r)
	}
	// Load it into D$, then store: absorbed, no E$ ref.
	h.Load(0x20000)
	r = h.Store(0x20000)
	if !r.DCHit || r.ECRef {
		t.Errorf("D$-hit store result %+v", r)
	}
}

func TestHierarchyPrefetch(t *testing.T) {
	h, err := NewHierarchy(
		Config{Name: "D$", SizeBytes: 1024, LineBytes: 32, Assoc: 4},
		Config{Name: "E$", SizeBytes: 8192, LineBytes: 512, Assoc: 2},
		DefaultCosts(),
	)
	if err != nil {
		t.Fatal(err)
	}
	r := h.Prefetch(0x30000)
	if r.Stall != 0 || r.ECRdMiss {
		t.Errorf("prefetch result %+v", r)
	}
	if h.ECStallCycles != 0 {
		t.Error("prefetch accumulated stall")
	}
	// Demand load after prefetch hits.
	r = h.Load(0x30000)
	if !r.DCHit {
		t.Errorf("load after prefetch: %+v", r)
	}
}
