package cache

import (
	"fmt"
	"testing"
	"testing/quick"

	"dsprof/internal/xrand"
)

func mustNew(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Name: "x", SizeBytes: 100, LineBytes: 32, Assoc: 2},
		{Name: "x", SizeBytes: 1024, LineBytes: 24, Assoc: 2},
		{Name: "x", SizeBytes: 1024, LineBytes: 32, Assoc: 3},
		{Name: "x", SizeBytes: 32, LineBytes: 32, Assoc: 2},
		{Name: "x", SizeBytes: 0, LineBytes: 32, Assoc: 2},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted bad config", cfg)
		}
	}
	good := Config{Name: "d", SizeBytes: 64 << 10, LineBytes: 32, Assoc: 4}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate(%+v): %v", good, err)
	}
	if got := good.Sets(); got != 512 {
		t.Errorf("Sets = %d, want 512", got)
	}
}

func TestHitAfterMiss(t *testing.T) {
	c := mustNew(t, Config{Name: "t", SizeBytes: 1024, LineBytes: 32, Assoc: 2})
	if hit, _ := c.Access(0x1000, false, true); hit {
		t.Error("cold access hit")
	}
	if hit, _ := c.Access(0x1000, false, true); !hit {
		t.Error("second access missed")
	}
	// Same line, different offset.
	if hit, _ := c.Access(0x101f, false, true); !hit {
		t.Error("same-line access missed")
	}
	// Next line misses.
	if hit, _ := c.Access(0x1020, false, true); hit {
		t.Error("next-line access hit")
	}
	if c.Reads() != 4 || c.ReadMisses != 2 {
		t.Errorf("stats reads=%d misses=%d", c.Reads(), c.ReadMisses)
	}
}

func TestLRUEviction(t *testing.T) {
	// 2-way, 32B lines, 2 sets (128 B total).
	c := mustNew(t, Config{Name: "t", SizeBytes: 128, LineBytes: 32, Assoc: 2})
	// Three lines mapping to set 0: line numbers 0, 2, 4 -> addrs 0, 64, 128.
	c.Access(0, false, true)
	c.Access(64, false, true)
	c.Access(0, false, true)   // touch 0 so 64 is LRU
	c.Access(128, false, true) // evicts 64
	if !c.Contains(0) || c.Contains(64) || !c.Contains(128) {
		t.Errorf("LRU eviction wrong: 0=%v 64=%v 128=%v",
			c.Contains(0), c.Contains(64), c.Contains(128))
	}
}

func TestNoAllocate(t *testing.T) {
	c := mustNew(t, Config{Name: "t", SizeBytes: 1024, LineBytes: 32, Assoc: 2})
	if hit, _ := c.Access(0x40, true, false); hit {
		t.Error("cold store hit")
	}
	if c.Contains(0x40) {
		t.Error("no-allocate store installed a line")
	}
	if c.WriteMisses != 1 {
		t.Errorf("WriteMisses = %d", c.WriteMisses)
	}
}

func TestDirtyWriteback(t *testing.T) {
	// Direct-mapped single set: 1 line of 32 B.
	c := mustNew(t, Config{Name: "t", SizeBytes: 32, LineBytes: 32, Assoc: 1})
	c.Access(0, true, true) // install dirty
	_, wb := c.Access(32, false, true)
	if !wb {
		t.Error("evicting dirty line reported no writeback")
	}
	_, wb = c.Access(64, false, true) // clean victim
	if wb {
		t.Error("evicting clean line reported writeback")
	}
	// Read-installed then written: dirty on eviction.
	c.Flush()
	c.Access(0, false, true)
	c.Access(0, true, true)
	if _, wb := c.Access(32, false, true); !wb {
		t.Error("written line not dirty on eviction")
	}
}

func TestFlush(t *testing.T) {
	c := mustNew(t, Config{Name: "t", SizeBytes: 1024, LineBytes: 32, Assoc: 2})
	c.Access(0x100, false, true)
	c.Flush()
	if c.Contains(0x100) {
		t.Error("Flush left valid line")
	}
	if c.Reads() != 0 || c.ReadMisses != 0 {
		t.Error("Flush left stats")
	}
}

// Property: the cache never holds more distinct lines than its capacity,
// and an access to a just-installed line always hits.
func TestCapacityProperty(t *testing.T) {
	c := mustNew(t, Config{Name: "t", SizeBytes: 512, LineBytes: 32, Assoc: 4})
	r := xrand.New(7)
	f := func() bool {
		addr := uint64(r.Intn(1 << 20))
		c.Access(addr, r.Intn(2) == 0, true)
		if !c.Contains(addr) {
			return false
		}
		hit, _ := c.Access(addr, false, true)
		return hit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// Property: with a working set that fits, steady state has no misses.
func TestFittingWorkingSetNoMisses(t *testing.T) {
	c := mustNew(t, Config{Name: "t", SizeBytes: 4096, LineBytes: 32, Assoc: 4})
	for pass := 0; pass < 3; pass++ {
		for a := uint64(0); a < 4096; a += 32 {
			c.Access(a, false, true)
		}
	}
	if c.ReadMisses != 4096/32 {
		t.Errorf("misses = %d, want compulsory %d", c.ReadMisses, 4096/32)
	}
}

func TestHierarchyLoadPath(t *testing.T) {
	h, err := NewHierarchy(
		Config{Name: "D$", SizeBytes: 1024, LineBytes: 32, Assoc: 4},
		Config{Name: "E$", SizeBytes: 8192, LineBytes: 512, Assoc: 2},
		DefaultCosts(),
	)
	if err != nil {
		t.Fatal(err)
	}
	// Cold load: misses both.
	r := h.Load(0x10000)
	if !r.DCRdMiss || !r.ECRef || !r.ECRdMiss || r.Stall != DefaultCosts().MemStall {
		t.Errorf("cold load result %+v", r)
	}
	// Hot load: D$ hit, nothing else.
	r = h.Load(0x10000)
	if !r.DCHit || r.ECRef || r.Stall != 0 {
		t.Errorf("hot load result %+v", r)
	}
	// Same E$ line (512 B), different D$ line: D$ miss, E$ hit.
	r = h.Load(0x10000 + 64)
	if !r.DCRdMiss || !r.ECRef || r.ECRdMiss || r.Stall != DefaultCosts().EHitStall {
		t.Errorf("E$-hit load result %+v", r)
	}
	if h.ECStallCycles != uint64(DefaultCosts().MemStall+DefaultCosts().EHitStall) {
		t.Errorf("ECStallCycles = %d", h.ECStallCycles)
	}
}

func TestHierarchyStorePath(t *testing.T) {
	h, err := NewHierarchy(
		Config{Name: "D$", SizeBytes: 1024, LineBytes: 32, Assoc: 4},
		Config{Name: "E$", SizeBytes: 8192, LineBytes: 512, Assoc: 2},
		DefaultCosts(),
	)
	if err != nil {
		t.Fatal(err)
	}
	// Cold store: D$ miss (no allocate), E$ write-allocate miss.
	r := h.Store(0x20000)
	if r.DCHit || !r.ECRef || !r.ECMiss || r.ECRdMiss || r.Stall != DefaultCosts().StoreMissStall {
		t.Errorf("cold store result %+v", r)
	}
	if h.D.Contains(0x20000) {
		t.Error("store allocated into D$")
	}
	if !h.E.Contains(0x20000) {
		t.Error("store did not allocate into E$")
	}
	// Store again: still D$ miss (never allocated), but E$ hit now.
	r = h.Store(0x20000)
	if !r.ECRef || r.ECMiss || r.Stall != 0 {
		t.Errorf("warm store result %+v", r)
	}
	// Load it into D$, then store: absorbed, no E$ ref.
	h.Load(0x20000)
	r = h.Store(0x20000)
	if !r.DCHit || r.ECRef {
		t.Errorf("D$-hit store result %+v", r)
	}
}

func TestHierarchyPrefetch(t *testing.T) {
	h, err := NewHierarchy(
		Config{Name: "D$", SizeBytes: 1024, LineBytes: 32, Assoc: 4},
		Config{Name: "E$", SizeBytes: 8192, LineBytes: 512, Assoc: 2},
		DefaultCosts(),
	)
	if err != nil {
		t.Fatal(err)
	}
	r := h.Prefetch(0x30000)
	if r.Stall != 0 || r.ECRdMiss {
		t.Errorf("prefetch result %+v", r)
	}
	if h.ECStallCycles != 0 {
		t.Error("prefetch accumulated stall")
	}
	// Demand load after prefetch hits.
	r = h.Load(0x30000)
	if !r.DCHit {
		t.Errorf("load after prefetch: %+v", r)
	}
}

// refCache is the naive reference model of the cache's observable state
// machine, retained from before the timestamp-LRU and packed-metadata
// rework: per-set MRU-first lists of (line, dirty) pairs and plain
// counters. The step-equivalence property below drives it in lockstep
// with Cache and requires identical hits, misses, victims, dirty
// writebacks, and statistics on randomized traces.
type refCache struct {
	cfg      Config
	sets     [][]refLine // each set MRU-first
	reads    uint64
	writes   uint64
	rdMiss   uint64
	wrMiss   uint64
	lastLine uint64 // line most recently hit or installed by a full access
	lastOK   bool
}

type refLine struct {
	line  uint64
	dirty bool
}

func newRefCache(cfg Config) *refCache {
	return &refCache{cfg: cfg, sets: make([][]refLine, cfg.Sets())}
}

func (r *refCache) lineOf(addr uint64) uint64 { return addr / uint64(r.cfg.LineBytes) }
func (r *refCache) setOf(line uint64) int     { return int(line % uint64(r.cfg.Sets())) }

func (r *refCache) find(line uint64) (int, int, bool) {
	s := r.setOf(line)
	for i, e := range r.sets[s] {
		if e.line == line {
			return s, i, true
		}
	}
	return s, -1, false
}

// access is the reference Access/AccessFull: list-LRU with move-to-front
// on hit, LRU eviction on allocating miss.
func (r *refCache) access(addr uint64, write, allocate bool) (hit, writeback bool) {
	line := r.lineOf(addr)
	if write {
		r.writes++
	} else {
		r.reads++
	}
	s, i, ok := r.find(line)
	if ok {
		e := r.sets[s][i]
		e.dirty = e.dirty || write
		r.sets[s] = append(append([]refLine{e}, r.sets[s][:i]...), r.sets[s][i+1:]...)
		r.lastLine, r.lastOK = line, true
		return true, false
	}
	if write {
		r.wrMiss++
	} else {
		r.rdMiss++
	}
	if !allocate {
		return false, false
	}
	if len(r.sets[s]) == r.cfg.Assoc {
		victim := r.sets[s][len(r.sets[s])-1]
		writeback = victim.dirty
		r.sets[s] = r.sets[s][:len(r.sets[s])-1]
	}
	r.sets[s] = append([]refLine{{line: line, dirty: write}}, r.sets[s]...)
	r.lastLine, r.lastOK = line, true
	return false, writeback
}

// hitMRU is the reference HitMRU: the access retires only against the
// line of the most recent full-access hit or install.
func (r *refCache) hitMRU(addr uint64, write bool) bool {
	line := r.lineOf(addr)
	if !r.lastOK || line != r.lastLine {
		return false
	}
	if _, _, ok := r.find(line); !ok {
		return false
	}
	hit, _ := r.access(addr, write, false)
	return hit
}

func (r *refCache) contains(addr uint64) bool {
	_, _, ok := r.find(r.lineOf(addr))
	return ok
}

func (r *refCache) flush() {
	r.sets = make([][]refLine, r.cfg.Sets())
	r.reads, r.writes, r.rdMiss, r.wrMiss = 0, 0, 0, 0
	r.lastLine, r.lastOK = 0, false
}

func (r *refCache) checkStats(t *testing.T, c *Cache, op string, n int) {
	t.Helper()
	if c.Reads() != r.reads || c.Writes() != r.writes ||
		c.ReadMisses != r.rdMiss || c.WriteMisses != r.wrMiss {
		t.Fatalf("op %d (%s): stats diverge: cache r=%d w=%d rm=%d wm=%d, ref r=%d w=%d rm=%d wm=%d",
			n, op, c.Reads(), c.Writes(), c.ReadMisses, c.WriteMisses,
			r.reads, r.writes, r.rdMiss, r.wrMiss)
	}
}

// TestCacheStepEquivalence drives the packed timestamp-LRU cache and the
// naive list-LRU reference through identical randomized traces — reads,
// writes, no-allocate stores, MRU probes, way probes, flushes — across
// every associativity the unrolled scans special-case plus the generic
// fallback, asserting step-identical observables throughout.
func TestCacheStepEquivalence(t *testing.T) {
	for _, assoc := range []int{1, 2, 4, 8} {
		cfg := Config{Name: "t", SizeBytes: 64 * 32 * assoc / 8, LineBytes: 32, Assoc: assoc}
		if cfg.SizeBytes < cfg.LineBytes*cfg.Assoc {
			cfg.SizeBytes = cfg.LineBytes * cfg.Assoc
		}
		t.Run(fmt.Sprintf("assoc%d", assoc), func(t *testing.T) {
			c := mustNew(t, cfg)
			ref := newRefCache(cfg)
			r := xrand.New(uint64(911 + assoc))
			touched := map[uint64]bool{}
			for n := 0; n < 20000; n++ {
				addr := uint64(r.Intn(1<<13)) &^ 3 // working set >> capacity
				write := r.Intn(3) == 0
				touched[addr&^uint64(cfg.LineBytes-1)] = true
				switch k := r.Intn(10); {
				case k < 6: // full access (stores sometimes no-allocate)
					allocate := !write || r.Intn(2) == 0
					h1, wb1 := c.Access(addr, write, allocate)
					h2, wb2 := ref.access(addr, write, allocate)
					if h1 != h2 || wb1 != wb2 {
						t.Fatalf("op %d: Access(%#x,w=%v,a=%v) = (%v,%v), ref (%v,%v)",
							n, addr, write, allocate, h1, wb1, h2, wb2)
					}
					ref.checkStats(t, c, "Access", n)
				case k < 8: // bare MRU probe
					h1 := c.HitMRU(addr, write)
					h2 := ref.hitMRU(addr, write)
					if h1 != h2 {
						t.Fatalf("op %d: HitMRU(%#x,w=%v) = %v, ref %v", n, addr, write, h1, h2)
					}
					ref.checkStats(t, c, "HitMRU", n)
				case k < 9: // way probe against the way a fresh access retired in
					h1, _ := c.Access(addr, false, true)
					h2, _ := ref.access(addr, false, true)
					if h1 != h2 {
						t.Fatalf("op %d: way-probe setup Access(%#x) = %v, ref %v", n, addr, h1, h2)
					}
					if !c.WayHit(c.LastWay(), addr, write) {
						t.Fatalf("op %d: WayHit on just-retired way of %#x failed", n, addr)
					}
					if h := ref.hitMRU(addr, write); !h {
						t.Fatalf("op %d: reference probe of just-accessed %#x failed", n, addr)
					}
					ref.checkStats(t, c, "WayHit", n)
				default:
					if r.Intn(50) == 0 {
						c.Flush()
						ref.flush()
					}
					for a := range touched {
						if c.Contains(a) != ref.contains(a) {
							t.Fatalf("op %d: Contains(%#x) = %v, ref %v", n, a, c.Contains(a), ref.contains(a))
						}
					}
					ref.checkStats(t, c, "Contains", n)
				}
			}
		})
	}
}
