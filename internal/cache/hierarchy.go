package cache

// Costs holds the stall-cycle model of the hierarchy. Values are pipeline
// cycles lost beyond the instruction's base cost. Defaults approximate a
// 900 MHz UltraSPARC-III Cu.
type Costs struct {
	EHitStall      int // D$ miss that hits E$
	MemStall       int // E$ read miss serviced from memory
	StoreMissStall int // store that misses E$ (partially hidden by the store queue)
	WritebackStall int // dirty E$ victim writeback
}

// DefaultCosts is the UltraSPARC-III-like cost model.
func DefaultCosts() Costs {
	return Costs{EHitStall: 14, MemStall: 180, StoreMissStall: 30, WritebackStall: 8}
}

// Result reports the counter events and stall of a single data access.
type Result struct {
	DCHit    bool
	DCRdMiss bool // D$ read miss (loads only)
	ECRef    bool // E$ reference (D$ miss, load or store)
	ECRdMiss bool // E$ read miss (loads only)
	ECMiss   bool // any E$ miss
	Stall    int  // cycles lost waiting on E$/memory
}

// Hierarchy combines the two cache levels with the cost model.
//
// Policy, matching the UltraSPARC-III:
//   - D$ is write-through, no-write-allocate. Store hits update D$; store
//     misses do not install a D$ line.
//   - Stores that hit D$ are absorbed by the write cache and do not
//     reference E$; stores that miss D$ reference E$ (write-allocate).
//   - E$ is write-back, write-allocate.
//   - Prefetches install lines in both levels but never stall and are not
//     counted as demand read misses.
type Hierarchy struct {
	D     *Cache
	E     *Cache
	Costs Costs

	// Cumulative stall cycles attributed to E$ misses (the "E$ Stall
	// Cycles" counter counts these).
	ECStallCycles uint64
}

// DefaultDCache is the UltraSPARC-III Cu level-1 data cache: 64 KB,
// 4-way, 32-byte lines.
func DefaultDCache() Config {
	return Config{Name: "D$", SizeBytes: 64 << 10, LineBytes: 32, Assoc: 4}
}

// DefaultECache is the UltraSPARC-III Cu external cache: 8 MB, 2-way,
// 512-byte lines.
func DefaultECache() Config {
	return Config{Name: "E$", SizeBytes: 8 << 20, LineBytes: 512, Assoc: 2}
}

// NewHierarchy builds the two-level hierarchy.
func NewHierarchy(d, e Config, costs Costs) (*Hierarchy, error) {
	dc, err := New(d)
	if err != nil {
		return nil, err
	}
	ec, err := New(e)
	if err != nil {
		return nil, err
	}
	return &Hierarchy{D: dc, E: ec, Costs: costs}, nil
}

// Load performs a demand load access.
func (h *Hierarchy) Load(addr uint64) Result {
	var r Result
	hit, _ := h.D.Access(addr, false, true)
	if hit {
		r.DCHit = true
		return r
	}
	r.DCRdMiss = true
	r.ECRef = true
	ehit, wb := h.E.Access(addr, false, true)
	if ehit {
		r.Stall = h.Costs.EHitStall
	} else {
		r.ECRdMiss = true
		r.ECMiss = true
		r.Stall = h.Costs.MemStall
	}
	if wb {
		r.Stall += h.Costs.WritebackStall
	}
	h.ECStallCycles += uint64(r.Stall)
	return r
}

// Store performs a store access.
func (h *Hierarchy) Store(addr uint64) Result {
	var r Result
	hit, _ := h.D.Access(addr, true, false)
	if hit {
		// Write-through, but the write cache coalesces the E$ traffic;
		// no architectural stall and no counted E$ reference.
		r.DCHit = true
		return r
	}
	r.ECRef = true
	ehit, wb := h.E.Access(addr, true, true)
	if !ehit {
		r.ECMiss = true
		r.Stall = h.Costs.StoreMissStall
	}
	if wb {
		r.Stall += h.Costs.WritebackStall
	}
	h.ECStallCycles += uint64(r.Stall)
	return r
}

// Prefetch performs a software prefetch: fills both levels, never stalls.
func (h *Hierarchy) Prefetch(addr uint64) Result {
	var r Result
	hit, _ := h.D.Access(addr, false, true)
	if hit {
		r.DCHit = true
		return r
	}
	r.ECRef = true
	h.E.Access(addr, false, true)
	return r
}

// Flush invalidates both levels and clears statistics.
func (h *Hierarchy) Flush() {
	h.D.Flush()
	h.E.Flush()
	h.ECStallCycles = 0
}
