// Package cache models the processor cache hierarchy: a small write-through
// level-1 data cache (D$) backed by a large write-back external cache (E$),
// following the UltraSPARC-III Cu organization the paper's experiments ran
// on (64 KB 4-way 32 B-line D$, 8 MB 2-way 512 B-line E$).
//
// The model is a timing and event model, not a coherence model: each access
// reports which levels hit, which counter events it generated, and how many
// stall cycles the pipeline lost. Geometry and miss costs are configurable
// so experiments can run with scaled-down caches while preserving the
// working-set-to-cache ratios that drive the paper's results.
package cache

import "fmt"

// Config describes one cache level.
type Config struct {
	Name      string
	SizeBytes int
	LineBytes int
	Assoc     int
}

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// Validate checks geometry invariants.
func (c *Config) Validate() error {
	if !isPow2(c.SizeBytes) || !isPow2(c.LineBytes) || !isPow2(c.Assoc) {
		return fmt.Errorf("cache %s: size, line and associativity must be powers of two", c.Name)
	}
	if c.LineBytes*c.Assoc > c.SizeBytes {
		return fmt.Errorf("cache %s: size %d too small for %d-way %d-byte lines", c.Name, c.SizeBytes, c.Assoc, c.LineBytes)
	}
	return nil
}

// Sets returns the number of sets.
func (c *Config) Sets() int { return c.SizeBytes / (c.LineBytes * c.Assoc) }

// Tag-word flag bits. The valid and dirty state of each way is packed
// into the top bits of its tag word instead of parallel []bool arrays, so
// a probe touches one word instead of three and the probe working set
// shrinks. Line numbers (full address >> lineShift) must fit the low 62
// bits, i.e. addresses below 2^67 with the smallest legal line size.
const (
	tagValid   = uint64(1) << 63
	tagDirty   = uint64(1) << 62
	tagPayload = tagDirty - 1 // low 62 bits: the line number
)

// way is one cache way: the packed tag word and its LRU stamp, adjacent
// so a probe's tag match and stamp update touch the same host cache
// line. A 4-way set is exactly one 64-byte line of metadata.
type way struct {
	tag uint64
	use uint64
}

// Cache is one set-associative cache level with true-LRU replacement.
type Cache struct {
	cfg       Config
	lineShift uint
	setMask   uint64
	assoc     int
	ways      []way // sets*assoc way records
	lastIdx   int   // index of the most recent hit or install (MRU memo)

	// tick is the LRU clock and doubles as the access counter: every
	// counted access — hit or miss, read or write — advances it by
	// exactly one (failed probes and Contains touch nothing), so
	// Reads() derives as tick-writes and the hit paths pay one counter
	// update instead of two.
	tick   uint64
	writes uint64

	// Statistics (cumulative). Misses are off the hit path, so they
	// stay plain fields.
	ReadMisses  uint64
	WriteMisses uint64
}

// New builds a cache from cfg.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sets := cfg.Sets()
	var shift uint
	for 1<<shift != cfg.LineBytes {
		shift++
	}
	return &Cache{
		cfg:       cfg,
		lineShift: shift,
		setMask:   uint64(sets - 1),
		assoc:     cfg.Assoc,
		ways:      make([]way, sets*cfg.Assoc),
	}, nil
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// LineBytes returns the line size.
func (c *Cache) LineBytes() int { return c.cfg.LineBytes }

// lineOf returns the line number (full address >> lineShift).
func (c *Cache) lineOf(addr uint64) uint64 { return addr >> c.lineShift }

// Reads reports the cumulative read (and prefetch) access count. It is
// derived from the LRU clock — every access ticks once, so reads are
// the ticks that were not writes — keeping the per-access hot paths to
// a single counter update.
func (c *Cache) Reads() uint64 { return c.tick - c.writes }

// Writes reports the cumulative write access count.
func (c *Cache) Writes() uint64 { return c.writes }

// HitMRU performs the access against the most-recently-used entry only:
// it reports false — with no state change — unless addr hits the same way
// the previous access touched. On a hit it applies exactly the updates a
// full Access would (tick, read/write statistics, LRU stamp, dirty bit),
// so callers can use it as an inlinable fast path in front of Access.
func (c *Cache) HitMRU(addr uint64, write bool) bool {
	line := addr >> c.lineShift
	e := &c.ways[c.lastIdx]
	if e.tag&(tagValid|tagPayload) != tagValid|line {
		return false
	}
	c.tick++
	if write {
		c.writes++
		e.tag |= tagDirty
	}
	e.use = c.tick
	return true
}

// WayHit performs the access against one specific way: it reports false —
// with no state change — unless addr's line currently occupies ways[way].
// On a hit it applies exactly the updates a full Access would, like
// HitMRU but with a caller-remembered way instead of the MRU memo, so
// per-site way caches (the translated backend's memory ops) can verify
// and retire repeat hits inline. The way index is a performance hint
// only: a stale one fails the tag compare and the caller falls back.
func (c *Cache) WayHit(way int, addr uint64, write bool) bool {
	line := addr >> c.lineShift
	e := &c.ways[way]
	if e.tag&(tagValid|tagPayload) != tagValid|line {
		return false
	}
	c.tick++
	if write {
		c.writes++
		e.tag |= tagDirty
	}
	e.use = c.tick
	return true
}

// LastWay reports the way index of the most recent hit or install — the
// value a per-site way cache should remember after a fallback Access.
// Like the MRU memo it feeds, it is pure optimization state: no
// architectural or statistics update depends on it.
func (c *Cache) LastWay() int { return c.lastIdx }

// Access performs a read or write access to addr. allocate controls
// whether a miss installs the line (write-through no-write-allocate D$
// stores pass allocate=false). It reports whether the access hit, and
// whether installing the line evicted a dirty victim (write-back traffic).
func (c *Cache) Access(addr uint64, write, allocate bool) (hit, writeback bool) {
	// MRU memo: a line's payload encodes its set, so matching the way the
	// last access touched proves this access hits the same entry a full
	// scan would find, with identical stamp and statistics updates.
	if c.HitMRU(addr, write) {
		return true, false
	}
	return c.AccessFull(addr, write, allocate)
}

// AccessFull is Access without the leading MRU-memo probe. Callers that
// just failed HitMRU on the same address use it to skip the redundant
// re-check (a failed probe mutates nothing); it is otherwise identical.
//
// The hit test and the victim tracking read the same tag and stamp
// words, so they fold into one pass over the set (the old
// hit-then-victim double walk re-read every way on a miss), and the two
// associativities the modeled hierarchy actually uses (4-way D$/I$,
// 2-way E$) get unrolled scans — the generic loop's induction and
// bounds machinery costs as much as the tag compares themselves. An
// invalid way's stamp reads as 0 — ways are stamped on every install
// and tick starts at 1 — so "lowest use wins" alone also picks the
// first invalid way, and the victim needs no validity tie-break. Victim
// choice is the first way with the minimum stamp, in way order, exactly
// like the generic scan.
func (c *Cache) AccessFull(addr uint64, write, allocate bool) (hit, writeback bool) {
	line := c.lineOf(addr)
	base := int(line&c.setMask) * c.assoc
	c.tick++
	if write {
		c.writes++
	}
	match := tagValid | line
	var victim int
	switch c.assoc {
	case 4:
		set := c.ways[base : base+4 : base+4]
		w := -1
		switch {
		case set[0].tag&(tagValid|tagPayload) == match:
			w = 0
		case set[1].tag&(tagValid|tagPayload) == match:
			w = 1
		case set[2].tag&(tagValid|tagPayload) == match:
			w = 2
		case set[3].tag&(tagValid|tagPayload) == match:
			w = 3
		}
		if w >= 0 {
			c.lastIdx = base + w
			set[w].use = c.tick
			if write {
				set[w].tag |= tagDirty
			}
			return true, false
		}
		u0, u1, u2, u3 := set[0].use, set[1].use, set[2].use, set[3].use
		if set[0].tag&tagValid == 0 {
			u0 = 0
		}
		if set[1].tag&tagValid == 0 {
			u1 = 0
		}
		if set[2].tag&tagValid == 0 {
			u2 = 0
		}
		if set[3].tag&tagValid == 0 {
			u3 = 0
		}
		vuse := u0
		if u1 < vuse {
			victim, vuse = 1, u1
		}
		if u2 < vuse {
			victim, vuse = 2, u2
		}
		if u3 < vuse {
			victim = 3
		}
	case 2:
		set := c.ways[base : base+2 : base+2]
		if set[0].tag&(tagValid|tagPayload) == match {
			c.lastIdx = base
			set[0].use = c.tick
			if write {
				set[0].tag |= tagDirty
			}
			return true, false
		}
		if set[1].tag&(tagValid|tagPayload) == match {
			c.lastIdx = base + 1
			set[1].use = c.tick
			if write {
				set[1].tag |= tagDirty
			}
			return true, false
		}
		u0, u1 := set[0].use, set[1].use
		if set[0].tag&tagValid == 0 {
			u0 = 0
		}
		if set[1].tag&tagValid == 0 {
			u1 = 0
		}
		if u1 < u0 {
			victim = 1
		}
	default:
		set := c.ways[base : base+c.assoc]
		vuse := ^uint64(0)
		for i := range set {
			tag := set[i].tag
			if tag&(tagValid|tagPayload) == match {
				c.lastIdx = base + i
				set[i].use = c.tick
				if write {
					set[i].tag = tag | tagDirty
				}
				return true, false
			}
			use := set[i].use
			if tag&tagValid == 0 {
				use = 0
			}
			if use < vuse {
				victim, vuse = i, use
			}
		}
	}
	if write {
		c.WriteMisses++
	} else {
		c.ReadMisses++
	}
	if !allocate {
		return false, false
	}
	e := &c.ways[base+victim]
	old := e.tag
	writeback = old&(tagValid|tagDirty) == tagValid|tagDirty
	w := line | tagValid
	if write {
		w |= tagDirty
	}
	*e = way{tag: w, use: c.tick}
	c.lastIdx = base + victim
	return false, writeback
}

// Contains probes for addr without disturbing LRU state or statistics.
func (c *Cache) Contains(addr uint64) bool {
	line := c.lineOf(addr)
	base := int(line&c.setMask) * c.assoc
	for i := base; i < base+c.assoc; i++ {
		if w := c.ways[i].tag; w&tagValid != 0 && w&tagPayload == line {
			return true
		}
	}
	return false
}

// Flush invalidates every line and clears statistics.
func (c *Cache) Flush() {
	for i := range c.ways {
		c.ways[i] = way{}
	}
	c.tick = 0
	c.lastIdx = 0
	c.writes, c.ReadMisses, c.WriteMisses = 0, 0, 0
}
