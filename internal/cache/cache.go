// Package cache models the processor cache hierarchy: a small write-through
// level-1 data cache (D$) backed by a large write-back external cache (E$),
// following the UltraSPARC-III Cu organization the paper's experiments ran
// on (64 KB 4-way 32 B-line D$, 8 MB 2-way 512 B-line E$).
//
// The model is a timing and event model, not a coherence model: each access
// reports which levels hit, which counter events it generated, and how many
// stall cycles the pipeline lost. Geometry and miss costs are configurable
// so experiments can run with scaled-down caches while preserving the
// working-set-to-cache ratios that drive the paper's results.
package cache

import "fmt"

// Config describes one cache level.
type Config struct {
	Name      string
	SizeBytes int
	LineBytes int
	Assoc     int
}

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// Validate checks geometry invariants.
func (c *Config) Validate() error {
	if !isPow2(c.SizeBytes) || !isPow2(c.LineBytes) || !isPow2(c.Assoc) {
		return fmt.Errorf("cache %s: size, line and associativity must be powers of two", c.Name)
	}
	if c.LineBytes*c.Assoc > c.SizeBytes {
		return fmt.Errorf("cache %s: size %d too small for %d-way %d-byte lines", c.Name, c.SizeBytes, c.Assoc, c.LineBytes)
	}
	return nil
}

// Sets returns the number of sets.
func (c *Config) Sets() int { return c.SizeBytes / (c.LineBytes * c.Assoc) }

// Cache is one set-associative cache level with true-LRU replacement.
type Cache struct {
	cfg       Config
	lineShift uint
	setMask   uint64
	assoc     int
	tags      []uint64 // sets*assoc line tags (full line address >> lineShift)
	valid     []bool
	dirty     []bool
	use       []uint64 // LRU stamps
	tick      uint64

	// Statistics (cumulative).
	Reads       uint64
	Writes      uint64
	ReadMisses  uint64
	WriteMisses uint64
}

// New builds a cache from cfg.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sets := cfg.Sets()
	n := sets * cfg.Assoc
	var shift uint
	for 1<<shift != cfg.LineBytes {
		shift++
	}
	return &Cache{
		cfg:       cfg,
		lineShift: shift,
		setMask:   uint64(sets - 1),
		assoc:     cfg.Assoc,
		tags:      make([]uint64, n),
		valid:     make([]bool, n),
		dirty:     make([]bool, n),
		use:       make([]uint64, n),
	}, nil
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// LineBytes returns the line size.
func (c *Cache) LineBytes() int { return c.cfg.LineBytes }

// lineOf returns the line number (full address >> lineShift).
func (c *Cache) lineOf(addr uint64) uint64 { return addr >> c.lineShift }

// Access performs a read or write access to addr. allocate controls
// whether a miss installs the line (write-through no-write-allocate D$
// stores pass allocate=false). It reports whether the access hit, and
// whether installing the line evicted a dirty victim (write-back traffic).
func (c *Cache) Access(addr uint64, write, allocate bool) (hit, writeback bool) {
	line := c.lineOf(addr)
	set := int(line & c.setMask)
	base := set * c.assoc
	c.tick++
	if write {
		c.Writes++
	} else {
		c.Reads++
	}
	victim := base
	for i := base; i < base+c.assoc; i++ {
		if c.valid[i] && c.tags[i] == line {
			c.use[i] = c.tick
			if write {
				c.dirty[i] = true
			}
			return true, false
		}
		if !c.valid[victim] {
			continue // keep first invalid way as victim
		}
		if !c.valid[i] || c.use[i] < c.use[victim] {
			victim = i
		}
	}
	if write {
		c.WriteMisses++
	} else {
		c.ReadMisses++
	}
	if !allocate {
		return false, false
	}
	writeback = c.valid[victim] && c.dirty[victim]
	c.tags[victim] = line
	c.valid[victim] = true
	c.dirty[victim] = write
	c.use[victim] = c.tick
	return false, writeback
}

// Contains probes for addr without disturbing LRU state or statistics.
func (c *Cache) Contains(addr uint64) bool {
	line := c.lineOf(addr)
	set := int(line & c.setMask)
	base := set * c.assoc
	for i := base; i < base+c.assoc; i++ {
		if c.valid[i] && c.tags[i] == line {
			return true
		}
	}
	return false
}

// Flush invalidates every line and clears statistics.
func (c *Cache) Flush() {
	for i := range c.valid {
		c.valid[i] = false
		c.dirty[i] = false
		c.use[i] = 0
	}
	c.tick = 0
	c.Reads, c.Writes, c.ReadMisses, c.WriteMisses = 0, 0, 0, 0
}
