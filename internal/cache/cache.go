// Package cache models the processor cache hierarchy: a small write-through
// level-1 data cache (D$) backed by a large write-back external cache (E$),
// following the UltraSPARC-III Cu organization the paper's experiments ran
// on (64 KB 4-way 32 B-line D$, 8 MB 2-way 512 B-line E$).
//
// The model is a timing and event model, not a coherence model: each access
// reports which levels hit, which counter events it generated, and how many
// stall cycles the pipeline lost. Geometry and miss costs are configurable
// so experiments can run with scaled-down caches while preserving the
// working-set-to-cache ratios that drive the paper's results.
package cache

import "fmt"

// Config describes one cache level.
type Config struct {
	Name      string
	SizeBytes int
	LineBytes int
	Assoc     int
}

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// Validate checks geometry invariants.
func (c *Config) Validate() error {
	if !isPow2(c.SizeBytes) || !isPow2(c.LineBytes) || !isPow2(c.Assoc) {
		return fmt.Errorf("cache %s: size, line and associativity must be powers of two", c.Name)
	}
	if c.LineBytes*c.Assoc > c.SizeBytes {
		return fmt.Errorf("cache %s: size %d too small for %d-way %d-byte lines", c.Name, c.SizeBytes, c.Assoc, c.LineBytes)
	}
	return nil
}

// Sets returns the number of sets.
func (c *Config) Sets() int { return c.SizeBytes / (c.LineBytes * c.Assoc) }

// Tag-word flag bits. The valid and dirty state of each way is packed
// into the top bits of its tag word instead of parallel []bool arrays, so
// a probe touches one word instead of three and the probe working set
// shrinks. Line numbers (full address >> lineShift) must fit the low 62
// bits, i.e. addresses below 2^67 with the smallest legal line size.
const (
	tagValid   = uint64(1) << 63
	tagDirty   = uint64(1) << 62
	tagPayload = tagDirty - 1 // low 62 bits: the line number
)

// way is one cache way: the packed tag word and its LRU stamp, adjacent
// so a probe's tag match and stamp update touch the same host cache
// line. A 4-way set is exactly one 64-byte line of metadata.
type way struct {
	tag uint64
	use uint64
}

// Cache is one set-associative cache level with true-LRU replacement.
type Cache struct {
	cfg       Config
	lineShift uint
	setMask   uint64
	assoc     int
	ways      []way // sets*assoc way records
	tick      uint64
	lastIdx   int // index of the most recent hit or install (MRU memo)

	// Statistics (cumulative).
	Reads       uint64
	Writes      uint64
	ReadMisses  uint64
	WriteMisses uint64
}

// New builds a cache from cfg.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sets := cfg.Sets()
	var shift uint
	for 1<<shift != cfg.LineBytes {
		shift++
	}
	return &Cache{
		cfg:       cfg,
		lineShift: shift,
		setMask:   uint64(sets - 1),
		assoc:     cfg.Assoc,
		ways:      make([]way, sets*cfg.Assoc),
	}, nil
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// LineBytes returns the line size.
func (c *Cache) LineBytes() int { return c.cfg.LineBytes }

// lineOf returns the line number (full address >> lineShift).
func (c *Cache) lineOf(addr uint64) uint64 { return addr >> c.lineShift }

// HitMRU performs the access against the most-recently-used entry only:
// it reports false — with no state change — unless addr hits the same way
// the previous access touched. On a hit it applies exactly the updates a
// full Access would (tick, read/write statistics, LRU stamp, dirty bit),
// so callers can use it as an inlinable fast path in front of Access.
func (c *Cache) HitMRU(addr uint64, write bool) bool {
	line := addr >> c.lineShift
	e := &c.ways[c.lastIdx]
	if e.tag&(tagValid|tagPayload) != tagValid|line {
		return false
	}
	c.tick++
	if write {
		c.Writes++
		e.tag |= tagDirty
	} else {
		c.Reads++
	}
	e.use = c.tick
	return true
}

// WayHit performs the access against one specific way: it reports false —
// with no state change — unless addr's line currently occupies ways[way].
// On a hit it applies exactly the updates a full Access would, like
// HitMRU but with a caller-remembered way instead of the MRU memo, so
// per-site way caches (the translated backend's memory ops) can verify
// and retire repeat hits inline. The way index is a performance hint
// only: a stale one fails the tag compare and the caller falls back.
func (c *Cache) WayHit(way int, addr uint64, write bool) bool {
	line := addr >> c.lineShift
	e := &c.ways[way]
	if e.tag&(tagValid|tagPayload) != tagValid|line {
		return false
	}
	c.tick++
	if write {
		c.Writes++
		e.tag |= tagDirty
	} else {
		c.Reads++
	}
	e.use = c.tick
	return true
}

// LastWay reports the way index of the most recent hit or install — the
// value a per-site way cache should remember after a fallback Access.
// Like the MRU memo it feeds, it is pure optimization state: no
// architectural or statistics update depends on it.
func (c *Cache) LastWay() int { return c.lastIdx }

// Access performs a read or write access to addr. allocate controls
// whether a miss installs the line (write-through no-write-allocate D$
// stores pass allocate=false). It reports whether the access hit, and
// whether installing the line evicted a dirty victim (write-back traffic).
func (c *Cache) Access(addr uint64, write, allocate bool) (hit, writeback bool) {
	// MRU memo: a line's payload encodes its set, so matching the way the
	// last access touched proves this access hits the same entry a full
	// scan would find, with identical stamp and statistics updates.
	if c.HitMRU(addr, write) {
		return true, false
	}
	return c.AccessFull(addr, write, allocate)
}

// AccessFull is Access without the leading MRU-memo probe. Callers that
// just failed HitMRU on the same address use it to skip the redundant
// re-check (a failed probe mutates nothing); it is otherwise identical.
func (c *Cache) AccessFull(addr uint64, write, allocate bool) (hit, writeback bool) {
	line := c.lineOf(addr)
	base := int(line&c.setMask) * c.assoc
	set := c.ways[base : base+c.assoc] // one bounds check for the scan
	c.tick++
	if write {
		c.Writes++
	} else {
		c.Reads++
	}
	// Hit scan first, with none of the victim bookkeeping: hits are the
	// overwhelmingly common case on the simulator's critical path.
	for i := range set {
		if set[i].tag&(tagValid|tagPayload) == tagValid|line {
			c.lastIdx = base + i
			set[i].use = c.tick
			if write {
				set[i].tag |= tagDirty
			}
			return true, false
		}
	}
	if write {
		c.WriteMisses++
	} else {
		c.ReadMisses++
	}
	if !allocate {
		return false, false
	}
	// Miss: pick the victim — first invalid way, else true-LRU.
	victim := 0
	for i := range set {
		if set[victim].tag&tagValid == 0 {
			break
		}
		if set[i].tag&tagValid == 0 || set[i].use < set[victim].use {
			victim = i
		}
	}
	old := set[victim].tag
	writeback = old&(tagValid|tagDirty) == tagValid|tagDirty
	w := line | tagValid
	if write {
		w |= tagDirty
	}
	set[victim] = way{tag: w, use: c.tick}
	c.lastIdx = base + victim
	return false, writeback
}

// Contains probes for addr without disturbing LRU state or statistics.
func (c *Cache) Contains(addr uint64) bool {
	line := c.lineOf(addr)
	base := int(line&c.setMask) * c.assoc
	for i := base; i < base+c.assoc; i++ {
		if w := c.ways[i].tag; w&tagValid != 0 && w&tagPayload == line {
			return true
		}
	}
	return false
}

// Flush invalidates every line and clears statistics.
func (c *Cache) Flush() {
	for i := range c.ways {
		c.ways[i] = way{}
	}
	c.tick = 0
	c.lastIdx = 0
	c.Reads, c.Writes, c.ReadMisses, c.WriteMisses = 0, 0, 0, 0
}
