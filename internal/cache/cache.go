// Package cache models the processor cache hierarchy: a small write-through
// level-1 data cache (D$) backed by a large write-back external cache (E$),
// following the UltraSPARC-III Cu organization the paper's experiments ran
// on (64 KB 4-way 32 B-line D$, 8 MB 2-way 512 B-line E$).
//
// The model is a timing and event model, not a coherence model: each access
// reports which levels hit, which counter events it generated, and how many
// stall cycles the pipeline lost. Geometry and miss costs are configurable
// so experiments can run with scaled-down caches while preserving the
// working-set-to-cache ratios that drive the paper's results.
package cache

import "fmt"

// Config describes one cache level.
type Config struct {
	Name      string
	SizeBytes int
	LineBytes int
	Assoc     int
}

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// Validate checks geometry invariants.
func (c *Config) Validate() error {
	if !isPow2(c.SizeBytes) || !isPow2(c.LineBytes) || !isPow2(c.Assoc) {
		return fmt.Errorf("cache %s: size, line and associativity must be powers of two", c.Name)
	}
	if c.LineBytes*c.Assoc > c.SizeBytes {
		return fmt.Errorf("cache %s: size %d too small for %d-way %d-byte lines", c.Name, c.SizeBytes, c.Assoc, c.LineBytes)
	}
	return nil
}

// Sets returns the number of sets.
func (c *Config) Sets() int { return c.SizeBytes / (c.LineBytes * c.Assoc) }

// Tag-word flag bits. The valid and dirty state of each way is packed
// into the top bits of its tag word instead of parallel []bool arrays, so
// a probe touches one array instead of three and the probe working set
// shrinks. Line numbers (full address >> lineShift) must fit the low 62
// bits, i.e. addresses below 2^67 with the smallest legal line size.
const (
	tagValid   = uint64(1) << 63
	tagDirty   = uint64(1) << 62
	tagPayload = tagDirty - 1 // low 62 bits: the line number
)

// Cache is one set-associative cache level with true-LRU replacement.
type Cache struct {
	cfg       Config
	lineShift uint
	setMask   uint64
	assoc     int
	tags      []uint64 // sets*assoc packed tag words: valid|dirty|line
	use       []uint64 // LRU stamps
	tick      uint64
	lastIdx   int // way of the most recent hit or install (MRU memo)

	// Statistics (cumulative).
	Reads       uint64
	Writes      uint64
	ReadMisses  uint64
	WriteMisses uint64
}

// New builds a cache from cfg.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sets := cfg.Sets()
	n := sets * cfg.Assoc
	var shift uint
	for 1<<shift != cfg.LineBytes {
		shift++
	}
	return &Cache{
		cfg:       cfg,
		lineShift: shift,
		setMask:   uint64(sets - 1),
		assoc:     cfg.Assoc,
		tags:      make([]uint64, n),
		use:       make([]uint64, n),
	}, nil
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// LineBytes returns the line size.
func (c *Cache) LineBytes() int { return c.cfg.LineBytes }

// lineOf returns the line number (full address >> lineShift).
func (c *Cache) lineOf(addr uint64) uint64 { return addr >> c.lineShift }

// HitMRU performs the access against the most-recently-used entry only:
// it reports false — with no state change — unless addr hits the same way
// the previous access touched. On a hit it applies exactly the updates a
// full Access would (tick, read/write statistics, LRU stamp, dirty bit),
// so callers can use it as an inlinable fast path in front of Access.
func (c *Cache) HitMRU(addr uint64, write bool) bool {
	line := addr >> c.lineShift
	w := c.tags[c.lastIdx]
	if w&(tagValid|tagPayload) != tagValid|line {
		return false
	}
	c.tick++
	if write {
		c.Writes++
		c.tags[c.lastIdx] = w | tagDirty
	} else {
		c.Reads++
	}
	c.use[c.lastIdx] = c.tick
	return true
}

// Access performs a read or write access to addr. allocate controls
// whether a miss installs the line (write-through no-write-allocate D$
// stores pass allocate=false). It reports whether the access hit, and
// whether installing the line evicted a dirty victim (write-back traffic).
func (c *Cache) Access(addr uint64, write, allocate bool) (hit, writeback bool) {
	// MRU memo: a line's payload encodes its set, so matching the way the
	// last access touched proves this access hits the same entry a full
	// scan would find, with identical stamp and statistics updates.
	if c.HitMRU(addr, write) {
		return true, false
	}
	line := c.lineOf(addr)
	base := int(line&c.setMask) * c.assoc
	ways := c.tags[base : base+c.assoc] // one bounds check for the scan
	c.tick++
	if write {
		c.Writes++
	} else {
		c.Reads++
	}
	// Hit scan first, with none of the victim bookkeeping: hits are the
	// overwhelmingly common case on the simulator's critical path.
	for i, w := range ways {
		if w&(tagValid|tagPayload) == tagValid|line {
			c.lastIdx = base + i
			c.use[base+i] = c.tick
			if write {
				ways[i] = w | tagDirty
			}
			return true, false
		}
	}
	if write {
		c.WriteMisses++
	} else {
		c.ReadMisses++
	}
	if !allocate {
		return false, false
	}
	// Miss: pick the victim — first invalid way, else true-LRU.
	victim := 0
	for i, w := range ways {
		if ways[victim]&tagValid == 0 {
			break
		}
		if w&tagValid == 0 || c.use[base+i] < c.use[base+victim] {
			victim = i
		}
	}
	old := ways[victim]
	writeback = old&(tagValid|tagDirty) == tagValid|tagDirty
	w := line | tagValid
	if write {
		w |= tagDirty
	}
	ways[victim] = w
	c.use[base+victim] = c.tick
	c.lastIdx = base + victim
	return false, writeback
}

// Contains probes for addr without disturbing LRU state or statistics.
func (c *Cache) Contains(addr uint64) bool {
	line := c.lineOf(addr)
	set := int(line & c.setMask)
	base := set * c.assoc
	for i := base; i < base+c.assoc; i++ {
		if w := c.tags[i]; w&tagValid != 0 && w&tagPayload == line {
			return true
		}
	}
	return false
}

// Flush invalidates every line and clears statistics.
func (c *Cache) Flush() {
	for i := range c.tags {
		c.tags[i] = 0
		c.use[i] = 0
	}
	c.tick = 0
	c.lastIdx = 0
	c.Reads, c.Writes, c.ReadMisses, c.WriteMisses = 0, 0, 0, 0
}
