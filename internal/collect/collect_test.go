package collect

import (
	"path/filepath"
	"testing"

	"dsprof/internal/asm"
	"dsprof/internal/cc"
	"dsprof/internal/experiment"
	"dsprof/internal/hwc"
	"dsprof/internal/machine"
)

// chaseSrc is a pointer-chasing workload whose loads miss heavily: a
// shuffled singly linked list larger than the scaled E$.
const chaseSrc = `
struct node { long value; struct node *next; long pad1; long pad2; long pad3; long pad4; long pad5; long pad6; };
struct node *nodes;
long nnodes;
struct node *build(long n) {
	long i;
	long j;
	long stride;
	struct node *a;
	a = (struct node *) malloc(n * sizeof(struct node));
	stride = 97;
	j = 0;
	for (i = 0; i < n; i++) {
		a[j].value = i;
		a[j].next = &a[(j + stride) % n];
		j = (j + stride) % n;
	}
	return a;
}
long chase(struct node *p, long steps) {
	long sum;
	sum = 0;
	while (steps > 0) {
		sum += p->value;
		p = p->next;
		steps--;
	}
	return sum;
}
long main() {
	struct node *a;
	long total;
	nnodes = read_long();
	a = build(nnodes);
	total = chase(a, nnodes * 4);
	write_long(total);
	return 0;
}
`

func compileChase(t *testing.T) *asm.Program {
	t.Helper()
	prog, err := cc.Compile([]cc.Source{{Name: "chase.mc", Text: chaseSrc}}, cc.Options{Name: "chase", HWCProf: true})
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func scaled() *machine.Config {
	cfg := machine.ScaledConfig()
	cfg.MaxInstrs = 100_000_000
	return &cfg
}

func TestParseCounterSpec(t *testing.T) {
	specs, err := ParseCounterSpec("+ecstall,lo,+ecrm,on")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("got %d specs", len(specs))
	}
	if specs[0].Event != hwc.EvECStall || !specs[0].Backtrack {
		t.Errorf("spec 0 = %+v", specs[0])
	}
	if specs[1].Event != hwc.EvECRdMiss || !specs[1].Backtrack {
		t.Errorf("spec 1 = %+v", specs[1])
	}
	if specs[0].Interval == specs[1].Interval {
		t.Error("lo and on should give different intervals")
	}
	if _, err := ParseCounterSpec("ecref,on,dtlbm"); err == nil {
		t.Error("odd-length spec accepted")
	}
	if _, err := ParseCounterSpec("bogus,on"); err == nil {
		t.Error("unknown counter accepted")
	}
	if _, err := ParseCounterSpec("+ecref,on,+dtlbm,on,+ecrm,on"); err == nil {
		t.Error("three counters accepted")
	}
	// Numeric intervals and no-backtrack names.
	specs, err = ParseCounterSpec("cycles,12345")
	if err != nil || specs[0].Interval != 12345 || specs[0].Backtrack {
		t.Errorf("numeric spec = %+v, %v", specs, err)
	}
}

func TestProfiledRunMatchesUnprofiledOutput(t *testing.T) {
	prog := compileChase(t)
	input := []int64{20000}

	// Unprofiled reference run.
	cfg := scaled()
	m, err := machine.New(*cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadProgram(prog.Text, prog.Data, prog.Entry); err != nil {
		t.Fatal(err)
	}
	m.SetInput(input)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	want := m.OutputLongs()

	// Profiled run: collection must not perturb results.
	specs, _ := ParseCounterSpec("+ecstall,10000,+ecrm,997")
	res, err := Run(prog, Options{
		ClockProfile: true,
		Counters:     specs,
		Machine:      cfg,
		Input:        input,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Machine.OutputLongs()
	if len(got) != len(want) || got[0] != want[0] {
		t.Errorf("profiled output %v, unprofiled %v", got, want)
	}
	if len(res.Exp.Clock) == 0 {
		t.Error("no clock ticks recorded")
	}
	if len(res.Exp.HWC[0]) == 0 || len(res.Exp.HWC[1]) == 0 {
		t.Errorf("no HWC events: %d, %d", len(res.Exp.HWC[0]), len(res.Exp.HWC[1]))
	}
}

func TestBacktrackingAccuracy(t *testing.T) {
	// With -xhwcprof padding, the candidate trigger PC from apropos
	// backtracking should match the true trigger for the overwhelming
	// majority of E$ read miss events (paper: "accuracies of nearly 100%
	// have been observed").
	prog := compileChase(t)
	specs, _ := ParseCounterSpec("+ecrm,499,+dtlbm,499")
	res, err := Run(prog, Options{Counters: specs, Machine: scaled(), Input: []int64{20000}})
	if err != nil {
		t.Fatal(err)
	}
	for pic, name := range []string{"ecrm", "dtlbm"} {
		events := res.Exp.HWC[pic]
		truth := res.Truth[pic]
		if len(events) < 50 {
			t.Fatalf("%s: only %d events", name, len(events))
		}
		correct, withEA, eaCorrect := 0, 0, 0
		for i, e := range events {
			if e.CandidatePC == truth[i].TruePC {
				correct++
			}
			if e.HasEA {
				withEA++
				if truth[i].HasEA && e.EA == truth[i].TrueEA {
					eaCorrect++
				}
			}
		}
		accuracy := float64(correct) / float64(len(events))
		if accuracy < 0.90 {
			t.Errorf("%s: backtracking accuracy %.1f%% (%d/%d), want >= 90%%",
				name, accuracy*100, correct, len(events))
		}
		if withEA == 0 {
			t.Errorf("%s: no effective addresses recovered", name)
		} else if float64(eaCorrect)/float64(withEA) < 0.98 {
			// When the collector *claims* an EA it must be right: the
			// register-clobber check is conservative.
			t.Errorf("%s: recovered EAs wrong: %d/%d correct", name, eaCorrect, withEA)
		}
	}
}

func TestDTLBBacktrackingIsPerfect(t *testing.T) {
	// DTLB miss traps are precise, so backtracking should identify the
	// trigger for essentially every event.
	prog := compileChase(t)
	specs, _ := ParseCounterSpec("+dtlbm,211")
	res, err := Run(prog, Options{Counters: specs, Machine: scaled(), Input: []int64{20000}})
	if err != nil {
		t.Fatal(err)
	}
	events, truth := res.Exp.HWC[0], res.Truth[0]
	if len(events) < 100 {
		t.Fatalf("only %d DTLB events", len(events))
	}
	correct := 0
	for i, e := range events {
		if e.CandidatePC == truth[i].TruePC {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(events)); acc < 0.999 {
		t.Errorf("DTLB backtracking accuracy %.2f%%, want ~100%%", acc*100)
	}
}

func TestNoBacktrackLeavesCandidateEmpty(t *testing.T) {
	prog := compileChase(t)
	specs, _ := ParseCounterSpec("ecrm,499")
	res, err := Run(prog, Options{Counters: specs, Machine: scaled(), Input: []int64{30000}})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Exp.HWC[0] {
		if e.CandidatePC != 0 || e.HasEA {
			t.Fatal("backtracking ran without the + prefix")
		}
	}
}

func TestCallstacksRecorded(t *testing.T) {
	prog := compileChase(t)
	specs, _ := ParseCounterSpec("+ecrm,499")
	res, err := Run(prog, Options{Counters: specs, Machine: scaled(), Input: []int64{30000}})
	if err != nil {
		t.Fatal(err)
	}
	deep := 0
	for _, e := range res.Exp.HWC[0] {
		if len(e.Callstack) >= 1 {
			deep++
		}
	}
	if deep == 0 {
		t.Error("no events carried a callstack (all work is in chase(), called from main)")
	}
}

func TestExperimentSaveLoadRoundtrip(t *testing.T) {
	prog := compileChase(t)
	specs, _ := ParseCounterSpec("+ecstall,10000,+dtlbm,499")
	res, err := Run(prog, Options{
		ClockProfile: true,
		Counters:     specs,
		Machine:      scaled(),
		Input:        []int64{10000},
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "test.er")
	if err := res.Exp.Save(dir); err != nil {
		t.Fatal(err)
	}
	back, err := experiment.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Meta.ProgName != "chase" {
		t.Errorf("ProgName = %q", back.Meta.ProgName)
	}
	if len(back.HWC[0]) != len(res.Exp.HWC[0]) || len(back.HWC[1]) != len(res.Exp.HWC[1]) {
		t.Error("HWC events lost in roundtrip")
	}
	if len(back.Clock) != len(res.Exp.Clock) {
		t.Error("clock events lost")
	}
	if len(back.Allocs) == 0 {
		t.Error("allocations lost")
	}
	if back.Prog == nil || len(back.Prog.Text) != len(prog.Text) {
		t.Error("program lost")
	}
	if back.Prog.Debug.FuncByName("chase") == nil {
		t.Error("debug info lost")
	}
	if back.Meta.Stats.Instrs == 0 {
		t.Error("stats lost")
	}
}

func TestCollectPerturbationSmall(t *testing.T) {
	// Profiling overhead comes only from signal handling; the simulated
	// cycle counts must be identical with and without collection (the
	// collector observes, the machine pays no cycles for it). This pins
	// down that observation does not perturb the timing model.
	prog := compileChase(t)
	cfg := scaled()
	m, _ := machine.New(*cfg)
	if err := m.LoadProgram(prog.Text, prog.Data, prog.Entry); err != nil {
		t.Fatal(err)
	}
	m.SetInput([]int64{10000})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	plain := m.Stats().Cycles

	specs, _ := ParseCounterSpec("+ecstall,10000,+ecrm,997")
	res, err := Run(prog, Options{ClockProfile: true, Counters: specs, Machine: cfg, Input: []int64{10000}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Machine.Stats().Cycles != plain {
		t.Errorf("profiled run took %d cycles, unprofiled %d", res.Machine.Stats().Cycles, plain)
	}
}
