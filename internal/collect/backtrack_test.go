package collect

import (
	"testing"

	"dsprof/internal/analyzer"
	"dsprof/internal/asm"
	"dsprof/internal/dwarf"
	"dsprof/internal/experiment"
	"dsprof/internal/hwc"
	"dsprof/internal/isa"
	"dsprof/internal/machine"
)

// Unit tests for the apropos backtracking search and effective-address
// recovery on hand-built instruction sequences.

func makeProg(instrs ...isa.Instr) *asm.Program {
	return &asm.Program{
		Name: "synthetic",
		Base: machine.TextBase,
		Text: instrs,
	}
}

func pc(i int) uint64 { return machine.TextBase + uint64(i)*isa.InstrBytes }

func TestBacktrackFindsNearestLoad(t *testing.T) {
	prog := makeProg(
		isa.Instr{Op: isa.LdX, Rd: isa.O1, Rs1: isa.O3, UseImm: true, Imm: 56}, // 0
		isa.Instr{Op: isa.Add, Rd: isa.O2, Rs1: isa.O1, UseImm: true, Imm: 1},  // 1
		isa.Instr{Op: isa.Nop},  // 2
		isa.Instr{Op: isa.Halt}, // 3
	)
	cand, ok := Backtrack(prog, pc(2), hwc.EvECRdMiss, 8)
	if !ok || cand != pc(0) {
		t.Errorf("Backtrack = %#x, %v; want %#x", cand, ok, pc(0))
	}
}

func TestBacktrackLoadsOnlySkipsStores(t *testing.T) {
	prog := makeProg(
		isa.Instr{Op: isa.LdX, Rd: isa.O1, Rs1: isa.O3, UseImm: true, Imm: 0}, // 0
		isa.Instr{Op: isa.StX, Rd: isa.O1, Rs1: isa.O4, UseImm: true, Imm: 8}, // 1
		isa.Instr{Op: isa.Nop}, // 2
	)
	// Read-miss counters are loads-only: skip the store at 1, find 0.
	cand, ok := Backtrack(prog, pc(2), hwc.EvECRdMiss, 8)
	if !ok || cand != pc(0) {
		t.Errorf("loads-only Backtrack = %#x, %v", cand, ok)
	}
	// E$ refs can come from stores too: find the store at 1.
	cand, ok = Backtrack(prog, pc(2), hwc.EvECRef, 8)
	if !ok || cand != pc(1) {
		t.Errorf("refs Backtrack = %#x, %v", cand, ok)
	}
}

func TestBacktrackRespectsWindow(t *testing.T) {
	instrs := []isa.Instr{{Op: isa.LdX, Rd: isa.O1, Rs1: isa.O3, UseImm: true}}
	for i := 0; i < 10; i++ {
		instrs = append(instrs, isa.Instr{Op: isa.Add, Rd: isa.O2, Rs1: isa.O2, UseImm: true, Imm: 1})
	}
	prog := makeProg(instrs...)
	if _, ok := Backtrack(prog, pc(9), hwc.EvECRdMiss, 4); ok {
		t.Error("found a trigger beyond the window")
	}
	if cand, ok := Backtrack(prog, pc(9), hwc.EvECRdMiss, 16); !ok || cand != pc(0) {
		t.Errorf("wide window Backtrack = %#x, %v", cand, ok)
	}
}

func TestBacktrackStopsAtTextStart(t *testing.T) {
	prog := makeProg(
		isa.Instr{Op: isa.Nop},
		isa.Instr{Op: isa.Nop},
	)
	if _, ok := Backtrack(prog, pc(1), hwc.EvECRdMiss, 8); ok {
		t.Error("walked past the start of text")
	}
}

func TestRecoverEASimple(t *testing.T) {
	prog := makeProg(
		isa.Instr{Op: isa.LdX, Rd: isa.O1, Rs1: isa.O3, UseImm: true, Imm: 56}, // candidate
		isa.Instr{Op: isa.Add, Rd: isa.O2, Rs1: isa.O1, UseImm: true, Imm: 1},
		isa.Instr{Op: isa.Nop},
	)
	var regs [isa.NumRegs]int64
	regs[isa.O3] = 0x40001000
	ea, ok := RecoverEA(prog, pc(0), pc(2), &regs)
	if !ok || ea != 0x40001000+56 {
		t.Errorf("RecoverEA = %#x, %v", ea, ok)
	}
}

func TestRecoverEARegisterIndexed(t *testing.T) {
	prog := makeProg(
		isa.Instr{Op: isa.LdX, Rd: isa.O1, Rs1: isa.O3, Rs2: isa.O4},
		isa.Instr{Op: isa.Nop},
	)
	var regs [isa.NumRegs]int64
	regs[isa.O3] = 0x40002000
	regs[isa.O4] = 0x80
	ea, ok := RecoverEA(prog, pc(0), pc(1), &regs)
	if !ok || ea != 0x40002080 {
		t.Errorf("RecoverEA = %#x, %v", ea, ok)
	}
}

func TestRecoverEARefusesClobberedBase(t *testing.T) {
	// The load overwrites its own base register (pointer chasing):
	// the register content at delivery is the loaded value, not the
	// address, so the collector must refuse.
	prog := makeProg(
		isa.Instr{Op: isa.LdX, Rd: isa.O3, Rs1: isa.O3, UseImm: true, Imm: 8},
		isa.Instr{Op: isa.Nop},
	)
	var regs [isa.NumRegs]int64
	regs[isa.O3] = 0x40001000
	if _, ok := RecoverEA(prog, pc(0), pc(1), &regs); ok {
		t.Error("recovered an EA from a clobbered base register")
	}
}

func TestRecoverEARefusesIntermediateWrite(t *testing.T) {
	prog := makeProg(
		isa.Instr{Op: isa.LdX, Rd: isa.O1, Rs1: isa.O3, UseImm: true, Imm: 0},
		isa.Instr{Op: isa.Add, Rd: isa.O3, Rs1: isa.O3, UseImm: true, Imm: 64}, // clobbers base
		isa.Instr{Op: isa.Nop},
	)
	var regs [isa.NumRegs]int64
	regs[isa.O3] = 0x40003000
	if _, ok := RecoverEA(prog, pc(0), pc(2), &regs); ok {
		t.Error("recovered an EA across an intervening base-register write")
	}
	// But a write to an unrelated register is fine.
	prog2 := makeProg(
		isa.Instr{Op: isa.LdX, Rd: isa.O1, Rs1: isa.O3, UseImm: true, Imm: 0},
		isa.Instr{Op: isa.Add, Rd: isa.O5, Rs1: isa.O5, UseImm: true, Imm: 64},
		isa.Instr{Op: isa.Nop},
	)
	if ea, ok := RecoverEA(prog2, pc(0), pc(2), &regs); !ok || ea != 0x40003000 {
		t.Errorf("unrelated write blocked EA recovery: %#x, %v", ea, ok)
	}
}

func TestRecoverEANonMemoryCandidate(t *testing.T) {
	prog := makeProg(
		isa.Instr{Op: isa.Add, Rd: isa.O1, Rs1: isa.O3, UseImm: true, Imm: 1},
		isa.Instr{Op: isa.Nop},
	)
	var regs [isa.NumRegs]int64
	if _, ok := RecoverEA(prog, pc(0), pc(1), &regs); ok {
		t.Error("recovered an EA from a non-memory instruction")
	}
}

// TestBacktrackAcrossJoinNode is the paper's §2.3 correctness rule end
// to end: the collector's backtracking search deliberately ignores
// branch targets ("too expensive to locate branch targets at data
// collection time"), so when the skid window spans a join node the
// candidate it records lies in a *preceding* basic block and does not
// postdominate the delivered PC. The analyzer's validation must then
// attribute the event to the artificial <branch target> PC at the join
// — never to the stale candidate's struct member.
func TestBacktrackAcrossJoinNode(t *testing.T) {
	tab := dwarf.NewTable(dwarf.FormatDWARF)
	long := tab.AddType(dwarf.Type{Name: "long", Kind: dwarf.KindBase, Size: 8})
	node := tab.AddType(dwarf.Type{Name: "node", Kind: dwarf.KindStruct, Size: 120})
	tab.Types[node].Members = []dwarf.Member{
		{Name: "number", Off: 0, Type: long},
		{Name: "orientation", Off: 56, Type: long},
	}
	tab.AddFunc(dwarf.Func{Name: "f", Start: pc(0), End: pc(6), File: "f.mc", HWCProf: true})
	// Block A ends at 2; 3 is a join node (branch target) beginning the
	// block that contains the delivered PC.
	tab.Xrefs[pc(0)] = dwarf.DataXref{Type: node, Member: 1} // node.orientation
	tab.BranchTargets[pc(3)] = true
	prog := &asm.Program{
		Name:  "join",
		Base:  machine.TextBase,
		Entry: machine.TextBase,
		Text: []isa.Instr{
			{Op: isa.LdX, Rd: isa.O2, Rs1: isa.O3, UseImm: true, Imm: 56}, // 0: block A
			{Op: isa.Add, Rd: isa.O2, Rs1: isa.O2, UseImm: true, Imm: 1},  // 1
			{Op: isa.Nop}, // 2
			{Op: isa.Nop}, // 3: join node
			{Op: isa.Add, Rd: isa.O1, Rs1: isa.O1, UseImm: true, Imm: 2}, // 4
			{Op: isa.Nop}, // 5: delivered here
		},
		Debug: tab,
	}

	// The collector's search crosses the join and lands on the load.
	cand, ok := Backtrack(prog, pc(5), hwc.EvECRdMiss, 8)
	if !ok || cand != pc(0) {
		t.Fatalf("Backtrack = %#x, %v; want the (stale) candidate %#x", cand, ok, pc(0))
	}

	// Analysis must catch the crossed join node and refuse the member.
	e := &experiment.Experiment{Prog: prog}
	e.Meta.ProgName = prog.Name
	e.Meta.ClockHz = 900_000_000
	e.Meta.Counters = []experiment.CounterSpec{
		{Event: hwc.EvECRdMiss, Interval: 1000, Backtrack: true},
		{},
	}
	e.HWC[0] = []experiment.HWCEvent{{PIC: 0, DeliveredPC: pc(5), CandidatePC: cand}}
	a, err := analyzer.New(e)
	if err != nil {
		t.Fatal(err)
	}
	ae := a.Events[0]
	if !ae.Artificial || ae.Val != analyzer.VArtificialBT || ae.PC != pc(3) {
		t.Fatalf("attribution = %+v, want artificial <branch target> at %#x", ae, pc(3))
	}
	if ae.Obj.Kind != analyzer.OKUnresolvable || ae.Member >= 0 {
		t.Errorf("event attributed to %v member %d; a crossed join node must never yield a member",
			ae.Obj.Kind, ae.Member)
	}
}

func TestDefaultClockInterval(t *testing.T) {
	iv := DefaultClockIntervalCycles(900_000_000)
	if iv < 8_000_000 || iv > 10_000_000 {
		t.Errorf("default clock interval %d not ~10ms", iv)
	}
	if iv%2 == 0 {
		t.Error("interval should be odd (prime-ish, per the paper)")
	}
}
