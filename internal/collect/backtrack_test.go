package collect

import (
	"testing"

	"dsprof/internal/asm"
	"dsprof/internal/hwc"
	"dsprof/internal/isa"
	"dsprof/internal/machine"
)

// Unit tests for the apropos backtracking search and effective-address
// recovery on hand-built instruction sequences.

func makeProg(instrs ...isa.Instr) *asm.Program {
	return &asm.Program{
		Name: "synthetic",
		Base: machine.TextBase,
		Text: instrs,
	}
}

func pc(i int) uint64 { return machine.TextBase + uint64(i)*isa.InstrBytes }

func TestBacktrackFindsNearestLoad(t *testing.T) {
	prog := makeProg(
		isa.Instr{Op: isa.LdX, Rd: isa.O1, Rs1: isa.O3, UseImm: true, Imm: 56}, // 0
		isa.Instr{Op: isa.Add, Rd: isa.O2, Rs1: isa.O1, UseImm: true, Imm: 1},  // 1
		isa.Instr{Op: isa.Nop},  // 2
		isa.Instr{Op: isa.Halt}, // 3
	)
	cand, ok := Backtrack(prog, pc(2), hwc.EvECRdMiss, 8)
	if !ok || cand != pc(0) {
		t.Errorf("Backtrack = %#x, %v; want %#x", cand, ok, pc(0))
	}
}

func TestBacktrackLoadsOnlySkipsStores(t *testing.T) {
	prog := makeProg(
		isa.Instr{Op: isa.LdX, Rd: isa.O1, Rs1: isa.O3, UseImm: true, Imm: 0}, // 0
		isa.Instr{Op: isa.StX, Rd: isa.O1, Rs1: isa.O4, UseImm: true, Imm: 8}, // 1
		isa.Instr{Op: isa.Nop}, // 2
	)
	// Read-miss counters are loads-only: skip the store at 1, find 0.
	cand, ok := Backtrack(prog, pc(2), hwc.EvECRdMiss, 8)
	if !ok || cand != pc(0) {
		t.Errorf("loads-only Backtrack = %#x, %v", cand, ok)
	}
	// E$ refs can come from stores too: find the store at 1.
	cand, ok = Backtrack(prog, pc(2), hwc.EvECRef, 8)
	if !ok || cand != pc(1) {
		t.Errorf("refs Backtrack = %#x, %v", cand, ok)
	}
}

func TestBacktrackRespectsWindow(t *testing.T) {
	instrs := []isa.Instr{{Op: isa.LdX, Rd: isa.O1, Rs1: isa.O3, UseImm: true}}
	for i := 0; i < 10; i++ {
		instrs = append(instrs, isa.Instr{Op: isa.Add, Rd: isa.O2, Rs1: isa.O2, UseImm: true, Imm: 1})
	}
	prog := makeProg(instrs...)
	if _, ok := Backtrack(prog, pc(9), hwc.EvECRdMiss, 4); ok {
		t.Error("found a trigger beyond the window")
	}
	if cand, ok := Backtrack(prog, pc(9), hwc.EvECRdMiss, 16); !ok || cand != pc(0) {
		t.Errorf("wide window Backtrack = %#x, %v", cand, ok)
	}
}

func TestBacktrackStopsAtTextStart(t *testing.T) {
	prog := makeProg(
		isa.Instr{Op: isa.Nop},
		isa.Instr{Op: isa.Nop},
	)
	if _, ok := Backtrack(prog, pc(1), hwc.EvECRdMiss, 8); ok {
		t.Error("walked past the start of text")
	}
}

func TestRecoverEASimple(t *testing.T) {
	prog := makeProg(
		isa.Instr{Op: isa.LdX, Rd: isa.O1, Rs1: isa.O3, UseImm: true, Imm: 56}, // candidate
		isa.Instr{Op: isa.Add, Rd: isa.O2, Rs1: isa.O1, UseImm: true, Imm: 1},
		isa.Instr{Op: isa.Nop},
	)
	var regs [isa.NumRegs]int64
	regs[isa.O3] = 0x40001000
	ea, ok := RecoverEA(prog, pc(0), pc(2), &regs)
	if !ok || ea != 0x40001000+56 {
		t.Errorf("RecoverEA = %#x, %v", ea, ok)
	}
}

func TestRecoverEARegisterIndexed(t *testing.T) {
	prog := makeProg(
		isa.Instr{Op: isa.LdX, Rd: isa.O1, Rs1: isa.O3, Rs2: isa.O4},
		isa.Instr{Op: isa.Nop},
	)
	var regs [isa.NumRegs]int64
	regs[isa.O3] = 0x40002000
	regs[isa.O4] = 0x80
	ea, ok := RecoverEA(prog, pc(0), pc(1), &regs)
	if !ok || ea != 0x40002080 {
		t.Errorf("RecoverEA = %#x, %v", ea, ok)
	}
}

func TestRecoverEARefusesClobberedBase(t *testing.T) {
	// The load overwrites its own base register (pointer chasing):
	// the register content at delivery is the loaded value, not the
	// address, so the collector must refuse.
	prog := makeProg(
		isa.Instr{Op: isa.LdX, Rd: isa.O3, Rs1: isa.O3, UseImm: true, Imm: 8},
		isa.Instr{Op: isa.Nop},
	)
	var regs [isa.NumRegs]int64
	regs[isa.O3] = 0x40001000
	if _, ok := RecoverEA(prog, pc(0), pc(1), &regs); ok {
		t.Error("recovered an EA from a clobbered base register")
	}
}

func TestRecoverEARefusesIntermediateWrite(t *testing.T) {
	prog := makeProg(
		isa.Instr{Op: isa.LdX, Rd: isa.O1, Rs1: isa.O3, UseImm: true, Imm: 0},
		isa.Instr{Op: isa.Add, Rd: isa.O3, Rs1: isa.O3, UseImm: true, Imm: 64}, // clobbers base
		isa.Instr{Op: isa.Nop},
	)
	var regs [isa.NumRegs]int64
	regs[isa.O3] = 0x40003000
	if _, ok := RecoverEA(prog, pc(0), pc(2), &regs); ok {
		t.Error("recovered an EA across an intervening base-register write")
	}
	// But a write to an unrelated register is fine.
	prog2 := makeProg(
		isa.Instr{Op: isa.LdX, Rd: isa.O1, Rs1: isa.O3, UseImm: true, Imm: 0},
		isa.Instr{Op: isa.Add, Rd: isa.O5, Rs1: isa.O5, UseImm: true, Imm: 64},
		isa.Instr{Op: isa.Nop},
	)
	if ea, ok := RecoverEA(prog2, pc(0), pc(2), &regs); !ok || ea != 0x40003000 {
		t.Errorf("unrelated write blocked EA recovery: %#x, %v", ea, ok)
	}
}

func TestRecoverEANonMemoryCandidate(t *testing.T) {
	prog := makeProg(
		isa.Instr{Op: isa.Add, Rd: isa.O1, Rs1: isa.O3, UseImm: true, Imm: 1},
		isa.Instr{Op: isa.Nop},
	)
	var regs [isa.NumRegs]int64
	if _, ok := RecoverEA(prog, pc(0), pc(1), &regs); ok {
		t.Error("recovered an EA from a non-memory instruction")
	}
}

func TestDefaultClockInterval(t *testing.T) {
	iv := DefaultClockIntervalCycles(900_000_000)
	if iv < 8_000_000 || iv > 10_000_000 {
		t.Errorf("default clock interval %d not ~10ms", iv)
	}
	if iv%2 == 0 {
		t.Error("interval should be odd (prime-ish, per the paper)")
	}
}
