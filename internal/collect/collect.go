// Package collect implements the data collector: it runs a target program
// on the simulated machine with clock profiling and/or hardware counter
// overflow profiling, performs the apropos backtracking search and
// effective-address recovery at signal-delivery time, and writes the
// resulting experiment.
//
// This is the paper's collect(1) command. The two hardware counter
// registers limit one run to two counters; profiling all four counters of
// the paper's MCF study takes two collect runs, exactly as in the paper.
package collect

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"dsprof/internal/asm"
	"dsprof/internal/experiment"
	"dsprof/internal/faultfs"
	"dsprof/internal/hwc"
	"dsprof/internal/isa"
	"dsprof/internal/machine"
)

// Options configure one profiled run.
type Options struct {
	// ClockProfile enables clock profiling (-p on).
	ClockProfile bool
	// ClockIntervalCycles overrides the ~10ms default tick (0 = default).
	ClockIntervalCycles uint64
	// Counters arms up to two hardware counters (-h spec,interval,...).
	Counters []experiment.CounterSpec
	// Machine selects the simulated system; zero value means the default
	// UltraSPARC-III-like configuration.
	Machine *machine.Config
	// Input is the program's input vector.
	Input []int64
	// MaxBacktrack bounds the apropos backtracking search, in
	// instructions (0 = default 8).
	MaxBacktrack int
	// Label tags the experiment's provenance (e.g. "baseline",
	// "reorder:arc"); it is recorded in the experiment meta.
	Label string
	// SpoolDir, when non-empty, streams counter events into format-v2
	// shard files in this directory as they are produced, instead of
	// buffering the whole event stream in memory. Collection memory
	// then stays flat however long the run, and a cancelled run still
	// leaves every delivered event on disk (the partial tail shard is
	// flushed on every exit path). Point it at the experiment output
	// directory and Save will leave the files in place.
	SpoolDir string
	// Provenance records allocation-site provenance: every heap block's
	// (site, instance, addr, size, birth, death) streams into the
	// experiment as a provenance shard file (prov.pv2) alongside the
	// counter-event shards. Off by default; the counter-event stream,
	// reports, and fast-path behaviour are byte-identical either way.
	Provenance bool
	// SingleStep drives the machine with the instruction-granular
	// reference stepper instead of the batched fast path. The produced
	// experiment is identical either way (the differential golden test
	// asserts this); the option exists for that test and for debugging.
	SingleStep bool
	// Backend selects the batched execution engine: "" or "translated"
	// (the default) runs hot superblocks as threaded code, "fast"
	// forces the event-horizon interpreter alone. Ignored under
	// SingleStep. The produced experiment is byte-identical across
	// backends; the knob exists for benchmarking and for bisecting a
	// suspected backend divergence in the field.
	Backend string
	// FS is the filesystem spooled writes go through; nil means the real
	// filesystem. The fault-injection tests and the crash-point soak
	// harness plug in faultfs.Injected / faultfs.Recorder here.
	FS faultfs.FS
	// SpoolShardEvents overrides the spool's shard size (0 = the format
	// default). Small shards make short test runs cross many shard
	// boundaries, which is what the crash-recovery soak wants.
	SpoolShardEvents int
	// CPUProfile, when non-empty, writes a pprof CPU profile of the
	// profiled run — machine execution plus event delivery, excluding
	// setup and experiment Save — to this host file. MemProfile writes a
	// heap profile when the run ends. Both profile the collector itself
	// (the host Go process), not the simulated target; they exist for
	// performance work on the execution backends. CPU profiling is
	// process-global, so concurrent collects cannot both request it.
	CPUProfile string
	MemProfile string
}

// Truth is the per-event ground truth the simulator knows but a real
// machine would not. It is returned to the caller for test validation and
// never written into the experiment.
type Truth struct {
	PIC    int
	TruePC uint64
	TrueEA uint64
	HasEA  bool
}

// Result is the outcome of a profiled run.
type Result struct {
	Exp     *experiment.Experiment
	Machine *machine.Machine
	// Truth holds ground truth for HWC events, parallel to
	// Exp.HWC[pic] (Truth[pic][i] matches Exp.HWC[pic][i]).
	Truth [2][]Truth
}

// DefaultClockIntervalCycles is ~10 ms at the configured clock, as a
// prime count of cycles (the paper chooses prime intervals to avoid
// correlated samples).
func DefaultClockIntervalCycles(clockHz uint64) uint64 {
	c := clockHz / 100
	if c%2 == 0 {
		c++
	}
	return c
}

// ParseCounterSpec parses a collect -h style counter list:
// "+ecstall,lo,+ecrm,on" — pairs of (counter, interval) where a leading
// "+" requests apropos backtracking.
func ParseCounterSpec(spec string) ([]experiment.CounterSpec, error) {
	if spec == "" {
		return nil, nil
	}
	parts := strings.Split(spec, ",")
	if len(parts)%2 != 0 {
		return nil, fmt.Errorf("collect: counter spec %q must be name,interval pairs", spec)
	}
	var out []experiment.CounterSpec
	for i := 0; i < len(parts); i += 2 {
		name := parts[i]
		bt := strings.HasPrefix(name, "+")
		name = strings.TrimPrefix(name, "+")
		ev, err := hwc.ParseEvent(name)
		if err != nil {
			return nil, err
		}
		ivName := parts[i+1]
		// Accept the paper's abbreviations.
		switch ivName {
		case "lo":
			ivName = "low"
		case "hi":
			ivName = "high"
		}
		iv, err := hwc.ParseInterval(ivName, ev)
		if err != nil {
			return nil, err
		}
		out = append(out, experiment.CounterSpec{Event: ev, Interval: iv, Backtrack: bt})
	}
	if len(out) > 2 {
		return nil, fmt.Errorf("collect: at most two counters (two counter registers), got %d", len(out))
	}
	return out, nil
}

// copyStack snapshots a machine-owned scratch callstack for retention in
// the experiment. A nil stack stays nil (empty and absent callstacks
// encode identically).
func copyStack(cs []uint64) []uint64 {
	if cs == nil {
		return nil
	}
	out := make([]uint64, len(cs))
	copy(out, cs)
	return out
}

// Run executes prog under profiling and returns the experiment.
func Run(prog *asm.Program, opts Options) (*Result, error) {
	return RunContext(context.Background(), prog, opts)
}

// writeMemProfile snapshots the host heap into a pprof profile after a
// garbage collection, so the profile shows live retention (the spool
// buffers, translation cache, experiment event slices) rather than
// collectable garbage.
func writeMemProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("collect: mem profile: %w", err)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("collect: mem profile: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("collect: mem profile: %w", err)
	}
	return nil
}

// cancelCheckStride is how many instructions execute between context
// cancellation checks in RunContext: coarse enough that the check is
// free relative to simulation, fine enough that cancellation lands
// within a millisecond of wall-clock time.
const cancelCheckStride = 1 << 15

// runMachine drives m to completion, honouring ctx cancellation. With a
// non-cancellable context it defers to the machine's own run loop;
// otherwise it runs fast-path batches of cancelCheckStride instructions
// between cancellation checks, so a cancellable run keeps fast-path
// throughput.
func runMachine(ctx context.Context, m *machine.Machine, singleStep bool) error {
	if singleStep {
		for !m.Halted() {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("collect: run aborted: %w", err)
			}
			for i := 0; i < cancelCheckStride && !m.Halted(); i++ {
				if err := m.Step(); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if ctx.Done() == nil {
		return m.Run()
	}
	for !m.Halted() {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("collect: run aborted: %w", err)
		}
		if err := m.RunFor(cancelCheckStride); err != nil {
			return err
		}
	}
	return nil
}

// RunContext is Run with job-level cancellation: the profiled run stops
// (with the context's error) as soon as ctx is cancelled or times out.
// The returned Result still carries the partial experiment so callers
// can inspect it, but nothing is written to disk here.
func RunContext(ctx context.Context, prog *asm.Program, opts Options) (*Result, error) {
	cfg := machine.DefaultConfig()
	if opts.Machine != nil {
		cfg = *opts.Machine
	}
	if prog.HeapPageSize != 0 {
		cfg.HeapPageSize = prog.HeapPageSize
	}
	m, err := machine.New(cfg)
	if err != nil {
		return nil, err
	}
	if err := m.LoadProgram(prog.Text, prog.Data, prog.Entry); err != nil {
		return nil, err
	}
	backend, err := machine.ParseBackend(opts.Backend)
	if err != nil {
		return nil, err
	}
	m.SetBackend(backend)
	m.SetInput(opts.Input)

	maxBT := opts.MaxBacktrack
	if maxBT == 0 {
		maxBT = 8
	}

	exp := &experiment.Experiment{Prog: prog}
	res := &Result{Exp: exp, Machine: m}
	exp.Meta.Counters = make([]experiment.CounterSpec, 2)

	var cmd strings.Builder
	cmd.WriteString("collect")

	if opts.ClockProfile {
		tick := opts.ClockIntervalCycles
		if tick == 0 {
			tick = DefaultClockIntervalCycles(cfg.ClockHz)
		}
		m.ClockTickCycles = tick
		exp.Meta.ClockProfiling = true
		exp.Meta.ClockTickCycles = tick
		m.OnClockTick = func(ct *machine.ClockTick) {
			// ct.Callstack is scratch, valid only during the callback.
			exp.Clock = append(exp.Clock, experiment.ClockEvent{
				PC: ct.PC, Callstack: copyStack(ct.Callstack), Cycles: ct.Cycles,
			})
		}
		cmd.WriteString(" -p on")
	} else {
		cmd.WriteString(" -p off")
	}

	if len(opts.Counters) > 2 {
		return nil, fmt.Errorf("collect: at most two counters")
	}
	backtrack := [2]bool{}
	for pic, cs := range opts.Counters {
		if cs.Event == hwc.EvNone {
			continue
		}
		if err := m.ArmCounter(pic, cs.Event, cs.Interval); err != nil {
			return nil, err
		}
		exp.Meta.Counters[pic] = cs
		backtrack[pic] = cs.Backtrack && cs.Event.MemoryRelated()
		if pic == 0 {
			cmd.WriteString(" -h ")
		} else {
			cmd.WriteString(",")
		}
		cmd.WriteString(cs.String())
	}
	cmd.WriteString(" " + prog.Name)

	exp.Meta.ProgName = prog.Name
	exp.Meta.Command = cmd.String()
	exp.Meta.When = time.Now()
	exp.Meta.ClockHz = cfg.ClockHz
	exp.Meta.HeapPageSize = cfg.HeapPageSize
	exp.Meta.DCacheLine = cfg.DCache.LineBytes
	exp.Meta.ECacheLine = cfg.ECache.LineBytes
	exp.Meta.Label = opts.Label

	// With a spool directory, counter events stream to v2 shard files
	// as they are delivered instead of accumulating in exp.HWC. The
	// provisional header (meta marked "in progress" + program object)
	// goes in first: from that moment a crash anywhere mid-run leaves a
	// directory experiment.Recover can turn back into an analyzable
	// experiment.
	fsys := faultfs.Or(opts.FS)
	var spool [2]*experiment.ShardWriter
	var provSpool *experiment.ProvWriter
	var spoolErr error
	if opts.SpoolDir != "" {
		if err := exp.WriteProvisional(fsys, opts.SpoolDir); err != nil {
			return nil, fmt.Errorf("collect: spool dir: %w", err)
		}
		for pic, cs := range opts.Counters {
			if cs.Event == hwc.EvNone {
				continue
			}
			w, err := experiment.NewShardWriterFS(fsys,
				filepath.Join(opts.SpoolDir, experiment.ShardFileName(pic)), pic)
			if err != nil {
				return nil, err
			}
			w.SetShardEvents(opts.SpoolShardEvents)
			spool[pic] = w
		}
		if opts.Provenance {
			w, err := experiment.NewProvWriterFS(fsys,
				filepath.Join(opts.SpoolDir, experiment.ProvFileName))
			if err != nil {
				return nil, err
			}
			w.SetShardEvents(opts.SpoolShardEvents)
			provSpool = w
		}
	}

	if opts.Provenance {
		m.OnProv = func(rec machine.ProvRecord) {
			if provSpool != nil {
				if err := provSpool.Append(rec); err != nil && spoolErr == nil {
					spoolErr = err
				}
				return
			}
			exp.Prov = append(exp.Prov, rec)
		}
	}

	m.OnOverflow = func(e *machine.OverflowEvent) {
		rec := experiment.HWCEvent{
			PIC:         e.PIC,
			DeliveredPC: e.DeliveredPC,
			Callstack:   copyStack(e.Callstack),
			Cycles:      e.Cycles,
		}
		if backtrack[e.PIC] {
			if cand, ok := Backtrack(prog, e.DeliveredPC, e.Event, maxBT); ok {
				rec.CandidatePC = cand
				if ea, ok := RecoverEA(prog, cand, e.DeliveredPC, &e.Regs); ok {
					rec.EA = ea
					rec.HasEA = true
				}
			}
		}
		if w := spool[e.PIC]; w != nil {
			if err := w.Append(rec); err != nil && spoolErr == nil {
				spoolErr = err
			}
		} else {
			exp.HWC[e.PIC] = append(exp.HWC[e.PIC], rec)
		}
		res.Truth[e.PIC] = append(res.Truth[e.PIC], Truth{
			PIC: e.PIC, TruePC: e.TruePC, TrueEA: e.TrueEA, HasEA: e.TrueHasEA,
		})
	}

	var cpuProf *os.File
	if opts.CPUProfile != "" {
		cpuProf, err = os.Create(opts.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("collect: cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuProf); err != nil {
			cpuProf.Close()
			return nil, fmt.Errorf("collect: cpu profile: %w", err)
		}
	}
	runErr := runMachine(ctx, m, opts.SingleStep)
	if cpuProf != nil {
		pprof.StopCPUProfile()
		if err := cpuProf.Close(); err != nil && runErr == nil {
			runErr = fmt.Errorf("collect: cpu profile: %w", err)
		}
	}
	if opts.MemProfile != "" {
		if err := writeMemProfile(opts.MemProfile); err != nil && runErr == nil {
			runErr = err
		}
	}
	// Records for blocks still live at halt (or at the cancellation cut)
	// drain into the provenance sink before the writers close.
	m.DrainProv()
	exp.Meta.Stats = m.Stats()
	exp.Allocs = m.Allocs()
	exp.Meta.Output = m.OutputLongs()

	// Close the spool writers on every exit path — including
	// cancellation — so the partial tail shard reaches disk and the
	// experiment keeps every event delivered before the cut.
	for pic, w := range spool {
		if w == nil {
			continue
		}
		path := filepath.Join(opts.SpoolDir, experiment.ShardFileName(pic))
		if err := w.Close(); err != nil && spoolErr == nil {
			spoolErr = err
		}
		if w.Count() == 0 {
			fsys.Remove(path)
			continue
		}
		exp.AdoptShards(pic, path, w.Shards())
	}
	if provSpool != nil {
		path := filepath.Join(opts.SpoolDir, experiment.ProvFileName)
		if err := provSpool.Close(); err != nil && spoolErr == nil {
			spoolErr = err
		}
		if provSpool.Count() == 0 {
			fsys.Remove(path)
		} else {
			exp.AdoptProvShards(path, provSpool.Shards())
		}
	}
	if spoolErr != nil && runErr == nil {
		runErr = fmt.Errorf("collect: spooling events: %w", spoolErr)
	}

	if runErr != nil {
		exp.Meta.ExitStatus = runErr.Error()
		return res, runErr
	}
	exp.Meta.ExitStatus = "ok"
	return res, nil
}

// Backtrack performs the apropos backtracking search: starting from the
// instruction preceding the delivered PC, walk backwards in address order
// until a memory-reference instruction of the class that can raise ev is
// found. The result is the *candidate* trigger PC; it is validated against
// branch-target information during analysis, not here (the paper: "It is
// too expensive to locate branch targets at data collection time").
func Backtrack(prog *asm.Program, deliveredPC uint64, ev hwc.Event, maxInstrs int) (uint64, bool) {
	loadsOnly := ev.LoadsOnly()
	pc := deliveredPC
	for i := 0; i < maxInstrs; i++ {
		pc -= isa.InstrBytes
		in := prog.InstrAt(pc)
		if in == nil {
			return 0, false
		}
		if in.Op.IsMem() {
			if loadsOnly && !in.Op.IsLoad() {
				continue
			}
			return pc, true
		}
	}
	return 0, false
}

// RecoverEA attempts to compute the candidate trigger instruction's
// effective address from the register contents at delivery time. The
// address registers must not have been written by any instruction between
// the candidate and the delivered PC (in address order — the collector
// cannot know the executed path); otherwise the address is unknown.
func RecoverEA(prog *asm.Program, candidatePC, deliveredPC uint64, regs *[isa.NumRegs]int64) (uint64, bool) {
	in := prog.InstrAt(candidatePC)
	if in == nil {
		return 0, false
	}
	base, idx, hasIdx, ok := in.AddrRegs()
	if !ok {
		return 0, false
	}
	for pc := candidatePC; pc < deliveredPC; pc += isa.InstrBytes {
		mid := prog.InstrAt(pc)
		if mid == nil {
			return 0, false
		}
		// The candidate itself may overwrite its own base register
		// (load into the address register, e.g. pointer chasing); in
		// that case the base value at delivery is already the loaded
		// value, not the address.
		if w, writes := mid.Writes(); writes && (w == base || (hasIdx && w == idx)) {
			return 0, false
		}
	}
	ea := uint64(regs[base])
	if hasIdx {
		ea += uint64(regs[idx])
	} else {
		ea += uint64(int64(in.Imm))
	}
	return ea, true
}
