package machine

import (
	"testing"

	"dsprof/internal/asm"
	"dsprof/internal/hwc"
	"dsprof/internal/isa"
)

func TestICacheTightLoopMostlyHits(t *testing.T) {
	// A tight loop fits one or two I$ lines: after warmup there are no
	// more I$ misses regardless of iteration count.
	m := build(t, DefaultConfig(), func(b *asm.Builder) {
		b.Emit(movImm(isa.O1, 100000))
		b.Label("loop")
		b.Emit(isa.Instr{Op: isa.Sub, Rd: isa.O1, Rs1: isa.O1, UseImm: true, Imm: 1})
		b.Emit(isa.Instr{Op: isa.Cmp, Rs1: isa.O1, UseImm: true, Imm: 0})
		b.EmitBranch(isa.Bg, "loop")
		b.Emit(isa.Instr{Op: isa.Nop})
		b.Emit(isa.Instr{Op: isa.Halt})
	})
	run(t, m)
	if m.Stats().ICMisses > 3 {
		t.Errorf("tight loop took %d I$ misses, want <= 3 (compulsory)", m.Stats().ICMisses)
	}
}

func TestICacheCountsCompulsoryMisses(t *testing.T) {
	// Straight-line code across many lines: one compulsory miss per
	// 32-byte line (8 instructions).
	const n = 256
	m := build(t, DefaultConfig(), func(b *asm.Builder) {
		for i := 0; i < n; i++ {
			b.Emit(isa.Instr{Op: isa.Add, Rd: isa.O0, Rs1: isa.O0, UseImm: true, Imm: 1})
		}
		b.Emit(isa.Instr{Op: isa.Halt})
	})
	run(t, m)
	want := uint64((n + 1 + 7) / 8)
	got := m.Stats().ICMisses
	if got < want-1 || got > want+1 {
		t.Errorf("ICMisses = %d, want ~%d", got, want)
	}
}

func TestICacheMissCounterEvent(t *testing.T) {
	var events int
	m := build(t, DefaultConfig(), func(b *asm.Builder) {
		for i := 0; i < 256; i++ {
			b.Emit(isa.Instr{Op: isa.Nop})
		}
		b.Emit(isa.Instr{Op: isa.Halt})
	})
	if err := m.ArmCounter(0, hwc.EvICMiss, 8); err != nil {
		t.Fatal(err)
	}
	m.OnOverflow = func(e *OverflowEvent) {
		if e.Event == hwc.EvICMiss {
			events++
		}
	}
	run(t, m)
	if events == 0 {
		t.Error("icm counter never overflowed")
	}
}

func TestICacheMissesCostCycles(t *testing.T) {
	prog := func(b *asm.Builder) {
		for i := 0; i < 512; i++ {
			b.Emit(isa.Instr{Op: isa.Nop})
		}
		b.Emit(isa.Instr{Op: isa.Halt})
	}
	cfg := DefaultConfig()
	m1 := build(t, cfg, prog)
	run(t, m1)
	cfg.ICMissStall = 100
	m2 := build(t, cfg, prog)
	run(t, m2)
	if m2.Stats().Cycles <= m1.Stats().Cycles {
		t.Errorf("higher I$ miss cost did not increase cycles: %d vs %d",
			m2.Stats().Cycles, m1.Stats().Cycles)
	}
}
