package machine

import (
	"reflect"
	"testing"

	"dsprof/internal/asm"
	"dsprof/internal/hwc"
	"dsprof/internal/isa"
)

// TestClockTickCoalescing is the regression test for the tick-coalescing
// bug: a single long-running instruction (here a large calloc) that spans
// many tick periods must deliver one OnClockTick callback per elapsed
// period, not a single coalesced one.
func TestClockTickCoalescing(t *testing.T) {
	m := build(t, DefaultConfig(), func(b *asm.Builder) {
		b.Emit(movImm(isa.O0, 1<<16)) // elements
		b.Emit(movImm(isa.O1, 1))     // bytes each
		b.Emit(isa.Instr{Op: isa.Syscall, UseImm: true, Imm: SysCalloc})
		b.Emit(isa.Instr{Op: isa.Halt})
	})
	m.ClockTickCycles = 64 // far below the calloc's ~4096-cycle stall
	var ticks uint64
	m.OnClockTick = func(*ClockTick) { ticks++ }
	// Drive with Step so the delivery path under test is the reference
	// stepper itself.
	for !m.Halted() {
		if err := m.Step(); err != nil {
			t.Fatalf("Step: %v", err)
		}
	}
	st := m.Stats()
	if ticks != st.ClockTicks {
		t.Errorf("OnClockTick fired %d times, stats.ClockTicks = %d", ticks, st.ClockTicks)
	}
	if st.ClockTicks < 10 {
		t.Errorf("expected the calloc stall to span many tick periods, got %d ticks", st.ClockTicks)
	}
}

// eventRec snapshots everything observable about one delivered overflow.
type eventRec struct {
	PIC         int
	Event       hwc.Event
	DeliveredPC uint64
	Regs        [isa.NumRegs]int64
	Callstack   []uint64
	Cycles      uint64
	TruePC      uint64
	TrueEA      uint64
	TrueHasEA   bool
}

type tickRec struct {
	PC        uint64
	Callstack []uint64
	Cycles    uint64
}

type runLog struct {
	events []eventRec
	ticks  []tickRec
	stats  Stats
	regs   [isa.NumRegs]int64
	pc     uint64
	totals [2]uint64
	err    string
}

// driveMachine builds, arms, and drives one machine, logging every
// observable output.
func driveMachine(t *testing.T, cfg Config, prog func(b *asm.Builder), arm func(m *Machine), drive func(m *Machine) error) runLog {
	t.Helper()
	m := build(t, cfg, prog)
	if arm != nil {
		arm(m)
	}
	var lg runLog
	m.OnOverflow = func(e *OverflowEvent) {
		lg.events = append(lg.events, eventRec{
			PIC: e.PIC, Event: e.Event, DeliveredPC: e.DeliveredPC,
			Regs: e.Regs, Callstack: append([]uint64(nil), e.Callstack...),
			Cycles: e.Cycles, TruePC: e.TruePC, TrueEA: e.TrueEA, TrueHasEA: e.TrueHasEA,
		})
	}
	m.OnClockTick = func(ct *ClockTick) {
		lg.ticks = append(lg.ticks, tickRec{
			PC: ct.PC, Callstack: append([]uint64(nil), ct.Callstack...), Cycles: ct.Cycles,
		})
	}
	if err := drive(m); err != nil {
		lg.err = err.Error()
	}
	lg.stats = m.Stats()
	lg.regs = m.Regs
	lg.pc = m.PC
	lg.totals = [2]uint64{m.CounterTotal(0), m.CounterTotal(1)}
	return lg
}

// withBackend wraps an arming function so the same driveMachine workload
// runs on an explicitly chosen backend. heat > 0 also lowers the
// translation threshold so short test workloads actually reach the
// translated blocks rather than staying on the interpreter warm-up path.
func withBackend(b Backend, heat uint32, arm func(m *Machine)) func(m *Machine) {
	return func(m *Machine) {
		m.SetBackend(b)
		if heat > 0 {
			m.SetTranslationHeat(heat)
		}
		if arm != nil {
			arm(m)
		}
	}
}

func stepLoop(m *Machine) error {
	for !m.Halted() {
		if err := m.Step(); err != nil {
			return err
		}
	}
	return nil
}

func runForLoop(m *Machine) error {
	for !m.Halted() {
		if err := m.RunFor(7); err != nil {
			return err
		}
	}
	return nil
}

// equivProg is a workload that exercises every observable path: memory
// traffic over a range bigger than the D$ (misses, TLB misses, E$
// events), calls and returns (callstack depth changes), branches,
// syscalls of varying cost, and a store loop.
func equivProg(b *asm.Builder) {
	// %o0 = malloc(1<<17)
	b.Emit(isa.Instr{Op: isa.SetHi, Rd: isa.O0, UseImm: true, Imm: (1 << 17) >> isa.SetHiShift})
	b.Emit(isa.Instr{Op: isa.Syscall, UseImm: true, Imm: SysMalloc})
	b.Emit(isa.Instr{Op: isa.Or, Rd: isa.L0, Rs1: isa.O0, Rs2: isa.G0}) // base
	b.Emit(movImm(isa.L1, 0))                                           // i
	b.Emit(isa.Instr{Op: isa.SetHi, Rd: isa.L2, UseImm: true, Imm: (1 << 17) >> isa.SetHiShift})

	b.Label("loop")
	b.Emit(isa.Instr{Op: isa.Add, Rd: isa.O0, Rs1: isa.L0, Rs2: isa.L1})
	b.EmitCall("touch")
	b.Emit(isa.Instr{Op: isa.Nop}) // delay slot
	b.Emit(isa.Instr{Op: isa.Add, Rd: isa.L1, Rs1: isa.L1, UseImm: true, Imm: 72})
	b.Emit(isa.Instr{Op: isa.Cmp, Rs1: isa.L1, Rs2: isa.L2})
	b.EmitBranch(isa.Bl, "loop")
	b.Emit(isa.Instr{Op: isa.Nop}) // delay slot
	b.Emit(isa.Instr{Op: isa.Syscall, UseImm: true, Imm: SysCycles})
	b.Emit(isa.Instr{Op: isa.Syscall, UseImm: true, Imm: SysWriteLong})
	b.Emit(isa.Instr{Op: isa.Halt})

	// touch(%o0): store then load back, word-sized.
	b.Label("touch")
	b.Emit(isa.Instr{Op: isa.StW, Rd: isa.O1, Rs1: isa.O0, UseImm: true, Imm: 0})
	b.Emit(isa.Instr{Op: isa.LdW, Rd: isa.O2, Rs1: isa.O0, UseImm: true, Imm: 0})
	b.Emit(isa.Instr{Op: isa.Jmpl, Rd: isa.G0, Rs1: isa.O7, UseImm: true, Imm: 8}) // retl
	b.Emit(isa.Instr{Op: isa.Nop})                                                 // delay slot
}

// TestFastPathEquivalence runs the same armed workloads on the fast path
// (Run, and RunFor in slices) and the reference stepper, and requires
// every observable output — delivered events with their skid draws,
// ticks, stats, registers, counter totals — to be identical.
func TestFastPathEquivalence(t *testing.T) {
	type armFn func(m *Machine)
	cases := []struct {
		name string
		cfg  func() Config
		arm  armFn
	}{
		{"unarmed", DefaultConfig, nil},
		{"instrs", DefaultConfig, func(m *Machine) {
			mustArm(t, m, 0, hwc.EvInstrs, 997)
		}},
		{"cycles", DefaultConfig, func(m *Machine) {
			mustArm(t, m, 0, hwc.EvCycles, 4999)
		}},
		{"cycles+instrs", DefaultConfig, func(m *Machine) {
			mustArm(t, m, 0, hwc.EvCycles, 9001)
			mustArm(t, m, 1, hwc.EvInstrs, 1009)
		}},
		{"mem", DefaultConfig, func(m *Machine) {
			mustArm(t, m, 0, hwc.EvECRef, 211)
			mustArm(t, m, 1, hwc.EvDTLBMiss, 13)
		}},
		{"ecstall+dcrm", DefaultConfig, func(m *Machine) {
			mustArm(t, m, 0, hwc.EvECStall, 503)
			mustArm(t, m, 1, hwc.EvDCRdMiss, 101)
		}},
		// Tiny intervals keep Remaining() within a block's worst-case
		// event bound, forcing the translated engine's block-entry budget
		// refusals (and the re-armed batches behind them) near-constantly.
		{"mem-tight", DefaultConfig, func(m *Machine) {
			mustArm(t, m, 0, hwc.EvDCRdMiss, 3)
			mustArm(t, m, 1, hwc.EvECRdMiss, 5)
		}},
		{"icm+dtlb-tight", DefaultConfig, func(m *Machine) {
			mustArm(t, m, 0, hwc.EvICMiss, 2)
			mustArm(t, m, 1, hwc.EvDTLBMiss, 3)
		}},
		{"clock", func() Config {
			return DefaultConfig()
		}, func(m *Machine) {
			m.ClockTickCycles = 1013
			mustArm(t, m, 0, hwc.EvCycles, 7001)
		}},
		{"budget", func() Config {
			cfg := DefaultConfig()
			cfg.MaxInstrs = 5000
			return cfg
		}, func(m *Machine) {
			mustArm(t, m, 0, hwc.EvInstrs, 997)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref := driveMachine(t, tc.cfg(), equivProg, tc.arm, stepLoop)
			fast := driveMachine(t, tc.cfg(), equivProg, withBackend(BackendFast, 0, tc.arm), (*Machine).Run)
			sliced := driveMachine(t, tc.cfg(), equivProg, withBackend(BackendFast, 0, tc.arm), runForLoop)
			trans := driveMachine(t, tc.cfg(), equivProg, withBackend(BackendTranslated, 1, tc.arm), (*Machine).Run)
			transSliced := driveMachine(t, tc.cfg(), equivProg, withBackend(BackendTranslated, 1, tc.arm), runForLoop)
			if ref.stats.Instrs < 10000 && tc.name != "budget" {
				t.Fatalf("workload too small to be meaningful: %d instrs", ref.stats.Instrs)
			}
			if len(ref.events)+len(ref.ticks) == 0 && tc.arm != nil {
				t.Fatalf("workload produced no events")
			}
			if !reflect.DeepEqual(ref, fast) {
				diffLogs(t, "Run/fast", ref, fast)
			}
			if !reflect.DeepEqual(ref, sliced) {
				diffLogs(t, "RunFor/fast", ref, sliced)
			}
			if !reflect.DeepEqual(ref, trans) {
				diffLogs(t, "Run/translated", ref, trans)
			}
			if !reflect.DeepEqual(ref, transSliced) {
				diffLogs(t, "RunFor/translated", ref, transSliced)
			}
		})
	}
}

func mustArm(t *testing.T, m *Machine, pic int, ev hwc.Event, interval uint64) {
	t.Helper()
	if err := m.ArmCounter(pic, ev, interval); err != nil {
		t.Fatal(err)
	}
}

func diffLogs(t *testing.T, path string, ref, got runLog) {
	t.Helper()
	t.Errorf("%s diverges from Step reference", path)
	if ref.stats != got.stats {
		t.Errorf("  stats: ref %+v, got %+v", ref.stats, got.stats)
	}
	if ref.totals != got.totals {
		t.Errorf("  counter totals: ref %v, got %v", ref.totals, got.totals)
	}
	if ref.err != got.err {
		t.Errorf("  err: ref %q, got %q", ref.err, got.err)
	}
	if len(ref.events) != len(got.events) {
		t.Errorf("  events: ref %d, got %d", len(ref.events), len(got.events))
	} else {
		for i := range ref.events {
			if !reflect.DeepEqual(ref.events[i], got.events[i]) {
				t.Errorf("  event %d: ref %+v, got %+v", i, ref.events[i], got.events[i])
				break
			}
		}
	}
	if len(ref.ticks) != len(got.ticks) {
		t.Errorf("  ticks: ref %d, got %d", len(ref.ticks), len(got.ticks))
	} else {
		for i := range ref.ticks {
			if !reflect.DeepEqual(ref.ticks[i], got.ticks[i]) {
				t.Errorf("  tick %d: ref %+v, got %+v", i, ref.ticks[i], got.ticks[i])
				break
			}
		}
	}
}

// TestFastPathTrapEquivalence checks that traps raised mid-run surface
// identically on both paths, with identical partial state.
func TestFastPathTrapEquivalence(t *testing.T) {
	divProg := func(b *asm.Builder) {
		b.Emit(movImm(isa.O0, 100))
		b.Emit(movImm(isa.O1, 5))
		b.Label("loop")
		b.Emit(isa.Instr{Op: isa.Sub, Rd: isa.O1, Rs1: isa.O1, UseImm: true, Imm: 1})
		b.Emit(isa.Instr{Op: isa.Div, Rd: isa.O2, Rs1: isa.O0, Rs2: isa.O1}) // traps when o1 hits 0
		b.EmitBranch(isa.Ba, "loop")
		b.Emit(isa.Instr{Op: isa.Nop})
		b.Emit(isa.Instr{Op: isa.Halt})
	}
	arm := func(m *Machine) { mustArm(t, m, 0, hwc.EvInstrs, 3) }
	ref := driveMachine(t, DefaultConfig(), divProg, arm, stepLoop)
	fast := driveMachine(t, DefaultConfig(), divProg, withBackend(BackendFast, 0, arm), (*Machine).Run)
	trans := driveMachine(t, DefaultConfig(), divProg, withBackend(BackendTranslated, 1, arm), (*Machine).Run)
	if ref.err == "" {
		t.Fatal("expected a div-zero trap")
	}
	if !reflect.DeepEqual(ref, fast) {
		diffLogs(t, "Run/fast", ref, fast)
	}
	if !reflect.DeepEqual(ref, trans) {
		diffLogs(t, "Run/translated", ref, trans)
	}
}
