package machine

import (
	"fmt"
	"reflect"
	"testing"

	"dsprof/internal/asm"
	"dsprof/internal/hwc"
	"dsprof/internal/isa"
)

// fuzzRegs is the register pool fuzzed programs read and write. %g0 is
// excluded (hardwired zero makes writes no-ops, which is legal but
// wastes coverage); %sp, %fp and %o7 are excluded so the generator does
// not have to reason about the callstack model — Call/Jmpl still
// exercise it through the fixed subroutine below.
var fuzzRegs = []isa.Reg{
	isa.G1, isa.G2, isa.G3, isa.G4,
	isa.O0, isa.O1, isa.O2, isa.O3,
	isa.L0, isa.L1, isa.L2, isa.L3, isa.L4, isa.L5,
	isa.I0, isa.I1,
}

// fuzzEvents are the arming choices; EvNone slots leave the PIC unarmed.
var fuzzEvents = []hwc.Event{
	hwc.EvNone, hwc.EvCycles, hwc.EvInstrs, hwc.EvDCRdMiss,
	hwc.EvECRef, hwc.EvECRdMiss, hwc.EvECStall, hwc.EvDTLBMiss, hwc.EvICMiss,
}

// genFuzzProgram compiles fuzz bytes into a terminating-or-budgeted
// program. Every byte string assembles: opcodes, registers and branch
// targets are all reduced modulo their legal ranges. The layout is a
// preamble that mallocs a scratch region into %l0, a body of one
// instruction per remaining input byte pair (each with its own label so
// branches can target any body slot, forward or backward), and a halt
// epilogue plus a small subroutine so Call/Jmpl have somewhere real to
// go. Runaway loops are cut by the machine's instruction budget, which
// both backends must honor identically.
func genFuzzProgram(data []byte) func(b *asm.Builder) {
	return func(b *asm.Builder) {
		// Preamble: %l0 = malloc(1<<16), %l1 = small counter.
		b.Emit(isa.Instr{Op: isa.SetHi, Rd: isa.O0, UseImm: true, Imm: (1 << 16) >> isa.SetHiShift})
		b.Emit(isa.Instr{Op: isa.Syscall, UseImm: true, Imm: SysMalloc})
		b.Emit(isa.Instr{Op: isa.Or, Rd: isa.L0, Rs1: isa.O0, Rs2: isa.G0})
		b.Emit(isa.Instr{Op: isa.Or, Rd: isa.L1, Rs1: isa.G0, UseImm: true, Imm: 64})

		nbody := len(data) / 2
		reg := func(x byte) isa.Reg { return fuzzRegs[int(x)%len(fuzzRegs)] }
		for i := 0; i < nbody; i++ {
			op, sel := data[2*i], data[2*i+1]
			b.Label(fmt.Sprintf("i%d", i))
			rd, rs := reg(sel), reg(sel>>4|sel<<4)
			switch op % 20 {
			case 0:
				b.Emit(isa.Instr{Op: isa.Add, Rd: rd, Rs1: rd, Rs2: rs})
			case 1:
				b.Emit(isa.Instr{Op: isa.Sub, Rd: rd, Rs1: rs, UseImm: true, Imm: int32(sel)})
			case 2:
				b.Emit(isa.Instr{Op: isa.Mul, Rd: rd, Rs1: rd, Rs2: rs})
			case 3:
				// Div/Rem trap on zero divisors — a legitimate differential
				// case; both backends must surface the same trap state.
				b.Emit(isa.Instr{Op: isa.Div, Rd: rd, Rs1: rs, UseImm: true, Imm: int32(sel%7) + 1})
			case 4:
				b.Emit(isa.Instr{Op: isa.Rem, Rd: rd, Rs1: rd, Rs2: rs})
			case 5:
				b.Emit(isa.Instr{Op: isa.Xor, Rd: rd, Rs1: rd, Rs2: rs})
			case 6:
				b.Emit(isa.Instr{Op: isa.Sll, Rd: rd, Rs1: rs, UseImm: true, Imm: int32(sel % 64)})
			case 7:
				b.Emit(isa.Instr{Op: isa.Sra, Rd: rd, Rs1: rs, UseImm: true, Imm: int32(sel % 64)})
			case 8:
				b.Emit(isa.Instr{Op: isa.SetHi, Rd: rd, UseImm: true, Imm: int32(sel)})
			case 9, 10:
				// Loads from the scratch region. Offsets are mostly aligned;
				// every 16th selector deliberately misaligns to exercise the
				// alignment-trap path on all backends.
				off := int32(sel) * 8
				if sel%16 == 0 {
					off++
				}
				lop := []isa.Op{isa.LdX, isa.LdW, isa.LdUB}[sel%3]
				b.Emit(isa.Instr{Op: lop, Rd: rd, Rs1: isa.L0, UseImm: true, Imm: off})
			case 11, 12:
				off := int32(sel) * 8
				sop := []isa.Op{isa.StX, isa.StW, isa.StB}[sel%3]
				b.Emit(isa.Instr{Op: sop, Rd: rs, Rs1: isa.L0, UseImm: true, Imm: off})
			case 13:
				b.Emit(isa.Instr{Op: isa.Prefetch, Rs1: isa.L0, UseImm: true, Imm: int32(sel) * 32})
			case 14:
				b.Emit(isa.Instr{Op: isa.Cmp, Rs1: rd, Rs2: rs})
			case 15:
				b.Emit(isa.Instr{Op: isa.Cmp, Rs1: rd, UseImm: true, Imm: int32(sel)})
			case 16:
				// Conditional branch to an arbitrary body slot (forward or
				// backward). The instruction budget bounds runaway loops.
				bops := []isa.Op{isa.Be, isa.Bne, isa.Bl, isa.Bge, isa.Bgu, isa.Bleu}
				b.EmitBranch(bops[int(op/20)%len(bops)], fmt.Sprintf("i%d", int(sel)%nbody))
				b.Emit(isa.Instr{Op: isa.Add, Rd: rd, Rs1: rd, UseImm: true, Imm: 1}) // delay slot
			case 17:
				b.EmitCall("sub")
				b.Emit(isa.Instr{Op: isa.Nop}) // delay slot
			case 18:
				b.Emit(isa.Instr{Op: isa.Syscall, UseImm: true, Imm: SysCycles})
			default:
				b.Emit(isa.Instr{Op: isa.Nop})
			}
		}
		b.Emit(isa.Instr{Op: isa.Syscall, UseImm: true, Imm: SysWriteLong})
		b.Emit(isa.Instr{Op: isa.Halt})

		// Subroutine: touch the scratch region, then return.
		b.Label("sub")
		b.Emit(isa.Instr{Op: isa.LdX, Rd: isa.G4, Rs1: isa.L0, UseImm: true, Imm: 128})
		b.Emit(isa.Instr{Op: isa.Jmpl, Rd: isa.G0, Rs1: isa.O7, UseImm: true, Imm: 8})
		b.Emit(isa.Instr{Op: isa.StX, Rd: isa.G4, Rs1: isa.L0, UseImm: true, Imm: 136}) // delay slot
	}
}

// genFuzzArm derives an arming configuration from the first bytes of the
// input: zero to two counters with small intervals, and sometimes the
// profiling clock, so the fuzzer crosses event-horizon recomputation,
// overflow delivery, and translated-block budget bailouts.
func genFuzzArm(t *testing.T, data []byte) func(m *Machine) {
	pick := func(i int) byte {
		if i < len(data) {
			return data[i]
		}
		return 0
	}
	ev0 := fuzzEvents[int(pick(0))%len(fuzzEvents)]
	ev1 := fuzzEvents[int(pick(1))%len(fuzzEvents)]
	iv0 := uint64(pick(2))%500 + 3
	iv1 := uint64(pick(3))%500 + 3
	clock := pick(0)%3 == 0
	return func(m *Machine) {
		if ev0 != hwc.EvNone {
			mustArm(t, m, 0, ev0, iv0)
		}
		if ev1 != hwc.EvNone && ev1 != ev0 {
			mustArm(t, m, 1, ev1, iv1)
		}
		if clock {
			m.ClockTickCycles = 2048
		}
	}
}

// FuzzBackendDifferential feeds random small programs under randomized
// arming to the reference stepper, the event-horizon interpreter, and
// the translated backend (threshold forced to 1 so every block
// translates), and requires every observable output — final registers,
// PC, statistics, counter totals, delivered overflow events with their
// skid draws, clock ticks, and trap errors — to be identical across all
// of them, for both Run and sliced RunFor driving.
func FuzzBackendDifferential(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 16, 3, 9, 12, 11, 200, 3, 0, 16, 250})
	f.Add([]byte{40, 7, 36, 129, 9, 16, 14, 66, 16, 1, 17, 5, 18, 0})
	f.Add([]byte{203, 31, 16, 0, 14, 99, 16, 90, 11, 48, 9, 16, 3, 3})
	// Armed-memory corpus: the first four bytes select memory-event PICs
	// (D$/E$/TLB/I$ read misses and stalls) at the smallest intervals, so
	// the translated engine runs against block-entry budget refusals from
	// the first block, over bodies dense with loads, stores, and calls.
	f.Add([]byte{3, 5, 0, 0, 14, 0, 15, 8, 14, 16, 17, 0, 14, 32, 15, 40, 16, 1})
	f.Add([]byte{8, 7, 0, 1, 16, 3, 14, 0, 9, 12, 17, 0, 14, 8, 3, 200, 16, 90})
	f.Add([]byte{4, 6, 1, 0, 14, 0, 14, 64, 15, 128, 14, 8, 16, 250, 11, 48, 15, 0})
	f.Add([]byte{6, 3, 0, 2, 15, 0, 15, 8, 15, 16, 14, 24, 17, 0, 16, 5, 14, 0})
	// Fixed-point corpus: Q16.16-style Mul/Div/Sll/Sra chains, the op mix
	// the cc float lowering emits, under E$-stall + D$-miss arming.
	f.Add([]byte{6, 3, 2, 17, 6, 16, 7, 48, 3, 9, 2, 130, 6, 240, 7, 32, 16, 2})
	f.Add([]byte{8, 7, 8, 200, 2, 40, 7, 16, 6, 16, 3, 50, 11, 8, 9, 8, 2, 3, 7, 63, 16, 250})
	// Mixed-width same-offset stores and loads (the union aliasing shape):
	// StW@128/LdW@129 and StX@0/LdX@1 also cross the misalignment path.
	f.Add([]byte{3, 5, 11, 16, 9, 16, 12, 32, 10, 32, 11, 48, 9, 48, 12, 0, 10, 0, 16, 4})
	seed := make([]byte, 120)
	for i := range seed {
		seed[i] = byte(i*37 + 11)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			t.Skip("program cap")
		}
		prog := genFuzzProgram(data)
		arm := genFuzzArm(t, data)
		cfg := DefaultConfig()
		cfg.MaxInstrs = 30000 // cut runaway branch loops, identically everywhere
		ref := driveMachine(t, cfg, prog, arm, stepLoop)
		fast := driveMachine(t, cfg, prog, withBackend(BackendFast, 0, arm), (*Machine).Run)
		trans := driveMachine(t, cfg, prog, withBackend(BackendTranslated, 1, arm), (*Machine).Run)
		transSliced := driveMachine(t, cfg, prog, withBackend(BackendTranslated, 1, arm), runForLoop)
		if !reflect.DeepEqual(ref, fast) {
			diffLogs(t, "Run/fast", ref, fast)
		}
		if !reflect.DeepEqual(ref, trans) {
			diffLogs(t, "Run/translated", ref, trans)
		}
		if !reflect.DeepEqual(ref, transSliced) {
			diffLogs(t, "RunFor/translated", ref, transSliced)
		}
	})
}
