package machine

import (
	"testing"

	"dsprof/internal/xrand"
)

func TestAllocatorBasic(t *testing.T) {
	a := newAllocator(0x1000, 0x10000)
	p1 := a.alloc(100)
	p2 := a.alloc(100)
	if p1 == 0 || p2 == 0 || p1 == p2 {
		t.Fatalf("allocations: %#x %#x", p1, p2)
	}
	if p1%allocAlign != 0 || p2%allocAlign != 0 {
		t.Error("allocations not aligned")
	}
	if p2 < p1+100 {
		t.Error("allocations overlap")
	}
	if a.sizeOf(p1) < 100 {
		t.Errorf("sizeOf = %d", a.sizeOf(p1))
	}
}

func TestAllocatorZeroSize(t *testing.T) {
	a := newAllocator(0x1000, 0x10000)
	p := a.alloc(0)
	if p == 0 {
		t.Fatal("alloc(0) failed")
	}
	if a.sizeOf(p) == 0 {
		t.Error("zero-size allocation has no block")
	}
}

func TestAllocatorReuseAfterFree(t *testing.T) {
	a := newAllocator(0x1000, 0x10000)
	p := a.alloc(256)
	a.release(p)
	q := a.alloc(200) // fits in the freed block
	if q != p {
		t.Errorf("freed block not reused: %#x vs %#x", q, p)
	}
}

func TestAllocatorExhaustion(t *testing.T) {
	a := newAllocator(0x1000, 0x1100) // 256 bytes
	if p := a.alloc(512); p != 0 {
		t.Errorf("oversized allocation succeeded: %#x", p)
	}
	p := a.alloc(128)
	q := a.alloc(112)
	if p == 0 || q == 0 {
		t.Fatal("allocations within capacity failed")
	}
	if r := a.alloc(64); r != 0 {
		t.Error("allocation beyond capacity succeeded")
	}
}

func TestAllocatorDoubleFreeTolerated(t *testing.T) {
	a := newAllocator(0x1000, 0x10000)
	p := a.alloc(64)
	a.release(p)
	a.release(p)    // double free: ignored
	a.release(0)    // free(NULL): ignored
	a.release(9999) // unknown address: ignored
	if got := len(a.free); got != 1 {
		t.Errorf("free list has %d entries, want 1", got)
	}
}

func TestAllocatorInUse(t *testing.T) {
	a := newAllocator(0x1000, 0x10000)
	a.alloc(64)
	p := a.alloc(128)
	if got := a.inUse(); got != 64+128 {
		t.Errorf("inUse = %d", got)
	}
	a.release(p)
	if got := a.inUse(); got != 64 {
		t.Errorf("inUse after free = %d", got)
	}
}

// A block reused from the free list comes back at its full rounded size,
// and the in-use counter tracks that rounded size, not the new request.
func TestAllocatorReuseKeepsBlockSize(t *testing.T) {
	a := newAllocator(0x1000, 0x10000)
	p := a.alloc(250) // rounds to 256
	if got := a.sizeOf(p); got != 256 {
		t.Fatalf("sizeOf(fresh) = %d, want 256", got)
	}
	a.release(p)
	if got := a.inUse(); got != 0 {
		t.Fatalf("inUse after free = %d, want 0", got)
	}
	q := a.alloc(40) // first-fit reuse of the 256-byte block
	if q != p {
		t.Fatalf("freed block not reused: %#x vs %#x", q, p)
	}
	if got := a.sizeOf(q); got != 256 {
		t.Errorf("sizeOf(reused) = %d, want full block size 256", got)
	}
	if got := a.inUse(); got != 256 {
		t.Errorf("inUse after reuse = %d, want 256", got)
	}
}

// Zero-size allocations are distinct, aligned, minimum-sized blocks.
func TestAllocatorZeroSizeAlignment(t *testing.T) {
	a := newAllocator(0x1000, 0x10000)
	p := a.alloc(0)
	q := a.alloc(0)
	if p == 0 || q == 0 || p == q {
		t.Fatalf("zero-size allocations: %#x %#x", p, q)
	}
	if p%allocAlign != 0 || q%allocAlign != 0 {
		t.Errorf("zero-size allocations not %d-aligned: %#x %#x", allocAlign, p, q)
	}
	if got := a.sizeOf(p); got != allocAlign {
		t.Errorf("sizeOf(alloc(0)) = %d, want %d", got, allocAlign)
	}
	if got := a.inUse(); got != 2*allocAlign {
		t.Errorf("inUse = %d, want %d", got, 2*allocAlign)
	}
}

// Double frees and bogus frees must not disturb the in-use counter.
func TestAllocatorDoubleFreeInUse(t *testing.T) {
	a := newAllocator(0x1000, 0x10000)
	keep := a.alloc(64)
	p := a.alloc(128)
	a.release(p)
	a.release(p)    // double free: ignored
	a.release(0)    // free(NULL): ignored
	a.release(9999) // unknown address: ignored
	if got := a.inUse(); got != 64 {
		t.Errorf("inUse = %d, want 64", got)
	}
	if got := a.sizeOf(keep); got != 64 {
		t.Errorf("surviving block sizeOf = %d, want 64", got)
	}
}

// The running counter stays consistent with a from-scratch walk of the
// live map across a random alloc/free sequence.
func TestAllocatorInUseCounterConsistent(t *testing.T) {
	a := newAllocator(0x4000_0000, 0x4100_0000)
	r := xrand.New(41)
	var addrs []uint64
	for i := 0; i < 2000; i++ {
		if len(addrs) > 0 && r.Intn(3) == 0 {
			k := r.Intn(len(addrs))
			a.release(addrs[k])
			addrs[k] = addrs[len(addrs)-1]
			addrs = addrs[:len(addrs)-1]
		} else {
			p := a.alloc(uint64(r.Intn(2048)))
			if p == 0 {
				t.Fatal("heap exhausted unexpectedly")
			}
			addrs = append(addrs, p)
		}
		var want uint64
		for _, sz := range a.live {
			want += sz
		}
		if got := a.inUse(); got != want {
			t.Fatalf("step %d: inUse = %d, live map total = %d", i, got, want)
		}
	}
}

// Property: live allocations never overlap and stay within the heap
// bounds, across random alloc/free sequences.
func TestAllocatorNoOverlapProperty(t *testing.T) {
	a := newAllocator(0x4000_0000, 0x4100_0000)
	r := xrand.New(77)
	live := map[uint64]uint64{} // addr -> requested size
	var addrs []uint64
	for i := 0; i < 3000; i++ {
		if len(addrs) > 0 && r.Intn(3) == 0 {
			k := r.Intn(len(addrs))
			addr := addrs[k]
			a.release(addr)
			delete(live, addr)
			addrs[k] = addrs[len(addrs)-1]
			addrs = addrs[:len(addrs)-1]
			continue
		}
		size := uint64(1 + r.Intn(4096))
		p := a.alloc(size)
		if p == 0 {
			t.Fatal("heap exhausted unexpectedly")
		}
		if p < 0x4000_0000 || p+size > 0x4100_0000 {
			t.Fatalf("allocation [%#x,%#x) outside heap", p, p+size)
		}
		for other, osize := range live {
			if p < other+osize && other < p+size {
				t.Fatalf("overlap: [%#x,%#x) with [%#x,%#x)", p, p+size, other, other+osize)
			}
		}
		live[p] = size
		addrs = append(addrs, p)
	}
}
