package machine

// allocator is the runtime heap allocator backing the malloc/calloc/free
// syscalls: a bump allocator with a first-fit free list. Allocation
// metadata lives host-side (not in simulated memory), so the addresses
// handed to the program are exactly the object addresses — important for
// the paper's object-alignment analyses. Freed blocks are reused but not
// coalesced; the workloads allocate large long-lived arrays, so
// fragmentation is not a concern.
type allocator struct {
	base  uint64
	limit uint64
	brk   uint64

	live map[uint64]uint64 // addr -> size
	free []block           // reusable blocks
	used uint64            // running total of live bytes
}

type block struct {
	addr, size uint64
}

const allocAlign = 16

func newAllocator(base, limit uint64) *allocator {
	return &allocator{base: base, limit: limit, brk: base, live: make(map[uint64]uint64)}
}

// alloc returns the address of a fresh block of at least size bytes, or 0
// if the heap is exhausted.
func (a *allocator) alloc(size uint64) uint64 {
	if size == 0 {
		size = allocAlign
	}
	size = (size + allocAlign - 1) &^ uint64(allocAlign-1)
	for i, b := range a.free {
		if b.size >= size {
			a.free[i] = a.free[len(a.free)-1]
			a.free = a.free[:len(a.free)-1]
			a.live[b.addr] = b.size
			a.used += b.size
			return b.addr
		}
	}
	if a.brk+size > a.limit {
		return 0
	}
	addr := a.brk
	a.brk += size
	a.live[addr] = size
	a.used += size
	return addr
}

// release returns a block to the free list. Unknown addresses are ignored
// (free(NULL) and double-free both tolerated, like the paper-era libc).
func (a *allocator) release(addr uint64) {
	size, ok := a.live[addr]
	if !ok {
		return
	}
	delete(a.live, addr)
	a.used -= size
	a.free = append(a.free, block{addr, size})
}

// sizeOf reports the size of a live block (0 if unknown).
func (a *allocator) sizeOf(addr uint64) uint64 { return a.live[addr] }

// inUse reports the total bytes currently allocated. The counter is
// maintained by alloc/release, so this is O(1) — it used to walk the
// whole live map, which is called on hot syscall paths.
func (a *allocator) inUse() uint64 { return a.used }
