package machine

import (
	"fmt"

	"dsprof/internal/isa"
)

// Runtime service numbers for the Syscall instruction. Arguments are
// passed in %o0..%o5; the result, if any, is returned in %o0.
const (
	SysExit      = 1  // exit(%o0)
	SysMalloc    = 2  // %o0 = malloc(%o0)
	SysFree      = 3  // free(%o0)
	SysCalloc    = 4  // %o0 = calloc(%o0 elements, %o1 bytes each), zeroed
	SysReadLong  = 5  // %o0 = next input long; traps when input is exhausted
	SysWriteLong = 6  // append %o0 to the long output vector
	SysPuts      = 7  // write NUL-terminated string at %o0 to text output
	SysPutc      = 8  // write byte %o0 to text output
	SysCycles    = 9  // %o0 = current cycle count
	SysInputLeft = 10 // %o0 = number of unread input longs
)

// Nominal syscall costs in cycles, charged as system time.
const (
	syscallBaseCycles  = 60
	callocCycleDivisor = 16 // zeroing cost: size/divisor cycles
)

// doSyscall executes the runtime service and returns its extra cycle
// cost. The service result is written to %o0 by the caller via the normal
// destination-register path.
func (m *Machine) doSyscall(service int64) (result int64, cost uint64, err error) {
	cost = syscallBaseCycles
	switch service {
	case SysExit:
		m.halted = true
		return m.Regs[isa.O0], cost, nil
	case SysMalloc:
		addr := m.heap.alloc(uint64(m.Regs[isa.O0]))
		if addr == 0 {
			return 0, cost, &Trap{Kind: TrapOutOfMemory, PC: m.PC}
		}
		seq := len(m.allocs)
		m.allocs = append(m.allocs, Alloc{Addr: addr, Size: uint64(m.Regs[isa.O0]), Seq: seq})
		m.recordProv(addr, uint64(m.Regs[isa.O0]), seq)
		return int64(addr), cost, nil
	case SysCalloc:
		n := uint64(m.Regs[isa.O0]) * uint64(m.Regs[isa.O1])
		addr := m.heap.alloc(n)
		if addr == 0 {
			return 0, cost, &Trap{Kind: TrapOutOfMemory, PC: m.PC}
		}
		// Fresh simulated memory is already zero, but blocks reused from
		// the free list are not.
		m.Mem.WriteBytes(addr, make([]byte, n))
		seq := len(m.allocs)
		m.allocs = append(m.allocs, Alloc{Addr: addr, Size: n, Seq: seq})
		m.recordProv(addr, n, seq)
		return int64(addr), cost + n/callocCycleDivisor, nil
	case SysFree:
		m.completeProv(uint64(m.Regs[isa.O0]))
		m.heap.release(uint64(m.Regs[isa.O0]))
		return 0, cost, nil
	case SysReadLong:
		if m.inPos >= len(m.input) {
			return 0, cost, &Trap{Kind: TrapInputExhausted, PC: m.PC}
		}
		v := m.input[m.inPos]
		m.inPos++
		return v, cost, nil
	case SysWriteLong:
		m.outLong = append(m.outLong, m.Regs[isa.O0])
		return 0, cost, nil
	case SysPuts:
		s := m.Mem.ReadCString(uint64(m.Regs[isa.O0]), 1<<16)
		m.outText.WriteString(s)
		return 0, cost + uint64(len(s)), nil
	case SysPutc:
		m.outText.WriteByte(byte(m.Regs[isa.O0]))
		return 0, cost, nil
	case SysCycles:
		return int64(m.stats.Cycles), cost, nil
	case SysInputLeft:
		return int64(len(m.input) - m.inPos), cost, nil
	}
	return 0, cost, &Trap{Kind: TrapBadSyscall, PC: m.PC, Extra: fmt.Sprintf("service %d", service)}
}
