package machine

import (
	"testing"

	"dsprof/internal/asm"
	"dsprof/internal/isa"
)

// provProgram mallocs 64 bytes, mallocs 32 bytes, frees the first block,
// then halts: one freed record, one surviving record.
func provProgram(b *asm.Builder) {
	b.Emit(movImm(isa.O0, 64))
	b.Emit(isa.Instr{Op: isa.Syscall, UseImm: true, Imm: SysMalloc}) // PC TextBase+4
	b.Emit(isa.Instr{Op: isa.Or, Rd: isa.L0, Rs1: isa.G0, Rs2: isa.O0})
	b.Emit(movImm(isa.O0, 32))
	b.Emit(isa.Instr{Op: isa.Syscall, UseImm: true, Imm: SysMalloc}) // PC TextBase+16
	b.Emit(isa.Instr{Op: isa.Or, Rd: isa.O0, Rs1: isa.G0, Rs2: isa.L0})
	b.Emit(isa.Instr{Op: isa.Syscall, UseImm: true, Imm: SysFree})
	b.Emit(isa.Instr{Op: isa.Halt})
}

func TestProvRecords(t *testing.T) {
	m := build(t, DefaultConfig(), provProgram)
	var recs []ProvRecord
	m.OnProv = func(r ProvRecord) { recs = append(recs, r) }
	run(t, m)
	m.DrainProv()

	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2: %+v", len(recs), recs)
	}
	freed, live := recs[0], recs[1]
	if !freed.Freed || freed.Seq != 0 || freed.Size != 64 {
		t.Errorf("freed record = %+v", freed)
	}
	if freed.Site != TextBase+1*isa.InstrBytes {
		t.Errorf("freed.Site = %#x, want first malloc syscall PC %#x", freed.Site, TextBase+1*isa.InstrBytes)
	}
	if freed.Death == 0 || freed.Death <= freed.Birth {
		t.Errorf("freed lifetime [%d,%d] not ordered", freed.Birth, freed.Death)
	}
	if live.Freed || live.Death != 0 || live.Seq != 1 || live.Size != 32 {
		t.Errorf("surviving record = %+v", live)
	}
	if live.Site != TextBase+4*isa.InstrBytes {
		t.Errorf("live.Site = %#x, want second malloc syscall PC %#x", live.Site, TextBase+4*isa.InstrBytes)
	}
	if freed.Caller != 0 || live.Caller != 0 {
		t.Errorf("top-level callers = %#x %#x, want 0", freed.Caller, live.Caller)
	}
	if live.Birth <= freed.Birth {
		t.Errorf("birth stamps not monotonic: %d then %d", freed.Birth, live.Birth)
	}
	// Records line up with the allocation log.
	allocs := m.Allocs()
	if len(allocs) != 2 || allocs[0].Addr != freed.Addr || allocs[1].Addr != live.Addr {
		t.Errorf("allocs %+v do not match prov records", allocs)
	}
}

// The same program with no hook installed must leave the shadow map
// untouched and still record allocations normally.
func TestProvNilHook(t *testing.T) {
	m := build(t, DefaultConfig(), provProgram)
	run(t, m)
	if m.provLive != nil {
		t.Errorf("provLive allocated with nil hook: %v", m.provLive)
	}
	m.DrainProv() // no-op, must not panic
	if got := len(m.Allocs()); got != 2 {
		t.Errorf("allocs = %d, want 2", got)
	}
}

// Double frees, free(NULL) and unknown addresses emit no extra records.
func TestProvDoubleFree(t *testing.T) {
	m := build(t, DefaultConfig(), func(b *asm.Builder) {
		b.Emit(movImm(isa.O0, 64))
		b.Emit(isa.Instr{Op: isa.Syscall, UseImm: true, Imm: SysMalloc})
		b.Emit(isa.Instr{Op: isa.Or, Rd: isa.L0, Rs1: isa.G0, Rs2: isa.O0})
		b.Emit(isa.Instr{Op: isa.Syscall, UseImm: true, Imm: SysFree}) // first free (o0 = ptr)
		b.Emit(isa.Instr{Op: isa.Or, Rd: isa.O0, Rs1: isa.G0, Rs2: isa.L0})
		b.Emit(isa.Instr{Op: isa.Syscall, UseImm: true, Imm: SysFree}) // double free
		b.Emit(movImm(isa.O0, 0))
		b.Emit(isa.Instr{Op: isa.Syscall, UseImm: true, Imm: SysFree}) // free(NULL)
		b.Emit(movImm(isa.O0, 12345))
		b.Emit(isa.Instr{Op: isa.Syscall, UseImm: true, Imm: SysFree}) // unknown addr
		b.Emit(isa.Instr{Op: isa.Halt})
	})
	var recs []ProvRecord
	m.OnProv = func(r ProvRecord) { recs = append(recs, r) }
	run(t, m)
	m.DrainProv()
	if len(recs) != 1 || !recs[0].Freed {
		t.Fatalf("records = %+v, want exactly one freed record", recs)
	}
}

// A malloc performed inside a called function records the call-site PC of
// the caller on the shadow stack.
func TestProvCaller(t *testing.T) {
	m := build(t, DefaultConfig(), func(b *asm.Builder) {
		b.EmitCall("fn") // PC TextBase
		b.Emit(isa.Instr{Op: isa.Nop})
		b.Emit(isa.Instr{Op: isa.Halt})
		b.Label("fn")
		b.Emit(movImm(isa.O0, 48))
		b.Emit(isa.Instr{Op: isa.Syscall, UseImm: true, Imm: SysMalloc})
		b.Emit(isa.Instr{Op: isa.Jmpl, Rd: isa.G0, Rs1: isa.O7, UseImm: true, Imm: 8}) // retl
		b.Emit(isa.Instr{Op: isa.Nop})
	})
	var recs []ProvRecord
	m.OnProv = func(r ProvRecord) { recs = append(recs, r) }
	run(t, m)
	m.DrainProv()
	if len(recs) != 1 {
		t.Fatalf("records = %+v, want 1", recs)
	}
	if recs[0].Caller != TextBase {
		t.Errorf("Caller = %#x, want call instruction PC %#x", recs[0].Caller, uint64(TextBase))
	}
	if recs[0].Site != TextBase+4*isa.InstrBytes {
		t.Errorf("Site = %#x, want malloc syscall PC %#x", recs[0].Site, TextBase+4*isa.InstrBytes)
	}
}

// DrainProv emits surviving records in allocation order regardless of map
// iteration, and leaves the machine clean.
func TestProvDrainOrder(t *testing.T) {
	m := build(t, DefaultConfig(), func(b *asm.Builder) {
		for i := 0; i < 8; i++ {
			b.Emit(movImm(isa.O0, int32(16*(i+1))))
			b.Emit(isa.Instr{Op: isa.Syscall, UseImm: true, Imm: SysMalloc})
		}
		b.Emit(isa.Instr{Op: isa.Halt})
	})
	var recs []ProvRecord
	m.OnProv = func(r ProvRecord) { recs = append(recs, r) }
	run(t, m)
	m.DrainProv()
	if len(recs) != 8 {
		t.Fatalf("records = %d, want 8", len(recs))
	}
	for i, r := range recs {
		if r.Seq != i {
			t.Fatalf("record %d has Seq %d; drain not in allocation order: %+v", i, r.Seq, recs)
		}
		if r.Size != uint64(16*(i+1)) {
			t.Errorf("record %d size = %d, want %d", i, r.Size, 16*(i+1))
		}
	}
	if m.provLive != nil {
		t.Error("provLive not cleared after drain")
	}
	// Second drain is a no-op.
	n := len(recs)
	m.DrainProv()
	if len(recs) != n {
		t.Error("second DrainProv emitted records")
	}
}
