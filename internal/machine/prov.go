package machine

// prov.go is the object-provenance side channel of the VM allocator:
// when a collector installs the OnProv hook, every heap block handed out
// by malloc/calloc is tagged — host-side only, in a shadow map keyed by
// simulated address — with the PC of the allocating syscall instruction,
// the call-site context from the shadow call stack, the allocation
// sequence number, and birth/death cycle stamps. Nothing about the
// simulated machine changes: addresses, costs, counter evolution and the
// fast-path batching contract are untouched, and with the hook nil the
// syscall handlers do zero extra work.
//
// malloc is compiled as an inline Syscall instruction in the calling
// function (there is no wrapper function in the runtime), so the
// allocation site is the syscall's own PC and the shadow-stack top is
// the caller of the function performing the allocation.

import "sort"

// ProvRecord is one heap block's provenance: where it was allocated,
// which instance it is, and when it lived. Records for freed blocks are
// emitted at free time with the death stamp set; blocks still live at
// end of run are emitted by DrainProv with Freed false and Death zero.
type ProvRecord struct {
	Site   uint64 // PC of the allocating malloc/calloc syscall instruction
	Caller uint64 // innermost call-site PC on the shadow stack (0 at top level)
	Addr   uint64 // simulated block address
	Size   uint64 // requested size in bytes (before allocator rounding)
	Seq    int    // allocation sequence number, matching Alloc.Seq
	Birth  uint64 // machine cycles at allocation
	Death  uint64 // machine cycles at free (0 if never freed)
	Freed  bool
}

// recordProv opens a provenance record for a fresh allocation. Called
// from the malloc/calloc syscall handlers, where m.PC and m.stats.Cycles
// are flushed on both interpreter paths, so the stamps are identical
// under the fast path and the reference stepper.
func (m *Machine) recordProv(addr, size uint64, seq int) {
	if m.OnProv == nil {
		return
	}
	var caller uint64
	if n := len(m.callstack); n > 0 {
		caller = m.callstack[n-1]
	}
	if m.provLive == nil {
		m.provLive = make(map[uint64]ProvRecord)
	}
	m.provLive[addr] = ProvRecord{
		Site:   m.PC,
		Caller: caller,
		Addr:   addr,
		Size:   size,
		Seq:    seq,
		Birth:  m.stats.Cycles,
	}
}

// completeProv closes the provenance record for a freed block and emits
// it. free(NULL), double frees and frees of unknown addresses find no
// open record and emit nothing, mirroring the allocator's tolerance.
func (m *Machine) completeProv(addr uint64) {
	if m.OnProv == nil || m.provLive == nil {
		return
	}
	rec, ok := m.provLive[addr]
	if !ok {
		return
	}
	delete(m.provLive, addr)
	rec.Death = m.stats.Cycles
	rec.Freed = true
	m.OnProv(rec)
}

// DrainProv emits every provenance record still open (blocks live at end
// of run), in allocation-sequence order, and clears the shadow map. The
// collector calls it once after the run; the overall record stream is
// deterministic: frees in execution order, then survivors by sequence.
func (m *Machine) DrainProv() {
	if m.OnProv == nil || len(m.provLive) == 0 {
		return
	}
	recs := make([]ProvRecord, 0, len(m.provLive))
	for _, r := range m.provLive {
		recs = append(recs, r)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Seq < recs[j].Seq })
	for _, r := range recs {
		m.OnProv(r)
	}
	m.provLive = nil
}
