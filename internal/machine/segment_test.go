package machine

import (
	"testing"

	"dsprof/internal/asm"
	"dsprof/internal/isa"
)

func TestSegmentClassification(t *testing.T) {
	m := build(t, DefaultConfig(), func(b *asm.Builder) {
		b.Emit(movImm(isa.O0, 4096))
		b.Emit(isa.Instr{Op: isa.Syscall, UseImm: true, Imm: SysMalloc})
		b.Emit(isa.Instr{Op: isa.Halt})
	})
	run(t, m)
	heapPtr := uint64(m.Regs[isa.O0])

	cases := []struct {
		addr uint64
		want SegmentID
	}{
		{TextBase, SegText},
		{TextBase + 4, SegText},
		{heapPtr, SegHeap},
		{heapPtr + 4095, SegHeap},
		{StackTop - 8, SegStack},
		{StackTop - DefaultConfig().StackBytes, SegStack},
		{0, SegNone},
		{StackTop, SegNone},
		{HeapBase + 1<<30, SegNone}, // beyond brk
	}
	for _, c := range cases {
		if got := m.SegmentOf(c.addr); got != c.want {
			t.Errorf("SegmentOf(%#x) = %v, want %v", c.addr, got, c.want)
		}
	}
}

func TestSegmentNamesRender(t *testing.T) {
	names := map[SegmentID]string{
		SegText: "Text", SegData: "Data", SegHeap: "Heap", SegStack: "Stack", SegNone: "none",
	}
	for seg, want := range names {
		if seg.String() != want {
			t.Errorf("%d.String() = %q, want %q", seg, seg.String(), want)
		}
	}
}

func TestDataSegmentClassifiedWhenPresent(t *testing.T) {
	b := asm.NewBuilder(TextBase)
	b.Emit(isa.Instr{Op: isa.Halt})
	text, _ := b.Finish()
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadProgram(text, make([]byte, 64), TextBase); err != nil {
		t.Fatal(err)
	}
	if got := m.SegmentOf(DataBase); got != SegData {
		t.Errorf("SegmentOf(DataBase) = %v", got)
	}
	if got := m.SegmentOf(DataBase + 64); got != SegNone {
		t.Errorf("SegmentOf past data end = %v", got)
	}
}

func TestHeapPageSizeAffectsTLBMisses(t *testing.T) {
	prog := func(b *asm.Builder) {
		b.Emit(movImm(isa.O0, 1))
		b.Emit(isa.Instr{Op: isa.Sll, Rd: isa.O0, Rs1: isa.O0, UseImm: true, Imm: 24}) // 16 MB
		b.Emit(isa.Instr{Op: isa.Syscall, UseImm: true, Imm: SysMalloc})
		b.Emit(isa.Instr{Op: isa.Or, Rd: isa.L0, Rs1: isa.G0, Rs2: isa.O0})
		b.Emit(movImm(isa.O1, 2000))
		b.Label("loop")
		b.Emit(isa.Instr{Op: isa.LdX, Rd: isa.O2, Rs1: isa.L0, UseImm: true, Imm: 0})
		b.Emit(isa.Instr{Op: isa.Add, Rd: isa.L0, Rs1: isa.L0, Rs2: isa.O4})
		b.Emit(isa.Instr{Op: isa.Sub, Rd: isa.O1, Rs1: isa.O1, UseImm: true, Imm: 1})
		b.Emit(isa.Instr{Op: isa.Cmp, Rs1: isa.O1, UseImm: true, Imm: 0})
		b.EmitBranch(isa.Bg, "loop")
		b.Emit(isa.Instr{Op: isa.Nop})
		b.Emit(isa.Instr{Op: isa.Halt})
	}
	misses := func(pageSize uint64) uint64 {
		cfg := DefaultConfig()
		cfg.HeapPageSize = pageSize
		m := build(t, cfg, prog)
		m.Regs[isa.O4] = 8192 // stride one small page
		run(t, m)
		return m.Stats().DTLBMisses
	}
	small := misses(8192)
	large := misses(512 << 10)
	if large*20 >= small {
		t.Errorf("512K pages: %d misses vs %d at 8K; want >20x reduction", large, small)
	}
}

func TestStackGrowthWithinSegment(t *testing.T) {
	// Deep call chain: the stack stays within the stack segment and
	// unwinds cleanly.
	m := build(t, DefaultConfig(), func(b *asm.Builder) {
		b.Emit(movImm(isa.O0, 200)) // depth
		b.EmitCall("rec")
		b.Emit(isa.Instr{Op: isa.Nop})
		b.Emit(isa.Instr{Op: isa.Halt})
		b.Label("rec")
		// prologue: sub sp, 32; save o7
		b.Emit(isa.Instr{Op: isa.Sub, Rd: isa.SP, Rs1: isa.SP, UseImm: true, Imm: 32})
		b.Emit(isa.Instr{Op: isa.StX, Rd: isa.O7, Rs1: isa.SP, UseImm: true, Imm: 0})
		b.Emit(isa.Instr{Op: isa.Cmp, Rs1: isa.O0, UseImm: true, Imm: 0})
		b.EmitBranch(isa.Ble, "out")
		b.Emit(isa.Instr{Op: isa.Nop})
		b.Emit(isa.Instr{Op: isa.Sub, Rd: isa.O0, Rs1: isa.O0, UseImm: true, Imm: 1})
		b.EmitCall("rec")
		b.Emit(isa.Instr{Op: isa.Nop})
		b.Emit(isa.Instr{Op: isa.Add, Rd: isa.O0, Rs1: isa.O0, UseImm: true, Imm: 1})
		b.Label("out")
		b.Emit(isa.Instr{Op: isa.LdX, Rd: isa.O7, Rs1: isa.SP, UseImm: true, Imm: 0})
		b.Emit(isa.Instr{Op: isa.Jmpl, Rd: isa.G0, Rs1: isa.O7, UseImm: true, Imm: 8})
		b.Emit(isa.Instr{Op: isa.Add, Rd: isa.SP, Rs1: isa.SP, UseImm: true, Imm: 32})
	})
	run(t, m)
	if m.Regs[isa.O0] != 200 {
		t.Errorf("recursion result = %d, want 200", m.Regs[isa.O0])
	}
	if uint64(m.Regs[isa.SP]) != StackTop-64 {
		t.Errorf("stack not unwound: sp = %#x", m.Regs[isa.SP])
	}
}
