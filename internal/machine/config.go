// Package machine implements the simulated processor and its runtime: a
// SPARC-like 64-bit core with branch delay slots, a two-level data cache
// hierarchy and DTLB with cycle accounting, two hardware performance
// counter registers with overflow interrupts and counter skid, a simple
// process address space (text/data/heap/stack) with a free-list heap
// allocator, and a syscall interface for I/O.
//
// The machine is the substrate standing in for the paper's 900 MHz
// UltraSPARC-III Cu running Solaris 9: everything the profiling pipeline
// observes (PCs, counter overflow signals, register contents, memory
// behaviour) is produced here.
package machine

import (
	"fmt"

	"dsprof/internal/cache"
	"dsprof/internal/tlb"
)

// Address space layout. Everything lives below 2^31 so that any address
// can be materialized with the two-instruction sethi+or idiom; the text
// base is chosen so PCs look like the paper's listings (0x100031b0).
const (
	TextBase  = 0x1000_0000
	DataBase  = 0x2000_0000
	HeapBase  = 0x4000_0000
	StackTop  = 0x7f00_0000
	PageAlign = 8192 // minimum page size
)

// SegmentID identifies an address-space segment.
type SegmentID uint8

// Segments of the simulated address space.
const (
	SegNone SegmentID = iota
	SegText
	SegData
	SegHeap
	SegStack
)

var segNames = []string{"none", "Text", "Data", "Heap", "Stack"}

func (s SegmentID) String() string {
	if int(s) < len(segNames) {
		return segNames[s]
	}
	return "seg?"
}

// Config describes the simulated system.
type Config struct {
	ClockHz uint64 // simulated clock; "seconds" metrics are cycles/ClockHz

	DCache cache.Config
	ECache cache.Config
	ICache cache.Config
	// ICMissStall is the pipeline stall of an instruction fetch miss.
	ICMissStall int
	Costs       cache.Costs
	TLB         tlb.Config

	// Per-segment page sizes (power of two, >= PageAlign). HeapPageSize
	// is what -xpagesize_heap=512k changes.
	TextPageSize  uint64
	DataPageSize  uint64
	HeapPageSize  uint64
	StackPageSize uint64

	StackBytes uint64 // stack segment size
	HeapBytes  uint64 // maximum heap size

	MaxInstrs uint64 // instruction budget; 0 means unlimited
	SkidSeed  uint64 // seed for the counter skid model
}

// DefaultConfig is the UltraSPARC-III Cu-like system of the paper:
// 900 MHz, 64 KB/4-way/32 B D$, 8 MB/2-way/512 B E$, 8 KB pages.
func DefaultConfig() Config {
	return Config{
		ClockHz:       900_000_000,
		DCache:        cache.DefaultDCache(),
		ECache:        cache.DefaultECache(),
		ICache:        cache.Config{Name: "I$", SizeBytes: 32 << 10, LineBytes: 32, Assoc: 4},
		ICMissStall:   12,
		Costs:         cache.DefaultCosts(),
		TLB:           tlb.DefaultConfig(),
		TextPageSize:  8192,
		DataPageSize:  8192,
		HeapPageSize:  8192,
		StackPageSize: 8192,
		StackBytes:    8 << 20,
		HeapBytes:     StackTop - 16<<20 - HeapBase, // up to just below the stack
		SkidSeed:      1,
	}
}

// ScaledConfig is a proportionally scaled-down system for fast
// experiments: caches are 1/8 the paper's size with identical line sizes
// and associativities, and the TLB is smaller. Workloads sized so that
// working-set:cache ratios match the paper reproduce the paper's shape at
// a fraction of the simulation cost.
func ScaledConfig() Config {
	c := DefaultConfig()
	c.DCache.SizeBytes = 8 << 10
	c.ECache.SizeBytes = 1 << 20
	c.ICache.SizeBytes = 8 << 10
	c.TLB.Entries = 64
	return c
}

func isPow2u(n uint64) bool { return n > 0 && n&(n-1) == 0 }

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.ClockHz == 0 {
		return fmt.Errorf("machine: zero clock rate")
	}
	for _, ps := range []uint64{c.TextPageSize, c.DataPageSize, c.HeapPageSize, c.StackPageSize} {
		if !isPow2u(ps) || ps < PageAlign {
			return fmt.Errorf("machine: page size %d invalid (power of two >= %d)", ps, PageAlign)
		}
	}
	if c.StackBytes < 64<<10 {
		return fmt.Errorf("machine: stack too small")
	}
	if err := c.DCache.Validate(); err != nil {
		return err
	}
	if err := c.ECache.Validate(); err != nil {
		return err
	}
	if err := c.ICache.Validate(); err != nil {
		return err
	}
	return nil
}
