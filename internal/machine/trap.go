package machine

import "fmt"

// TrapKind classifies fatal execution traps.
type TrapKind uint8

// Trap kinds.
const (
	TrapNone TrapKind = iota
	TrapBadPC
	TrapMisaligned
	TrapSegv
	TrapDivZero
	TrapBadSyscall
	TrapInputExhausted
	TrapOutOfMemory
	TrapBudget
)

var trapNames = []string{
	"none", "bad PC", "misaligned access", "segmentation violation",
	"division by zero", "bad syscall", "input exhausted", "out of memory",
	"instruction budget exceeded",
}

func (k TrapKind) String() string {
	if int(k) < len(trapNames) {
		return trapNames[k]
	}
	return "trap?"
}

// Trap is the error returned when execution stops abnormally.
type Trap struct {
	Kind  TrapKind
	PC    uint64
	Addr  uint64 // faulting address for memory traps
	Extra string
}

func (t *Trap) Error() string {
	s := fmt.Sprintf("machine: %v at pc=%#x", t.Kind, t.PC)
	if t.Kind == TrapMisaligned || t.Kind == TrapSegv {
		s += fmt.Sprintf(" addr=%#x", t.Addr)
	}
	if t.Extra != "" {
		s += ": " + t.Extra
	}
	return s
}
