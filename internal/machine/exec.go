package machine

import (
	"dsprof/internal/cache"
	"dsprof/internal/hwc"
	"dsprof/internal/isa"
	"dsprof/internal/tlb"
)

// Base pipeline cost of each opcode, in cycles, before memory stalls.
// Fused into the predecoded text at load time.
var baseCost = func() [isa.NumOps]uint8 {
	var c [isa.NumOps]uint8
	for op := isa.Op(0); op < isa.NumOps; op++ {
		switch {
		case op.IsLoad():
			c[op] = 2
		case op == isa.Mul:
			c[op] = 6
		case op == isa.Div || op == isa.Rem:
			c[op] = 40
		default:
			c[op] = 1
		}
	}
	return c
}()

// maxBaseCost is the largest per-opcode base cost, for the event-horizon
// bound on cycle-counting overflow.
var maxBaseCost = func() uint64 {
	var m uint8
	for _, c := range baseCost {
		if c > m {
			m = c
		}
	}
	return uint64(m)
}()

// batchTarget caps one fast inner-loop batch. It only bounds how much
// work runs between horizon recomputations; correctness never depends on
// it.
const batchTarget = 1 << 20

// Run executes instructions until the program halts or a trap occurs.
//
// Run takes the fast path: between observable events (pending overflow
// delivery, clock ticks, armed-counter overflows, the instruction
// budget) it executes a tight inner loop with no per-instruction checks,
// accumulating instruction and cycle counts locally and flushing them at
// the event horizon. The produced execution — every counter overflow,
// its skid draw, every delivered event and clock tick — is identical to
// driving the machine with Step.
func (m *Machine) Run() error {
	for !m.halted {
		if _, err := m.runBatch(batchTarget); err != nil {
			return err
		}
	}
	return nil
}

// RunFor executes at most budget instructions on the fast path, stopping
// early on halt or trap. Drivers that interleave work with execution
// (context cancellation checks, schedulers) call it in a loop instead of
// stepping instruction by instruction.
func (m *Machine) RunFor(budget uint64) error {
	for budget > 0 && !m.halted {
		n, err := m.runBatch(budget)
		if err != nil {
			return err
		}
		budget -= n
	}
	return nil
}

// runBatch executes up to limit instructions: one horizon computation
// followed by a fast inner loop, or a single reference Step when an
// observable event is due. It returns how many instructions were
// retired (counting a trapping instruction).
func (m *Machine) runBatch(limit uint64) (uint64, error) {
	// Anything due now is delivered by the reference stepper so skid
	// aging, tick delivery and budget traps happen exactly as when the
	// machine is stepped instruction by instruction.
	if len(m.pending) > 0 || (m.ClockTickCycles > 0 && m.stats.Cycles >= m.nextTick) {
		return 1, m.Step()
	}
	maxN := limit
	if m.Cfg.MaxInstrs > 0 {
		if m.stats.Instrs >= m.Cfg.MaxInstrs {
			return 1, m.Step() // next step raises the budget trap
		}
		if rem := m.Cfg.MaxInstrs - m.stats.Instrs; rem < maxN {
			maxN = rem
		}
	}
	// Horizon of an armed instruction counter: Remaining()-1 instructions
	// are overflow-free, so the overflowing instruction is counted by a
	// single-instruction Step and the trigger attribution is exact.
	if mask := m.armed[hwc.EvInstrs]; mask != 0 {
		r := m.counters[picOf(mask)].Remaining()
		if r <= 1 {
			return 1, m.Step()
		}
		if r-1 < maxN {
			maxN = r - 1
		}
	}
	// Cycle horizon: the inner loop stops before the machine cycle count
	// reaches stop. Ticks may overshoot by one instruction's cost (the
	// reference stepper fires them at the top of the next step); an armed
	// cycle counter may not, so its bound backs off by the worst-case
	// non-syscall instruction cost and syscalls break the loop.
	stop := ^uint64(0)
	if m.ClockTickCycles > 0 {
		stop = m.nextTick
	}
	breakOnSyscall := false
	if mask := m.armed[hwc.EvCycles]; mask != 0 {
		r := m.counters[picOf(mask)].Remaining()
		if r <= m.maxInstrCost {
			return 1, m.Step()
		}
		if s := m.stats.Cycles + r - m.maxInstrCost; s < stop {
			stop = s
		}
		breakOnSyscall = true
	}
	if m.backend == BackendTranslated {
		// Armed-event budget: each armed memory/I$/TLB counter shrinks the
		// horizon along the axis that bounds its event tightest. I$ misses
		// fire at most once per instruction (every fetch probes the I$
		// once), so they bound the instruction horizon maxN. The per-access
		// events — D$ read misses, E$ references, E$ read misses, DTLB
		// misses — fire at most once per data memory access, so they bound
		// maxMem, the batch's memory-access budget (a translated block
		// pre-counts its accesses; runMixed charges interpreter chunks one
		// access per instruction). E$ stall cycles are a subset of the
		// cycles the stalling instructions themselves retire, so an armed
		// EvECStall counter tightens the cycle horizon exactly like an
		// armed cycle counter — backed off by the worst-case instruction
		// cost — rather than wasting 1/maxInstrCost of its headroom on
		// every non-stalling instruction. Syscall service cycles never
		// stall, so unlike EvCycles the bound needs no syscall break.
		// Within these bounds no counter can overflow — not in a
		// translated block, not in an interpreter chunk, not on a bail (a
		// bailing access faults before touching TLB or cache; its fetch
		// probe is covered by Headroom's reserved extra event) — so the
		// whole batch counts armed events into evDelta and flushes once at
		// the boundary. The overflowing event itself always lands on a
		// single reference Step with exact trigger attribution and
		// in-order skid draws.
		maxMem := ^uint64(0)
		for _, c := range m.counters {
			if c == nil {
				continue
			}
			switch c.Event {
			case hwc.EvInstrs, hwc.EvCycles:
				// Bounded by the instruction and cycle horizons above.
			case hwc.EvECStall:
				r := c.Remaining()
				if r <= m.maxInstrCost {
					return 1, m.Step()
				}
				if s := m.stats.Cycles + r - m.maxInstrCost; s < stop {
					stop = s
				}
			case hwc.EvICMiss:
				n, ok := c.Headroom(1)
				if !ok {
					return 1, m.Step()
				}
				if n < maxN {
					maxN = n
				}
			default:
				n, ok := c.Headroom(1)
				if !ok {
					return 1, m.Step()
				}
				if n < maxMem {
					maxMem = n
				}
			}
		}
		m.evBatch = true
		n, err := m.runMixed(maxN, maxMem, stop, breakOnSyscall)
		m.evFlush()
		if n == 0 && err == nil && !m.halted {
			// The batch gave way immediately (syscall under a cycle-counter
			// horizon): retire one instruction on the reference path.
			return 1, m.Step()
		}
		return n, err
	}
	n, err := m.runInner(maxN, stop, breakOnSyscall)
	if n == 0 && err == nil && !m.halted {
		// The loop gave way immediately (syscall under a cycle-counter
		// horizon): retire one instruction on the reference path.
		return 1, m.Step()
	}
	return n, err
}

// picOf maps a one-bit armed mask to its PIC number.
func picOf(mask uint8) int {
	if mask&1 != 0 {
		return 0
	}
	return 1
}

// runInner is the fast inner loop: no pending, tick, or budget checks
// per instruction, just bounds established by the caller's horizon.
// Instruction and cycle event counts accumulate locally and flush in one
// Add at the boundary (the horizon guarantees the flush cannot overflow,
// so no skid draw is reordered). Memory, I$, and TLB events still count
// at their exact instruction through the armed-mask path, so their
// overflows — which break the loop via the pending check — land with
// exact trigger attribution and in reference order.
// The dispatch below duplicates exec1's per-class semantics with the hot
// architectural state — PC, NPC, cycle count, current fetch line — held in
// locals, saving a call and a machine-state round trip per instruction.
// Any change to exec1 must be mirrored here; TestFastPathEquivalence and
// TestFastPathGolden hold the two interpreters to byte-identical runs.
// The only inner-loop callee that observes state the locals shadow is
// doSyscall (trap PCs, the cycle-count service), so the syscall case
// flushes before the call.
func (m *Machine) runInner(maxN, stop uint64, breakOnSyscall bool) (uint64, error) {
	var (
		n      uint64
		lastPC uint64
		retErr error
	)
	pc, npc := m.PC, m.NPC
	cycles := m.stats.Cycles
	startCycles := cycles
	fetchLine := m.lastFetchLine
loop:
	for n < maxN && cycles < stop && len(m.pending) == 0 && !m.halted {
		off := pc - TextBase
		if off >= m.textSize || pc%isa.InstrBytes != 0 {
			retErr = &Trap{Kind: TrapBadPC, PC: pc}
			break
		}
		d := &m.dec[off/isa.InstrBytes]
		if breakOnSyscall && d.Class == isa.ClSyscall {
			break
		}
		cost := uint64(d.Cost)

		// Instruction fetch: probe the I$ only when leaving the current
		// fetch line (sequential fetches within a line are free).
		if line := pc >> m.icLineShift; line != fetchLine {
			fetchLine = line
			if hit, _ := m.IC.Access(pc, false, true); !hit {
				m.stats.ICMisses++
				cost += uint64(m.Cfg.ICMissStall)
				m.count(hwc.EvICMiss, 1, pc, 0, false)
			}
		}
		nextNPC := npc + isa.InstrBytes

		switch d.Class {
		case isa.ClNop:
			// nothing
		case isa.ClLdB, isa.ClLdUB, isa.ClLdW, isa.ClLdX,
			isa.ClStB, isa.ClStW, isa.ClStX, isa.ClPrefetch:
			addr := uint64(m.Regs[d.Rs1] + m.src2(d))
			extra, err := m.access(d, pc, addr)
			if err != nil {
				m.stats.Instrs++ // the trapping instruction still issued
				retErr = err
				break loop
			}
			cost += extra
		case isa.ClAdd:
			m.wreg(d.Rd, m.Regs[d.Rs1]+m.src2(d))
		case isa.ClSub:
			m.wreg(d.Rd, m.Regs[d.Rs1]-m.src2(d))
		case isa.ClMul:
			m.wreg(d.Rd, m.Regs[d.Rs1]*m.src2(d))
		case isa.ClDiv:
			b := m.src2(d)
			if b == 0 {
				m.wreg(d.Rd, 0)
				m.stats.Instrs++
				retErr = &Trap{Kind: TrapDivZero, PC: pc}
				break loop
			}
			m.wreg(d.Rd, m.Regs[d.Rs1]/b)
		case isa.ClRem:
			b := m.src2(d)
			if b == 0 {
				m.wreg(d.Rd, 0)
				m.stats.Instrs++
				retErr = &Trap{Kind: TrapDivZero, PC: pc}
				break loop
			}
			m.wreg(d.Rd, m.Regs[d.Rs1]%b)
		case isa.ClAnd:
			m.wreg(d.Rd, m.Regs[d.Rs1]&m.src2(d))
		case isa.ClOr:
			m.wreg(d.Rd, m.Regs[d.Rs1]|m.src2(d))
		case isa.ClXor:
			m.wreg(d.Rd, m.Regs[d.Rs1]^m.src2(d))
		case isa.ClSll:
			m.wreg(d.Rd, m.Regs[d.Rs1]<<(uint64(m.src2(d))&63))
		case isa.ClSrl:
			m.wreg(d.Rd, int64(uint64(m.Regs[d.Rs1])>>(uint64(m.src2(d))&63)))
		case isa.ClSra:
			m.wreg(d.Rd, m.Regs[d.Rs1]>>(uint64(m.src2(d))&63))
		case isa.ClMovImm:
			m.wreg(d.Rd, d.Imm) // sethi: immediate pre-shifted at decode
		case isa.ClSetHi:
			m.wreg(d.Rd, m.src2(d)<<isa.SetHiShift)
		case isa.ClCmp:
			m.setCC(m.Regs[d.Rs1], m.src2(d))
		case isa.ClBranch:
			if m.cond(d.Op) {
				nextNPC = uint64(d.Imm) // absolute target, precomputed
			}
		case isa.ClCall:
			m.Regs[isa.O7] = int64(pc)
			m.callstack = append(m.callstack, pc)
			nextNPC = uint64(d.Imm)
		case isa.ClJmpl:
			target := uint64(m.Regs[d.Rs1] + m.src2(d))
			m.wreg(d.Rd, int64(pc))
			if d.Flags&isa.DFlagRet != 0 && len(m.callstack) > 0 {
				m.callstack = m.callstack[:len(m.callstack)-1]
			}
			nextNPC = target
		case isa.ClSyscall:
			m.PC, m.stats.Cycles = pc, cycles
			res, extra, err := m.doSyscall(m.src2(d))
			if err != nil {
				m.stats.Instrs++
				retErr = err
				break loop
			}
			m.wreg(isa.O0, res)
			cost += extra
			m.stats.SyscallCycles += extra
		case isa.ClHalt:
			m.halted = true
		}

		cycles += cost
		n++
		lastPC = pc
		pc, npc = npc, nextNPC
	}
	m.PC, m.NPC = pc, npc
	m.stats.Cycles = cycles
	m.lastFetchLine = fetchLine
	m.stats.Instrs += n
	if n > 0 {
		m.count(hwc.EvInstrs, n, lastPC, 0, false)
		m.count(hwc.EvCycles, cycles-startCycles, lastPC, 0, false)
	}
	return n, retErr
}

// Step executes one instruction, with every per-instruction check: it is
// the reference interpreter the fast path must be indistinguishable
// from, and the API for callers that need instruction granularity.
func (m *Machine) Step() error {
	// Deliver profiling interrupts whose skid has elapsed: the delivered
	// PC is the next instruction to issue, i.e. the current PC.
	if len(m.pending) > 0 {
		m.deliverPending()
	}
	if m.ClockTickCycles > 0 && m.stats.Cycles >= m.nextTick {
		// One callback per elapsed tick period: a single long-running
		// instruction (a stalled syscall, say) that spans N periods
		// yields N ticks, keeping clock profiles in step with
		// stats.ClockTicks instead of undercounting.
		for m.stats.Cycles >= m.nextTick {
			m.nextTick += m.ClockTickCycles
			m.stats.ClockTicks++
			if m.OnClockTick != nil {
				m.OnClockTick(&ClockTick{PC: m.PC, Callstack: m.callstackScratch(), Cycles: m.stats.Cycles})
			}
		}
	}

	pc := m.PC
	off := pc - TextBase
	if off >= m.textSize || pc%isa.InstrBytes != 0 {
		return &Trap{Kind: TrapBadPC, PC: pc}
	}
	d := &m.dec[off/isa.InstrBytes]

	m.stats.Instrs++
	if m.Cfg.MaxInstrs > 0 && m.stats.Instrs > m.Cfg.MaxInstrs {
		return &Trap{Kind: TrapBudget, PC: pc}
	}

	cost, err := m.exec1(d, pc)
	if err != nil {
		return err
	}
	m.count(hwc.EvInstrs, 1, pc, 0, false)
	m.count(hwc.EvCycles, cost, pc, 0, false)
	return nil
}

// exec1 executes the predecoded instruction d at pc: instruction fetch,
// dispatch, cycle accounting and the PC/NPC advance. Both the reference
// stepper and the fast inner loop retire instructions through it, so the
// two paths cannot diverge on architectural state. On a trap the PC does
// not advance and no cycles are charged (matching the pre-decode
// stepper), though fetch side effects already taken (I$ state, the icm
// event) remain.
func (m *Machine) exec1(d *isa.Decoded, pc uint64) (uint64, error) {
	cost := uint64(d.Cost)

	// Instruction fetch: probe the I$ only when leaving the current
	// fetch line (sequential fetches within a line are free).
	if line := pc >> m.icLineShift; line != m.lastFetchLine {
		m.lastFetchLine = line
		if hit, _ := m.IC.Access(pc, false, true); !hit {
			m.stats.ICMisses++
			cost += uint64(m.Cfg.ICMissStall)
			m.count(hwc.EvICMiss, 1, pc, 0, false)
		}
	}
	nextNPC := m.NPC + isa.InstrBytes

	switch d.Class {
	case isa.ClNop:
		// nothing
	case isa.ClLdB, isa.ClLdUB, isa.ClLdW, isa.ClLdX,
		isa.ClStB, isa.ClStW, isa.ClStX, isa.ClPrefetch:
		addr := uint64(m.Regs[d.Rs1] + m.src2(d))
		extra, err := m.access(d, pc, addr)
		if err != nil {
			return 0, err
		}
		cost += extra
	case isa.ClAdd:
		m.wreg(d.Rd, m.Regs[d.Rs1]+m.src2(d))
	case isa.ClSub:
		m.wreg(d.Rd, m.Regs[d.Rs1]-m.src2(d))
	case isa.ClMul:
		m.wreg(d.Rd, m.Regs[d.Rs1]*m.src2(d))
	case isa.ClDiv:
		b := m.src2(d)
		if b == 0 {
			m.wreg(d.Rd, 0)
			return 0, &Trap{Kind: TrapDivZero, PC: pc}
		}
		m.wreg(d.Rd, m.Regs[d.Rs1]/b)
	case isa.ClRem:
		b := m.src2(d)
		if b == 0 {
			m.wreg(d.Rd, 0)
			return 0, &Trap{Kind: TrapDivZero, PC: pc}
		}
		m.wreg(d.Rd, m.Regs[d.Rs1]%b)
	case isa.ClAnd:
		m.wreg(d.Rd, m.Regs[d.Rs1]&m.src2(d))
	case isa.ClOr:
		m.wreg(d.Rd, m.Regs[d.Rs1]|m.src2(d))
	case isa.ClXor:
		m.wreg(d.Rd, m.Regs[d.Rs1]^m.src2(d))
	case isa.ClSll:
		m.wreg(d.Rd, m.Regs[d.Rs1]<<(uint64(m.src2(d))&63))
	case isa.ClSrl:
		m.wreg(d.Rd, int64(uint64(m.Regs[d.Rs1])>>(uint64(m.src2(d))&63)))
	case isa.ClSra:
		m.wreg(d.Rd, m.Regs[d.Rs1]>>(uint64(m.src2(d))&63))
	case isa.ClMovImm:
		m.wreg(d.Rd, d.Imm) // sethi: immediate pre-shifted at decode
	case isa.ClSetHi:
		m.wreg(d.Rd, m.src2(d)<<isa.SetHiShift)
	case isa.ClCmp:
		m.setCC(m.Regs[d.Rs1], m.src2(d))
	case isa.ClBranch:
		if m.cond(d.Op) {
			nextNPC = uint64(d.Imm) // absolute target, precomputed
		}
	case isa.ClCall:
		m.Regs[isa.O7] = int64(pc)
		m.callstack = append(m.callstack, pc)
		nextNPC = uint64(d.Imm)
	case isa.ClJmpl:
		target := uint64(m.Regs[d.Rs1] + m.src2(d))
		m.wreg(d.Rd, int64(pc))
		if d.Flags&isa.DFlagRet != 0 && len(m.callstack) > 0 {
			m.callstack = m.callstack[:len(m.callstack)-1]
		}
		nextNPC = target
	case isa.ClSyscall:
		res, extra, err := m.doSyscall(m.src2(d))
		if err != nil {
			return 0, err
		}
		m.wreg(isa.O0, res)
		cost += extra
		m.stats.SyscallCycles += extra
	case isa.ClHalt:
		m.halted = true
	}

	m.stats.Cycles += cost
	m.PC = m.NPC
	m.NPC = nextNPC
	return cost, nil
}

// src2 selects the second operand: the predecoded immediate or Rs2.
func (m *Machine) src2(d *isa.Decoded) int64 {
	if d.Flags&isa.DFlagImm != 0 {
		return d.Imm
	}
	return m.Regs[d.Rs2]
}

func (m *Machine) wreg(r isa.Reg, v int64) {
	if r != isa.G0 {
		m.Regs[r] = v
	}
}

func (m *Machine) setCC(a, b int64) {
	r := a - b
	m.ccZ = r == 0
	m.ccN = r < 0
	m.ccV = (a < 0) != (b < 0) && (r < 0) != (a < 0)
	m.ccC = uint64(a) < uint64(b)
}

func (m *Machine) cond(op isa.Op) bool {
	switch op {
	case isa.Ba:
		return true
	case isa.Be:
		return m.ccZ
	case isa.Bne:
		return !m.ccZ
	case isa.Bg:
		return !(m.ccZ || (m.ccN != m.ccV))
	case isa.Bge:
		return m.ccN == m.ccV
	case isa.Bl:
		return m.ccN != m.ccV
	case isa.Ble:
		return m.ccZ || (m.ccN != m.ccV)
	case isa.Bgu:
		return !(m.ccC || m.ccZ)
	case isa.Bgeu:
		return !m.ccC
	case isa.Blu:
		return m.ccC
	case isa.Bleu:
		return m.ccC || m.ccZ
	}
	return false
}

// access performs the memory reference of d at effective address addr
// and returns the extra stall cycles.
func (m *Machine) access(d *isa.Decoded, pc, addr uint64) (uint64, error) {
	if d.Class != isa.ClPrefetch && addr&uint64(d.MemSize-1) != 0 {
		return 0, &Trap{Kind: TrapMisaligned, PC: pc, Addr: addr}
	}
	seg, pageSize := m.segment(addr)
	if seg == SegNone {
		if d.Class == isa.ClPrefetch {
			return 0, nil // prefetches never fault
		}
		return 0, &Trap{Kind: TrapSegv, PC: pc, Addr: addr}
	}

	var stall uint64
	if !m.DTLB.Lookup(addr&^(pageSize-1), pageSize) {
		m.stats.DTLBMisses++
		stall += tlb.MissPenaltyCycles
		m.count(hwc.EvDTLBMiss, 1, pc, addr, true)
	}

	// A D$ hit generates no counter events and no stall for loads, stores
	// and prefetches alike, so the MRU fast path can absorb it without
	// entering the hierarchy (the state updates are exactly Access's).
	isStore := d.Class.IsStore()
	if m.Hier.D.HitMRU(addr, isStore) {
		if isStore {
			m.stats.Stores++
		} else if d.Class != isa.ClPrefetch {
			m.stats.Loads++
		}
	} else {
		// One Result covers all three access kinds: stores never report
		// read misses and prefetches never report stall, so the
		// unconditional checks below stay exact without copying fields
		// through a second struct.
		var res cache.Result
		switch {
		case d.Class.IsLoad():
			m.stats.Loads++
			res = m.Hier.Load(addr)
		case isStore:
			m.stats.Stores++
			res = m.Hier.Store(addr)
		default: // prefetch
			res = m.Hier.Prefetch(addr)
		}
		if res.DCRdMiss {
			m.stats.DCRdMisses++
			m.count(hwc.EvDCRdMiss, 1, pc, addr, true)
		}
		if res.ECRef {
			m.stats.ECRefs++
			m.count(hwc.EvECRef, 1, pc, addr, true)
		}
		if res.ECRdMiss {
			m.stats.ECRdMisses++
			m.count(hwc.EvECRdMiss, 1, pc, addr, true)
		}
		if res.Stall > 0 {
			m.stats.ECStallCycles += uint64(res.Stall)
			m.count(hwc.EvECStall, uint64(res.Stall), pc, addr, true)
		}
		stall += uint64(res.Stall)
	}

	// Perform the architectural access.
	switch d.Class {
	case isa.ClLdB:
		m.wreg(d.Rd, int64(int8(m.Mem.Read8(addr))))
	case isa.ClLdUB:
		m.wreg(d.Rd, int64(m.Mem.Read8(addr)))
	case isa.ClLdW:
		m.wreg(d.Rd, int64(int32(m.Mem.Read32(addr))))
	case isa.ClLdX:
		m.wreg(d.Rd, int64(m.Mem.Read64(addr)))
	case isa.ClStB:
		m.Mem.Write8(addr, uint8(m.Regs[d.Rd]))
	case isa.ClStW:
		m.Mem.Write32(addr, uint32(m.Regs[d.Rd]))
	case isa.ClStX:
		m.Mem.Write64(addr, uint64(m.Regs[d.Rd]))
	}
	return stall, nil
}

// count feeds n events into whichever PIC registers are armed for ev, and
// schedules overflow signal delivery with per-event skid. The armed-event
// mask makes the common case — no counter interested — a single load and
// branch instead of a scan of both registers. During a budgeted batch
// (evBatch) armed events accumulate in evDelta instead: the batch horizon
// proves none of them can overflow, so the deferred flush needs no
// trigger PC or effective address.
func (m *Machine) count(ev hwc.Event, n uint64, trigPC, ea uint64, hasEA bool) {
	if mask := m.armed[ev]; mask != 0 {
		if m.evBatch {
			m.evDelta[ev] += n
			return
		}
		m.countArmed(mask, ev, n, trigPC, ea, hasEA)
	}
}

// evFlush leaves batch-counting mode and feeds the accumulated per-event
// deltas to the armed counters. The runBatch budget guarantees no delta
// can reach a counter's overflow threshold — the reference execution
// cannot overflow within the batch's instruction span either — so these
// Adds never fire an overflow, draw a skid, or need attribution.
func (m *Machine) evFlush() {
	m.evBatch = false
	for pic, c := range m.counters {
		if c == nil {
			continue
		}
		if d := m.evDelta[c.Event]; d != 0 {
			m.evDelta[c.Event] = 0
			m.countOn(pic, c.Event, d, 0, 0, false)
		}
	}
}

func (m *Machine) countArmed(mask uint8, ev hwc.Event, n uint64, trigPC, ea uint64, hasEA bool) {
	if mask&1 != 0 {
		m.countOn(0, ev, n, trigPC, ea, hasEA)
	}
	if mask&2 != 0 {
		m.countOn(1, ev, n, trigPC, ea, hasEA)
	}
}

func (m *Machine) countOn(pic int, ev hwc.Event, n uint64, trigPC, ea uint64, hasEA bool) {
	overflows := m.counters[pic].Add(n)
	for i := 0; i < overflows; i++ {
		m.pending = append(m.pending, pendingSig{
			remaining: m.skid.Instrs(ev),
			ev: OverflowEvent{
				PIC:       pic,
				Event:     ev,
				TruePC:    trigPC,
				TrueEA:    ea,
				TrueHasEA: hasEA,
			},
		})
	}
}

// deliverPending ages pending overflow signals and fires those whose skid
// has elapsed. Delivered state (PC, registers, callstack) is the live
// machine state at delivery time. The callstack is a reusable scratch
// buffer — see OverflowEvent.Callstack — keeping delivery allocation-free.
func (m *Machine) deliverPending() {
	kept := m.pending[:0]
	for i := range m.pending {
		p := &m.pending[i]
		p.remaining--
		if p.remaining > 0 {
			kept = append(kept, *p)
			continue
		}
		if m.OnOverflow != nil {
			e := p.ev
			e.DeliveredPC = m.PC
			e.Regs = m.Regs
			e.Callstack = m.callstackScratch()
			e.Cycles = m.stats.Cycles
			m.OnOverflow(&e)
		}
	}
	m.pending = kept
}

// callstackScratch snapshots the shadow call stack into a reusable
// buffer. The result is only valid until the next snapshot; event
// callbacks must copy it to retain it.
func (m *Machine) callstackScratch() []uint64 {
	m.csScratch = append(m.csScratch[:0], m.callstack...)
	return m.csScratch
}
