package machine

import (
	"dsprof/internal/hwc"
	"dsprof/internal/isa"
	"dsprof/internal/tlb"
)

// Base pipeline cost of each opcode, in cycles, before memory stalls.
var baseCost = func() [isa.NumOps]uint8 {
	var c [isa.NumOps]uint8
	for op := isa.Op(0); op < isa.NumOps; op++ {
		switch {
		case op.IsLoad():
			c[op] = 2
		case op == isa.Mul:
			c[op] = 6
		case op == isa.Div || op == isa.Rem:
			c[op] = 40
		default:
			c[op] = 1
		}
	}
	return c
}()

// Run executes instructions until the program halts or a trap occurs.
func (m *Machine) Run() error {
	for !m.halted {
		if err := m.Step(); err != nil {
			return err
		}
	}
	return nil
}

// Step executes one instruction.
func (m *Machine) Step() error {
	// Deliver profiling interrupts whose skid has elapsed: the delivered
	// PC is the next instruction to issue, i.e. the current PC.
	if len(m.pending) > 0 {
		m.deliverPending()
	}
	if m.ClockTickCycles > 0 && m.stats.Cycles >= m.nextTick {
		for m.stats.Cycles >= m.nextTick {
			m.nextTick += m.ClockTickCycles
			m.stats.ClockTicks++
		}
		if m.OnClockTick != nil {
			m.OnClockTick(&ClockTick{PC: m.PC, Callstack: m.Callstack(), Cycles: m.stats.Cycles})
		}
	}

	pc := m.PC
	if pc < TextBase || pc >= m.textEnd || pc%isa.InstrBytes != 0 {
		return &Trap{Kind: TrapBadPC, PC: pc}
	}
	in := &m.text[(pc-TextBase)/isa.InstrBytes]

	m.stats.Instrs++
	if m.Cfg.MaxInstrs > 0 && m.stats.Instrs > m.Cfg.MaxInstrs {
		return &Trap{Kind: TrapBudget, PC: pc}
	}

	cost := uint64(baseCost[in.Op])

	// Instruction fetch: probe the I$ only when leaving the current
	// fetch line (sequential fetches within a line are free).
	if line := pc / uint64(m.Cfg.ICache.LineBytes); line != m.lastFetchLine {
		m.lastFetchLine = line
		if hit, _ := m.IC.Access(pc, false, true); !hit {
			m.stats.ICMisses++
			cost += uint64(m.Cfg.ICMissStall)
			m.count(hwc.EvICMiss, 1, pc, 0, false)
		}
	}
	nextNPC := m.NPC + isa.InstrBytes
	var src2 int64
	if in.UseImm {
		src2 = int64(in.Imm)
	} else {
		src2 = m.Regs[in.Rs2]
	}

	switch {
	case in.Op == isa.Nop:
		// nothing
	case in.Op.IsMem():
		addr := uint64(m.Regs[in.Rs1] + src2)
		extra, err := m.access(in, pc, addr)
		if err != nil {
			return err
		}
		cost += extra
	case in.Op.IsALU():
		m.wreg(in.Rd, m.alu(in.Op, m.Regs[in.Rs1], src2, pc))
		if m.trapped != nil {
			t := m.trapped
			m.trapped = nil
			return t
		}
	case in.Op == isa.Cmp:
		m.setCC(m.Regs[in.Rs1], src2)
	case in.Op.IsBranch():
		if m.cond(in.Op) {
			t, _ := in.BranchTarget(pc)
			nextNPC = t
		}
	case in.Op == isa.Call:
		m.Regs[isa.O7] = int64(pc)
		m.callstack = append(m.callstack, pc)
		t, _ := in.BranchTarget(pc)
		nextNPC = t
	case in.Op == isa.Jmpl:
		target := uint64(m.Regs[in.Rs1] + src2)
		m.wreg(in.Rd, int64(pc))
		if in.Rd == isa.G0 && in.Rs1 == isa.O7 && len(m.callstack) > 0 {
			m.callstack = m.callstack[:len(m.callstack)-1]
		}
		nextNPC = target
	case in.Op == isa.Syscall:
		res, extra, err := m.doSyscall(src2)
		if err != nil {
			return err
		}
		m.wreg(isa.O0, res)
		cost += extra
		m.stats.SyscallCycles += extra
	case in.Op == isa.Halt:
		m.halted = true
	}

	m.stats.Cycles += cost
	m.count(hwc.EvInstrs, 1, pc, 0, false)
	m.count(hwc.EvCycles, cost, pc, 0, false)

	m.PC = m.NPC
	m.NPC = nextNPC
	return nil
}

func (m *Machine) alu(op isa.Op, a, b int64, pc uint64) int64 {
	switch op {
	case isa.Add:
		return a + b
	case isa.Sub:
		return a - b
	case isa.Mul:
		return a * b
	case isa.Div:
		if b == 0 {
			m.trapped = &Trap{Kind: TrapDivZero, PC: pc}
			return 0
		}
		return a / b
	case isa.Rem:
		if b == 0 {
			m.trapped = &Trap{Kind: TrapDivZero, PC: pc}
			return 0
		}
		return a % b
	case isa.And:
		return a & b
	case isa.Or:
		return a | b
	case isa.Xor:
		return a ^ b
	case isa.Sll:
		return a << (uint64(b) & 63)
	case isa.Srl:
		return int64(uint64(a) >> (uint64(b) & 63))
	case isa.Sra:
		return a >> (uint64(b) & 63)
	case isa.SetHi:
		return b << isa.SetHiShift
	}
	return 0
}

func (m *Machine) wreg(r isa.Reg, v int64) {
	if r != isa.G0 {
		m.Regs[r] = v
	}
}

func (m *Machine) setCC(a, b int64) {
	r := a - b
	m.ccZ = r == 0
	m.ccN = r < 0
	m.ccV = (a < 0) != (b < 0) && (r < 0) != (a < 0)
	m.ccC = uint64(a) < uint64(b)
}

func (m *Machine) cond(op isa.Op) bool {
	switch op {
	case isa.Ba:
		return true
	case isa.Be:
		return m.ccZ
	case isa.Bne:
		return !m.ccZ
	case isa.Bg:
		return !(m.ccZ || (m.ccN != m.ccV))
	case isa.Bge:
		return m.ccN == m.ccV
	case isa.Bl:
		return m.ccN != m.ccV
	case isa.Ble:
		return m.ccZ || (m.ccN != m.ccV)
	case isa.Bgu:
		return !(m.ccC || m.ccZ)
	case isa.Bgeu:
		return !m.ccC
	case isa.Blu:
		return m.ccC
	case isa.Bleu:
		return m.ccC || m.ccZ
	}
	return false
}

// access performs the memory reference of in at effective address addr
// and returns the extra stall cycles.
func (m *Machine) access(in *isa.Instr, pc, addr uint64) (uint64, error) {
	size := in.Op.MemBytes()
	if in.Op != isa.Prefetch && addr%uint64(size) != 0 {
		return 0, &Trap{Kind: TrapMisaligned, PC: pc, Addr: addr}
	}
	seg, pageSize := m.segment(addr)
	if seg == SegNone {
		if in.Op == isa.Prefetch {
			return 0, nil // prefetches never fault
		}
		return 0, &Trap{Kind: TrapSegv, PC: pc, Addr: addr}
	}

	var stall uint64
	if !m.DTLB.Lookup(addr&^(pageSize-1), pageSize) {
		m.stats.DTLBMisses++
		stall += tlb.MissPenaltyCycles
		m.count(hwc.EvDTLBMiss, 1, pc, addr, true)
	}

	var r struct {
		ecRef, ecRdMiss, dcRdMiss bool
		stall                     int
	}
	switch {
	case in.Op.IsLoad():
		m.stats.Loads++
		res := m.Hier.Load(addr)
		r.ecRef, r.ecRdMiss, r.dcRdMiss, r.stall = res.ECRef, res.ECRdMiss, res.DCRdMiss, res.Stall
	case in.Op.IsStore():
		m.stats.Stores++
		res := m.Hier.Store(addr)
		r.ecRef, r.stall = res.ECRef, res.Stall
	default: // prefetch
		res := m.Hier.Prefetch(addr)
		r.ecRef = res.ECRef
	}
	if r.dcRdMiss {
		m.stats.DCRdMisses++
		m.count(hwc.EvDCRdMiss, 1, pc, addr, true)
	}
	if r.ecRef {
		m.stats.ECRefs++
		m.count(hwc.EvECRef, 1, pc, addr, true)
	}
	if r.ecRdMiss {
		m.stats.ECRdMisses++
		m.count(hwc.EvECRdMiss, 1, pc, addr, true)
	}
	if r.stall > 0 {
		m.stats.ECStallCycles += uint64(r.stall)
		m.count(hwc.EvECStall, uint64(r.stall), pc, addr, true)
	}
	stall += uint64(r.stall)

	// Perform the architectural access.
	switch in.Op {
	case isa.LdB:
		m.wreg(in.Rd, int64(int8(m.Mem.Read8(addr))))
	case isa.LdUB:
		m.wreg(in.Rd, int64(m.Mem.Read8(addr)))
	case isa.LdW:
		m.wreg(in.Rd, int64(int32(m.Mem.Read32(addr))))
	case isa.LdX:
		m.wreg(in.Rd, int64(m.Mem.Read64(addr)))
	case isa.StB:
		m.Mem.Write8(addr, uint8(m.Regs[in.Rd]))
	case isa.StW:
		m.Mem.Write32(addr, uint32(m.Regs[in.Rd]))
	case isa.StX:
		m.Mem.Write64(addr, uint64(m.Regs[in.Rd]))
	}
	return stall, nil
}

// count feeds n events into whichever PIC registers are armed for ev, and
// schedules overflow signal delivery with per-event skid.
func (m *Machine) count(ev hwc.Event, n uint64, trigPC, ea uint64, hasEA bool) {
	for pic := 0; pic < 2; pic++ {
		c := m.counters[pic]
		if c == nil || c.Event != ev {
			continue
		}
		overflows := c.Add(n)
		for i := 0; i < overflows; i++ {
			m.pending = append(m.pending, pendingSig{
				remaining: m.skid.Instrs(ev),
				ev: OverflowEvent{
					PIC:       pic,
					Event:     ev,
					TruePC:    trigPC,
					TrueEA:    ea,
					TrueHasEA: hasEA,
				},
			})
		}
	}
}

// deliverPending ages pending overflow signals and fires those whose skid
// has elapsed. Delivered state (PC, registers, callstack) is the live
// machine state at delivery time.
func (m *Machine) deliverPending() {
	kept := m.pending[:0]
	for i := range m.pending {
		p := &m.pending[i]
		p.remaining--
		if p.remaining > 0 {
			kept = append(kept, *p)
			continue
		}
		if m.OnOverflow != nil {
			e := p.ev
			e.DeliveredPC = m.PC
			e.Regs = m.Regs
			e.Callstack = m.Callstack()
			e.Cycles = m.stats.Cycles
			m.OnOverflow(&e)
		}
	}
	m.pending = kept
}
