package machine

import (
	"testing"

	"dsprof/internal/asm"
	"dsprof/internal/hwc"
	"dsprof/internal/isa"
)

// build assembles a program with the builder function and returns a
// machine ready to run it.
func build(t *testing.T, cfg Config, f func(b *asm.Builder)) *Machine {
	t.Helper()
	b := asm.NewBuilder(TextBase)
	f(b)
	text, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadProgram(text, nil, TextBase); err != nil {
		t.Fatal(err)
	}
	return m
}

func run(t *testing.T, m *Machine) {
	t.Helper()
	if err := m.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func movImm(rd isa.Reg, v int32) isa.Instr {
	return isa.Instr{Op: isa.Or, Rd: rd, Rs1: isa.G0, UseImm: true, Imm: v}
}

func TestArithmetic(t *testing.T) {
	m := build(t, DefaultConfig(), func(b *asm.Builder) {
		b.Emit(movImm(isa.O0, 6))
		b.Emit(movImm(isa.O1, 7))
		b.Emit(isa.Instr{Op: isa.Mul, Rd: isa.O2, Rs1: isa.O0, Rs2: isa.O1})
		b.Emit(isa.Instr{Op: isa.Add, Rd: isa.O2, Rs1: isa.O2, UseImm: true, Imm: 8})
		b.Emit(isa.Instr{Op: isa.Sub, Rd: isa.O3, Rs1: isa.O2, UseImm: true, Imm: 50})
		b.Emit(isa.Instr{Op: isa.Halt})
	})
	run(t, m)
	if m.Regs[isa.O2] != 50 || m.Regs[isa.O3] != 0 {
		t.Errorf("o2=%d o3=%d", m.Regs[isa.O2], m.Regs[isa.O3])
	}
	if m.Stats().Instrs != 6 {
		t.Errorf("instrs=%d", m.Stats().Instrs)
	}
}

func TestG0Hardwired(t *testing.T) {
	m := build(t, DefaultConfig(), func(b *asm.Builder) {
		b.Emit(movImm(isa.G0, 99))
		b.Emit(isa.Instr{Op: isa.Add, Rd: isa.O0, Rs1: isa.G0, UseImm: true, Imm: 5})
		b.Emit(isa.Instr{Op: isa.Halt})
	})
	run(t, m)
	if m.Regs[isa.G0] != 0 || m.Regs[isa.O0] != 5 {
		t.Errorf("g0=%d o0=%d", m.Regs[isa.G0], m.Regs[isa.O0])
	}
}

func TestSetHiOrIdiom(t *testing.T) {
	const want = 0x1234_5678
	m := build(t, DefaultConfig(), func(b *asm.Builder) {
		b.Emit(isa.Instr{Op: isa.SetHi, Rd: isa.O0, UseImm: true, Imm: want >> isa.SetHiShift})
		b.Emit(isa.Instr{Op: isa.Or, Rd: isa.O0, Rs1: isa.O0, UseImm: true, Imm: want & (1<<isa.SetHiShift - 1)})
		b.Emit(isa.Instr{Op: isa.Halt})
	})
	run(t, m)
	if m.Regs[isa.O0] != want {
		t.Errorf("sethi/or = %#x, want %#x", m.Regs[isa.O0], want)
	}
}

func TestLoopWithDelaySlot(t *testing.T) {
	// sum = 0; for i = 10; i > 0; i-- { sum += i }  => 55
	m := build(t, DefaultConfig(), func(b *asm.Builder) {
		b.Emit(movImm(isa.O0, 0))  // sum
		b.Emit(movImm(isa.O1, 10)) // i
		if err := b.Label("loop"); err != nil {
			t.Fatal(err)
		}
		b.Emit(isa.Instr{Op: isa.Add, Rd: isa.O0, Rs1: isa.O0, Rs2: isa.O1})
		b.Emit(isa.Instr{Op: isa.Sub, Rd: isa.O1, Rs1: isa.O1, UseImm: true, Imm: 1})
		b.Emit(isa.Instr{Op: isa.Cmp, Rs1: isa.O1, UseImm: true, Imm: 0})
		b.EmitBranch(isa.Bg, "loop")
		b.Emit(isa.Instr{Op: isa.Nop}) // delay slot
		b.Emit(isa.Instr{Op: isa.Halt})
	})
	run(t, m)
	if m.Regs[isa.O0] != 55 {
		t.Errorf("sum = %d, want 55", m.Regs[isa.O0])
	}
}

func TestDelaySlotExecutesBeforeBranchTarget(t *testing.T) {
	// The instruction after a taken branch (the delay slot) must execute.
	m := build(t, DefaultConfig(), func(b *asm.Builder) {
		b.EmitBranch(isa.Ba, "target")
		b.Emit(movImm(isa.O0, 42)) // delay slot: executes
		b.Emit(movImm(isa.O0, 1))  // skipped
		b.Label("target")
		b.Emit(isa.Instr{Op: isa.Halt})
	})
	run(t, m)
	if m.Regs[isa.O0] != 42 {
		t.Errorf("delay slot did not execute: o0=%d", m.Regs[isa.O0])
	}
}

func TestConditionalBranches(t *testing.T) {
	cases := []struct {
		op    isa.Op
		a, b  int32
		taken bool
	}{
		{isa.Be, 5, 5, true}, {isa.Be, 5, 6, false},
		{isa.Bne, 5, 6, true}, {isa.Bne, 5, 5, false},
		{isa.Bg, 6, 5, true}, {isa.Bg, 5, 5, false}, {isa.Bg, -1, 0, false},
		{isa.Bge, 5, 5, true}, {isa.Bge, 4, 5, false}, {isa.Bge, -3, -4, true},
		{isa.Bl, -1, 0, true}, {isa.Bl, 0, 0, false},
		{isa.Ble, 0, 0, true}, {isa.Ble, 1, 0, false},
		{isa.Bgu, 0, -1, false}, // unsigned: 0 < 0xffff... so not greater
		{isa.Bgeu, -1, 1, true}, // unsigned: big >= 1
		{isa.Blu, 1, -1, true},
		{isa.Bleu, 0, 0, true}, {isa.Bleu, 2, 1, false},
		{isa.Ba, 0, 0, true},
	}
	for _, c := range cases {
		m := build(t, DefaultConfig(), func(b *asm.Builder) {
			b.Emit(movImm(isa.O1, c.a))
			b.Emit(movImm(isa.O2, c.b))
			b.Emit(isa.Instr{Op: isa.Cmp, Rs1: isa.O1, Rs2: isa.O2})
			b.EmitBranch(c.op, "taken")
			b.Emit(isa.Instr{Op: isa.Nop})
			b.Emit(movImm(isa.O0, 0))
			b.Emit(isa.Instr{Op: isa.Halt})
			b.Label("taken")
			b.Emit(movImm(isa.O0, 1))
			b.Emit(isa.Instr{Op: isa.Halt})
		})
		run(t, m)
		got := m.Regs[isa.O0] == 1
		if got != c.taken {
			t.Errorf("%v with a=%d b=%d: taken=%v, want %v", c.op, c.a, c.b, got, c.taken)
		}
	}
}

func TestCallReturnAndCallstack(t *testing.T) {
	var depthAtEvent int
	m := build(t, DefaultConfig(), func(b *asm.Builder) {
		b.EmitCall("fn")
		b.Emit(isa.Instr{Op: isa.Nop}) // delay slot
		b.Emit(isa.Instr{Op: isa.Add, Rd: isa.O0, Rs1: isa.O0, UseImm: true, Imm: 1})
		b.Emit(isa.Instr{Op: isa.Halt})
		b.Label("fn")
		b.Emit(movImm(isa.O0, 10))
		b.Emit(isa.Instr{Op: isa.Jmpl, Rd: isa.G0, Rs1: isa.O7, UseImm: true, Imm: 8}) // retl
		b.Emit(isa.Instr{Op: isa.Nop})                                                 // delay slot
	})
	// Snapshot call depth while inside fn.
	m.ClockTickCycles = 1
	m.OnClockTick = func(ct *ClockTick) {
		if ct.PC >= TextBase+4*isa.InstrBytes && len(ct.Callstack) > depthAtEvent {
			depthAtEvent = len(ct.Callstack)
		}
	}
	run(t, m)
	if m.Regs[isa.O0] != 11 {
		t.Errorf("o0 = %d, want 11 (call returned to wrong place?)", m.Regs[isa.O0])
	}
	if depthAtEvent != 1 {
		t.Errorf("callstack depth inside fn = %d, want 1", depthAtEvent)
	}
	if len(m.Callstack()) != 0 {
		t.Errorf("callstack not empty after return: %v", m.Callstack())
	}
}

func TestHeapLoadStore(t *testing.T) {
	m := build(t, DefaultConfig(), func(b *asm.Builder) {
		b.Emit(movImm(isa.O0, 64))
		b.Emit(isa.Instr{Op: isa.Syscall, UseImm: true, Imm: SysMalloc})
		b.Emit(isa.Instr{Op: isa.Or, Rd: isa.L0, Rs1: isa.G0, Rs2: isa.O0}) // save ptr
		b.Emit(movImm(isa.O1, 1234))
		b.Emit(isa.Instr{Op: isa.StX, Rd: isa.O1, Rs1: isa.L0, UseImm: true, Imm: 8})
		b.Emit(isa.Instr{Op: isa.LdX, Rd: isa.O2, Rs1: isa.L0, UseImm: true, Imm: 8})
		b.Emit(isa.Instr{Op: isa.StW, Rd: isa.O1, Rs1: isa.L0, UseImm: true, Imm: 16})
		b.Emit(isa.Instr{Op: isa.LdW, Rd: isa.O3, Rs1: isa.L0, UseImm: true, Imm: 16})
		b.Emit(isa.Instr{Op: isa.StB, Rd: isa.O1, Rs1: isa.L0, UseImm: true, Imm: 20})
		b.Emit(isa.Instr{Op: isa.LdUB, Rd: isa.O4, Rs1: isa.L0, UseImm: true, Imm: 20})
		b.Emit(isa.Instr{Op: isa.Halt})
	})
	run(t, m)
	if m.Regs[isa.O2] != 1234 || m.Regs[isa.O3] != 1234 || m.Regs[isa.O4] != 1234&0xff {
		t.Errorf("o2=%d o3=%d o4=%d", m.Regs[isa.O2], m.Regs[isa.O3], m.Regs[isa.O4])
	}
	if len(m.Allocs()) != 1 || m.Allocs()[0].Size != 64 {
		t.Errorf("allocs = %+v", m.Allocs())
	}
}

func TestSignExtension(t *testing.T) {
	m := build(t, DefaultConfig(), func(b *asm.Builder) {
		b.Emit(movImm(isa.O0, 16))
		b.Emit(isa.Instr{Op: isa.Syscall, UseImm: true, Imm: SysMalloc})
		b.Emit(movImm(isa.O1, -1))
		b.Emit(isa.Instr{Op: isa.StW, Rd: isa.O1, Rs1: isa.O0, UseImm: true, Imm: 0})
		b.Emit(isa.Instr{Op: isa.LdW, Rd: isa.O2, Rs1: isa.O0, UseImm: true, Imm: 0})
		b.Emit(isa.Instr{Op: isa.StB, Rd: isa.O1, Rs1: isa.O0, UseImm: true, Imm: 8})
		b.Emit(isa.Instr{Op: isa.LdB, Rd: isa.O3, Rs1: isa.O0, UseImm: true, Imm: 8})
		b.Emit(isa.Instr{Op: isa.LdUB, Rd: isa.O4, Rs1: isa.O0, UseImm: true, Imm: 8})
		b.Emit(isa.Instr{Op: isa.Halt})
	})
	run(t, m)
	if m.Regs[isa.O2] != -1 || m.Regs[isa.O3] != -1 || m.Regs[isa.O4] != 255 {
		t.Errorf("o2=%d o3=%d o4=%d", m.Regs[isa.O2], m.Regs[isa.O3], m.Regs[isa.O4])
	}
}

func TestStackAccess(t *testing.T) {
	m := build(t, DefaultConfig(), func(b *asm.Builder) {
		b.Emit(isa.Instr{Op: isa.Sub, Rd: isa.SP, Rs1: isa.SP, UseImm: true, Imm: 32})
		b.Emit(movImm(isa.O0, 7))
		b.Emit(isa.Instr{Op: isa.StX, Rd: isa.O0, Rs1: isa.SP, UseImm: true, Imm: 0})
		b.Emit(isa.Instr{Op: isa.LdX, Rd: isa.O1, Rs1: isa.SP, UseImm: true, Imm: 0})
		b.Emit(isa.Instr{Op: isa.Halt})
	})
	run(t, m)
	if m.Regs[isa.O1] != 7 {
		t.Errorf("stack roundtrip = %d", m.Regs[isa.O1])
	}
}

func TestInputOutputSyscalls(t *testing.T) {
	m := build(t, DefaultConfig(), func(b *asm.Builder) {
		b.Emit(isa.Instr{Op: isa.Syscall, UseImm: true, Imm: SysReadLong})
		b.Emit(isa.Instr{Op: isa.Syscall, UseImm: true, Imm: SysWriteLong})
		b.Emit(isa.Instr{Op: isa.Syscall, UseImm: true, Imm: SysInputLeft})
		b.Emit(isa.Instr{Op: isa.Syscall, UseImm: true, Imm: SysWriteLong})
		b.Emit(isa.Instr{Op: isa.Halt})
	})
	m.SetInput([]int64{41, 99})
	run(t, m)
	out := m.OutputLongs()
	if len(out) != 2 || out[0] != 41 || out[1] != 1 {
		t.Errorf("output = %v", out)
	}
}

func TestTraps(t *testing.T) {
	cases := []struct {
		name string
		kind TrapKind
		prog func(b *asm.Builder)
	}{
		{"misaligned", TrapMisaligned, func(b *asm.Builder) {
			b.Emit(movImm(isa.O0, 64))
			b.Emit(isa.Instr{Op: isa.Syscall, UseImm: true, Imm: SysMalloc})
			b.Emit(isa.Instr{Op: isa.LdX, Rd: isa.O1, Rs1: isa.O0, UseImm: true, Imm: 3})
		}},
		{"segv", TrapSegv, func(b *asm.Builder) {
			b.Emit(isa.Instr{Op: isa.LdX, Rd: isa.O1, Rs1: isa.G0, UseImm: true, Imm: 0})
		}},
		{"divzero", TrapDivZero, func(b *asm.Builder) {
			b.Emit(movImm(isa.O0, 10))
			b.Emit(isa.Instr{Op: isa.Div, Rd: isa.O1, Rs1: isa.O0, Rs2: isa.G0})
		}},
		{"input", TrapInputExhausted, func(b *asm.Builder) {
			b.Emit(isa.Instr{Op: isa.Syscall, UseImm: true, Imm: SysReadLong})
		}},
		{"badsys", TrapBadSyscall, func(b *asm.Builder) {
			b.Emit(isa.Instr{Op: isa.Syscall, UseImm: true, Imm: 999})
		}},
		{"badpc", TrapBadPC, func(b *asm.Builder) {
			b.Emit(isa.Instr{Op: isa.Nop}) // falls off the end
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := build(t, DefaultConfig(), c.prog)
			err := m.Run()
			trap, ok := err.(*Trap)
			if !ok || trap.Kind != c.kind {
				t.Errorf("Run = %v, want trap %v", err, c.kind)
			}
		})
	}
}

func TestInstructionBudget(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxInstrs = 100
	m := build(t, cfg, func(b *asm.Builder) {
		b.Label("spin")
		b.EmitBranch(isa.Ba, "spin")
		b.Emit(isa.Instr{Op: isa.Nop})
	})
	err := m.Run()
	trap, ok := err.(*Trap)
	if !ok || trap.Kind != TrapBudget {
		t.Errorf("Run = %v, want budget trap", err)
	}
}

func TestPrefetchNeverFaults(t *testing.T) {
	m := build(t, DefaultConfig(), func(b *asm.Builder) {
		b.Emit(isa.Instr{Op: isa.Prefetch, Rs1: isa.G0, UseImm: true, Imm: 0})
		b.Emit(isa.Instr{Op: isa.Halt})
	})
	run(t, m)
}

func TestCounterOverflowAndSkid(t *testing.T) {
	cfg := DefaultConfig()
	var events []*OverflowEvent
	// Strided loads over a fresh heap block: every load of a new 512-byte
	// E$ line is an E$ read miss.
	m := build(t, cfg, func(b *asm.Builder) {
		b.Emit(movImm(isa.O0, 1))
		b.Emit(isa.Instr{Op: isa.Sll, Rd: isa.O0, Rs1: isa.O0, UseImm: true, Imm: 20}) // 1 MB
		b.Emit(isa.Instr{Op: isa.Syscall, UseImm: true, Imm: SysMalloc})
		b.Emit(isa.Instr{Op: isa.Or, Rd: isa.L0, Rs1: isa.G0, Rs2: isa.O0})
		b.Emit(movImm(isa.O1, 1024)) // iterations
		b.Label("loop")
		b.Emit(isa.Instr{Op: isa.LdX, Rd: isa.O2, Rs1: isa.L0, UseImm: true, Imm: 0})
		b.Emit(isa.Instr{Op: isa.Add, Rd: isa.L0, Rs1: isa.L0, UseImm: true, Imm: 1024})
		b.Emit(isa.Instr{Op: isa.Sub, Rd: isa.O1, Rs1: isa.O1, UseImm: true, Imm: 1})
		b.Emit(isa.Instr{Op: isa.Cmp, Rs1: isa.O1, UseImm: true, Imm: 0})
		b.EmitBranch(isa.Bg, "loop")
		b.Emit(isa.Instr{Op: isa.Nop})
		b.Emit(isa.Instr{Op: isa.Halt})
	})
	if err := m.ArmCounter(0, hwc.EvECRdMiss, 100); err != nil {
		t.Fatal(err)
	}
	m.OnOverflow = func(e *OverflowEvent) { events = append(events, e) }
	run(t, m)
	if m.Stats().ECRdMisses < 1000 {
		t.Fatalf("ECRdMisses = %d, expected ~1024", m.Stats().ECRdMisses)
	}
	if len(events) < 9 || len(events) > 11 {
		t.Fatalf("got %d overflow events, want ~10", len(events))
	}
	loopLoad := uint64(TextBase + 5*isa.InstrBytes)
	for _, e := range events {
		if e.Event != hwc.EvECRdMiss || e.PIC != 0 {
			t.Errorf("event %+v has wrong identity", e)
		}
		if e.TruePC != loopLoad {
			t.Errorf("TruePC = %#x, want the loop load %#x", e.TruePC, loopLoad)
		}
		if !e.TrueHasEA || e.TrueEA < HeapBase {
			t.Errorf("ground-truth EA missing: %+v", e)
		}
		if e.DeliveredPC == e.TruePC {
			t.Errorf("delivered PC equals trigger PC; skid must be >= 1 instruction")
		}
	}
}

func TestTwoCountersAndArmValidation(t *testing.T) {
	m := build(t, DefaultConfig(), func(b *asm.Builder) {
		b.Emit(isa.Instr{Op: isa.Halt})
	})
	if err := m.ArmCounter(0, hwc.EvECRdMiss, 100); err != nil {
		t.Fatal(err)
	}
	if err := m.ArmCounter(1, hwc.EvECRdMiss, 100); err == nil {
		t.Error("arming same event on both registers should fail")
	}
	if err := m.ArmCounter(1, hwc.EvDTLBMiss, 100); err != nil {
		t.Error(err)
	}
	if err := m.ArmCounter(2, hwc.EvECRef, 100); err == nil {
		t.Error("PIC 2 should not exist (two counter registers)")
	}
	if err := m.ArmCounter(0, hwc.EvECRef, 0); err == nil {
		t.Error("zero interval accepted")
	}
}

func TestDTLBPreciseDelivery(t *testing.T) {
	// DTLB overflow events are precise: delivered PC is exactly trigger+4
	// in a straight-line sequence.
	var events []*OverflowEvent
	m := build(t, DefaultConfig(), func(b *asm.Builder) {
		b.Emit(movImm(isa.O0, 1))
		b.Emit(isa.Instr{Op: isa.Sll, Rd: isa.O0, Rs1: isa.O0, UseImm: true, Imm: 24}) // 16 MB
		b.Emit(isa.Instr{Op: isa.Syscall, UseImm: true, Imm: SysMalloc})
		b.Emit(isa.Instr{Op: isa.Or, Rd: isa.L0, Rs1: isa.G0, Rs2: isa.O0})
		b.Emit(movImm(isa.O1, 512))
		b.Label("loop")
		b.Emit(isa.Instr{Op: isa.LdX, Rd: isa.O2, Rs1: isa.L0, UseImm: true, Imm: 0})
		b.Emit(isa.Instr{Op: isa.Add, Rd: isa.L0, Rs1: isa.L0, Rs2: isa.O3})
		b.Emit(isa.Instr{Op: isa.Sub, Rd: isa.O1, Rs1: isa.O1, UseImm: true, Imm: 1})
		b.Emit(isa.Instr{Op: isa.Cmp, Rs1: isa.O1, UseImm: true, Imm: 0})
		b.EmitBranch(isa.Bg, "loop")
		b.Emit(isa.Instr{Op: isa.Nop})
		b.Emit(isa.Instr{Op: isa.Halt})
	})
	// Stride one 8 KB page per iteration: every load DTLB-misses after
	// the TLB reach is exceeded.
	m.Regs[isa.O3] = 32768
	if err := m.ArmCounter(0, hwc.EvDTLBMiss, 50); err != nil {
		t.Fatal(err)
	}
	m.OnOverflow = func(e *OverflowEvent) { events = append(events, e) }
	run(t, m)
	if len(events) == 0 {
		t.Fatal("no DTLB overflow events")
	}
	for _, e := range events {
		if e.DeliveredPC != e.TruePC+isa.InstrBytes {
			t.Errorf("DTLB delivery imprecise: delivered %#x, trigger %#x", e.DeliveredPC, e.TruePC)
		}
	}
}

func TestClockTicks(t *testing.T) {
	var ticks int
	m := build(t, DefaultConfig(), func(b *asm.Builder) {
		b.Emit(movImm(isa.O1, 1000))
		b.Label("loop")
		b.Emit(isa.Instr{Op: isa.Sub, Rd: isa.O1, Rs1: isa.O1, UseImm: true, Imm: 1})
		b.Emit(isa.Instr{Op: isa.Cmp, Rs1: isa.O1, UseImm: true, Imm: 0})
		b.EmitBranch(isa.Bg, "loop")
		b.Emit(isa.Instr{Op: isa.Nop})
		b.Emit(isa.Instr{Op: isa.Halt})
	})
	m.ClockTickCycles = 100
	m.OnClockTick = func(ct *ClockTick) { ticks++ }
	run(t, m)
	want := int(m.Stats().Cycles / 100)
	if ticks < want-1 || ticks > want+1 {
		t.Errorf("ticks = %d, want ~%d", ticks, want)
	}
}

func TestSecondsConversion(t *testing.T) {
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Seconds(900_000_000); got != 1.0 {
		t.Errorf("Seconds(900M) = %v", got)
	}
}

func TestCallocZeroesReusedMemory(t *testing.T) {
	m := build(t, DefaultConfig(), func(b *asm.Builder) {
		// p = malloc(64); *p = 77; free(p); q = calloc(8, 8); o5 = *q
		b.Emit(movImm(isa.O0, 64))
		b.Emit(isa.Instr{Op: isa.Syscall, UseImm: true, Imm: SysMalloc})
		b.Emit(isa.Instr{Op: isa.Or, Rd: isa.L0, Rs1: isa.G0, Rs2: isa.O0})
		b.Emit(movImm(isa.O1, 77))
		b.Emit(isa.Instr{Op: isa.StX, Rd: isa.O1, Rs1: isa.L0, UseImm: true, Imm: 0})
		b.Emit(isa.Instr{Op: isa.Or, Rd: isa.O0, Rs1: isa.G0, Rs2: isa.L0})
		b.Emit(isa.Instr{Op: isa.Syscall, UseImm: true, Imm: SysFree})
		b.Emit(movImm(isa.O0, 8))
		b.Emit(movImm(isa.O1, 8))
		b.Emit(isa.Instr{Op: isa.Syscall, UseImm: true, Imm: SysCalloc})
		b.Emit(isa.Instr{Op: isa.LdX, Rd: isa.O5, Rs1: isa.O0, UseImm: true, Imm: 0})
		b.Emit(isa.Instr{Op: isa.Halt})
	})
	run(t, m)
	if m.Regs[isa.O5] != 0 {
		t.Errorf("calloc reused memory not zeroed: %d", m.Regs[isa.O5])
	}
}

func TestStatsAccumulate(t *testing.T) {
	m := build(t, DefaultConfig(), func(b *asm.Builder) {
		b.Emit(movImm(isa.O0, 64))
		b.Emit(isa.Instr{Op: isa.Syscall, UseImm: true, Imm: SysMalloc})
		b.Emit(isa.Instr{Op: isa.StX, Rd: isa.G1, Rs1: isa.O0, UseImm: true, Imm: 0})
		b.Emit(isa.Instr{Op: isa.LdX, Rd: isa.O1, Rs1: isa.O0, UseImm: true, Imm: 0})
		b.Emit(isa.Instr{Op: isa.Halt})
	})
	run(t, m)
	st := m.Stats()
	if st.Loads != 1 || st.Stores != 1 {
		t.Errorf("loads=%d stores=%d", st.Loads, st.Stores)
	}
	if st.Cycles == 0 || st.Instrs != 5 {
		t.Errorf("cycles=%d instrs=%d", st.Cycles, st.Instrs)
	}
	if st.DTLBMisses == 0 {
		t.Error("expected at least one DTLB miss on first heap touch")
	}
}
