package machine

import (
	"testing"

	"dsprof/internal/isa"
	"dsprof/internal/tlb"
)

// TestMaxBaseCostIsTrueMax pins the event-horizon cost bounds to the cost
// table they summarize. maxBaseCost is derived by scanning baseCost, so
// this is a tripwire against the derivation (or the table's indexing)
// being broken by a future opcode, not a re-statement of a constant: it
// recomputes the maximum independently, checks it is hit by a real
// opcode, and checks the per-opcode costs the derivation folds over are
// all populated.
func TestMaxBaseCostIsTrueMax(t *testing.T) {
	var want uint64
	hitBy := isa.NumOps
	for op := isa.Op(0); op < isa.NumOps; op++ {
		if c := uint64(baseCost[op]); c > want {
			want, hitBy = c, op
		}
	}
	if maxBaseCost != want {
		t.Errorf("maxBaseCost = %d, true max over baseCost = %d (op %v)", maxBaseCost, want, hitBy)
	}
	if hitBy == isa.NumOps {
		t.Fatal("no opcode has a positive base cost")
	}
	for op := isa.Op(0); op < isa.NumOps; op++ {
		if baseCost[op] == 0 {
			t.Errorf("opcode %v has zero base cost; horizon math assumes every instruction costs at least one cycle", op)
		}
	}
}

// TestMaxInstrCostBounds checks that the machine's per-instruction cycle
// bound really dominates the worst case the simulator can charge for one
// non-syscall instruction. Both the fast interpreter's horizon batching
// and the translated backend's block-level budget check subtract this
// bound; an undersized value would let a cycle-armed counter overflow
// mid-batch.
func TestMaxInstrCostBounds(t *testing.T) {
	cfg := DefaultConfig()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	worst := maxBaseCost + // pipeline cost
		uint64(cfg.ICMissStall) + // fetch miss
		tlb.MissPenaltyCycles + // DTLB miss
		uint64(cfg.Costs.MemStall) + // load missing D$ and E$
		uint64(cfg.Costs.WritebackStall) // dirty victim
	if m.maxInstrCost < worst {
		t.Errorf("maxInstrCost = %d < worst single-instruction cost %d", m.maxInstrCost, worst)
	}
	// Store path worst case (store miss stall + writeback) must be covered
	// too; it shares the fetch and TLB terms.
	worstStore := maxBaseCost + uint64(cfg.ICMissStall) + tlb.MissPenaltyCycles +
		uint64(cfg.Costs.StoreMissStall) + uint64(cfg.Costs.WritebackStall)
	if m.maxInstrCost < worstStore {
		t.Errorf("maxInstrCost = %d < worst store cost %d", m.maxInstrCost, worstStore)
	}
}
