package machine

import (
	"bytes"
	"fmt"

	"dsprof/internal/cache"
	"dsprof/internal/hwc"
	"dsprof/internal/isa"
	"dsprof/internal/mem"
	"dsprof/internal/tlb"
)

// OverflowEvent is delivered to the profiling layer when an armed counter
// overflows. Mirroring real hardware, the delivered PC is the address of
// the *next instruction to issue* at trap-delivery time — the counter has
// skidded an unknown number of instructions past the trigger. The register
// snapshot is the live register file at delivery.
//
// TruePC/TrueEA are a ground-truth side channel recorded by the simulator
// for test validation only; the collector and analyzer never read them
// (the paper's hardware does not provide them, which is the entire reason
// apropos backtracking exists).
type OverflowEvent struct {
	PIC         int
	Event       hwc.Event
	DeliveredPC uint64
	Regs        [isa.NumRegs]int64
	// Callstack holds the call-site PCs, outermost first. It aliases a
	// reusable scratch buffer and is valid only for the duration of the
	// callback; handlers that retain it must copy.
	Callstack []uint64
	Cycles    uint64 // machine cycle count at delivery

	TruePC    uint64 // ground truth: the triggering instruction
	TrueEA    uint64 // ground truth: its effective address
	TrueHasEA bool
}

// ClockTick is delivered to the profiling layer on each clock-profiling
// tick. Like real clock interrupts, the PC is the next instruction to
// issue, and no backtracking correction is possible. Callstack aliases a
// reusable scratch buffer, valid only during the callback (copy to
// retain), like OverflowEvent.Callstack.
type ClockTick struct {
	PC        uint64
	Callstack []uint64
	Cycles    uint64
}

// Alloc records one heap allocation, for the analyzer's address-space and
// per-instance reports.
type Alloc struct {
	Addr uint64
	Size uint64
	Seq  int
}

// Stats are cumulative execution statistics.
type Stats struct {
	Instrs        uint64
	Cycles        uint64
	ICMisses      uint64
	SyscallCycles uint64
	Loads         uint64
	Stores        uint64
	DCRdMisses    uint64
	ECRefs        uint64
	ECRdMisses    uint64
	ECStallCycles uint64
	DTLBMisses    uint64
	ClockTicks    uint64
}

type pendingSig struct {
	remaining int
	ev        OverflowEvent
}

// Machine is one simulated processor plus its process address space.
type Machine struct {
	Cfg Config

	// Architectural state.
	Regs [isa.NumRegs]int64
	PC   uint64
	NPC  uint64
	ccN  bool // negative
	ccZ  bool // zero
	ccV  bool // overflow
	ccC  bool // carry

	Mem  *mem.Memory
	Hier *cache.Hierarchy
	IC   *cache.Cache
	DTLB *tlb.TLB

	// lastFetchLine caches the current instruction-fetch line: sequential
	// fetches within one I$ line cost nothing and are not re-probed.
	lastFetchLine uint64

	// dec is the predecoded text segment, one entry per instruction, with
	// the base pipeline cost fused in. The interpreter executes only from
	// this array; the raw text is not retained.
	dec      []isa.Decoded
	textSize uint64 // textEnd - TextBase, for the one-compare fetch bound
	textEnd  uint64
	dataEnd  uint64
	stackLow uint64

	// icLineShift is log2 of the I$ line size, so the fetch-line check is
	// a shift instead of a divide.
	icLineShift uint

	// maxInstrCost bounds the cycle cost of any single non-syscall
	// instruction (worst-case fetch miss + TLB miss + memory stalls). The
	// event-horizon computation backs a cycle-armed counter's bound off by
	// this much so the fast inner loop can never overflow it mid-batch.
	maxInstrCost uint64
	// armed[ev] is a bitmask of PIC registers (bit 0 = PIC0, bit 1 = PIC1)
	// currently counting ev. The hot-path count() is a load and branch on
	// it; events nobody is counting cost nothing.
	armed [hwc.NumEvents]uint8
	// evBatch, while a budgeted translated batch runs, routes armed-event
	// counts into evDelta instead of the live counters; evFlush feeds the
	// deltas to the counters at the batch boundary. The batch budget
	// guarantees no delta can reach an overflow threshold, so the deferred
	// Adds never fire and exact trigger attribution is never needed.
	evBatch bool
	evDelta [hwc.NumEvents]uint64

	// backend selects the execution engine behind Run/RunFor; the zero
	// value is BackendTranslated. See translate.go.
	backend Backend
	// trans is the translation cache, built lazily and dropped whole on
	// LoadProgram (its threaded-code blocks hold register pointers and
	// successor links valid only for this program's decode). transHeat
	// overrides the translation threshold for tests.
	trans     *transState
	transHeat uint32

	heap *allocator

	input   []int64
	inPos   int
	outLong []int64
	outText bytes.Buffer

	// Profiling hooks.
	OnOverflow      func(*OverflowEvent)
	OnClockTick     func(*ClockTick)
	ClockTickCycles uint64
	// OnProv, when set, receives one ProvRecord per heap block: at free
	// time for freed blocks, from DrainProv for blocks live at halt.
	// Nil (the default) keeps the allocator syscalls provenance-free.
	OnProv func(ProvRecord)

	counters [2]*hwc.Counter
	skid     *hwc.Skid
	pending  []pendingSig
	nextTick uint64

	callstack []uint64
	// csScratch is the reusable buffer callstackScratch snapshots into,
	// keeping event delivery allocation-free on the hot path.
	csScratch []uint64
	allocs    []Alloc
	// provLive holds the open provenance record for each live heap block
	// while OnProv is set; see prov.go.
	provLive map[uint64]ProvRecord

	stats  Stats
	halted bool
}

// New builds a machine from cfg. Load a program with LoadProgram before
// running.
func New(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	h, err := cache.NewHierarchy(cfg.DCache, cfg.ECache, cfg.Costs)
	if err != nil {
		return nil, err
	}
	ic, err := cache.New(cfg.ICache)
	if err != nil {
		return nil, err
	}
	t, err := tlb.New(cfg.TLB)
	if err != nil {
		return nil, err
	}
	var icShift uint
	for 1<<icShift != cfg.ICache.LineBytes {
		icShift++
	}
	m := &Machine{
		Cfg:           cfg,
		Mem:           mem.New(),
		Hier:          h,
		IC:            ic,
		DTLB:          t,
		lastFetchLine: ^uint64(0),
		icLineShift:   icShift,
		skid:          hwc.NewSkid(cfg.SkidSeed),
		stackLow:      StackTop - cfg.StackBytes,
	}
	// Worst-case cost of one non-syscall instruction: deliberately a loose
	// upper bound (an access cannot take every stall at once); the horizon
	// only batches a hair less per overflow interval.
	m.maxInstrCost = maxBaseCost + uint64(cfg.ICMissStall) + tlb.MissPenaltyCycles +
		uint64(cfg.Costs.EHitStall+cfg.Costs.MemStall+cfg.Costs.StoreMissStall+cfg.Costs.WritebackStall)
	m.heap = newAllocator(HeapBase, HeapBase+cfg.HeapBytes)
	return m, nil
}

// LoadProgram installs the text segment and initialized data, and resets
// architectural state with the PC at entry (an absolute address within
// text).
func (m *Machine) LoadProgram(text []isa.Instr, data []byte, entry uint64) error {
	if len(text) == 0 {
		return fmt.Errorf("machine: empty text")
	}
	m.textSize = uint64(len(text)) * isa.InstrBytes
	m.textEnd = TextBase + m.textSize
	m.dec = isa.PredecodeAll(text, TextBase)
	// Drop the translation cache with the old decode: translated blocks
	// bake in register pointers, immediates, and successor-block links of
	// the program they were compiled from. (Stores never invalidate
	// translations — execution reads only from dec, never from data
	// memory, on every backend.)
	m.trans = nil
	for i := range m.dec {
		m.dec[i].Cost = baseCost[m.dec[i].Op]
	}
	if entry < TextBase || entry >= m.textEnd || entry%isa.InstrBytes != 0 {
		return fmt.Errorf("machine: entry %#x outside text [%#x,%#x)", entry, TextBase, m.textEnd)
	}
	m.Mem.WriteBytes(DataBase, data)
	m.dataEnd = DataBase + uint64(len(data))
	for i := range m.Regs {
		m.Regs[i] = 0
	}
	m.Regs[isa.SP] = int64(StackTop - 64)
	m.Regs[isa.FP] = int64(StackTop - 64)
	m.PC = entry
	m.NPC = entry + isa.InstrBytes
	m.halted = false
	return nil
}

// SetInput provides the program's input vector, consumed by SysReadLong.
func (m *Machine) SetInput(in []int64) { m.input = in; m.inPos = 0 }

// OutputLongs returns the values the program emitted with SysWriteLong.
func (m *Machine) OutputLongs() []int64 { return m.outLong }

// OutputText returns the text the program emitted with SysPuts/SysPutc.
func (m *Machine) OutputText() string { return m.outText.String() }

// Stats returns cumulative execution statistics.
func (m *Machine) Stats() Stats { return m.stats }

// Halted reports whether the program has executed Halt. Callers that
// drive the machine with Step (instead of Run) use it as the loop
// condition, e.g. to interleave cancellation checks.
func (m *Machine) Halted() bool { return m.halted }

// Allocs returns the heap allocation log.
func (m *Machine) Allocs() []Alloc { return m.allocs }

// Seconds converts a cycle count to simulated seconds.
func (m *Machine) Seconds(cycles uint64) float64 {
	return float64(cycles) / float64(m.Cfg.ClockHz)
}

// ArmCounter programs PIC register pic (0 or 1) to count ev and overflow
// every interval counts. Mirrors the two-counter limit of the hardware.
func (m *Machine) ArmCounter(pic int, ev hwc.Event, interval uint64) error {
	if pic < 0 || pic > 1 {
		return fmt.Errorf("machine: PIC %d out of range (two counter registers)", pic)
	}
	if ev == hwc.EvNone || ev >= hwc.NumEvents {
		return fmt.Errorf("machine: invalid event")
	}
	if interval == 0 {
		return fmt.Errorf("machine: zero overflow interval")
	}
	if other := m.counters[1-pic]; other != nil && other.Event == ev {
		return fmt.Errorf("machine: event %v already armed on the other register", ev)
	}
	m.counters[pic] = hwc.NewCounter(ev, interval)
	m.rebuildArmed()
	return nil
}

// rebuildArmed recomputes the per-event armed-PIC bitmasks from the
// counter registers. Any event combination runs on any backend: the
// translated engine counts memory, I$, and TLB events inline under the
// armed-event budget (see the horizon in runBatch and the eligibility
// invariant in translate.go).
func (m *Machine) rebuildArmed() {
	m.armed = [hwc.NumEvents]uint8{}
	for pic, c := range m.counters {
		if c != nil {
			m.armed[c.Event] |= 1 << pic
		}
	}
}

// CounterTotal returns the cumulative count of the armed counter.
func (m *Machine) CounterTotal(pic int) uint64 {
	if pic < 0 || pic > 1 || m.counters[pic] == nil {
		return 0
	}
	return m.counters[pic].Total
}

// Callstack returns a copy of the current shadow call stack (call-site
// PCs, outermost first).
func (m *Machine) Callstack() []uint64 {
	cs := make([]uint64, len(m.callstack))
	copy(cs, m.callstack)
	return cs
}

// segment classifies an address and returns its segment's page size.
func (m *Machine) segment(addr uint64) (SegmentID, uint64) {
	switch {
	case addr >= HeapBase && addr < m.heap.brk:
		return SegHeap, m.Cfg.HeapPageSize
	case addr >= m.stackLow && addr < StackTop:
		return SegStack, m.Cfg.StackPageSize
	case addr >= DataBase && addr < m.dataEnd:
		return SegData, m.Cfg.DataPageSize
	case addr >= TextBase && addr < m.textEnd:
		return SegText, m.Cfg.TextPageSize
	}
	return SegNone, 0
}

// SegmentOf reports the segment containing addr (for analysis tools).
func (m *Machine) SegmentOf(addr uint64) SegmentID {
	s, _ := m.segment(addr)
	return s
}
