package machine

import (
	"encoding/binary"
	"fmt"

	"dsprof/internal/hwc"
	"dsprof/internal/isa"
	"dsprof/internal/mem"
	"dsprof/internal/tlb"
)

// This file is the binary-translating backend: hot superblocks of
// predecoded instructions compile into threaded code — flat arrays of
// pre-resolved operations whose register operands are pointers into the
// register file and whose immediates, branch targets, and fetch lines are
// constants — executed by one tight dispatch loop with block-level
// cycle/instruction accounting and a single EvInstrs/EvCycles flush at
// the end of each translated stretch.
//
// Safety rests on three invariants, checked before any translated code
// runs (see DESIGN.md §11):
//
//  1. Eligibility. Every counter event is covered at the batch boundary:
//     EvInstrs/EvCycles by the stretch flush, and armed memory, I$, and
//     TLB events by inline count() calls on the probe and miss paths
//     (routed into the machine's per-batch event deltas). The armed-event
//     budget in runBatch shrinks the horizon so no armed counter can
//     overflow anywhere inside the batch, which is what lets a deferred
//     delta stand in for exact per-event Adds: an Add that cannot
//     overflow needs no trigger attribution and draws no skid.
//  2. Horizon. A block is entered only when the remaining horizon covers
//     its worst-case footprint — instructions (ninstr), cycles (wc), and
//     memory accesses (nmem) — so the boundary flush can never overflow
//     a counter mid-stretch and no clock tick is due inside a block. The
//     armed-event budget binds each event class at its tightest sound
//     bound: I$ misses at one per instruction (maxN), the per-access
//     events — D$/E$ misses, E$ references, DTLB misses — at one per
//     memory access (maxMem), and E$ stall cycles by the cycle horizon
//     itself (stall cycles are a subset of elapsed cycles).
//  3. Trap-free bodies. Any instruction that could trap (divide by zero,
//     misalignment, segmentation) evaluates its trap predicate first and
//     bails out *before* architectural effects; the interpreter then
//     re-executes it and raises the exact trap of the reference path.
//     Blocks themselves never trap, never deliver events, never syscall.
//
// The produced execution is byte-identical to the reference stepper —
// TestFastPathEquivalence, TestFastPathGolden, and FuzzBackendDifferential
// hold all three engines (Step, fast interpreter, translated) to the same
// machine state, event streams, and experiment bytes.

// Backend selects the execution engine behind Run/RunFor.
type Backend uint8

const (
	// BackendTranslated runs hot superblocks as translated threaded code
	// and falls back to the batched interpreter elsewhere. The default.
	BackendTranslated Backend = iota
	// BackendFast is the event-horizon batched interpreter alone (the
	// PR 4 fast path), without translation.
	BackendFast
)

// ParseBackend maps a user-facing backend name to a Backend. The empty
// string selects the default (translated); every tool and job spec that
// exposes a backend knob funnels through here so the names stay
// consistent.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "", "translated":
		return BackendTranslated, nil
	case "fast":
		return BackendFast, nil
	default:
		return BackendTranslated, fmt.Errorf("machine: unknown backend %q (want translated or fast)", s)
	}
}

const (
	// transHeatDefault is how many dispatcher visits a cold block entry
	// needs before it is translated. Entries reached *from* a translated
	// predecessor skip the gate: successor chaining wants the whole hot
	// region compiled as soon as one seed block proves hot.
	transHeatDefault = 4
	// transMaxBlockInstrs caps a block so its worst-case cycle footprint
	// stays small against armed-cycle-counter horizons.
	transMaxBlockInstrs = 64
	// transColdChunk bounds one interpreter chunk while translation is
	// still cold, so block-entry heat accumulates at chunk granularity.
	transColdChunk = 4096
	// transWarmChunk bounds the interpreter chunk right after a translated
	// stretch: its only job is to carry execution across an untranslatable
	// instruction (a syscall, a trap retry) and return to translated code.
	transWarmChunk = 64
)

// tstate is the live state of one translated stretch. cycles accumulates
// only *dynamic* cost (fetch, TLB, and cache stalls); each block's static
// base-cost sum is added when the block completes, or the bailing
// instruction's static prefix on a bail, so a partial block charges
// exactly the cycles the reference interpreter would have.
type tstate struct {
	cycles    uint64
	n         uint64
	mem       uint64 // memory accesses retired (charged per block, see exec)
	loads     uint64 // retired loads, batched into m.stats at stretch end
	stores    uint64 // retired stores, likewise
	fetchLine uint64
	// target is the CTI successor for the in-flight block: the taken
	// target, or the fall-through PC of a not-taken branch. The delay
	// slot's bail NPC and the block's successor both read it.
	target  uint64
	bailPC  uint64
	bailNPC uint64
	bailed  bool
}

// fail records a bail-out before instruction pc executed: the translated
// stretch ends, and the interpreter re-executes pc with NPC restored to
// the value the reference path would hold (sequential, or the in-flight
// CTI target when pc is a delay slot). prefix is the static base-cost sum
// of the block's instructions before pc.
func (st *tstate) fail(pc uint64, delay bool, prefix uint64) bool {
	st.bailed = true
	st.bailPC = pc
	if delay {
		st.bailNPC = st.target
	} else {
		st.bailNPC = pc + isa.InstrBytes
	}
	st.cycles += prefix
	return false
}

// Threaded-op kinds. ALU operations get separate register/immediate
// variants so their dispatch cases are branch-free; rarer trap-capable
// and control ops fold variants into op2 flag bits.
const (
	tAddRR uint8 = iota
	tAddRI
	tSubRR
	tSubRI
	tMulRR
	tMulRI
	tAndRR
	tAndRI
	tOrRR
	tOrRI
	tXorRR
	tXorRI
	tSllRR
	tSllRI
	tSrlRR
	tSrlRI
	tSraRR
	tSraRI
	tMov
	tSetHiR
	tCmpRR
	tCmpRI
	// Fused compare-and-branch superinstructions: a ClCmp immediately
	// followed by the conditional branch it feeds collapses into one op
	// that sets the condition codes (later code may still read them) and
	// selects the successor from the comparison directly. Ordered in
	// tBe..tBleu condition order, register/immediate variants adjacent,
	// so the emitter computes the kind arithmetically.
	tFBeRR
	tFBeRI
	tFBneRR
	tFBneRI
	tFBgRR
	tFBgRI
	tFBgeRR
	tFBgeRI
	tFBlRR
	tFBlRI
	tFBleRR
	tFBleRI
	tFBguRR
	tFBguRI
	tFBgeuRR
	tFBgeuRI
	tFBluRR
	tFBluRI
	tFBleuRR
	tFBleuRI
	tBa
	tBe
	tBne
	tBg
	tBge
	tBl
	tBle
	tBgu
	tBgeu
	tBlu
	tBleu
	tCall
	tJmpl
	tDivRem
	tMem
	tProbeFirst
	tProbeAlways
)

// op2 flag bits, shared by tMem/tDivRem/tJmpl.
const (
	// low 4 bits: the isa.Class for tMem; opIsDiv/opJmplRet below reuse
	// bit 0 for tDivRem/tJmpl, whose class is implied by the kind.
	opClassMask  uint8 = 0x0f
	opIsDiv      uint8 = 1 << 0
	opJmplRet    uint8 = 1 << 0
	opProbeShift       = 4 // 2 bits: probeNone/probeFirst/probeAlways
	opProbeMask  uint8 = 3 << opProbeShift
	opDelay      uint8 = 1 << 6
	opRegOff     uint8 = 1 << 7 // second operand is *rs2, not imm
)

// Per-site cache bit layout. A memory op's aux field packs its align
// mask with the D$ and E$ way its address last hit; its prefix field
// packs the static cycle prefix with the DTLB entry its page last used.
// All are verified performance hints (see tinstr).
const (
	siteAlignMask  uint64 = 0xff
	siteEWayShift         = 8
	siteEWayMask   uint64 = 0xffffff << siteEWayShift
	siteDWayShift         = 32
	siteDWayMask   uint64 = 0xffffffff << siteDWayShift
	siteTLBShift          = 32
	sitePrefixMask uint64 = 1<<siteTLBShift - 1
)

// Instruction-fetch probe modes. Probes replicate runInner's fetch-line
// check: the I$ is probed only when execution leaves the current fetch
// line. Within a block every crossing is static except the entry.
const (
	probeNone   uint8 = iota
	probeFirst        // block entry: compare against the live fetch line
	probeAlways       // static line crossing: always probe
)

// tinstr is one threaded operation: an instruction with operands resolved
// to register-file pointers and decode-time constants, or a standalone
// fetch probe. The ops of a block sit in one contiguous slice, so the
// dispatch loop streams them with no pointer chasing. Memory and probe
// ops are self-modifying in one narrow sense: they cache the cache way
// they last hit (a pure performance hint, verified by tag compare on
// every use) so repeat hits retire inline without the full Access call.
type tinstr struct {
	kind uint8
	op2  uint8
	rd   *int64
	rs1  *int64
	rs2  *int64
	imm  int64  // immediate operand / branch or call target / probe way cache
	aux  uint64 // branch fall-through PC; probe fetch line; mem align mask (low byte) + way cache (high bits)
	pc   uint64
	// prefix is the block's static base-cost sum before this instruction,
	// charged on a bail so a partial block costs exactly what the
	// reference interpreter charged. Only trap-capable ops (tMem,
	// tDivRem) can bail; for never-bailing ops that carry a folded fetch
	// probe, the field is reused as the probe's I$ way cache.
	prefix uint64
}

// Block terminator kinds.
const (
	// tEndGoto: control continues at a statically known PC (a capped
	// block, or one ended before an untranslatable instruction).
	tEndGoto uint8 = iota
	// tEndCTI: the block ends with a CTI plus its delay slot; the
	// successor PC is in st.target.
	tEndCTI
)

// tblock is one translated superblock: a straight-line run of
// instructions ending with a CTI and its delay slot (tEndCTI) or at a
// statically known fall-through (tEndGoto).
type tblock struct {
	entry  uint64
	code   []tinstr
	ninstr uint64
	nmem   uint64 // memory-access instructions (loads, stores, prefetches)
	nload  uint64 // load instructions, for the batched Loads statistic
	nstore uint64 // store instructions, for the batched Stores statistic
	static uint64 // sum of base pipeline costs
	wc     uint64 // worst-case cycle footprint (static + max stalls)
	kind   uint8
	next   uint64 // tEndGoto successor
	// s0/s1 cache the first two translated successors, so the dispatcher
	// follows hot block-to-block edges (a goto, a branch's taken and
	// fall-through arms) by pointer instead of re-resolving the PC
	// through the block table. Only real translated blocks are cached
	// (never nil or noTransBlock), and the pointers die with the whole
	// transState on LoadProgram, so they can never go stale.
	s0, s1 *tblock
}

// noTransBlock marks a block entry that can never be translated (its
// first instruction is a syscall, halt, or a CTI with an untranslatable
// delay slot), so the dispatcher stops probing it.
var noTransBlock = &tblock{}

// transState is the per-program translation cache. It is dropped whole
// on LoadProgram: translated ops capture register pointers and
// decode-time constants of the loaded text, so they must not outlive it.
// (Stores cannot invalidate translations: the machine executes only from
// the predecoded dec array on every backend, never from data memory, so
// self-modifying stores alter no execution path — see DESIGN.md §11.)
type transState struct {
	blocks []*tblock
	heat   []uint32
	st     tstate
	// sink absorbs writes whose architectural destination is G0 (reads
	// still see zero through Regs[0], which no translated op writes).
	sink int64
}

func (m *Machine) ensureTrans() *transState {
	if m.trans == nil {
		n := len(m.dec)
		m.trans = &transState{blocks: make([]*tblock, n), heat: make([]uint32, n)}
	}
	return m.trans
}

// SetBackend selects the execution engine for subsequent Run/RunFor
// calls. Switching is safe at any instruction boundary: every backend
// produces the same execution.
func (m *Machine) SetBackend(b Backend) { m.backend = b }

// SetTranslationHeat overrides the dispatcher-visit threshold at which a
// block entry is translated (0 restores the default). Tests lower it to
// force translation on short programs; it tunes warmup only, never
// which execution is produced.
func (m *Machine) SetTranslationHeat(n uint32) { m.transHeat = n }

func (m *Machine) heatThreshold() uint32 {
	if m.transHeat != 0 {
		return m.transHeat
	}
	return transHeatDefault
}

// runMixed fills one event horizon with translated stretches interleaved
// with bounded interpreter chunks. Bounds and fallback semantics are
// exactly runBatch's: maxN caps retired instructions, maxMem caps
// retired memory accesses (the budget unit of the armed per-access
// events), stop caps m.stats.Cycles, and anything the translator
// declines — cold code, syscalls, trap retries, delay-slot entry states
// — runs on runInner. Interpreter chunks charge the memory budget one
// access per instruction — the interpreter does not pre-count its
// instruction mix, and an instruction performs at most one access — so
// the cap holds across both engines.
//
// A stretch that made progress and then hit a budget refusal ends the
// batch instead of draining the budget tail interpreted: the caller
// re-arms the horizons from the counters' actual event counts, which
// sheds both the worst-case cycle pessimism of the refused block and
// the one-access-per-instruction pessimism of interpreter charging, and
// the next batch resumes translated at full speed. The interpreter runs
// only when the translator made no progress at all (an obstacle or a
// genuinely exhausted horizon), where it is the sole way forward.
func (m *Machine) runMixed(maxN, maxMem, stop uint64, breakOnSyscall bool) (uint64, error) {
	var total, mem uint64
	for total < maxN && mem < maxMem && !m.halted && len(m.pending) == 0 {
		k, km, refused := m.runTranslated(maxN-total, maxMem-mem, stop)
		total += k
		mem += km
		// Translated stretches cannot halt, syscall, or append pending
		// events, so only the budgets and the interpreter below decide
		// the loop.
		if refused && k > 0 {
			break // batch ends here; the caller re-arms tighter horizons
		}
		chunk := uint64(transColdChunk)
		if k > 0 {
			chunk = transWarmChunk
		}
		if rem := maxN - total; chunk > rem {
			chunk = rem
		}
		if rem := maxMem - mem; chunk > rem {
			chunk = rem
		}
		n, err := m.runInner(chunk, stop, breakOnSyscall)
		total += n
		mem += n
		if err != nil {
			return total, err
		}
		if n == 0 {
			// Immediate give-way with total == 0 (syscall under a
			// cycle-counter horizon) is handled by the caller, which must
			// flush the batch's event deltas before stepping the reference
			// path.
			break
		}
		if m.halted || len(m.pending) > 0 {
			break
		}
	}
	return total, nil
}

// runTranslated executes translated superblocks from the current PC until
// the horizon cannot cover the next block's worst-case footprint, control
// reaches untranslated (or untranslatable) code, or a block bails out for
// a trap retry. It returns how many instructions retired, the memory
// accesses charged against the per-access event budget, and whether the
// stretch ended on a budget refusal (so the caller can re-arm rather
// than interpret), and leaves PC/NPC, stats, and the fetch line exactly
// as runInner would after the same instructions.
func (m *Machine) runTranslated(maxN, maxMem, stop uint64) (uint64, uint64, bool) {
	if m.NPC != m.PC+isa.InstrBytes {
		// Mid-delay-slot entry state: only the interpreter tracks a split
		// PC/NPC pair.
		return 0, 0, false
	}
	t := m.ensureTrans()
	st := &t.st
	*st = tstate{fetchLine: m.lastFetchLine}
	pc := m.PC
	baseCycles := m.stats.Cycles
	refused := false
	var prev *tblock
	for {
		var blk *tblock
		if prev != nil {
			// Hot edge: the previous block has seen this successor before,
			// so follow the cached pointer straight to it.
			if s := prev.s0; s != nil && s.entry == pc {
				blk = s
			} else if s := prev.s1; s != nil && s.entry == pc {
				blk = s
			}
		}
		if blk == nil {
			off := pc - TextBase
			if off >= m.textSize || off%isa.InstrBytes != 0 {
				break // the interpreter raises the bad-PC trap
			}
			idx := int(off / isa.InstrBytes)
			blk = t.blocks[idx]
			if blk == nil {
				if prev == nil {
					// Heat gate: cold entries wait for threshold dispatcher
					// visits. Successors of a translated block compile
					// immediately — one hot seed pulls in its whole region.
					t.heat[idx]++
					if t.heat[idx] < m.heatThreshold() {
						break
					}
				}
				blk = m.translateBlock(idx)
				t.blocks[idx] = blk
			}
			if blk == noTransBlock {
				break
			}
			if prev != nil {
				if prev.s0 == nil {
					prev.s0 = blk
				} else if prev.s1 == nil {
					prev.s1 = blk
				}
			}
		}
		if st.n+blk.ninstr > maxN || st.mem+blk.nmem > maxMem ||
			baseCycles+st.cycles+blk.wc > stop {
			refused = true
			break // worst-case footprint does not fit the horizon
		}
		ok := blk.exec(m, st)
		// Charge the block's full access count even on a bail: the executed
		// prefix performed at most nmem accesses, and the budget only needs
		// an upper bound.
		st.mem += blk.nmem
		if !ok {
			break // bailed: st.bailPC/bailNPC hold the resume point
		}
		if blk.kind == tEndCTI {
			pc = st.target
		} else {
			pc = blk.next
		}
		prev = blk
	}
	if st.bailed {
		m.PC, m.NPC = st.bailPC, st.bailNPC
	} else {
		m.PC, m.NPC = pc, pc+isa.InstrBytes
	}
	m.lastFetchLine = st.fetchLine
	m.stats.Cycles = baseCycles + st.cycles
	m.stats.Instrs += st.n
	m.stats.Loads += st.loads
	m.stats.Stores += st.stores
	if st.n > 0 {
		// One flush per stretch, like runInner's boundary flush. The
		// horizon guarantees neither counter can overflow mid-stretch, so
		// no skid draw reorders and the trigger PC is never observed.
		m.count(hwc.EvInstrs, st.n, m.PC, 0, false)
		m.count(hwc.EvCycles, st.cycles, m.PC, 0, false)
	}
	return st.n, st.mem, refused
}

// exec is the threaded-code dispatch loop: one switch per pre-resolved
// op, no per-instruction horizon, pending, or bounds checks (the caller
// proved the whole block fits), no per-instruction cycle accounting for
// ALU ops (base costs are in the static sum). On a bail the completed
// instruction count recovers from the bail PC (ops are emitted in PC
// order); on completion the static sum is charged in one add.
func (b *tblock) exec(m *Machine, st *tstate) bool {
	code := b.code
	for i := 0; i < len(code); i++ {
		t := &code[i]
		// Folded fetch probe for never-bailing kinds: their fetch stall is
		// unconditional, so the probe rides in the op's spare op2 bits
		// instead of a standalone probe op ahead of it (probes were a
		// quarter of all dispatches). Trap-capable ops — tMem, tDivRem —
		// keep the probe inside their exec funcs, where the stall stays
		// provisional until the bail predicates pass.
		if t.op2&opProbeMask != 0 && t.kind < tDivRem {
			ppc := t.pc
			if t.kind >= tFBeRR && t.kind <= tFBleuRI {
				ppc -= 2 * isa.InstrBytes // fused ops carry the fall-through in pc
			}
			line := ppc >> m.icLineShift
			if t.op2&opProbeMask == probeAlways<<opProbeShift || line != st.fetchLine {
				st.fetchLine = line
				// prefix doubles as the site's I$ way cache: only bailing
				// ops read it as a cycle prefix, and never-bailing ops are
				// the only probe carriers.
				if !m.IC.WayHit(int(t.prefix), ppc, false) {
					m.icFoldProbeSlow(t, ppc, st)
				}
			}
		}
		switch t.kind {
		case tAddRR:
			*t.rd = *t.rs1 + *t.rs2
		case tAddRI:
			*t.rd = *t.rs1 + t.imm
		case tSubRR:
			*t.rd = *t.rs1 - *t.rs2
		case tSubRI:
			*t.rd = *t.rs1 - t.imm
		case tMulRR:
			*t.rd = *t.rs1 * *t.rs2
		case tMulRI:
			*t.rd = *t.rs1 * t.imm
		case tAndRR:
			*t.rd = *t.rs1 & *t.rs2
		case tAndRI:
			*t.rd = *t.rs1 & t.imm
		case tOrRR:
			*t.rd = *t.rs1 | *t.rs2
		case tOrRI:
			*t.rd = *t.rs1 | t.imm
		case tXorRR:
			*t.rd = *t.rs1 ^ *t.rs2
		case tXorRI:
			*t.rd = *t.rs1 ^ t.imm
		case tSllRR:
			*t.rd = *t.rs1 << (uint64(*t.rs2) & 63)
		case tSllRI:
			*t.rd = *t.rs1 << t.aux
		case tSrlRR:
			*t.rd = int64(uint64(*t.rs1) >> (uint64(*t.rs2) & 63))
		case tSrlRI:
			*t.rd = int64(uint64(*t.rs1) >> t.aux)
		case tSraRR:
			*t.rd = *t.rs1 >> (uint64(*t.rs2) & 63)
		case tSraRI:
			*t.rd = *t.rs1 >> t.aux
		case tMov:
			*t.rd = t.imm
		case tSetHiR:
			*t.rd = *t.rs2 << isa.SetHiShift
		case tCmpRR:
			m.setCC(*t.rs1, *t.rs2)
		case tCmpRI:
			m.setCC(*t.rs1, t.imm)
		case tFBeRR:
			a, c := *t.rs1, *t.rs2
			m.setCC(a, c)
			fbr(st, t, a == c)
		case tFBeRI:
			a := *t.rs1
			m.setCC(a, t.imm)
			fbr(st, t, a == t.imm)
		case tFBneRR:
			a, c := *t.rs1, *t.rs2
			m.setCC(a, c)
			fbr(st, t, a != c)
		case tFBneRI:
			a := *t.rs1
			m.setCC(a, t.imm)
			fbr(st, t, a != t.imm)
		case tFBgRR:
			a, c := *t.rs1, *t.rs2
			m.setCC(a, c)
			fbr(st, t, a > c)
		case tFBgRI:
			a := *t.rs1
			m.setCC(a, t.imm)
			fbr(st, t, a > t.imm)
		case tFBgeRR:
			a, c := *t.rs1, *t.rs2
			m.setCC(a, c)
			fbr(st, t, a >= c)
		case tFBgeRI:
			a := *t.rs1
			m.setCC(a, t.imm)
			fbr(st, t, a >= t.imm)
		case tFBlRR:
			a, c := *t.rs1, *t.rs2
			m.setCC(a, c)
			fbr(st, t, a < c)
		case tFBlRI:
			a := *t.rs1
			m.setCC(a, t.imm)
			fbr(st, t, a < t.imm)
		case tFBleRR:
			a, c := *t.rs1, *t.rs2
			m.setCC(a, c)
			fbr(st, t, a <= c)
		case tFBleRI:
			a := *t.rs1
			m.setCC(a, t.imm)
			fbr(st, t, a <= t.imm)
		case tFBguRR:
			a, c := *t.rs1, *t.rs2
			m.setCC(a, c)
			fbr(st, t, uint64(a) > uint64(c))
		case tFBguRI:
			a := *t.rs1
			m.setCC(a, t.imm)
			fbr(st, t, uint64(a) > uint64(t.imm))
		case tFBgeuRR:
			a, c := *t.rs1, *t.rs2
			m.setCC(a, c)
			fbr(st, t, uint64(a) >= uint64(c))
		case tFBgeuRI:
			a := *t.rs1
			m.setCC(a, t.imm)
			fbr(st, t, uint64(a) >= uint64(t.imm))
		case tFBluRR:
			a, c := *t.rs1, *t.rs2
			m.setCC(a, c)
			fbr(st, t, uint64(a) < uint64(c))
		case tFBluRI:
			a := *t.rs1
			m.setCC(a, t.imm)
			fbr(st, t, uint64(a) < uint64(t.imm))
		case tFBleuRR:
			a, c := *t.rs1, *t.rs2
			m.setCC(a, c)
			fbr(st, t, uint64(a) <= uint64(c))
		case tFBleuRI:
			a := *t.rs1
			m.setCC(a, t.imm)
			fbr(st, t, uint64(a) <= uint64(t.imm))
		case tBa:
			st.target = uint64(t.imm)
		case tBe:
			if m.ccZ {
				st.target = uint64(t.imm)
			} else {
				st.target = t.aux
			}
		case tBne:
			if !m.ccZ {
				st.target = uint64(t.imm)
			} else {
				st.target = t.aux
			}
		case tBg:
			if !(m.ccZ || (m.ccN != m.ccV)) {
				st.target = uint64(t.imm)
			} else {
				st.target = t.aux
			}
		case tBge:
			if m.ccN == m.ccV {
				st.target = uint64(t.imm)
			} else {
				st.target = t.aux
			}
		case tBl:
			if m.ccN != m.ccV {
				st.target = uint64(t.imm)
			} else {
				st.target = t.aux
			}
		case tBle:
			if m.ccZ || (m.ccN != m.ccV) {
				st.target = uint64(t.imm)
			} else {
				st.target = t.aux
			}
		case tBgu:
			if !(m.ccC || m.ccZ) {
				st.target = uint64(t.imm)
			} else {
				st.target = t.aux
			}
		case tBgeu:
			if !m.ccC {
				st.target = uint64(t.imm)
			} else {
				st.target = t.aux
			}
		case tBlu:
			if m.ccC {
				st.target = uint64(t.imm)
			} else {
				st.target = t.aux
			}
		case tBleu:
			if m.ccC || m.ccZ {
				st.target = uint64(t.imm)
			} else {
				st.target = t.aux
			}
		case tCall:
			m.Regs[isa.O7] = int64(t.pc)
			m.callstack = append(m.callstack, t.pc)
			st.target = uint64(t.imm)
		case tJmpl:
			b := t.imm
			if t.op2&opRegOff != 0 {
				b = *t.rs2
			}
			target := uint64(*t.rs1 + b) // before the rd write: rd may be rs1
			*t.rd = int64(t.pc)
			if t.op2&opJmplRet != 0 && len(m.callstack) > 0 {
				m.callstack = m.callstack[:len(m.callstack)-1]
			}
			st.target = target
		case tDivRem:
			if !m.execDivRem(t, st) {
				b.bailStats(m, st)
				return false
			}
		case tMem:
			if !m.execMem(t, st) {
				b.bailStats(m, st)
				return false
			}
		case tProbeFirst:
			if t.aux != st.fetchLine {
				st.fetchLine = t.aux
				if !m.IC.WayHit(int(t.imm), t.pc, false) {
					m.icProbeSlow(t, st)
				}
			}
		case tProbeAlways:
			st.fetchLine = t.aux
			if !m.IC.WayHit(int(t.imm), t.pc, false) {
				m.icProbeSlow(t, st)
			}
		}
	}
	st.n += b.ninstr
	st.cycles += b.static
	st.loads += b.nload
	st.stores += b.nstore
	return true
}

// bailStats charges the statistics of a bailing block's completed prefix:
// the instruction count recovers from the bail PC (ops are emitted in PC
// order), and the load/store counts recount from the predecoded text —
// bails are trap retries and syscall handoffs, far off the hot path, so
// the rare rescan is cheaper than per-access increments in execMem. The
// bailing instruction itself is excluded: the interpreter re-executes it
// and performs its accounting on the reference path.
func (b *tblock) bailStats(m *Machine, st *tstate) {
	k := (st.bailPC - b.entry) / isa.InstrBytes
	st.n += k
	idx := (b.entry - TextBase) / isa.InstrBytes
	for i := idx; i < idx+k; i++ {
		switch cl := m.dec[i].Class; {
		case cl.IsLoad():
			st.loads++
		case cl.IsStore():
			st.stores++
		}
	}
}

// icProbeSlow is the fetch probe's fallback when the probe site's way
// cache fails: the full I$ access, after which the site re-learns where
// its (static) line now lives. A probe site always probes the same line,
// so the way cache only goes stale when a replacement moves it.
//
//go:noinline
func (m *Machine) icProbeSlow(t *tinstr, st *tstate) {
	hit, _ := m.IC.AccessFull(t.pc, false, true)
	t.imm = int64(m.IC.LastWay())
	if !hit {
		m.stats.ICMisses++
		st.cycles += uint64(m.Cfg.ICMissStall)
		m.count(hwc.EvICMiss, 1, t.pc, 0, false)
	}
}

// icFoldProbeSlow is icProbeSlow for a probe folded into a never-bailing
// op, whose way cache lives in the op's (otherwise unread) prefix field.
//
//go:noinline
func (m *Machine) icFoldProbeSlow(t *tinstr, ppc uint64, st *tstate) {
	hit, _ := m.IC.AccessFull(ppc, false, true)
	t.prefix = uint64(m.IC.LastWay())
	if !hit {
		m.stats.ICMisses++
		st.cycles += uint64(m.Cfg.ICMissStall)
		m.count(hwc.EvICMiss, 1, ppc, 0, false)
	}
}

// fbr publishes a fused branch's successor: the taken target (aux) or the
// PC after the delay slot (carried in the pc field; a fused op never
// probes or traps, so the field is free). The comparison result, not the
// condition codes, decides — they are equivalent by the setCC identities
// (Z ⇔ a=b, N≠V ⇔ a<b signed, C ⇔ a<b unsigned).
func fbr(st *tstate, t *tinstr, taken bool) {
	if taken {
		st.target = t.aux
	} else {
		st.target = t.pc
	}
}

// execDivRem executes a translated divide/remainder. The optional fetch
// probe is folded in because its stall must be discarded if the
// divide-by-zero predicate bails (the reference path charges no cycles
// for a trapping instruction, while its fetch state effects remain — the
// interpreter's re-execution skips the probe because the fetch line
// already matches).
func (m *Machine) execDivRem(t *tinstr, st *tstate) bool {
	op2 := t.op2
	var fs uint64
	if probe := (op2 >> opProbeShift) & 3; probe != probeNone {
		line := t.aux
		if probe == probeAlways || line != st.fetchLine {
			st.fetchLine = line
			if hit, _ := m.IC.AccessFull(t.pc, false, true); !hit {
				m.stats.ICMisses++
				fs = uint64(m.Cfg.ICMissStall)
				m.count(hwc.EvICMiss, 1, t.pc, 0, false)
			}
		}
	}
	b := t.imm
	if op2&opRegOff != 0 {
		b = *t.rs2
	}
	if b == 0 {
		// Bail before any architectural effect; the interpreter
		// re-executes, writes rd=0, and raises the exact trap.
		return st.fail(t.pc, op2&opDelay != 0, t.prefix)
	}
	if op2&opIsDiv != 0 {
		*t.rd = *t.rs1 / b
	} else {
		*t.rd = *t.rs1 % b
	}
	st.cycles += fs
	return true
}

// execMem executes a translated memory access: runInner's access() with
// the fetch probe folded in, the trap checks turned into bails, and the
// cache hierarchy entered through the specialized stall paths below
// instead of the Result-returning API. Armed events count through the
// same count() calls as the reference path (the armed-event budget
// routes them into the batch deltas); simulation state updates — DTLB,
// D$/E$, statistics — are exactly the reference path's.
func (m *Machine) execMem(t *tinstr, st *tstate) bool {
	op2 := t.op2
	var fs uint64
	if probe := (op2 >> opProbeShift) & 3; probe != probeNone {
		line := t.pc >> m.icLineShift
		if probe == probeAlways || line != st.fetchLine {
			st.fetchLine = line
			if hit, _ := m.IC.AccessFull(t.pc, false, true); !hit {
				m.stats.ICMisses++
				fs = uint64(m.Cfg.ICMissStall)
				m.count(hwc.EvICMiss, 1, t.pc, 0, false)
			}
		}
	}
	b := t.imm
	if op2&opRegOff != 0 {
		b = *t.rs2
	}
	addr := uint64(*t.rs1 + b)
	cl := isa.Class(op2 & opClassMask)
	if cl != isa.ClPrefetch && addr&t.aux&siteAlignMask != 0 {
		return st.fail(t.pc, op2&opDelay != 0, t.prefix&sitePrefixMask) // Misaligned
	}
	seg, pageSize := m.segment(addr)
	if seg == SegNone {
		if cl == isa.ClPrefetch {
			st.cycles += fs
			return true // prefetches never fault, touch no TLB or cache
		}
		return st.fail(t.pc, op2&opDelay != 0, t.prefix&sitePrefixMask) // Segv
	}
	stall := fs
	// Per-site DTLB cache (prefix high bits): most sites re-translate the
	// page they used last time; the entry index is verified against the
	// live entry, so a stale hint just falls back to the full lookup.
	pageBase := addr &^ (pageSize - 1)
	if !m.DTLB.EntryHit(int(t.prefix>>siteTLBShift), pageBase) {
		if !m.DTLB.Lookup(pageBase, pageSize) {
			m.stats.DTLBMisses++
			stall += tlb.MissPenaltyCycles
			m.count(hwc.EvDTLBMiss, 1, t.pc, addr, true)
		}
		t.prefix = t.prefix&sitePrefixMask | uint64(uint32(m.DTLB.LastIdx()))<<siteTLBShift
	}
	// The inline MRU-way probe absorbs D$ hits without the Access call,
	// exactly like the interpreter's HitMRU fast path (a failed probe
	// mutates nothing, and the miss paths below re-probe through Access,
	// so state evolution is identical either way).
	d := m.Hier.D
	switch cl {
	case isa.ClLdB:
		if !d.HitMRU(addr, false) && !d.WayHit(int(t.aux>>siteDWayShift), addr, false) {
			stall += m.loadMissStall(t, addr)
		}
		*t.rd = int64(int8(m.Mem.Page(addr)[addr&mem.HostPageMask]))
	case isa.ClLdUB:
		if !d.HitMRU(addr, false) && !d.WayHit(int(t.aux>>siteDWayShift), addr, false) {
			stall += m.loadMissStall(t, addr)
		}
		*t.rd = int64(m.Mem.Page(addr)[addr&mem.HostPageMask])
	case isa.ClLdW:
		if !d.HitMRU(addr, false) && !d.WayHit(int(t.aux>>siteDWayShift), addr, false) {
			stall += m.loadMissStall(t, addr)
		}
		*t.rd = int64(int32(binary.LittleEndian.Uint32(m.Mem.Page(addr)[addr&mem.HostPageMask:])))
	case isa.ClLdX:
		if !d.HitMRU(addr, false) && !d.WayHit(int(t.aux>>siteDWayShift), addr, false) {
			stall += m.loadMissStall(t, addr)
		}
		*t.rd = int64(binary.LittleEndian.Uint64(m.Mem.Page(addr)[addr&mem.HostPageMask:]))
	case isa.ClStB:
		if !d.HitMRU(addr, true) && !d.WayHit(int(t.aux>>siteDWayShift), addr, true) {
			stall += m.storeMissStall(t, addr)
		}
		m.Mem.Page(addr)[addr&mem.HostPageMask] = uint8(*t.rd)
	case isa.ClStW:
		if !d.HitMRU(addr, true) && !d.WayHit(int(t.aux>>siteDWayShift), addr, true) {
			stall += m.storeMissStall(t, addr)
		}
		binary.LittleEndian.PutUint32(m.Mem.Page(addr)[addr&mem.HostPageMask:], uint32(*t.rd))
	case isa.ClStX:
		if !d.HitMRU(addr, true) && !d.WayHit(int(t.aux>>siteDWayShift), addr, true) {
			stall += m.storeMissStall(t, addr)
		}
		binary.LittleEndian.PutUint64(m.Mem.Page(addr)[addr&mem.HostPageMask:], uint64(*t.rd))
	default: // prefetch
		if !d.HitMRU(addr, false) && !d.WayHit(int(t.aux>>siteDWayShift), addr, false) {
			m.prefetchFill(t, addr)
		}
	}
	st.cycles += stall
	return true
}

// loadMissStall is Hierarchy.Load plus access()'s statistics and count()
// updates for a load whose MRU-way probe missed: no Result struct
// crosses the call. Access re-runs the same MRU probe first — the failed
// probe above mutated nothing — so state evolution is identical to the
// interpreter's HitMRU-then-Load sequence.
func (m *Machine) loadMissStall(t *tinstr, addr uint64) uint64 {
	h := m.Hier
	hit, _ := h.D.AccessFull(addr, false, true)
	t.aux = t.aux&^siteDWayMask | uint64(uint32(h.D.LastWay()))<<siteDWayShift
	if hit {
		return 0
	}
	m.stats.DCRdMisses++
	m.count(hwc.EvDCRdMiss, 1, t.pc, addr, true)
	m.stats.ECRefs++
	m.count(hwc.EvECRef, 1, t.pc, addr, true)
	// Per-site E$ way cache (aux bits 8..31): a striding site revisits
	// the same (long) E$ line for many consecutive D$ misses.
	ehit, wb := true, false
	if !h.E.WayHit(int(t.aux&siteEWayMask)>>siteEWayShift, addr, false) {
		ehit, wb = h.E.AccessFull(addr, false, true)
		t.aux = t.aux&^siteEWayMask | uint64(uint32(h.E.LastWay()))<<siteEWayShift&siteEWayMask
	}
	var stall int
	if ehit {
		stall = h.Costs.EHitStall
	} else {
		m.stats.ECRdMisses++
		m.count(hwc.EvECRdMiss, 1, t.pc, addr, true)
		stall = h.Costs.MemStall
	}
	if wb {
		stall += h.Costs.WritebackStall
	}
	h.ECStallCycles += uint64(stall)
	if stall > 0 {
		m.stats.ECStallCycles += uint64(stall)
		m.count(hwc.EvECStall, uint64(stall), t.pc, addr, true)
	}
	return uint64(stall)
}

// storeMissStall mirrors Hierarchy.Store the same way: write-through
// no-write-allocate D$, store hits absorbed by the write cache (no E$
// reference), store misses write-allocating in E$. E$ misses on stores
// count no ECRdMiss, matching Result's loads-only flag.
func (m *Machine) storeMissStall(t *tinstr, addr uint64) uint64 {
	h := m.Hier
	hit, _ := h.D.AccessFull(addr, true, false)
	if hit {
		// No-write-allocate: only a hit leaves the line resident, so only
		// a hit refreshes the site's way cache.
		t.aux = t.aux&^siteDWayMask | uint64(uint32(h.D.LastWay()))<<siteDWayShift
		return 0
	}
	m.stats.ECRefs++
	m.count(hwc.EvECRef, 1, t.pc, addr, true)
	ehit, wb := true, false
	if !h.E.WayHit(int(t.aux&siteEWayMask)>>siteEWayShift, addr, true) {
		ehit, wb = h.E.AccessFull(addr, true, true)
		t.aux = t.aux&^siteEWayMask | uint64(uint32(h.E.LastWay()))<<siteEWayShift&siteEWayMask
	}
	var stall int
	if !ehit {
		stall = h.Costs.StoreMissStall
	}
	if wb {
		stall += h.Costs.WritebackStall
	}
	h.ECStallCycles += uint64(stall)
	if stall > 0 {
		m.stats.ECStallCycles += uint64(stall)
		m.count(hwc.EvECStall, uint64(stall), t.pc, addr, true)
	}
	return uint64(stall)
}

// prefetchFill mirrors Hierarchy.Prefetch: fills both levels, never
// stalls, counts an E$ reference on a D$ miss and nothing else.
func (m *Machine) prefetchFill(t *tinstr, addr uint64) {
	h := m.Hier
	hit, _ := h.D.AccessFull(addr, false, true)
	t.aux = t.aux&^siteDWayMask | uint64(uint32(h.D.LastWay()))<<siteDWayShift
	if hit {
		return
	}
	m.stats.ECRefs++
	m.count(hwc.EvECRef, 1, t.pc, addr, true)
	if !h.E.WayHit(int(t.aux&siteEWayMask)>>siteEWayShift, addr, false) {
		h.E.AccessFull(addr, false, true)
		t.aux = t.aux&^siteEWayMask | uint64(uint32(h.E.LastWay()))<<siteEWayShift&siteEWayMask
	}
}

// translateBlock compiles the superblock entered at instruction index
// idx, or returns noTransBlock when no block can start there.
func (m *Machine) translateBlock(idx int) *tblock {
	b := &tblock{entry: TextBase + uint64(idx)*isa.InstrBytes}
	stallMax := uint64(m.Cfg.Costs.EHitStall+m.Cfg.Costs.MemStall+
		m.Cfg.Costs.StoreMissStall+m.Cfg.Costs.WritebackStall) + tlb.MissPenaltyCycles
	prevLine := ^uint64(0)
	i := idx
	for {
		if i >= len(m.dec) {
			// Fell off the end of text: the interpreter raises BadPC.
			break
		}
		d := &m.dec[i]
		if d.Class == isa.ClSyscall || d.Class == isa.ClHalt {
			break // never translated; the interpreter takes over here
		}
		pc := TextBase + uint64(i)*isa.InstrBytes
		line := pc >> m.icLineShift
		probe := probeNone
		switch {
		case i == idx:
			probe = probeFirst
		case line != prevLine:
			probe = probeAlways
		}
		prevLine = line

		if d.Class.IsCTI() {
			// A CTI enters a block only with a plain delay slot behind it;
			// a delay slot that is itself a CTI, a syscall, or a halt (or
			// past the end of text) keeps the sequence on the interpreter.
			if i+1 >= len(m.dec) || m.dec[i+1].EndsBlock() {
				break
			}
			// Superinstruction fusion: a conditional branch whose block
			// predecessor is the compare feeding it collapses into one
			// fused op. The compare commutes with the branch's own fetch
			// probe (the probe touches no registers or condition codes),
			// so popping it and re-emitting it inside the fused op at the
			// branch position preserves the execution exactly; costs,
			// ninstr, and bail prefixes are per-instruction and unchanged.
			// The compare must not itself carry a folded probe: popping it
			// would move that probe past the branch position.
			var fused *tinstr
			if d.Class == isa.ClBranch && d.Op != isa.Ba && len(b.code) > 0 {
				if k := b.code[len(b.code)-1].kind; (k == tCmpRR || k == tCmpRI) &&
					b.code[len(b.code)-1].op2&opProbeMask == 0 {
					cmp := b.code[len(b.code)-1]
					b.code = b.code[:len(b.code)-1]
					fused = &tinstr{
						kind: tFBeRR + 2*(branchKind[d.Op]-tBe) + (k - tCmpRR),
						rs1:  cmp.rs1, rs2: cmp.rs2, imm: cmp.imm,
						aux: uint64(d.Imm), pc: pc + 2*isa.InstrBytes,
					}
				}
			}
			if probe != probeNone {
				b.wc += uint64(m.Cfg.ICMissStall)
			}
			if fused != nil {
				fused.op2 = probe << opProbeShift
				b.code = append(b.code, *fused)
			} else {
				ti := m.emitCTI(d, pc)
				ti.op2 |= probe << opProbeShift
				b.code = append(b.code, ti)
			}
			b.static += uint64(d.Cost)
			b.wc += uint64(d.Cost)

			ds := &m.dec[i+1]
			dpc := pc + isa.InstrBytes
			dprobe := probeNone
			if dpc>>m.icLineShift != line {
				dprobe = probeAlways
			}
			m.emitInstr(b, ds, dpc, dprobe, true, stallMax)
			b.static += uint64(ds.Cost)
			b.wc += uint64(ds.Cost)
			b.ninstr = uint64(i + 2 - idx)
			b.kind = tEndCTI
			return b
		}

		m.emitInstr(b, d, pc, probe, false, stallMax)
		b.static += uint64(d.Cost)
		b.wc += uint64(d.Cost)
		i++
		if uint64(i-idx) >= transMaxBlockInstrs {
			break
		}
	}
	if i == idx {
		return noTransBlock
	}
	b.ninstr = uint64(i - idx)
	b.kind = tEndGoto
	b.next = TextBase + uint64(i)*isa.InstrBytes
	return b
}

// emitInstr appends the ops for one non-CTI instruction: a combined
// probe+op for trap-capable classes (the fetch stall must be discarded if
// the trap predicate bails), an op carrying the probe in its spare op2
// bits otherwise (standalone probes survive only ahead of nops, which
// emit no op to carry one).
// The block's running static sum becomes the op's bail prefix; stallMax
// is the worst per-access memory stall, for the block's wc bound.
func (m *Machine) emitInstr(b *tblock, d *isa.Decoded, pc uint64, probe uint8, delay bool, stallMax uint64) {
	line := pc >> m.icLineShift
	flags := probe << opProbeShift
	if delay {
		flags |= opDelay
	}
	if d.Flags&isa.DFlagImm == 0 {
		flags |= opRegOff
	}
	switch {
	case d.Class.IsMem():
		if probe != probeNone {
			b.wc += uint64(m.Cfg.ICMissStall)
		}
		b.wc += stallMax
		b.nmem++
		switch {
		case d.Class.IsLoad():
			b.nload++
		case d.Class.IsStore():
			b.nstore++
		}
		b.code = append(b.code, tinstr{
			kind: tMem, op2: flags | uint8(d.Class),
			rd: m.memReg(d), rs1: &m.Regs[d.Rs1], rs2: &m.Regs[d.Rs2],
			imm: d.Imm, aux: uint64(d.MemSize - 1), pc: pc, prefix: b.static,
		})
		return
	case d.Class == isa.ClDiv || d.Class == isa.ClRem:
		if probe != probeNone {
			b.wc += uint64(m.Cfg.ICMissStall)
		}
		op2 := flags
		if d.Class == isa.ClDiv {
			op2 |= opIsDiv
		}
		b.code = append(b.code, tinstr{
			kind: tDivRem, op2: op2,
			rd: m.wregPtr(d.Rd), rs1: &m.Regs[d.Rs1], rs2: &m.Regs[d.Rs2],
			imm: d.Imm, aux: line, pc: pc, prefix: b.static,
		})
		return
	}
	if probe != probeNone {
		b.wc += uint64(m.Cfg.ICMissStall)
		if d.Class == isa.ClNop {
			// A nop emits no op to carry the probe; keep it standalone.
			b.code = append(b.code, tinstr{kind: tProbeFirst - 1 + probe, pc: pc, aux: line})
			return
		}
	}
	if d.Class == isa.ClNop {
		return // base cost is in the static sum; nothing executes
	}
	ti := m.emitALU(d)
	ti.op2 = probe << opProbeShift
	ti.pc = pc
	b.code = append(b.code, ti)
}

// memReg resolves the register the memory op moves data through: the
// write-destination slot for loads (G0 writes go to the sink), the read
// source for stores (G0 reads zero from the file, which no op writes).
func (m *Machine) memReg(d *isa.Decoded) *int64 {
	if d.Class.IsLoad() {
		return m.wregPtr(d.Rd)
	}
	return &m.Regs[d.Rd]
}

// wregPtr returns the destination slot for register r: the register
// file, or the translation sink for the hardwired-zero G0.
func (m *Machine) wregPtr(r isa.Reg) *int64 {
	if r == isa.G0 {
		return &m.ensureTrans().sink
	}
	return &m.Regs[r]
}

// emitALU builds the op for a non-trapping, non-CTI instruction.
// Register operands resolve to register-file pointers and immediates to
// constants; the register/immediate variants get distinct kinds so their
// dispatch cases are branch-free.
func (m *Machine) emitALU(d *isa.Decoded) tinstr {
	t := tinstr{
		rd:  m.wregPtr(d.Rd),
		rs1: &m.Regs[d.Rs1],
		rs2: &m.Regs[d.Rs2],
		imm: d.Imm,
	}
	useImm := d.Flags&isa.DFlagImm != 0
	// kind = base kind for the class; +1 selects the immediate variant.
	variant := uint8(0)
	if useImm {
		variant = 1
	}
	switch d.Class {
	case isa.ClAdd:
		t.kind = tAddRR + variant
	case isa.ClSub:
		t.kind = tSubRR + variant
	case isa.ClMul:
		t.kind = tMulRR + variant
	case isa.ClAnd:
		t.kind = tAndRR + variant
	case isa.ClOr:
		t.kind = tOrRR + variant
	case isa.ClXor:
		t.kind = tXorRR + variant
	case isa.ClSll:
		t.kind = tSllRR + variant
		t.aux = uint64(d.Imm) & 63
	case isa.ClSrl:
		t.kind = tSrlRR + variant
		t.aux = uint64(d.Imm) & 63
	case isa.ClSra:
		t.kind = tSraRR + variant
		t.aux = uint64(d.Imm) & 63
	case isa.ClMovImm:
		t.kind = tMov
	case isa.ClSetHi:
		if useImm {
			// Never reached (Predecode rewrites to ClMovImm), but keep the
			// semantics anyway.
			t.kind = tMov
			t.imm = d.Imm << isa.SetHiShift
		} else {
			t.kind = tSetHiR
		}
	case isa.ClCmp:
		t.kind = tCmpRR + variant
	}
	return t
}

// branchKind maps a branch opcode to its dispatch kind.
var branchKind = map[isa.Op]uint8{
	isa.Ba: tBa, isa.Be: tBe, isa.Bne: tBne, isa.Bg: tBg, isa.Bge: tBge,
	isa.Bl: tBl, isa.Ble: tBle, isa.Bgu: tBgu, isa.Bgeu: tBgeu,
	isa.Blu: tBlu, isa.Bleu: tBleu,
}

// emitCTI builds the op for a branch, call, or jmpl. Branches publish
// the successor in st.target: the precomputed absolute target when
// taken, or the PC after the delay slot when not.
func (m *Machine) emitCTI(d *isa.Decoded, pc uint64) tinstr {
	switch d.Class {
	case isa.ClBranch:
		return tinstr{kind: branchKind[d.Op], imm: d.Imm, aux: pc + 2*isa.InstrBytes, pc: pc}
	case isa.ClCall:
		return tinstr{kind: tCall, imm: d.Imm, pc: pc}
	default: // ClJmpl
		var op2 uint8
		if d.Flags&isa.DFlagImm == 0 {
			op2 |= opRegOff
		}
		if d.Flags&isa.DFlagRet != 0 {
			op2 |= opJmplRet
		}
		return tinstr{
			kind: tJmpl, op2: op2,
			rd: m.wregPtr(d.Rd), rs1: &m.Regs[d.Rs1], rs2: &m.Regs[d.Rs2],
			imm: d.Imm, pc: pc,
		}
	}
}
