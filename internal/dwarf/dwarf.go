// Package dwarf implements the debug symbol tables the memory-profiling
// pipeline depends on: type descriptions, struct members with offsets,
// per-instruction data-object cross references, source line tables,
// branch-target tables and function tables.
//
// The paper requires -xdebugformat=dwarf because STABS symbol tables
// cannot carry the data-reference cross references; the Format field
// models that distinction — a STABS table carries functions and lines but
// no data xrefs, and the analyzer reports its memory events as
// (Unascertainable).
package dwarf

import (
	"fmt"
	"sort"
)

// Format is the debug symbol table format.
type Format uint8

// Symbol table formats.
const (
	FormatNone Format = iota
	FormatSTABS
	FormatDWARF
)

func (f Format) String() string {
	switch f {
	case FormatSTABS:
		return "stabs"
	case FormatDWARF:
		return "dwarf"
	}
	return "none"
}

// TypeID indexes Table.Types. 0 is reserved for "no type".
type TypeID int32

// NoType is the zero TypeID.
const NoType TypeID = 0

// TypeKind classifies a type.
type TypeKind uint8

// Type kinds.
const (
	KindBase TypeKind = iota
	KindPointer
	KindStruct
	KindArray
)

// Member is one struct member.
type Member struct {
	Name string
	Off  int64
	Type TypeID
}

// Type describes a source-level type.
type Type struct {
	Name    string // e.g. "long", "node", "arc"
	Kind    TypeKind
	Size    int64
	Elem    TypeID   // pointee / array element
	Count   int64    // array length
	Members []Member // struct members, by increasing offset
}

// Func describes one function's text range.
type Func struct {
	Name    string
	Start   uint64 // first PC
	End     uint64 // one past last PC
	File    string
	HWCProf bool // compiled with -xhwcprof (xrefs and branch targets valid)
}

// DataXref cross-references one memory instruction with the data object
// it accesses: the containing object type and, for struct accesses, the
// member.
//
// A DataXref with Type == NoType marks a reference the compiler knows is
// a compiler temporary (register spill); the analyzer buckets these as
// (Unidentified). A memory instruction with no xref entry at all gets
// (Unspecified).
type DataXref struct {
	Type   TypeID // containing object's type (a struct or scalar type)
	Member int32  // index into the struct's Members; -1 for non-struct
	Var    string // variable name for scalar/array objects, if known
}

// Table is the full debug information of one program.
type Table struct {
	Format Format
	Types  []Type // Types[0] is a placeholder invalid entry
	Funcs  []Func // sorted by Start

	// Lines maps each instruction PC to its source line (0 if unknown).
	Lines map[uint64]int32
	// Xrefs maps memory-instruction PCs to data objects (DWARF +
	// -xhwcprof only).
	Xrefs map[uint64]DataXref
	// BranchTargets is the set of PCs that are targets of control
	// transfers (-xhwcprof only); the analyzer uses it to validate
	// candidate trigger PCs.
	BranchTargets map[uint64]bool

	// Source holds the program source text by file name, for annotated
	// source listings.
	Source map[string][]string
}

// NewTable returns an empty table of the given format.
func NewTable(format Format) *Table {
	return &Table{
		Format:        format,
		Types:         []Type{{Name: "<invalid>"}},
		Lines:         make(map[uint64]int32),
		Xrefs:         make(map[uint64]DataXref),
		BranchTargets: make(map[uint64]bool),
		Source:        make(map[string][]string),
	}
}

// AddType appends t and returns its ID.
func (t *Table) AddType(ty Type) TypeID {
	t.Types = append(t.Types, ty)
	return TypeID(len(t.Types) - 1)
}

// TypeByID returns the type, or nil for NoType / out of range.
func (t *Table) TypeByID(id TypeID) *Type {
	if id <= 0 || int(id) >= len(t.Types) {
		return nil
	}
	return &t.Types[id]
}

// TypeByName finds a type by name (first match).
func (t *Table) TypeByName(name string) (TypeID, *Type) {
	for i := 1; i < len(t.Types); i++ {
		if t.Types[i].Name == name {
			return TypeID(i), &t.Types[i]
		}
	}
	return NoType, nil
}

// MemberIndex returns the index of the named member, or -1.
func (ty *Type) MemberIndex(name string) int {
	for i := range ty.Members {
		if ty.Members[i].Name == name {
			return i
		}
	}
	return -1
}

// MemberSize returns the storage size of member i of struct id, resolved
// through the member's type. When the member type is unknown the gap to
// the next member (or the struct end) is used, so a partially populated
// table still yields usable byte counts.
func (t *Table) MemberSize(id TypeID, i int) int64 {
	ty := t.TypeByID(id)
	if ty == nil || i < 0 || i >= len(ty.Members) {
		return 0
	}
	if mt := t.TypeByID(ty.Members[i].Type); mt != nil && mt.Size > 0 {
		return mt.Size
	}
	end := ty.Size
	if i+1 < len(ty.Members) {
		end = ty.Members[i+1].Off
	}
	if end > ty.Members[i].Off {
		return end - ty.Members[i].Off
	}
	return 0
}

// MemberAlign returns the natural alignment of member i of struct id:
// the size for base and pointer types, the element alignment for arrays,
// and the maximum member alignment for nested structs (capped at 8, the
// machine word).
func (t *Table) MemberAlign(id TypeID, i int) int64 {
	ty := t.TypeByID(id)
	if ty == nil || i < 0 || i >= len(ty.Members) {
		return 1
	}
	return t.alignOf(ty.Members[i].Type)
}

func (t *Table) alignOf(id TypeID) int64 {
	ty := t.TypeByID(id)
	if ty == nil {
		return 1
	}
	switch ty.Kind {
	case KindBase, KindPointer:
		if ty.Size >= 1 && ty.Size <= 8 {
			return ty.Size
		}
		return 8
	case KindArray:
		return t.alignOf(ty.Elem)
	case KindStruct:
		var a int64 = 1
		for i := range ty.Members {
			if ma := t.alignOf(ty.Members[i].Type); ma > a {
				a = ma
			}
		}
		return a
	}
	return 1
}

// AddFunc records a function; call SortFuncs when done adding.
func (t *Table) AddFunc(f Func) { t.Funcs = append(t.Funcs, f) }

// SortFuncs sorts the function table by start PC.
func (t *Table) SortFuncs() {
	sort.Slice(t.Funcs, func(i, j int) bool { return t.Funcs[i].Start < t.Funcs[j].Start })
}

// FuncAt returns the function containing pc, or nil.
func (t *Table) FuncAt(pc uint64) *Func {
	i := sort.Search(len(t.Funcs), func(i int) bool { return t.Funcs[i].End > pc })
	if i < len(t.Funcs) && t.Funcs[i].Start <= pc {
		return &t.Funcs[i]
	}
	return nil
}

// FuncByName finds a function by name.
func (t *Table) FuncByName(name string) *Func {
	for i := range t.Funcs {
		if t.Funcs[i].Name == name {
			return &t.Funcs[i]
		}
	}
	return nil
}

// TypeDisplay renders a type name the way the paper's listings do:
// structs as "structure:node", pointers as "pointer+structure:node".
func (t *Table) TypeDisplay(id TypeID) string {
	ty := t.TypeByID(id)
	if ty == nil {
		return "?"
	}
	switch ty.Kind {
	case KindStruct:
		return "structure:" + ty.Name
	case KindPointer:
		return "pointer+" + t.TypeDisplay(ty.Elem)
	case KindArray:
		return fmt.Sprintf("array[%d]+%s", ty.Count, t.TypeDisplay(ty.Elem))
	default:
		return ty.Name
	}
}

// XrefDisplay renders the annotation shown next to a memory instruction,
// e.g. "{structure:node -}{long orientation}" for a member access or
// "{long basket_size}" for a scalar.
func (t *Table) XrefDisplay(x DataXref) string {
	ty := t.TypeByID(x.Type)
	if ty == nil {
		if x.Type == NoType {
			return "{<compiler temporary>}"
		}
		return ""
	}
	if ty.Kind == KindStruct && x.Member >= 0 && int(x.Member) < len(ty.Members) {
		m := ty.Members[x.Member]
		return fmt.Sprintf("{%s -}{%s %s}", t.TypeDisplay(x.Type), t.TypeDisplay(m.Type), m.Name)
	}
	if x.Var != "" {
		return fmt.Sprintf("{%s %s}", t.TypeDisplay(x.Type), x.Var)
	}
	return fmt.Sprintf("{%s}", t.TypeDisplay(x.Type))
}
