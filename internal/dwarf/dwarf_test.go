package dwarf

import "testing"

func buildTable() (*Table, TypeID, TypeID) {
	t := NewTable(FormatDWARF)
	long := t.AddType(Type{Name: "long", Kind: KindBase, Size: 8})
	node := t.AddType(Type{Name: "node", Kind: KindStruct, Size: 120})
	nodePtr := t.AddType(Type{Name: "", Kind: KindPointer, Size: 8, Elem: node})
	t.Types[node].Members = []Member{
		{Name: "number", Off: 0, Type: long},
		{Name: "pred", Off: 16, Type: nodePtr},
		{Name: "orientation", Off: 56, Type: long},
	}
	return t, long, node
}

func TestFormatString(t *testing.T) {
	if FormatDWARF.String() != "dwarf" || FormatSTABS.String() != "stabs" || FormatNone.String() != "none" {
		t.Error("format names wrong")
	}
}

func TestTypeLookup(t *testing.T) {
	tab, long, node := buildTable()
	if ty := tab.TypeByID(long); ty == nil || ty.Name != "long" {
		t.Error("TypeByID failed")
	}
	if tab.TypeByID(NoType) != nil || tab.TypeByID(99) != nil {
		t.Error("TypeByID out-of-range not nil")
	}
	if id, ty := tab.TypeByName("node"); id != node || ty.Size != 120 {
		t.Error("TypeByName failed")
	}
	if id, _ := tab.TypeByName("missing"); id != NoType {
		t.Error("TypeByName found missing type")
	}
}

func TestTypeDisplay(t *testing.T) {
	tab, long, node := buildTable()
	if got := tab.TypeDisplay(long); got != "long" {
		t.Errorf("base display = %q", got)
	}
	if got := tab.TypeDisplay(node); got != "structure:node" {
		t.Errorf("struct display = %q", got)
	}
	ptr := tab.Types[node].Members[1].Type
	if got := tab.TypeDisplay(ptr); got != "pointer+structure:node" {
		t.Errorf("pointer display = %q", got)
	}
	if got := tab.TypeDisplay(NoType); got != "?" {
		t.Errorf("invalid display = %q", got)
	}
}

func TestXrefDisplay(t *testing.T) {
	tab, long, node := buildTable()
	// Member access, like the paper's "{structure:node -}{long orientation}".
	got := tab.XrefDisplay(DataXref{Type: node, Member: 2})
	if got != "{structure:node -}{long orientation}" {
		t.Errorf("member xref = %q", got)
	}
	// Pointer member renders the pointer type.
	got = tab.XrefDisplay(DataXref{Type: node, Member: 1})
	if got != "{structure:node -}{pointer+structure:node pred}" {
		t.Errorf("pointer member xref = %q", got)
	}
	// Scalar.
	got = tab.XrefDisplay(DataXref{Type: long, Member: -1})
	if got != "{long}" {
		t.Errorf("scalar xref = %q", got)
	}
	if got := tab.XrefDisplay(DataXref{Type: NoType}); got != "{<compiler temporary>}" {
		t.Errorf("temporary xref = %q", got)
	}
	if got := tab.XrefDisplay(DataXref{Type: long, Member: -1, Var: "basket_size"}); got != "{long basket_size}" {
		t.Errorf("named scalar xref = %q", got)
	}
}

func TestFuncAt(t *testing.T) {
	tab := NewTable(FormatDWARF)
	tab.AddFunc(Func{Name: "b", Start: 0x2000, End: 0x3000})
	tab.AddFunc(Func{Name: "a", Start: 0x1000, End: 0x2000})
	tab.SortFuncs()
	cases := []struct {
		pc   uint64
		want string
	}{
		{0x1000, "a"}, {0x1ffc, "a"}, {0x2000, "b"}, {0x2fff, "b"},
	}
	for _, c := range cases {
		if f := tab.FuncAt(c.pc); f == nil || f.Name != c.want {
			t.Errorf("FuncAt(%#x) = %v, want %s", c.pc, f, c.want)
		}
	}
	if tab.FuncAt(0x0) != nil || tab.FuncAt(0x3000) != nil {
		t.Error("FuncAt outside ranges not nil")
	}
	if f := tab.FuncByName("b"); f == nil || f.Start != 0x2000 {
		t.Error("FuncByName failed")
	}
	if tab.FuncByName("zzz") != nil {
		t.Error("FuncByName found missing")
	}
}

func TestArrayDisplay(t *testing.T) {
	tab := NewTable(FormatDWARF)
	long := tab.AddType(Type{Name: "long", Kind: KindBase, Size: 8})
	arr := tab.AddType(Type{Kind: KindArray, Size: 80, Elem: long, Count: 10})
	if got := tab.TypeDisplay(arr); got != "array[10]+long" {
		t.Errorf("array display = %q", got)
	}
}
