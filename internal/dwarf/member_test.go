package dwarf

import "testing"

// Member geometry helpers used by the data-layout advisor.

func TestMemberIndex(t *testing.T) {
	tab, _, node := buildTable()
	ty := tab.TypeByID(node)
	if i := ty.MemberIndex("pred"); i != 1 {
		t.Errorf("MemberIndex(pred) = %d, want 1", i)
	}
	if i := ty.MemberIndex("missing"); i != -1 {
		t.Errorf("MemberIndex(missing) = %d, want -1", i)
	}
}

func TestMemberSize(t *testing.T) {
	tab, _, node := buildTable()
	// Members with typed sizes report the member type's size.
	for i, want := range []int64{8, 8, 8} {
		if got := tab.MemberSize(node, i); got != want {
			t.Errorf("MemberSize(%d) = %d, want %d", i, got, want)
		}
	}
	// A member of unknown type falls back to the gap to the next member,
	// or to the struct end for the last member.
	gap := tab.AddType(Type{Name: "gappy", Kind: KindStruct, Size: 32})
	tab.Types[gap].Members = []Member{
		{Name: "a", Off: 0, Type: NoType},
		{Name: "b", Off: 24, Type: NoType},
	}
	if got := tab.MemberSize(gap, 0); got != 24 {
		t.Errorf("gap size = %d, want 24", got)
	}
	if got := tab.MemberSize(gap, 1); got != 8 {
		t.Errorf("tail size = %d, want 8", got)
	}
	if got := tab.MemberSize(gap, 9); got != 0 {
		t.Errorf("out-of-range size = %d, want 0", got)
	}
	if got := tab.MemberSize(NoType, 0); got != 0 {
		t.Errorf("invalid type size = %d, want 0", got)
	}
}

func TestMemberAlign(t *testing.T) {
	tab, long, node := buildTable()
	small := tab.AddType(Type{Name: "char", Kind: KindBase, Size: 1})
	arr := tab.AddType(Type{Name: "", Kind: KindArray, Size: 24, Elem: long})
	mixed := tab.AddType(Type{Name: "mixed", Kind: KindStruct, Size: 40})
	tab.Types[mixed].Members = []Member{
		{Name: "c", Off: 0, Type: small},
		{Name: "v", Off: 8, Type: arr},
		{Name: "n", Off: 32, Type: tab.Types[node].Members[1].Type}, // pointer
	}
	if got := tab.MemberAlign(mixed, 0); got != 1 {
		t.Errorf("char align = %d, want 1", got)
	}
	if got := tab.MemberAlign(mixed, 1); got != 8 {
		t.Errorf("array-of-long align = %d, want 8", got)
	}
	if got := tab.MemberAlign(mixed, 2); got != 8 {
		t.Errorf("pointer align = %d, want 8", got)
	}
	// A struct member aligns to its widest member.
	outer := tab.AddType(Type{Name: "outer", Kind: KindStruct, Size: 48})
	tab.Types[outer].Members = []Member{{Name: "m", Off: 0, Type: mixed}}
	if got := tab.MemberAlign(outer, 0); got != 8 {
		t.Errorf("struct align = %d, want 8", got)
	}
	if got := tab.MemberAlign(outer, 7); got != 1 {
		t.Errorf("out-of-range align = %d, want 1", got)
	}
}
