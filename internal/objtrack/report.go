package objtrack

// report.go plugs the object-centric analyses into the analyzer's report
// registry, the same extension seam the advisor uses. Registering here
// means "site-heat", "obj-timeline" and "dead-objects" render
// byte-identically through every consumer — erprint command tokens,
// profd's HTTP report endpoint, and the cluster coordinator's
// distributed reduction all dispatch through analyzer.Render.

import (
	"fmt"
	"io"
	"sort"

	"dsprof/internal/analyzer"
	"dsprof/internal/hwc"
)

func init() {
	analyzer.RegisterReport(analyzer.RegisteredReport{
		Name: "site-heat",
		Desc: "allocation sites ranked by joined counter events",
		Text: renderSiteHeat,
		JSON: siteHeatJSON,
	})
	analyzer.RegisterReport(analyzer.RegisteredReport{
		Name:     "obj-timeline",
		NeedsArg: true,
		Desc:     "obj-timeline=FN: per-instance access timelines for blocks allocated in FN",
		Text:     renderTimeline,
		JSON:     timelineJSON,
	})
	analyzer.RegisterReport(analyzer.RegisteredReport{
		Name: "dead-objects",
		Desc: "dead-on-arrival / write-only / single-use heap blocks with byte counts",
		Text: renderDeadObjects,
		JSON: deadObjectsJSON,
	})
}

// topN applies the registry-wide default: 0 means the er_print default
// of 20 rows.
func topN(opts analyzer.RenderOpts) int {
	if opts.TopN <= 0 {
		return 20
	}
	return opts.TopN
}

// columns mirrors the analyzer's metric column set (its columnSet is
// unexported): the paper's event order, filtered to what was collected.
func columns(a *analyzer.Analyzer) []hwc.Event {
	var cols []hwc.Event
	for _, ev := range []hwc.Event{hwc.EvECStall, hwc.EvECRdMiss, hwc.EvECRef, hwc.EvDCRdMiss, hwc.EvDTLBMiss, hwc.EvCycles, hwc.EvInstrs} {
		if a.HasEvent(ev) {
			cols = append(cols, ev)
		}
	}
	return cols
}

func evShort(ev hwc.Event) string {
	switch ev {
	case hwc.EvECStall:
		return "E$ Stall"
	case hwc.EvECRdMiss:
		return "E$ RdMs"
	case hwc.EvECRef:
		return "E$ Refs"
	case hwc.EvDCRdMiss:
		return "D$ RdMs"
	case hwc.EvDTLBMiss:
		return "DTLB Ms"
	case hwc.EvCycles:
		return "Cycles"
	case hwc.EvInstrs:
		return "Instrs"
	}
	return ev.String()
}

func evTitle(ev hwc.Event) string {
	switch ev {
	case hwc.EvECStall:
		return "E$ Stall Cycles"
	case hwc.EvECRdMiss:
		return "E$ Read Misses"
	case hwc.EvECRef:
		return "E$ Refs"
	case hwc.EvDCRdMiss:
		return "D$ Read Misses"
	case hwc.EvDTLBMiss:
		return "DTLB Misses"
	case hwc.EvCycles:
		return "Cycles"
	case hwc.EvInstrs:
		return "Instructions"
	}
	return ev.Desc()
}

// rankSites orders sites for presentation: by the rank event's joined
// overflows descending (total joined events when no counter was
// collected), site PC ascending on ties.
func rankSites(sites []Site, rank hwc.Event) []Site {
	out := make([]Site, len(sites))
	copy(out, sites)
	weight := func(s *Site) uint64 {
		if rank == hwc.EvNone {
			return s.Total
		}
		return s.Events[rank]
	}
	sort.SliceStable(out, func(i, j int) bool {
		wi, wj := weight(&out[i]), weight(&out[j])
		if wi != wj {
			return wi > wj
		}
		return out[i].PC < out[j].PC
	})
	return out
}

func provHeader(w io.Writer, idx *Index) {
	fmt.Fprintf(w, "provenance: %d allocation records across %d sites\n", idx.Records, len(idx.Sites))
	fmt.Fprintf(w, "joined %d of %d EA-carrying events (%d outside known heap blocks)\n",
		idx.Joined, idx.Joined+idx.Unjoined, idx.Unjoined)
}

// --- site-heat ---

func renderSiteHeat(a *analyzer.Analyzer, w io.Writer, arg string, opts analyzer.RenderOpts) error {
	idx, err := Build(a)
	if err != nil {
		return err
	}
	rank := RankEvent(a)
	rankName := "joined events"
	if rank != hwc.EvNone {
		rankName = evTitle(rank)
	}
	fmt.Fprintf(w, "Allocation-site heat: ranked by %s\n", rankName)
	provHeader(w, idx)
	fmt.Fprintf(w, "\n")
	cols := columns(a)
	for _, ev := range cols {
		fmt.Fprintf(w, "%10s %6s  ", evShort(ev), "")
	}
	fmt.Fprintf(w, "%7s %10s %10s  Site\n", "Allocs", "Bytes", "Live")
	for range cols {
		fmt.Fprintf(w, "%10s %6s  ", "count", "%")
	}
	fmt.Fprintf(w, "\n")

	// Column percentages are shares of the joined events, i.e. of the
	// heap-resident portion of each metric — not of the whole program.
	var joinedTotal [hwc.NumEvents]uint64
	for i := range idx.Sites {
		for ev, n := range idx.Sites[i].Events {
			joinedTotal[ev] += n
		}
	}
	n := topN(opts)
	ranked := rankSites(idx.Sites, rank)
	for i, s := range ranked {
		if i >= n {
			fmt.Fprintf(w, "... %d more site(s)\n", len(ranked)-n)
			break
		}
		for _, ev := range cols {
			pct := 0.0
			if joinedTotal[ev] > 0 {
				pct = 100 * float64(s.Events[ev]) / float64(joinedTotal[ev])
			}
			fmt.Fprintf(w, "%10d %5.1f%%  ", a.Count(ev, s.Events[ev]), pct)
		}
		fmt.Fprintf(w, "%7d %10d %10d  %s\n", s.Allocs, s.Bytes, s.LiveBytes, SiteName(a, s.PC))
	}
	return nil
}

type siteJSON struct {
	PC        string            `json:"pc"`
	Name      string            `json:"name"`
	Func      string            `json:"func"`
	Allocs    int               `json:"allocs"`
	Bytes     uint64            `json:"bytes"`
	LiveBytes uint64            `json:"liveBytes"`
	Total     uint64            `json:"joinedEvents"`
	Events    map[string]uint64 `json:"events,omitempty"`
}

func siteToJSON(a *analyzer.Analyzer, s *Site) siteJSON {
	out := siteJSON{
		PC:        fmt.Sprintf("0x%08x", s.PC),
		Name:      SiteName(a, s.PC),
		Func:      SiteFunc(a, s.PC),
		Allocs:    s.Allocs,
		Bytes:     s.Bytes,
		LiveBytes: s.LiveBytes,
		Total:     s.Total,
	}
	for _, ev := range columns(a) {
		if out.Events == nil {
			out.Events = make(map[string]uint64)
		}
		out.Events[ev.String()] = a.Count(ev, s.Events[ev])
	}
	return out
}

func siteHeatJSON(a *analyzer.Analyzer, arg string, opts analyzer.RenderOpts) (any, error) {
	idx, err := Build(a)
	if err != nil {
		return nil, err
	}
	rank := RankEvent(a)
	ranked := rankSites(idx.Sites, rank)
	if n := topN(opts); len(ranked) > n {
		ranked = ranked[:n]
	}
	sites := make([]siteJSON, 0, len(ranked))
	for i := range ranked {
		sites = append(sites, siteToJSON(a, &ranked[i]))
	}
	return map[string]any{
		"rankedBy": rank.String(),
		"records":  idx.Records,
		"joined":   idx.Joined,
		"unjoined": idx.Unjoined,
		"sites":    sites,
	}, nil
}

// --- obj-timeline ---

// timelineBuckets is the fixed width of the ASCII access timeline.
const timelineBuckets = 48

// timelineSpan is the cycle axis shared by every instance row: the
// earliest birth to the latest of any death, birth, or joined event.
func timelineSpan(idx *Index, cycles [][]uint64) (lo, hi uint64) {
	first := true
	grow := func(c uint64) {
		if first {
			lo, hi, first = c, c, false
			return
		}
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	for i := range idx.Instances {
		in := &idx.Instances[i]
		grow(in.Birth)
		if in.Freed {
			grow(in.Death)
		}
		for _, c := range cycles[i] {
			grow(c)
		}
	}
	return lo, hi
}

// joinCycles replays the EA-event stream through the index, returning
// each instance's joined event cycle stamps in stream order.
func joinCycles(a *analyzer.Analyzer, idx *Index) [][]uint64 {
	cycles := make([][]uint64, len(idx.Instances))
	for _, ae := range a.EAEvents() {
		if i := idx.Lookup(ae.EA, ae.Cycles); i >= 0 {
			cycles[i] = append(cycles[i], ae.Cycles)
		}
	}
	return cycles
}

// bucketize folds event cycle stamps onto the shared axis.
func bucketize(evCycles []uint64, lo, hi uint64) [timelineBuckets]int {
	var out [timelineBuckets]int
	span := hi - lo
	for _, c := range evCycles {
		if c < lo || c > hi {
			continue
		}
		b := 0
		if span > 0 {
			b = int((c - lo) * (timelineBuckets - 1) / span)
		}
		out[b]++
	}
	return out
}

// timelineRow renders one instance's life as a fixed-width strip:
// ' ' before birth or after death, '-' alive but quiet, digits 1-9 for
// joined events in the bucket, '*' for ten or more.
func timelineRow(in *Instance, buckets [timelineBuckets]int, lo, hi uint64) string {
	span := hi - lo
	pos := func(c uint64) int {
		if span == 0 {
			return 0
		}
		if c < lo {
			return 0
		}
		if c > hi {
			return timelineBuckets - 1
		}
		return int((c - lo) * (timelineBuckets - 1) / span)
	}
	born := pos(in.Birth)
	died := timelineBuckets - 1
	if in.Freed {
		died = pos(in.Death)
	}
	row := make([]byte, timelineBuckets)
	for b := 0; b < timelineBuckets; b++ {
		switch n := buckets[b]; {
		case n >= 10:
			row[b] = '*'
		case n > 0:
			row[b] = byte('0' + n)
		case b >= born && b <= died:
			row[b] = '-'
		default:
			row[b] = ' '
		}
	}
	return string(row)
}

// funcInstances returns the indexes of instances allocated inside the
// named function, in allocation order.
func funcInstances(a *analyzer.Analyzer, idx *Index, fn string) []int {
	var is []int
	for i := range idx.Instances {
		if SiteFunc(a, idx.Instances[i].Site) == fn {
			is = append(is, i)
		}
	}
	return is
}

func renderTimeline(a *analyzer.Analyzer, w io.Writer, arg string, opts analyzer.RenderOpts) error {
	idx, err := Build(a)
	if err != nil {
		return err
	}
	if arg == "" {
		return fmt.Errorf("objtrack: obj-timeline needs a function name (obj-timeline=FN)")
	}
	is := funcInstances(a, idx, arg)
	if len(is) == 0 {
		return fmt.Errorf("objtrack: no heap blocks allocated in function %q", arg)
	}
	cycles := joinCycles(a, idx)
	lo, hi := timelineSpan(idx, cycles)
	fmt.Fprintf(w, "Object timelines for function %s: %d instance(s)\n", arg, len(is))
	provHeader(w, idx)
	fmt.Fprintf(w, "time axis: cycle %d .. %d, %d buckets (' ' unborn/freed, '-' quiet, 1-9/'*' joined events)\n\n",
		lo, hi, timelineBuckets)
	n := topN(opts)
	for row, i := range is {
		if row >= n {
			fmt.Fprintf(w, "... %d more instance(s)\n", len(is)-n)
			break
		}
		in := &idx.Instances[i]
		death := "live at exit"
		if in.Freed {
			death = fmt.Sprintf("freed %d", in.Death)
		}
		fmt.Fprintf(w, "seq %6d  %8d bytes  addr 0x%08x  born %d  %s  events %d (r %d / w %d)\n",
			in.Seq, in.Size, in.Addr, in.Birth, death, in.Total, in.Reads, in.Writes)
		fmt.Fprintf(w, "  |%s|\n", timelineRow(in, bucketize(cycles[i], lo, hi), lo, hi))
	}
	return nil
}

func timelineJSON(a *analyzer.Analyzer, arg string, opts analyzer.RenderOpts) (any, error) {
	idx, err := Build(a)
	if err != nil {
		return nil, err
	}
	if arg == "" {
		return nil, fmt.Errorf("objtrack: obj-timeline needs a function name (obj-timeline=FN)")
	}
	is := funcInstances(a, idx, arg)
	if len(is) == 0 {
		return nil, fmt.Errorf("objtrack: no heap blocks allocated in function %q", arg)
	}
	cycles := joinCycles(a, idx)
	lo, hi := timelineSpan(idx, cycles)
	if n := topN(opts); len(is) > n {
		is = is[:n]
	}
	type instJSON struct {
		Seq     int    `json:"seq"`
		Site    string `json:"site"`
		Addr    string `json:"addr"`
		Size    uint64 `json:"size"`
		Birth   uint64 `json:"birth"`
		Death   uint64 `json:"death,omitempty"`
		Freed   bool   `json:"freed"`
		Total   uint64 `json:"joinedEvents"`
		Reads   uint64 `json:"reads"`
		Writes  uint64 `json:"writes"`
		Buckets []int  `json:"buckets"`
	}
	out := make([]instJSON, 0, len(is))
	for _, i := range is {
		in := &idx.Instances[i]
		b := bucketize(cycles[i], lo, hi)
		out = append(out, instJSON{
			Seq:   in.Seq,
			Site:  SiteName(a, in.Site),
			Addr:  fmt.Sprintf("0x%08x", in.Addr),
			Size:  in.Size,
			Birth: in.Birth,
			Death: in.Death,
			Freed: in.Freed,
			Total: in.Total, Reads: in.Reads, Writes: in.Writes,
			Buckets: b[:],
		})
	}
	return map[string]any{
		"function":  arg,
		"cycleLo":   lo,
		"cycleHi":   hi,
		"instances": out,
	}, nil
}

// --- dead-objects ---

// deadClass is one liveness defect class with exact byte accounting.
type deadClass struct {
	name      string
	desc      string
	instances []int
	bytes     uint64 // requested bytes over all flagged blocks
	leaked    uint64 // flagged bytes never freed
}

// classifyDead partitions instances into the paper-motivated liveness
// defect classes. Classes are exclusive in the order listed: a block no
// sampled event ever touched is dead-on-arrival even if also unfreed.
func classifyDead(idx *Index) []deadClass {
	classes := []deadClass{
		{name: "dead-on-arrival", desc: "no sampled event ever landed in the block"},
		{name: "write-only", desc: "sampled stores but never a sampled load"},
		{name: "single-use", desc: "exactly one sampled event over the block's whole life"},
	}
	for i := range idx.Instances {
		in := &idx.Instances[i]
		var c *deadClass
		switch {
		case in.Total == 0:
			c = &classes[0]
		case in.Writes > 0 && in.Reads == 0:
			c = &classes[1]
		case in.Total == 1:
			c = &classes[2]
		default:
			continue
		}
		c.instances = append(c.instances, i)
		c.bytes += in.Size
		if !in.Freed {
			c.leaked += in.Size
		}
	}
	return classes
}

// deadSites aggregates one class's bytes per allocation site, largest
// first (site PC breaks ties).
func deadSites(idx *Index, c *deadClass) []Site {
	byPC := make(map[uint64]*Site)
	for _, i := range c.instances {
		in := &idx.Instances[i]
		s := byPC[in.Site]
		if s == nil {
			s = &Site{PC: in.Site}
			byPC[in.Site] = s
		}
		s.Allocs++
		s.Bytes += in.Size
		if !in.Freed {
			s.LiveBytes += in.Size
		}
	}
	out := make([]Site, 0, len(byPC))
	for _, s := range byPC {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		return out[i].PC < out[j].PC
	})
	return out
}

func renderDeadObjects(a *analyzer.Analyzer, w io.Writer, arg string, opts analyzer.RenderOpts) error {
	idx, err := Build(a)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Dead-object analysis\n")
	provHeader(w, idx)
	n := topN(opts)
	for _, c := range classifyDead(idx) {
		fmt.Fprintf(w, "\n%s (%s): %d block(s), %d bytes, %d leaked\n",
			c.name, c.desc, len(c.instances), c.bytes, c.leaked)
		sites := deadSites(idx, &c)
		for i, s := range sites {
			if i >= n {
				fmt.Fprintf(w, "  ... %d more site(s)\n", len(sites)-n)
				break
			}
			fmt.Fprintf(w, "  %10d bytes  %4d block(s)  %10d leaked  %s\n",
				s.Bytes, s.Allocs, s.LiveBytes, SiteName(a, s.PC))
		}
	}
	return nil
}

func deadObjectsJSON(a *analyzer.Analyzer, arg string, opts analyzer.RenderOpts) (any, error) {
	idx, err := Build(a)
	if err != nil {
		return nil, err
	}
	type classJSON struct {
		Name   string     `json:"name"`
		Desc   string     `json:"desc"`
		Blocks int        `json:"blocks"`
		Bytes  uint64     `json:"bytes"`
		Leaked uint64     `json:"leakedBytes"`
		Sites  []siteJSON `json:"sites,omitempty"`
	}
	n := topN(opts)
	var out []classJSON
	for _, c := range classifyDead(idx) {
		cj := classJSON{Name: c.name, Desc: c.desc, Blocks: len(c.instances), Bytes: c.bytes, Leaked: c.leaked}
		sites := deadSites(idx, &c)
		if len(sites) > n {
			sites = sites[:n]
		}
		for i := range sites {
			cj.Sites = append(cj.Sites, siteToJSON(a, &sites[i]))
		}
		out = append(out, cj)
	}
	return map[string]any{
		"records":  idx.Records,
		"joined":   idx.Joined,
		"unjoined": idx.Unjoined,
		"classes":  out,
	}, nil
}
