package objtrack_test

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"dsprof/internal/analyzer"
	"dsprof/internal/cc"
	"dsprof/internal/collect"
	"dsprof/internal/machine"
	"dsprof/internal/objtrack"
)

// deadSrc is the purpose-built dead-object workload: three heap blocks
// with three distinct fates. deadbuf is written and never read
// (write-only), ghostbuf is never touched at all (dead-on-arrival), and
// hotbuf is initialized then chased hard (healthy). None are freed, so
// every flagged byte is also leaked. The hot block is chased through a
// pointer variable (p->value) rather than indexed (buf[i]): an indexed
// load's address lives in a scratch register the load itself overwrites,
// so its EA can never be recovered after the skid, while the pointer
// variable keeps the base in a callee-saved register.
const deadSrc = `
struct node { long value; struct node *next; long pad1; long pad2; long pad3; long pad4; long pad5; long pad6; };
long *deadbuf;
long *ghostbuf;
struct node *hotbuf;
long build_dead(long n) {
	long i;
	deadbuf = (long *) malloc(n * 8);
	for (i = 0; i < n; i++) {
		deadbuf[i] = i;
	}
	return 0;
}
long build_ghost() {
	ghostbuf = (long *) malloc(1024);
	return 0;
}
long use_hot(long n, long steps) {
	long i;
	long j;
	long sum;
	struct node *p;
	hotbuf = (struct node *) malloc(n * sizeof(struct node));
	j = 0;
	for (i = 0; i < n; i++) {
		hotbuf[j].value = i;
		hotbuf[j].next = &hotbuf[(j + 97) % n];
		j = (j + 97) % n;
	}
	sum = 0;
	p = hotbuf;
	while (steps > 0) {
		sum += p->value;
		p = p->next;
		steps--;
	}
	return sum;
}
long main() {
	long sum;
	build_dead(2048);
	build_ghost();
	sum = use_hot(512, 20000);
	write_long(sum);
	return 0;
}
`

// deadLongs/hotNodes mirror the main() calls above; nodeBytes is
// sizeof(struct node). The hot list (512 x 64 B = 32 KB) exceeds the
// scaled 8 KB D$, so the shuffled chase misses constantly and E$
// reference samples land on its loads; the dead buffer's cold-miss
// stores are its only traffic.
const (
	deadLongs = 2048
	hotNodes  = 512
	nodeBytes = 64
)

// deadSmoke collects the workload once per test binary, with a tiny
// backtracking +ecref interval so the sampled events blanket the heap
// accesses. The run is deterministic, so every test shares it.
var (
	smokeOnce sync.Once
	smokeA    *analyzer.Analyzer
	smokeErr  error
)

func deadAnalyzer(t *testing.T) *analyzer.Analyzer {
	t.Helper()
	smokeOnce.Do(func() {
		res, err := collectDead(true)
		if err != nil {
			smokeErr = err
			return
		}
		smokeA, smokeErr = analyzer.New(res.Exp)
	})
	if smokeErr != nil {
		t.Fatal(smokeErr)
	}
	return smokeA
}

func collectDead(provenance bool) (*collect.Result, error) {
	prog, err := cc.Compile([]cc.Source{{Name: "dead.mc", Text: deadSrc}}, cc.Options{Name: "dead", HWCProf: true})
	if err != nil {
		return nil, err
	}
	specs, err := collect.ParseCounterSpec("+ecref,41")
	if err != nil {
		return nil, err
	}
	cfg := machine.ScaledConfig()
	return collect.Run(prog, collect.Options{
		Counters:   specs,
		Machine:    &cfg,
		Provenance: provenance,
	})
}

func TestBuildJoinsHeapEvents(t *testing.T) {
	a := deadAnalyzer(t)
	idx, err := objtrack.Build(a)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Records != 3 {
		t.Fatalf("Records = %d, want 3 (deadbuf, ghostbuf, hotbuf)", idx.Records)
	}
	if len(idx.Sites) != 3 {
		t.Fatalf("got %d sites, want 3: %+v", len(idx.Sites), idx.Sites)
	}
	if idx.Joined == 0 {
		t.Fatal("no EA events joined to heap blocks")
	}

	byFunc := map[string]*objtrack.Instance{}
	for i := range idx.Instances {
		in := &idx.Instances[i]
		byFunc[objtrack.SiteFunc(a, in.Site)] = in
	}
	for _, fn := range []string{"build_dead", "build_ghost", "use_hot"} {
		if byFunc[fn] == nil {
			t.Fatalf("no allocation attributed to %s (have %v)", fn, byFunc)
		}
	}

	ghost := byFunc["build_ghost"]
	if ghost.Size != 1024 || ghost.Total != 0 || ghost.Freed {
		t.Errorf("ghost block = size %d total %d freed %v, want 1024/0/false", ghost.Size, ghost.Total, ghost.Freed)
	}
	dead := byFunc["build_dead"]
	if dead.Size != deadLongs*8 {
		t.Errorf("dead block size = %d, want %d", dead.Size, deadLongs*8)
	}
	if dead.Writes == 0 || dead.Reads != 0 {
		t.Errorf("dead block reads/writes = %d/%d, want 0 reads and >0 writes", dead.Reads, dead.Writes)
	}
	hot := byFunc["use_hot"]
	if hot.Reads == 0 {
		t.Errorf("hot block saw no sampled reads (total %d)", hot.Total)
	}
	if hot.Total <= dead.Total {
		t.Errorf("hot block (%d events) not hotter than the write-only one (%d)", hot.Total, dead.Total)
	}

	// Every instance's blocks are disjoint: each joined event resolves
	// to exactly the block containing its EA.
	for i := range idx.Instances {
		in := &idx.Instances[i]
		if got := idx.Lookup(in.Addr, in.Birth); got != i {
			t.Errorf("Lookup(base of seq %d) = %d, want %d", in.Seq, got, i)
		}
		if got := idx.Lookup(in.Addr+in.Size-1, in.Birth); got != i {
			t.Errorf("Lookup(last byte of seq %d) = %d, want %d", in.Seq, got, i)
		}
	}
	if got := idx.Lookup(0, 0); got != -1 {
		t.Errorf("Lookup(0) = %d, want -1", got)
	}
}

func TestDeadObjectsReportExactBytes(t *testing.T) {
	a := deadAnalyzer(t)
	var buf bytes.Buffer
	if err := a.Render(&buf, "dead-objects", analyzer.RenderOpts{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// The never-touched ghost block: exactly one block, exactly its 1024
	// requested bytes, all leaked (never freed).
	if want := "dead-on-arrival (no sampled event ever landed in the block): 1 block(s), 1024 bytes, 1024 leaked"; !strings.Contains(out, want) {
		t.Errorf("report missing %q:\n%s", want, out)
	}
	// The written-never-read block: its exact requested bytes, leaked.
	if want := fmt.Sprintf("write-only (sampled stores but never a sampled load): 1 block(s), %d bytes, %d leaked", deadLongs*8, deadLongs*8); !strings.Contains(out, want) {
		t.Errorf("report missing %q:\n%s", want, out)
	}
	if !strings.Contains(out, "build_ghost") || !strings.Contains(out, "build_dead") {
		t.Errorf("report does not name the offending sites:\n%s", out)
	}
}

func TestSiteHeatReport(t *testing.T) {
	a := deadAnalyzer(t)
	var one, two bytes.Buffer
	if err := a.Render(&one, "site-heat", analyzer.RenderOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := a.Render(&two, "site-heat", analyzer.RenderOpts{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(one.Bytes(), two.Bytes()) {
		t.Error("site-heat report not deterministic")
	}
	out := one.String()
	if !strings.Contains(out, "use_hot") {
		t.Errorf("hot site missing from report:\n%s", out)
	}
	if !strings.Contains(out, "provenance: 3 allocation records across 3 sites") {
		t.Errorf("provenance header missing:\n%s", out)
	}
	// The hot site must rank first: it carries most joined events.
	lines := strings.Split(out, "\n")
	firstRow := ""
	for i, l := range lines {
		if strings.HasPrefix(strings.TrimSpace(l), "count") && i+1 < len(lines) {
			firstRow = lines[i+1]
			break
		}
	}
	if !strings.Contains(firstRow, "use_hot") {
		t.Errorf("top-ranked site row %q does not mention use_hot:\n%s", firstRow, out)
	}
}

func TestObjTimelineReport(t *testing.T) {
	a := deadAnalyzer(t)
	var buf bytes.Buffer
	if err := a.Render(&buf, "obj-timeline=use_hot", analyzer.RenderOpts{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Object timelines for function use_hot: 1 instance(s)") {
		t.Errorf("timeline header wrong:\n%s", out)
	}
	if !strings.Contains(out, "live at exit") {
		t.Errorf("unfreed block not marked live at exit:\n%s", out)
	}
	// The strip must show joined activity (a digit or saturation mark).
	if !strings.ContainsAny(out, "123456789*") {
		t.Errorf("timeline strip shows no activity:\n%s", out)
	}
	if err := a.Render(&bytes.Buffer{}, "obj-timeline", analyzer.RenderOpts{}); err == nil {
		t.Error("obj-timeline without a function accepted")
	}
	if err := a.Render(&bytes.Buffer{}, "obj-timeline=nosuchfn", analyzer.RenderOpts{}); err == nil {
		t.Error("obj-timeline for a function with no allocations accepted")
	}
}

func TestReportsJSON(t *testing.T) {
	a := deadAnalyzer(t)
	for _, name := range []string{"site-heat", "dead-objects", "obj-timeline=use_hot"} {
		if _, err := a.RenderJSON(name, analyzer.RenderOpts{}); err != nil {
			t.Errorf("%s JSON rendering: %v", name, err)
		}
	}
	for _, name := range []string{"site-heat", "obj-timeline", "dead-objects"} {
		if !analyzer.ValidReport(name) {
			t.Errorf("report %s not registered", name)
		}
	}
}

func TestNoProvenanceErrors(t *testing.T) {
	res, err := collectDead(false)
	if err != nil {
		t.Fatal(err)
	}
	a, err := analyzer.New(res.Exp)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"site-heat", "dead-objects", "obj-timeline=use_hot"} {
		err := a.Render(&bytes.Buffer{}, name, analyzer.RenderOpts{})
		if !errors.Is(err, objtrack.ErrNoProvenance) {
			t.Errorf("%s without provenance: err = %v, want ErrNoProvenance", name, err)
		}
	}
}
