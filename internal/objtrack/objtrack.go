// Package objtrack is the object-centric attribution subsystem: it joins
// counter events that carry recovered effective addresses against the
// allocation-site provenance records the VM allocator streams into the
// experiment (machine.ProvRecord, spooled as prov.pv2 shards), so every
// sampled miss lands on a (site, instance) pair instead of stopping at a
// static struct type. On top of the join it registers three analyzer
// reports — per-allocation-site heat, per-instance access timelines, and
// dead-object detection — and feeds the advisor per-site evidence for
// split-pool recommendations.
package objtrack

import (
	"errors"
	"fmt"
	"sort"

	"dsprof/internal/analyzer"
	"dsprof/internal/hwc"
	"dsprof/internal/machine"
)

// ErrNoProvenance reports that the loaded experiments carry no
// allocation-site provenance records (the run was collected without
// provenance enabled).
var ErrNoProvenance = errors.New("no provenance records collected (re-collect with provenance enabled)")

// allocAlign mirrors the VM allocator's block alignment: a block's
// reserved extent is its requested size rounded up to this, which is the
// interval an effective address must fall in to join the block.
const allocAlign = 16

// roundedSize returns the allocator's reserved extent for a requested
// size.
func roundedSize(size uint64) uint64 {
	if size == 0 {
		size = allocAlign
	}
	return (size + allocAlign - 1) &^ uint64(allocAlign-1)
}

// Instance is one heap block with its joined counter events.
type Instance struct {
	machine.ProvRecord
	Events [hwc.NumEvents]uint64 // joined overflow counts per event
	Total  uint64                // total joined overflow events
	Reads  uint64                // joined events whose attribution PC is a load
	Writes uint64                // joined events whose attribution PC is a store
}

// Site aggregates the instances (and their joined events) of one
// allocation-site PC.
type Site struct {
	PC        uint64
	Allocs    int    // number of blocks allocated at the site
	Bytes     uint64 // requested bytes over all its blocks
	LiveBytes uint64 // requested bytes never freed
	Events    [hwc.NumEvents]uint64
	Total     uint64
}

// Index is the provenance join: every EA-carrying counter event resolved
// to the heap block (and hence allocation site) it landed in. It is
// built from the analyzer's canonical EA-event order and the first
// experiment carrying provenance records, so the same experiments
// produce an identical index whether the reduction ran serially, sharded
// in parallel, or distributed across cluster workers.
type Index struct {
	Records   int        // provenance records indexed
	Instances []Instance // by allocation sequence number
	Sites     []Site     // by site PC
	Joined    int        // EA events that landed in a known block
	Unjoined  int        // EA events outside any known block

	bases  []uint64         // sorted distinct block base addresses
	byBase map[uint64][]int // base -> Instances indexes, by birth cycle
}

// Build constructs the index for a loaded analysis. Provenance comes
// from the first experiment that carries records — the deterministic
// simulator produces the identical allocation stream in every run of a
// study, so one experiment's records describe them all (the same
// convention the instance-level addrspace analyses use for Allocs).
// It returns ErrNoProvenance (wrapped) when no experiment carries any.
func Build(a *analyzer.Analyzer) (*Index, error) {
	var recs []machine.ProvRecord
	for _, e := range a.Exps {
		if e.ProvCount() == 0 {
			continue
		}
		recs = make([]machine.ProvRecord, 0, e.ProvCount())
		err := e.ProvRecords(func(r machine.ProvRecord) error {
			recs = append(recs, r)
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("objtrack: reading provenance: %w", err)
		}
		break
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("objtrack: %w", ErrNoProvenance)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Seq < recs[j].Seq })

	idx := &Index{
		Records:   len(recs),
		Instances: make([]Instance, len(recs)),
		byBase:    make(map[uint64][]int),
	}
	for i, r := range recs {
		idx.Instances[i] = Instance{ProvRecord: r}
		idx.byBase[r.Addr] = append(idx.byBase[r.Addr], i)
	}
	idx.bases = make([]uint64, 0, len(idx.byBase))
	for base, is := range idx.byBase {
		idx.bases = append(idx.bases, base)
		sort.Slice(is, func(x, y int) bool {
			a, b := &idx.Instances[is[x]], &idx.Instances[is[y]]
			if a.Birth != b.Birth {
				return a.Birth < b.Birth
			}
			return a.Seq < b.Seq
		})
	}
	sort.Slice(idx.bases, func(i, j int) bool { return idx.bases[i] < idx.bases[j] })

	// Join the canonical EA-event stream.
	for _, ae := range a.EAEvents() {
		i := idx.Lookup(ae.EA, ae.Cycles)
		if i < 0 {
			idx.Unjoined++
			continue
		}
		idx.Joined++
		inst := &idx.Instances[i]
		inst.Events[ae.Event]++
		inst.Total++
		if in := a.Prog.InstrAt(ae.PC); in != nil && !ae.Artificial {
			switch {
			case in.Op.IsLoad():
				inst.Reads++
			case in.Op.IsStore():
				inst.Writes++
			}
		}
	}

	// Aggregate per allocation site.
	byPC := make(map[uint64]*Site)
	for i := range idx.Instances {
		inst := &idx.Instances[i]
		s := byPC[inst.Site]
		if s == nil {
			s = &Site{PC: inst.Site}
			byPC[inst.Site] = s
		}
		s.Allocs++
		s.Bytes += inst.Size
		if !inst.Freed {
			s.LiveBytes += inst.Size
		}
		for ev, n := range inst.Events {
			s.Events[ev] += n
		}
		s.Total += inst.Total
	}
	idx.Sites = make([]Site, 0, len(byPC))
	for _, s := range byPC {
		idx.Sites = append(idx.Sites, *s)
	}
	sort.Slice(idx.Sites, func(i, j int) bool { return idx.Sites[i].PC < idx.Sites[j].PC })
	return idx, nil
}

// Lookup resolves an effective address at a point in machine time to an
// instance index, or -1 when the address lies outside every known block.
// Block extents at distinct bases never overlap (the allocator bumps
// fresh blocks forward and reuses freed blocks only at their original
// base and full rounded size), so the candidate is the block with the
// largest base not above the address; among the instances that lived at
// that base, the one born most recently at or before the event wins
// (falling back to the earliest, for events attributed slightly before
// their block's birth by backtracking skid).
func (idx *Index) Lookup(ea, cycles uint64) int {
	// Largest base <= ea.
	lo, hi := 0, len(idx.bases)
	for lo < hi {
		mid := (lo + hi) / 2
		if idx.bases[mid] <= ea {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return -1
	}
	base := idx.bases[lo-1]
	is := idx.byBase[base]
	best := -1
	for _, i := range is {
		inst := &idx.Instances[i]
		if ea >= inst.Addr+roundedSize(inst.Size) {
			return -1 // all records at one base share the block extent
		}
		if inst.Birth <= cycles {
			best = i // keep the latest birth at or before the event
		}
	}
	if best >= 0 {
		return best
	}
	return is[0]
}

// SiteName renders an allocation site the way the PC reports do
// ("global_malloc + 0x0000001C").
func SiteName(a *analyzer.Analyzer, pc uint64) string {
	return a.PCName(pc, false)
}

// SiteFunc returns the name of the function containing an allocation
// site ("<unknown>" when the debug tables place it nowhere).
func SiteFunc(a *analyzer.Analyzer, pc uint64) string {
	if fn := a.Tab.FuncAt(pc); fn != nil {
		return fn.Name
	}
	return "<unknown>"
}

// RankEvent picks the event site heat is ranked by: E$ stall cycles when
// collected (the paper's optimization target), otherwise the first
// collected memory-related event, otherwise the first collected event.
// An armed counter that recorded no events at all cannot rank anything
// and is skipped.
func RankEvent(a *analyzer.Analyzer) hwc.Event {
	has := func(ev hwc.Event) bool {
		return a.HasEvent(ev) && a.Total().Events[ev] > 0
	}
	for _, ev := range []hwc.Event{hwc.EvECStall, hwc.EvECRdMiss, hwc.EvDCRdMiss, hwc.EvDTLBMiss, hwc.EvECRef} {
		if has(ev) {
			return ev
		}
	}
	for ev := hwc.Event(0); ev < hwc.NumEvents; ev++ {
		if ev != hwc.EvNone && has(ev) {
			return ev
		}
	}
	return hwc.EvNone
}

// TypeSites returns the sites plausibly allocating instances of a struct
// type — those whose blocks' requested sizes are non-zero multiples of
// the type size — in site-PC order. This is the advisor's per-site
// evidence seam.
func (idx *Index) TypeSites(typeSize int64) []Site {
	if typeSize <= 0 {
		return nil
	}
	var out []Site
	for _, s := range idx.Sites {
		if s.Allocs == 0 {
			continue
		}
		per := s.Bytes / uint64(s.Allocs)
		if per > 0 && per%uint64(typeSize) == 0 {
			out = append(out, s)
		}
	}
	return out
}
