package mcf

import (
	"testing"

	"dsprof/internal/asm"
	"dsprof/internal/cc"
	"dsprof/internal/machine"
	"dsprof/internal/xrand"
)

// Randomized cross-validation: the MC program, the Go network simplex and
// the SSP solver must agree on many random instances, including
// degenerate shapes (single trip, no connections possible, fully dormant
// connection sets).
func TestFuzzMCAgainstSolvers(t *testing.T) {
	prog, err := Program(LayoutPaper, cc.Options{HWCProf: true})
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(271828)
	trials := 12
	if testing.Short() {
		trials = 4
	}
	for trial := 0; trial < trials; trial++ {
		p := GenParams{
			Trips:      1 + r.Intn(60),
			Seed:       r.Uint64(),
			Horizon:    int64(300 + r.Intn(900)),
			MaxConns:   r.Intn(16),
			ActiveFrac: r.Float64(),
		}
		ins := Generate(p)
		want, err := SolveSSP(ins)
		if err != nil {
			t.Fatalf("trial %d (%+v): ssp: %v", trial, p, err)
		}
		goCost, goStats, err := SolveNetSimplex(ins)
		if err != nil {
			t.Fatalf("trial %d (%+v): netsimplex: %v", trial, p, err)
		}
		if goCost != want {
			t.Fatalf("trial %d (%+v): netsimplex %d != ssp %d", trial, p, goCost, want)
		}

		cfg := machine.ScaledConfig()
		cfg.MaxInstrs = 500_000_000
		m, err := machine.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.LoadProgram(prog.Text, prog.Data, prog.Entry); err != nil {
			t.Fatal(err)
		}
		m.SetInput(ins.Encode())
		if err := m.Run(); err != nil {
			t.Fatalf("trial %d (%+v): MC run: %v", trial, p, err)
		}
		out, err := ParseOutput(m.OutputLongs())
		if err != nil {
			t.Fatal(err)
		}
		if out.Status != 0 {
			t.Fatalf("trial %d (%+v): MC status %d", trial, p, out.Status)
		}
		if out.Cost != want {
			t.Fatalf("trial %d (%+v): MC cost %d, want %d", trial, p, out.Cost, want)
		}
		if out.Pivots != int64(goStats.Pivots) {
			t.Fatalf("trial %d (%+v): MC pivots %d != Go twin %d", trial, p, out.Pivots, goStats.Pivots)
		}
	}
}

// The refresh checksum counts tree nodes per refresh: every refresh must
// have visited exactly n nodes (tree connectivity invariant).
func TestRefreshChecksumCountsAllNodes(t *testing.T) {
	prog, err := Program(LayoutPaper, cc.Options{HWCProf: true})
	if err != nil {
		t.Fatal(err)
	}
	ins := Generate(DefaultGenParams(40, 5))
	cfg := machine.ScaledConfig()
	cfg.MaxInstrs = 500_000_000
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadProgram(prog.Text, prog.Data, prog.Entry); err != nil {
		t.Fatal(err)
	}
	m.SetInput(ins.Encode())
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	out, err := ParseOutput(m.OutputLongs())
	if err != nil {
		t.Fatal(err)
	}
	if out.RefreshChecksum != out.Refreshes*int64(ins.N) {
		t.Errorf("refresh checksum %d != refreshes %d * nodes %d (tree lost nodes?)",
			out.RefreshChecksum, out.Refreshes, ins.N)
	}
}

// Layout invariance under fuzzing: paper and optimized layouts must
// produce identical algorithmic traces on random instances.
func TestFuzzLayoutInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	paper, err := Program(LayoutPaper, cc.Options{HWCProf: true})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Program(LayoutOptimized, cc.Options{HWCProf: true})
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(31415)
	for trial := 0; trial < 4; trial++ {
		ins := Generate(DefaultGenParams(10+r.Intn(50), r.Uint64()))
		var outs []*Output
		for _, prog := range []*asm.Program{paper, opt} {
			cfg := machine.ScaledConfig()
			cfg.MaxInstrs = 500_000_000
			m, err := machine.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.LoadProgram(prog.Text, prog.Data, prog.Entry); err != nil {
				t.Fatal(err)
			}
			m.SetInput(ins.Encode())
			if err := m.Run(); err != nil {
				t.Fatal(err)
			}
			out, err := ParseOutput(m.OutputLongs())
			if err != nil {
				t.Fatal(err)
			}
			outs = append(outs, out)
		}
		if *outs[0] != *outs[1] {
			t.Fatalf("trial %d: layouts diverge: %+v vs %+v", trial, outs[0], outs[1])
		}
	}
}
