package mcf

import (
	"container/heap"
	"fmt"
	"math"
)

// SolveSSP computes the minimum-cost flow of an instance with the
// successive-shortest-paths algorithm (Dijkstra with Johnson potentials).
// It is an implementation completely independent of the network simplex
// code and serves as the validation oracle in tests and experiment
// harnesses. All instance arcs have unit capacity. It returns the optimal
// cost, or an error if the supplies cannot be routed.
func SolveSSP(ins *Instance) (int64, error) {
	// Residual network with super source 0 and super sink N+1.
	// Node ids 1..N as-is.
	src, dst := 0, ins.N+1
	nn := ins.N + 2

	type edge struct {
		to   int
		cap  int64
		cost int64
		rev  int // index of reverse edge in adj[to]
	}
	adj := make([][]edge, nn)
	addEdge := func(u, v int, cap, cost int64) {
		adj[u] = append(adj[u], edge{to: v, cap: cap, cost: cost, rev: len(adj[v])})
		adj[v] = append(adj[v], edge{to: u, cap: 0, cost: -cost, rev: len(adj[u]) - 1})
	}
	var need int64
	for i := 1; i <= ins.N; i++ {
		s := ins.Supply[i]
		if s > 0 {
			addEdge(src, i, s, 0)
			need += s
		} else if s < 0 {
			addEdge(i, dst, -s, 0)
		}
	}
	for _, a := range ins.Arcs {
		addEdge(int(a.Tail), int(a.Head), 1, a.Cost)
	}

	pot := make([]int64, nn)
	dist := make([]int64, nn)
	prevE := make([]int, nn)
	prevV := make([]int, nn)

	var total int64
	var sent int64
	for sent < need {
		// Dijkstra on reduced costs.
		for i := range dist {
			dist[i] = math.MaxInt64
			prevV[i] = -1
		}
		dist[src] = 0
		pq := &distHeap{{0, src}}
		for pq.Len() > 0 {
			it := heap.Pop(pq).(distItem)
			if it.d > dist[it.v] {
				continue
			}
			for ei := range adj[it.v] {
				e := &adj[it.v][ei]
				if e.cap <= 0 {
					continue
				}
				nd := it.d + e.cost + pot[it.v] - pot[e.to]
				if nd < dist[e.to] {
					dist[e.to] = nd
					prevV[e.to] = it.v
					prevE[e.to] = ei
					heap.Push(pq, distItem{nd, e.to})
				}
			}
		}
		if prevV[dst] == -1 {
			return 0, fmt.Errorf("mcf: infeasible instance (routed %d of %d units)", sent, need)
		}
		for i := 0; i < nn; i++ {
			if dist[i] < math.MaxInt64 {
				pot[i] += dist[i]
			}
		}
		// Bottleneck along the path.
		delta := int64(math.MaxInt64)
		for v := dst; v != src; v = prevV[v] {
			e := adj[prevV[v]][prevE[v]]
			if e.cap < delta {
				delta = e.cap
			}
		}
		for v := dst; v != src; v = prevV[v] {
			e := &adj[prevV[v]][prevE[v]]
			e.cap -= delta
			adj[v][e.rev].cap += delta
			total += delta * e.cost
		}
		sent += delta
	}
	return total, nil
}

type distItem struct {
	d int64
	v int
}

type distHeap []distItem

func (h distHeap) Len() int           { return len(h) }
func (h distHeap) Less(i, j int) bool { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x any)        { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() any          { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }
