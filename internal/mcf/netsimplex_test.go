package mcf

import (
	"testing"

	"dsprof/internal/xrand"
)

func TestTinyHandInstance(t *testing.T) {
	// depot(1), one trip: start node 2 (demand 1), end node 3 (supply 1).
	// Pull-out 1->2 cost 100, pull-in 3->1 cost 10. Optimal = 110.
	ins := &Instance{
		N:      3,
		Supply: []int64{0, 0, -1, 1},
		Arcs: []Arc{
			{Tail: 1, Head: 2, Cost: 100, Active: true},
			{Tail: 3, Head: 1, Cost: 10, Active: true},
		},
	}
	want := int64(110)
	got, _, err := SolveNetSimplex(ins)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("netsimplex cost = %d, want %d", got, want)
	}
	ssp, err := SolveSSP(ins)
	if err != nil {
		t.Fatal(err)
	}
	if ssp != want {
		t.Errorf("ssp cost = %d, want %d", ssp, want)
	}
}

func TestChainSharingVehicle(t *testing.T) {
	// Two trips that one vehicle can cover via a cheap connection:
	// depot 1; trip A nodes 2,3; trip B nodes 4,5; connection 3->4.
	ins := &Instance{
		N:      5,
		Supply: []int64{0, 0, -1, 1, -1, 1},
		Arcs: []Arc{
			{Tail: 1, Head: 2, Cost: 5000, Active: true},
			{Tail: 3, Head: 1, Cost: 50, Active: true},
			{Tail: 1, Head: 4, Cost: 5000, Active: true},
			{Tail: 5, Head: 1, Cost: 50, Active: true},
			{Tail: 3, Head: 4, Cost: 30, Active: true}, // connection
		},
	}
	// One vehicle: 1->2 (5000), trips, 3->4 (30), 5->1 (50) = 5080.
	want := int64(5080)
	got, _, err := SolveNetSimplex(ins)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("netsimplex cost = %d, want %d", got, want)
	}
}

func TestDormantArcsActivate(t *testing.T) {
	// Same as above but the money-saving connection starts dormant:
	// price_out_impl must activate it.
	ins := &Instance{
		N:      5,
		Supply: []int64{0, 0, -1, 1, -1, 1},
		Arcs: []Arc{
			{Tail: 1, Head: 2, Cost: 5000, Active: true},
			{Tail: 3, Head: 1, Cost: 50, Active: true},
			{Tail: 1, Head: 4, Cost: 5000, Active: true},
			{Tail: 5, Head: 1, Cost: 50, Active: true},
			{Tail: 3, Head: 4, Cost: 30, Active: false},
		},
	}
	got, stats, err := SolveNetSimplex(ins)
	if err != nil {
		t.Fatal(err)
	}
	if got != 5080 {
		t.Errorf("cost = %d, want 5080", got)
	}
	if stats.Activated == 0 {
		t.Error("column generation never activated a dormant arc")
	}
}

func TestGeneratorProducesValidInstances(t *testing.T) {
	for _, trips := range []int{1, 5, 50, 300} {
		ins := Generate(DefaultGenParams(trips, uint64(trips)))
		if ins.N != 1+2*trips {
			t.Errorf("trips=%d: N=%d", trips, ins.N)
		}
		var sum int64
		for i := 1; i <= ins.N; i++ {
			sum += ins.Supply[i]
		}
		if sum != 0 {
			t.Errorf("trips=%d: supplies sum to %d", trips, sum)
		}
		// Every trip must have its pull-out/pull-in arcs (feasibility).
		outs := map[int32]bool{}
		ins2 := map[int32]bool{}
		for _, a := range ins.Arcs {
			if a.Tail == 1 {
				outs[a.Head] = true
			}
			if a.Head == 1 {
				ins2[a.Tail] = true
			}
		}
		for i := 0; i < trips; i++ {
			if !outs[int32(2+2*i)] || !ins2[int32(3+2*i)] {
				t.Fatalf("trips=%d: trip %d lacks depot arcs", trips, i)
			}
		}
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	ins := Generate(DefaultGenParams(40, 7))
	enc := ins.Encode()
	back, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if back.N != ins.N || len(back.Arcs) != len(ins.Arcs) {
		t.Fatal("shape lost in roundtrip")
	}
	for i := range ins.Arcs {
		if back.Arcs[i] != ins.Arcs[i] {
			t.Fatalf("arc %d: %+v != %+v", i, back.Arcs[i], ins.Arcs[i])
		}
	}
	// Corrupt encodings must be rejected.
	if _, err := Decode(enc[:5]); err == nil {
		t.Error("truncated instance accepted")
	}
	bad := append([]int64(nil), enc...)
	bad[2]++ // break the zero-sum property
	if _, err := Decode(bad); err == nil {
		t.Error("non-zero-sum instance accepted")
	}
}

// The central validation: network simplex and SSP agree on the optimal
// cost over many random vehicle-scheduling instances.
func TestNetSimplexMatchesSSPOnRandomInstances(t *testing.T) {
	r := xrand.New(99)
	for trial := 0; trial < 25; trial++ {
		trips := 3 + r.Intn(120)
		p := DefaultGenParams(trips, uint64(trial)*1000+7)
		p.ActiveFrac = []float64{0, 0.3, 1.0}[trial%3]
		ins := Generate(p)
		want, err := SolveSSP(ins)
		if err != nil {
			t.Fatalf("trial %d: ssp: %v", trial, err)
		}
		got, stats, err := SolveNetSimplex(ins)
		if err != nil {
			t.Fatalf("trial %d (trips=%d): netsimplex: %v", trial, trips, err)
		}
		if got != want {
			t.Errorf("trial %d (trips=%d): netsimplex=%d ssp=%d", trial, trips, got, want)
		}
		if stats.Pivots == 0 && trips > 1 {
			t.Errorf("trial %d: no pivots recorded", trial)
		}
	}
}

func TestNetSimplexLargerInstance(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ins := Generate(DefaultGenParams(800, 12345))
	want, err := SolveSSP(ins)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := SolveNetSimplex(ins)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("netsimplex=%d ssp=%d", got, want)
	}
	t.Logf("800 trips: pivots=%d refreshes=%d priceouts=%d activated=%d degenerate=%d",
		stats.Pivots, stats.Refreshes, stats.PriceOuts, stats.Activated, stats.Degenerate)
}
