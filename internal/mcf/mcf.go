package mcf

import (
	"fmt"

	"dsprof/internal/asm"
	"dsprof/internal/cc"
)

// Program compiles the MCF program with the given struct layout and
// compiler options (the paper compiles with -xhwcprof
// -xdebugformat=dwarf; pass the corresponding cc.Options).
func Program(l Layout, opts cc.Options) (*asm.Program, error) {
	if opts.Name == "" {
		opts.Name = "mcf-" + l.String()
	}
	return cc.Compile([]cc.Source{{Name: "mcf.mc", Text: Source(l)}}, opts)
}

// Output is the decoded output vector of an MCF run.
type Output struct {
	Status          int64 // 0 = optimal
	Cost            int64
	Pivots          int64
	Refreshes       int64
	PriceOuts       int64
	Activated       int64
	ArcsWithFlow    int64
	FlowChecksum    int64
	RefreshChecksum int64
}

// ParseOutput decodes the output longs written by the MC program.
func ParseOutput(out []int64) (*Output, error) {
	if len(out) != 9 {
		return nil, fmt.Errorf("mcf: expected 9 output values, got %d", len(out))
	}
	return &Output{
		Status:          out[0],
		Cost:            out[1],
		Pivots:          out[2],
		Refreshes:       out[3],
		PriceOuts:       out[4],
		Activated:       out[5],
		ArcsWithFlow:    out[6],
		FlowChecksum:    out[7],
		RefreshChecksum: out[8],
	}, nil
}
