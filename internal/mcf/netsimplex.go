package mcf

import "fmt"

// netsimplex.go is the Go twin of the MC-dialect MCF program: a primal
// network simplex with multiple partial pricing (primal_bea_mpp), column
// generation (price_out_impl) and periodic potential refresh, operating
// on the same node/arc structures (pred/child/sibling threaded spanning
// tree, orientation flags, basic-arc flows). The MC program in source.go
// is a line-by-line port of this implementation; tests validate both
// against the independent SSP solver.

// Arc idents (SPEC mcf naming).
const (
	identDormant = 0 // priced out of the current problem (column generation)
	identAtLower = 1
	identAtUpper = 2
	identBasic   = 3
)

// Tree arc orientations.
const (
	orientUp   = 1 // basic arc points from node to pred
	orientDown = 2 // basic arc points from pred to node
)

// BigM is the artificial-arc cost: larger than any real path cost.
const BigM = int64(1) << 30

// Pricing parameters (SPEC mcf's pbeampp.c uses K=50, B=50).
const (
	basketTarget = 50
	groupSize    = 300
	maxGroups    = 3 // groups scanned per pricing call once candidates exist
	refreshGap   = 8 // full potential refresh every this many pivots
)

type nsNode struct {
	number      int64
	pred        *nsNode
	child       *nsNode
	sibling     *nsNode
	siblingPrev *nsNode
	depth       int64
	orientation int64
	basicArc    *nsArc
	firstout    *nsArc // unused by the solver; kept for struct parity
	firstin     *nsArc
	potential   int64
	flow        int64
	mark        int64
	time        int64
}

type nsArc struct {
	cost    int64
	tail    *nsNode
	head    *nsNode
	ident   int64
	flow    int64
	upper   int64
	orgCost int64
	mark    int64
}

// NSStats reports solver effort.
type NSStats struct {
	Pivots     int
	Refreshes  int
	PriceOuts  int
	Activated  int
	Degenerate int
}

// netSimplex holds the solver state.
type netSimplex struct {
	nodes  []nsNode // [0] is the artificial root
	arcs   []nsArc  // [0..m) real, [m..m+n) artificial
	n, m   int
	cursor int // pricing scan position
	basket []*nsArc
	stats  NSStats
}

// SolveNetSimplex solves the instance, returning the optimal cost.
func SolveNetSimplex(ins *Instance) (int64, NSStats, error) {
	s := &netSimplex{
		nodes: make([]nsNode, ins.N+1),
		arcs:  make([]nsArc, len(ins.Arcs)+ins.N),
		n:     ins.N,
		m:     len(ins.Arcs),
	}
	for i, a := range ins.Arcs {
		arc := &s.arcs[i]
		arc.cost = a.Cost
		arc.orgCost = a.Cost
		arc.tail = &s.nodes[a.Tail]
		arc.head = &s.nodes[a.Head]
		arc.upper = 1
		if a.Active {
			arc.ident = identAtLower
		} else {
			arc.ident = identDormant
		}
	}
	for i := 1; i <= ins.N; i++ {
		s.nodes[i].number = int64(i)
		s.nodes[i].flow = ins.Supply[i] // stash supply; rewritten by start
	}
	s.startArtificial()

	for {
		if err := s.primalNetSimplex(); err != nil {
			return 0, s.stats, err
		}
		if s.priceOutImpl() == 0 {
			break
		}
	}
	if !s.dualFeasible() {
		return 0, s.stats, fmt.Errorf("mcf: solution not dual feasible")
	}
	for i := 0; i < s.n; i++ {
		art := &s.arcs[s.m+i]
		if art.flow != 0 {
			return 0, s.stats, fmt.Errorf("mcf: infeasible (artificial arc carries flow)")
		}
	}
	return s.flowCost(), s.stats, nil
}

// startArtificial builds the initial spanning tree of artificial arcs
// (primal_start_artificial).
func (s *netSimplex) startArtificial() {
	root := &s.nodes[0]
	root.basicArc = nil
	root.pred = nil
	root.potential = 0
	root.depth = 0
	var lastChild *nsNode
	for i := 1; i <= s.n; i++ {
		v := &s.nodes[i]
		supply := v.flow
		art := &s.arcs[s.m+i-1]
		art.cost = BigM
		art.orgCost = BigM
		art.upper = 1 << 40
		art.ident = identBasic
		if supply >= 0 {
			art.tail = v
			art.head = root
			v.orientation = orientUp
			v.potential = BigM
		} else {
			art.tail = root
			art.head = v
			v.orientation = orientDown
			v.potential = -BigM
		}
		flow := supply
		if flow < 0 {
			flow = -flow
		}
		art.flow = flow
		v.flow = flow
		v.basicArc = art
		v.pred = root
		v.child = nil
		v.depth = 1
		v.sibling = nil
		v.siblingPrev = lastChild
		if lastChild != nil {
			lastChild.sibling = v
		} else {
			root.child = v
		}
		lastChild = v
	}
}

// redCost is cost - potential(tail) + potential(head); zero on basic arcs.
func redCost(a *nsArc) int64 {
	return a.cost - a.tail.potential + a.head.potential
}

// eligible reports whether a nonbasic arc can improve the objective.
func eligible(a *nsArc) bool {
	switch a.ident {
	case identAtLower:
		return redCost(a) < 0
	case identAtUpper:
		return redCost(a) > 0
	}
	return false
}

// refreshPotential recomputes every node potential by walking the tree —
// the paper's Figure 3 loop, ported verbatim. Returns the number of
// nodes visited (the checksum).
func (s *netSimplex) refreshPotential() int64 {
	s.stats.Refreshes++
	root := &s.nodes[0]
	var checksum int64
	tmp := root.child
	node := root.child
	for node != root {
		for node != nil {
			if node.orientation == orientUp {
				node.potential = node.basicArc.cost + node.pred.potential
			} else { // == DOWN
				node.potential = node.pred.potential - node.basicArc.cost
			}
			checksum++
			tmp = node
			node = node.child
		}
		node = tmp
		for node != root {
			if node.sibling != nil {
				node = node.sibling
				break
			}
			node = node.pred
		}
	}
	return checksum
}

// primalBeaMpp implements multiple partial pricing: re-validate the
// basket, top it up by scanning arc groups cyclically, sort by descending
// |reduced cost| and return the best candidate (nil at optimality for the
// active arc set).
func (s *netSimplex) primalBeaMpp() *nsArc {
	// Re-validate basket entries from the previous call.
	kept := s.basket[:0]
	for _, a := range s.basket {
		if eligible(a) {
			kept = append(kept, a)
		}
	}
	s.basket = kept
	// Scan whole groups (the cursor is always group-aligned) until the
	// basket is full or one complete pass over the arc array (including
	// the artificial arcs, which may become attractive again under the
	// big-M method) found nothing more.
	mAll := len(s.arcs)
	nGroups := (mAll + groupSize - 1) / groupSize
	// At most maxGroups groups per call once candidates exist; a full
	// pass happens only when the basket is empty (optimality test).
	for g := 0; len(s.basket) < basketTarget && g < nGroups && (g < maxGroups || len(s.basket) == 0); g++ {
		end := s.cursor + groupSize
		for i := s.cursor; i < end && i < mAll && len(s.basket) < basketTarget; i++ {
			a := &s.arcs[i]
			if eligible(a) {
				s.basket = append(s.basket, a)
			}
		}
		s.cursor += groupSize
		if s.cursor >= mAll {
			s.cursor = 0
		}
	}
	if len(s.basket) == 0 {
		return nil
	}
	s.sortBasket()
	best := s.basket[0]
	s.basket = s.basket[1:]
	if len(s.basket) > basketTarget {
		s.basket = s.basket[:basketTarget]
	}
	return best
}

// sortBasket orders the basket by decreasing |reduced cost| (SPEC's
// sort_basket, a quicksort; insertion sort here since the basket is
// small and nearly sorted between calls).
func (s *netSimplex) sortBasket() {
	abs := func(v int64) int64 {
		if v < 0 {
			return -v
		}
		return v
	}
	for i := 1; i < len(s.basket); i++ {
		a := s.basket[i]
		key := abs(redCost(a))
		j := i - 1
		for j >= 0 && abs(redCost(s.basket[j])) < key {
			s.basket[j+1] = s.basket[j]
			j--
		}
		s.basket[j+1] = a
	}
}

// primalNetSimplex pivots until no active arc is eligible.
func (s *netSimplex) primalNetSimplex() error {
	s.refreshPotential()
	sincePivot := 0
	for {
		enter := s.primalBeaMpp()
		if enter == nil {
			return nil
		}
		s.pivot(enter)
		s.stats.Pivots++
		sincePivot++
		if sincePivot >= refreshGap {
			s.refreshPotential()
			sincePivot = 0
		}
		if s.stats.Pivots > 300*(s.n+s.m)+100000 {
			return fmt.Errorf("mcf: pivot limit exceeded (cycling?)")
		}
	}
}

// pivot performs one simplex pivot on the entering arc.
func (s *netSimplex) pivot(enter *nsArc) {
	// Push direction: increasing flow on the entering arc when it sits
	// at its lower bound; decreasing when at upper.
	increase := enter.ident == identAtLower
	t, h := enter.tail, enter.head
	// The cycle sends flow t->h through the entering arc when
	// increasing; equivalently h->t when decreasing — swap endpoints so
	// the tree paths below are always "flow runs tailSide -> headSide".
	tailSide, headSide := t, h
	if !increase {
		tailSide, headSide = h, t
	}

	join := commonAncestor(tailSide, headSide)

	// Find the bottleneck (primal_iminus): entering residual first, then
	// the tail-side path (cycle runs against pred direction), then the
	// head-side path.
	var delta int64
	if increase {
		delta = enter.upper - enter.flow
	} else {
		delta = enter.flow
	}
	var leavingNode *nsNode // node whose basic arc leaves; nil = entering leaves
	leavingOnTailSide := false
	for x := tailSide; x != join; x = x.pred {
		// Cycle direction on the tail side is pred -> x.
		var res int64
		if x.orientation == orientUp {
			res = x.flow // against the basic arc
		} else {
			res = x.basicArc.upper - x.flow
		}
		if res < delta {
			delta = res
			leavingNode = x
			leavingOnTailSide = true
		}
	}
	for y := headSide; y != join; y = y.pred {
		// Cycle direction on the head side is y -> pred.
		var res int64
		if y.orientation == orientUp {
			res = y.basicArc.upper - y.flow
		} else {
			res = y.flow
		}
		if res < delta {
			delta = res
			leavingNode = y
			leavingOnTailSide = false
		}
	}
	if delta == 0 {
		s.stats.Degenerate++
	}

	// Update flows around the cycle.
	if increase {
		enter.flow += delta
	} else {
		enter.flow -= delta
	}
	for x := tailSide; x != join; x = x.pred {
		if x.orientation == orientUp {
			x.flow -= delta
		} else {
			x.flow += delta
		}
		x.basicArc.flow = x.flow
	}
	for y := headSide; y != join; y = y.pred {
		if y.orientation == orientUp {
			y.flow += delta
		} else {
			y.flow -= delta
		}
		y.basicArc.flow = y.flow
	}

	if leavingNode == nil {
		// Bound flip: the entering arc itself blocks.
		if enter.ident == identAtLower {
			enter.ident = identAtUpper
		} else {
			enter.ident = identAtLower
		}
		return
	}

	leaving := leavingNode.basicArc
	// The endpoint of the entering arc inside the cut subtree.
	q := headSide
	if leavingOnTailSide {
		q = tailSide
	}
	s.updateTree(q, leavingNode, enter)
	if leaving.flow == 0 {
		leaving.ident = identAtLower
	} else {
		leaving.ident = identAtUpper
	}
	enter.ident = identBasic
}

// commonAncestor walks both nodes to equal depth, then up in lockstep.
func commonAncestor(a, b *nsNode) *nsNode {
	for a.depth > b.depth {
		a = a.pred
	}
	for b.depth > a.depth {
		b = b.pred
	}
	for a != b {
		a = a.pred
		b = b.pred
	}
	return a
}

// cutChild removes v from its parent's child list.
func cutChild(v *nsNode) {
	if v.siblingPrev != nil {
		v.siblingPrev.sibling = v.sibling
	} else if v.pred != nil {
		v.pred.child = v.sibling
	}
	if v.sibling != nil {
		v.sibling.siblingPrev = v.siblingPrev
	}
	v.sibling = nil
	v.siblingPrev = nil
}

// attachChild links v as the first child of p.
func attachChild(v, p *nsNode) {
	v.sibling = p.child
	if p.child != nil {
		p.child.siblingPrev = v
	}
	v.siblingPrev = nil
	p.child = v
	v.pred = p
}

// updateTree re-roots the subtree cut by removing leavingNode's basic arc
// at q (an endpoint of the entering arc inside that subtree) and hangs it
// under the entering arc's other endpoint — SPEC mcf's update_tree.
func (s *netSimplex) updateTree(q, leavingNode *nsNode, enter *nsArc) {
	// The new parent of q is the entering arc's endpoint outside the
	// subtree.
	p := enter.tail
	if p == q {
		p = enter.head
	}

	// Walk the pred chain q .. leavingNode, reversing it. Each node's
	// old basic arc becomes its old parent's basic arc with flipped
	// orientation.
	cur := q
	oldPred := cur.pred
	oldArc := cur.basicArc
	oldOrient := cur.orientation
	oldFlow := cur.flow

	cutChild(cur)
	attachChild(cur, p)
	cur.basicArc = enter
	if enter.tail == cur {
		cur.orientation = orientUp
	} else {
		cur.orientation = orientDown
	}
	cur.flow = enter.flow

	for cur != leavingNode {
		next := oldPred
		nOldPred := next.pred
		nOldArc := next.basicArc
		nOldOrient := next.orientation
		nOldFlow := next.flow

		cutChild(next)
		attachChild(next, cur)
		next.basicArc = oldArc
		if oldOrient == orientUp {
			next.orientation = orientDown
		} else {
			next.orientation = orientUp
		}
		next.flow = oldFlow

		cur = next
		oldPred = nOldPred
		oldArc = nOldArc
		oldOrient = nOldOrient
		oldFlow = nOldFlow
	}

	// Fix depths and shift potentials across the moved subtree.
	var newPot int64
	if q.orientation == orientUp {
		newPot = q.basicArc.cost + p.potential
	} else {
		newPot = p.potential - q.basicArc.cost
	}
	potDelta := newPot - q.potential
	fixSubtree(q, potDelta)
}

// fixSubtree walks the subtree rooted at q (iteratively, via the
// child/sibling threading — the MC port has a bounded stack) setting
// depths and shifting potentials.
func fixSubtree(q *nsNode, potDelta int64) {
	q.depth = q.pred.depth + 1
	q.potential += potDelta
	v := q.child
	for v != nil {
		v.depth = v.pred.depth + 1
		v.potential += potDelta
		if v.child != nil {
			v = v.child
			continue
		}
		for v != q && v.sibling == nil {
			v = v.pred
		}
		if v == q {
			break
		}
		v = v.sibling
	}
}

// priceOutImpl scans the whole arc array (including dormant arcs) and
// activates dormant arcs whose reduced cost is attractive — column
// generation. Like SPEC's implicit.c, each round admits only a bounded
// number of new arcs, so the simplex and the pricing rounds interleave.
// Returns how many arcs it activated.
func (s *netSimplex) priceOutImpl() int {
	s.stats.PriceOuts++
	limit := s.m/200 + 25
	activated := 0
	for i := 0; i < s.m && activated < limit; i++ {
		a := &s.arcs[i]
		if a.ident != identDormant {
			continue
		}
		if redCost(a) < 0 {
			a.ident = identAtLower
			activated++
		}
	}
	s.stats.Activated += activated
	return activated
}

// dualFeasible verifies complementary slackness over all active arcs
// (SPEC's dual_feasible check).
func (s *netSimplex) dualFeasible() bool {
	for i := range s.arcs {
		a := &s.arcs[i]
		red := redCost(a)
		switch a.ident {
		case identAtLower:
			if red < 0 {
				return false
			}
		case identAtUpper:
			if red > 0 {
				return false
			}
		case identBasic:
			if red != 0 {
				return false
			}
		}
	}
	return true
}

// flowCost sums cost*flow over all arcs (SPEC's flow_cost).
func (s *netSimplex) flowCost() int64 {
	var total int64
	for i := 0; i < s.m; i++ {
		a := &s.arcs[i]
		total += a.orgCost * a.flow
	}
	return total
}
