package mcf

import (
	"testing"

	"dsprof/internal/cc"
	"dsprof/internal/machine"
)

// runMC compiles and executes the MC MCF program on an instance.
func runMC(t *testing.T, l Layout, ins *Instance) *Output {
	t.Helper()
	prog, err := Program(l, cc.Options{HWCProf: true})
	if err != nil {
		t.Fatalf("compile mcf (%v): %v", l, err)
	}
	cfg := machine.ScaledConfig()
	cfg.MaxInstrs = 2_000_000_000
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadProgram(prog.Text, prog.Data, prog.Entry); err != nil {
		t.Fatal(err)
	}
	m.SetInput(ins.Encode())
	if err := m.Run(); err != nil {
		t.Fatalf("mcf run (%v): %v", l, err)
	}
	out, err := ParseOutput(m.OutputLongs())
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestMCSourceCompiles(t *testing.T) {
	for _, l := range []Layout{LayoutPaper, LayoutOptimized} {
		prog, err := Program(l, cc.Options{HWCProf: true})
		if err != nil {
			t.Fatalf("layout %v: %v", l, err)
		}
		if prog.Debug.FuncByName("refresh_potential") == nil {
			t.Fatalf("layout %v: refresh_potential missing", l)
		}
		_, node := prog.Debug.TypeByName("node")
		if node == nil {
			t.Fatalf("layout %v: node type missing", l)
		}
		switch l {
		case LayoutPaper:
			if node.Size != 120 {
				t.Errorf("paper node size = %d, want 120", node.Size)
			}
			// Offsets from the paper's Figure 7.
			for _, m := range node.Members {
				switch m.Name {
				case "orientation":
					if m.Off != 56 {
						t.Errorf("orientation at %d, want 56", m.Off)
					}
				case "child":
					if m.Off != 24 {
						t.Errorf("child at %d, want 24", m.Off)
					}
				case "potential":
					if m.Off != 88 {
						t.Errorf("potential at %d, want 88", m.Off)
					}
				}
			}
		case LayoutOptimized:
			if node.Size != 128 {
				t.Errorf("optimized node size = %d, want 128", node.Size)
			}
			// Hot members in the first 32 bytes.
			for _, m := range node.Members {
				switch m.Name {
				case "child", "orientation", "potential", "pred":
					if m.Off >= 32 {
						t.Errorf("hot member %s at %d, want < 32", m.Name, m.Off)
					}
				}
			}
		}
		_, arc := prog.Debug.TypeByName("arc")
		if arc == nil || arc.Size != 64 {
			t.Fatalf("layout %v: arc size = %v, want 64", l, arc)
		}
	}
}

func TestMCSolvesTinyInstance(t *testing.T) {
	ins := &Instance{
		N:      3,
		Supply: []int64{0, 0, -1, 1},
		Arcs: []Arc{
			{Tail: 1, Head: 2, Cost: 100, Active: true},
			{Tail: 3, Head: 1, Cost: 10, Active: true},
		},
	}
	out := runMC(t, LayoutPaper, ins)
	if out.Status != 0 {
		t.Fatalf("status = %d", out.Status)
	}
	if out.Cost != 110 {
		t.Errorf("cost = %d, want 110", out.Cost)
	}
}

func TestMCMatchesGoSolvers(t *testing.T) {
	for trial, trips := range []int{3, 10, 40, 120} {
		p := DefaultGenParams(trips, uint64(trial)*7919+3)
		p.ActiveFrac = []float64{0, 0.3, 1}[trial%3]
		ins := Generate(p)
		want, err := SolveSSP(ins)
		if err != nil {
			t.Fatal(err)
		}
		goCost, goStats, err := SolveNetSimplex(ins)
		if err != nil {
			t.Fatal(err)
		}
		if goCost != want {
			t.Fatalf("trips=%d: go netsimplex %d != ssp %d", trips, goCost, want)
		}
		out := runMC(t, LayoutPaper, ins)
		if out.Status != 0 {
			t.Fatalf("trips=%d: MC status %d", trips, out.Status)
		}
		if out.Cost != want {
			t.Errorf("trips=%d: MC cost %d, want %d", trips, out.Cost, want)
		}
		// The MC program is a faithful port: pivot counts must match the
		// Go twin exactly.
		if out.Pivots != int64(goStats.Pivots) {
			t.Errorf("trips=%d: MC pivots %d, Go twin %d", trips, out.Pivots, goStats.Pivots)
		}
	}
}

func TestLayoutsGiveIdenticalResults(t *testing.T) {
	ins := Generate(DefaultGenParams(60, 424242))
	a := runMC(t, LayoutPaper, ins)
	b := runMC(t, LayoutOptimized, ins)
	if a.Status != 0 || b.Status != 0 {
		t.Fatalf("status: paper=%d optimized=%d", a.Status, b.Status)
	}
	if a.Cost != b.Cost || a.Pivots != b.Pivots || a.FlowChecksum != b.FlowChecksum {
		t.Errorf("layouts disagree: paper=%+v optimized=%+v", a, b)
	}
}
