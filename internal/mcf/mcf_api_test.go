package mcf

import (
	"strings"
	"testing"
)

func TestParseOutputValidation(t *testing.T) {
	if _, err := ParseOutput([]int64{1, 2, 3}); err == nil {
		t.Error("short output accepted")
	}
	out, err := ParseOutput([]int64{0, 110, 5, 2, 1, 3, 2, 777, 12})
	if err != nil {
		t.Fatal(err)
	}
	if out.Cost != 110 || out.Pivots != 5 || out.RefreshChecksum != 12 {
		t.Errorf("parsed = %+v", out)
	}
}

func TestSourceDeterministic(t *testing.T) {
	if Source(LayoutPaper) != Source(LayoutPaper) {
		t.Error("Source not deterministic")
	}
	if Source(LayoutPaper) == Source(LayoutOptimized) {
		t.Error("layouts produce identical source")
	}
	for _, l := range []Layout{LayoutPaper, LayoutOptimized} {
		src := Source(l)
		for _, fn := range []string{"refresh_potential", "primal_bea_mpp", "price_out_impl",
			"sort_basket", "update_tree", "primal_iminus", "dual_feasible", "flow_cost",
			"write_circulations", "primal_start_artificial", "primal_net_simplex"} {
			if !strings.Contains(src, fn+"(") {
				t.Errorf("layout %v: function %s missing from source", l, fn)
			}
		}
	}
}

func TestLayoutString(t *testing.T) {
	if LayoutPaper.String() != "paper" || LayoutOptimized.String() != "optimized" {
		t.Error("layout names wrong")
	}
}

func TestGenerateDeterministicPerSeed(t *testing.T) {
	a := Generate(DefaultGenParams(50, 9)).Encode()
	b := Generate(DefaultGenParams(50, 9)).Encode()
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different instances")
		}
	}
	c := Generate(DefaultGenParams(50, 10)).Encode()
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical instances")
	}
}
