package mcf

import "fmt"

// Layout selects the memory layout of the node and arc structures.
//
// LayoutPaper is SPEC 181.mcf's layout, the one the paper profiles: the
// 120-byte node with orientation at offset 56, child at 24 and potential
// at 88 (Figure 7), and the 64-byte arc.
//
// LayoutOptimized applies the paper's §3.3 optimization: the most
// referenced members are packed contiguously into the first 32 bytes
// (one D$ line), the node is padded by 8 bytes to 128 so that only whole
// objects map into 512-byte E$ lines, and the node array is aligned to
// the padded size.
type Layout int

// Layouts.
const (
	LayoutPaper Layout = iota
	LayoutOptimized
)

func (l Layout) String() string {
	if l == LayoutOptimized {
		return "optimized"
	}
	return "paper"
}

// nodeStruct returns the MC declaration of struct node for the layout.
func nodeStruct(l Layout) string {
	if l == LayoutOptimized {
		// Hot members (paper Figure 7: orientation, child, potential,
		// then pred and basic_arc) packed first; 8 bytes of padding
		// bring the struct to 128 bytes.
		return `struct node {
	struct node *child;
	long orientation;
	cost_t potential;
	struct node *pred;
	struct arc *basic_arc;
	long depth;
	struct node *sibling;
	struct node *sibling_prev;
	long number;
	char *ident;
	struct arc *firstout;
	struct arc *firstin;
	flow_t flow;
	long mark;
	long time;
	long pad;
};`
	}
	// SPEC layout: 120 bytes, offsets exactly as in the paper's Figure 7.
	return `struct node {
	long number;
	char *ident;
	struct node *pred;
	struct node *child;
	struct node *sibling;
	struct node *sibling_prev;
	long depth;
	long orientation;
	struct arc *basic_arc;
	struct arc *firstout;
	struct arc *firstin;
	cost_t potential;
	flow_t flow;
	long mark;
	long time;
};`
}

// arcStruct returns the MC declaration of struct arc for the layout.
func arcStruct(l Layout) string {
	if l == LayoutOptimized {
		// Pricing-hot members (ident, cost) first.
		return `struct arc {
	long ident;
	cost_t cost;
	struct node *tail;
	struct node *head;
	flow_t flow;
	flow_t upper;
	cost_t org_cost;
	long mark;
};`
	}
	return `struct arc {
	cost_t cost;
	struct node *tail;
	struct node *head;
	long ident;
	flow_t flow;
	flow_t upper;
	cost_t org_cost;
	long mark;
};`
}

// nodeAlloc returns the MC statements allocating the node array. The
// optimized layout aligns the array to the (power of two) struct size so
// no object straddles an E$ line.
func nodeAlloc(l Layout) string {
	if l == LayoutOptimized {
		return `	nodes_raw = malloc((n_nodes + 2) * sizeof(struct node));
	nodes = (struct node *) (((long) nodes_raw + 127) & (0 - 128));`
	}
	return `	nodes_raw = calloc(n_nodes + 1, sizeof(struct node));
	nodes = (struct node *) nodes_raw;`
}

// Source returns the MCF program in the MC dialect for the given struct
// layout. The program is a faithful port of SPEC 181.mcf's network
// simplex (see netsimplex.go for the Go twin): primal_start_artificial,
// primal_net_simplex with primal_bea_mpp multiple pricing and sort_basket,
// refresh_potential (the paper's Figure 3 critical loop), update_tree,
// price_out_impl column generation, dual_feasible and flow_cost checks,
// and write_circulations output.
//
// Input (longs): n, m, supply[1..n], then m arcs (tail, head, cost,
// active). Output (longs): status, cost, pivots, refreshes, priceouts,
// activated, arcs-with-flow, flow checksum, refresh checksum.
func Source(l Layout) string {
	return fmt.Sprintf(srcTemplate, nodeStruct(l), arcStruct(l), nodeAlloc(l))
}

const srcTemplate = `/* mcf.mc - single-depot vehicle scheduling as min-cost flow,
 * solved with a primal network simplex (port of SPEC CPU2000 181.mcf). */

typedef long cost_t;
typedef long flow_t;

struct arc;

%s

%s

struct basket {
	struct arc *a;
	cost_t cost;
	cost_t abs_cost;
};

long n_nodes;
long m_arcs;
char *nodes_raw;
struct node *nodes;
struct arc *arcs;

long bigm = 1 << 30;

struct basket baskets[52];
struct basket *perm[52];
long basket_size;
long group_pos;

long pivots;
long refreshes;
long priceouts;
long activated;
long degenerates;
long refresh_checksum;

flow_t pv_delta;
struct node *pv_leave;
long pv_on_tail;

/* ---- input ---- */

void read_min() {
	long i;
	long t;
	long h;
	long c;
	long act;
	struct arc *a;
	n_nodes = read_long();
	m_arcs = read_long();
%s
	arcs = (struct arc *) calloc(m_arcs + n_nodes, sizeof(struct arc));
	for (i = 1; i <= n_nodes; i++) {
		nodes[i].number = i;
		nodes[i].flow = read_long();
	}
	for (i = 0; i < m_arcs; i++) {
		t = read_long();
		h = read_long();
		c = read_long();
		act = read_long();
		a = arcs + i;
		a->cost = c;
		a->org_cost = c;
		a->tail = nodes + t;
		a->head = nodes + h;
		a->upper = 1;
		if (act) {
			a->ident = 1;
		} else {
			a->ident = 0;
		}
	}
}

/* ---- initial basis: star of artificial arcs (big-M) ---- */

void primal_start_artificial() {
	long i;
	flow_t s;
	struct node *root;
	struct node *v;
	struct node *last;
	struct arc *a;
	root = nodes;
	root->basic_arc = 0;
	root->pred = 0;
	root->potential = 0;
	root->depth = 0;
	root->child = 0;
	last = 0;
	for (i = 1; i <= n_nodes; i++) {
		v = nodes + i;
		s = v->flow;
		a = arcs + m_arcs + i - 1;
		a->cost = bigm;
		a->org_cost = bigm;
		a->upper = 1 << 40;
		a->ident = 3;
		if (s >= 0) {
			a->tail = v;
			a->head = root;
			v->orientation = 1;
			v->potential = bigm;
		} else {
			a->tail = root;
			a->head = v;
			v->orientation = 2;
			v->potential = 0 - bigm;
			s = -s;
		}
		a->flow = s;
		v->flow = s;
		v->basic_arc = a;
		v->pred = root;
		v->child = 0;
		v->depth = 1;
		v->sibling = 0;
		v->sibling_prev = last;
		if (last) {
			last->sibling = v;
		} else {
			root->child = v;
		}
		last = v;
	}
}

/* ---- the paper's Figure 3 critical loop ---- */

long refresh_potential() {
	long checksum;
	struct node *root;
	struct node *node;
	struct node *tmp;
	refreshes++;
	checksum = 0;
	root = nodes;
	tmp = root->child;
	node = root->child;
	while (node != root) {
		while (node) {
			if (node->orientation == 1) {
				node->potential = node->basic_arc->cost + node->pred->potential;
			} else {
				node->potential = node->pred->potential - node->basic_arc->cost;
			}
			checksum++;
			tmp = node;
			node = node->child;
		}
		node = tmp;
		while (node != root) {
			if (node->sibling) {
				node = node->sibling;
				break;
			}
			node = node->pred;
		}
	}
	return checksum;
}

/* ---- multiple partial pricing (SPEC pbeampp.c) ---- */

void sort_basket(long lo, long hi) {
	long i;
	long j;
	struct basket *key;
	for (i = lo + 1; i <= hi; i++) {
		key = perm[i];
		j = i - 1;
		while (j >= lo && perm[j]->abs_cost < key->abs_cost) {
			perm[j + 1] = perm[j];
			j--;
		}
		perm[j + 1] = key;
	}
}

struct arc *primal_bea_mpp() {
	long i;
	long g;
	long ngroups;
	long mall;
	long kept;
	long end;
	struct arc *a;
	cost_t red;
	struct basket *tmpb;

	/* revalidate the basket kept from the previous call; perm[] is a
	 * permutation of &baskets[], so compaction swaps pointers */
	kept = 0;
	for (i = 0; i < basket_size; i++) {
		a = perm[i]->a;
		red = a->cost - a->tail->potential + a->head->potential;
		if ((a->ident == 1 && red < 0) || (a->ident == 2 && red > 0)) {
			tmpb = perm[kept];
			perm[kept] = perm[i];
			perm[i] = tmpb;
			perm[kept]->cost = red;
			if (red < 0) {
				perm[kept]->abs_cost = -red;
			} else {
				perm[kept]->abs_cost = red;
			}
			kept++;
		}
	}
	basket_size = kept;

	/* scan whole groups until the basket fills or a pass finds nothing */
	mall = m_arcs + n_nodes;
	ngroups = (mall + 299) / 300;
	g = 0;
	while (basket_size < 50 && g < ngroups && (g < 3 || basket_size == 0)) {
		end = group_pos + 300;
		i = group_pos;
		while (i < end && i < mall && basket_size < 50) {
			a = arcs + i;
			if (a->ident == 1) {
				red = a->cost - a->tail->potential + a->head->potential;
				if (red < 0) {
					perm[basket_size]->a = a;
					perm[basket_size]->cost = red;
					perm[basket_size]->abs_cost = -red;
					basket_size++;
				}
			} else if (a->ident == 2) {
				red = a->cost - a->tail->potential + a->head->potential;
				if (red > 0) {
					perm[basket_size]->a = a;
					perm[basket_size]->cost = red;
					perm[basket_size]->abs_cost = red;
					basket_size++;
				}
			}
			i++;
		}
		group_pos = group_pos + 300;
		if (group_pos >= mall) {
			group_pos = 0;
		}
		g++;
	}
	if (basket_size == 0) {
		return (struct arc *) 0;
	}
	sort_basket(0, basket_size - 1);
	a = perm[0]->a;
	/* pop the best: rotate its slot pointer to the end, keep <= 50 */
	tmpb = perm[0];
	for (i = 0; i < basket_size - 1; i++) {
		perm[i] = perm[i + 1];
	}
	perm[basket_size - 1] = tmpb;
	basket_size--;
	if (basket_size > 50) {
		basket_size = 50;
	}
	return a;
}

/* ---- leaving-arc search (SPEC primal_iminus) ---- */

void primal_iminus(struct node *tailside, struct node *headside, struct node *join, flow_t enter_res) {
	struct node *x;
	flow_t res;
	pv_delta = enter_res;
	pv_leave = (struct node *) 0;
	pv_on_tail = 0;
	x = tailside;
	while (x != join) {
		if (x->orientation == 1) {
			res = x->flow;
		} else {
			res = x->basic_arc->upper - x->flow;
		}
		if (res < pv_delta) {
			pv_delta = res;
			pv_leave = x;
			pv_on_tail = 1;
		}
		x = x->pred;
	}
	x = headside;
	while (x != join) {
		if (x->orientation == 1) {
			res = x->basic_arc->upper - x->flow;
		} else {
			res = x->flow;
		}
		if (res < pv_delta) {
			pv_delta = res;
			pv_leave = x;
			pv_on_tail = 0;
		}
		x = x->pred;
	}
}

/* ---- tree maintenance ---- */

void cut_child(struct node *v) {
	if (v->sibling_prev) {
		v->sibling_prev->sibling = v->sibling;
	} else if (v->pred) {
		v->pred->child = v->sibling;
	}
	if (v->sibling) {
		v->sibling->sibling_prev = v->sibling_prev;
	}
	v->sibling = (struct node *) 0;
	v->sibling_prev = (struct node *) 0;
}

void attach_child(struct node *v, struct node *p) {
	v->sibling = p->child;
	if (p->child) {
		p->child->sibling_prev = v;
	}
	v->sibling_prev = (struct node *) 0;
	p->child = v;
	v->pred = p;
}

void update_tree(struct node *q, struct node *leave, struct arc *enter) {
	struct node *p;
	struct node *cur;
	struct node *old_pred;
	struct node *next;
	struct node *n_old_pred;
	struct arc *old_arc;
	struct arc *n_old_arc;
	long old_orient;
	long n_old_orient;
	flow_t old_flow;
	flow_t n_old_flow;
	cost_t newpot;
	cost_t potdelta;
	struct node *v;

	p = enter->tail;
	if (p == q) {
		p = enter->head;
	}

	cur = q;
	old_pred = cur->pred;
	old_arc = cur->basic_arc;
	old_orient = cur->orientation;
	old_flow = cur->flow;

	cut_child(cur);
	attach_child(cur, p);
	cur->basic_arc = enter;
	if (enter->tail == cur) {
		cur->orientation = 1;
	} else {
		cur->orientation = 2;
	}
	cur->flow = enter->flow;

	while (cur != leave) {
		next = old_pred;
		n_old_pred = next->pred;
		n_old_arc = next->basic_arc;
		n_old_orient = next->orientation;
		n_old_flow = next->flow;

		cut_child(next);
		attach_child(next, cur);
		next->basic_arc = old_arc;
		if (old_orient == 1) {
			next->orientation = 2;
		} else {
			next->orientation = 1;
		}
		next->flow = old_flow;

		cur = next;
		old_pred = n_old_pred;
		old_arc = n_old_arc;
		old_orient = n_old_orient;
		old_flow = n_old_flow;
	}

	/* fix depths and shift potentials over the moved subtree */
	if (q->orientation == 1) {
		newpot = q->basic_arc->cost + p->potential;
	} else {
		newpot = p->potential - q->basic_arc->cost;
	}
	potdelta = newpot - q->potential;
	q->depth = q->pred->depth + 1;
	q->potential = q->potential + potdelta;
	v = q->child;
	while (v) {
		v->depth = v->pred->depth + 1;
		v->potential = v->potential + potdelta;
		if (v->child) {
			v = v->child;
			continue;
		}
		while (v != q && !v->sibling) {
			v = v->pred;
		}
		if (v == q) {
			break;
		}
		v = v->sibling;
	}
}

/* ---- one pivot ---- */

void primal_update(struct arc *enter) {
	long increase;
	struct node *t;
	struct node *h;
	struct node *tailside;
	struct node *headside;
	struct node *a;
	struct node *b;
	struct node *join;
	struct node *x;
	struct node *q;
	struct arc *leavearc;
	flow_t enter_res;
	flow_t delta;

	if (enter->ident == 1) {
		increase = 1;
	} else {
		increase = 0;
	}
	t = enter->tail;
	h = enter->head;
	tailside = t;
	headside = h;
	if (!increase) {
		tailside = h;
		headside = t;
	}

	/* common ancestor */
	a = tailside;
	b = headside;
	while (a->depth > b->depth) {
		a = a->pred;
	}
	while (b->depth > a->depth) {
		b = b->pred;
	}
	while (a != b) {
		a = a->pred;
		b = b->pred;
	}
	join = a;

	if (increase) {
		enter_res = enter->upper - enter->flow;
	} else {
		enter_res = enter->flow;
	}
	primal_iminus(tailside, headside, join, enter_res);
	delta = pv_delta;
	if (delta == 0) {
		degenerates++;
	}

	/* flow updates around the cycle */
	if (increase) {
		enter->flow = enter->flow + delta;
	} else {
		enter->flow = enter->flow - delta;
	}
	x = tailside;
	while (x != join) {
		if (x->orientation == 1) {
			x->flow = x->flow - delta;
		} else {
			x->flow = x->flow + delta;
		}
		x->basic_arc->flow = x->flow;
		x = x->pred;
	}
	x = headside;
	while (x != join) {
		if (x->orientation == 1) {
			x->flow = x->flow + delta;
		} else {
			x->flow = x->flow - delta;
		}
		x->basic_arc->flow = x->flow;
		x = x->pred;
	}

	if (!pv_leave) {
		/* bound flip on the entering arc */
		if (enter->ident == 1) {
			enter->ident = 2;
		} else {
			enter->ident = 1;
		}
		return;
	}

	leavearc = pv_leave->basic_arc;
	q = headside;
	if (pv_on_tail) {
		q = tailside;
	}
	update_tree(q, pv_leave, enter);
	if (leavearc->flow == 0) {
		leavearc->ident = 1;
	} else {
		leavearc->ident = 2;
	}
	enter->ident = 3;
}

/* ---- simplex driver ---- */

long primal_net_simplex() {
	struct arc *enter;
	long since;
	refresh_checksum = refresh_checksum + refresh_potential();
	since = 0;
	while (1) {
		enter = primal_bea_mpp();
		if (!enter) {
			return 0;
		}
		primal_update(enter);
		pivots++;
		since++;
		if (since >= 8) {
			refresh_checksum = refresh_checksum + refresh_potential();
			since = 0;
		}
		if (pivots > 300 * (n_nodes + m_arcs) + 100000) {
			return 1;
		}
	}
}

/* ---- column generation (SPEC implicit.c price_out_impl) ---- */

long price_out_impl() {
	long i;
	long found;
	long limit;
	struct arc *a;
	cost_t red;
	priceouts++;
	limit = m_arcs / 200 + 25;
	found = 0;
	i = 0;
	while (i < m_arcs && found < limit) {
		a = arcs + i;
		if (a->ident == 0) {
			red = a->cost - a->tail->potential + a->head->potential;
			if (red < 0) {
				a->ident = 1;
				found++;
			}
		}
		i++;
	}
	activated = activated + found;
	return found;
}

/* ---- checks and output ---- */

long dual_feasible() {
	long i;
	long mall;
	struct arc *a;
	cost_t red;
	mall = m_arcs + n_nodes;
	for (i = 0; i < mall; i++) {
		a = arcs + i;
		red = a->cost - a->tail->potential + a->head->potential;
		if (a->ident == 1 && red < 0) {
			return 0;
		}
		if (a->ident == 2 && red > 0) {
			return 0;
		}
		if (a->ident == 3 && red != 0) {
			return 0;
		}
	}
	return 1;
}

cost_t flow_cost() {
	long i;
	cost_t total;
	struct arc *a;
	total = 0;
	for (i = 0; i < m_arcs; i++) {
		a = arcs + i;
		total = total + a->org_cost * a->flow;
	}
	return total;
}

void write_circulations() {
	long i;
	long used;
	long check;
	struct arc *a;
	used = 0;
	check = 0;
	for (i = 0; i < m_arcs; i++) {
		a = arcs + i;
		if (a->flow > 0) {
			used++;
			check = check + (a->tail->number * 31 + a->head->number) * a->flow;
		}
	}
	write_long(used);
	write_long(check %% 1000000007);
}

long main() {
	long status;
	long i;
	struct arc *a;
	status = 0;
	for (i = 0; i < 52; i++) {
		perm[i] = &baskets[i];
	}
	read_min();
	primal_start_artificial();
	while (1) {
		if (primal_net_simplex()) {
			status = 3;
			break;
		}
		if (price_out_impl() == 0) {
			break;
		}
	}
	if (status == 0 && !dual_feasible()) {
		status = 1;
	}
	if (status == 0) {
		for (i = 0; i < n_nodes; i++) {
			a = arcs + m_arcs + i;
			if (a->flow != 0) {
				status = 2;
			}
		}
	}
	write_long(status);
	write_long(flow_cost());
	write_long(pivots);
	write_long(refreshes);
	write_long(priceouts);
	write_long(activated);
	write_circulations();
	write_long(refresh_checksum);
	return status;
}
`
