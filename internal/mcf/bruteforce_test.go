package mcf

import (
	"testing"

	"dsprof/internal/xrand"
)

// bruteForce computes the exact minimum-cost flow of a tiny unit-capacity
// instance by enumerating every subset of arcs (each arc carries flow 0
// or 1) and checking flow conservation — an oracle for the oracle.
func bruteForce(ins *Instance) (int64, bool) {
	m := len(ins.Arcs)
	if m > 20 {
		panic("bruteForce: instance too large")
	}
	best := int64(0)
	found := false
	for mask := 0; mask < 1<<m; mask++ {
		bal := make([]int64, ins.N+1)
		var cost int64
		for i := 0; i < m; i++ {
			if mask&(1<<i) == 0 {
				continue
			}
			a := ins.Arcs[i]
			bal[a.Tail]++
			bal[a.Head]--
			cost += a.Cost
		}
		ok := true
		for v := 1; v <= ins.N; v++ {
			if bal[v] != ins.Supply[v] {
				ok = false
				break
			}
		}
		if ok && (!found || cost < best) {
			best = cost
			found = true
		}
	}
	return best, found
}

// tinyInstance builds a random feasible instance with at most maxArcs
// arcs: a couple of trips with depot arcs plus random extra connections.
func tinyInstance(r *xrand.Rand) *Instance {
	trips := 1 + r.Intn(3)
	n := 1 + 2*trips
	ins := &Instance{N: n, Supply: make([]int64, n+1), Trips: trips}
	start := func(i int) int32 { return int32(2 + 2*i) }
	end := func(i int) int32 { return int32(3 + 2*i) }
	for i := 0; i < trips; i++ {
		ins.Supply[start(i)] = -1
		ins.Supply[end(i)] = 1
		ins.Arcs = append(ins.Arcs,
			Arc{Tail: 1, Head: start(i), Cost: int64(100 + r.Intn(500)), Active: r.Intn(2) == 0},
			Arc{Tail: end(i), Head: 1, Cost: int64(10 + r.Intn(50)), Active: r.Intn(2) == 0},
		)
	}
	// Random extra connections between trip ends and starts.
	extra := r.Intn(5)
	for k := 0; k < extra && len(ins.Arcs) < 14; k++ {
		i, j := r.Intn(trips), r.Intn(trips)
		if i == j {
			continue
		}
		ins.Arcs = append(ins.Arcs, Arc{
			Tail: end(i), Head: start(j), Cost: int64(r.Intn(200)), Active: r.Intn(2) == 0,
		})
	}
	return ins
}

// All three solvers must match the exhaustive optimum on tiny instances.
func TestSolversMatchBruteForce(t *testing.T) {
	r := xrand.New(1234)
	checked := 0
	for trial := 0; trial < 60; trial++ {
		ins := tinyInstance(r)
		want, feasible := bruteForce(ins)
		if !feasible {
			t.Fatalf("trial %d: generator produced infeasible instance", trial)
		}
		checked++
		got, err := SolveSSP(ins)
		if err != nil {
			t.Fatalf("trial %d: ssp: %v", trial, err)
		}
		if got != want {
			t.Fatalf("trial %d: ssp %d != brute force %d (instance %+v)", trial, got, want, ins)
		}
		ns, _, err := SolveNetSimplex(ins)
		if err != nil {
			t.Fatalf("trial %d: netsimplex: %v", trial, err)
		}
		if ns != want {
			t.Fatalf("trial %d: netsimplex %d != brute force %d", trial, ns, want)
		}
	}
	if checked == 0 {
		t.Fatal("no instances checked")
	}
}

// SSP must detect infeasible instances (a demand node with no incoming
// arcs).
func TestSSPDetectsInfeasible(t *testing.T) {
	ins := &Instance{
		N:      3,
		Supply: []int64{0, 0, -1, 1},
		Arcs: []Arc{
			{Tail: 3, Head: 1, Cost: 10, Active: true}, // node 2 unreachable
		},
	}
	if _, err := SolveSSP(ins); err == nil {
		t.Error("SSP solved an infeasible instance")
	}
	// The network simplex covers it with artificial arcs and must report
	// infeasibility via the artificial-flow check.
	if _, _, err := SolveNetSimplex(ins); err == nil {
		t.Error("network simplex accepted an infeasible instance")
	}
}
