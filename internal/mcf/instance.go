// Package mcf provides the paper's case-study workload: MCF, the
// single-depot vehicle scheduling problem formulated as min-cost flow and
// solved with a network simplex algorithm (Löbel; SPEC CPU2000 181.mcf).
//
// The package contains:
//
//   - a vehicle-scheduling instance generator (standing in for the SPEC
//     reference input, which is not redistributable),
//   - the MCF program written in the MC source dialect, with the struct
//     layout as a parameter so the paper's §3.3 layout optimization is a
//     compile-time variant,
//   - two independent Go solvers (network simplex mirroring the MC code,
//     and successive shortest paths) used to validate solutions.
package mcf

import (
	"fmt"

	"dsprof/internal/xrand"
)

// Arc is one instance arc.
type Arc struct {
	Tail   int32 // 1-based node id
	Head   int32
	Cost   int64
	Active bool // initially active (not dormant) for column generation
}

// Instance is a min-cost flow instance: nodes 1..N with supplies, arcs
// with unit capacity. Node 1 is the depot.
type Instance struct {
	N      int     // number of nodes
	Supply []int64 // length N+1, 1-based; sums to zero
	Arcs   []Arc
	Trips  int // number of timetabled trips (for reporting)
}

// GenParams control the vehicle-scheduling generator.
type GenParams struct {
	Trips    int    // timetabled trips
	Seed     uint64 // PRNG seed
	Horizon  int64  // planning horizon in minutes
	MaxConns int    // max successor connections generated per trip
	// ActiveFrac is the fraction of connection arcs initially active
	// (the rest are dormant until price_out_impl activates them).
	ActiveFrac float64
}

// DefaultGenParams sizes an instance of the given trip count like the
// vehicle-scheduling inputs of the paper's benchmark.
func DefaultGenParams(trips int, seed uint64) GenParams {
	return GenParams{
		Trips:      trips,
		Seed:       seed,
		Horizon:    18 * 60,
		MaxConns:   12,
		ActiveFrac: 0.3,
	}
}

// Generate builds a single-depot vehicle-scheduling min-cost-flow
// instance:
//
//   - each timetabled trip i contributes a start node s_i (demand 1) and
//     an end node e_i (supply 1);
//   - a pull-out arc depot->s_i (vehicle cost + deadhead) and a pull-in
//     arc e_i->depot;
//   - connection arcs e_i->s_j when trip j can follow trip i in one
//     vehicle's schedule (end_i + deadhead <= start_j).
//
// A fleet of vehicles circulating through the depot covers every trip;
// minimizing cost trades vehicle count (expensive pull-outs) against
// deadhead connections — the structure of Löbel's formulation.
func Generate(p GenParams) *Instance {
	if p.Trips < 1 {
		p.Trips = 1
	}
	r := xrand.New(p.Seed)
	type trip struct{ start, end int64 }
	trips := make([]trip, p.Trips)
	for i := range trips {
		s := int64(r.Intn(int(p.Horizon - 120)))
		d := int64(20 + r.Intn(90)) // trip duration
		trips[i] = trip{start: s, end: s + d}
	}

	// Node ids: depot = 1; trip i has start node 2+2i, end node 3+2i.
	n := 1 + 2*p.Trips
	ins := &Instance{N: n, Supply: make([]int64, n+1), Trips: p.Trips}
	startNode := func(i int) int32 { return int32(2 + 2*i) }
	endNode := func(i int) int32 { return int32(3 + 2*i) }
	for i := 0; i < p.Trips; i++ {
		ins.Supply[startNode(i)] = -1
		ins.Supply[endNode(i)] = 1
	}

	const vehicleCost = 5000
	for i := 0; i < p.Trips; i++ {
		// Pull-out and pull-in arcs are always active: they make every
		// instance feasible.
		ins.Arcs = append(ins.Arcs,
			Arc{Tail: 1, Head: startNode(i), Cost: vehicleCost + int64(r.Intn(200)), Active: true},
			Arc{Tail: endNode(i), Head: 1, Cost: int64(50 + r.Intn(100)), Active: true},
		)
	}
	// Connection arcs: e_i -> s_j for compatible trips, nearest-first.
	// Collect candidate successors per trip and keep the closest few.
	for i := 0; i < p.Trips; i++ {
		conns := 0
		// Probe trips in a pseudo-random order for successor candidates.
		probe := r.Intn(p.Trips)
		for k := 0; k < p.Trips && conns < p.MaxConns; k++ {
			j := (probe + k) % p.Trips
			if j == i {
				continue
			}
			dead := int64(5 + r.Intn(30))
			if trips[i].end+dead <= trips[j].start {
				ins.Arcs = append(ins.Arcs, Arc{
					Tail:   endNode(i),
					Head:   startNode(j),
					Cost:   dead * 10,
					Active: r.Float64() < p.ActiveFrac,
				})
				conns++
			}
		}
	}
	return ins
}

// Encode serializes the instance as the input vector of the MC program:
//
//	n, m,
//	supply[1..n],
//	m * (tail, head, cost, active)
func (ins *Instance) Encode() []int64 {
	out := make([]int64, 0, 2+ins.N+4*len(ins.Arcs))
	out = append(out, int64(ins.N), int64(len(ins.Arcs)))
	for i := 1; i <= ins.N; i++ {
		out = append(out, ins.Supply[i])
	}
	for _, a := range ins.Arcs {
		act := int64(0)
		if a.Active {
			act = 1
		}
		out = append(out, int64(a.Tail), int64(a.Head), a.Cost, act)
	}
	return out
}

// Decode parses an encoded instance (inverse of Encode).
func Decode(in []int64) (*Instance, error) {
	if len(in) < 2 {
		return nil, fmt.Errorf("mcf: truncated instance")
	}
	n, m := int(in[0]), int(in[1])
	if n < 1 || m < 0 || len(in) != 2+n+4*m {
		return nil, fmt.Errorf("mcf: malformed instance (n=%d m=%d len=%d)", n, m, len(in))
	}
	ins := &Instance{N: n, Supply: make([]int64, n+1)}
	for i := 1; i <= n; i++ {
		ins.Supply[i] = in[1+i]
	}
	off := 2 + n
	var sum int64
	for i := 1; i <= n; i++ {
		sum += ins.Supply[i]
	}
	if sum != 0 {
		return nil, fmt.Errorf("mcf: supplies sum to %d, not zero", sum)
	}
	for i := 0; i < m; i++ {
		t, h, c, act := in[off], in[off+1], in[off+2], in[off+3]
		off += 4
		if t < 1 || t > int64(n) || h < 1 || h > int64(n) || t == h {
			return nil, fmt.Errorf("mcf: bad arc %d -> %d", t, h)
		}
		ins.Arcs = append(ins.Arcs, Arc{Tail: int32(t), Head: int32(h), Cost: c, Active: act != 0})
	}
	return ins, nil
}
