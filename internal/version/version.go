// Package version carries the shared release identity of the dsprof
// tool suite, so every binary answers -version consistently.
package version

import (
	"fmt"
	"io"
)

// Version is the suite version. Bumped when the experiment format or a
// tool's command-line surface changes.
const Version = "0.3.0"

// Print writes the standard one-line -version output for a tool.
func Print(w io.Writer, tool string) {
	fmt.Fprintf(w, "%s version %s (dsprof data-space profiling suite)\n", tool, Version)
}
