// Package tlb models the data translation lookaside buffer (DTLB).
//
// The TLB caches virtual page translations. Page size is a property of the
// memory segment being accessed (the machine passes the page base of each
// access), which is how -xpagesize_heap=512k reduces DTLB misses: larger
// heap pages mean one entry covers more of the working set.
package tlb

import "fmt"

// Config describes TLB geometry.
type Config struct {
	Entries int // total entries
	Assoc   int // associativity; Entries/Assoc sets
}

// DefaultConfig approximates the UltraSPARC-III Cu DTLB scaled to the
// simulator's workload sizes: 128 entries, 2-way.
func DefaultConfig() Config { return Config{Entries: 128, Assoc: 2} }

// MissPenaltyCycles is the paper's estimate of the cost of one DTLB miss
// ("estimating the cost of a DTLB Miss as 100 cycles").
const MissPenaltyCycles = 100

type entry struct {
	base  uint64
	valid bool
	use   uint64
}

// TLB is a set-associative translation cache with LRU replacement.
// Entries are stored in one flat slice indexed by set*assoc+way, so a
// lookup — on the critical path of every simulated memory access — costs
// no pointer hop through a per-set slice header.
type TLB struct {
	entries []entry
	assoc   int
	setMask uint64
	tick    uint64

	// MRU memo: the entry the previous Lookup hit or installed, so a
	// repeat translation of the same page skips the set scan. lastSize
	// disambiguates lookups that alias on page base across page sizes.
	lastIdx  int
	lastSize uint64

	Lookups uint64
	Misses  uint64
}

// New builds a TLB.
func New(cfg Config) (*TLB, error) {
	if cfg.Entries <= 0 || cfg.Assoc <= 0 || cfg.Entries%cfg.Assoc != 0 {
		return nil, fmt.Errorf("tlb: bad geometry %+v", cfg)
	}
	nsets := cfg.Entries / cfg.Assoc
	if nsets&(nsets-1) != 0 {
		return nil, fmt.Errorf("tlb: set count %d not a power of two", nsets)
	}
	return &TLB{
		entries: make([]entry, cfg.Entries),
		assoc:   cfg.Assoc,
		setMask: uint64(nsets - 1),
	}, nil
}

// Lookup translates the page starting at pageBase (already aligned to
// pageSize by the caller). It reports whether the translation hit; misses
// install the entry.
func (t *TLB) Lookup(pageBase, pageSize uint64) bool {
	t.Lookups++
	t.tick++
	// MRU memo: only a Lookup mutates entries, and every Lookup refreshes
	// the memo, so a match here repeats the previous translation exactly —
	// same entry a set scan would find, same use-stamp update.
	if e := &t.entries[t.lastIdx]; e.valid && e.base == pageBase && t.lastSize == pageSize {
		e.use = t.tick
		return true
	}
	t.lastSize = pageSize
	// Index by the page number so pages of any size spread over the sets.
	base := int((pageBase/pageSize)&t.setMask) * t.assoc
	set := t.entries[base : base+t.assoc]
	// Hit scan first — the common case pays none of the victim tracking.
	for i := range set {
		if set[i].valid && set[i].base == pageBase {
			t.lastIdx = base + i
			set[i].use = t.tick
			return true
		}
	}
	victim := 0
	for i := range set {
		if set[victim].valid && (!set[i].valid || set[i].use < set[victim].use) {
			victim = i
		}
	}
	t.Misses++
	set[victim] = entry{base: pageBase, valid: true, use: t.tick}
	t.lastIdx = base + victim
	return false
}

// Contains probes without side effects.
func (t *TLB) Contains(pageBase, pageSize uint64) bool {
	base := int((pageBase/pageSize)&t.setMask) * t.assoc
	set := t.entries[base : base+t.assoc]
	for i := range set {
		if set[i].valid && set[i].base == pageBase {
			return true
		}
	}
	return false
}

// Flush invalidates all entries and clears statistics.
func (t *TLB) Flush() {
	for i := range t.entries {
		t.entries[i] = entry{}
	}
	t.tick, t.Lookups, t.Misses = 0, 0, 0
	t.lastIdx, t.lastSize = 0, 0
}
