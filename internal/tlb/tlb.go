// Package tlb models the data translation lookaside buffer (DTLB).
//
// The TLB caches virtual page translations. Page size is a property of the
// memory segment being accessed (the machine passes the page base of each
// access), which is how -xpagesize_heap=512k reduces DTLB misses: larger
// heap pages mean one entry covers more of the working set.
package tlb

import (
	"fmt"
	"math/bits"
)

// Config describes TLB geometry.
type Config struct {
	Entries int // total entries
	Assoc   int // associativity; Entries/Assoc sets
}

// DefaultConfig approximates the UltraSPARC-III Cu DTLB scaled to the
// simulator's workload sizes: 128 entries, 2-way.
func DefaultConfig() Config { return Config{Entries: 128, Assoc: 2} }

// MissPenaltyCycles is the paper's estimate of the cost of one DTLB miss
// ("estimating the cost of a DTLB Miss as 100 cycles").
const MissPenaltyCycles = 100

// invalidBase marks a never-installed entry. Queried page bases are
// page-aligned, so the all-ones base can never match and no separate
// valid flag is needed.
const invalidBase = ^uint64(0)

type entry struct {
	base uint64
	use  uint64
}

// TLB is a set-associative translation cache with LRU replacement.
// Entries are stored in one flat slice indexed by set*assoc+way, so a
// lookup — on the critical path of every simulated memory access — costs
// no pointer hop through a per-set slice header.
type TLB struct {
	entries []entry
	assoc   int
	setMask uint64

	// MRU memo: the index of the entry the previous Lookup hit or
	// installed, so a repeat translation of the same page skips the set
	// scan. lastSize disambiguates lookups that alias on page base
	// across page sizes. The second (prev) memo entry catches the
	// ubiquitous two-page alternation of heap data and stack spills,
	// which would thrash a single-entry memo on every access. Memo hits
	// re-validate against the live entry, so an install that evicts a
	// memoized entry cannot produce a stale hit.
	lastIdx  int
	lastSize uint64
	prevIdx  int
	prevSize uint64

	// Lookups counts translations and doubles as the LRU clock: it
	// advances by exactly one per Lookup, so use stamps are lookup
	// sequence numbers.
	Lookups uint64
	Misses  uint64
}

// New builds a TLB.
func New(cfg Config) (*TLB, error) {
	if cfg.Entries <= 0 || cfg.Assoc <= 0 || cfg.Entries%cfg.Assoc != 0 {
		return nil, fmt.Errorf("tlb: bad geometry %+v", cfg)
	}
	nsets := cfg.Entries / cfg.Assoc
	if nsets&(nsets-1) != 0 {
		return nil, fmt.Errorf("tlb: set count %d not a power of two", nsets)
	}
	t := &TLB{
		entries: make([]entry, cfg.Entries),
		assoc:   cfg.Assoc,
		setMask: uint64(nsets - 1),
	}
	for i := range t.entries {
		t.entries[i].base = invalidBase
	}
	return t, nil
}

// Lookup translates the page starting at pageBase (already aligned to
// pageSize by the caller). It reports whether the translation hit; misses
// install the entry. Only a Lookup mutates entries, and every Lookup
// refreshes a memo, so a memo match repeats the previous translation
// exactly — same entry a set scan would find (duplicate bases are never
// installed), same use-stamp update.
func (t *TLB) Lookup(pageBase, pageSize uint64) bool {
	t.Lookups++
	if e := &t.entries[t.lastIdx]; e.base == pageBase && t.lastSize == pageSize {
		e.use = t.Lookups
		return true
	}
	return t.lookup2(pageBase, pageSize)
}

// lookup2 checks the second memo entry before falling to the set scan,
// promoting a hit to the first slot. Kept out of line so the first-memo
// hit in Lookup stays small.
//
//go:noinline
func (t *TLB) lookup2(pageBase, pageSize uint64) bool {
	if e := &t.entries[t.prevIdx]; e.base == pageBase && t.prevSize == pageSize {
		e.use = t.Lookups
		t.lastIdx, t.lastSize, t.prevIdx, t.prevSize = t.prevIdx, t.prevSize, t.lastIdx, t.lastSize
		return true
	}
	return t.lookupSlow(pageBase, pageSize)
}

func (t *TLB) lookupSlow(pageBase, pageSize uint64) bool {
	t.prevIdx, t.prevSize = t.lastIdx, t.lastSize
	t.lastSize = pageSize
	// Index by the page number so pages of any size spread over the sets.
	// Page sizes are powers of two, so the quotient is a shift.
	base := int((pageBase>>uint(bits.TrailingZeros64(pageSize)))&t.setMask) * t.assoc
	set := t.entries[base : base+t.assoc]
	// Hit scan first — the common case pays none of the victim tracking.
	for i := range set {
		if set[i].base == pageBase {
			t.lastIdx = base + i
			set[i].use = t.Lookups
			return true
		}
	}
	// Victim: the way with the lowest use stamp. Never-used ways hold
	// stamp 0, below any real lookup number, so they are filled first.
	victim := 0
	for i := 1; i < len(set); i++ {
		if set[i].use < set[victim].use {
			victim = i
		}
	}
	t.Misses++
	set[victim] = entry{base: pageBase, use: t.Lookups}
	t.lastIdx = base + victim
	return false
}

// EntryHit performs the lookup against one specific entry index: it
// reports false — with no state change — unless that entry currently
// holds pageBase. On a hit it applies exactly what a full Lookup hit
// would (clock tick, use stamp). Segments are disjoint and installed
// bases are page-aligned, so a base match alone identifies the page; the
// index is a caller-remembered performance hint (the translated
// backend's per-site TLB caches), verified on every use.
func (t *TLB) EntryHit(idx int, pageBase uint64) bool {
	e := &t.entries[idx]
	if e.base != pageBase {
		return false
	}
	t.Lookups++
	e.use = t.Lookups
	return true
}

// LastIdx reports the entry index of the most recent Lookup hit or
// install — the value a per-site cache should remember after a fallback
// Lookup. Pure optimization state: no translation outcome depends on it.
func (t *TLB) LastIdx() int { return t.lastIdx }

// Contains probes without side effects.
func (t *TLB) Contains(pageBase, pageSize uint64) bool {
	base := int((pageBase>>uint(bits.TrailingZeros64(pageSize)))&t.setMask) * t.assoc
	set := t.entries[base : base+t.assoc]
	for i := range set {
		if set[i].base == pageBase {
			return true
		}
	}
	return false
}

// Flush invalidates all entries and clears statistics.
func (t *TLB) Flush() {
	for i := range t.entries {
		t.entries[i] = entry{base: invalidBase}
	}
	t.Lookups, t.Misses = 0, 0
	t.lastIdx, t.lastSize = 0, 0
	t.prevIdx, t.prevSize = 0, 0
}
