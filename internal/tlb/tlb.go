// Package tlb models the data translation lookaside buffer (DTLB).
//
// The TLB caches virtual page translations. Page size is a property of the
// memory segment being accessed (the machine passes the page base of each
// access), which is how -xpagesize_heap=512k reduces DTLB misses: larger
// heap pages mean one entry covers more of the working set.
package tlb

import "fmt"

// Config describes TLB geometry.
type Config struct {
	Entries int // total entries
	Assoc   int // associativity; Entries/Assoc sets
}

// DefaultConfig approximates the UltraSPARC-III Cu DTLB scaled to the
// simulator's workload sizes: 128 entries, 2-way.
func DefaultConfig() Config { return Config{Entries: 128, Assoc: 2} }

// MissPenaltyCycles is the paper's estimate of the cost of one DTLB miss
// ("estimating the cost of a DTLB Miss as 100 cycles").
const MissPenaltyCycles = 100

type entry struct {
	base  uint64
	valid bool
	use   uint64
}

// TLB is a set-associative translation cache with LRU replacement.
type TLB struct {
	sets    [][]entry
	setMask uint64
	tick    uint64

	Lookups uint64
	Misses  uint64
}

// New builds a TLB.
func New(cfg Config) (*TLB, error) {
	if cfg.Entries <= 0 || cfg.Assoc <= 0 || cfg.Entries%cfg.Assoc != 0 {
		return nil, fmt.Errorf("tlb: bad geometry %+v", cfg)
	}
	nsets := cfg.Entries / cfg.Assoc
	if nsets&(nsets-1) != 0 {
		return nil, fmt.Errorf("tlb: set count %d not a power of two", nsets)
	}
	sets := make([][]entry, nsets)
	for i := range sets {
		sets[i] = make([]entry, cfg.Assoc)
	}
	return &TLB{sets: sets, setMask: uint64(nsets - 1)}, nil
}

// Lookup translates the page starting at pageBase (already aligned to
// pageSize by the caller). It reports whether the translation hit; misses
// install the entry.
func (t *TLB) Lookup(pageBase, pageSize uint64) bool {
	t.Lookups++
	t.tick++
	// Index by the page number so pages of any size spread over the sets.
	set := t.sets[(pageBase/pageSize)&t.setMask]
	victim := 0
	for i := range set {
		if set[i].valid && set[i].base == pageBase {
			set[i].use = t.tick
			return true
		}
		if set[victim].valid && (!set[i].valid || set[i].use < set[victim].use) {
			victim = i
		}
	}
	t.Misses++
	set[victim] = entry{base: pageBase, valid: true, use: t.tick}
	return false
}

// Contains probes without side effects.
func (t *TLB) Contains(pageBase, pageSize uint64) bool {
	set := t.sets[(pageBase/pageSize)&t.setMask]
	for i := range set {
		if set[i].valid && set[i].base == pageBase {
			return true
		}
	}
	return false
}

// Flush invalidates all entries and clears statistics.
func (t *TLB) Flush() {
	for _, s := range t.sets {
		for i := range s {
			s[i] = entry{}
		}
	}
	t.tick, t.Lookups, t.Misses = 0, 0, 0
}
