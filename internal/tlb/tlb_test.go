package tlb

import (
	"testing"

	"dsprof/internal/xrand"
)

func TestBadGeometry(t *testing.T) {
	for _, cfg := range []Config{
		{Entries: 0, Assoc: 1},
		{Entries: 8, Assoc: 3},
		{Entries: 24, Assoc: 2}, // 12 sets, not a power of two
		{Entries: 4, Assoc: 0},
	} {
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v) accepted bad geometry", cfg)
		}
	}
}

func TestHitMiss(t *testing.T) {
	tl, err := New(Config{Entries: 8, Assoc: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tl.Lookup(0x2000, 8192) {
		t.Error("cold lookup hit")
	}
	if !tl.Lookup(0x2000, 8192) {
		t.Error("warm lookup missed")
	}
	if tl.Lookups != 2 || tl.Misses != 1 {
		t.Errorf("stats lookups=%d misses=%d", tl.Lookups, tl.Misses)
	}
}

func TestLRUWithinSet(t *testing.T) {
	// 2 entries, 1 set would be simplest but sets must be pow2; use
	// Entries=2 Assoc=2 -> 1 set.
	tl, err := New(Config{Entries: 2, Assoc: 2})
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := uint64(0x0000), uint64(0x2000), uint64(0x4000)
	tl.Lookup(a, 8192)
	tl.Lookup(b, 8192)
	tl.Lookup(a, 8192) // b is LRU
	tl.Lookup(c, 8192) // evicts b
	if !tl.Contains(a, 8192) || tl.Contains(b, 8192) || !tl.Contains(c, 8192) {
		t.Errorf("LRU wrong: a=%v b=%v c=%v", tl.Contains(a, 8192), tl.Contains(b, 8192), tl.Contains(c, 8192))
	}
}

func TestLargePagesReduceMisses(t *testing.T) {
	// Sweep a 16 MB region. With 8 KB pages a 128-entry TLB (1 MB reach)
	// thrashes; with 512 KB pages (64 MB reach) only compulsory misses.
	sweep := func(pageSize uint64) (misses uint64) {
		tl, err := New(DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		for pass := 0; pass < 2; pass++ {
			for addr := uint64(0); addr < 16<<20; addr += 8192 {
				tl.Lookup(addr&^(pageSize-1), pageSize)
			}
		}
		return tl.Misses
	}
	small := sweep(8 << 10)
	large := sweep(512 << 10)
	if large*100 >= small {
		t.Errorf("large pages: %d misses, small pages: %d; want >100x reduction", large, small)
	}
	// 512 KB pages: 32 pages cover 16 MB, fits in 128 entries -> exactly
	// compulsory misses.
	if large != 32 {
		t.Errorf("large-page misses = %d, want 32", large)
	}
}

func TestFlush(t *testing.T) {
	tl, _ := New(Config{Entries: 8, Assoc: 2})
	tl.Lookup(0x2000, 8192)
	tl.Flush()
	if tl.Contains(0x2000, 8192) || tl.Lookups != 0 || tl.Misses != 0 {
		t.Error("Flush incomplete")
	}
}

// Property: after Lookup(p), Contains(p) holds.
func TestInstallProperty(t *testing.T) {
	tl, _ := New(DefaultConfig())
	r := xrand.New(11)
	for i := 0; i < 5000; i++ {
		p := (uint64(r.Intn(1 << 28))) &^ 8191
		tl.Lookup(p, 8192)
		if !tl.Contains(p, 8192) {
			t.Fatalf("page %#x not present after Lookup", p)
		}
	}
}

// Reference-model property test: the set-associative TLB must behave
// exactly like a naive per-set LRU list simulation across random access
// streams.
func TestMatchesReferenceLRUModel(t *testing.T) {
	cfg := Config{Entries: 16, Assoc: 4}
	tl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	nsets := uint64(cfg.Entries / cfg.Assoc)
	ref := make(map[uint64][]uint64, nsets) // set -> pages, MRU first
	r := xrand.New(123)
	const pageSize = 8192
	for i := 0; i < 20000; i++ {
		page := uint64(r.Intn(40)) * pageSize
		set := (page / pageSize) & (nsets - 1)
		// Reference lookup.
		refHit := false
		lst := ref[set]
		for k, p := range lst {
			if p == page {
				refHit = true
				lst = append(lst[:k], lst[k+1:]...)
				break
			}
		}
		lst = append([]uint64{page}, lst...)
		if len(lst) > cfg.Assoc {
			lst = lst[:cfg.Assoc]
		}
		ref[set] = lst
		if got := tl.Lookup(page, pageSize); got != refHit {
			t.Fatalf("access %d (page %#x): tlb hit=%v, reference hit=%v", i, page, got, refHit)
		}
	}
}
