package tlb

import (
	"testing"

	"dsprof/internal/xrand"
)

func TestBadGeometry(t *testing.T) {
	for _, cfg := range []Config{
		{Entries: 0, Assoc: 1},
		{Entries: 8, Assoc: 3},
		{Entries: 24, Assoc: 2}, // 12 sets, not a power of two
		{Entries: 4, Assoc: 0},
	} {
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v) accepted bad geometry", cfg)
		}
	}
}

func TestHitMiss(t *testing.T) {
	tl, err := New(Config{Entries: 8, Assoc: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tl.Lookup(0x2000, 8192) {
		t.Error("cold lookup hit")
	}
	if !tl.Lookup(0x2000, 8192) {
		t.Error("warm lookup missed")
	}
	if tl.Lookups != 2 || tl.Misses != 1 {
		t.Errorf("stats lookups=%d misses=%d", tl.Lookups, tl.Misses)
	}
}

func TestLRUWithinSet(t *testing.T) {
	// 2 entries, 1 set would be simplest but sets must be pow2; use
	// Entries=2 Assoc=2 -> 1 set.
	tl, err := New(Config{Entries: 2, Assoc: 2})
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := uint64(0x0000), uint64(0x2000), uint64(0x4000)
	tl.Lookup(a, 8192)
	tl.Lookup(b, 8192)
	tl.Lookup(a, 8192) // b is LRU
	tl.Lookup(c, 8192) // evicts b
	if !tl.Contains(a, 8192) || tl.Contains(b, 8192) || !tl.Contains(c, 8192) {
		t.Errorf("LRU wrong: a=%v b=%v c=%v", tl.Contains(a, 8192), tl.Contains(b, 8192), tl.Contains(c, 8192))
	}
}

func TestLargePagesReduceMisses(t *testing.T) {
	// Sweep a 16 MB region. With 8 KB pages a 128-entry TLB (1 MB reach)
	// thrashes; with 512 KB pages (64 MB reach) only compulsory misses.
	sweep := func(pageSize uint64) (misses uint64) {
		tl, err := New(DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		for pass := 0; pass < 2; pass++ {
			for addr := uint64(0); addr < 16<<20; addr += 8192 {
				tl.Lookup(addr&^(pageSize-1), pageSize)
			}
		}
		return tl.Misses
	}
	small := sweep(8 << 10)
	large := sweep(512 << 10)
	if large*100 >= small {
		t.Errorf("large pages: %d misses, small pages: %d; want >100x reduction", large, small)
	}
	// 512 KB pages: 32 pages cover 16 MB, fits in 128 entries -> exactly
	// compulsory misses.
	if large != 32 {
		t.Errorf("large-page misses = %d, want 32", large)
	}
}

func TestFlush(t *testing.T) {
	tl, _ := New(Config{Entries: 8, Assoc: 2})
	tl.Lookup(0x2000, 8192)
	tl.Flush()
	if tl.Contains(0x2000, 8192) || tl.Lookups != 0 || tl.Misses != 0 {
		t.Error("Flush incomplete")
	}
}

// Property: after Lookup(p), Contains(p) holds.
func TestInstallProperty(t *testing.T) {
	tl, _ := New(DefaultConfig())
	r := xrand.New(11)
	for i := 0; i < 5000; i++ {
		p := (uint64(r.Intn(1 << 28))) &^ 8191
		tl.Lookup(p, 8192)
		if !tl.Contains(p, 8192) {
			t.Fatalf("page %#x not present after Lookup", p)
		}
	}
}

// Reference-model property test: the set-associative TLB must behave
// exactly like a naive per-set LRU list simulation across random access
// streams.
func TestMatchesReferenceLRUModel(t *testing.T) {
	cfg := Config{Entries: 16, Assoc: 4}
	tl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	nsets := uint64(cfg.Entries / cfg.Assoc)
	ref := make(map[uint64][]uint64, nsets) // set -> pages, MRU first
	r := xrand.New(123)
	const pageSize = 8192
	for i := 0; i < 20000; i++ {
		page := uint64(r.Intn(40)) * pageSize
		set := (page / pageSize) & (nsets - 1)
		// Reference lookup.
		refHit := false
		lst := ref[set]
		for k, p := range lst {
			if p == page {
				refHit = true
				lst = append(lst[:k], lst[k+1:]...)
				break
			}
		}
		lst = append([]uint64{page}, lst...)
		if len(lst) > cfg.Assoc {
			lst = lst[:cfg.Assoc]
		}
		ref[set] = lst
		if got := tl.Lookup(page, pageSize); got != refHit {
			t.Fatalf("access %d (page %#x): tlb hit=%v, reference hit=%v", i, page, got, refHit)
		}
	}
}

// refTLB is the naive reference model of the TLB's observable state
// machine, retained from before the flat-entry and memo rework: per-set
// MRU-first lists of page bases and plain counters. The step-equivalence
// property below drives it in lockstep with TLB and requires identical
// hits, misses, victims, and statistics on randomized traces.
type refTLB struct {
	assoc   int
	sets    [][]uint64 // each set MRU-first
	lookups uint64
	misses  uint64
	last    uint64 // page base of the most recent lookup hit or install
	lastOK  bool
}

func newRefTLB(cfg Config) *refTLB {
	return &refTLB{assoc: cfg.Assoc, sets: make([][]uint64, cfg.Entries/cfg.Assoc)}
}

func (r *refTLB) setOf(pageBase, pageSize uint64) int {
	return int((pageBase / pageSize) % uint64(len(r.sets)))
}

func (r *refTLB) lookup(pageBase, pageSize uint64) bool {
	r.lookups++
	s := r.setOf(pageBase, pageSize)
	for i, b := range r.sets[s] {
		if b == pageBase {
			r.sets[s] = append(append([]uint64{b}, r.sets[s][:i]...), r.sets[s][i+1:]...)
			r.last, r.lastOK = pageBase, true
			return true
		}
	}
	r.misses++
	if len(r.sets[s]) == r.assoc {
		r.sets[s] = r.sets[s][:len(r.sets[s])-1]
	}
	r.sets[s] = append([]uint64{pageBase}, r.sets[s]...)
	r.last, r.lastOK = pageBase, true
	return false
}

// entryHit is the reference for the per-site EntryHit shortcut driven
// with the entry index of the most recent lookup: it retires iff that
// page is still resident.
func (r *refTLB) entryHit(pageBase, pageSize uint64) bool {
	if !r.lastOK || r.last != pageBase {
		return false
	}
	s := r.setOf(pageBase, pageSize)
	for i, b := range r.sets[s] {
		if b == pageBase {
			r.lookups++
			r.sets[s] = append(append([]uint64{b}, r.sets[s][:i]...), r.sets[s][i+1:]...)
			return true
		}
	}
	return false
}

func (r *refTLB) contains(pageBase, pageSize uint64) bool {
	for _, b := range r.sets[r.setOf(pageBase, pageSize)] {
		if b == pageBase {
			return true
		}
	}
	return false
}

func (r *refTLB) flush() {
	r.sets = make([][]uint64, len(r.sets))
	r.lookups, r.misses = 0, 0
	r.lastOK = false
}

// TestTLBStepEquivalence drives the flat memoized TLB and the naive
// list-LRU reference through identical randomized traces of lookups,
// per-site entry probes, flushes, and side-effect-free Contains checks,
// over a two-segment address layout with distinct page sizes (the
// heap/stack shape the machine actually presents), asserting identical
// hits and statistics throughout.
func TestTLBStepEquivalence(t *testing.T) {
	for _, cfg := range []Config{{Entries: 8, Assoc: 2}, {Entries: 16, Assoc: 4}, {Entries: 4, Assoc: 1}} {
		tl, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ref := newRefTLB(cfg)
		r := xrand.New(uint64(977 + cfg.Entries))
		// Two segments with different page sizes, like heap and stack.
		page := func() (uint64, uint64) {
			if r.Intn(3) == 0 {
				const ps = 1 << 19 // big-page segment
				return (uint64(0x10000000) + uint64(r.Intn(8))*ps) &^ (ps - 1), ps
			}
			const ps = 8192
			return uint64(0x1000000) + uint64(r.Intn(64))*ps, ps
		}
		var lastIdx int
		var lastBase, lastSize uint64
		haveLast := false
		for n := 0; n < 20000; n++ {
			pb, ps := page()
			switch k := r.Intn(10); {
			case k < 6:
				h1 := tl.Lookup(pb, ps)
				h2 := ref.lookup(pb, ps)
				if h1 != h2 {
					t.Fatalf("cfg %+v op %d: Lookup(%#x,%d) = %v, ref %v", cfg, n, pb, ps, h1, h2)
				}
				lastIdx, lastBase, lastSize, haveLast = tl.LastIdx(), pb, ps, true
			case k < 8 && haveLast:
				h1 := tl.EntryHit(lastIdx, lastBase)
				h2 := ref.entryHit(lastBase, lastSize)
				if h1 != h2 {
					t.Fatalf("cfg %+v op %d: EntryHit(%d,%#x) = %v, ref %v", cfg, n, lastIdx, lastBase, h1, h2)
				}
			case k < 9:
				if tl.Contains(pb, ps) != ref.contains(pb, ps) {
					t.Fatalf("cfg %+v op %d: Contains(%#x,%d) = %v, ref %v",
						cfg, n, pb, ps, tl.Contains(pb, ps), ref.contains(pb, ps))
				}
			default:
				if r.Intn(100) == 0 {
					tl.Flush()
					ref.flush()
					haveLast = false
				}
			}
			if tl.Lookups != ref.lookups || tl.Misses != ref.misses {
				t.Fatalf("cfg %+v op %d: stats diverge: tlb %d/%d, ref %d/%d",
					cfg, n, tl.Lookups, tl.Misses, ref.lookups, ref.misses)
			}
		}
	}
}
