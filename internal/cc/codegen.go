package cc

import (
	"fmt"

	"dsprof/internal/asm"
	"dsprof/internal/dwarf"
	"dsprof/internal/isa"
)

// Register conventions of the generated code:
//
//	%g0          hardwired zero
//	%g1-%g5      expression temporaries (caller-saved)
//	%o0-%o5      arguments / results / expression temporaries (caller-saved)
//	%o7          return address at call sites
//	%l0-%l7,
//	%i0-%i5      register homes for scalar locals (callee-saved)
//	%sp          stack pointer (frame allocated in the prologue)
//	%fp (%i6)    unused, reserved
var calleeSaved = []isa.Reg{
	isa.L0, isa.L1, isa.L2, isa.L3, isa.L4, isa.L5, isa.L6, isa.L7,
	isa.I0, isa.I1, isa.I2, isa.I3, isa.I4, isa.I5,
}

var tempPool = []isa.Reg{
	isa.G1, isa.G2, isa.G3, isa.G4, isa.G5,
	isa.O0, isa.O1, isa.O2, isa.O3, isa.O4, isa.O5,
}

var argRegs = []isa.Reg{isa.O0, isa.O1, isa.O2, isa.O3, isa.O4, isa.O5}

// val is an expression operand: a register plus whether it is a
// temporary this code owns (may write to / must free) or a long-lived
// home register (read-only here).
type val struct {
	reg  isa.Reg
	temp bool
}

// fnGen generates code for one function.
type fnGen struct {
	co  *compiler
	b   *asm.Builder
	fn  *Function
	chk *checked

	homeReg  map[*LocalVar]isa.Reg
	stackOff map[*LocalVar]int64
	usedSave []isa.Reg

	tempFree  []isa.Reg
	tempInUse map[isa.Reg]bool

	saveBytes  int64 // %o7 + callee-saved save area
	localBytes int64 // stack-resident locals
	maxSpill   int   // high-water mark of concurrent temp spills
	slotFloor  int   // first spill slot free for use (raised while call arguments are parked, so nested calls cannot clobber them)
	frameSize  int64 // patched into prologue/epilogue at the end

	prologueSub int // instruction index to patch
	epilogueAdd int

	breakLbls []string
	contLbls  []string
	retLbl    string
	lblN      int

	curLine  int32
	sinceMem int // instructions since the last memory op (hwcprof padding)
}

func newFnGen(co *compiler, fn *Function) *fnGen {
	return &fnGen{
		co:        co,
		b:         co.b,
		fn:        fn,
		chk:       co.chk,
		homeReg:   make(map[*LocalVar]isa.Reg),
		stackOff:  make(map[*LocalVar]int64),
		tempInUse: make(map[isa.Reg]bool),
		sinceMem:  1 << 20,
	}
}

func (g *fnGen) errf(line int, format string, args ...any) error {
	return &semaError{file: g.fn.File, line: line, msg: fmt.Sprintf(format, args...)}
}

// emit appends an instruction and maintains the line table and hwcprof
// padding bookkeeping.
func (g *fnGen) emit(in isa.Instr) int {
	i := g.b.Emit(in)
	if g.curLine > 0 {
		g.co.tab.Lines[g.b.AddrOf(i)] = g.curLine
	}
	if in.Op.IsMem() {
		g.sinceMem = 0
	} else {
		g.sinceMem++
	}
	return i
}

// emitMem appends a memory instruction, recording its data-object xref.
func (g *fnGen) emitMem(in isa.Instr, xref *dwarf.DataXref) int {
	i := g.emit(in)
	if xref != nil && g.co.xrefsEnabled() {
		g.co.tab.Xrefs[g.b.AddrOf(i)] = *xref
	}
	return i
}

// tempXref marks a compiler-temporary spill access ((Unidentified)).
var tempXref = &dwarf.DataXref{Type: dwarf.NoType, Member: -1}

// padJoin emits the -xhwcprof nop padding: before any join node (label)
// or control transfer, ensure the last two instructions are not memory
// operations, so a counter-overflow event for a memory op is delivered
// while still inside the basic block.
func (g *fnGen) padJoin() {
	if !g.co.opts.HWCProf {
		return
	}
	for g.sinceMem < 2 {
		g.emit(isa.Instr{Op: isa.Nop})
	}
}

// label defines a join node (with padding first).
func (g *fnGen) label(name string) error {
	g.padJoin()
	return g.b.Label(name)
}

// branch emits a branch (with padding first) and its delay-slot nop.
func (g *fnGen) branch(op isa.Op, target string) {
	g.padJoin()
	i := g.b.EmitBranch(op, target)
	if g.curLine > 0 {
		g.co.tab.Lines[g.b.AddrOf(i)] = g.curLine
	}
	g.sinceMem++
	g.emit(isa.Instr{Op: isa.Nop}) // delay slot: never a memory op
}

func (g *fnGen) newLabel(kind string) string {
	g.lblN++
	return fmt.Sprintf(".%s.%s.%d", g.fn.Name, kind, g.lblN)
}

// --- temporaries ---

func (g *fnGen) allocTemp(line int) (isa.Reg, error) {
	if len(g.tempFree) == 0 {
		return 0, g.errf(line, "expression too complex (out of temporary registers)")
	}
	r := g.tempFree[len(g.tempFree)-1]
	g.tempFree = g.tempFree[:len(g.tempFree)-1]
	g.tempInUse[r] = true
	return r, nil
}

func (g *fnGen) free(v val) {
	if !v.temp {
		return
	}
	if !g.tempInUse[v.reg] {
		return
	}
	delete(g.tempInUse, v.reg)
	g.tempFree = append(g.tempFree, v.reg)
}

// target returns a register that may be written with the result of an
// operation consuming v: v's own register if it is a temp, else a new
// temp.
func (g *fnGen) target(v val, line int) (val, error) {
	if v.temp {
		return v, nil
	}
	r, err := g.allocTemp(line)
	if err != nil {
		return val{}, err
	}
	return val{reg: r, temp: true}, nil
}

// --- frame construction ---

func (g *fnGen) generate() error {
	fn := g.fn
	g.retLbl = g.newLabel("ret")
	g.tempFree = append([]isa.Reg(nil), tempPool...)

	// Assign register homes: scalar locals whose address is never taken,
	// in declaration order (parameters first), while registers last.
	pool := append([]isa.Reg(nil), calleeSaved...)
	for _, lv := range fn.Locals {
		if lv.Type.IsScalar() && !lv.AddrTaken && len(pool) > 0 {
			g.homeReg[lv] = pool[0]
			g.usedSave = append(g.usedSave, pool[0])
			pool = pool[1:]
		}
	}
	// Stack slots for everything else.
	g.saveBytes = 8 * int64(1+len(g.usedSave))
	off := g.saveBytes
	for _, lv := range fn.Locals {
		if _, inReg := g.homeReg[lv]; inReg {
			continue
		}
		a := lv.Type.Align()
		off = (off + a - 1) &^ (a - 1)
		g.stackOff[lv] = off
		off += lv.Type.Size()
	}
	g.localBytes = off
	if g.localBytes > 3500 {
		return g.errf(fn.Line, "function %s: frame too large (%d bytes); use globals or the heap", fn.Name, g.localBytes)
	}

	// Prologue.
	start := g.b.PC()
	if err := g.b.Label(fn.Name); err != nil {
		return err
	}
	g.curLine = int32(fn.Line)
	g.prologueSub = g.emit(isa.Instr{Op: isa.Sub, Rd: isa.SP, Rs1: isa.SP, UseImm: true})
	g.emitMem(isa.Instr{Op: isa.StX, Rd: isa.O7, Rs1: isa.SP, UseImm: true, Imm: 0}, nil)
	for i, r := range g.usedSave {
		g.emitMem(isa.Instr{Op: isa.StX, Rd: r, Rs1: isa.SP, UseImm: true, Imm: int32(8 * (i + 1))}, nil)
	}
	for i, p := range fn.Params {
		if home, ok := g.homeReg[p]; ok {
			g.emit(isa.Instr{Op: isa.Or, Rd: home, Rs1: isa.G0, Rs2: argRegs[i]})
		} else {
			g.storeScalar(p.Type, argRegs[i], isa.SP, int32(g.stackOff[p]), g.localXref(p))
		}
	}

	// Body.
	if err := g.genStmt(fn.Body); err != nil {
		return err
	}

	// Implicit return path (fall off the end): return 0 for non-void.
	if fn.Ret.Kind != KVoid {
		g.emit(isa.Instr{Op: isa.Or, Rd: isa.O0, Rs1: isa.G0, UseImm: true, Imm: 0})
	}

	// Epilogue.
	if err := g.label(g.retLbl); err != nil {
		return err
	}
	g.emitMem(isa.Instr{Op: isa.LdX, Rd: isa.O7, Rs1: isa.SP, UseImm: true, Imm: 0}, nil)
	for i, r := range g.usedSave {
		g.emitMem(isa.Instr{Op: isa.LdX, Rd: r, Rs1: isa.SP, UseImm: true, Imm: int32(8 * (i + 1))}, nil)
	}
	g.padJoin()
	g.emit(isa.Instr{Op: isa.Jmpl, Rd: isa.G0, Rs1: isa.O7, UseImm: true, Imm: 8})
	g.epilogueAdd = g.emit(isa.Instr{Op: isa.Add, Rd: isa.SP, Rs1: isa.SP, UseImm: true}) // delay slot

	// Patch the frame size.
	g.frameSize = (g.localBytes + int64(g.maxSpill)*8 + 15) &^ 15
	if g.frameSize > 4095 {
		return g.errf(fn.Line, "function %s: frame too large (%d bytes)", fn.Name, g.frameSize)
	}
	g.b.Instr(g.prologueSub).Imm = int32(g.frameSize)
	g.b.Instr(g.epilogueAdd).Imm = int32(g.frameSize)

	g.co.tab.AddFunc(dwarf.Func{
		Name:    fn.Name,
		Start:   start,
		End:     g.b.PC(),
		File:    fn.File,
		HWCProf: g.co.xrefsEnabled(),
	})
	return nil
}

// localXref builds the xref for a stack-resident named local.
func (g *fnGen) localXref(lv *LocalVar) *dwarf.DataXref {
	t := lv.Type
	if t.Kind == KArray {
		t = t.Elem
	}
	if t.Kind == KStruct {
		return &dwarf.DataXref{Type: g.co.typeID(t), Member: -1, Var: lv.Name}
	}
	return &dwarf.DataXref{Type: g.co.typeID(t), Member: -1, Var: lv.Name}
}

// spillSlotOff returns the stack offset of spill slot i, growing the
// high-water mark.
func (g *fnGen) spillSlotOff(i int) int32 {
	if i+1 > g.maxSpill {
		g.maxSpill = i + 1
	}
	return int32(g.localBytes + int64(i)*8)
}

// loadOpFor/storeOpFor select access width by type.
func loadOpFor(t *CType) isa.Op {
	switch t.Size() {
	case 1:
		return isa.LdB
	case 4:
		return isa.LdW
	default:
		return isa.LdX
	}
}

func storeOpFor(t *CType) isa.Op {
	switch t.Size() {
	case 1:
		return isa.StB
	case 4:
		return isa.StW
	default:
		return isa.StX
	}
}

func (g *fnGen) storeScalar(t *CType, src isa.Reg, base isa.Reg, off int32, xref *dwarf.DataXref) {
	g.emitMem(isa.Instr{Op: storeOpFor(t), Rd: src, Rs1: base, UseImm: true, Imm: off}, xref)
}

// --- statements ---

func (g *fnGen) genStmt(s stmt) error {
	switch s := s.(type) {
	case *blockStmt:
		if s.line > 0 {
			g.curLine = int32(s.line)
		}
		for _, st := range s.stmts {
			if err := g.genStmt(st); err != nil {
				return err
			}
		}
	case *declStmt:
		g.curLine = int32(s.line)
		lv := g.chk.declVar[s]
		if s.init == nil {
			return nil
		}
		v, err := g.genExpr(s.init)
		if err != nil {
			return err
		}
		if home, ok := g.homeReg[lv]; ok {
			g.emit(isa.Instr{Op: isa.Or, Rd: home, Rs1: isa.G0, Rs2: v.reg})
		} else {
			g.storeScalar(lv.Type, v.reg, isa.SP, int32(g.stackOff[lv]), g.localXref(lv))
		}
		g.free(v)
	case *exprStmt:
		g.curLine = int32(s.line)
		v, err := g.genExpr(s.x)
		if err != nil {
			return err
		}
		g.free(v)
	case *assignStmt:
		g.curLine = int32(s.line)
		return g.genAssign(s)
	case *incDecStmt:
		g.curLine = int32(s.line)
		op := "+="
		if s.op == "--" {
			op = "-="
		}
		return g.genAssign(&assignStmt{lhs: s.lhs, op: op, rhs: &intLit{val: 1, line: s.line}, line: s.line})
	case *ifStmt:
		g.curLine = int32(s.line)
		elseL := g.newLabel("else")
		endL := g.newLabel("endif")
		if s.els == nil {
			if err := g.condFalse(s.cond, endL); err != nil {
				return err
			}
			if err := g.genStmt(s.then); err != nil {
				return err
			}
			return g.label(endL)
		}
		if err := g.condFalse(s.cond, elseL); err != nil {
			return err
		}
		if err := g.genStmt(s.then); err != nil {
			return err
		}
		g.branch(isa.Ba, endL)
		if err := g.label(elseL); err != nil {
			return err
		}
		if err := g.genStmt(s.els); err != nil {
			return err
		}
		return g.label(endL)
	case *whileStmt:
		g.curLine = int32(s.line)
		headL := g.newLabel("while")
		exitL := g.newLabel("endwhile")
		if err := g.label(headL); err != nil {
			return err
		}
		g.curLine = int32(s.line)
		if err := g.condFalse(s.cond, exitL); err != nil {
			return err
		}
		g.breakLbls = append(g.breakLbls, exitL)
		g.contLbls = append(g.contLbls, headL)
		err := g.genStmt(s.body)
		g.breakLbls = g.breakLbls[:len(g.breakLbls)-1]
		g.contLbls = g.contLbls[:len(g.contLbls)-1]
		if err != nil {
			return err
		}
		g.branch(isa.Ba, headL)
		return g.label(exitL)
	case *doWhileStmt:
		g.curLine = int32(s.line)
		headL := g.newLabel("do")
		condL := g.newLabel("docond")
		exitL := g.newLabel("enddo")
		if err := g.label(headL); err != nil {
			return err
		}
		g.breakLbls = append(g.breakLbls, exitL)
		g.contLbls = append(g.contLbls, condL)
		err := g.genStmt(s.body)
		g.breakLbls = g.breakLbls[:len(g.breakLbls)-1]
		g.contLbls = g.contLbls[:len(g.contLbls)-1]
		if err != nil {
			return err
		}
		if err := g.label(condL); err != nil {
			return err
		}
		g.curLine = int32(s.line)
		if err := g.condTrue(s.cond, headL); err != nil {
			return err
		}
		return g.label(exitL)
	case *forStmt:
		g.curLine = int32(s.line)
		headL := g.newLabel("for")
		postL := g.newLabel("forpost")
		exitL := g.newLabel("endfor")
		if s.init != nil {
			if err := g.genStmt(s.init); err != nil {
				return err
			}
		}
		if err := g.label(headL); err != nil {
			return err
		}
		g.curLine = int32(s.line)
		if s.cond != nil {
			if err := g.condFalse(s.cond, exitL); err != nil {
				return err
			}
		}
		g.breakLbls = append(g.breakLbls, exitL)
		g.contLbls = append(g.contLbls, postL)
		err := g.genStmt(s.body)
		g.breakLbls = g.breakLbls[:len(g.breakLbls)-1]
		g.contLbls = g.contLbls[:len(g.contLbls)-1]
		if err != nil {
			return err
		}
		if err := g.label(postL); err != nil {
			return err
		}
		if s.post != nil {
			if err := g.genStmt(s.post); err != nil {
				return err
			}
		}
		g.branch(isa.Ba, headL)
		return g.label(exitL)
	case *returnStmt:
		g.curLine = int32(s.line)
		if s.x != nil {
			v, err := g.genExpr(s.x)
			if err != nil {
				return err
			}
			if v.reg != isa.O0 {
				g.emit(isa.Instr{Op: isa.Or, Rd: isa.O0, Rs1: isa.G0, Rs2: v.reg})
			}
			g.free(v)
		}
		g.branch(isa.Ba, g.retLbl)
	case *breakStmt:
		if len(g.breakLbls) == 0 {
			return g.errf(s.line, "break outside loop")
		}
		g.branch(isa.Ba, g.breakLbls[len(g.breakLbls)-1])
	case *continueStmt:
		if len(g.contLbls) == 0 {
			return g.errf(s.line, "continue outside loop")
		}
		g.branch(isa.Ba, g.contLbls[len(g.contLbls)-1])
	}
	return nil
}

// genAssign compiles an assignment or compound assignment.
func (g *fnGen) genAssign(s *assignStmt) error {
	lt := g.chk.exprType[s.lhs]
	// Register-homed scalar local on the left?
	if id, ok := s.lhs.(*identExpr); ok {
		if lv, ok := g.chk.identRef[id].(*LocalVar); ok {
			if home, inReg := g.homeReg[lv]; inReg {
				return g.assignToReg(home, lt, s)
			}
		}
	}
	// Memory lvalue.
	base, off, xref, err := g.genAddr(s.lhs)
	if err != nil {
		return err
	}
	if s.op == "=" {
		v, err := g.genExpr(s.rhs)
		if err != nil {
			return err
		}
		g.emitMem(isa.Instr{Op: storeOpFor(lt), Rd: v.reg, Rs1: base.reg, UseImm: true, Imm: off}, xref)
		g.free(v)
		g.free(base)
		return nil
	}
	// Compound: load, op, store.
	cur, err := g.allocTemp(s.line)
	if err != nil {
		return err
	}
	g.emitMem(isa.Instr{Op: loadOpFor(lt), Rd: cur, Rs1: base.reg, UseImm: true, Imm: off}, xref)
	res, err := g.genBinOpInto(val{reg: cur, temp: true}, s.op[:len(s.op)-1], s.rhs, lt, s.line)
	if err != nil {
		return err
	}
	g.emitMem(isa.Instr{Op: storeOpFor(lt), Rd: res.reg, Rs1: base.reg, UseImm: true, Imm: off}, xref)
	g.free(res)
	g.free(base)
	return nil
}

// assignToReg compiles an assignment whose target is a register-homed
// local.
func (g *fnGen) assignToReg(home isa.Reg, lt *CType, s *assignStmt) error {
	if s.op == "=" {
		v, err := g.genExpr(s.rhs)
		if err != nil {
			return err
		}
		g.emit(isa.Instr{Op: isa.Or, Rd: home, Rs1: isa.G0, Rs2: v.reg})
		g.free(v)
		return nil
	}
	res, err := g.genBinOpInto(val{reg: home, temp: false}, s.op[:len(s.op)-1], s.rhs, lt, s.line)
	if err != nil {
		return err
	}
	if res.reg != home {
		g.emit(isa.Instr{Op: isa.Or, Rd: home, Rs1: isa.G0, Rs2: res.reg})
	}
	g.free(res)
	return nil
}
