package cc

import "testing"

// Adversarial codegen cases: calls inside expressions under register
// pressure, compound assignments with call right-hand sides, temp
// spilling around nested calls, and mixed-width memory traffic.

func TestCallInCompoundAssign(t *testing.T) {
	out := run(t, `
long f(long x) { return x * 3; }
long g;
long main() {
	long a;
	a = 10;
	a += f(2);
	g = 5;
	g *= f(a);
	write_long(a);
	write_long(g);
	return 0;
}`)
	expect(t, out, 16, 5*48)
}

func TestNestedCallsUnderPressure(t *testing.T) {
	out := run(t, `
long f(long a, long b) { return a * 10 + b; }
long main() {
	long r;
	r = f(f(1, 2), f(3, f(4, 5))) + f(6, 7) * f(8, 9);
	write_long(r);
	return 0;
}`)
	f := func(a, b int64) int64 { return a*10 + b }
	expect(t, out, f(f(1, 2), f(3, f(4, 5)))+f(6, 7)*f(8, 9))
}

func TestCallArgsEvaluatedInOrder(t *testing.T) {
	out := run(t, `
long seq;
long next() { seq++; return seq; }
long f(long a, long b, long c) { return a * 100 + b * 10 + c; }
long main() {
	write_long(f(next(), next(), next()));
	return 0;
}`)
	expect(t, out, 123)
}

func TestCallClobberProtection(t *testing.T) {
	// A live temporary (the partially evaluated sum) must survive the
	// call in the middle of the expression.
	out := run(t, `
long f() { return 7; }
long main() {
	long a;
	long b;
	a = 100;
	b = (a + 1) + f() + (a + 2);
	write_long(b);
	return 0;
}`)
	expect(t, out, 101+7+102)
}

func TestRecursionWithLocalsAcrossCalls(t *testing.T) {
	out := run(t, `
long sumto(long n) {
	long half;
	if (n <= 0) { return 0; }
	half = n / 2;
	return n + sumto(n - 1) + half - half;
}
long main() {
	write_long(sumto(50));
	return 0;
}`)
	expect(t, out, 50*51/2)
}

func TestMixedWidthGlobals(t *testing.T) {
	out := run(t, `
char cbuf[8];
int ibuf[4];
long main() {
	long i;
	for (i = 0; i < 8; i++) { cbuf[i] = (char) (200 + i); }
	for (i = 0; i < 4; i++) { ibuf[i] = (int) (100000 * (i + 1)); }
	write_long(cbuf[0]);
	write_long(cbuf[7]);
	write_long(ibuf[3]);
	return 0;
}`)
	expect(t, out, -56, -49, 400000)
}

func TestTernaryWithCalls(t *testing.T) {
	out := run(t, `
long f(long x) { return x + 1; }
long main() {
	long a;
	a = 5;
	write_long(a > 3 ? f(10) : f(20));
	write_long(a < 3 ? f(10) : f(20));
	return 0;
}`)
	expect(t, out, 11, 21)
}

func TestShortCircuitSideEffects(t *testing.T) {
	out := run(t, `
long calls;
long truthy() { calls++; return 1; }
long falsy() { calls++; return 0; }
long main() {
	if (falsy() && truthy()) { }
	write_long(calls);
	calls = 0;
	if (truthy() || falsy()) { }
	write_long(calls);
	calls = 0;
	if (truthy() && falsy()) { }
	write_long(calls);
	return 0;
}`)
	expect(t, out, 1, 1, 2)
}

func TestDoWhileAndBreakInNestedLoops(t *testing.T) {
	out := run(t, `
long main() {
	long i;
	long j;
	long n;
	n = 0;
	i = 0;
	do {
		j = 0;
		while (1) {
			j++;
			if (j >= 3) { break; }
		}
		n += j;
		i++;
	} while (i < 4);
	write_long(n);
	return 0;
}`)
	expect(t, out, 12)
}

func TestGlobalPointerToGlobalArray(t *testing.T) {
	out := run(t, `
long table[6];
long *cursor;
long main() {
	long sum;
	long i;
	for (i = 0; i < 6; i++) { table[i] = i * i; }
	cursor = table;
	sum = 0;
	while (cursor < table + 6) {
		sum += *cursor;
		cursor++;
	}
	write_long(sum);
	return 0;
}`)
	expect(t, out, 0+1+4+9+16+25)
}
