package cc

import "fmt"

// LayoutOverride rewrites one struct's memory layout at compile time
// without touching the source: the data-layout transformations of the
// paper's §3.3 MCF study (member reordering, padding to a power of two)
// expressed as a compiler flag, so an advisor can propose a layout and
// have the compiler apply it mechanically.
type LayoutOverride struct {
	// Order lists every field name in the desired declaration order. It
	// must be a permutation of the struct's fields; nil keeps the source
	// order.
	Order []string
	// PadTo, when nonzero, pads the struct size up to this many bytes.
	// It must be at least the natural size and a multiple of the struct
	// alignment, so arrays of the struct stay correctly aligned.
	PadTo int64
}

// applyOverride re-lays-out the struct under the override. The fields
// must already be collected (offsets need not be computed).
func (s *StructInfo) applyOverride(ov *LayoutOverride) error {
	if ov.Order != nil {
		if len(ov.Order) != len(s.Fields) {
			return fmt.Errorf("struct %s: layout override lists %d fields, struct has %d",
				s.Name, len(ov.Order), len(s.Fields))
		}
		reordered := make([]Field, 0, len(s.Fields))
		seen := make(map[string]bool, len(ov.Order))
		for _, name := range ov.Order {
			if seen[name] {
				return fmt.Errorf("struct %s: layout override repeats field %s", s.Name, name)
			}
			seen[name] = true
			i, f := s.Field(name)
			if i < 0 {
				return fmt.Errorf("struct %s: layout override names unknown field %s", s.Name, name)
			}
			reordered = append(reordered, *f)
		}
		s.Fields = reordered
	}
	if err := s.layout(); err != nil {
		return err
	}
	if ov.PadTo != 0 {
		if ov.PadTo < s.Size {
			return fmt.Errorf("struct %s: pad-to %d below natural size %d", s.Name, ov.PadTo, s.Size)
		}
		if ov.PadTo%s.Align != 0 {
			return fmt.Errorf("struct %s: pad-to %d not a multiple of alignment %d", s.Name, ov.PadTo, s.Align)
		}
		s.Size = ov.PadTo
	}
	return nil
}
