package cc

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"dsprof/internal/machine"
	"dsprof/internal/xrand"
)

// Whole-program differential fuzzing: generate random structured programs
// (assignments, compound assignments, if/else, bounded loops over a fixed
// set of long and float variables), compile and run them, and compare
// every write_long against a direct Go interpretation of the same
// program. Floats are modeled exactly as the compiler lowers them:
// Q16.16 raws with floor-rounded multiplies, so the interpreter is a
// second, independent implementation of the fixed-point semantics.

type progGen struct {
	r     *xrand.Rand
	vars  []string
	fvars []string
}

// interp mirrors the generated program's semantics over variable state.
type interpState struct {
	vars  map[string]int64
	fvars map[string]int64 // Q16.16 raw values
	out   []int64
}

// stmtSpec is a tiny AST the generator both prints as MC and interprets.
type stmtSpec interface{ exec(*interpState) }

type assignSpec struct {
	lhs string
	op  string
	rhs exprSpec
}

type ifSpec struct {
	cond      exprSpec
	then, els []stmtSpec
}

type loopSpec struct {
	v     string
	count int64
	body  []stmtSpec
}

type writeSpec struct{ x exprSpec }

type exprSpec struct {
	// kind: 0 long literal, 1 long var, 2 long binary,
	// 3 float literal (lit is the Q16.16 raw, a multiple of 4096),
	// 4 float var, 5 float binary (+ - *),
	// 6 (float) long-expr, 7 (long) float-expr.
	kind int
	lit  int64
	v    string
	op   string
	l, r *exprSpec
}

// isFloat reports whether the expression has float type.
func (e *exprSpec) isFloat() bool { return e.kind >= 3 && e.kind <= 6 }

func (e *exprSpec) eval(st *interpState) int64 {
	switch e.kind {
	case 0:
		return e.lit
	case 1:
		return st.vars[e.v]
	case 3:
		return e.lit
	case 4:
		return st.fvars[e.v]
	case 5:
		a, b := e.l.eval(st), e.r.eval(st)
		switch e.op {
		case "+":
			return a + b
		case "-":
			return a - b
		}
		return (a * b) >> 16 // Mul; Sra 16 — floor, like the codegen
	case 6:
		return e.l.eval(st) << 16
	case 7:
		return e.l.eval(st) >> 16
	}
	a, b := e.l.eval(st), e.r.eval(st)
	switch e.op {
	case "+":
		return a + b
	case "-":
		return a - b
	case "*":
		return a * b
	case "&":
		return a & b
	case "|":
		return a | b
	case "^":
		return a ^ b
	case "<":
		if a < b {
			return 1
		}
		return 0
	case "==":
		if a == b {
			return 1
		}
		return 0
	}
	return 0
}

func (e *exprSpec) String() string {
	switch e.kind {
	case 0:
		if e.lit < 0 {
			return fmt.Sprintf("(%d)", e.lit)
		}
		return fmt.Sprintf("%d", e.lit)
	case 1:
		return e.v
	case 3:
		// lit = n*4096 renders as n/16 with four exact decimal digits,
		// so the compiler's literal parse recovers the same raw.
		n := e.lit / 4096
		return fmt.Sprintf("%d.%04d", n/16, (n%16)*625)
	case 4:
		return e.v
	case 5:
		return fmt.Sprintf("(%s %s %s)", e.l, e.op, e.r)
	case 6:
		return fmt.Sprintf("((float) %s)", e.l)
	case 7:
		return fmt.Sprintf("((long) %s)", e.l)
	}
	return fmt.Sprintf("(%s %s %s)", e.l, e.op, e.r)
}

func (s *assignSpec) exec(st *interpState) {
	v := s.rhs.eval(st)
	tgt := st.vars
	if s.rhs.isFloat() {
		tgt = st.fvars
	}
	switch s.op {
	case "=":
		tgt[s.lhs] = v
	case "+=":
		tgt[s.lhs] += v
	case "-=":
		tgt[s.lhs] -= v
	case "^=":
		tgt[s.lhs] ^= v
	}
}

func (s *ifSpec) exec(st *interpState) {
	body := s.els
	if s.cond.eval(st) != 0 {
		body = s.then
	}
	for _, t := range body {
		t.exec(st)
	}
}

func (s *loopSpec) exec(st *interpState) {
	for st.vars[s.v] = 0; st.vars[s.v] < s.count; st.vars[s.v]++ {
		for _, t := range s.body {
			t.exec(st)
		}
	}
}

func (s *writeSpec) exec(st *interpState) {
	st.out = append(st.out, s.x.eval(st))
}

func (g *progGen) expr(depth int) exprSpec {
	if depth > 0 && g.r.Intn(6) == 0 {
		// A float subtree truncated back to long.
		f := g.fexpr(depth - 1)
		return exprSpec{kind: 7, l: &f}
	}
	if depth == 0 || g.r.Intn(3) == 0 {
		if g.r.Intn(2) == 0 {
			return exprSpec{kind: 0, lit: int64(g.r.Intn(200) - 100)}
		}
		return exprSpec{kind: 1, v: g.vars[g.r.Intn(len(g.vars))]}
	}
	ops := []string{"+", "-", "*", "&", "|", "^", "<", "=="}
	l, r := g.expr(depth-1), g.expr(depth-1)
	return exprSpec{kind: 2, op: ops[g.r.Intn(len(ops))], l: &l, r: &r}
}

// fexpr generates a float-typed expression over Q16.16 literals, float
// variables, + - * chains, and (float) casts of long subtrees.
func (g *progGen) fexpr(depth int) exprSpec {
	if depth == 0 || g.r.Intn(3) == 0 {
		if g.r.Intn(2) == 0 {
			// n/16 for n in [0, 512): every value has exact 4-digit
			// decimals, so render and re-parse are lossless.
			return exprSpec{kind: 3, lit: int64(g.r.Intn(512)) * 4096}
		}
		return exprSpec{kind: 4, v: g.fvars[g.r.Intn(len(g.fvars))]}
	}
	if g.r.Intn(5) == 0 {
		l := g.expr(depth - 1)
		return exprSpec{kind: 6, l: &l}
	}
	ops := []string{"+", "-", "*"}
	l, r := g.fexpr(depth-1), g.fexpr(depth-1)
	return exprSpec{kind: 5, op: ops[g.r.Intn(len(ops))], l: &l, r: &r}
}

func (g *progGen) stmts(n, depth int) []stmtSpec {
	var out []stmtSpec
	for i := 0; i < n; i++ {
		switch k := g.r.Intn(12); {
		case k < 5:
			ops := []string{"=", "+=", "-=", "^="}
			out = append(out, &assignSpec{
				lhs: g.vars[g.r.Intn(len(g.vars))],
				op:  ops[g.r.Intn(len(ops))],
				rhs: g.expr(2),
			})
		case k < 7:
			// Float assignment; ^= has no float form.
			ops := []string{"=", "+=", "-="}
			out = append(out, &assignSpec{
				lhs: g.fvars[g.r.Intn(len(g.fvars))],
				op:  ops[g.r.Intn(len(ops))],
				rhs: g.fexpr(2),
			})
		case k < 9 && depth > 0:
			out = append(out, &ifSpec{
				cond: g.expr(2),
				then: g.stmts(1+g.r.Intn(2), depth-1),
				els:  g.stmts(g.r.Intn(2), depth-1),
			})
		case k < 10 && depth > 0:
			// Loop variable is dedicated (v0) to keep semantics simple:
			// the generator never assigns v0 inside loop bodies.
			out = append(out, &loopSpec{
				v:     "v0",
				count: int64(1 + g.r.Intn(5)),
				body:  g.loopBody(1+g.r.Intn(2), depth-1),
			})
		default:
			out = append(out, &writeSpec{x: g.expr(2)})
		}
	}
	return out
}

// loopBody generates statements that never touch the loop variable v0.
func (g *progGen) loopBody(n, depth int) []stmtSpec {
	saved := g.vars
	g.vars = g.vars[1:] // drop v0 from assignment targets
	defer func() { g.vars = saved }()
	var out []stmtSpec
	for i := 0; i < n; i++ {
		switch g.r.Intn(3) {
		case 0:
			ops := []string{"=", "+=", "-=", "^="}
			out = append(out, &assignSpec{
				lhs: g.vars[g.r.Intn(len(g.vars))],
				op:  ops[g.r.Intn(len(ops))],
				rhs: g.exprNoV0(2),
			})
		case 1:
			ops := []string{"=", "+=", "-="}
			out = append(out, &assignSpec{
				lhs: g.fvars[g.r.Intn(len(g.fvars))],
				op:  ops[g.r.Intn(len(ops))],
				rhs: g.fexpr(2),
			})
		default:
			out = append(out, &writeSpec{x: g.exprNoV0(2)})
		}
	}
	return out
}

// exprNoV0 is like expr but may still read v0 — reading is fine.
func (g *progGen) exprNoV0(depth int) exprSpec { return g.expr(depth) }

func renderStmts(sb *strings.Builder, stmts []stmtSpec, indent string) {
	for _, s := range stmts {
		switch s := s.(type) {
		case *assignSpec:
			fmt.Fprintf(sb, "%s%s %s %s;\n", indent, s.lhs, s.op, s.rhs.String())
		case *ifSpec:
			fmt.Fprintf(sb, "%sif (%s) {\n", indent, s.cond.String())
			renderStmts(sb, s.then, indent+"\t")
			fmt.Fprintf(sb, "%s} else {\n", indent)
			renderStmts(sb, s.els, indent+"\t")
			fmt.Fprintf(sb, "%s}\n", indent)
		case *loopSpec:
			fmt.Fprintf(sb, "%sfor (%s = 0; %s < %d; %s++) {\n", indent, s.v, s.v, s.count, s.v)
			renderStmts(sb, s.body, indent+"\t")
			fmt.Fprintf(sb, "%s}\n", indent)
		case *writeSpec:
			fmt.Fprintf(sb, "%swrite_long(%s);\n", indent, s.x.String())
		}
	}
}

func TestRandomProgramsDifferential(t *testing.T) {
	r := xrand.New(987654)
	trials := 40
	if testing.Short() {
		trials = 10
	}
	for trial := 0; trial < trials; trial++ {
		g := &progGen{r: r, vars: []string{"v0", "v1", "v2", "v3"}, fvars: []string{"f0", "f1"}}
		prog := g.stmts(6+r.Intn(6), 2)

		// Interpret.
		st := &interpState{vars: map[string]int64{}, fvars: map[string]int64{}}
		for _, s := range prog {
			s.exec(st)
		}

		// Render, compile, run.
		var sb strings.Builder
		sb.WriteString("long main() {\n")
		for _, v := range g.vars {
			fmt.Fprintf(&sb, "\tlong %s;\n", v)
		}
		for _, v := range g.fvars {
			fmt.Fprintf(&sb, "\tfloat %s;\n", v)
		}
		for _, v := range g.vars {
			fmt.Fprintf(&sb, "\t%s = 0;\n", v)
		}
		for _, v := range g.fvars {
			fmt.Fprintf(&sb, "\t%s = 0.0;\n", v)
		}
		renderStmts(&sb, prog, "\t")
		sb.WriteString("\treturn 0;\n}\n")
		src := sb.String()

		compiled, err := Compile([]Source{{Name: "fuzz.mc", Text: src}}, Options{HWCProf: trial%2 == 0})
		if err != nil {
			t.Fatalf("trial %d: compile: %v\n%s", trial, err, src)
		}
		cfg := machine.DefaultConfig()
		cfg.MaxInstrs = 10_000_000
		m, err := machine.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.LoadProgram(compiled.Text, compiled.Data, compiled.Entry); err != nil {
			t.Fatal(err)
		}
		if err := m.Run(); err != nil {
			t.Fatalf("trial %d: run: %v\n%s", trial, err, src)
		}
		got := m.OutputLongs()
		if len(got) != len(st.out) {
			t.Fatalf("trial %d: %d outputs, interpreter %d\n%s", trial, len(got), len(st.out), src)
		}
		for i := range got {
			if got[i] != st.out[i] {
				t.Fatalf("trial %d output %d: machine %d, interpreter %d\n%s",
					trial, i, got[i], st.out[i], src)
			}
		}
	}
}

// corpusPrograms are hand-written differential seeds for the two
// features the n-body kernel forced into the dialect: anonymous unions
// inside structs (mixed-width arms over one slot) and the Q16.16 float
// lowering (literal fractions, mul/div chains, floor casts).
var corpusPrograms = []struct {
	name string
	src  string
}{
	{"union-arms", `
struct tag { long kind; };
struct box {
	long id;
	union {
		float f;
		long raw;
		struct tag *t;
	};
};
long main() {
	struct box *b;
	long i;
	long sum;
	b = (struct box *) calloc(8, sizeof(struct box));
	sum = 0;
	for (i = 0; i < 8; i++) {
		b[i].id = i;
		if (i % 2 == 0) {
			b[i].f = (float) i * 1.5;
		} else {
			b[i].raw = i * 3;
		}
	}
	for (i = 0; i < 8; i++) {
		if (i % 2 == 0) {
			sum += (long) (b[i].f * 2.0);
		} else {
			sum += b[i].raw;
		}
	}
	write_long(sum);
	return 0;
}
`},
	{"fixed-point", `
long main() {
	float x;
	float y;
	float z;
	long i;
	long acc;
	x = 0.0 - 1.5;
	y = 0.125;
	z = 3.25;
	acc = 0;
	for (i = 0; i < 50; i++) {
		x += y * z;
		z = z / 1.0625;
		y = y * 0.5 + 0.0078125;
		acc += (long) (x * 256.0);
		acc += (long) y + (long) z;
	}
	write_long(acc);
	write_long((long) (x * 65536.0));
	write_long((long) (0.0 - 2.5));
	return 0;
}
`},
	{"union-float-walk", `
struct node {
	float w;
	union {
		struct node *next;
		long idx;
	};
	long hits;
};
long main() {
	struct node *ns;
	struct node *p;
	long i;
	long steps;
	float total;
	ns = (struct node *) calloc(16, sizeof(struct node));
	for (i = 0; i < 16; i++) {
		ns[i].w = (float) (i % 5) * 0.25;
		ns[i].idx = (i * 7 + 3) % 16;
	}
	p = &ns[0];
	total = 0.0;
	for (steps = 0; steps < 200; steps++) {
		total += p->w;
		p->hits++;
		p = &ns[p->idx];
	}
	write_long((long) (total * 16.0));
	write_long(ns[3].hits);
	return 0;
}
`},
}

// TestCorpusProgramsDifferential compiles each corpus seed and requires
// the reference stepper, the fast interpreter and the translated
// backend to produce identical outputs and instruction counts.
func TestCorpusProgramsDifferential(t *testing.T) {
	for _, c := range corpusPrograms {
		prog, err := Compile([]Source{{Name: c.name + ".mc", Text: c.src}}, Options{Name: c.name, HWCProf: true})
		if err != nil {
			t.Fatalf("%s: compile: %v", c.name, err)
		}
		run := func(backend machine.Backend, step bool) ([]int64, uint64) {
			cfg := machine.DefaultConfig()
			cfg.MaxInstrs = 10_000_000
			m, err := machine.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.LoadProgram(prog.Text, prog.Data, prog.Entry); err != nil {
				t.Fatal(err)
			}
			m.SetBackend(backend)
			m.SetTranslationHeat(1)
			if step {
				for !m.Halted() {
					if err := m.Step(); err != nil {
						t.Fatalf("%s: step: %v", c.name, err)
					}
				}
			} else if err := m.Run(); err != nil {
				t.Fatalf("%s: run: %v", c.name, err)
			}
			return m.OutputLongs(), m.Stats().Instrs
		}
		refOut, refN := run(machine.BackendFast, true)
		fastOut, fastN := run(machine.BackendFast, false)
		transOut, transN := run(machine.BackendTranslated, false)
		if len(refOut) == 0 {
			t.Fatalf("%s: no output", c.name)
		}
		if !reflect.DeepEqual(refOut, fastOut) || refN != fastN {
			t.Errorf("%s: step (%v, %d instrs) vs fast (%v, %d instrs)", c.name, refOut, refN, fastOut, fastN)
		}
		if !reflect.DeepEqual(refOut, transOut) || refN != transN {
			t.Errorf("%s: step (%v, %d instrs) vs translated (%v, %d instrs)", c.name, refOut, refN, transOut, transN)
		}
	}
}
