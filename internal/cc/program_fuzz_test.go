package cc

import (
	"fmt"
	"strings"
	"testing"

	"dsprof/internal/machine"
	"dsprof/internal/xrand"
)

// Whole-program differential fuzzing: generate random structured programs
// (assignments, compound assignments, if/else, bounded loops over a fixed
// set of long variables), compile and run them, and compare every
// write_long against a direct Go interpretation of the same program.

type progGen struct {
	r    *xrand.Rand
	vars []string
}

// interp mirrors the generated program's semantics over variable state.
type interpState struct {
	vars map[string]int64
	out  []int64
}

// stmtSpec is a tiny AST the generator both prints as MC and interprets.
type stmtSpec interface{ exec(*interpState) }

type assignSpec struct {
	lhs string
	op  string
	rhs exprSpec
}

type ifSpec struct {
	cond      exprSpec
	then, els []stmtSpec
}

type loopSpec struct {
	v     string
	count int64
	body  []stmtSpec
}

type writeSpec struct{ x exprSpec }

type exprSpec struct {
	// kind: 0 literal, 1 var, 2 binary
	kind int
	lit  int64
	v    string
	op   string
	l, r *exprSpec
}

func (e *exprSpec) eval(st *interpState) int64 {
	switch e.kind {
	case 0:
		return e.lit
	case 1:
		return st.vars[e.v]
	}
	a, b := e.l.eval(st), e.r.eval(st)
	switch e.op {
	case "+":
		return a + b
	case "-":
		return a - b
	case "*":
		return a * b
	case "&":
		return a & b
	case "|":
		return a | b
	case "^":
		return a ^ b
	case "<":
		if a < b {
			return 1
		}
		return 0
	case "==":
		if a == b {
			return 1
		}
		return 0
	}
	return 0
}

func (e *exprSpec) String() string {
	switch e.kind {
	case 0:
		if e.lit < 0 {
			return fmt.Sprintf("(%d)", e.lit)
		}
		return fmt.Sprintf("%d", e.lit)
	case 1:
		return e.v
	}
	return fmt.Sprintf("(%s %s %s)", e.l, e.op, e.r)
}

func (s *assignSpec) exec(st *interpState) {
	v := s.rhs.eval(st)
	switch s.op {
	case "=":
		st.vars[s.lhs] = v
	case "+=":
		st.vars[s.lhs] += v
	case "-=":
		st.vars[s.lhs] -= v
	case "^=":
		st.vars[s.lhs] ^= v
	}
}

func (s *ifSpec) exec(st *interpState) {
	body := s.els
	if s.cond.eval(st) != 0 {
		body = s.then
	}
	for _, t := range body {
		t.exec(st)
	}
}

func (s *loopSpec) exec(st *interpState) {
	for st.vars[s.v] = 0; st.vars[s.v] < s.count; st.vars[s.v]++ {
		for _, t := range s.body {
			t.exec(st)
		}
	}
}

func (s *writeSpec) exec(st *interpState) {
	st.out = append(st.out, s.x.eval(st))
}

func (g *progGen) expr(depth int) exprSpec {
	if depth == 0 || g.r.Intn(3) == 0 {
		if g.r.Intn(2) == 0 {
			return exprSpec{kind: 0, lit: int64(g.r.Intn(200) - 100)}
		}
		return exprSpec{kind: 1, v: g.vars[g.r.Intn(len(g.vars))]}
	}
	ops := []string{"+", "-", "*", "&", "|", "^", "<", "=="}
	l, r := g.expr(depth-1), g.expr(depth-1)
	return exprSpec{kind: 2, op: ops[g.r.Intn(len(ops))], l: &l, r: &r}
}

func (g *progGen) stmts(n, depth int) []stmtSpec {
	var out []stmtSpec
	for i := 0; i < n; i++ {
		switch k := g.r.Intn(10); {
		case k < 5:
			ops := []string{"=", "+=", "-=", "^="}
			out = append(out, &assignSpec{
				lhs: g.vars[g.r.Intn(len(g.vars))],
				op:  ops[g.r.Intn(len(ops))],
				rhs: g.expr(2),
			})
		case k < 7 && depth > 0:
			out = append(out, &ifSpec{
				cond: g.expr(2),
				then: g.stmts(1+g.r.Intn(2), depth-1),
				els:  g.stmts(g.r.Intn(2), depth-1),
			})
		case k < 8 && depth > 0:
			// Loop variable is dedicated (v0) to keep semantics simple:
			// the generator never assigns v0 inside loop bodies.
			out = append(out, &loopSpec{
				v:     "v0",
				count: int64(1 + g.r.Intn(5)),
				body:  g.loopBody(1+g.r.Intn(2), depth-1),
			})
		default:
			out = append(out, &writeSpec{x: g.expr(2)})
		}
	}
	return out
}

// loopBody generates statements that never touch the loop variable v0.
func (g *progGen) loopBody(n, depth int) []stmtSpec {
	saved := g.vars
	g.vars = g.vars[1:] // drop v0 from assignment targets
	defer func() { g.vars = saved }()
	var out []stmtSpec
	for i := 0; i < n; i++ {
		if g.r.Intn(2) == 0 {
			ops := []string{"=", "+=", "-=", "^="}
			out = append(out, &assignSpec{
				lhs: g.vars[g.r.Intn(len(g.vars))],
				op:  ops[g.r.Intn(len(ops))],
				rhs: g.exprNoV0(2),
			})
		} else {
			out = append(out, &writeSpec{x: g.exprNoV0(2)})
		}
	}
	return out
}

// exprNoV0 is like expr but may still read v0 — reading is fine.
func (g *progGen) exprNoV0(depth int) exprSpec { return g.expr(depth) }

func renderStmts(sb *strings.Builder, stmts []stmtSpec, indent string) {
	for _, s := range stmts {
		switch s := s.(type) {
		case *assignSpec:
			fmt.Fprintf(sb, "%s%s %s %s;\n", indent, s.lhs, s.op, s.rhs.String())
		case *ifSpec:
			fmt.Fprintf(sb, "%sif (%s) {\n", indent, s.cond.String())
			renderStmts(sb, s.then, indent+"\t")
			fmt.Fprintf(sb, "%s} else {\n", indent)
			renderStmts(sb, s.els, indent+"\t")
			fmt.Fprintf(sb, "%s}\n", indent)
		case *loopSpec:
			fmt.Fprintf(sb, "%sfor (%s = 0; %s < %d; %s++) {\n", indent, s.v, s.v, s.count, s.v)
			renderStmts(sb, s.body, indent+"\t")
			fmt.Fprintf(sb, "%s}\n", indent)
		case *writeSpec:
			fmt.Fprintf(sb, "%swrite_long(%s);\n", indent, s.x.String())
		}
	}
}

func TestRandomProgramsDifferential(t *testing.T) {
	r := xrand.New(987654)
	trials := 40
	if testing.Short() {
		trials = 10
	}
	for trial := 0; trial < trials; trial++ {
		g := &progGen{r: r, vars: []string{"v0", "v1", "v2", "v3"}}
		prog := g.stmts(6+r.Intn(6), 2)

		// Interpret.
		st := &interpState{vars: map[string]int64{}}
		for _, s := range prog {
			s.exec(st)
		}

		// Render, compile, run.
		var sb strings.Builder
		sb.WriteString("long main() {\n")
		for _, v := range g.vars {
			fmt.Fprintf(&sb, "\tlong %s;\n\t%s = 0;\n", v, v)
		}
		renderStmts(&sb, prog, "\t")
		sb.WriteString("\treturn 0;\n}\n")
		src := sb.String()

		compiled, err := Compile([]Source{{Name: "fuzz.mc", Text: src}}, Options{HWCProf: trial%2 == 0})
		if err != nil {
			t.Fatalf("trial %d: compile: %v\n%s", trial, err, src)
		}
		cfg := machine.DefaultConfig()
		cfg.MaxInstrs = 10_000_000
		m, err := machine.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.LoadProgram(compiled.Text, compiled.Data, compiled.Entry); err != nil {
			t.Fatal(err)
		}
		if err := m.Run(); err != nil {
			t.Fatalf("trial %d: run: %v\n%s", trial, err, src)
		}
		got := m.OutputLongs()
		if len(got) != len(st.out) {
			t.Fatalf("trial %d: %d outputs, interpreter %d\n%s", trial, len(got), len(st.out), src)
		}
		for i := range got {
			if got[i] != st.out[i] {
				t.Fatalf("trial %d output %d: machine %d, interpreter %d\n%s",
					trial, i, got[i], st.out[i], src)
			}
		}
	}
}
