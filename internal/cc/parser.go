package cc

import (
	"fmt"
	"strings"
)

// parser is a recursive-descent parser for MC.
type parser struct {
	file     string
	toks     []token
	pos      int
	typedefs map[string]bool // typedef names seen so far (needed to parse)
}

type parseError struct {
	file string
	line int
	msg  string
}

func (e *parseError) Error() string {
	return fmt.Sprintf("%s:%d: %s", e.file, e.line, e.msg)
}

func parse(src Source, typedefs map[string]bool) (*file, error) {
	toks, err := lex(src.Name, src.Text)
	if err != nil {
		return nil, err
	}
	p := &parser{file: src.Name, toks: toks, typedefs: typedefs}
	f := &file{name: src.Name, lines: strings.Split(src.Text, "\n")}
	for !p.at(tokEOF, "") {
		d, err := p.topDecl()
		if err != nil {
			return nil, err
		}
		f.decls = append(f.decls, d)
	}
	return f, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind tokKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		want = map[tokKind]string{tokIdent: "identifier", tokNumber: "number"}[kind]
	}
	return token{}, p.errf("expected %q, found %q", want, p.cur().String())
}

func (p *parser) errf(format string, args ...any) error {
	return &parseError{file: p.file, line: p.cur().line, msg: fmt.Sprintf(format, args...)}
}

// atTypeStart reports whether the current token begins a type.
func (p *parser) atTypeStart() bool {
	t := p.cur()
	if t.kind == tokKeyword {
		switch t.text {
		case "long", "int", "char", "float", "void", "struct":
			return true
		}
	}
	return t.kind == tokIdent && p.typedefs[t.text]
}

// parseType parses a type: base, pointer stars. Array suffixes are parsed
// by the declarator sites.
func (p *parser) parseType() (typeExpr, error) {
	te := typeExpr{arrayLen: -1, line: p.cur().line}
	t := p.cur()
	switch {
	case t.kind == tokKeyword && (t.text == "long" || t.text == "int" || t.text == "char" || t.text == "float" || t.text == "void"):
		te.base = t.text
		p.pos++
	case t.kind == tokKeyword && t.text == "struct":
		p.pos++
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return te, err
		}
		te.base = "struct:" + name.text
	case t.kind == tokIdent && p.typedefs[t.text]:
		te.base = t.text
		p.pos++
	default:
		return te, p.errf("expected type, found %q", t.String())
	}
	for p.accept(tokPunct, "*") {
		te.ptrDepth++
	}
	return te, nil
}

// arraySuffix parses an optional [N] after a declarator name.
func (p *parser) arraySuffix(te *typeExpr) error {
	if !p.accept(tokPunct, "[") {
		return nil
	}
	n, err := p.expect(tokNumber, "")
	if err != nil {
		return err
	}
	if n.val <= 0 {
		return p.errf("array length must be positive")
	}
	te.arrayLen = n.val
	_, err = p.expect(tokPunct, "]")
	return err
}

func (p *parser) topDecl() (topDecl, error) {
	line := p.cur().line
	// typedef TYPE NAME;
	if p.accept(tokKeyword, "typedef") {
		te, err := p.parseType()
		if err != nil {
			return nil, err
		}
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		p.typedefs[name.text] = true
		return &typedefDecl{name: name.text, typ: te, line: line}, nil
	}
	// struct NAME; (forward declaration — a no-op, since struct types
	// may be referenced through pointers before their definition)
	if p.at(tokKeyword, "struct") && p.pos+2 < len(p.toks) &&
		p.toks[p.pos+2].kind == tokPunct && p.toks[p.pos+2].text == ";" {
		p.pos += 3
		return &structDecl{name: p.toks[p.pos-2].text, fields: nil, line: line, forward: true}, nil
	}
	// struct NAME { ... };
	if p.at(tokKeyword, "struct") && p.pos+2 < len(p.toks) &&
		p.toks[p.pos+2].kind == tokPunct && p.toks[p.pos+2].text == "{" {
		p.pos++
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, "{"); err != nil {
			return nil, err
		}
		var fields []paramDecl
		unionGroup := 0
		for !p.accept(tokPunct, "}") {
			// Anonymous union: `union { TYPE name; ... };` — members share
			// storage. Only allowed inside a struct body.
			if p.accept(tokKeyword, "union") {
				unionGroup++
				if _, err := p.expect(tokPunct, "{"); err != nil {
					return nil, err
				}
				members := 0
				for !p.accept(tokPunct, "}") {
					fl := p.cur().line
					te, err := p.parseType()
					if err != nil {
						return nil, err
					}
					fname, err := p.expect(tokIdent, "")
					if err != nil {
						return nil, err
					}
					if err := p.arraySuffix(&te); err != nil {
						return nil, err
					}
					if _, err := p.expect(tokPunct, ";"); err != nil {
						return nil, err
					}
					fields = append(fields, paramDecl{name: fname.text, typ: te, union: unionGroup, line: fl})
					members++
				}
				if members == 0 {
					return nil, p.errf("empty anonymous union in struct %s", name.text)
				}
				if _, err := p.expect(tokPunct, ";"); err != nil {
					return nil, err
				}
				continue
			}
			fl := p.cur().line
			te, err := p.parseType()
			if err != nil {
				return nil, err
			}
			fname, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			if err := p.arraySuffix(&te); err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, ";"); err != nil {
				return nil, err
			}
			fields = append(fields, paramDecl{name: fname.text, typ: te, line: fl})
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &structDecl{name: name.text, fields: fields, line: line}, nil
	}
	// TYPE NAME ( function ) or TYPE NAME [= init] ; (global)
	te, err := p.parseType()
	if err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if p.accept(tokPunct, "(") {
		var params []paramDecl
		if !p.accept(tokPunct, ")") {
			if p.accept(tokKeyword, "void") {
				if _, err := p.expect(tokPunct, ")"); err != nil {
					return nil, err
				}
			} else {
				for {
					pl := p.cur().line
					pt, err := p.parseType()
					if err != nil {
						return nil, err
					}
					pn, err := p.expect(tokIdent, "")
					if err != nil {
						return nil, err
					}
					params = append(params, paramDecl{name: pn.text, typ: pt, line: pl})
					if p.accept(tokPunct, ")") {
						break
					}
					if _, err := p.expect(tokPunct, ","); err != nil {
						return nil, err
					}
				}
			}
		}
		fd := &funcDecl{name: name.text, ret: te, params: params, line: line}
		if p.accept(tokPunct, ";") {
			return fd, nil // forward declaration
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		fd.body = body
		return fd, nil
	}
	// Global variable.
	if err := p.arraySuffix(&te); err != nil {
		return nil, err
	}
	vd := &varDecl{name: name.text, typ: te, line: line}
	if p.accept(tokPunct, "=") {
		init, err := p.expr()
		if err != nil {
			return nil, err
		}
		vd.init = init
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	return vd, nil
}

func (p *parser) block() (*blockStmt, error) {
	line := p.cur().line
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	b := &blockStmt{line: line}
	for !p.accept(tokPunct, "}") {
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.stmts = append(b.stmts, s)
	}
	return b, nil
}

func (p *parser) stmt() (stmt, error) {
	line := p.cur().line
	switch {
	case p.at(tokPunct, "{"):
		return p.block()
	case p.accept(tokPunct, ";"):
		return &blockStmt{line: line}, nil
	case p.accept(tokKeyword, "if"):
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		then, err := p.stmt()
		if err != nil {
			return nil, err
		}
		s := &ifStmt{cond: cond, then: then, line: line}
		if p.accept(tokKeyword, "else") {
			els, err := p.stmt()
			if err != nil {
				return nil, err
			}
			s.els = els
		}
		return s, nil
	case p.accept(tokKeyword, "while"):
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		return &whileStmt{cond: cond, body: body, line: line}, nil
	case p.accept(tokKeyword, "do"):
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "while"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &doWhileStmt{body: body, cond: cond, line: line}, nil
	case p.accept(tokKeyword, "for"):
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		s := &forStmt{line: line}
		if !p.accept(tokPunct, ";") {
			init, err := p.simpleStmt()
			if err != nil {
				return nil, err
			}
			s.init = init
			if _, err := p.expect(tokPunct, ";"); err != nil {
				return nil, err
			}
		}
		if !p.at(tokPunct, ";") {
			cond, err := p.expr()
			if err != nil {
				return nil, err
			}
			s.cond = cond
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		if !p.at(tokPunct, ")") {
			post, err := p.simpleStmt()
			if err != nil {
				return nil, err
			}
			s.post = post
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		s.body = body
		return s, nil
	case p.accept(tokKeyword, "return"):
		s := &returnStmt{line: line}
		if !p.at(tokPunct, ";") {
			x, err := p.expr()
			if err != nil {
				return nil, err
			}
			s.x = x
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return s, nil
	case p.accept(tokKeyword, "break"):
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &breakStmt{line: line}, nil
	case p.accept(tokKeyword, "continue"):
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &continueStmt{line: line}, nil
	}
	s, err := p.simpleStmt()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	return s, nil
}

// simpleStmt parses a declaration, assignment, ++/-- or expression
// statement (without the trailing semicolon).
func (p *parser) simpleStmt() (stmt, error) {
	line := p.cur().line
	if p.atTypeStart() && !p.at(tokKeyword, "void") {
		te, err := p.parseType()
		if err != nil {
			return nil, err
		}
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		if err := p.arraySuffix(&te); err != nil {
			return nil, err
		}
		d := &declStmt{name: name.text, typ: te, line: line}
		if p.accept(tokPunct, "=") {
			init, err := p.expr()
			if err != nil {
				return nil, err
			}
			d.init = init
		}
		return d, nil
	}
	lhs, err := p.expr()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.kind == tokPunct {
		switch t.text {
		case "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=":
			p.pos++
			rhs, err := p.expr()
			if err != nil {
				return nil, err
			}
			return &assignStmt{lhs: lhs, op: t.text, rhs: rhs, line: line}, nil
		case "++", "--":
			p.pos++
			return &incDecStmt{lhs: lhs, op: t.text, line: line}, nil
		}
	}
	return &exprStmt{x: lhs, line: line}, nil
}

// --- expressions, precedence climbing ---

var binPrec = map[string]int{
	"||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
	"==": 6, "!=": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) expr() (expr, error) { return p.ternary() }

func (p *parser) ternary() (expr, error) {
	cond, err := p.binary(1)
	if err != nil {
		return nil, err
	}
	if !p.accept(tokPunct, "?") {
		return cond, nil
	}
	line := p.cur().line
	then, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ":"); err != nil {
		return nil, err
	}
	els, err := p.ternary()
	if err != nil {
		return nil, err
	}
	return &condExpr{cond: cond, then: then, els: els, line: line}, nil
}

func (p *parser) binary(minPrec int) (expr, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tokPunct {
			return lhs, nil
		}
		prec, ok := binPrec[t.text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.pos++
		rhs, err := p.binary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &binaryExpr{op: t.text, x: lhs, y: rhs, line: t.line}
	}
}

func (p *parser) unary() (expr, error) {
	t := p.cur()
	if t.kind == tokPunct {
		switch t.text {
		case "-", "!", "~", "*", "&":
			p.pos++
			x, err := p.unary()
			if err != nil {
				return nil, err
			}
			return &unaryExpr{op: t.text, x: x, line: t.line}, nil
		case "(":
			// Cast? Look ahead for a type.
			save := p.pos
			p.pos++
			if p.atTypeStart() {
				te, err := p.parseType()
				if err != nil {
					return nil, err
				}
				if p.accept(tokPunct, ")") {
					x, err := p.unary()
					if err != nil {
						return nil, err
					}
					return &castExpr{typ: te, x: x, line: t.line}, nil
				}
			}
			p.pos = save
		}
	}
	if t.kind == tokKeyword && t.text == "sizeof" {
		p.pos++
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		te, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return &sizeofExpr{typ: te, line: t.line}, nil
	}
	return p.postfix()
}

func (p *parser) postfix() (expr, error) {
	x, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tokPunct {
			return x, nil
		}
		switch t.text {
		case "[":
			p.pos++
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, "]"); err != nil {
				return nil, err
			}
			x = &indexExpr{x: x, idx: idx, line: t.line}
		case ".", "->":
			p.pos++
			name, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			x = &memberExpr{x: x, name: name.text, arrow: t.text == "->", line: t.line}
		case "(":
			id, ok := x.(*identExpr)
			if !ok {
				return nil, p.errf("call of non-function expression")
			}
			p.pos++
			var args []expr
			if !p.accept(tokPunct, ")") {
				for {
					a, err := p.expr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.accept(tokPunct, ")") {
						break
					}
					if _, err := p.expect(tokPunct, ","); err != nil {
						return nil, err
					}
				}
			}
			x = &callExpr{fn: id.name, args: args, line: t.line}
		default:
			return x, nil
		}
	}
}

func (p *parser) primary() (expr, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.pos++
		if t.isFloat {
			return &floatLit{raw: t.val, line: t.line}, nil
		}
		return &intLit{val: t.val, line: t.line}, nil
	case tokChar:
		p.pos++
		return &intLit{val: t.val, line: t.line}, nil
	case tokString:
		p.pos++
		return &strLit{val: t.text, line: t.line}, nil
	case tokIdent:
		p.pos++
		return &identExpr{name: t.text, line: t.line}, nil
	case tokPunct:
		if t.text == "(" {
			p.pos++
			x, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			return x, nil
		}
	}
	return nil, p.errf("unexpected token %q in expression", t.String())
}
