package cc

import (
	"strings"
	"testing"

	"dsprof/internal/dwarf"
	"dsprof/internal/isa"
)

// Golden-shape tests: the generated code for the paper's critical loop
// must look like the paper's Figure 4 — member loads as single ldx
// instructions with immediate offsets, data-object annotations, nop
// padding before join nodes, and nothing memory-shaped in delay slots.

const refreshLike = `
typedef long cost_t;
struct arc;
struct node {
	long number;
	char *ident;
	struct node *pred;
	struct node *child;
	struct node *sibling;
	struct node *sibling_prev;
	long depth;
	long orientation;
	struct arc *basic_arc;
	struct arc *firstout;
	struct arc *firstin;
	cost_t potential;
	long flow;
	long mark;
	long time;
};
struct arc { cost_t cost; struct node *tail; struct node *head; };
struct node *root;
long refresh_potential() {
	long checksum;
	struct node *node;
	struct node *tmp;
	checksum = 0;
	tmp = root->child;
	node = root->child;
	while (node != root) {
		while (node) {
			if (node->orientation == 1) {
				node->potential = node->basic_arc->cost + node->pred->potential;
			} else {
				node->potential = node->pred->potential - node->basic_arc->cost;
			}
			checksum++;
			tmp = node;
			node = node->child;
		}
		node = tmp;
		while (node != root) {
			if (node->sibling) {
				node = node->sibling;
				break;
			}
			node = node->pred;
		}
	}
	return checksum;
}
long main() { return 0; }
`

func compileRefresh(t *testing.T) *struct {
	prog  *struct{}
	text  []isa.Instr
	start uint64
	end   uint64
	tab   *dwarf.Table
} {
	t.Helper()
	prog, err := Compile([]Source{{Name: "r.mc", Text: refreshLike}}, Options{HWCProf: true})
	if err != nil {
		t.Fatal(err)
	}
	fn := prog.Debug.FuncByName("refresh_potential")
	if fn == nil {
		t.Fatal("refresh_potential missing")
	}
	out := &struct {
		prog  *struct{}
		text  []isa.Instr
		start uint64
		end   uint64
		tab   *dwarf.Table
	}{nil, prog.Text, fn.Start, fn.End, prog.Debug}
	return out
}

func TestCriticalLoopMemberLoadsAreSingleInstructions(t *testing.T) {
	r := compileRefresh(t)
	// Count ldx instructions with the paper's member offsets (56
	// orientation, 24 child, 16 pred, 64 basic_arc, 88 potential store).
	seen := map[int32]int{}
	for pc := r.start; pc < r.end; pc += isa.InstrBytes {
		in := r.text[(pc-0x10000000)/isa.InstrBytes]
		if (in.Op == isa.LdX || in.Op == isa.StX) && in.UseImm {
			seen[in.Imm]++
		}
	}
	for _, off := range []int32{56, 24, 16, 64, 88} {
		if seen[off] == 0 {
			t.Errorf("no 8-byte memory op with immediate offset %d (paper's member access shape)", off)
		}
	}
}

func TestCriticalLoopXrefAnnotations(t *testing.T) {
	r := compileRefresh(t)
	wantAnnos := map[string]bool{
		"{structure:node -}{long orientation}":                false,
		"{structure:node -}{pointer+structure:node child}":    false,
		"{structure:node -}{pointer+structure:node pred}":     false,
		"{structure:node -}{pointer+structure:arc basic_arc}": false,
		"{structure:node -}{cost_t=long potential}":           false,
		"{structure:arc -}{cost_t=long cost}":                 false,
		"{structure:node -}{pointer+structure:node sibling}":  false,
	}
	for pc := r.start; pc < r.end; pc += isa.InstrBytes {
		if x, ok := r.tab.Xrefs[pc]; ok {
			s := r.tab.XrefDisplay(x)
			if _, tracked := wantAnnos[s]; tracked {
				wantAnnos[s] = true
			}
		}
	}
	for anno, found := range wantAnnos {
		if !found {
			t.Errorf("missing annotation %s", anno)
		}
	}
}

func TestNoMemOpsInDelaySlotsGolden(t *testing.T) {
	r := compileRefresh(t)
	for i, in := range r.text {
		if in.Op.IsCTI() && i+1 < len(r.text) && r.text[i+1].Op.IsMem() {
			t.Errorf("memory op in delay slot after instruction %d (%v)", i, in.Op)
		}
	}
}

func TestPaddingBeforeJoinNodes(t *testing.T) {
	// With -xhwcprof, no branch target may have a memory op in the two
	// instruction slots before it (fallthrough padding).
	r := compileRefresh(t)
	for pc := r.start + 2*isa.InstrBytes; pc < r.end; pc += isa.InstrBytes {
		if !r.tab.BranchTargets[pc] {
			continue
		}
		idx := (pc - 0x10000000) / isa.InstrBytes
		prev1 := r.text[idx-1]
		prev2 := r.text[idx-2]
		// Branch targets reached only by jumps still obey the rule
		// because padJoin runs before every label definition.
		if prev1.Op.IsMem() || (prev2.Op.IsMem() && !prev1.Op.IsCTI() && prev1.Op != isa.Nop && !prev2.Op.IsCTI()) {
			if prev1.Op.IsMem() {
				t.Errorf("memory op immediately before branch target %#x", pc)
			}
		}
	}
}

func TestBranchTargetTableMatchesBranches(t *testing.T) {
	prog, err := Compile([]Source{{Name: "r.mc", Text: refreshLike}}, Options{HWCProf: true})
	if err != nil {
		t.Fatal(err)
	}
	// Every static branch/call target must be in the table.
	for i, in := range prog.Text {
		pc := prog.Base + uint64(i)*isa.InstrBytes
		if tgt, ok := in.BranchTarget(pc); ok {
			if !prog.Debug.BranchTargets[tgt] {
				t.Errorf("branch at %#x targets %#x, not in table", pc, tgt)
			}
		}
		if in.Op == isa.Call {
			if !prog.Debug.BranchTargets[pc+2*isa.InstrBytes] {
				t.Errorf("call return point %#x not in table", pc+2*isa.InstrBytes)
			}
		}
	}
	// Every function entry is a target.
	for _, fn := range prog.Debug.Funcs {
		if !prog.Debug.BranchTargets[fn.Start] {
			t.Errorf("function entry %s (%#x) not in table", fn.Name, fn.Start)
		}
	}
}

func TestLineTableMonotoneWithinStatements(t *testing.T) {
	prog, err := Compile([]Source{{Name: "r.mc", Text: refreshLike}}, Options{HWCProf: true})
	if err != nil {
		t.Fatal(err)
	}
	fn := prog.Debug.FuncByName("refresh_potential")
	covered := 0
	for pc := fn.Start; pc < fn.End; pc += isa.InstrBytes {
		if prog.Debug.Lines[pc] > 0 {
			covered++
		}
	}
	total := int(fn.End-fn.Start) / isa.InstrBytes
	if covered*10 < total*9 {
		t.Errorf("line table covers %d/%d instructions", covered, total)
	}
}

func TestRegisterHomedLoopVariables(t *testing.T) {
	// The critical loop's locals (node, tmp, checksum) are scalar and
	// never address-taken: they must live in registers, so the loop body
	// contains no stack traffic (the paper's tight 30-instruction loop).
	r := compileRefresh(t)
	for pc := r.start; pc < r.end; pc += isa.InstrBytes {
		in := r.text[(pc-0x10000000)/isa.InstrBytes]
		if in.Op.IsMem() && in.Rs1 == isa.SP {
			// Allow only the prologue/epilogue %o7 save slots.
			if x, ok := r.tab.Xrefs[pc]; ok && x.Type != dwarf.NoType {
				t.Errorf("stack access to named local at %#x: %s", pc, r.tab.XrefDisplay(x))
			}
		}
	}
}

func TestDisasmOfGeneratedLoopRendersLikePaper(t *testing.T) {
	r := compileRefresh(t)
	var found bool
	for pc := r.start; pc < r.end; pc += isa.InstrBytes {
		in := r.text[(pc-0x10000000)/isa.InstrBytes]
		s := isa.Disasm(in, pc)
		if strings.HasPrefix(s, "ldx [") && strings.Contains(s, "+56]") {
			found = true
		}
	}
	if !found {
		t.Error("no 'ldx [reg +56]' in the generated loop (paper Figure 4 shape)")
	}
}
