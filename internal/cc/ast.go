package cc

// Source is one input translation-unit file.
type Source struct {
	Name string
	Text string
}

// file is a parsed source file.
type file struct {
	name  string
	decls []topDecl
	lines []string // source text split into lines, for annotated listings
}

// topDecl is a top-level declaration.
type topDecl interface{ declNode() }

// structDecl declares (or completes) a struct type.
type structDecl struct {
	name    string
	fields  []paramDecl // reuse: name+type pairs
	line    int
	forward bool // "struct name;" with no body
}

// typedefDecl introduces a type alias.
type typedefDecl struct {
	name string
	typ  typeExpr
	line int
}

// varDecl declares a global variable.
type varDecl struct {
	name string
	typ  typeExpr
	init expr // nil or constant
	line int
}

// funcDecl declares a function.
type funcDecl struct {
	name   string
	ret    typeExpr
	params []paramDecl
	body   *blockStmt // nil for forward declarations
	line   int
}

func (*structDecl) declNode()  {}
func (*typedefDecl) declNode() {}
func (*varDecl) declNode()     {}
func (*funcDecl) declNode()    {}

// paramDecl is a name/type pair (function parameter or struct field).
// union is a non-zero per-struct group id when the field was declared
// inside an anonymous union.
type paramDecl struct {
	name  string
	typ   typeExpr
	union int
	line  int
}

// typeExpr is an unresolved syntactic type: base name plus deriving
// suffixes. Resolved to *CType by sema.
type typeExpr struct {
	base     string // "long", "int", "char", "void", "struct:NAME" or typedef name
	ptrDepth int
	arrayLen int64 // -1 if not an array (only outermost array supported)
	line     int
}

// --- statements ---

type stmt interface{ stmtNode() }

type blockStmt struct {
	stmts []stmt
	line  int
}

type declStmt struct { // local variable declaration
	name string
	typ  typeExpr
	init expr // optional
	line int
}

type exprStmt struct {
	x    expr
	line int
}

type assignStmt struct {
	lhs  expr
	op   string // "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="
	rhs  expr
	line int
}

type incDecStmt struct {
	lhs  expr
	op   string // "++" or "--"
	line int
}

type ifStmt struct {
	cond      expr
	then, els stmt // els may be nil
	line      int
}

type whileStmt struct {
	cond expr
	body stmt
	line int
}

type doWhileStmt struct {
	body stmt
	cond expr
	line int
}

type forStmt struct {
	init stmt // nil, declStmt, assignStmt, exprStmt or incDecStmt
	cond expr // nil means true
	post stmt // nil, assignStmt, exprStmt or incDecStmt
	body stmt
	line int
}

type returnStmt struct {
	x    expr // nil for void
	line int
}

type breakStmt struct{ line int }
type continueStmt struct{ line int }

func (*blockStmt) stmtNode()    {}
func (*declStmt) stmtNode()     {}
func (*exprStmt) stmtNode()     {}
func (*assignStmt) stmtNode()   {}
func (*incDecStmt) stmtNode()   {}
func (*ifStmt) stmtNode()       {}
func (*whileStmt) stmtNode()    {}
func (*doWhileStmt) stmtNode()  {}
func (*forStmt) stmtNode()      {}
func (*returnStmt) stmtNode()   {}
func (*breakStmt) stmtNode()    {}
func (*continueStmt) stmtNode() {}

// --- expressions ---

type expr interface {
	exprNode()
	pos() int
}

type intLit struct {
	val  int64
	line int
}

type floatLit struct { // Q16.16 raw bits, already lowered by the lexer
	raw  int64
	line int
}

type strLit struct {
	val  string
	line int
}

type identExpr struct {
	name string
	line int
}

type unaryExpr struct {
	op   string // "-", "!", "~", "*", "&"
	x    expr
	line int
}

type binaryExpr struct {
	op   string // arithmetic/comparison/logical
	x, y expr
	line int
}

type condExpr struct { // c ? a : b
	cond, then, els expr
	line            int
}

type callExpr struct {
	fn   string
	args []expr
	line int
}

type indexExpr struct { // a[i]
	x, idx expr
	line   int
}

type memberExpr struct { // x.name or x->name
	x     expr
	name  string
	arrow bool
	line  int
}

type castExpr struct {
	typ  typeExpr
	x    expr
	line int
}

type sizeofExpr struct {
	typ  typeExpr
	line int
}

func (*intLit) exprNode()     {}
func (*floatLit) exprNode()   {}
func (*strLit) exprNode()     {}
func (*identExpr) exprNode()  {}
func (*unaryExpr) exprNode()  {}
func (*binaryExpr) exprNode() {}
func (*condExpr) exprNode()   {}
func (*callExpr) exprNode()   {}
func (*indexExpr) exprNode()  {}
func (*memberExpr) exprNode() {}
func (*castExpr) exprNode()   {}
func (*sizeofExpr) exprNode() {}

func (e *intLit) pos() int     { return e.line }
func (e *floatLit) pos() int   { return e.line }
func (e *strLit) pos() int     { return e.line }
func (e *identExpr) pos() int  { return e.line }
func (e *unaryExpr) pos() int  { return e.line }
func (e *binaryExpr) pos() int { return e.line }
func (e *condExpr) pos() int   { return e.line }
func (e *callExpr) pos() int   { return e.line }
func (e *indexExpr) pos() int  { return e.line }
func (e *memberExpr) pos() int { return e.line }
func (e *castExpr) pos() int   { return e.line }
func (e *sizeofExpr) pos() int { return e.line }
