package cc

import (
	"strings"
	"testing"
)

// raw() in these programs extracts the Q16.16 raw bits of a float value:
// f * 65536.0 shifts the value up 16 bits inside the representation, and
// the (long) cast shifts back down, leaving exactly the raw bits.
const rawHelper = `
long raw(float f) {
	return (long)(f * 65536.0);
}
`

func TestFloatLiteralsAndArithmetic(t *testing.T) {
	out := run(t, rawHelper+`
long main() {
	float a;
	float b;
	a = 1.5;
	b = 2.25;
	write_long(raw(a + b));
	write_long(raw(a - b));
	write_long(raw(a * 2.5));
	write_long(raw(7.5 / 2.0));
	write_long(raw(0.0 - a));
	write_long(raw(1 + 0.5));
	write_long((long)(a + b));
	write_long((long)a + (long)b);
	return 0;
}`)
	expect(t, out,
		3*65536+49152,    // 3.75
		-49152,           // -0.75
		3*65536+49152,    // 1.5*2.5 = 3.75
		3*65536+49152,    // 7.5/2 = 3.75
		-(65536 + 32768), // -1.5
		65536+32768,      // 1.5
		3,                // (long)3.75 floors
		3,                // 1 + 2
	)
}

func TestFloatComparisonsAndConds(t *testing.T) {
	out := run(t, `
long main() {
	float a;
	float b;
	a = 1.5;
	b = 1.25;
	write_long(a > b);
	write_long(a < b);
	write_long(a == 1.5);
	write_long(a != a);
	write_long(b >= 2);
	if (a - b > 0.2) { write_long(1); } else { write_long(0); }
	write_long((long)(a > b ? a : b));
	while (a > 0.5) { a -= 1.0; }
	write_long(a == 0.5);
	return 0;
}`)
	expect(t, out, 1, 0, 1, 0, 0, 1, 1, 1)
}

func TestFloatConversionsAndCompound(t *testing.T) {
	out := run(t, rawHelper+`
float gf = 2.5;
float gi = 3;
long gl = 1.5;
long scale2(long v) { return v * 2; }
long main() {
	float f;
	long l;
	f = 7;
	write_long(raw(f));
	f = (float)5 / 2;
	write_long(raw(f));
	l = (long)(0.0 - 1.5);
	write_long(l);
	f = 0.5;
	f += 1; write_long(raw(f));
	f -= 0.25; write_long(raw(f));
	f *= 2.0; write_long(raw(f));
	f /= 0.5; write_long(raw(f));
	write_long(raw(gf));
	write_long(raw(gi));
	write_long(gl);
	write_long(scale2(2.75));
	write_long(!0.0);
	write_long(!0.5);
	return 0;
}`)
	expect(t, out,
		7*65536,
		2*65536+32768, // 5/2 = 2.5 in float
		-2,            // Sra floors toward negative infinity
		98304,         // 1.5
		81920,         // 1.25
		163840,        // 2.5
		327680,        // 5.0
		163840,        // 2.5
		196608,        // 3.0 (integer initializer shifted into Q16.16)
		1,             // float initializer floored into a long global
		4,             // 2.75 floored to 2 at the call boundary, times 2
		1, 0,
	)
}

func TestFloatStructMembers(t *testing.T) {
	out := run(t, rawHelper+`
struct body { long id; float x; float fx; };
long main() {
	struct body *b;
	b = (struct body *) malloc(sizeof(struct body));
	b->id = 9;
	b->x = 1.25;
	b->fx = 0.0;
	b->fx += b->x * 0.5;
	b->x += b->fx;
	write_long(sizeof(struct body));
	write_long(b->id);
	write_long(raw(b->x));
	write_long(raw(b->fx));
	free((char *) b);
	return 0;
}`)
	expect(t, out,
		16, // 8 + 4 + 4
		9,
		122880, // 1.875
		40960,  // 0.625
	)
}

func TestFloatErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`long main() { float f; f = 1.5; f %= 2.0; return 0; }`, "not supported on float"},
		{`long main() { write_long(1.5 % 2.0); return 0; }`, "not supported on float"},
		{`long main() { write_long(1.5 << 2); return 0; }`, "not supported on float"},
		{`long main() { float f; f = 0.5; f++; return 0; }`, "requires integer or pointer"},
		{`long main() { write_long(~1.5); return 0; }`, "requires integer"},
		{`long main() { float f; f = (float)(char *)0; return 0; }`, "float and pointer"},
		{`long main() { char *p; p = (char *)1.5; return 0; }`, "float and pointer"},
		{`long main() { long v; v = 1.0000000001; return 0; }`, "fractional digits"},
	}
	for _, tc := range cases {
		_, err := Compile([]Source{{Name: "t.mc", Text: tc.src}}, Options{})
		if err == nil {
			t.Errorf("%q compiled; want error containing %q", tc.src, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%q: error %q, want substring %q", tc.src, err, tc.want)
		}
	}
}

const unionSrc = `
struct node {
	long tag;
	union {
		long a;
		struct node *p;
	};
	char c;
};
long main() {
	struct node *n;
	n = (struct node *) malloc(sizeof(struct node));
	n->tag = 1;
	n->a = 77;
	n->c = 3;
	write_long(sizeof(struct node));
	write_long(n->a);
	n->p = n;
	write_long(n->p->tag);
	write_long((long)&n->a - (long)n);
	write_long((long)&n->p - (long)n);
	write_long(n->c);
	free((char *) n);
	return 0;
}`

func TestAnonymousUnion(t *testing.T) {
	out := run(t, unionSrc)
	expect(t, out,
		24, // 8 tag + 8 union + 1 char, padded to align 8
		77,
		1, // n->p aliases n->a's storage and points back at n
		8, 8,
		3,
	)
}

// A union group must keep its members co-located under any advisor
// reorder of the surrounding struct.
func TestAnonymousUnionUnderOverride(t *testing.T) {
	prog := compileSrc(t, unionSrc, Options{
		HWCProf: true,
		LayoutOverrides: map[string]*LayoutOverride{
			"node": {Order: []string{"c", "p", "tag", "a"}},
		},
	})
	_, ty := prog.Debug.TypeByName("node")
	if ty == nil {
		t.Fatal("struct node missing from debug tables")
	}
	off := map[string]int64{}
	for _, m := range ty.Members {
		off[m.Name] = m.Off
	}
	// c at 0; the union group is placed where its first member (p)
	// lands, and a reuses that slot; tag follows the 8-byte group.
	if off["c"] != 0 || off["p"] != 8 || off["a"] != 8 || off["tag"] != 16 {
		t.Errorf("override offsets = %v, want c=0 p=8 a=8 tag=16", off)
	}
	want := runProg(t, compileSrc(t, unionSrc, Options{HWCProf: true}), nil).OutputLongs()
	got := runProg(t, prog, nil).OutputLongs()
	// The two longs recording member offsets legitimately differ under
	// the override; everything else must match.
	if len(want) != len(got) || len(want) != 6 {
		t.Fatalf("output %v, want %v", got, want)
	}
	for _, i := range []int{0, 1, 2, 5} {
		if got[i] != want[i] {
			t.Fatalf("output %v, want %v (index %d)", got, want, i)
		}
	}
	if got[3] != 8 || got[4] != 8 {
		t.Errorf("overridden union offsets = %d,%d, want 8,8", got[3], got[4])
	}
}

func TestUnionFloatAliasing(t *testing.T) {
	out := run(t, `
struct v {
	union {
		float f;
		int i;
	};
	long pad;
};
long main() {
	struct v *x;
	x = (struct v *) malloc(sizeof(struct v));
	x->f = 1.5;
	write_long(x->i);
	x->i = 65536;
	write_long((long)(x->f * 2.0));
	write_long(sizeof(struct v));
	free((char *) x);
	return 0;
}`)
	expect(t, out,
		98304, // raw Q16.16 bits of 1.5 seen through the int arm
		2,     // 65536 raw is 1.0; times 2
		16,    // union 4 (padded to 8 for long align) + long 8
	)
}

func TestUnionErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`struct s { union { } ; long x; }; long main() { return 0; }`, "empty anonymous union"},
		{`struct s { union { long a; long a; }; }; long main() { return 0; }`, "duplicate field"},
		{`union { long a; }; long main() { return 0; }`, "expected"},
	}
	for _, tc := range cases {
		_, err := Compile([]Source{{Name: "t.mc", Text: tc.src}}, Options{})
		if err == nil {
			t.Errorf("%q compiled; want error containing %q", tc.src, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%q: error %q, want substring %q", tc.src, err, tc.want)
		}
	}
}
