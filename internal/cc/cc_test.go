package cc

import (
	"testing"

	"dsprof/internal/asm"
	"dsprof/internal/dwarf"
	"dsprof/internal/isa"
	"dsprof/internal/machine"
)

// compileSrc compiles one source file with default profiling options.
func compileSrc(t *testing.T, src string, opts Options) *asm.Program {
	t.Helper()
	prog, err := Compile([]Source{{Name: "test.mc", Text: src}}, opts)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return prog
}

// runProg executes a compiled program and returns the machine.
func runProg(t *testing.T, prog *asm.Program, input []int64) *machine.Machine {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.MaxInstrs = 50_000_000
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadProgram(prog.Text, prog.Data, prog.Entry); err != nil {
		t.Fatal(err)
	}
	m.SetInput(input)
	if err := m.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return m
}

// run compiles and executes, returning the long output vector.
func run(t *testing.T, src string, input ...int64) []int64 {
	t.Helper()
	prog := compileSrc(t, src, Options{HWCProf: true})
	m := runProg(t, prog, input)
	return m.OutputLongs()
}

// exitCode compiles and executes, returning main's return value.
func exitCode(t *testing.T, src string) int64 {
	t.Helper()
	prog := compileSrc(t, src, Options{HWCProf: true})
	m := runProg(t, prog, nil)
	return m.Regs[isa.O0]
}

func expect(t *testing.T, got []int64, want ...int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("output %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("output %v, want %v", got, want)
		}
	}
}

func TestReturnConstant(t *testing.T) {
	if got := exitCode(t, `long main() { return 42; }`); got != 42 {
		t.Errorf("exit = %d", got)
	}
}

func TestArithmetic(t *testing.T) {
	out := run(t, `
long main() {
	write_long(2 + 3 * 4);
	write_long((2 + 3) * 4);
	write_long(100 / 7);
	write_long(100 % 7);
	write_long(1 << 10);
	write_long(-96 >> 3);
	write_long(0xff & 0x0f);
	write_long(0xf0 | 0x0f);
	write_long(0xff ^ 0x0f);
	write_long(~0);
	write_long(-(5));
	return 0;
}`)
	expect(t, out, 14, 20, 14, 2, 1024, -12, 0x0f, 0xff, 0xf0, -1, -5)
}

func TestVariablesAndCompoundAssign(t *testing.T) {
	out := run(t, `
long main() {
	long x;
	long y;
	x = 10;
	y = x;
	x += 5; write_long(x);
	x -= 3; write_long(x);
	x *= 2; write_long(x);
	x /= 4; write_long(x);
	x %= 4; write_long(x);
	x = 3;
	x <<= 2; write_long(x);
	x >>= 1; write_long(x);
	x |= 8; write_long(x);
	x &= 12; write_long(x);
	x ^= 5; write_long(x);
	x++; write_long(x);
	x--; x--; write_long(x);
	write_long(y);
	return 0;
}`)
	expect(t, out, 15, 12, 24, 6, 2, 12, 6, 14, 12, 9, 10, 8, 10)
}

func TestControlFlow(t *testing.T) {
	out := run(t, `
long main() {
	long i;
	long sum;
	sum = 0;
	for (i = 1; i <= 10; i++) {
		sum += i;
	}
	write_long(sum);
	sum = 0;
	i = 0;
	while (i < 20) {
		i++;
		if (i % 2 == 0) { continue; }
		if (i > 15) { break; }
		sum += i;
	}
	write_long(sum);
	i = 5;
	do { i--; } while (i > 0);
	write_long(i);
	if (1 < 2 && 3 < 4 || 0) { write_long(111); } else { write_long(222); }
	if (!(5 == 5)) { write_long(1); } else { write_long(2); }
	return 0;
}`)
	// odd numbers 1..15: 1+3+5+7+9+11+13+15 = 64
	expect(t, out, 55, 64, 0, 111, 2)
}

func TestTernaryAndBoolValues(t *testing.T) {
	out := run(t, `
long main() {
	long a;
	a = 7;
	write_long(a > 5 ? 100 : 200);
	write_long(a < 5 ? 100 : 200);
	write_long(a == 7);
	write_long(a != 7);
	write_long(a > 100 || a < 10);
	write_long(a > 100 && a < 10);
	return 0;
}`)
	expect(t, out, 100, 200, 1, 0, 1, 0)
}

func TestFunctionsAndRecursion(t *testing.T) {
	out := run(t, `
long add3(long a, long b, long c) { return a + b + c; }
long fib(long n) {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}
long main() {
	write_long(add3(1, 2, 3));
	write_long(fib(15));
	return 0;
}`)
	expect(t, out, 6, 610)
}

func TestGlobals(t *testing.T) {
	out := run(t, `
long counter = 100;
long table[8];
long bump(long n) { counter += n; return counter; }
long main() {
	long i;
	write_long(counter);
	write_long(bump(5));
	write_long(counter);
	for (i = 0; i < 8; i++) { table[i] = i * i; }
	write_long(table[0] + table[3] + table[7]);
	return 0;
}`)
	expect(t, out, 100, 105, 105, 58)
}

func TestStructsOnHeap(t *testing.T) {
	out := run(t, `
struct point { long x; long y; };
struct point *mk(long x, long y) {
	struct point *p;
	p = (struct point *) malloc(sizeof(struct point));
	p->x = x;
	p->y = y;
	return p;
}
long main() {
	struct point *a;
	struct point *b;
	a = mk(3, 4);
	b = mk(10, 20);
	write_long(a->x + a->y);
	write_long(b->x * b->y);
	a->x += b->x;
	write_long(a->x);
	free((char *) a);
	free((char *) b);
	return 0;
}`)
	expect(t, out, 7, 200, 13)
}

func TestLinkedList(t *testing.T) {
	out := run(t, `
struct node { long value; struct node *next; };
long main() {
	struct node *head;
	struct node *n;
	long i;
	long sum;
	head = 0;
	for (i = 1; i <= 5; i++) {
		n = (struct node *) malloc(sizeof(struct node));
		n->value = i * 10;
		n->next = head;
		head = n;
	}
	sum = 0;
	n = head;
	while (n) {
		sum += n->value;
		n = n->next;
	}
	write_long(sum);
	return 0;
}`)
	expect(t, out, 150)
}

func TestPointerArithmetic(t *testing.T) {
	out := run(t, `
long main() {
	long *a;
	long *p;
	long *q;
	long i;
	a = (long *) malloc(10 * sizeof(long));
	for (i = 0; i < 10; i++) { a[i] = i + 1; }
	p = a + 2;
	q = a + 7;
	write_long(*p);
	write_long(*q);
	write_long(q - p);
	p += 3;
	write_long(*p);
	write_long(*(a + 9));
	return 0;
}`)
	expect(t, out, 3, 8, 5, 6, 10)
}

func TestNestedStructsAndChains(t *testing.T) {
	out := run(t, `
struct inner { long v; };
struct outer { long pad; struct inner *in; struct outer *next; };
long main() {
	struct outer *a;
	struct outer *b;
	a = (struct outer *) malloc(sizeof(struct outer));
	b = (struct outer *) malloc(sizeof(struct outer));
	a->in = (struct inner *) malloc(sizeof(struct inner));
	b->in = (struct inner *) malloc(sizeof(struct inner));
	a->next = b;
	b->next = 0;
	a->in->v = 11;
	b->in->v = 22;
	write_long(a->in->v + a->next->in->v);
	return 0;
}`)
	expect(t, out, 33)
}

func TestStructArraysAndDotAccess(t *testing.T) {
	out := run(t, `
struct pair { long a; long b; };
struct pair ps[4];
long main() {
	long i;
	long sum;
	for (i = 0; i < 4; i++) {
		ps[i].a = i;
		ps[i].b = i * 100;
	}
	sum = 0;
	for (i = 0; i < 4; i++) { sum += ps[i].a + ps[i].b; }
	write_long(sum);
	return 0;
}`)
	expect(t, out, 606)
}

func TestAddressOfLocal(t *testing.T) {
	out := run(t, `
void bump(long *p) { *p += 7; }
long main() {
	long x;
	x = 10;
	bump(&x);
	write_long(x);
	return 0;
}`)
	expect(t, out, 17)
}

func TestTypedefs(t *testing.T) {
	out := run(t, `
typedef long cost_t;
struct arc { cost_t cost; };
typedef struct arc arc;
long main() {
	arc *a;
	cost_t c;
	a = (arc *) malloc(sizeof(struct arc));
	a->cost = 99;
	c = a->cost + 1;
	write_long(c);
	return 0;
}`)
	expect(t, out, 100)
}

func TestCharAndIntTruncation(t *testing.T) {
	out := run(t, `
long main() {
	char c;
	int i;
	c = (char) 300;
	write_long(c);
	i = (int) 0x100000001;
	write_long(i);
	c = (char) 200;
	write_long(c);
	return 0;
}`)
	expect(t, out, 44, 1, -56)
}

func TestCharArrayBytes(t *testing.T) {
	out := run(t, `
long main() {
	char *buf;
	buf = malloc(16);
	buf[0] = 65;
	buf[1] = 66;
	buf[2] = 0;
	puts(buf);
	write_long(buf[0] + buf[1]);
	return 0;
}`)
	expect(t, out, 131)
}

func TestStringsAndPuts(t *testing.T) {
	prog := compileSrc(t, `
long main() {
	puts("hello, ");
	puts("world\n");
	putc(33);
	return 0;
}`, Options{})
	m := runProg(t, prog, nil)
	if got := m.OutputText(); got != "hello, world\n!" {
		t.Errorf("text output = %q", got)
	}
}

func TestReadInput(t *testing.T) {
	out := run(t, `
long main() {
	long n;
	long sum;
	n = read_long();
	sum = 0;
	while (n > 0) {
		sum += read_long();
		n--;
	}
	write_long(sum);
	write_long(input_left());
	return 0;
}`, 3, 10, 20, 30, 99)
	expect(t, out, 60, 1)
}

func TestInsertionSort(t *testing.T) {
	out := run(t, `
long a[16];
void sort(long n) {
	long i;
	long j;
	long key;
	for (i = 1; i < n; i++) {
		key = a[i];
		j = i - 1;
		while (j >= 0 && a[j] > key) {
			a[j + 1] = a[j];
			j--;
		}
		a[j + 1] = key;
	}
}
long main() {
	long i;
	a[0] = 5; a[1] = 2; a[2] = 9; a[3] = 1; a[4] = 7;
	sort(5);
	for (i = 0; i < 5; i++) { write_long(a[i]); }
	return 0;
}`)
	expect(t, out, 1, 2, 5, 7, 9)
}

func TestGlobalInitializers(t *testing.T) {
	out := run(t, `
long a = 7;
long b = -3;
long c = 0x10;
char d = 65;
int e = 100000;
long main() {
	write_long(a);
	write_long(b);
	write_long(c);
	write_long(d);
	write_long(e);
	return 0;
}`)
	expect(t, out, 7, -3, 16, 65, 100000)
}

func TestManyLocalsSpillToStack(t *testing.T) {
	// More scalar locals than callee-saved registers: the extras live on
	// the stack and everything still works.
	out := run(t, `
long main() {
	long a1; long a2; long a3; long a4; long a5; long a6; long a7; long a8;
	long b1; long b2; long b3; long b4; long b5; long b6; long b7; long b8;
	a1=1; a2=2; a3=3; a4=4; a5=5; a6=6; a7=7; a8=8;
	b1=10; b2=20; b3=30; b4=40; b5=50; b6=60; b7=70; b8=80;
	write_long(a1+a2+a3+a4+a5+a6+a7+a8+b1+b2+b3+b4+b5+b6+b7+b8);
	return 0;
}`)
	expect(t, out, 396)
}

func TestDeepExpression(t *testing.T) {
	out := run(t, `
long main() {
	write_long(((1+2)*(3+4)) + ((5+6)*(7+8)) + ((9+10)*(11+12)) - (((13+14)*(15+16))));
	return 0;
}`)
	expect(t, out, 3*7+11*15+19*23-27*31)
}

func TestCallsInsideExpressions(t *testing.T) {
	out := run(t, `
long sq(long x) { return x * x; }
long main() {
	write_long(sq(3) + sq(4) * sq(2));
	write_long(sq(sq(2)) + 1);
	return 0;
}`)
	expect(t, out, 9+16*4, 17)
}

func TestPrefetchBuiltin(t *testing.T) {
	prog := compileSrc(t, `
long main() {
	long *p;
	p = (long *) malloc(64);
	prefetch(p);
	*p = 5;
	write_long(*p);
	return 0;
}`, Options{})
	found := false
	for _, in := range prog.Text {
		if in.Op == isa.Prefetch {
			found = true
		}
	}
	if !found {
		t.Error("no prefetch instruction emitted")
	}
	m := runProg(t, prog, nil)
	expect(t, m.OutputLongs(), 5)
}

func TestDebugTables(t *testing.T) {
	prog := compileSrc(t, `
struct node { long number; struct node *next; long value; };
struct node *head;
long walk() {
	struct node *n;
	long sum;
	sum = 0;
	n = head;
	while (n) {
		sum += n->value;
		n = n->next;
	}
	return sum;
}
long main() {
	long i;
	struct node *n;
	for (i = 0; i < 3; i++) {
		n = (struct node *) malloc(sizeof(struct node));
		n->value = i;
		n->next = head;
		head = n;
	}
	write_long(walk());
	return 0;
}`, Options{HWCProf: true, DebugFormat: dwarf.FormatDWARF})

	tab := prog.Debug
	if tab.Format != dwarf.FormatDWARF {
		t.Fatal("wrong debug format")
	}
	// Functions present with proper ranges.
	for _, name := range []string{"__start", "walk", "main"} {
		f := tab.FuncByName(name)
		if f == nil {
			t.Fatalf("function %s missing from debug table", name)
		}
		if f.End <= f.Start {
			t.Errorf("function %s has empty range", name)
		}
		if !f.HWCProf {
			t.Errorf("function %s not marked HWCProf", name)
		}
	}
	// The node struct type exists with correct member offsets.
	id, ty := tab.TypeByName("node")
	if ty == nil || ty.Kind != dwarf.KindStruct || ty.Size != 24 {
		t.Fatalf("node type wrong: %+v", ty)
	}
	if len(ty.Members) != 3 || ty.Members[1].Name != "next" || ty.Members[1].Off != 8 {
		t.Errorf("node members wrong: %+v", ty.Members)
	}
	// There are xrefs to node members inside walk.
	walk := tab.FuncByName("walk")
	memberRefs := 0
	for pc := walk.Start; pc < walk.End; pc += isa.InstrBytes {
		if x, ok := tab.Xrefs[pc]; ok && x.Type == id && x.Member >= 0 {
			memberRefs++
		}
	}
	if memberRefs < 2 {
		t.Errorf("only %d member xrefs inside walk; want >= 2 (value, next)", memberRefs)
	}
	// Line table covers walk.
	lines := 0
	for pc := walk.Start; pc < walk.End; pc += isa.InstrBytes {
		if tab.Lines[pc] > 0 {
			lines++
		}
	}
	if lines == 0 {
		t.Error("no line info inside walk")
	}
	// Branch targets recorded (loop head at least).
	if len(tab.BranchTargets) == 0 {
		t.Error("no branch targets recorded")
	}
	// Source stored.
	if len(tab.Source["test.mc"]) == 0 {
		t.Error("source text not stored")
	}
}

func TestSTABSHasNoXrefs(t *testing.T) {
	src := `
struct s { long a; };
long main() {
	struct s *p;
	p = (struct s *) malloc(sizeof(struct s));
	p->a = 1;
	return p->a;
}`
	prog := compileSrc(t, src, Options{HWCProf: true, DebugFormat: dwarf.FormatSTABS})
	if len(prog.Debug.Xrefs) != 0 {
		t.Errorf("STABS tables carry %d xrefs; want 0", len(prog.Debug.Xrefs))
	}
	if prog.Debug.FuncByName("main") == nil {
		t.Error("STABS should still carry functions")
	}
	if len(prog.Debug.Lines) == 0 {
		t.Error("STABS should still carry line info")
	}
}

func TestHWCProfPadding(t *testing.T) {
	src := `
long g;
long main() {
	long i;
	long sum;
	sum = 0;
	for (i = 0; i < 10; i++) { sum += g; }
	return sum;
}`
	with := compileSrc(t, src, Options{HWCProf: true})
	without := compileSrc(t, src, Options{HWCProf: false})
	nWith, nWithout := 0, 0
	for _, in := range with.Text {
		if in.Op == isa.Nop {
			nWith++
		}
	}
	for _, in := range without.Text {
		if in.Op == isa.Nop {
			nWithout++
		}
	}
	if nWith <= nWithout {
		t.Errorf("hwcprof padding missing: %d nops with, %d without", nWith, nWithout)
	}
	if len(without.Debug.BranchTargets) != 0 {
		t.Error("branch targets recorded without -xhwcprof")
	}
	// Both versions still compute the same result.
	m1 := runProg(t, with, nil)
	m2 := runProg(t, without, nil)
	if m1.Regs[isa.O0] != m2.Regs[isa.O0] {
		t.Error("hwcprof changed program semantics")
	}
}

func TestNoMemOpsInDelaySlots(t *testing.T) {
	prog := compileSrc(t, `
struct n { long v; struct n *next; };
long main() {
	long i;
	long s;
	struct n *p;
	s = 0;
	for (i = 0; i < 4; i++) {
		p = (struct n *) malloc(sizeof(struct n));
		p->v = i;
		s += p->v;
	}
	return s;
}`, Options{HWCProf: true})
	for i, in := range prog.Text {
		if in.Op.IsCTI() && i+1 < len(prog.Text) {
			if prog.Text[i+1].Op.IsMem() {
				t.Errorf("memory op in delay slot at instruction %d", i+1)
			}
		}
	}
}

func TestPageSizeHeapFlag(t *testing.T) {
	prog := compileSrc(t, `long main() { return 0; }`, Options{PageSizeHeap: 512 << 10})
	if prog.HeapPageSize != 512<<10 {
		t.Errorf("HeapPageSize = %d", prog.HeapPageSize)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"undefined var", `long main() { return x; }`},
		{"undefined func", `long main() { return f(); }`},
		{"no main", `long f() { return 1; }`},
		{"bad member", `struct s { long a; }; long main() { struct s *p; p = 0; return p->b; }`},
		{"arrow on non-pointer", `long main() { long x; x = 1; return x->a; }`},
		{"assign to rvalue", `long main() { 3 = 4; return 0; }`},
		{"redefined func", `long main() { return 0; } long main() { return 1; }`},
		{"redefined global", `long g; long g; long main() { return 0; }`},
		{"wrong arg count", `long f(long a) { return a; } long main() { return f(1, 2); }`},
		{"ptr assign mismatch", `struct a { long x; }; struct b { long y; };
			long main() { struct a *p; struct b *q; q = (struct b *) malloc(8); p = q; return 0; }`},
		{"void in expr", `void f() { } long main() { return f() + 1; }`},
		{"break outside loop", `long main() { break; return 0; }`},
		{"struct value", `struct s { long a; }; struct s g; long main() { struct s h; h = g; return 0; }`},
		{"syntax error", `long main() { return 1 +; }`},
		{"unterminated comment", `/* long main() { return 0; }`},
		{"7 params", `long f(long a, long b, long c, long d, long e, long f2, long g) { return 0; }
			long main() { return 0; }`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Compile([]Source{{Name: "t.mc", Text: c.src}}, Options{}); err == nil {
				t.Errorf("compile succeeded, want error")
			}
		})
	}
}

func TestMultipleFiles(t *testing.T) {
	srcs := []Source{
		{Name: "a.mc", Text: `
typedef long money_t;
struct acct { money_t bal; };
struct acct *mk(money_t m);
long main() {
	struct acct *a;
	a = mk(250);
	return a->bal;
}`},
		{Name: "b.mc", Text: `
struct acct *mk(money_t m) {
	struct acct *a;
	a = (struct acct *) malloc(sizeof(struct acct));
	a->bal = m;
	return a;
}`},
	}
	prog, err := Compile(srcs, Options{HWCProf: true})
	if err != nil {
		t.Fatal(err)
	}
	m := runProg(t, prog, nil)
	if m.Regs[isa.O0] != 250 {
		t.Errorf("exit = %d", m.Regs[isa.O0])
	}
	// Per-file function attribution.
	if f := prog.Debug.FuncByName("mk"); f == nil || f.File != "b.mc" {
		t.Errorf("mk attributed to %v", f)
	}
}

func TestTypedefDisplayName(t *testing.T) {
	prog := compileSrc(t, `
typedef long cost_t;
struct arc { cost_t cost; long ident; };
long main() {
	struct arc *a;
	a = (struct arc *) malloc(sizeof(struct arc));
	a->cost = 1;
	return a->cost;
}`, Options{HWCProf: true})
	tab := prog.Debug
	_, arc := tab.TypeByName("arc")
	if arc == nil {
		t.Fatal("arc type missing")
	}
	costT := tab.TypeByID(arc.Members[0].Type)
	if costT == nil || costT.Name != "cost_t=long" {
		t.Errorf("cost member type = %+v, want cost_t=long", costT)
	}
}
