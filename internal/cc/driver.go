package cc

import (
	"fmt"

	"dsprof/internal/asm"
	"dsprof/internal/dwarf"
	"dsprof/internal/isa"
	"dsprof/internal/machine"
)

// Options are the compiler flags, mirroring the paper's:
//
//	-xhwcprof            -> HWCProf
//	-xdebugformat=dwarf  -> DebugFormat
//	-xpagesize_heap=512k -> PageSizeHeap
type Options struct {
	Name         string       // program name
	HWCProf      bool         // emit memory-profiling support
	DebugFormat  dwarf.Format // defaults to DWARF
	PageSizeHeap uint64       // heap page size request; 0 = system default

	// PrefetchFeedback lists source lines (per file) whose loads should
	// be followed by a software prefetch of the loaded value — the
	// feedback-directed prefetching sketched in the paper's future work.
	// Only loads that produce a pointer are prefetched.
	PrefetchFeedback map[string]map[int]bool

	// LayoutOverrides replaces the natural layout of the named structs
	// (member order, padded size) — the hook the data-layout advisor
	// uses to apply a recommendation on recompile. An override naming a
	// struct the program does not define is a compile error.
	LayoutOverrides map[string]*LayoutOverride
}

// Compile translates the MC sources into a loadable program.
func Compile(srcs []Source, opts Options) (*asm.Program, error) {
	if len(srcs) == 0 {
		return nil, fmt.Errorf("cc: no input files")
	}
	if opts.DebugFormat == dwarf.FormatNone {
		opts.DebugFormat = dwarf.FormatDWARF
	}
	if opts.Name == "" {
		opts.Name = srcs[0].Name
	}
	typedefs := make(map[string]bool)
	files := make([]*file, len(srcs))
	for i, s := range srcs {
		f, err := parse(s, typedefs)
		if err != nil {
			return nil, err
		}
		files[i] = f
	}
	chk, err := analyze(files, opts.LayoutOverrides)
	if err != nil {
		return nil, err
	}
	co := &compiler{
		opts:      opts,
		chk:       chk,
		b:         asm.NewBuilder(machine.TextBase),
		tab:       dwarf.NewTable(opts.DebugFormat),
		structIDs: make(map[*StructInfo]dwarf.TypeID),
		namedIDs:  make(map[string]dwarf.TypeID),
	}
	return co.run()
}

// compiler drives whole-program code generation.
type compiler struct {
	opts Options
	chk  *checked
	b    *asm.Builder
	tab  *dwarf.Table

	structIDs map[*StructInfo]dwarf.TypeID
	namedIDs  map[string]dwarf.TypeID
}

// xrefsEnabled reports whether data-object cross references are recorded:
// requires both -xhwcprof and DWARF (STABS cannot carry them).
func (co *compiler) xrefsEnabled() bool {
	return co.opts.HWCProf && co.opts.DebugFormat == dwarf.FormatDWARF
}

func (co *compiler) run() (*asm.Program, error) {
	// Pre-register all struct types so xrefs are available everywhere.
	if co.opts.DebugFormat == dwarf.FormatDWARF {
		for _, f := range co.chk.files {
			for _, d := range f.decls {
				if sd, ok := d.(*structDecl); ok {
					co.typeID(&CType{Kind: KStruct, Struct: co.chk.structs[sd.name]})
				}
			}
		}
	}

	// Runtime startup stub: call main, exit(result), halt.
	if err := co.b.Label("__start"); err != nil {
		return nil, err
	}
	co.b.EmitCall("main")
	co.b.Emit(isa.Instr{Op: isa.Nop})
	co.b.Emit(isa.Instr{Op: isa.Syscall, UseImm: true, Imm: machine.SysExit})
	co.b.Emit(isa.Instr{Op: isa.Halt})
	co.tab.AddFunc(dwarf.Func{
		Name:    "__start",
		Start:   machine.TextBase,
		End:     co.b.PC(),
		File:    "<runtime>",
		HWCProf: co.xrefsEnabled(),
	})

	for _, fn := range co.chk.funcs {
		g := newFnGen(co, fn)
		if err := g.generate(); err != nil {
			return nil, err
		}
	}

	text, err := co.b.Finish()
	if err != nil {
		return nil, err
	}
	co.tab.SortFuncs()

	// Branch-target tables are part of the memory-profiling support and,
	// like the data xrefs, require DWARF: STABS cannot carry them, so a
	// STABS build behaves as if -xhwcprof had not been given (the paper's
	// (Unascertainable) case).
	if co.xrefsEnabled() {
		co.recordBranchTargets(text)
	}
	for _, f := range co.chk.files {
		co.tab.Source[f.name] = f.lines
	}

	return &asm.Program{
		Name:         co.opts.Name,
		Text:         text,
		Data:         co.buildData(),
		Entry:        machine.TextBase,
		Base:         machine.TextBase,
		Debug:        co.tab,
		HeapPageSize: co.opts.PageSizeHeap,
	}, nil
}

// buildData assembles the final data segment: global initializers plus
// interned string literals.
func (co *compiler) buildData() []byte {
	data := make([]byte, co.chk.dataSize)
	copy(data, co.chk.data)
	for s, off := range co.chk.strOff {
		copy(data[off:], s.val)
		// NUL terminator is the zero already there.
	}
	return data
}

// recordBranchTargets fills the -xhwcprof branch-target table: targets of
// branches and calls, plus call return points (pc of call + 8, skipping
// the delay slot).
func (co *compiler) recordBranchTargets(text []isa.Instr) {
	for i := range text {
		pc := machine.TextBase + uint64(i)*isa.InstrBytes
		in := &text[i]
		if t, ok := in.BranchTarget(pc); ok {
			co.tab.BranchTargets[t] = true
		}
		if in.Op == isa.Call {
			co.tab.BranchTargets[pc+2*isa.InstrBytes] = true
		}
		if in.Op == isa.Jmpl {
			// The instruction after an indirect jump's delay slot is
			// unreachable by fallthrough, but any function entry is a
			// potential target; entries are recorded separately below.
			continue
		}
	}
	for i := range co.tab.Funcs {
		co.tab.BranchTargets[co.tab.Funcs[i].Start] = true
	}
}

// typeID maps a CType to its dwarf table entry, creating it on demand.
func (co *compiler) typeID(t *CType) dwarf.TypeID {
	if co.opts.DebugFormat != dwarf.FormatDWARF || t == nil {
		return dwarf.NoType
	}
	switch t.Kind {
	case KStruct:
		if id, ok := co.structIDs[t.Struct]; ok {
			return id
		}
		// Register first so self-referential members terminate.
		id := co.tab.AddType(dwarf.Type{
			Name: t.Struct.Name,
			Kind: dwarf.KindStruct,
			Size: t.Struct.Size,
		})
		co.structIDs[t.Struct] = id
		members := make([]dwarf.Member, len(t.Struct.Fields))
		for i, f := range t.Struct.Fields {
			members[i] = dwarf.Member{Name: f.Name, Off: f.Off, Type: co.typeID(f.Type)}
		}
		co.tab.Types[id].Members = members
		return id
	case KPtr:
		elem := co.typeID(t.Elem)
		key := fmt.Sprintf("ptr:%d", elem)
		if id, ok := co.namedIDs[key]; ok {
			return id
		}
		id := co.tab.AddType(dwarf.Type{Kind: dwarf.KindPointer, Size: 8, Elem: elem})
		co.namedIDs[key] = id
		return id
	case KArray:
		elem := co.typeID(t.Elem)
		key := fmt.Sprintf("arr:%d:%d", elem, t.Count)
		if id, ok := co.namedIDs[key]; ok {
			return id
		}
		id := co.tab.AddType(dwarf.Type{Kind: dwarf.KindArray, Size: t.Size(), Elem: elem, Count: t.Count})
		co.namedIDs[key] = id
		return id
	case KLong, KInt, KChar, KFloat:
		name := t.displayName()
		if id, ok := co.namedIDs[name]; ok {
			return id
		}
		id := co.tab.AddType(dwarf.Type{Name: name, Kind: dwarf.KindBase, Size: t.Size()})
		co.namedIDs[name] = id
		return id
	}
	return dwarf.NoType
}
