package cc

import (
	"testing"
)

func parseOK(t *testing.T, src string) *file {
	t.Helper()
	f, err := parse(Source{Name: "t.mc", Text: src}, map[string]bool{})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f
}

func TestParseTopLevelKinds(t *testing.T) {
	f := parseOK(t, `
typedef long cost_t;
struct node;
struct node { long v; struct node *next; };
long g = 5;
long table[4];
long add(long a, long b);
long add(long a, long b) { return a + b; }
long main() { return add(g, 1); }
`)
	var typedefs, structs, vars, funcs int
	for _, d := range f.decls {
		switch d.(type) {
		case *typedefDecl:
			typedefs++
		case *structDecl:
			structs++
		case *varDecl:
			vars++
		case *funcDecl:
			funcs++
		}
	}
	if typedefs != 1 || structs != 2 || vars != 2 || funcs != 3 {
		t.Errorf("decl counts: typedefs=%d structs=%d vars=%d funcs=%d", typedefs, structs, vars, funcs)
	}
}

func TestParsePrecedenceShape(t *testing.T) {
	f := parseOK(t, `long main() { return 1 + 2 * 3; }`)
	fd := f.decls[0].(*funcDecl)
	ret := fd.body.stmts[0].(*returnStmt)
	add, ok := ret.x.(*binaryExpr)
	if !ok || add.op != "+" {
		t.Fatalf("root op = %+v", ret.x)
	}
	mul, ok := add.y.(*binaryExpr)
	if !ok || mul.op != "*" {
		t.Fatalf("rhs = %+v", add.y)
	}
}

func TestParseUnaryBindsTighterThanBinary(t *testing.T) {
	f := parseOK(t, `long main() { return -1 + 2; }`)
	ret := f.decls[0].(*funcDecl).body.stmts[0].(*returnStmt)
	add, ok := ret.x.(*binaryExpr)
	if !ok || add.op != "+" {
		t.Fatalf("root = %+v", ret.x)
	}
	if _, ok := add.x.(*unaryExpr); !ok {
		t.Fatalf("lhs = %+v, want unary", add.x)
	}
}

func TestParseMemberChains(t *testing.T) {
	f := parseOK(t, `
struct s { long a; struct s *next; };
long main() { struct s *p; return p->next->next->a; }`)
	ret := f.decls[1].(*funcDecl).body.stmts[1].(*returnStmt)
	m1, ok := ret.x.(*memberExpr)
	if !ok || m1.name != "a" || !m1.arrow {
		t.Fatalf("outer member = %+v", ret.x)
	}
	m2, ok := m1.x.(*memberExpr)
	if !ok || m2.name != "next" {
		t.Fatalf("middle member = %+v", m1.x)
	}
}

func TestParseCastVsParen(t *testing.T) {
	f := parseOK(t, `
struct s { long a; };
long main() {
	long x;
	x = (long) 5;
	x = (x + 1);
	return x;
}`)
	body := f.decls[1].(*funcDecl).body.stmts
	cast := body[1].(*assignStmt)
	if _, ok := cast.rhs.(*castExpr); !ok {
		t.Errorf("(long)5 parsed as %+v", cast.rhs)
	}
	paren := body[2].(*assignStmt)
	if _, ok := paren.rhs.(*binaryExpr); !ok {
		t.Errorf("(x+1) parsed as %+v", paren.rhs)
	}
}

func TestParseForVariants(t *testing.T) {
	parseOK(t, `long main() {
	long i;
	for (;;) { break; }
	for (i = 0; ; i++) { break; }
	for (; i < 10;) { i++; }
	for (long j = 0; j < 3; j++) { }
	return 0;
}`)
}

func TestParseDanglingElse(t *testing.T) {
	f := parseOK(t, `long main() {
	if (1)
		if (2) { return 1; }
		else { return 2; }
	return 3;
}`)
	outer := f.decls[0].(*funcDecl).body.stmts[0].(*ifStmt)
	if outer.els != nil {
		t.Error("else bound to outer if; must bind to nearest")
	}
	inner := outer.then.(*ifStmt)
	if inner.els == nil {
		t.Error("inner if lost its else")
	}
}

func TestParseErrorsWithPositions(t *testing.T) {
	cases := []struct {
		src  string
		line int
	}{
		{"long main() {\n\treturn 1 +;\n}", 2},
		{"long main() {\n\tlong 5x;\n}", 2},
		{"struct s { long a };\nlong main() { return 0; }", 1},
		{"long f(long) { return 0; }", 1},
		{"long main() { while 1 { } }", 1},
		{"long main() { x = ; }", 1},
		{"long main() { a[; }", 1},
		{"long main() { return 0; } }", 1},
	}
	for _, c := range cases {
		_, err := parse(Source{Name: "t.mc", Text: c.src}, map[string]bool{})
		if err == nil {
			t.Errorf("parse(%q) succeeded", c.src)
			continue
		}
		if pe, ok := err.(*parseError); ok && c.line > 0 && pe.line != c.line {
			t.Errorf("parse(%q) error on line %d, want %d: %v", c.src, pe.line, c.line, err)
		}
	}
}

func TestParseTypedefNameUsableAfterDecl(t *testing.T) {
	typedefs := map[string]bool{}
	_, err := parse(Source{Name: "a.mc", Text: `
typedef long money_t;
money_t balance;
long main() { money_t x; x = balance; return x; }
`}, typedefs)
	if err != nil {
		t.Fatal(err)
	}
	if !typedefs["money_t"] {
		t.Error("typedef not registered for later files")
	}
}

func TestParseArraySuffixes(t *testing.T) {
	f := parseOK(t, `
long flat[10];
struct s { long a; };
struct s table[4];
long main() { return 0; }`)
	vd := f.decls[0].(*varDecl)
	if vd.typ.arrayLen != 10 {
		t.Errorf("flat arrayLen = %d", vd.typ.arrayLen)
	}
	if _, err := parse(Source{Name: "t.mc", Text: "long bad[0];"}, map[string]bool{}); err == nil {
		t.Error("zero-length array accepted")
	}
	if _, err := parse(Source{Name: "t.mc", Text: "long bad[x];"}, map[string]bool{}); err == nil {
		t.Error("non-constant array length accepted")
	}
}

func TestParseVoidParamList(t *testing.T) {
	f := parseOK(t, `long f(void) { return 1; } long main() { return f(); }`)
	fd := f.decls[0].(*funcDecl)
	if len(fd.params) != 0 {
		t.Errorf("f(void) has %d params", len(fd.params))
	}
}
