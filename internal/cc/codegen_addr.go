package cc

import (
	"dsprof/internal/dwarf"
	"dsprof/internal/isa"
	"dsprof/internal/machine"
)

// genAddr computes the address of an lvalue as base register + constant
// offset, together with the data-object cross reference describing what
// lives there.
func (g *fnGen) genAddr(e expr) (val, int32, *dwarf.DataXref, error) {
	switch e := e.(type) {
	case *identExpr:
		switch ref := g.chk.identRef[e].(type) {
		case *Global:
			base, err := g.materialize(int64(machine.DataBase)+ref.Off, e.line)
			if err != nil {
				return val{}, 0, nil, err
			}
			return base, 0, g.globalXref(ref), nil
		case *LocalVar:
			if _, inReg := g.homeReg[ref]; inReg {
				return val{}, 0, nil, g.errf(e.line, "internal: address of register variable %s", e.name)
			}
			off := g.stackOff[ref]
			return val{reg: isa.SP, temp: false}, int32(off), g.localXref(ref), nil
		}
		return val{}, 0, nil, g.errf(e.line, "cannot take address of %s", e.name)
	case *memberExpr:
		var base val
		var off int64
		var si *StructInfo
		if e.arrow {
			v, err := g.genExpr(e.x)
			if err != nil {
				return val{}, 0, nil, err
			}
			base = v
			si = decay(g.chk.exprType[e.x]).Elem.Struct
		} else {
			b, o, _, err := g.genAddr(e.x)
			if err != nil {
				return val{}, 0, nil, err
			}
			base = b
			off = int64(o)
			si = g.chk.exprType[e.x].Struct
		}
		idx, f := si.Field(e.name)
		off += f.Off
		if !fitsImm13(off) {
			nb, err := g.lea(base, 0, e.line)
			if err != nil {
				return val{}, 0, nil, err
			}
			m, err := g.materialize(off, e.line)
			if err != nil {
				return val{}, 0, nil, err
			}
			tgt, err := g.target(nb, e.line)
			if err != nil {
				return val{}, 0, nil, err
			}
			g.emit(isa.Instr{Op: isa.Add, Rd: tgt.reg, Rs1: nb.reg, Rs2: m.reg})
			g.free(m)
			base, off = tgt, 0
		}
		xref := &dwarf.DataXref{Type: g.co.typeID(&CType{Kind: KStruct, Struct: si}), Member: int32(idx)}
		return base, int32(off), xref, nil
	case *indexExpr:
		vx, err := g.genExpr(e.x) // decayed pointer value
		if err != nil {
			return val{}, 0, nil, err
		}
		elemT := g.chk.exprType[e]
		size := elemT.Size()
		xref := g.elemXref(elemT, e.x)
		if c, ok := g.constOf(e.idx); ok {
			total := c * size
			if fitsImm13(total) {
				return vx, int32(total), xref, nil
			}
			m, err := g.materialize(total, e.line)
			if err != nil {
				return val{}, 0, nil, err
			}
			tgt, err := g.target(vx, e.line)
			if err != nil {
				return val{}, 0, nil, err
			}
			g.emit(isa.Instr{Op: isa.Add, Rd: tgt.reg, Rs1: vx.reg, Rs2: m.reg})
			g.free(m)
			return tgt, 0, xref, nil
		}
		vi, err := g.genExpr(e.idx)
		if err != nil {
			return val{}, 0, nil, err
		}
		vi, err = g.scaleBy(vi, size, e.line)
		if err != nil {
			return val{}, 0, nil, err
		}
		tgt, err := g.target(vx, e.line)
		if err != nil {
			return val{}, 0, nil, err
		}
		g.emit(isa.Instr{Op: isa.Add, Rd: tgt.reg, Rs1: vx.reg, Rs2: vi.reg})
		g.free(vi)
		if tgt.reg != vx.reg {
			g.free(vx)
		}
		return tgt, 0, xref, nil
	case *unaryExpr:
		if e.op == "*" {
			v, err := g.genExpr(e.x)
			if err != nil {
				return val{}, 0, nil, err
			}
			elemT := decay(g.chk.exprType[e.x]).Elem
			return v, 0, g.elemXref(elemT, e.x), nil
		}
	case *castExpr:
		// (type *)expr used as an lvalue target via deref happens through
		// unaryExpr; a bare cast is not addressable.
	}
	return val{}, 0, nil, g.errf(e.pos(), "expression is not addressable")
}

// globalXref describes a direct global access.
func (g *fnGen) globalXref(gl *Global) *dwarf.DataXref {
	t := gl.Type
	if t.Kind == KArray {
		t = t.Elem
	}
	return &dwarf.DataXref{Type: g.co.typeID(t), Member: -1, Var: gl.Name}
}

// elemXref describes an access to an element reached through a pointer or
// array: a struct element or a named scalar array element.
func (g *fnGen) elemXref(elemT *CType, through expr) *dwarf.DataXref {
	if elemT.Kind == KStruct {
		return &dwarf.DataXref{Type: g.co.typeID(elemT), Member: -1}
	}
	var name string
	if id, ok := through.(*identExpr); ok {
		name = id.name
	}
	return &dwarf.DataXref{Type: g.co.typeID(elemT), Member: -1, Var: name}
}
