package cc

import (
	"fmt"
	"strings"
)

// CKind classifies MC types.
type CKind uint8

// Type kinds.
const (
	KVoid  CKind = iota
	KChar        // 1 byte, signed
	KInt         // 4 bytes, signed
	KLong        // 8 bytes, signed
	KFloat       // 4 bytes, Q16.16 fixed point (deterministic "float")
	KPtr
	KStruct
	KArray
)

// CType is an MC type. Types are compared structurally.
type CType struct {
	Kind    CKind
	Elem    *CType      // pointee / array element
	Count   int64       // array length
	Struct  *StructInfo // for KStruct
	Typedef string      // typedef display name, e.g. "cost_t" for a long
}

// StructInfo describes a struct layout.
type StructInfo struct {
	Name     string
	Fields   []Field
	Size     int64
	Align    int64
	Complete bool
}

// Field is one struct member after layout. Union is a non-zero group id
// when the member was declared inside an anonymous union: all members of
// one group share storage (the same offset).
type Field struct {
	Name  string
	Type  *CType
	Off   int64
	Union int
}

// Predefined types.
var (
	tyVoid  = &CType{Kind: KVoid}
	tyChar  = &CType{Kind: KChar}
	tyInt   = &CType{Kind: KInt}
	tyLong  = &CType{Kind: KLong}
	tyFloat = &CType{Kind: KFloat}
)

// ptrTo returns a pointer type.
func ptrTo(t *CType) *CType { return &CType{Kind: KPtr, Elem: t} }

// Size returns the storage size in bytes (0 for void/incomplete).
func (t *CType) Size() int64 {
	switch t.Kind {
	case KChar:
		return 1
	case KInt, KFloat:
		return 4
	case KLong, KPtr:
		return 8
	case KStruct:
		if t.Struct != nil {
			return t.Struct.Size
		}
	case KArray:
		if t.Elem != nil {
			return t.Elem.Size() * t.Count
		}
	}
	return 0
}

// Align returns the required alignment.
func (t *CType) Align() int64 {
	switch t.Kind {
	case KChar:
		return 1
	case KInt, KFloat:
		return 4
	case KLong, KPtr:
		return 8
	case KStruct:
		if t.Struct != nil {
			return t.Struct.Align
		}
	case KArray:
		if t.Elem != nil {
			return t.Elem.Align()
		}
	}
	return 1
}

// IsInteger reports whether t is an integer type.
func (t *CType) IsInteger() bool {
	return t.Kind == KChar || t.Kind == KInt || t.Kind == KLong
}

// IsArith reports whether t supports arithmetic (integer or fixed-point
// float).
func (t *CType) IsArith() bool { return t.IsInteger() || t.Kind == KFloat }

// IsScalar reports whether t fits in a register (arithmetic or pointer).
func (t *CType) IsScalar() bool { return t.IsArith() || t.Kind == KPtr }

// Field looks up a member by name.
func (s *StructInfo) Field(name string) (int, *Field) {
	for i := range s.Fields {
		if s.Fields[i].Name == name {
			return i, &s.Fields[i]
		}
	}
	return -1, nil
}

// layout computes field offsets, size and alignment. Natural alignment,
// size rounded up to alignment — the usual C ABI rules the paper's
// analysis of node/arc offsets depends on.
//
// Members of one anonymous-union group share storage: the first member of
// a group encountered in declaration order places the whole group (sized
// and aligned to the group's largest member) and later members of the
// same group reuse that offset without advancing. Because placement is
// keyed on the group id, the rule stays valid under any LayoutOverride
// permutation of the fields.
func (s *StructInfo) layout() error {
	groupSize := map[int]int64{}
	groupAlign := map[int]int64{}
	for i := range s.Fields {
		f := &s.Fields[i]
		if f.Type.Size() == 0 {
			return fmt.Errorf("struct %s: field %s has incomplete type", s.Name, f.Name)
		}
		if f.Union != 0 {
			if f.Type.Size() > groupSize[f.Union] {
				groupSize[f.Union] = f.Type.Size()
			}
			if f.Type.Align() > groupAlign[f.Union] {
				groupAlign[f.Union] = f.Type.Align()
			}
		}
	}
	groupOff := map[int]int64{}
	var off, maxAlign int64 = 0, 1
	for i := range s.Fields {
		f := &s.Fields[i]
		a := f.Type.Align()
		sz := f.Type.Size()
		if f.Union != 0 {
			if at, placed := groupOff[f.Union]; placed {
				f.Off = at
				continue
			}
			a = groupAlign[f.Union]
			sz = groupSize[f.Union]
		}
		if a > maxAlign {
			maxAlign = a
		}
		off = (off + a - 1) &^ (a - 1)
		f.Off = off
		if f.Union != 0 {
			groupOff[f.Union] = off
		}
		off += sz
	}
	s.Align = maxAlign
	s.Size = (off + maxAlign - 1) &^ (maxAlign - 1)
	s.Complete = true
	return nil
}

// same reports structural type equality.
func (t *CType) same(u *CType) bool {
	if t == u {
		return true
	}
	if t == nil || u == nil || t.Kind != u.Kind {
		return false
	}
	switch t.Kind {
	case KPtr:
		return t.Elem.same(u.Elem)
	case KArray:
		return t.Count == u.Count && t.Elem.same(u.Elem)
	case KStruct:
		return t.Struct == u.Struct
	}
	return true
}

// String renders the type in C-ish syntax.
func (t *CType) String() string {
	if t == nil {
		return "<nil>"
	}
	switch t.Kind {
	case KVoid:
		return "void"
	case KChar:
		return "char"
	case KInt:
		return "int"
	case KLong:
		if t.Typedef != "" {
			return t.Typedef
		}
		return "long"
	case KFloat:
		if t.Typedef != "" {
			return t.Typedef
		}
		return "float"
	case KPtr:
		return t.Elem.String() + " *"
	case KStruct:
		return "struct " + t.Struct.Name
	case KArray:
		return fmt.Sprintf("%s[%d]", t.Elem.String(), t.Count)
	}
	return "?"
}

// displayName renders the type the way the paper's dwarf annotations do:
// "cost_t=long" for typedefs of base types.
func (t *CType) displayName() string {
	switch t.Kind {
	case KLong, KInt, KChar, KFloat:
		base := map[CKind]string{KLong: "long", KInt: "int", KChar: "char", KFloat: "float"}[t.Kind]
		if t.Typedef != "" && t.Typedef != base {
			return t.Typedef + "=" + base
		}
		return base
	case KVoid:
		return "void"
	}
	return strings.TrimSpace(t.String())
}
