package cc

import (
	"fmt"
	"strings"
)

// CKind classifies MC types.
type CKind uint8

// Type kinds.
const (
	KVoid CKind = iota
	KChar       // 1 byte, signed
	KInt        // 4 bytes, signed
	KLong       // 8 bytes, signed
	KPtr
	KStruct
	KArray
)

// CType is an MC type. Types are compared structurally.
type CType struct {
	Kind    CKind
	Elem    *CType      // pointee / array element
	Count   int64       // array length
	Struct  *StructInfo // for KStruct
	Typedef string      // typedef display name, e.g. "cost_t" for a long
}

// StructInfo describes a struct layout.
type StructInfo struct {
	Name     string
	Fields   []Field
	Size     int64
	Align    int64
	Complete bool
}

// Field is one struct member after layout.
type Field struct {
	Name string
	Type *CType
	Off  int64
}

// Predefined types.
var (
	tyVoid = &CType{Kind: KVoid}
	tyChar = &CType{Kind: KChar}
	tyInt  = &CType{Kind: KInt}
	tyLong = &CType{Kind: KLong}
)

// ptrTo returns a pointer type.
func ptrTo(t *CType) *CType { return &CType{Kind: KPtr, Elem: t} }

// Size returns the storage size in bytes (0 for void/incomplete).
func (t *CType) Size() int64 {
	switch t.Kind {
	case KChar:
		return 1
	case KInt:
		return 4
	case KLong, KPtr:
		return 8
	case KStruct:
		if t.Struct != nil {
			return t.Struct.Size
		}
	case KArray:
		if t.Elem != nil {
			return t.Elem.Size() * t.Count
		}
	}
	return 0
}

// Align returns the required alignment.
func (t *CType) Align() int64 {
	switch t.Kind {
	case KChar:
		return 1
	case KInt:
		return 4
	case KLong, KPtr:
		return 8
	case KStruct:
		if t.Struct != nil {
			return t.Struct.Align
		}
	case KArray:
		if t.Elem != nil {
			return t.Elem.Align()
		}
	}
	return 1
}

// IsInteger reports whether t is an integer type.
func (t *CType) IsInteger() bool {
	return t.Kind == KChar || t.Kind == KInt || t.Kind == KLong
}

// IsScalar reports whether t fits in a register (integer or pointer).
func (t *CType) IsScalar() bool { return t.IsInteger() || t.Kind == KPtr }

// Field looks up a member by name.
func (s *StructInfo) Field(name string) (int, *Field) {
	for i := range s.Fields {
		if s.Fields[i].Name == name {
			return i, &s.Fields[i]
		}
	}
	return -1, nil
}

// layout computes field offsets, size and alignment. Natural alignment,
// size rounded up to alignment — the usual C ABI rules the paper's
// analysis of node/arc offsets depends on.
func (s *StructInfo) layout() error {
	var off, maxAlign int64 = 0, 1
	for i := range s.Fields {
		f := &s.Fields[i]
		if f.Type.Size() == 0 {
			return fmt.Errorf("struct %s: field %s has incomplete type", s.Name, f.Name)
		}
		a := f.Type.Align()
		if a > maxAlign {
			maxAlign = a
		}
		off = (off + a - 1) &^ (a - 1)
		f.Off = off
		off += f.Type.Size()
	}
	s.Align = maxAlign
	s.Size = (off + maxAlign - 1) &^ (maxAlign - 1)
	s.Complete = true
	return nil
}

// same reports structural type equality.
func (t *CType) same(u *CType) bool {
	if t == u {
		return true
	}
	if t == nil || u == nil || t.Kind != u.Kind {
		return false
	}
	switch t.Kind {
	case KPtr:
		return t.Elem.same(u.Elem)
	case KArray:
		return t.Count == u.Count && t.Elem.same(u.Elem)
	case KStruct:
		return t.Struct == u.Struct
	}
	return true
}

// String renders the type in C-ish syntax.
func (t *CType) String() string {
	if t == nil {
		return "<nil>"
	}
	switch t.Kind {
	case KVoid:
		return "void"
	case KChar:
		return "char"
	case KInt:
		return "int"
	case KLong:
		if t.Typedef != "" {
			return t.Typedef
		}
		return "long"
	case KPtr:
		return t.Elem.String() + " *"
	case KStruct:
		return "struct " + t.Struct.Name
	case KArray:
		return fmt.Sprintf("%s[%d]", t.Elem.String(), t.Count)
	}
	return "?"
}

// displayName renders the type the way the paper's dwarf annotations do:
// "cost_t=long" for typedefs of base types.
func (t *CType) displayName() string {
	switch t.Kind {
	case KLong, KInt, KChar:
		base := map[CKind]string{KLong: "long", KInt: "int", KChar: "char"}[t.Kind]
		if t.Typedef != "" && t.Typedef != base {
			return t.Typedef + "=" + base
		}
		return base
	case KVoid:
		return "void"
	}
	return strings.TrimSpace(t.String())
}
