// Package cc implements a compiler for MC, a C subset sufficient to
// express the paper's workloads (structs, pointers, 64-bit integer
// arithmetic, loops, functions), targeting the simulated ISA.
//
// The compiler implements the paper's profiling-support options:
//
//   - HWCProf (-xhwcprof): emit data-object cross references for every
//     memory operation, branch-target tables, and nop padding between
//     loads and join nodes; never schedule memory operations in branch
//     delay slots.
//   - DebugFormat (-xdebugformat=dwarf|stabs): DWARF tables carry type
//     and member information; STABS tables carry only functions and
//     lines, so memory profiling cannot attribute data objects
//     (the analyzer reports (Unascertainable)).
//   - PageSizeHeap (-xpagesize_heap=512k): request a larger heap page
//     size from the runtime.
package cc

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates token kinds.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokChar
	tokPunct   // operators and punctuation
	tokKeyword // reserved words
)

var keywords = map[string]bool{
	"struct": true, "typedef": true, "long": true, "int": true,
	"char": true, "void": true, "if": true, "else": true, "while": true,
	"for": true, "do": true, "return": true, "break": true,
	"continue": true, "sizeof": true, "union": true, "float": true,
}

// token is one lexical token.
type token struct {
	kind    tokKind
	text    string
	val     int64 // numeric / char value; Q16.16 raw bits when isFloat
	isFloat bool  // numeric literal contained a fractional part
	line    int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "<eof>"
	case tokNumber:
		return fmt.Sprintf("%d", t.val)
	default:
		return t.text
	}
}

// multi-character punctuators, longest first so maximal munch works.
var puncts = []string{
	"<<=", ">>=", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=",
	"&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
	"+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
	"(", ")", "{", "}", "[", "]", ";", ",", ".", "?", ":",
}

// lexError reports a lexical error with position.
type lexError struct {
	file string
	line int
	msg  string
}

func (e *lexError) Error() string {
	return fmt.Sprintf("%s:%d: %s", e.file, e.line, e.msg)
}

// lex scans src into tokens.
func lex(file, src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	n := len(src)
	errf := func(format string, args ...any) error {
		return &lexError{file: file, line: line, msg: fmt.Sprintf(format, args...)}
	}
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && src[i+1] == '*':
			i += 2
			for {
				if i+1 >= n {
					return nil, errf("unterminated block comment")
				}
				if src[i] == '\n' {
					line++
				}
				if src[i] == '*' && src[i+1] == '/' {
					i += 2
					break
				}
				i++
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			start := i
			for i < n && (isIdentChar(src[i])) {
				i++
			}
			text := src[start:i]
			k := tokIdent
			if keywords[text] {
				k = tokKeyword
			}
			toks = append(toks, token{kind: k, text: text, line: line})
		case c >= '0' && c <= '9':
			start := i
			base := int64(10)
			if c == '0' && i+1 < n && (src[i+1] == 'x' || src[i+1] == 'X') {
				base = 16
				i += 2
			}
			for i < n && isNumChar(src[i], base) {
				i++
			}
			text := src[start:i]
			var v int64
			var err error
			if base == 16 {
				_, err = fmt.Sscanf(strings.ToLower(text), "0x%x", &v)
			} else {
				_, err = fmt.Sscanf(text, "%d", &v)
			}
			if err != nil {
				return nil, errf("bad numeric literal %q", text)
			}
			// Fractional part: base-10 literals may carry `.digits`,
			// lowered to Q16.16 fixed point with pure integer math so the
			// result is bit-exact on every host.
			if base == 10 && i+1 < n && src[i] == '.' && src[i+1] >= '0' && src[i+1] <= '9' {
				i++ // consume '.'
				fracStart := i
				for i < n && src[i] >= '0' && src[i] <= '9' {
					i++
				}
				frac := src[fracStart:i]
				if len(frac) > 9 {
					return nil, errf("float literal %q has more than 9 fractional digits", src[start:i])
				}
				var fv, pow int64 = 0, 1
				for k := 0; k < len(frac); k++ {
					fv = fv*10 + int64(frac[k]-'0')
					pow *= 10
				}
				if v > (1<<47)-1 {
					return nil, errf("float literal %q out of Q16.16 range", src[start:i])
				}
				raw := v<<16 + fv*65536/pow
				toks = append(toks, token{kind: tokNumber, text: src[start:i], val: raw, isFloat: true, line: line})
				break
			}
			toks = append(toks, token{kind: tokNumber, text: text, val: v, line: line})
		case c == '"':
			i++
			var sb strings.Builder
			for {
				if i >= n || src[i] == '\n' {
					return nil, errf("unterminated string literal")
				}
				if src[i] == '"' {
					i++
					break
				}
				ch, next, err := unescape(src, i)
				if err != nil {
					return nil, errf("%v", err)
				}
				sb.WriteByte(ch)
				i = next
			}
			toks = append(toks, token{kind: tokString, text: sb.String(), line: line})
		case c == '\'':
			i++
			if i >= n {
				return nil, errf("unterminated char literal")
			}
			ch, next, err := unescape(src, i)
			if err != nil {
				return nil, errf("%v", err)
			}
			i = next
			if i >= n || src[i] != '\'' {
				return nil, errf("unterminated char literal")
			}
			i++
			toks = append(toks, token{kind: tokChar, text: string(ch), val: int64(ch), line: line})
		default:
			matched := false
			for _, p := range puncts {
				if strings.HasPrefix(src[i:], p) {
					toks = append(toks, token{kind: tokPunct, text: p, line: line})
					i += len(p)
					matched = true
					break
				}
			}
			if !matched {
				return nil, errf("unexpected character %q", c)
			}
		}
	}
	toks = append(toks, token{kind: tokEOF, line: line})
	return toks, nil
}

func isIdentChar(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

func isNumChar(c byte, base int64) bool {
	if c >= '0' && c <= '9' {
		return true
	}
	if base == 16 {
		return c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
	}
	return false
}

func unescape(src string, i int) (byte, int, error) {
	if src[i] != '\\' {
		return src[i], i + 1, nil
	}
	if i+1 >= len(src) {
		return 0, i, fmt.Errorf("dangling backslash")
	}
	switch src[i+1] {
	case 'n':
		return '\n', i + 2, nil
	case 't':
		return '\t', i + 2, nil
	case 'r':
		return '\r', i + 2, nil
	case '0':
		return 0, i + 2, nil
	case '\\':
		return '\\', i + 2, nil
	case '\'':
		return '\'', i + 2, nil
	case '"':
		return '"', i + 2, nil
	}
	return 0, i, fmt.Errorf("unknown escape \\%c", src[i+1])
}
