package cc

import (
	"dsprof/internal/isa"
	"dsprof/internal/machine"
)

var aluOps = map[string]isa.Op{
	"+": isa.Add, "-": isa.Sub, "*": isa.Mul, "/": isa.Div, "%": isa.Rem,
	"&": isa.And, "|": isa.Or, "^": isa.Xor,
	"<<": isa.Sll, ">>": isa.Sra,
}

var cmpBranch = map[string]isa.Op{
	"==": isa.Be, "!=": isa.Bne, "<": isa.Bl, "<=": isa.Ble,
	">": isa.Bg, ">=": isa.Bge,
}

var negBranch = map[isa.Op]isa.Op{
	isa.Be: isa.Bne, isa.Bne: isa.Be, isa.Bl: isa.Bge, isa.Bge: isa.Bl,
	isa.Bg: isa.Ble, isa.Ble: isa.Bg,
}

func fitsImm13(v int64) bool { return v >= isa.ImmMin && v <= isa.ImmMax }

// constOf reports the compile-time constant value of e, if any. It covers
// both sema-folded expressions and literals synthesized by codegen
// rewrites (e.g. i++ -> i += 1).
func (g *fnGen) constOf(e expr) (int64, bool) {
	if c, ok := g.chk.constVal[e]; ok {
		return c, true
	}
	if il, ok := e.(*intLit); ok {
		return il.val, true
	}
	if fl, ok := e.(*floatLit); ok {
		return fl.raw, true
	}
	return 0, false
}

// materialize loads constant c into a fresh temporary.
func (g *fnGen) materialize(c int64, line int) (val, error) {
	r, err := g.allocTemp(line)
	if err != nil {
		return val{}, err
	}
	if err := g.loadConst(r, c, line); err != nil {
		return val{}, err
	}
	return val{reg: r, temp: true}, nil
}

// loadConst emits code setting r to c.
func (g *fnGen) loadConst(r isa.Reg, c int64, line int) error {
	switch {
	case fitsImm13(c):
		g.emit(isa.Instr{Op: isa.Or, Rd: r, Rs1: isa.G0, UseImm: true, Imm: int32(c)})
	case c > 0 && c < 1<<32:
		// sethi covers bits [31:11]; or the low 11 bits.
		g.emit(isa.Instr{Op: isa.SetHi, Rd: r, UseImm: true, Imm: int32(c >> isa.SetHiShift)})
		if low := c & (1<<isa.SetHiShift - 1); low != 0 {
			g.emit(isa.Instr{Op: isa.Or, Rd: r, Rs1: r, UseImm: true, Imm: int32(low)})
		}
	case c < 0 && c != -c: // -c does not overflow
		if err := g.loadConst(r, -c, line); err != nil {
			return err
		}
		g.emit(isa.Instr{Op: isa.Sub, Rd: r, Rs1: isa.G0, Rs2: r})
	case c == -c: // MinInt64
		g.emit(isa.Instr{Op: isa.Or, Rd: r, Rs1: isa.G0, UseImm: true, Imm: 1})
		g.emit(isa.Instr{Op: isa.Sll, Rd: r, Rs1: r, UseImm: true, Imm: 63})
	default:
		// Large positive 64-bit constant: build it 11 bits at a time
		// (each chunk fits the unsigned range of the 13-bit immediate).
		var chunks []int32
		for v := c; v != 0; v >>= 11 {
			chunks = append(chunks, int32(v&0x7ff))
		}
		g.emit(isa.Instr{Op: isa.Or, Rd: r, Rs1: isa.G0, UseImm: true, Imm: chunks[len(chunks)-1]})
		for i := len(chunks) - 2; i >= 0; i-- {
			g.emit(isa.Instr{Op: isa.Sll, Rd: r, Rs1: r, UseImm: true, Imm: 11})
			if chunks[i] != 0 {
				g.emit(isa.Instr{Op: isa.Or, Rd: r, Rs1: r, UseImm: true, Imm: chunks[i]})
			}
		}
	}
	return nil
}

// genExpr evaluates e into a register.
func (g *fnGen) genExpr(e expr) (val, error) {
	if c, ok := g.constOf(e); ok {
		return g.materialize(c, e.pos())
	}
	switch e := e.(type) {
	case *intLit:
		return g.materialize(e.val, e.line)
	case *strLit:
		return g.materialize(int64(machine.DataBase)+g.chk.strOff[e], e.line)
	case *identExpr:
		switch ref := g.chk.identRef[e].(type) {
		case *LocalVar:
			if home, ok := g.homeReg[ref]; ok {
				return val{reg: home, temp: false}, nil
			}
			if ref.Type.Kind == KArray {
				return g.lea(val{reg: isa.SP, temp: false}, int32(g.stackOff[ref]), e.line)
			}
			r, err := g.allocTemp(e.line)
			if err != nil {
				return val{}, err
			}
			g.emitMem(isa.Instr{Op: loadOpFor(ref.Type), Rd: r, Rs1: isa.SP, UseImm: true, Imm: int32(g.stackOff[ref])}, g.localXref(ref))
			return val{reg: r, temp: true}, nil
		case *Global:
			base, off, xref, err := g.genAddr(e)
			if err != nil {
				return val{}, err
			}
			if ref.Type.Kind == KArray {
				return g.lea(base, off, e.line)
			}
			tgt, err := g.target(base, e.line)
			if err != nil {
				return val{}, err
			}
			g.emitMem(isa.Instr{Op: loadOpFor(ref.Type), Rd: tgt.reg, Rs1: base.reg, UseImm: true, Imm: off}, xref)
			return tgt, nil
		}
		return val{}, g.errf(e.line, "unresolved identifier %s", e.name)
	case *unaryExpr:
		return g.genUnary(e)
	case *binaryExpr:
		return g.genBinary(e)
	case *condExpr:
		return g.genCond(e)
	case *callExpr:
		return g.genCall(e)
	case *memberExpr, *indexExpr:
		t := g.chk.exprType[e.(expr)]
		base, off, xref, err := g.genAddr(e)
		if err != nil {
			return val{}, err
		}
		if t.Kind == KArray {
			return g.lea(base, off, e.pos())
		}
		if t.Kind == KStruct {
			return val{}, g.errf(e.pos(), "struct values are not supported; use pointers")
		}
		tgt, err := g.target(base, e.pos())
		if err != nil {
			return val{}, err
		}
		g.emitMem(isa.Instr{Op: loadOpFor(t), Rd: tgt.reg, Rs1: base.reg, UseImm: true, Imm: off}, xref)
		g.maybePrefetch(t, tgt.reg)
		return tgt, nil
	case *castExpr:
		v, err := g.genExpr(e.x)
		if err != nil {
			return val{}, err
		}
		to := g.chk.exprType[e]
		from := decay(g.chk.exprType[e.x])
		fromFloat := from != nil && from.Kind == KFloat
		if to.Kind == KFloat {
			if fromFloat {
				return v, nil
			}
			return g.shiftConst(v, isa.Sll, 16, e.line) // enter Q16.16
		}
		if fromFloat {
			// Leave Q16.16 (truncating toward negative infinity), then
			// narrow to the destination width below if needed.
			if v, err = g.shiftConst(v, isa.Sra, 16, e.line); err != nil {
				return val{}, err
			}
		}
		switch to.Kind {
		case KChar:
			return g.truncate(v, 56, e.line)
		case KInt:
			return g.truncate(v, 32, e.line)
		}
		return v, nil
	}
	return val{}, g.errf(e.pos(), "unsupported expression in codegen")
}

// maybePrefetch implements feedback-directed prefetch insertion (the
// paper's §4): when the just-emitted load sits on a source line the
// profile feedback marked as miss-heavy and it produced a pointer, emit a
// software prefetch of the pointed-to object.
func (g *fnGen) maybePrefetch(t *CType, reg isa.Reg) {
	fb := g.co.opts.PrefetchFeedback
	if fb == nil || t == nil || t.Kind != KPtr {
		return
	}
	if lines := fb[g.fn.File]; lines != nil && lines[int(g.curLine)] {
		g.emitMem(isa.Instr{Op: isa.Prefetch, Rs1: reg, UseImm: true, Imm: 0}, nil)
	}
}

// shiftConst applies a single shift-by-constant to v.
func (g *fnGen) shiftConst(v val, op isa.Op, n int32, line int) (val, error) {
	tgt, err := g.target(v, line)
	if err != nil {
		return val{}, err
	}
	g.emit(isa.Instr{Op: op, Rd: tgt.reg, Rs1: v.reg, UseImm: true, Imm: n})
	if tgt.reg != v.reg {
		g.free(v)
	}
	return tgt, nil
}

// truncate sign-extends the low bits of v (shift left then arithmetic
// shift right by n).
func (g *fnGen) truncate(v val, n int32, line int) (val, error) {
	tgt, err := g.target(v, line)
	if err != nil {
		return val{}, err
	}
	g.emit(isa.Instr{Op: isa.Sll, Rd: tgt.reg, Rs1: v.reg, UseImm: true, Imm: n})
	g.emit(isa.Instr{Op: isa.Sra, Rd: tgt.reg, Rs1: tgt.reg, UseImm: true, Imm: n})
	if tgt.reg != v.reg {
		g.free(v)
	}
	return tgt, nil
}

// lea computes base+off into a register.
func (g *fnGen) lea(base val, off int32, line int) (val, error) {
	if off == 0 && base.temp {
		return base, nil
	}
	tgt, err := g.target(base, line)
	if err != nil {
		return val{}, err
	}
	g.emit(isa.Instr{Op: isa.Add, Rd: tgt.reg, Rs1: base.reg, UseImm: true, Imm: off})
	return tgt, nil
}

func (g *fnGen) genUnary(e *unaryExpr) (val, error) {
	switch e.op {
	case "-":
		v, err := g.genExpr(e.x)
		if err != nil {
			return val{}, err
		}
		tgt, err := g.target(v, e.line)
		if err != nil {
			return val{}, err
		}
		g.emit(isa.Instr{Op: isa.Sub, Rd: tgt.reg, Rs1: isa.G0, Rs2: v.reg})
		return tgt, nil
	case "~":
		v, err := g.genExpr(e.x)
		if err != nil {
			return val{}, err
		}
		tgt, err := g.target(v, e.line)
		if err != nil {
			return val{}, err
		}
		g.emit(isa.Instr{Op: isa.Xor, Rd: tgt.reg, Rs1: v.reg, UseImm: true, Imm: -1})
		return tgt, nil
	case "!":
		return g.boolValue(e)
	case "*":
		t := g.chk.exprType[e]
		if t.Kind == KStruct {
			return val{}, g.errf(e.line, "struct values are not supported; use pointers")
		}
		base, off, xref, err := g.genAddr(e)
		if err != nil {
			return val{}, err
		}
		tgt, err := g.target(base, e.line)
		if err != nil {
			return val{}, err
		}
		g.emitMem(isa.Instr{Op: loadOpFor(t), Rd: tgt.reg, Rs1: base.reg, UseImm: true, Imm: off}, xref)
		g.maybePrefetch(t, tgt.reg)
		return tgt, nil
	case "&":
		base, off, _, err := g.genAddr(e.x)
		if err != nil {
			return val{}, err
		}
		return g.lea(base, off, e.line)
	}
	return val{}, g.errf(e.line, "unsupported unary %s", e.op)
}

func (g *fnGen) genBinary(e *binaryExpr) (val, error) {
	switch e.op {
	case "==", "!=", "<", "<=", ">", ">=", "&&", "||":
		return g.boolValue(e)
	}
	xt := decay(g.chk.exprType[e.x])
	yt := decay(g.chk.exprType[e.y])
	// Pointer arithmetic.
	if e.op == "-" && xt.Kind == KPtr && yt.Kind == KPtr {
		vx, err := g.genExpr(e.x)
		if err != nil {
			return val{}, err
		}
		vy, err := g.genExpr(e.y)
		if err != nil {
			return val{}, err
		}
		tgt, err := g.target(vx, e.line)
		if err != nil {
			return val{}, err
		}
		g.emit(isa.Instr{Op: isa.Sub, Rd: tgt.reg, Rs1: vx.reg, Rs2: vy.reg})
		g.free(vy)
		if tgt.reg != vx.reg {
			g.free(vx)
		}
		return g.divideByConst(tgt, xt.Elem.Size(), e.line)
	}
	if xt.IsInteger() && yt.Kind == KPtr && e.op == "+" {
		// int + ptr: evaluate in order, scale the integer side.
		vx, err := g.genExpr(e.x)
		if err != nil {
			return val{}, err
		}
		vx, err = g.scaleBy(vx, yt.Elem.Size(), e.line)
		if err != nil {
			return val{}, err
		}
		vy, err := g.genExpr(e.y)
		if err != nil {
			return val{}, err
		}
		tgt, err := g.target(vx, e.line)
		if err != nil {
			return val{}, err
		}
		g.emit(isa.Instr{Op: isa.Add, Rd: tgt.reg, Rs1: vx.reg, Rs2: vy.reg})
		g.free(vy)
		return tgt, nil
	}
	// ptr ± int and plain integer arithmetic share the tail path.
	vx, err := g.genExpr(e.x)
	if err != nil {
		return val{}, err
	}
	return g.genBinOpInto(vx, e.op, e.y, xt, e.line)
}

// genBinOpInto computes lhs <op> rhs into a target register, consuming
// lhs. lt is the (decayed) type of the left side, used for pointer
// operand scaling.
func (g *fnGen) genBinOpInto(lhs val, op string, rhs expr, lt *CType, line int) (val, error) {
	if lt != nil && lt.Kind == KFloat && (op == "*" || op == "/") {
		return g.genFloatMulDiv(lhs, op, rhs, line)
	}
	aop, ok := aluOps[op]
	if !ok {
		return val{}, g.errf(line, "unsupported operator %s", op)
	}
	scale := int64(1)
	if lt != nil && lt.Kind == KPtr && (op == "+" || op == "-") {
		scale = lt.Elem.Size()
	}
	// Constant right operand folds into the immediate when possible.
	if c, isConst := g.constOf(rhs); isConst {
		c *= scale
		useImm := fitsImm13(c)
		if op == "<<" || op == ">>" {
			useImm = c >= 0 && c < 64
		}
		if (op == "/" || op == "%") && c == 0 {
			useImm = false // let runtime trap handle it uniformly
		}
		if useImm {
			tgt, err := g.target(lhs, line)
			if err != nil {
				return val{}, err
			}
			g.emit(isa.Instr{Op: aop, Rd: tgt.reg, Rs1: lhs.reg, UseImm: true, Imm: int32(c)})
			return tgt, nil
		}
	}
	v, err := g.genExpr(rhs)
	if err != nil {
		return val{}, err
	}
	v, err = g.scaleBy(v, scale, line)
	if err != nil {
		return val{}, err
	}
	tgt, err := g.target(lhs, line)
	if err != nil {
		return val{}, err
	}
	g.emit(isa.Instr{Op: aop, Rd: tgt.reg, Rs1: lhs.reg, Rs2: v.reg})
	g.free(v)
	if tgt.reg != lhs.reg {
		g.free(lhs)
	}
	return tgt, nil
}

// genFloatMulDiv compiles Q16.16 multiply and divide, consuming lhs.
// Registers hold 64-bit raw values, so the widened intermediates
// (product before the >>16, dividend after the <<16) do not overflow at
// kernel-scale magnitudes; the result re-enters Q16.16 directly.
func (g *fnGen) genFloatMulDiv(lhs val, op string, rhs expr, line int) (val, error) {
	if op == "*" {
		if c, isConst := g.constOf(rhs); isConst && fitsImm13(c) {
			tgt, err := g.target(lhs, line)
			if err != nil {
				return val{}, err
			}
			g.emit(isa.Instr{Op: isa.Mul, Rd: tgt.reg, Rs1: lhs.reg, UseImm: true, Imm: int32(c)})
			g.emit(isa.Instr{Op: isa.Sra, Rd: tgt.reg, Rs1: tgt.reg, UseImm: true, Imm: 16})
			return tgt, nil
		}
		v, err := g.genExpr(rhs)
		if err != nil {
			return val{}, err
		}
		tgt, err := g.target(lhs, line)
		if err != nil {
			return val{}, err
		}
		g.emit(isa.Instr{Op: isa.Mul, Rd: tgt.reg, Rs1: lhs.reg, Rs2: v.reg})
		g.emit(isa.Instr{Op: isa.Sra, Rd: tgt.reg, Rs1: tgt.reg, UseImm: true, Imm: 16})
		g.free(v)
		if tgt.reg != lhs.reg {
			g.free(lhs)
		}
		return tgt, nil
	}
	// Division: (lhs << 16) / rhs.
	if c, isConst := g.constOf(rhs); isConst && c != 0 && fitsImm13(c) {
		tgt, err := g.target(lhs, line)
		if err != nil {
			return val{}, err
		}
		g.emit(isa.Instr{Op: isa.Sll, Rd: tgt.reg, Rs1: lhs.reg, UseImm: true, Imm: 16})
		g.emit(isa.Instr{Op: isa.Div, Rd: tgt.reg, Rs1: tgt.reg, UseImm: true, Imm: int32(c)})
		return tgt, nil
	}
	v, err := g.genExpr(rhs)
	if err != nil {
		return val{}, err
	}
	tgt, err := g.target(lhs, line)
	if err != nil {
		return val{}, err
	}
	g.emit(isa.Instr{Op: isa.Sll, Rd: tgt.reg, Rs1: lhs.reg, UseImm: true, Imm: 16})
	g.emit(isa.Instr{Op: isa.Div, Rd: tgt.reg, Rs1: tgt.reg, Rs2: v.reg})
	g.free(v)
	if tgt.reg != lhs.reg {
		g.free(lhs)
	}
	return tgt, nil
}

// scaleBy multiplies v by a constant element size (pointer arithmetic).
func (g *fnGen) scaleBy(v val, scale int64, line int) (val, error) {
	if scale == 1 {
		return v, nil
	}
	tgt, err := g.target(v, line)
	if err != nil {
		return val{}, err
	}
	if scale&(scale-1) == 0 {
		sh := int32(0)
		for 1<<sh != scale {
			sh++
		}
		g.emit(isa.Instr{Op: isa.Sll, Rd: tgt.reg, Rs1: v.reg, UseImm: true, Imm: sh})
		return tgt, nil
	}
	m, err := g.materialize(scale, line)
	if err != nil {
		return val{}, err
	}
	g.emit(isa.Instr{Op: isa.Mul, Rd: tgt.reg, Rs1: v.reg, Rs2: m.reg})
	g.free(m)
	return tgt, nil
}

// divideByConst divides v by a constant element size (pointer
// difference).
func (g *fnGen) divideByConst(v val, size int64, line int) (val, error) {
	if size == 1 {
		return v, nil
	}
	tgt, err := g.target(v, line)
	if err != nil {
		return val{}, err
	}
	if fitsImm13(size) {
		g.emit(isa.Instr{Op: isa.Div, Rd: tgt.reg, Rs1: v.reg, UseImm: true, Imm: int32(size)})
		return tgt, nil
	}
	m, err := g.materialize(size, line)
	if err != nil {
		return val{}, err
	}
	g.emit(isa.Instr{Op: isa.Div, Rd: tgt.reg, Rs1: v.reg, Rs2: m.reg})
	g.free(m)
	return tgt, nil
}

// genCond compiles the ternary operator.
func (g *fnGen) genCond(e *condExpr) (val, error) {
	elseL := g.newLabel("celse")
	endL := g.newLabel("cend")
	r, err := g.allocTemp(e.line)
	if err != nil {
		return val{}, err
	}
	res := val{reg: r, temp: true}
	if err := g.condFalse(e.cond, elseL); err != nil {
		return val{}, err
	}
	v, err := g.genExpr(e.then)
	if err != nil {
		return val{}, err
	}
	g.emit(isa.Instr{Op: isa.Or, Rd: r, Rs1: isa.G0, Rs2: v.reg})
	g.free(v)
	g.branch(isa.Ba, endL)
	if err := g.label(elseL); err != nil {
		return val{}, err
	}
	v, err = g.genExpr(e.els)
	if err != nil {
		return val{}, err
	}
	g.emit(isa.Instr{Op: isa.Or, Rd: r, Rs1: isa.G0, Rs2: v.reg})
	g.free(v)
	if err := g.label(endL); err != nil {
		return val{}, err
	}
	return res, nil
}

// boolValue materializes a comparison/logical expression as 0 or 1.
func (g *fnGen) boolValue(e expr) (val, error) {
	r, err := g.allocTemp(e.pos())
	if err != nil {
		return val{}, err
	}
	res := val{reg: r, temp: true}
	falseL := g.newLabel("bfalse")
	endL := g.newLabel("bend")
	if err := g.condFalse(e, falseL); err != nil {
		return val{}, err
	}
	g.emit(isa.Instr{Op: isa.Or, Rd: r, Rs1: isa.G0, UseImm: true, Imm: 1})
	g.branch(isa.Ba, endL)
	if err := g.label(falseL); err != nil {
		return val{}, err
	}
	g.emit(isa.Instr{Op: isa.Or, Rd: r, Rs1: isa.G0, UseImm: true, Imm: 0})
	if err := g.label(endL); err != nil {
		return val{}, err
	}
	return res, nil
}

// condFalse branches to falseL when e evaluates false.
func (g *fnGen) condFalse(e expr, falseL string) error {
	if c, ok := g.constOf(e); ok {
		if c == 0 {
			g.branch(isa.Ba, falseL)
		}
		return nil
	}
	switch e := e.(type) {
	case *binaryExpr:
		if br, ok := cmpBranch[e.op]; ok {
			return g.emitCmpBranch(e, negBranch[br], falseL)
		}
		if e.op == "&&" {
			if err := g.condFalse(e.x, falseL); err != nil {
				return err
			}
			return g.condFalse(e.y, falseL)
		}
		if e.op == "||" {
			tL := g.newLabel("or")
			if err := g.condTrue(e.x, tL); err != nil {
				return err
			}
			if err := g.condFalse(e.y, falseL); err != nil {
				return err
			}
			return g.label(tL)
		}
	case *unaryExpr:
		if e.op == "!" {
			return g.condTrue(e.x, falseL)
		}
	}
	v, err := g.genExpr(e)
	if err != nil {
		return err
	}
	g.emit(isa.Instr{Op: isa.Cmp, Rs1: v.reg, UseImm: true, Imm: 0})
	g.free(v)
	g.branch(isa.Be, falseL)
	return nil
}

// condTrue branches to trueL when e evaluates true.
func (g *fnGen) condTrue(e expr, trueL string) error {
	if c, ok := g.constOf(e); ok {
		if c != 0 {
			g.branch(isa.Ba, trueL)
		}
		return nil
	}
	switch e := e.(type) {
	case *binaryExpr:
		if br, ok := cmpBranch[e.op]; ok {
			return g.emitCmpBranch(e, br, trueL)
		}
		if e.op == "&&" {
			fL := g.newLabel("and")
			if err := g.condFalse(e.x, fL); err != nil {
				return err
			}
			if err := g.condTrue(e.y, trueL); err != nil {
				return err
			}
			return g.label(fL)
		}
		if e.op == "||" {
			if err := g.condTrue(e.x, trueL); err != nil {
				return err
			}
			return g.condTrue(e.y, trueL)
		}
	case *unaryExpr:
		if e.op == "!" {
			return g.condFalse(e.x, trueL)
		}
	}
	v, err := g.genExpr(e)
	if err != nil {
		return err
	}
	g.emit(isa.Instr{Op: isa.Cmp, Rs1: v.reg, UseImm: true, Imm: 0})
	g.free(v)
	g.branch(isa.Bne, trueL)
	return nil
}

// emitCmpBranch compiles `x <cmp> y` followed by a branch to target.
func (g *fnGen) emitCmpBranch(e *binaryExpr, br isa.Op, target string) error {
	vx, err := g.genExpr(e.x)
	if err != nil {
		return err
	}
	if c, ok := g.constOf(e.y); ok && fitsImm13(c) {
		g.emit(isa.Instr{Op: isa.Cmp, Rs1: vx.reg, UseImm: true, Imm: int32(c)})
		g.free(vx)
	} else {
		vy, err := g.genExpr(e.y)
		if err != nil {
			return err
		}
		g.emit(isa.Instr{Op: isa.Cmp, Rs1: vx.reg, Rs2: vy.reg})
		g.free(vx)
		g.free(vy)
	}
	g.branch(br, target)
	return nil
}
