package cc

import "dsprof/internal/machine"

// builtins available to MC programs, mapped to runtime services.
var builtins = map[string]*builtin{
	"malloc":     {name: "malloc", params: []*CType{tyLong}, ret: ptrTo(tyChar), service: machine.SysMalloc},
	"calloc":     {name: "calloc", params: []*CType{tyLong, tyLong}, ret: ptrTo(tyChar), service: machine.SysCalloc},
	"free":       {name: "free", params: []*CType{nil}, ret: tyVoid, service: machine.SysFree},
	"read_long":  {name: "read_long", params: nil, ret: tyLong, service: machine.SysReadLong},
	"write_long": {name: "write_long", params: []*CType{tyLong}, ret: tyVoid, service: machine.SysWriteLong},
	"puts":       {name: "puts", params: []*CType{ptrTo(tyChar)}, ret: tyVoid, service: machine.SysPuts},
	"putc":       {name: "putc", params: []*CType{tyLong}, ret: tyVoid, service: machine.SysPutc},
	"exit":       {name: "exit", params: []*CType{tyLong}, ret: tyVoid, service: machine.SysExit},
	"cycles":     {name: "cycles", params: nil, ret: tyLong, service: machine.SysCycles},
	"input_left": {name: "input_left", params: nil, ret: tyLong, service: machine.SysInputLeft},
	// prefetch compiles to a Prefetch instruction, not a syscall.
	"prefetch": {name: "prefetch", params: []*CType{nil}, ret: tyVoid, service: -1},
}

// checkExpr type-checks e, memoizing the type, and folds constants.
func (c *checker) checkExpr(e expr) (*CType, error) {
	t, err := c.checkExprInner(e)
	if err != nil {
		return nil, err
	}
	c.exprType[e] = t
	if v, ok := c.fold(e); ok {
		c.constVal[e] = v
	}
	return t, nil
}

// decay converts array-typed expressions to element pointers.
func decay(t *CType) *CType {
	if t.Kind == KArray {
		return ptrTo(t.Elem)
	}
	return t
}

func (c *checker) checkExprInner(e expr) (*CType, error) {
	switch e := e.(type) {
	case *intLit:
		return tyLong, nil
	case *floatLit:
		return tyFloat, nil
	case *strLit:
		c.internString(e)
		return ptrTo(tyChar), nil
	case *identExpr:
		if lv := c.lookup(e.name); lv != nil {
			c.identRef[e] = lv
			return lv.Type, nil
		}
		if g := c.globalBy[e.name]; g != nil {
			c.identRef[e] = g
			return g.Type, nil
		}
		return nil, c.errf(e.line, "undefined identifier %s", e.name)
	case *unaryExpr:
		xt, err := c.checkExpr(e.x)
		if err != nil {
			return nil, err
		}
		switch e.op {
		case "-":
			if xt.Kind == KFloat {
				return tyFloat, nil // negation is raw-exact in Q16.16
			}
			if !xt.IsInteger() {
				return nil, c.errf(e.line, "unary %s requires integer", e.op)
			}
			return tyLong, nil
		case "~":
			if !xt.IsInteger() {
				return nil, c.errf(e.line, "unary %s requires integer", e.op)
			}
			return tyLong, nil
		case "!":
			if !decay(xt).IsScalar() {
				return nil, c.errf(e.line, "! requires scalar")
			}
			return tyLong, nil
		case "*":
			xt = decay(xt)
			if xt.Kind != KPtr {
				return nil, c.errf(e.line, "dereference of non-pointer %s", xt)
			}
			return xt.Elem, nil
		case "&":
			if !c.isLvalue(e.x) {
				// &array is permitted and yields the element pointer.
				if t := c.exprType[e.x]; t != nil && t.Kind == KArray {
					return ptrTo(t.Elem), nil
				}
				return nil, c.errf(e.line, "address of non-lvalue")
			}
			if id, ok := e.x.(*identExpr); ok {
				if lv, ok := c.identRef[id].(*LocalVar); ok {
					lv.AddrTaken = true
				}
			}
			return ptrTo(xt), nil
		}
		return nil, c.errf(e.line, "unknown unary operator %s", e.op)
	case *binaryExpr:
		xt, err := c.checkExpr(e.x)
		if err != nil {
			return nil, err
		}
		yt, err := c.checkExpr(e.y)
		if err != nil {
			return nil, err
		}
		xt, yt = decay(xt), decay(yt)
		switch e.op {
		case "+":
			if xt.Kind == KPtr && yt.IsInteger() {
				return xt, nil
			}
			if yt.Kind == KPtr && xt.IsInteger() {
				return yt, nil
			}
		case "-":
			if xt.Kind == KPtr && yt.IsInteger() {
				return xt, nil
			}
			if xt.Kind == KPtr && yt.Kind == KPtr {
				if !xt.Elem.same(yt.Elem) {
					return nil, c.errf(e.line, "pointer subtraction of incompatible types")
				}
				return tyLong, nil
			}
		case "==", "!=", "<", "<=", ">", ">=":
			okPtr := xt.Kind == KPtr && (yt.Kind == KPtr || c.isZero(e.y)) ||
				yt.Kind == KPtr && (xt.Kind == KPtr || c.isZero(e.x))
			if okPtr || (xt.IsInteger() && yt.IsInteger()) {
				return tyLong, nil
			}
			if xt.IsArith() && yt.IsArith() {
				// Fixed-point comparison: Q16.16 order matches value
				// order, so a raw integer compare is exact once both
				// sides share the representation.
				var err error
				if e.x, err = c.coerce(tyFloat, e.x); err != nil {
					return nil, err
				}
				if e.y, err = c.coerce(tyFloat, e.y); err != nil {
					return nil, err
				}
				return tyLong, nil
			}
			return nil, c.errf(e.line, "invalid comparison %s %s %s", xt, e.op, yt)
		case "&&", "||":
			if xt.IsScalar() && yt.IsScalar() {
				return tyLong, nil
			}
			return nil, c.errf(e.line, "logical %s requires scalars", e.op)
		}
		if xt.IsInteger() && yt.IsInteger() {
			return tyLong, nil
		}
		if xt.IsArith() && yt.IsArith() {
			// Mixed float/integer arithmetic: both operands move to the
			// Q16.16 representation and the result is float.
			switch e.op {
			case "+", "-", "*", "/":
				var err error
				if e.x, err = c.coerce(tyFloat, e.x); err != nil {
					return nil, err
				}
				if e.y, err = c.coerce(tyFloat, e.y); err != nil {
					return nil, err
				}
				return tyFloat, nil
			}
			return nil, c.errf(e.line, "operator %s not supported on float", e.op)
		}
		return nil, c.errf(e.line, "invalid operands to %s: %s and %s", e.op, xt, yt)
	case *condExpr:
		if err := c.checkCond(e.cond, e.line); err != nil {
			return nil, err
		}
		tt, err := c.checkExpr(e.then)
		if err != nil {
			return nil, err
		}
		et, err := c.checkExpr(e.els)
		if err != nil {
			return nil, err
		}
		tt, et = decay(tt), decay(et)
		if tt.IsInteger() && et.IsInteger() {
			return tyLong, nil
		}
		if (tt.Kind == KFloat || et.Kind == KFloat) && tt.IsArith() && et.IsArith() {
			var err error
			if e.then, err = c.coerce(tyFloat, e.then); err != nil {
				return nil, err
			}
			if e.els, err = c.coerce(tyFloat, e.els); err != nil {
				return nil, err
			}
			return tyFloat, nil
		}
		if tt.same(et) {
			return tt, nil
		}
		if tt.Kind == KPtr && c.isZero(e.els) {
			return tt, nil
		}
		if et.Kind == KPtr && c.isZero(e.then) {
			return et, nil
		}
		return nil, c.errf(e.line, "mismatched ?: arms: %s and %s", tt, et)
	case *callExpr:
		if b, ok := builtins[e.fn]; ok {
			return c.checkBuiltin(e, b)
		}
		fn := c.funcBy[e.fn]
		if fn == nil {
			return nil, c.errf(e.line, "call of undefined function %s", e.fn)
		}
		if len(e.args) != len(fn.Params) {
			return nil, c.errf(e.line, "%s takes %d arguments, got %d", e.fn, len(fn.Params), len(e.args))
		}
		for i, a := range e.args {
			at, err := c.checkExpr(a)
			if err != nil {
				return nil, err
			}
			if err := c.assignable(fn.Params[i].Type, decay(at), a, e.line); err != nil {
				return nil, err
			}
			if e.args[i], err = c.coerce(fn.Params[i].Type, a); err != nil {
				return nil, err
			}
		}
		return fn.Ret, nil
	case *indexExpr:
		xt, err := c.checkExpr(e.x)
		if err != nil {
			return nil, err
		}
		it, err := c.checkExpr(e.idx)
		if err != nil {
			return nil, err
		}
		xt = decay(xt)
		if xt.Kind != KPtr {
			return nil, c.errf(e.line, "indexing non-pointer %s", xt)
		}
		if !it.IsInteger() {
			return nil, c.errf(e.line, "array index must be integer")
		}
		return xt.Elem, nil
	case *memberExpr:
		xt, err := c.checkExpr(e.x)
		if err != nil {
			return nil, err
		}
		var si *StructInfo
		if e.arrow {
			xt = decay(xt)
			if xt.Kind != KPtr || xt.Elem.Kind != KStruct {
				return nil, c.errf(e.line, "-> on non-struct-pointer %s", xt)
			}
			si = xt.Elem.Struct
		} else {
			if xt.Kind != KStruct {
				return nil, c.errf(e.line, ". on non-struct %s", xt)
			}
			si = xt.Struct
		}
		if !si.Complete {
			return nil, c.errf(e.line, "struct %s is incomplete", si.Name)
		}
		_, f := si.Field(e.name)
		if f == nil {
			return nil, c.errf(e.line, "struct %s has no field %s", si.Name, e.name)
		}
		return f.Type, nil
	case *castExpr:
		to, err := c.resolveType(e.typ)
		if err != nil {
			return nil, err
		}
		xt, err := c.checkExpr(e.x)
		if err != nil {
			return nil, err
		}
		xt = decay(xt)
		if !to.IsScalar() || !xt.IsScalar() {
			return nil, c.errf(e.line, "invalid cast from %s to %s", xt, to)
		}
		if to.Kind == KFloat && xt.Kind == KPtr || to.Kind == KPtr && xt.Kind == KFloat {
			return nil, c.errf(e.line, "invalid cast between float and pointer")
		}
		return to, nil
	case *sizeofExpr:
		t, err := c.resolveType(e.typ)
		if err != nil {
			return nil, err
		}
		if t.Size() == 0 {
			return nil, c.errf(e.line, "sizeof incomplete type")
		}
		return tyLong, nil
	}
	return nil, c.errf(e.pos(), "unsupported expression")
}

func (c *checker) checkBuiltin(e *callExpr, b *builtin) (*CType, error) {
	if len(e.args) != len(b.params) {
		return nil, c.errf(e.line, "%s takes %d arguments, got %d", b.name, len(b.params), len(e.args))
	}
	for i, a := range e.args {
		at, err := c.checkExpr(a)
		if err != nil {
			return nil, err
		}
		at = decay(at)
		want := b.params[i]
		if want == nil { // any pointer
			if at.Kind != KPtr && !c.isZero(a) {
				return nil, c.errf(e.line, "%s argument %d must be a pointer", b.name, i+1)
			}
			continue
		}
		if want.IsArith() && at.IsArith() {
			if e.args[i], err = c.coerce(want, a); err != nil {
				return nil, err
			}
			continue
		}
		if want.Kind == KPtr && at.Kind == KPtr {
			continue
		}
		return nil, c.errf(e.line, "%s argument %d: cannot pass %s", b.name, i+1, at)
	}
	return b.ret, nil
}

func (c *checker) isZero(e expr) bool {
	v, ok := c.constVal[e]
	return ok && v == 0
}

// fold attempts compile-time evaluation of e (using already-computed
// constVal entries for subexpressions).
func (c *checker) fold(e expr) (int64, bool) {
	switch e := e.(type) {
	case *intLit:
		return e.val, true
	case *floatLit:
		return e.raw, true // Q16.16 raw bits are the runtime representation
	case *sizeofExpr:
		t, err := c.resolveType(e.typ)
		if err != nil {
			return 0, false
		}
		return t.Size(), true
	case *unaryExpr:
		v, ok := c.constVal[e.x]
		if !ok {
			return 0, false
		}
		switch e.op {
		case "-":
			return -v, true
		case "~":
			return ^v, true
		case "!":
			if v == 0 {
				return 1, true
			}
			return 0, true
		}
	case *binaryExpr:
		x, okx := c.constVal[e.x]
		y, oky := c.constVal[e.y]
		if !okx || !oky {
			return 0, false
		}
		// Only fold pure integer arithmetic (not pointer arithmetic).
		if t := c.exprType[e.x]; t != nil && !t.IsInteger() {
			return 0, false
		}
		switch e.op {
		case "+":
			return x + y, true
		case "-":
			return x - y, true
		case "*":
			return x * y, true
		case "/":
			if y != 0 {
				return x / y, true
			}
		case "%":
			if y != 0 {
				return x % y, true
			}
		case "<<":
			return x << (uint64(y) & 63), true
		case ">>":
			return x >> (uint64(y) & 63), true
		case "&":
			return x & y, true
		case "|":
			return x | y, true
		case "^":
			return x ^ y, true
		case "==":
			return b2i(x == y), true
		case "!=":
			return b2i(x != y), true
		case "<":
			return b2i(x < y), true
		case "<=":
			return b2i(x <= y), true
		case ">":
			return b2i(x > y), true
		case ">=":
			return b2i(x >= y), true
		case "&&":
			return b2i(x != 0 && y != 0), true
		case "||":
			return b2i(x != 0 || y != 0), true
		}
	case *castExpr:
		v, ok := c.constVal[e.x]
		if !ok {
			return 0, false
		}
		if t := c.exprType[e]; t != nil {
			from := c.exprType[e.x]
			fromFloat := from != nil && decay(from).Kind == KFloat
			if fromFloat && t.Kind != KFloat {
				v >>= 16 // leave the Q16.16 representation
			}
			switch t.Kind {
			case KChar:
				return int64(int8(v)), true
			case KInt:
				return int64(int32(v)), true
			case KLong:
				return v, true
			case KFloat:
				if !fromFloat {
					v <<= 16 // enter the Q16.16 representation
				}
				return v, true
			}
		}
	}
	return 0, false
}

// foldConst folds an expression that has not yet been checked (global
// initializers).
func (c *checker) foldConst(e expr) (int64, bool) {
	if _, err := c.checkExpr(e); err != nil {
		return 0, false
	}
	v, ok := c.constVal[e]
	return v, ok
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
