package cc

import (
	"fmt"
)

// checked is the semantically analyzed program handed to codegen.
type checked struct {
	files    []*file
	structs  map[string]*StructInfo
	typedefs map[string]*CType
	globals  []*Global
	globalBy map[string]*Global
	funcs    []*Function
	funcBy   map[string]*Function

	exprType map[expr]*CType
	identRef map[*identExpr]any // *LocalVar or *Global
	declVar  map[*declStmt]*LocalVar
	constVal map[expr]int64 // folded integer constants
	strOff   map[*strLit]int64
	dataSize int64
	data     []byte
}

// Global is a global variable after layout.
type Global struct {
	Name    string
	Type    *CType
	Off     int64 // offset within the data segment
	Init    int64
	HasInit bool
	File    string
	Line    int
}

// Function is a checked function.
type Function struct {
	Name   string
	Ret    *CType
	Params []*LocalVar
	Locals []*LocalVar // includes params
	Body   *blockStmt
	File   string
	Line   int
	src    *file
}

// LocalVar is a local variable or parameter.
type LocalVar struct {
	Name      string
	Type      *CType
	AddrTaken bool
	IsParam   bool
}

// builtin describes a runtime builtin function.
type builtin struct {
	name    string
	params  []*CType // nil entry means "any pointer"
	ret     *CType
	service int64 // machine syscall number, or special handling
}

type semaError struct {
	file string
	line int
	msg  string
}

func (e *semaError) Error() string { return fmt.Sprintf("%s:%d: %s", e.file, e.line, e.msg) }

type checker struct {
	*checked
	curFile   *file
	curFn     *Function
	scopes    []map[string]*LocalVar
	overrides map[string]*LayoutOverride
	usedOv    map[string]bool
}

func (c *checker) errf(line int, format string, args ...any) error {
	name := "?"
	if c.curFile != nil {
		name = c.curFile.name
	}
	return &semaError{file: name, line: line, msg: fmt.Sprintf(format, args...)}
}

// analyze type-checks the parsed files and lays out globals. overrides
// (keyed by struct name) replace the natural layout of the named
// structs; an override naming a struct the program never defines is an
// error, so a stale advisor recommendation cannot silently no-op.
func analyze(files []*file, overrides map[string]*LayoutOverride) (*checked, error) {
	c := &checker{overrides: overrides, usedOv: make(map[string]bool), checked: &checked{
		files:    files,
		structs:  make(map[string]*StructInfo),
		typedefs: make(map[string]*CType),
		globalBy: make(map[string]*Global),
		funcBy:   make(map[string]*Function),
		exprType: make(map[expr]*CType),
		identRef: make(map[*identExpr]any),
		declVar:  make(map[*declStmt]*LocalVar),
		constVal: make(map[expr]int64),
		strOff:   make(map[*strLit]int64),
	}}
	// Pass 1: types (structs, typedefs) in order of appearance.
	for _, f := range files {
		c.curFile = f
		for _, d := range f.decls {
			switch d := d.(type) {
			case *structDecl:
				if err := c.declStruct(d); err != nil {
					return nil, err
				}
			case *typedefDecl:
				ty, err := c.resolveType(d.typ)
				if err != nil {
					return nil, err
				}
				if ty.IsInteger() && ty.Typedef == "" {
					alias := *ty
					alias.Typedef = d.name
					ty = &alias
				}
				if _, dup := c.typedefs[d.name]; dup {
					return nil, c.errf(d.line, "typedef %s redefined", d.name)
				}
				c.typedefs[d.name] = ty
			}
		}
	}
	for name := range overrides {
		if !c.usedOv[name] {
			return nil, &semaError{file: files[0].name, line: 1,
				msg: fmt.Sprintf("layout override for undefined struct %s", name)}
		}
	}
	// Pass 2: globals and function signatures.
	for _, f := range files {
		c.curFile = f
		for _, d := range f.decls {
			switch d := d.(type) {
			case *varDecl:
				if err := c.declGlobal(d); err != nil {
					return nil, err
				}
			case *funcDecl:
				if err := c.declFunc(d); err != nil {
					return nil, err
				}
			}
		}
	}
	// Pass 3: function bodies.
	for _, fn := range c.funcs {
		if fn.Body == nil {
			return nil, &semaError{file: fn.File, line: fn.Line, msg: fmt.Sprintf("function %s declared but never defined", fn.Name)}
		}
		c.curFile = fn.src
		c.curFn = fn
		c.scopes = []map[string]*LocalVar{make(map[string]*LocalVar)}
		for _, p := range fn.Params {
			c.scopes[0][p.Name] = p
		}
		if err := c.checkStmt(fn.Body); err != nil {
			return nil, err
		}
	}
	if main := c.funcBy["main"]; main == nil {
		return nil, &semaError{file: files[0].name, line: 1, msg: "no main function"}
	}
	// Globals were laid out during pass 2; finalize the data image.
	c.buildData()
	return c.checked, nil
}

func (c *checker) declStruct(d *structDecl) error {
	if d.forward {
		if _, ok := c.structs[d.name]; !ok {
			c.structs[d.name] = &StructInfo{Name: d.name}
		}
		return nil
	}
	if prev, dup := c.structs[d.name]; dup && prev.Complete {
		return c.errf(d.line, "struct %s redefined", d.name)
	}
	si := c.structs[d.name]
	if si == nil {
		si = &StructInfo{Name: d.name}
		c.structs[d.name] = si // visible to its own fields (via pointers)
	}
	for _, fd := range d.fields {
		ty, err := c.resolveType(fd.typ)
		if err != nil {
			return err
		}
		if ty.Kind == KStruct && !ty.Struct.Complete {
			return c.errf(fd.line, "field %s has incomplete type struct %s", fd.name, ty.Struct.Name)
		}
		if ty.Kind == KVoid {
			return c.errf(fd.line, "field %s has void type", fd.name)
		}
		if _, f := si.Field(fd.name); f != nil {
			return c.errf(fd.line, "duplicate field %s in struct %s", fd.name, d.name)
		}
		si.Fields = append(si.Fields, Field{Name: fd.name, Type: ty, Union: fd.union})
	}
	if ov := c.overrides[d.name]; ov != nil {
		c.usedOv[d.name] = true
		if err := si.applyOverride(ov); err != nil {
			return c.errf(d.line, "%v", err)
		}
		return nil
	}
	if err := si.layout(); err != nil {
		return c.errf(d.line, "%v", err)
	}
	return nil
}

// resolveType converts a syntactic type to a *CType. Structs may be
// referenced before definition only through pointers.
func (c *checker) resolveType(te typeExpr) (*CType, error) {
	var base *CType
	switch te.base {
	case "long":
		base = tyLong
	case "int":
		base = tyInt
	case "char":
		base = tyChar
	case "float":
		base = tyFloat
	case "void":
		base = tyVoid
	default:
		if len(te.base) > 7 && te.base[:7] == "struct:" {
			name := te.base[7:]
			si, ok := c.structs[name]
			if !ok {
				if te.ptrDepth == 0 {
					return nil, c.errf(te.line, "unknown struct %s", name)
				}
				// Forward reference through a pointer.
				si = &StructInfo{Name: name}
				c.structs[name] = si
			}
			base = &CType{Kind: KStruct, Struct: si}
		} else if td, ok := c.typedefs[te.base]; ok {
			base = td
		} else {
			return nil, c.errf(te.line, "unknown type %s", te.base)
		}
	}
	for i := 0; i < te.ptrDepth; i++ {
		base = ptrTo(base)
	}
	if te.arrayLen >= 0 {
		if base.Kind == KVoid {
			return nil, c.errf(te.line, "array of void")
		}
		base = &CType{Kind: KArray, Elem: base, Count: te.arrayLen}
	}
	if base.Kind == KVoid && te.ptrDepth > 0 {
		return nil, c.errf(te.line, "void pointers are not supported; use char *")
	}
	return base, nil
}

func (c *checker) declGlobal(d *varDecl) error {
	if _, dup := c.globalBy[d.name]; dup {
		return c.errf(d.line, "global %s redefined", d.name)
	}
	ty, err := c.resolveType(d.typ)
	if err != nil {
		return err
	}
	if ty.Kind == KVoid || ty.Size() == 0 {
		return c.errf(d.line, "global %s has invalid type %s", d.name, ty)
	}
	g := &Global{Name: d.name, Type: ty, File: c.curFile.name, Line: d.line}
	if d.init != nil {
		v, ok := c.foldConst(d.init)
		if !ok {
			return c.errf(d.line, "global initializer for %s must be a constant", d.name)
		}
		if !ty.IsScalar() {
			return c.errf(d.line, "cannot initialize aggregate %s", d.name)
		}
		// Cross the Q16.16 representation boundary at compile time when
		// the initializer's float-ness differs from the global's type.
		if it := c.exprType[d.init]; it != nil {
			if ty.Kind == KFloat && it.Kind != KFloat {
				v <<= 16
			} else if ty.Kind != KFloat && it.Kind == KFloat {
				v >>= 16
			}
		}
		g.Init, g.HasInit = v, true
	}
	a := ty.Align()
	c.dataSize = (c.dataSize + a - 1) &^ (a - 1)
	g.Off = c.dataSize
	c.dataSize += ty.Size()
	c.globals = append(c.globals, g)
	c.globalBy[d.name] = g
	return nil
}

func (c *checker) declFunc(d *funcDecl) error {
	ret, err := c.resolveType(d.ret)
	if err != nil {
		return err
	}
	if ret.Kind != KVoid && !ret.IsScalar() {
		return c.errf(d.line, "function %s returns non-scalar type %s", d.name, ret)
	}
	if len(d.params) > 6 {
		return c.errf(d.line, "function %s has more than 6 parameters", d.name)
	}
	prev := c.funcBy[d.name]
	var fn *Function
	if prev != nil {
		if prev.Body != nil && d.body != nil {
			return c.errf(d.line, "function %s redefined", d.name)
		}
		fn = prev
	} else {
		fn = &Function{Name: d.name, Ret: ret, File: c.curFile.name, Line: d.line}
		for _, pd := range d.params {
			pt, err := c.resolveType(pd.typ)
			if err != nil {
				return err
			}
			if !pt.IsScalar() {
				return c.errf(pd.line, "parameter %s has non-scalar type %s", pd.name, pt)
			}
			lv := &LocalVar{Name: pd.name, Type: pt, IsParam: true}
			fn.Params = append(fn.Params, lv)
			fn.Locals = append(fn.Locals, lv)
		}
		c.funcs = append(c.funcs, fn)
		c.funcBy[d.name] = fn
	}
	if d.body != nil {
		fn.Body = d.body
		fn.src = c.curFile
		fn.File = c.curFile.name
		fn.Line = d.line
	}
	return nil
}

// buildData materializes the data segment image: global initializers and
// string literals.
func (c *checker) buildData() {
	c.data = make([]byte, c.dataSize)
	for _, g := range c.globals {
		if !g.HasInit {
			continue
		}
		v := uint64(g.Init)
		for i := int64(0); i < g.Type.Size(); i++ {
			c.data[g.Off+i] = byte(v)
			v >>= 8
		}
	}
}

// internString appends a string literal to the data segment (NUL
// terminated) and records its offset.
func (c *checker) internString(s *strLit) int64 {
	if off, ok := c.strOff[s]; ok {
		return off
	}
	off := c.dataSize
	c.strOff[s] = off
	c.dataSize += int64(len(s.val)) + 1
	return off
}

// --- statements ---

func (c *checker) pushScope() { c.scopes = append(c.scopes, make(map[string]*LocalVar)) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) lookup(name string) *LocalVar {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if lv, ok := c.scopes[i][name]; ok {
			return lv
		}
	}
	return nil
}

func (c *checker) checkStmt(s stmt) error {
	switch s := s.(type) {
	case *blockStmt:
		c.pushScope()
		defer c.popScope()
		for _, st := range s.stmts {
			if err := c.checkStmt(st); err != nil {
				return err
			}
		}
	case *declStmt:
		ty, err := c.resolveType(s.typ)
		if err != nil {
			return err
		}
		if ty.Kind == KVoid || ty.Size() == 0 {
			return c.errf(s.line, "local %s has invalid type %s", s.name, ty)
		}
		if _, dup := c.scopes[len(c.scopes)-1][s.name]; dup {
			return c.errf(s.line, "local %s redeclared in this scope", s.name)
		}
		lv := &LocalVar{Name: s.name, Type: ty}
		c.scopes[len(c.scopes)-1][s.name] = lv
		c.curFn.Locals = append(c.curFn.Locals, lv)
		c.declVar[s] = lv
		if s.init != nil {
			it, err := c.checkExpr(s.init)
			if err != nil {
				return err
			}
			if err := c.assignable(ty, it, s.init, s.line); err != nil {
				return err
			}
			if s.init, err = c.coerce(ty, s.init); err != nil {
				return err
			}
		}
	case *exprStmt:
		_, err := c.checkExpr(s.x)
		return err
	case *assignStmt:
		lt, err := c.checkExpr(s.lhs)
		if err != nil {
			return err
		}
		if !c.isLvalue(s.lhs) {
			return c.errf(s.line, "assignment to non-lvalue")
		}
		rt, err := c.checkExpr(s.rhs)
		if err != nil {
			return err
		}
		if s.op == "=" {
			if err := c.assignable(lt, rt, s.rhs, s.line); err != nil {
				return err
			}
			s.rhs, err = c.coerce(lt, s.rhs)
			return err
		}
		// Compound: lhs op rhs must type-check like the binary op.
		if lt.Kind == KPtr && (s.op == "+=" || s.op == "-=") {
			if !rt.IsInteger() {
				return c.errf(s.line, "pointer %s requires integer operand", s.op)
			}
			return nil
		}
		if lt.Kind == KFloat || decay(rt).Kind == KFloat {
			// Fixed-point compound assignment: the operation is performed
			// in the lhs type, with the rhs coerced across the Q16.16
			// boundary when needed.
			switch s.op {
			case "+=", "-=", "*=", "/=":
			default:
				return c.errf(s.line, "operator %s not supported on float", s.op)
			}
			if !lt.IsArith() || !decay(rt).IsArith() {
				return c.errf(s.line, "compound assignment requires arithmetic operands")
			}
			s.rhs, err = c.coerce(lt, s.rhs)
			return err
		}
		if !lt.IsInteger() || !rt.IsInteger() {
			return c.errf(s.line, "compound assignment requires integer operands")
		}
	case *incDecStmt:
		lt, err := c.checkExpr(s.lhs)
		if err != nil {
			return err
		}
		if !c.isLvalue(s.lhs) {
			return c.errf(s.line, "%s of non-lvalue", s.op)
		}
		if !lt.IsInteger() && lt.Kind != KPtr {
			return c.errf(s.line, "%s requires integer or pointer", s.op)
		}
	case *ifStmt:
		if err := c.checkCond(s.cond, s.line); err != nil {
			return err
		}
		if err := c.checkStmt(s.then); err != nil {
			return err
		}
		if s.els != nil {
			return c.checkStmt(s.els)
		}
	case *whileStmt:
		if err := c.checkCond(s.cond, s.line); err != nil {
			return err
		}
		return c.checkStmt(s.body)
	case *doWhileStmt:
		if err := c.checkStmt(s.body); err != nil {
			return err
		}
		return c.checkCond(s.cond, s.line)
	case *forStmt:
		c.pushScope()
		defer c.popScope()
		if s.init != nil {
			if err := c.checkStmt(s.init); err != nil {
				return err
			}
		}
		if s.cond != nil {
			if err := c.checkCond(s.cond, s.line); err != nil {
				return err
			}
		}
		if s.post != nil {
			if err := c.checkStmt(s.post); err != nil {
				return err
			}
		}
		return c.checkStmt(s.body)
	case *returnStmt:
		if c.curFn.Ret.Kind == KVoid {
			if s.x != nil {
				return c.errf(s.line, "void function %s returns a value", c.curFn.Name)
			}
			return nil
		}
		if s.x == nil {
			return c.errf(s.line, "function %s must return a value", c.curFn.Name)
		}
		rt, err := c.checkExpr(s.x)
		if err != nil {
			return err
		}
		if err := c.assignable(c.curFn.Ret, rt, s.x, s.line); err != nil {
			return err
		}
		s.x, err = c.coerce(c.curFn.Ret, s.x)
		return err
	case *breakStmt, *continueStmt:
		// Loop-nesting validation happens in codegen, which tracks labels.
	}
	return nil
}

func (c *checker) checkCond(e expr, line int) error {
	t, err := c.checkExpr(e)
	if err != nil {
		return err
	}
	if !t.IsScalar() {
		return c.errf(line, "condition has non-scalar type %s", t)
	}
	return nil
}

// assignable checks whether a value of type from can be assigned to type
// to. Arithmetic types (integers and the Q16.16 float) interconvert —
// callers insert the representation-changing coercion via coerce —
// pointers must match exactly, except the constant 0 and char* (the
// malloc result type) convert to any pointer.
func (c *checker) assignable(to, from *CType, fromExpr expr, line int) error {
	if to.IsArith() && from.IsArith() {
		return nil
	}
	if to.Kind == KPtr {
		if from.Kind == KPtr && (to.Elem.same(from.Elem) || from.Elem.Kind == KChar || to.Elem.Kind == KChar) {
			return nil
		}
		if v, ok := c.constVal[fromExpr]; ok && v == 0 {
			return nil
		}
		if from.Kind == KArray && to.Elem.same(from.Elem) {
			return nil
		}
	}
	return c.errf(line, "cannot assign %s to %s", from, to)
}

// coerce wraps e in a synthesized cast to `to` when the value crosses
// the float/integer representation boundary, so codegen emits the Q16.16
// shift. Returns e unchanged when no representation change is needed.
func (c *checker) coerce(to *CType, e expr) (expr, error) {
	from := c.exprType[e]
	if from == nil || to == nil {
		return e, nil
	}
	from = decay(from)
	var base string
	switch {
	case to.Kind == KFloat && from.IsInteger():
		base = "float"
	case to.IsInteger() && from.Kind == KFloat:
		base = map[CKind]string{KLong: "long", KInt: "int", KChar: "char"}[to.Kind]
	default:
		return e, nil
	}
	cast := &castExpr{typ: typeExpr{base: base, arrayLen: -1, line: e.pos()}, x: e, line: e.pos()}
	if _, err := c.checkExpr(cast); err != nil {
		return nil, err
	}
	return cast, nil
}

func (c *checker) isLvalue(e expr) bool {
	switch e := e.(type) {
	case *identExpr:
		_, isVar := c.identRef[e].(*LocalVar)
		_, isGlob := c.identRef[e].(*Global)
		if t := c.exprType[e]; t != nil && t.Kind == KArray {
			return false
		}
		return isVar || isGlob
	case *unaryExpr:
		return e.op == "*"
	case *memberExpr, *indexExpr:
		return true
	}
	return false
}
