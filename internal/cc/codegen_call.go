package cc

import (
	"sort"

	"dsprof/internal/isa"
)

// genCall compiles a function or builtin call.
//
// Calling sequence: each argument is evaluated and spilled to a dedicated
// stack slot; every other live temporary is spilled as well (the
// temporary registers are caller-saved); the arguments are then reloaded
// into %o0..%o5, the call is emitted with a nop delay slot, the %o0 result
// is moved into a fresh temporary, and the spilled live temporaries are
// restored.
func (g *fnGen) genCall(e *callExpr) (val, error) {
	if b, ok := builtins[e.fn]; ok {
		return g.genBuiltin(e, b)
	}
	if len(e.args) > len(argRegs) {
		return val{}, g.errf(e.line, "too many arguments")
	}

	// Evaluate and park each argument in its slot. The slot floor rises
	// as arguments are parked so that calls nested in later arguments
	// allocate their own slots above ours.
	base := g.slotFloor
	for i, a := range e.args {
		v, err := g.genExpr(a)
		if err != nil {
			return val{}, err
		}
		g.emitMem(isa.Instr{Op: isa.StX, Rd: v.reg, Rs1: isa.SP, UseImm: true, Imm: g.spillSlotOff(base + i)}, tempXref)
		g.free(v)
		g.slotFloor = base + i + 1
	}
	// Spill every remaining live temporary.
	spills := g.spillLive()
	// Load arguments into the argument registers.
	for i := range e.args {
		g.emitMem(isa.Instr{Op: isa.LdX, Rd: argRegs[i], Rs1: isa.SP, UseImm: true, Imm: g.spillSlotOff(base + i)}, tempXref)
	}
	g.padJoin()
	ci := g.b.EmitCall(e.fn)
	if g.curLine > 0 {
		g.co.tab.Lines[g.b.AddrOf(ci)] = g.curLine
	}
	g.sinceMem++
	g.emit(isa.Instr{Op: isa.Nop}) // delay slot

	res, err := g.finishCall(e, spills)
	g.slotFloor = base
	return res, err
}

// spillLive stores all currently live temporaries to spill slots above
// the current slot floor and returns the (register, slot) pairs. No
// nested expression evaluation happens between the spill and the restore,
// so these slots cannot be clobbered.
type spillPair struct {
	reg  isa.Reg
	slot int
}

func (g *fnGen) spillLive() []spillPair {
	regs := make([]isa.Reg, 0, len(g.tempInUse))
	for r := range g.tempInUse {
		regs = append(regs, r)
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i] < regs[j] })
	spills := make([]spillPair, 0, len(regs))
	for i, r := range regs {
		slot := g.slotFloor + i
		g.emitMem(isa.Instr{Op: isa.StX, Rd: r, Rs1: isa.SP, UseImm: true, Imm: g.spillSlotOff(slot)}, tempXref)
		spills = append(spills, spillPair{reg: r, slot: slot})
	}
	return spills
}

// finishCall captures the %o0 result and restores spilled temporaries.
func (g *fnGen) finishCall(e *callExpr, spills []spillPair) (val, error) {
	res, err := g.allocTemp(e.line)
	if err != nil {
		return val{}, err
	}
	g.emit(isa.Instr{Op: isa.Or, Rd: res, Rs1: isa.G0, Rs2: isa.O0})
	for _, s := range spills {
		g.emitMem(isa.Instr{Op: isa.LdX, Rd: s.reg, Rs1: isa.SP, UseImm: true, Imm: g.spillSlotOff(s.slot)}, tempXref)
	}
	return val{reg: res, temp: true}, nil
}

// genBuiltin compiles a runtime-service builtin.
func (g *fnGen) genBuiltin(e *callExpr, b *builtin) (val, error) {
	if b.name == "prefetch" {
		v, err := g.genExpr(e.args[0])
		if err != nil {
			return val{}, err
		}
		g.emitMem(isa.Instr{Op: isa.Prefetch, Rs1: v.reg, UseImm: true, Imm: 0}, nil)
		g.free(v)
		return val{reg: isa.G0, temp: false}, nil
	}
	base := g.slotFloor
	for i, a := range e.args {
		v, err := g.genExpr(a)
		if err != nil {
			return val{}, err
		}
		g.emitMem(isa.Instr{Op: isa.StX, Rd: v.reg, Rs1: isa.SP, UseImm: true, Imm: g.spillSlotOff(base + i)}, tempXref)
		g.free(v)
		g.slotFloor = base + i + 1
	}
	spills := g.spillLive()
	for i := range e.args {
		g.emitMem(isa.Instr{Op: isa.LdX, Rd: argRegs[i], Rs1: isa.SP, UseImm: true, Imm: g.spillSlotOff(base + i)}, tempXref)
	}
	g.padJoin()
	g.emit(isa.Instr{Op: isa.Syscall, UseImm: true, Imm: int32(b.service)})
	res, err := g.finishCall(e, spills)
	g.slotFloor = base
	return res, err
}
