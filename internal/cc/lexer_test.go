package cc

import "testing"

func lexOK(t *testing.T, src string) []token {
	t.Helper()
	toks, err := lex("t.mc", src)
	if err != nil {
		t.Fatalf("lex(%q): %v", src, err)
	}
	return toks
}

func TestLexBasics(t *testing.T) {
	toks := lexOK(t, "long x = 42;")
	kinds := []tokKind{tokKeyword, tokIdent, tokPunct, tokNumber, tokPunct, tokEOF}
	texts := []string{"long", "x", "=", "", ";", ""}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens: %v", len(toks), toks)
	}
	for i := range kinds {
		if toks[i].kind != kinds[i] {
			t.Errorf("token %d kind = %v, want %v", i, toks[i].kind, kinds[i])
		}
		if texts[i] != "" && toks[i].text != texts[i] {
			t.Errorf("token %d text = %q, want %q", i, toks[i].text, texts[i])
		}
	}
	if toks[3].val != 42 {
		t.Errorf("number value = %d", toks[3].val)
	}
}

func TestLexHexAndLineNumbers(t *testing.T) {
	toks := lexOK(t, "0x10\n0xFF\n7")
	if toks[0].val != 16 || toks[1].val != 255 || toks[2].val != 7 {
		t.Errorf("values: %d %d %d", toks[0].val, toks[1].val, toks[2].val)
	}
	if toks[0].line != 1 || toks[1].line != 2 || toks[2].line != 3 {
		t.Errorf("lines: %d %d %d", toks[0].line, toks[1].line, toks[2].line)
	}
}

func TestLexMaximalMunch(t *testing.T) {
	toks := lexOK(t, "a->b <<= 1 >> 2 <= 3 == 4 && x++")
	var ops []string
	for _, tk := range toks {
		if tk.kind == tokPunct {
			ops = append(ops, tk.text)
		}
	}
	want := []string{"->", "<<=", ">>", "<=", "==", "&&", "++"}
	if len(ops) != len(want) {
		t.Fatalf("ops = %v", ops)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Errorf("op %d = %q, want %q", i, ops[i], want[i])
		}
	}
}

func TestLexComments(t *testing.T) {
	toks := lexOK(t, `
// line comment with long and struct keywords
a /* block
comment */ b`)
	if len(toks) != 3 || toks[0].text != "a" || toks[1].text != "b" {
		t.Errorf("tokens = %v", toks)
	}
	if toks[1].line != 4 {
		t.Errorf("b on line %d, want 4 (block comment newlines counted)", toks[1].line)
	}
}

func TestLexStringsAndChars(t *testing.T) {
	toks := lexOK(t, `"hi\n\t\"x\"" 'A' '\n' '\\'`)
	if toks[0].kind != tokString || toks[0].text != "hi\n\t\"x\"" {
		t.Errorf("string = %q", toks[0].text)
	}
	if toks[1].val != 'A' || toks[2].val != '\n' || toks[3].val != '\\' {
		t.Errorf("chars = %d %d %d", toks[1].val, toks[2].val, toks[3].val)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{
		`"unterminated`,
		`'a`,
		`'\q'`,
		"/* unterminated",
		"`",
		`"bad \q escape"`,
	} {
		if _, err := lex("t.mc", src); err == nil {
			t.Errorf("lex(%q) succeeded", src)
		}
	}
}

func TestLexErrorPosition(t *testing.T) {
	_, err := lex("file.mc", "a\nb\n\"oops")
	if err == nil {
		t.Fatal("no error")
	}
	le, ok := err.(*lexError)
	if !ok || le.line != 3 || le.file != "file.mc" {
		t.Errorf("error position = %v", err)
	}
}

func TestLexKeywordsVsIdents(t *testing.T) {
	toks := lexOK(t, "while whilex longlong struct structs")
	wantKinds := []tokKind{tokKeyword, tokIdent, tokIdent, tokKeyword, tokIdent}
	for i, k := range wantKinds {
		if toks[i].kind != k {
			t.Errorf("token %q kind = %v, want %v", toks[i].text, toks[i].kind, k)
		}
	}
}
