package cc

import (
	"fmt"
	"strings"
	"testing"

	"dsprof/internal/isa"
	"dsprof/internal/machine"
	"dsprof/internal/xrand"
)

// Differential property test: generate random integer expressions, compile
// and run them, and compare against direct Go evaluation. This exercises
// the lexer, parser, constant folder, code generator and the machine ALU
// end to end.

type exprGen struct {
	r    *xrand.Rand
	vars []string
	vals map[string]int64
}

// gen returns the expression source and its expected value. Division and
// remainder are excluded (trap semantics differ from Go only at MinInt64,
// but zero divisors would need guards); shifts use bounded counts.
func (eg *exprGen) gen(depth int) (string, int64) {
	if depth == 0 || eg.r.Intn(4) == 0 {
		if len(eg.vars) > 0 && eg.r.Intn(2) == 0 {
			v := eg.vars[eg.r.Intn(len(eg.vars))]
			return v, eg.vals[v]
		}
		c := int64(eg.r.Intn(2000) - 1000)
		if c < 0 {
			return fmt.Sprintf("(%d)", c), c
		}
		return fmt.Sprintf("%d", c), c
	}
	switch eg.r.Intn(10) {
	case 0, 1:
		x, xv := eg.gen(depth - 1)
		y, yv := eg.gen(depth - 1)
		return fmt.Sprintf("(%s + %s)", x, y), xv + yv
	case 2, 3:
		x, xv := eg.gen(depth - 1)
		y, yv := eg.gen(depth - 1)
		return fmt.Sprintf("(%s - %s)", x, y), xv - yv
	case 4:
		x, xv := eg.gen(depth - 1)
		y, yv := eg.gen(depth - 1)
		return fmt.Sprintf("(%s * %s)", x, y), xv * yv
	case 5:
		x, xv := eg.gen(depth - 1)
		y, yv := eg.gen(depth - 1)
		return fmt.Sprintf("(%s & %s)", x, y), xv & yv
	case 6:
		x, xv := eg.gen(depth - 1)
		y, yv := eg.gen(depth - 1)
		return fmt.Sprintf("(%s | %s)", x, y), xv | yv
	case 7:
		x, xv := eg.gen(depth - 1)
		y, yv := eg.gen(depth - 1)
		return fmt.Sprintf("(%s ^ %s)", x, y), xv ^ yv
	case 8:
		x, xv := eg.gen(depth - 1)
		sh := eg.r.Intn(8)
		return fmt.Sprintf("(%s << %d)", x, sh), xv << sh
	default:
		x, xv := eg.gen(depth - 1)
		y, yv := eg.gen(depth - 1)
		cmp := []string{"<", "<=", ">", ">=", "==", "!="}[eg.r.Intn(6)]
		var b int64
		switch cmp {
		case "<":
			b = b2i(xv < yv)
		case "<=":
			b = b2i(xv <= yv)
		case ">":
			b = b2i(xv > yv)
		case ">=":
			b = b2i(xv >= yv)
		case "==":
			b = b2i(xv == yv)
		case "!=":
			b = b2i(xv != yv)
		}
		return fmt.Sprintf("(%s %s %s)", x, cmp, y), b
	}
}

func TestRandomExpressionsDifferential(t *testing.T) {
	r := xrand.New(20260706)
	for trial := 0; trial < 60; trial++ {
		eg := &exprGen{r: r, vals: make(map[string]int64)}
		var decls strings.Builder
		for i := 0; i < 4; i++ {
			name := fmt.Sprintf("v%d", i)
			v := int64(r.Intn(5000) - 2500)
			eg.vars = append(eg.vars, name)
			eg.vals[name] = v
			fmt.Fprintf(&decls, "\tlong %s;\n\t%s = %d;\n", name, name, v)
		}
		var outs strings.Builder
		var want []int64
		for i := 0; i < 5; i++ {
			src, v := eg.gen(4)
			fmt.Fprintf(&outs, "\twrite_long(%s);\n", src)
			want = append(want, v)
		}
		src := fmt.Sprintf("long main() {\n%s%s\treturn 0;\n}\n", decls.String(), outs.String())
		prog, err := Compile([]Source{{Name: "prop.mc", Text: src}}, Options{HWCProf: trial%2 == 0})
		if err != nil {
			t.Fatalf("trial %d: compile: %v\nsource:\n%s", trial, err, src)
		}
		cfg := machine.DefaultConfig()
		cfg.MaxInstrs = 10_000_000
		m, err := machine.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.LoadProgram(prog.Text, prog.Data, prog.Entry); err != nil {
			t.Fatal(err)
		}
		if err := m.Run(); err != nil {
			t.Fatalf("trial %d: run: %v\nsource:\n%s", trial, err, src)
		}
		got := m.OutputLongs()
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d outputs, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d output %d: got %d, want %d\nsource:\n%s", trial, i, got[i], want[i], src)
			}
		}
	}
}

// Differential test for the ternary and logical operators with side-effect
// free operands under many random inputs.
func TestLogicalOpsDifferential(t *testing.T) {
	src := `
long f(long a, long b) {
	long r;
	r = 0;
	if (a > 0 && b > 0) { r += 1; }
	if (a > 0 || b > 0) { r += 10; }
	if (!(a == b)) { r += 100; }
	r += (a > b) ? 1000 : 2000;
	r += (a != 0) * 7;
	return r;
}
long main() {
	long a;
	long b;
	a = read_long();
	b = read_long();
	write_long(f(a, b));
	return 0;
}`
	prog, err := Compile([]Source{{Name: "logic.mc", Text: src}}, Options{HWCProf: true})
	if err != nil {
		t.Fatal(err)
	}
	ref := func(a, b int64) int64 {
		var r int64
		if a > 0 && b > 0 {
			r++
		}
		if a > 0 || b > 0 {
			r += 10
		}
		if a != b {
			r += 100
		}
		if a > b {
			r += 1000
		} else {
			r += 2000
		}
		if a != 0 {
			r += 7
		}
		return r
	}
	r := xrand.New(9)
	for i := 0; i < 50; i++ {
		a, b := int64(r.Intn(7)-3), int64(r.Intn(7)-3)
		cfg := machine.DefaultConfig()
		m, _ := machine.New(cfg)
		if err := m.LoadProgram(prog.Text, prog.Data, prog.Entry); err != nil {
			t.Fatal(err)
		}
		m.SetInput([]int64{a, b})
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		if got := m.OutputLongs()[0]; got != ref(a, b) {
			t.Fatalf("f(%d,%d) = %d, want %d", a, b, got, ref(a, b))
		}
	}
}

// The generated code must never leak temporaries: every function returns
// with the same callee-saved register contents it was called with. Run a
// program that calls a complex function repeatedly and verify results stay
// consistent.
func TestCalleeSavedDiscipline(t *testing.T) {
	out := run(t, `
long mix(long a, long b) {
	long t1; long t2; long t3; long t4; long t5;
	t1 = a + b; t2 = a - b; t3 = a * 2; t4 = b * 3; t5 = t1 * t2;
	return t5 + t3 - t4;
}
long main() {
	long i;
	long acc;
	long keep;
	keep = 12345;
	acc = 0;
	for (i = 0; i < 10; i++) {
		acc += mix(i, i + 1);
	}
	write_long(acc);
	write_long(keep);
	return 0;
}`)
	var acc int64
	for i := int64(0); i < 10; i++ {
		a, b := i, i+1
		t1, t2, t3, t4 := a+b, a-b, a*2, b*3
		acc += t1*t2 + t3 - t4
	}
	expect(t, out, acc, 12345)
}

// Sanity: the paper's node struct layout (Figure 7) reproduces exactly in
// our struct layout engine.
func TestPaperNodeLayout(t *testing.T) {
	src := `
typedef long cost_t;
typedef long flow_t;
struct arc { long dummy; };
struct node {
	long number;
	char *ident;
	struct node *pred;
	struct node *child;
	struct node *sibling;
	struct node *sibling_prev;
	long depth;
	long orientation;
	struct arc *basic_arc;
	struct arc *firstout;
	struct arc *firstin;
	cost_t potential;
	flow_t flow;
	long mark;
	long time;
};
long main() { return sizeof(struct node); }
`
	prog := compileSrc(t, src, Options{HWCProf: true})
	m := runProg(t, prog, nil)
	if m.Regs[isa.O0] != 120 {
		t.Fatalf("sizeof(node) = %d, want 120 (paper)", m.Regs[isa.O0])
	}
	_, node := prog.Debug.TypeByName("node")
	wantOffs := map[string]int64{
		"number": 0, "ident": 8, "pred": 16, "child": 24, "sibling": 32,
		"sibling_prev": 40, "depth": 48, "orientation": 56, "basic_arc": 64,
		"firstout": 72, "firstin": 80, "potential": 88, "flow": 96,
		"mark": 104, "time": 112,
	}
	for _, mem := range node.Members {
		if want, ok := wantOffs[mem.Name]; !ok || mem.Off != want {
			t.Errorf("member %s at offset %d, want %d", mem.Name, mem.Off, wantOffs[mem.Name])
		}
	}
}
