package cc

import (
	"strings"
	"testing"
)

// The advisor's layout-override hook: same program, transformed struct
// layout, identical observable behavior.

const layoutSrc = `
struct point { long x; long y; long z; };
long main() {
	struct point *p;
	p = (struct point *) malloc(sizeof(struct point));
	p->x = 3;
	p->y = 40;
	p->z = 500;
	write_long(p->x + p->y + p->z);
	write_long(p->z - p->x);
	free((char *) p);
	return 0;
}`

func TestLayoutOverrideReorder(t *testing.T) {
	base := compileSrc(t, layoutSrc, Options{HWCProf: true})
	prog := compileSrc(t, layoutSrc, Options{
		HWCProf: true,
		LayoutOverrides: map[string]*LayoutOverride{
			"point": {Order: []string{"z", "x", "y"}},
		},
	})
	_, ty := prog.Debug.TypeByName("point")
	if ty == nil {
		t.Fatal("struct point missing from debug tables")
	}
	off := map[string]int64{}
	for _, m := range ty.Members {
		off[m.Name] = m.Off
	}
	if off["z"] != 0 || off["x"] != 8 || off["y"] != 16 {
		t.Errorf("reordered offsets = %v, want z=0 x=8 y=16", off)
	}
	// The transformation is observation-equivalent: both programs write
	// the same longs.
	want := runProg(t, base, nil).OutputLongs()
	got := runProg(t, prog, nil).OutputLongs()
	if len(want) != len(got) {
		t.Fatalf("output %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("output %v, want %v", got, want)
		}
	}
}

func TestLayoutOverridePad(t *testing.T) {
	prog := compileSrc(t, layoutSrc, Options{
		HWCProf: true,
		LayoutOverrides: map[string]*LayoutOverride{
			"point": {PadTo: 32},
		},
	})
	_, ty := prog.Debug.TypeByName("point")
	if ty == nil || ty.Size != 32 {
		t.Fatalf("padded struct = %+v, want size 32", ty)
	}
	m := runProg(t, prog, nil)
	out := m.OutputLongs()
	if len(out) != 2 || out[0] != 543 || out[1] != 497 {
		t.Errorf("padded program output = %v", out)
	}
}

func TestLayoutOverrideErrors(t *testing.T) {
	cases := []struct {
		name string
		ov   map[string]*LayoutOverride
		want string
	}{
		{"undefined struct", map[string]*LayoutOverride{"ghost": {PadTo: 32}}, "undefined struct"},
		{"unknown field", map[string]*LayoutOverride{"point": {Order: []string{"x", "y", "w"}}}, "unknown field"},
		{"repeated field", map[string]*LayoutOverride{"point": {Order: []string{"x", "x", "y"}}}, "repeats"},
		{"missing field", map[string]*LayoutOverride{"point": {Order: []string{"x", "y"}}}, "struct has 3"},
		{"pad below size", map[string]*LayoutOverride{"point": {PadTo: 16}}, "below natural size"},
		{"pad misaligned", map[string]*LayoutOverride{"point": {PadTo: 36}}, "multiple"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Compile(
				[]Source{{Name: "test.mc", Text: layoutSrc}},
				Options{HWCProf: true, LayoutOverrides: tc.ov},
			)
			if err == nil {
				t.Fatalf("compile accepted bad override %v", tc.ov)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
