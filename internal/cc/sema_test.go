package cc

import (
	"strings"
	"testing"
)

func analyzeSrc(t *testing.T, src string) (*checked, error) {
	t.Helper()
	f, err := parse(Source{Name: "t.mc", Text: src}, map[string]bool{})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return analyze([]*file{f}, nil)
}

func TestStructLayoutRules(t *testing.T) {
	chk, err := analyzeSrc(t, `
struct mixed { char c; long l; int i; char d; };
long main() { return sizeof(struct mixed); }`)
	if err != nil {
		t.Fatal(err)
	}
	si := chk.structs["mixed"]
	// c at 0, l at 8 (aligned), i at 16, d at 20; size rounds to 24.
	offs := map[string]int64{"c": 0, "l": 8, "i": 16, "d": 20}
	for _, f := range si.Fields {
		if f.Off != offs[f.Name] {
			t.Errorf("field %s at %d, want %d", f.Name, f.Off, offs[f.Name])
		}
	}
	if si.Size != 24 || si.Align != 8 {
		t.Errorf("size=%d align=%d", si.Size, si.Align)
	}
}

func TestStructArrayFieldLayout(t *testing.T) {
	chk, err := analyzeSrc(t, `
struct v { char name[13]; long x; };
long main() { return sizeof(struct v); }`)
	if err != nil {
		t.Fatal(err)
	}
	si := chk.structs["v"]
	if si.Fields[1].Off != 16 || si.Size != 24 {
		t.Errorf("array field layout: x at %d, size %d", si.Fields[1].Off, si.Size)
	}
}

func TestGlobalLayoutAlignment(t *testing.T) {
	chk, err := analyzeSrc(t, `
char a;
long b;
char c;
int d;
long main() { return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	offs := map[string]int64{}
	for _, g := range chk.globals {
		offs[g.Name] = g.Off
	}
	if offs["a"] != 0 || offs["b"] != 8 || offs["c"] != 16 || offs["d"] != 20 {
		t.Errorf("global offsets: %v", offs)
	}
}

func TestTypeErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"deref non-pointer", `long main() { long x; x = 0; return *x; }`, "dereference"},
		{"index non-pointer", `long main() { long x; x = 0; return x[0]; }`, "indexing"},
		{"bad field", `struct s { long a; }; long main() { struct s *p; p = 0; return p->zzz; }`, "no field"},
		{"dot on pointer", `struct s { long a; }; long main() { struct s *p; p = 0; return p.a; }`, ". on non-struct"},
		{"void local", `long main() { void v; return 0; }`, ""},
		{"incomplete struct value", `struct fwd; long main() { struct fwd x; return 0; }`, ""},
		{"dup field", `struct s { long a; long a; }; long main() { return 0; }`, "duplicate field"},
		{"dup local", `long main() { long x; long x; return 0; }`, "redeclared"},
		{"undeclared", `long main() { return nope; }`, "undefined identifier"},
		{"assign struct ptr mismatch", `struct a { long x; }; struct b { long x; };
			long main() { struct a *p; struct b *q; p = 0; q = p; return 0; }`, "cannot assign"},
		{"return value from void", `void f() { return 5; } long main() { return 0; }`, "returns a value"},
		{"missing return value", `long f() { return; } long main() { return f(); }`, "must return"},
		{"ptr plus ptr", `long main() { long *a; long *b; a = 0; b = 0; return (long)(a + b); }`, "invalid operands"},
		{"incompatible ptr diff", `struct a { long x; }; struct b { long y; };
			long main() { struct a *p; struct b *q; p = 0; q = 0; return p - q; }`, "incompatible"},
		{"sizeof incomplete", `struct fwd; long main() { return sizeof(struct fwd); }`, ""},
		{"nonconst global init", `long g = h; long h; long main() { return 0; }`, "constant"},
		{"typedef redef", `typedef long a; typedef long a; long main() { return 0; }`, "redefined"},
		{"continue outside loop", `long main() { continue; return 0; }`, "outside loop"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Compile([]Source{{Name: "t.mc", Text: c.src}}, Options{}); err == nil {
				t.Errorf("compile succeeded")
			} else if c.want != "" && !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q missing %q", err.Error(), c.want)
			}
		})
	}
}

func TestImplicitConversionsAllowed(t *testing.T) {
	srcs := []string{
		// integer widths interconvert
		`long main() { char c; int i; long l; c = 1; i = c; l = i; c = (char) l; return l; }`,
		// 0 converts to any pointer
		`struct s { long a; }; long main() { struct s *p; p = 0; return p == 0; }`,
		// char* (malloc) converts to any pointer and back
		`struct s { long a; }; long main() { struct s *p; char *raw;
			p = (struct s *) malloc(8); raw = (char *) p; free(raw); return 0; }`,
		// arrays decay in calls and arithmetic
		`long sum(long *p, long n) { long i; long s; s = 0; for (i = 0; i < n; i++) { s += p[i]; } return s; }
		 long a[4]; long main() { return sum(a, 4); }`,
		// address-of member and element
		`struct s { long a; long b; }; struct s g;
		 long main() { long *p; p = &g.b; *p = 7; return g.b; }`,
	}
	for i, src := range srcs {
		if _, err := Compile([]Source{{Name: "t.mc", Text: src}}, Options{}); err != nil {
			t.Errorf("case %d: %v", i, err)
		}
	}
}

func TestConstFolding(t *testing.T) {
	chk, err := analyzeSrc(t, `
long a = 2 + 3 * 4;
long b = 1 << 10;
long c = -(7);
long d = 100 / 3;
long e = (5 > 3) * 10;
long main() { return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{"a": 14, "b": 1024, "c": -7, "d": 33, "e": 10}
	for _, g := range chk.globals {
		if w, ok := want[g.Name]; ok {
			if !g.HasInit || g.Init != w {
				t.Errorf("global %s = %d (init=%v), want %d", g.Name, g.Init, g.HasInit, w)
			}
		}
	}
}

func TestAddrTakenForcesStack(t *testing.T) {
	chk, err := analyzeSrc(t, `
void f(long *p) { *p = 1; }
long main() {
	long x;
	long y;
	x = 0;
	y = 0;
	f(&x);
	return x + y;
}`)
	if err != nil {
		t.Fatal(err)
	}
	main := chk.funcBy["main"]
	var x, y *LocalVar
	for _, lv := range main.Locals {
		switch lv.Name {
		case "x":
			x = lv
		case "y":
			y = lv
		}
	}
	if x == nil || !x.AddrTaken {
		t.Error("x should be marked address-taken")
	}
	if y == nil || y.AddrTaken {
		t.Error("y should not be address-taken")
	}
}
