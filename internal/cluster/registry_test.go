package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"dsprof/internal/profd"
)

func info(id string, capacity int) NodeInfo {
	return NodeInfo{ID: id, URL: "http://" + id + ".invalid", Capacity: capacity}
}

func TestRegistryAcquireBounds(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(info("a", 1)); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(info("b", 1)); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	n1, err := r.Acquire(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := r.Acquire(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n1.ID() == n2.ID() {
		t.Fatalf("both slots on %s despite capacity 1", n1.ID())
	}
	// Capacity exhausted: a third Acquire blocks until a release.
	acquired := make(chan *Node)
	go func() {
		n, err := r.Acquire(ctx, nil)
		if err != nil {
			t.Error(err)
		}
		acquired <- n
	}()
	select {
	case n := <-acquired:
		t.Fatalf("Acquire returned %s with no free slots", n.ID())
	case <-time.After(50 * time.Millisecond):
	}
	r.Release(n1)
	select {
	case n := <-acquired:
		if n.ID() != n1.ID() {
			t.Errorf("freed slot on %s, acquired %s", n1.ID(), n.ID())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Acquire still blocked after release")
	}
	// A cancelled context unblocks a waiter with an error (both nodes'
	// slots are held at this point, so the Acquire must block).
	cctx, cancel := context.WithCancel(context.Background())
	errs := make(chan error)
	go func() {
		_, err := r.Acquire(cctx, nil)
		errs <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-errs:
		if err == nil {
			t.Error("cancelled Acquire returned nil error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled Acquire never returned")
	}
}

func TestRegistryLeastLoadedAndExclusion(t *testing.T) {
	r := NewRegistry()
	r.Register(info("a", 4))
	r.Register(info("b", 4))
	ctx := context.Background()
	// Ties break by ID: first slot lands on a, second (a loaded) on b.
	n1, _ := r.Acquire(ctx, nil)
	if n1.ID() != "a" {
		t.Fatalf("first acquire on %s, want a", n1.ID())
	}
	n2, _ := r.Acquire(ctx, nil)
	if n2.ID() != "b" {
		t.Fatalf("second acquire on %s, want b (least-loaded)", n2.ID())
	}
	// Exclusion avoids a node while an alternative exists...
	n3, _ := r.Acquire(ctx, map[string]bool{"a": true})
	if n3.ID() != "b" {
		t.Fatalf("excluded acquire on %s, want b", n3.ID())
	}
	// ...but falls back to the excluded node as a last resort.
	r.MarkDead("b", "test")
	n4, _ := r.Acquire(ctx, map[string]bool{"a": true})
	if n4.ID() != "a" {
		t.Fatalf("last-resort acquire on %s, want a", n4.ID())
	}
	live, dead, inflight := r.Counts()
	if live != 1 || dead != 1 || inflight != 4 {
		t.Errorf("counts live=%d dead=%d inflight=%d, want 1/1/4", live, dead, inflight)
	}
}

// TestRegistryProbeBackoff drives the health state machine directly:
// consecutive failures kill a node and back its probing off
// exponentially; one success revives it.
func TestRegistryProbeBackoff(t *testing.T) {
	r := NewRegistry()
	r.Register(info("a", 1))
	fail := func() { r.probeResult("a", WorkerStats{}, context.DeadlineExceeded, 3) }

	fail()
	fail()
	if !r.Live("a") {
		t.Fatal("node dead before maxFails")
	}
	fail() // third consecutive failure
	if r.Live("a") {
		t.Fatal("node live after maxFails failures")
	}
	// Dead node skips 1 round, then 2, then 4... capped.
	wantSkips := []int{1, 2, 4, 8, 16, 16}
	for i, want := range wantSkips {
		// Drain the scheduled skips: the node must be absent from the
		// due list exactly `want` times.
		for s := 0; s < want; s++ {
			if due := r.probeTargets(); len(due) != 0 {
				t.Fatalf("round %d: node probed during backoff (skip %d/%d)", i, s, want)
			}
		}
		if due := r.probeTargets(); len(due) != 1 {
			t.Fatalf("round %d: node not due after backoff", i)
		}
		fail()
	}
	// Revival: one good probe and the node is live and probed every
	// round again.
	r.probeResult("a", WorkerStats{ID: "a", PartialCacheHits: 3, PartialCacheMisses: 1}, nil, 3)
	if !r.Live("a") {
		t.Fatal("node not revived by successful probe")
	}
	if due := r.probeTargets(); len(due) != 1 {
		t.Fatal("revived node not probed")
	}
	st := r.Snapshot()
	if len(st) != 1 || st[0].Stats.HitRate() != 0.75 {
		t.Errorf("snapshot stats %+v, want hit rate 0.75", st)
	}
}

// TestCoordinatorHealthLoop covers the live probe path end-to-end: a
// stub worker's /cluster/stats keeps it live; killing it gets it
// declared dead within a few intervals.
func TestCoordinatorHealthLoop(t *testing.T) {
	store, err := profd.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c := NewCoordinator(store, Config{
		HealthInterval: 2 * time.Millisecond,
		HealthTimeout:  500 * time.Millisecond,
		MaxNodeFails:   2,
	})
	mux := http.NewServeMux()
	mux.HandleFunc("GET /cluster/stats", func(w http.ResponseWriter, r *http.Request) {
		jsonWrite(w, http.StatusOK, WorkerStats{ID: "w0"})
	})
	stub := httptest.NewServer(mux)
	defer stub.Close()
	if err := c.reg.Register(NodeInfo{ID: "w0", URL: stub.URL, Capacity: 1}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c.Start(ctx)

	deadline := time.Now().Add(30 * time.Second)
	for {
		if st := c.reg.Snapshot(); len(st) == 1 && !st[0].LastSeen.IsZero() && st[0].Stats.ID == "w0" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("health loop never refreshed node stats")
		}
		time.Sleep(2 * time.Millisecond)
	}
	stub.Close()
	for c.reg.Live("w0") {
		if time.Now().After(deadline) {
			t.Fatal("dead worker never declared dead by health loop")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
