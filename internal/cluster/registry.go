package cluster

// registry.go is the coordinator's node table: which workers exist,
// which are alive, and how loaded each one is. Acquire hands out
// dispatch slots under a per-node concurrency bound (least-loaded
// first); a health loop probes every node with timeout, marks nodes
// dead after consecutive failures, and backs probing off exponentially
// for nodes that stay down, reviving them the moment a probe succeeds.

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"
)

// NodeInfo is a worker's registration payload.
type NodeInfo struct {
	ID  string `json:"id"`
	URL string `json:"url"` // base URL of the worker's HTTP API
	// Capacity bounds concurrent jobs dispatched to the node (its
	// scheduler worker count, normally).
	Capacity int `json:"capacity"`
}

// WorkerStats is a worker's self-reported state, served at
// /cluster/stats and collected by the coordinator's health probes.
type WorkerStats struct {
	ID                 string `json:"id"`
	Experiments        int    `json:"experiments"`
	JobsRunning        int64  `json:"jobsRunning"`
	PartialsServed     uint64 `json:"partialsServed"`
	PartialCacheHits   uint64 `json:"partialCacheHits"`
	PartialCacheMisses uint64 `json:"partialCacheMisses"`
	ArchiveBytes       uint64 `json:"archiveBytes"`
}

// HitRate returns the worker's partial-cache hit rate in [0,1].
func (s WorkerStats) HitRate() float64 {
	total := s.PartialCacheHits + s.PartialCacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.PartialCacheHits) / float64(total)
}

// NodeState is a node's liveness as judged by the health loop.
type NodeState string

const (
	NodeLive NodeState = "live"
	NodeDead NodeState = "dead"
)

// NodeStatus is a snapshot of one registered node.
type NodeStatus struct {
	NodeInfo
	State    NodeState   `json:"state"`
	InFlight int         `json:"inFlight"`
	Fails    int         `json:"fails"`
	Reason   string      `json:"reason,omitempty"` // why the node is dead
	LastSeen time.Time   `json:"lastSeen,omitzero"`
	Stats    WorkerStats `json:"stats"`
}

// Node is one registered worker. Fields are guarded by the owning
// registry's mutex.
type Node struct {
	info     NodeInfo
	state    NodeState
	inflight int
	fails    int
	skip     int // health-probe rounds to skip (backoff)
	reason   string
	lastSeen time.Time
	stats    WorkerStats
}

// ID returns the node's registered identifier.
func (n *Node) ID() string { return n.info.ID }

// URL returns the node's base URL.
func (n *Node) URL() string { return n.info.URL }

// Registry is the coordinator's table of worker nodes.
type Registry struct {
	mu    sync.Mutex
	nodes map[string]*Node
	// change is closed and replaced on every availability change so
	// Acquire waiters re-evaluate without polling.
	change chan struct{}
}

// NewRegistry returns an empty node table.
func NewRegistry() *Registry {
	return &Registry{
		nodes:  make(map[string]*Node),
		change: make(chan struct{}),
	}
}

// signalLocked wakes every Acquire waiter. Callers hold r.mu.
func (r *Registry) signalLocked() {
	close(r.change)
	r.change = make(chan struct{})
}

// Register adds a node or refreshes an existing one. Re-registration
// is the worker's heartbeat of last resort: it revives a node the
// health loop declared dead (e.g. after a worker restart) and updates
// its advertised URL and capacity in place.
func (r *Registry) Register(info NodeInfo) error {
	if info.ID == "" || info.URL == "" {
		return fmt.Errorf("cluster: registration needs id and url")
	}
	if info.Capacity <= 0 {
		info.Capacity = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.nodes[info.ID]
	if n == nil {
		n = &Node{}
		r.nodes[info.ID] = n
	}
	n.info = info
	n.state = NodeLive
	n.fails = 0
	n.skip = 0
	n.reason = ""
	n.lastSeen = time.Now()
	r.signalLocked()
	return nil
}

// pickLocked chooses the least-loaded live node with a free slot,
// skipping excluded IDs; ties break by ID so dispatch is
// deterministic. Callers hold r.mu.
func (r *Registry) pickLocked(exclude map[string]bool) *Node {
	var best *Node
	for _, n := range r.nodes {
		if n.state != NodeLive || n.inflight >= n.info.Capacity || exclude[n.info.ID] {
			continue
		}
		if best == nil || n.inflight < best.inflight ||
			(n.inflight == best.inflight && n.info.ID < best.info.ID) {
			best = n
		}
	}
	return best
}

// Acquire blocks until a live node with a free dispatch slot is
// available (or ctx ends) and claims the slot. Nodes in exclude are
// avoided while an alternative exists — the reassignment path passes
// the nodes that already failed this job — but are used as a last
// resort rather than failing outright.
func (r *Registry) Acquire(ctx context.Context, exclude map[string]bool) (*Node, error) {
	for {
		r.mu.Lock()
		n := r.pickLocked(exclude)
		if n == nil && len(exclude) > 0 {
			n = r.pickLocked(nil)
		}
		if n != nil {
			n.inflight++
			r.mu.Unlock()
			return n, nil
		}
		ch := r.change
		r.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return nil, fmt.Errorf("cluster: waiting for a worker node: %w", ctx.Err())
		}
	}
}

// Release returns a dispatch slot claimed by Acquire.
func (r *Registry) Release(n *Node) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n.inflight > 0 {
		n.inflight--
	}
	r.signalLocked()
}

// MarkDead declares a node dead (dispatch avoids it; the distributed
// reduce falls back to local recomputation for its partials). The
// health loop or a re-registration revives it.
func (r *Registry) MarkDead(id, reason string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.nodes[id]
	if n == nil || n.state == NodeDead {
		return
	}
	n.state = NodeDead
	n.reason = reason
	r.signalLocked()
}

// Live reports whether the node is registered and currently live.
func (r *Registry) Live(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.nodes[id]
	return n != nil && n.state == NodeLive
}

// Snapshot returns every registered node, sorted by ID.
func (r *Registry) Snapshot() []NodeStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]NodeStatus, 0, len(r.nodes))
	for _, n := range r.nodes {
		out = append(out, NodeStatus{
			NodeInfo: n.info,
			State:    n.state,
			InFlight: n.inflight,
			Fails:    n.fails,
			Reason:   n.reason,
			LastSeen: n.lastSeen,
			Stats:    n.stats,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Counts returns the live/dead node counts and total in-flight jobs.
func (r *Registry) Counts() (live, dead, inflight int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, n := range r.nodes {
		if n.state == NodeLive {
			live++
		} else {
			dead++
		}
		inflight += n.inflight
	}
	return
}

// probeTargets returns the nodes due for a probe this round, counting
// down the backoff of the rest.
func (r *Registry) probeTargets() []NodeInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	var due []NodeInfo
	for _, n := range r.nodes {
		if n.skip > 0 {
			n.skip--
			continue
		}
		due = append(due, n.info)
	}
	sort.Slice(due, func(i, j int) bool { return due[i].ID < due[j].ID })
	return due
}

// maxProbeBackoffRounds caps the health-probe backoff for a node that
// stays dead: probe at most every 2^4 = 16 intervals.
const maxProbeBackoffRounds = 16

// probeResult records one probe's outcome: a success refreshes the
// node's stats and revives it; maxFails consecutive failures kill it,
// with exponentially backed-off re-probing (1, 2, 4, ... rounds) so a
// long-dead node is not hammered every interval.
func (r *Registry) probeResult(id string, stats WorkerStats, err error, maxFails int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.nodes[id]
	if n == nil {
		return
	}
	if err == nil {
		n.fails = 0
		n.skip = 0
		n.stats = stats
		n.lastSeen = time.Now()
		if n.state != NodeLive {
			n.state = NodeLive
			n.reason = ""
			r.signalLocked()
		}
		return
	}
	n.fails++
	if n.fails >= maxFails {
		if n.state != NodeDead {
			n.state = NodeDead
			n.reason = fmt.Sprintf("%d failed health probes: %v", n.fails, err)
			r.signalLocked()
		}
		backoff := 1 << (n.fails - maxFails)
		if backoff > maxProbeBackoffRounds {
			backoff = maxProbeBackoffRounds
		}
		n.skip = backoff
	}
}
