package loadgen

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// envInt reads a DSPROF_CLUSTER_* sizing override.
func envInt(t *testing.T, key string, def int) int {
	s := os.Getenv(key)
	if s == "" {
		return def
	}
	v, err := strconv.Atoi(s)
	if err != nil || v <= 0 {
		t.Fatalf("%s=%q: want a positive integer", key, s)
	}
	return v
}

// TestClusterSoak runs the full load harness — a 3-node cluster, a job
// batch, and at least a thousand concurrent report queries — and
// writes the outcome to BENCH_cluster.json at the repo root (the CI
// cluster-soak job uploads it). Size with DSPROF_CLUSTER_QUERIES,
// DSPROF_CLUSTER_JOBS, DSPROF_CLUSTER_TRIPS, DSPROF_CLUSTER_CONC.
func TestClusterSoak(t *testing.T) {
	p := Params{
		Workers:     3,
		Jobs:        envInt(t, "DSPROF_CLUSTER_JOBS", 4),
		Trips:       envInt(t, "DSPROF_CLUSTER_TRIPS", 60),
		Queries:     envInt(t, "DSPROF_CLUSTER_QUERIES", 1200),
		Concurrency: envInt(t, "DSPROF_CLUSTER_CONC", 32),
	}
	if p.Queries < 1000 {
		t.Fatalf("queries sized to %d; the soak contract requires at least 1000", p.Queries)
	}
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}

	if res.JobsDone != p.Jobs {
		t.Errorf("jobs done = %d, want %d", res.JobsDone, p.Jobs)
	}
	if res.JobsFailed != 0 {
		t.Errorf("jobs failed = %d, want 0", res.JobsFailed)
	}
	if res.JobsDuplicated != 0 {
		t.Errorf("jobs duplicated = %d, want 0", res.JobsDuplicated)
	}
	if res.QueryFailures != 0 {
		t.Errorf("query failures = %d, want 0", res.QueryFailures)
	}
	if res.QueryMismatches != 0 {
		t.Errorf("query byte mismatches = %d, want 0", res.QueryMismatches)
	}
	if res.Failed() {
		t.Error("Result.Failed() = true on a clean run")
	}
	// The cluster must actually have been exercised: all jobs ran on
	// workers (remote partials fetched), and no worker died.
	if res.Metrics["cluster_workers_live"] != 3 {
		t.Errorf("cluster_workers_live = %v, want 3", res.Metrics["cluster_workers_live"])
	}
	if res.Metrics["cluster_workers_dead"] != 0 {
		t.Errorf("cluster_workers_dead = %v, want 0", res.Metrics["cluster_workers_dead"])
	}
	if res.Metrics["cluster_partials_remote_total"] == 0 {
		t.Error("cluster_partials_remote_total = 0: reduction never went distributed")
	}
	if res.Metrics["cluster_replication_bytes_total"] == 0 {
		t.Error("cluster_replication_bytes_total = 0: no experiment was replicated")
	}

	if t.Failed() {
		return
	}
	out, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("..", "..", "..", "BENCH_cluster.json")
	if p := os.Getenv("DSPROF_CLUSTER_BENCH"); p != "" {
		path = p
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("soak: %d jobs, %d queries @ %.0f qps (p50 %.2fms p99 %.2fms)",
		res.JobsDone, res.Queries, res.QPS, res.P50MS, res.P99MS)
}
