// Package loadgen is the cluster load/soak harness: it spins up a
// full in-process cluster — one coordinator and N worker nodes, each
// behind a real loopback HTTP listener with the hardened server
// settings — runs a batch of distinct profiling jobs through the
// distributed scheduler, then hammers the coordinator's report API
// with concurrent queries, checking every response for cross-query
// consistency (two queries for the same report over the same
// experiments must return identical bytes). The result summarizes job
// and query outcomes, latency percentiles, and the coordinator's
// metric gauges; CI serializes it as BENCH_cluster.json.
package loadgen

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dsprof/internal/cluster"
	"dsprof/internal/profd"
)

// Params sizes a load run.
type Params struct {
	// Workers is the number of worker nodes (default 3).
	Workers int `json:"workers"`
	// NodeCapacity bounds concurrent jobs per node (default 2).
	NodeCapacity int `json:"nodeCapacity"`
	// Jobs is the number of distinct profiling jobs (default 4).
	Jobs int `json:"jobs"`
	// Trips sizes the MCF instances (default 60).
	Trips int `json:"trips"`
	// Queries is the total number of report queries (default 1200).
	Queries int `json:"queries"`
	// Concurrency is the number of concurrent query clients
	// (default 32).
	Concurrency int `json:"concurrency"`
	// JobTimeout bounds the collection phase (default 10m).
	JobTimeout time.Duration `json:"-"`
}

func (p Params) withDefaults() Params {
	if p.Workers <= 0 {
		p.Workers = 3
	}
	if p.NodeCapacity <= 0 {
		p.NodeCapacity = 2
	}
	if p.Jobs <= 0 {
		p.Jobs = 4
	}
	if p.Trips <= 0 {
		p.Trips = 60
	}
	if p.Queries <= 0 {
		p.Queries = 1200
	}
	if p.Concurrency <= 0 {
		p.Concurrency = 32
	}
	if p.JobTimeout <= 0 {
		p.JobTimeout = 10 * time.Minute
	}
	return p
}

// Result is one load run's outcome.
type Result struct {
	Params Params `json:"params"`

	// Job phase: every job must complete exactly once.
	JobsDone       int     `json:"jobsDone"`
	JobsFailed     int     `json:"jobsFailed"`
	JobsDuplicated int     `json:"jobsDuplicated"`
	CollectMS      float64 `json:"collectMs"`

	// Query phase.
	Queries         int     `json:"queries"`
	QueryFailures   int     `json:"queryFailures"`
	QueryMismatches int     `json:"queryMismatches"`
	QueryMS         float64 `json:"queryMs"`
	QPS             float64 `json:"qps"`
	P50MS           float64 `json:"p50Ms"`
	P90MS           float64 `json:"p90Ms"`
	P99MS           float64 `json:"p99Ms"`

	// Metrics is the coordinator's /metrics gauge snapshot after the
	// run (includes the cluster_* gauges).
	Metrics map[string]float64 `json:"metrics"`
}

// Failed reports whether the run violated an invariant (any failed or
// duplicated job, any failed or inconsistent query).
func (r *Result) Failed() bool {
	return r.JobsFailed != 0 || r.JobsDuplicated != 0 ||
		r.QueryFailures != 0 || r.QueryMismatches != 0
}

// node is one in-process cluster member.
type node struct {
	sched *profd.Scheduler
	srv   *http.Server
	url   string
}

// serve starts a hardened HTTP server on a loopback listener.
func serve(h http.Handler) (*node, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := profd.NewHTTPServer("", h)
	go srv.Serve(l)
	return &node{srv: srv, url: "http://" + l.Addr().String()}, nil
}

// specs builds n distinct job specs (distinct config hashes) cycling
// the paper's two counter passes over growing instance sizes.
func specs(n, trips int) []profd.JobSpec {
	out := make([]profd.JobSpec, n)
	for i := range out {
		s := profd.JobSpec{
			Program:       profd.ProgramMCF,
			Trips:         trips + 3*(i/2),
			MachineConfig: "scaled",
		}
		if i%2 == 0 {
			s.Clock = true
			s.Counters = "+ecstall,10007,+ecrm,503"
		} else {
			s.Counters = "+ecref,997,+dtlbm,251"
		}
		out[i] = s
	}
	return out
}

// reportMix is the query workload: report name → argument (empty for
// argument-free reports). Chosen to cover the cheap and the expensive
// renderings.
var reportMix = []struct{ name, arg string }{
	{"total", ""},
	{"functions", ""},
	{"pcs", ""},
	{"objects", ""},
	{"lines", ""},
	{"source", "refresh_potential"},
	{"members", "node"},
	{"callers", "refresh_potential"},
}

// Run executes one load run and tears the cluster down gracefully.
func Run(p Params) (*Result, error) {
	p = p.withDefaults()
	res := &Result{Params: p}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	tmp, err := os.MkdirTemp("", "dsprof-loadgen-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)

	// Coordinator.
	cstore, err := profd.OpenStore(tmp + "/coordinator")
	if err != nil {
		return nil, err
	}
	coord := cluster.NewCoordinator(cstore, cluster.Config{
		PollInterval:   10 * time.Millisecond,
		HealthInterval: 250 * time.Millisecond,
	})
	csched := profd.NewScheduler(cstore, profd.SchedulerConfig{
		Workers: p.Workers * p.NodeCapacity,
		Runner:  coord.Run,
	})
	capi := profd.NewServer(csched, cstore)
	coord.Mount(capi)
	cnode, err := serve(capi.Handler())
	if err != nil {
		return nil, err
	}
	cnode.sched = csched
	coord.Start(ctx)

	// Workers.
	nodes := []*node{cnode}
	client := &http.Client{}
	for i := 0; i < p.Workers; i++ {
		wstore, err := profd.OpenStore(fmt.Sprintf("%s/w%d", tmp, i))
		if err != nil {
			return nil, err
		}
		wsched := profd.NewScheduler(wstore, profd.SchedulerConfig{Workers: p.NodeCapacity})
		w := cluster.NewWorker(fmt.Sprintf("w%d", i), wstore, wsched)
		wnode, err := serve(w.Handler())
		if err != nil {
			return nil, err
		}
		wnode.sched = wsched
		nodes = append(nodes, wnode)
		if err := w.Register(ctx, client, cnode.url, wnode.url, p.NodeCapacity); err != nil {
			return nil, fmt.Errorf("registering w%d: %w", i, err)
		}
	}
	// Graceful teardown: drain schedulers, then stop the listeners.
	defer func() {
		dctx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer dcancel()
		for _, n := range nodes {
			n.sched.Drain(dctx)
			n.srv.Shutdown(dctx)
		}
	}()

	// --- collection phase ---
	start := time.Now()
	jobSpecs := specs(p.Jobs, p.Trips)
	jobIDs := make([]string, len(jobSpecs))
	for i, s := range jobSpecs {
		var st profd.JobStatus
		if err := postJSON(ctx, client, cnode.url+"/jobs", s, &st); err != nil {
			return nil, fmt.Errorf("submitting job %d: %w", i, err)
		}
		jobIDs[i] = st.ID
	}
	var expIDs []string
	deadline := time.Now().Add(p.JobTimeout)
	for _, id := range jobIDs {
		for {
			var st profd.JobStatus
			if err := getJSON(ctx, client, cnode.url+"/jobs/"+id, &st); err != nil {
				return nil, fmt.Errorf("polling job %s: %w", id, err)
			}
			if st.State.Terminal() {
				if st.State == profd.JobDone {
					res.JobsDone++
					expIDs = append(expIDs, st.Experiment)
				} else {
					res.JobsFailed++
				}
				break
			}
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("job %s still %s at deadline", id, st.State)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	res.CollectMS = float64(time.Since(start)) / float64(time.Millisecond)
	// Distinct specs must yield exactly one experiment each.
	var stored []profd.ExpRecord
	if err := getJSON(ctx, client, cnode.url+"/experiments", &stored); err != nil {
		return nil, err
	}
	if extra := len(stored) - res.JobsDone; extra > 0 {
		res.JobsDuplicated = extra
	}
	if res.JobsFailed > 0 || len(expIDs) == 0 {
		return res, nil // nothing to query; Failed() reports it
	}

	// --- query phase ---
	// ID selections: each experiment alone, plus the full set.
	sets := make([][]string, 0, len(expIDs)+1)
	for _, id := range expIDs {
		sets = append(sets, []string{id})
	}
	sets = append(sets, expIDs)

	var (
		failures   atomic.Int64
		mismatches atomic.Int64
		firstSeen  sync.Map // query key → first response body
		latMu      sync.Mutex
		latencies  = make([]time.Duration, 0, p.Queries)
	)
	qstart := time.Now()
	var wg sync.WaitGroup
	next := atomic.Int64{}
	for c := 0; c < p.Concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			qclient := &http.Client{}
			for {
				i := int(next.Add(1)) - 1
				if i >= p.Queries {
					return
				}
				mix := reportMix[i%len(reportMix)]
				ids := sets[(i/len(reportMix))%len(sets)]
				q := url.Values{"exp": {strings.Join(ids, ",")}, "n": {"20"}}
				if mix.arg != "" {
					q.Set("arg", mix.arg)
				}
				qurl := cnode.url + "/reports/" + mix.name + "?" + q.Encode()
				t0 := time.Now()
				resp, err := qclient.Get(qurl)
				if err != nil {
					failures.Add(1)
					continue
				}
				body, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				lat := time.Since(t0)
				// The advice report legitimately 400s over sets missing
				// its counters; any other non-200 is a failure.
				ok := resp.StatusCode == http.StatusOK ||
					(resp.StatusCode == http.StatusBadRequest && mix.name == "advice")
				if rerr != nil || !ok {
					failures.Add(1)
					continue
				}
				latMu.Lock()
				latencies = append(latencies, lat)
				latMu.Unlock()
				key := mix.name + "|" + mix.arg + "|" + strings.Join(ids, ",")
				if prev, loaded := firstSeen.LoadOrStore(key, body); loaded {
					if string(prev.([]byte)) != string(body) {
						mismatches.Add(1)
					}
				}
			}
		}()
	}
	wg.Wait()
	res.QueryMS = float64(time.Since(qstart)) / float64(time.Millisecond)
	res.Queries = p.Queries
	res.QueryFailures = int(failures.Load())
	res.QueryMismatches = int(mismatches.Load())
	if res.QueryMS > 0 {
		res.QPS = float64(p.Queries) / (res.QueryMS / 1000)
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(q float64) float64 {
		if len(latencies) == 0 {
			return 0
		}
		i := int(q * float64(len(latencies)-1))
		return float64(latencies[i]) / float64(time.Millisecond)
	}
	res.P50MS, res.P90MS, res.P99MS = pct(0.50), pct(0.90), pct(0.99)

	res.Metrics, err = scrapeMetrics(ctx, client, cnode.url+"/metrics")
	if err != nil {
		return nil, err
	}
	return res, nil
}

// getJSON and postJSON are the harness's minimal HTTP JSON client.
func getJSON(ctx context.Context, client *http.Client, url string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	return doJSON(client, req, out)
}

func postJSON(ctx context.Context, client *http.Client, url string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return doJSON(client, req, out)
}

func doJSON(client *http.Client, req *http.Request, out any) error {
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("%s %s: %s: %s", req.Method, req.URL.Path, resp.Status, strings.TrimSpace(string(b)))
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// scrapeMetrics parses the Prometheus-text /metrics body into a map.
func scrapeMetrics(ctx context.Context, client *http.Client, url string) (map[string]float64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		i := strings.LastIndexByte(line, ' ')
		if i <= 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue
		}
		out[line[:i]] = v
	}
	return out, sc.Err()
}
