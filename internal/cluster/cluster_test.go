package cluster

// cluster_test.go spins real multi-node clusters in-process: a
// coordinator and N workers, each a full profd service behind its own
// HTTP listener, wired together over loopback exactly as separate
// machines would be. TestClusterGolden is the distributed-reduction
// acceptance test: every registered report served by the cluster must
// be byte-identical to a single-process serial reduction over the
// same experiments — including after a worker is killed mid-reduce.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"dsprof/internal/analyzer"
	"dsprof/internal/experiment"
	"dsprof/internal/faultfs"
	"dsprof/internal/profd"
)

type testNode struct {
	w     *Worker
	srv   *httptest.Server
	sched *profd.Scheduler
	store *profd.Store
}

type testCluster struct {
	t      *testing.T
	coord  *Coordinator
	store  *profd.Store
	sched  *profd.Scheduler
	srv    *httptest.Server
	nodes  []*testNode
	client *http.Client
}

// newTestCluster builds a coordinator with n registered workers, all
// in-process behind real HTTP listeners.
func newTestCluster(t *testing.T, n int, cfg Config) *testCluster {
	t.Helper()
	if cfg.PollInterval == 0 {
		cfg.PollInterval = 5 * time.Millisecond
	}
	store, err := profd.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	coord := NewCoordinator(store, cfg)
	sched := profd.NewScheduler(store, profd.SchedulerConfig{Workers: 4, Runner: coord.Run})
	t.Cleanup(sched.Close)
	srv := profd.NewServer(sched, store)
	coord.Mount(srv)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	tc := &testCluster{
		t: t, coord: coord, store: store, sched: sched, srv: hs,
		client: &http.Client{},
	}
	for i := 0; i < n; i++ {
		tc.addWorker(fmt.Sprintf("w%d", i), nil)
	}
	return tc
}

// addWorker starts one worker node (optionally over a fault-injecting
// store filesystem) and registers it with the coordinator.
func (tc *testCluster) addWorker(id string, fsys faultfs.FS) *testNode {
	tc.t.Helper()
	store, err := profd.OpenStoreFS(faultfs.Or(fsys), tc.t.TempDir())
	if err != nil {
		tc.t.Fatal(err)
	}
	sched := profd.NewScheduler(store, profd.SchedulerConfig{Workers: 2})
	tc.t.Cleanup(sched.Close)
	w := NewWorker(id, store, sched)
	srv := httptest.NewServer(w.Handler())
	tc.t.Cleanup(srv.Close)
	if err := w.Register(context.Background(), tc.client, tc.srv.URL, srv.URL, 2); err != nil {
		tc.t.Fatal(err)
	}
	n := &testNode{w: w, srv: srv, sched: sched, store: store}
	tc.nodes = append(tc.nodes, n)
	return n
}

// submitJob posts a spec to a profd API and returns the accepted job.
func submitJob(t *testing.T, client *http.Client, base string, spec profd.JobSpec) profd.JobStatus {
	t.Helper()
	var st profd.JobStatus
	if err := postJSON(context.Background(), client, base+"/jobs", spec, &st); err != nil {
		t.Fatalf("submitting job: %v", err)
	}
	return st
}

// waitJob polls one job to a terminal state.
func waitJob(t *testing.T, client *http.Client, base, id string) profd.JobStatus {
	t.Helper()
	deadline := time.Now().Add(180 * time.Second)
	var st profd.JobStatus
	for {
		if err := getJSON(context.Background(), client, base+"/jobs/"+id, &st); err != nil {
			t.Fatalf("polling job %s: %v", id, err)
		}
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after deadline", id, st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// fetchReport renders one report over HTTP, returning the status and
// body.
func fetchReport(t *testing.T, client *http.Client, base, name, arg string, ids []string) (int, []byte) {
	t.Helper()
	q := url.Values{"exp": {strings.Join(ids, ",")}, "n": {"20"}}
	if arg != "" {
		q.Set("arg", arg)
	}
	resp, err := client.Get(base + "/reports/" + name + "?" + q.Encode())
	if err != nil {
		t.Fatalf("report %s: %v", name, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("report %s: %v", name, err)
	}
	return resp.StatusCode, body
}

// mcfReportArgs supplies arguments for the arg-taking reports (the MCF
// workload's hot function, struct, and allocating function).
var mcfReportArgs = map[string]string{
	"source":       "refresh_potential",
	"disasm":       "refresh_potential",
	"members":      "node",
	"callers":      "refresh_potential",
	"obj-timeline": "read_min",
}

// nbodyReportArgs is the same for the n-body workload: the force loop
// and the layout struct the advisor splits.
var nbodyReportArgs = map[string]string{
	"source":       "force_pass",
	"disasm":       "force_pass",
	"members":      "lnode",
	"callers":      "force_pass",
	"obj-timeline": "main",
}

// clusterSpecs are four distinct jobs (distinct config hashes) small
// enough for CI: the paper's two-pass counter split, a third MCF
// instance size, and an n-body collect — the second workload family
// goes through the same distributed reduction. Provenance is on so the
// replicated experiments carry prov.pv2 shards and the object-centric
// reports render over the cluster.
func clusterSpecs() []profd.JobSpec {
	return []profd.JobSpec{
		{Program: profd.ProgramMCF, Trips: 100, Clock: true, Provenance: true,
			Counters: "+ecstall,10007,+ecrm,503", MachineConfig: "scaled"},
		{Program: profd.ProgramMCF, Trips: 100, Provenance: true,
			Counters: "+ecref,997,+dtlbm,251", MachineConfig: "scaled"},
		{Program: profd.ProgramMCF, Trips: 130, Clock: true, Provenance: true,
			Counters: "+ecstall,10007,+ecrm,503", MachineConfig: "scaled"},
		{Program: profd.ProgramNBody, Trips: 150, Clock: true, Provenance: true,
			Counters: "+ecstall,2003,+ecrm,251", MachineConfig: "scaled"},
	}
}

// serialReference reduces the coordinator's stored experiments with
// the single-worker serial reduction — the reference every other
// reduction must match byte-for-byte.
func serialReference(t *testing.T, store *profd.Store, ids []string) *analyzer.Analyzer {
	t.Helper()
	dirs, err := store.Dirs(ids)
	if err != nil {
		t.Fatal(err)
	}
	exps := make([]*experiment.Experiment, 0, len(dirs))
	for _, d := range dirs {
		e, err := experiment.Open(d)
		if err != nil {
			t.Fatal(err)
		}
		exps = append(exps, e)
	}
	a, err := analyzer.NewWithConfig(analyzer.Config{Workers: 1}, exps...)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// compareReports renders every registered report both ways and
// requires byte identity.
func compareReports(t *testing.T, ref *analyzer.Analyzer, client *http.Client, base string, ids []string, phase string, reportArgs map[string]string) {
	t.Helper()
	for _, name := range analyzer.ReportNames() {
		token, arg := name, reportArgs[name]
		if arg != "" {
			token += "=" + arg
		}
		var want bytes.Buffer
		serr := ref.Render(&want, token, analyzer.RenderOpts{TopN: 20})
		code, got := fetchReport(t, client, base, name, arg, ids)
		if serr != nil {
			// A report the serial reference cannot render over this
			// experiment set (e.g. advice without its counters) must
			// fail identically over the cluster, not diverge.
			if code == http.StatusOK {
				t.Errorf("%s: report %s fails serially (%v) but cluster served it", phase, token, serr)
			}
			continue
		}
		if code != http.StatusOK {
			t.Errorf("%s: report %s: HTTP %d: %s", phase, token, code, got)
			continue
		}
		if want.Len() == 0 {
			t.Errorf("%s: report %s rendered empty", phase, token)
		}
		if !bytes.Equal(want.Bytes(), got) {
			t.Errorf("%s: report %s differs between serial and cluster reduction\n--- serial ---\n%s\n--- cluster ---\n%s",
				phase, token, want.String(), got)
		}
	}
}

// TestClusterGolden runs the bundled MCF collect jobs on a 3-worker
// cluster and requires every registered report served by the
// coordinator to be byte-identical to the single-process serial
// reduction — first with all workers healthy (fully remote partials),
// then for a fresh experiment set with one worker killed mid-reduce
// (the survivors' partials stay remote, the dead node's recompute
// locally).
func TestClusterGolden(t *testing.T) {
	tc := newTestCluster(t, 3, Config{})
	specs := clusterSpecs()

	// Submit everything at once so dispatch spreads over the nodes,
	// then wait; map config hash → experiment ID afterwards since
	// completion order is scheduling-dependent.
	jobs := make([]profd.JobStatus, len(specs))
	for i, s := range specs {
		jobs[i] = submitJob(t, tc.client, tc.srv.URL, s)
	}
	ids := make([]string, len(specs))
	for i := range specs {
		st := waitJob(t, tc.client, tc.srv.URL, jobs[i].ID)
		if st.State != profd.JobDone {
			t.Fatalf("job %s: %s (%s)", st.ID, st.State, st.Error)
		}
		ids[i] = st.Experiment
	}

	// Jobs must have spread beyond a single node.
	onNodes := 0
	for _, n := range tc.nodes {
		if n.store.Count() > 0 {
			onNodes++
		}
	}
	if onNodes < 2 {
		t.Errorf("jobs landed on %d nodes, want ≥ 2", onNodes)
	}

	// Phase 1: healthy cluster, single-experiment queries — two MCF
	// experiments and the n-body one, each against its serial reference.
	for _, id := range ids[:2] {
		compareReports(t, serialReference(t, tc.store, []string{id}), tc.client, tc.srv.URL, []string{id}, "healthy", mcfReportArgs)
	}
	compareReports(t, serialReference(t, tc.store, ids[3:]), tc.client, tc.srv.URL, ids[3:], "healthy-nbody", nbodyReportArgs)
	if remote := tc.coord.partialsRemote.Load(); remote == 0 {
		t.Error("healthy phase used no remote partials")
	}
	if local := tc.coord.partialsLocal.Load(); local != 0 {
		t.Errorf("healthy phase recomputed %d partials locally", local)
	}

	// Phase 2: kill one experiment's origin node mid-reduce of the
	// full (not yet memoized) set. Partials already fetched from it
	// stay remote; the rest fall back to local recomputation.
	victimHash := func() string {
		rec, ok := tc.store.Get(ids[0])
		if !ok {
			t.Fatal("experiment vanished")
		}
		return rec.Hash
	}()
	o, ok := tc.coord.getOrigin(victimHash)
	if !ok {
		t.Fatal("no origin recorded")
	}
	var victim *testNode
	for _, n := range tc.nodes {
		if n.w.ID() == o.NodeID {
			victim = n
		}
	}
	if victim == nil {
		t.Fatalf("origin node %s not in harness", o.NodeID)
	}
	var mu sync.Mutex
	var killOnce sync.Once
	seen := 0
	tc.coord.setOnPartial(func(r analyzer.UnitRef, nodeID string) {
		if nodeID != o.NodeID {
			return
		}
		mu.Lock()
		seen++
		kill := seen == 2 // let one through, then die mid-reduce
		mu.Unlock()
		if kill {
			killOnce.Do(victim.srv.Close)
		}
	})
	mcfIDs := ids[:3]
	compareReports(t, serialReference(t, tc.store, mcfIDs), tc.client, tc.srv.URL, mcfIDs, "crash", mcfReportArgs)
	tc.coord.setOnPartial(nil)
	if local := tc.coord.partialsLocal.Load(); local == 0 {
		t.Error("crash phase recomputed no partials locally (worker kill had no effect)")
	}

	// The memoized analyzer keeps serving identical bytes afterwards.
	compareReports(t, serialReference(t, tc.store, mcfIDs), tc.client, tc.srv.URL, mcfIDs, "after-crash", mcfReportArgs)
}

// TestClusterReassignsDeadWorker drives the reassignment path without
// timing races: the only registered node is already unreachable, so
// the first assignment fails at submission, the node is declared
// dead, and the job completes once a healthy worker appears.
func TestClusterReassignsDeadWorker(t *testing.T) {
	tc := newTestCluster(t, 0, Config{AssignRetries: 5})

	// A node whose listener is already closed: reachable address,
	// nobody home.
	ghost := httptest.NewServer(http.NotFoundHandler())
	ghostURL := ghost.URL
	ghost.Close()
	if err := tc.coord.Registry().Register(NodeInfo{ID: "ghost", URL: ghostURL, Capacity: 1}); err != nil {
		t.Fatal(err)
	}

	job := submitJob(t, tc.client, tc.srv.URL, clusterSpecs()[0])

	// The dispatcher must hit the ghost, kill it, and block waiting
	// for another node.
	deadline := time.Now().Add(30 * time.Second)
	for tc.coord.Registry().Live("ghost") {
		if time.Now().After(deadline) {
			t.Fatal("ghost node never declared dead")
		}
		time.Sleep(5 * time.Millisecond)
	}

	tc.addWorker("w0", nil)
	st := waitJob(t, tc.client, tc.srv.URL, job.ID)
	if st.State != profd.JobDone {
		t.Fatalf("job %s: %s (%s)", st.ID, st.State, st.Error)
	}
	if got := tc.coord.reassigned.Load(); got == 0 {
		t.Error("reassignment counter is zero")
	}
	var nodes []NodeStatus
	if err := getJSON(context.Background(), tc.client, tc.srv.URL+"/cluster/nodes", &nodes); err != nil {
		t.Fatal(err)
	}
	states := map[string]NodeState{}
	for _, n := range nodes {
		states[n.ID] = n.State
	}
	if states["ghost"] != NodeDead || states["w0"] != NodeLive {
		t.Errorf("node states %v, want ghost dead + w0 live", states)
	}
	// The rescued experiment serves reports.
	compareReports(t, serialReference(t, tc.store, []string{st.Experiment}),
		tc.client, tc.srv.URL, []string{st.Experiment}, "reassigned", mcfReportArgs)
}

// TestClusterReassignsFaultedStore injects a storage crash (faultfs)
// into the first worker's store: its job fails at commit, and the
// coordinator reruns the job on the healthy node instead of failing
// it.
func TestClusterReassignsFaultedStore(t *testing.T) {
	tc := newTestCluster(t, 0, Config{})
	// Op 1 is OpenStore's MkdirAll; op 2 is the first Put's staging
	// mkdir — the store freezes exactly when the first experiment
	// commits, so recovery cannot salvage anything either.
	tc.addWorker("w0", faultfs.NewInjected(faultfs.OS, faultfs.Schedule{Op: 2, Mode: faultfs.ModeCrash}))
	tc.addWorker("w1", nil)

	job := submitJob(t, tc.client, tc.srv.URL, clusterSpecs()[1])
	st := waitJob(t, tc.client, tc.srv.URL, job.ID)
	if st.State != profd.JobDone {
		t.Fatalf("job %s: %s (%s)", st.ID, st.State, st.Error)
	}
	if tc.nodes[1].store.Count() != 1 {
		t.Errorf("healthy node stores %d experiments, want 1", tc.nodes[1].store.Count())
	}
	if got := tc.coord.reassigned.Load(); got == 0 {
		t.Error("reassignment counter is zero")
	}
	compareReports(t, serialReference(t, tc.store, []string{st.Experiment}),
		tc.client, tc.srv.URL, []string{st.Experiment}, "store-fault", mcfReportArgs)
}
