package cluster

// coordinator.go is the cluster's control plane. The coordinator owns
// a normal profd scheduler + store, but its scheduler executes jobs
// through Run — the remote executor — instead of a local VM pool:
//
//	Acquire a worker slot (least-loaded live node, bounded per node)
//	POST the spec to the worker's /jobs, poll to completion
//	fetch the experiment archive, verify its manifest, admit a replica
//
// A worker that dies mid-job (submit, poll, or fetch failure) is
// marked dead and the job is reassigned to another node; deterministic
// job failures are retried on other nodes up to the assignment budget
// and then fail for real. Admitted replicas record their origin node,
// which the distributed reduce (Analyzer) uses to fan per-shard
// partial computation out to the nodes that already hold the data.

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dsprof/internal/analyzer"
	"dsprof/internal/collect"
	"dsprof/internal/experiment"
	"dsprof/internal/faultfs"
	"dsprof/internal/profd"
)

// Config tunes the coordinator.
type Config struct {
	// PollInterval is the delay between job-status polls of a worker
	// (default 25ms).
	PollInterval time.Duration
	// AssignRetries is how many distinct node assignments a job gets
	// before failing (default 3).
	AssignRetries int
	// PollFailLimit is how many consecutive poll failures declare the
	// node dead and reassign the job (default 3).
	PollFailLimit int
	// HealthInterval is the delay between health-probe rounds
	// (default 1s).
	HealthInterval time.Duration
	// HealthTimeout bounds one health probe (default 2s).
	HealthTimeout time.Duration
	// MaxNodeFails is how many consecutive failed probes kill a node
	// (default 3).
	MaxNodeFails int
	// PartialFanout bounds concurrent partial fetches during a
	// distributed reduce (default 8).
	PartialFanout int
	// PartialTimeout bounds one partial fetch (default 30s).
	PartialTimeout time.Duration
	// Clock injects a fake clock in tests.
	Clock Clock
}

func (c Config) withDefaults() Config {
	if c.PollInterval <= 0 {
		c.PollInterval = 25 * time.Millisecond
	}
	if c.AssignRetries <= 0 {
		c.AssignRetries = 3
	}
	if c.PollFailLimit <= 0 {
		c.PollFailLimit = 3
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = time.Second
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = 2 * time.Second
	}
	if c.MaxNodeFails <= 0 {
		c.MaxNodeFails = 3
	}
	if c.PartialFanout <= 0 {
		c.PartialFanout = 8
	}
	if c.PartialTimeout <= 0 {
		c.PartialTimeout = 30 * time.Second
	}
	if c.Clock == nil {
		c.Clock = RealClock{}
	}
	return c
}

// origin records which worker first produced an experiment and what
// the experiment is called in that worker's store — the address the
// distributed reduce sends partial requests to.
type origin struct {
	NodeID string
	ExpID  string
}

// maxCachedAnalyzers bounds the coordinator's distributed-reduce memo
// (same sizing rationale as the store's local memo).
const maxCachedAnalyzers = 32

type analyzerEntry struct {
	once sync.Once
	a    *analyzer.Analyzer
	err  error
}

// Coordinator fans profd jobs out to worker nodes and reduces report
// queries across them. It implements profd.Runner (Run) and
// profd.AnalyzerProvider (Analyzer).
type Coordinator struct {
	store  *profd.Store
	reg    *Registry
	cfg    Config
	client *http.Client

	originMu sync.Mutex
	origins  map[string]origin // by config hash

	cacheMu   sync.Mutex
	analyzers map[string]*analyzerEntry

	replBytes      atomic.Uint64
	partialsRemote atomic.Uint64
	partialsLocal  atomic.Uint64
	reassigned     atomic.Uint64
	replRejected   atomic.Uint64

	// onPartial, when set, observes every remote partial fetch before
	// it is issued — the test seam for killing a worker mid-reduce.
	onPartialMu sync.Mutex
	onPartial   func(r analyzer.UnitRef, nodeID string)
}

// NewCoordinator builds a coordinator over the store that will hold
// the experiment replicas.
func NewCoordinator(store *profd.Store, cfg Config) *Coordinator {
	return &Coordinator{
		store:     store,
		reg:       NewRegistry(),
		cfg:       cfg.withDefaults(),
		client:    &http.Client{},
		origins:   make(map[string]origin),
		analyzers: make(map[string]*analyzerEntry),
	}
}

// Registry returns the coordinator's node table.
func (c *Coordinator) Registry() *Registry { return c.reg }

// Mount installs the coordinator's cluster surface on a profd server:
// report queries reduce through the cluster, /metrics grows the
// cluster gauges, and /cluster/register + /cluster/nodes appear.
func (c *Coordinator) Mount(srv *profd.Server) {
	srv.SetAnalyzerProvider(c)
	srv.SetMetricsExtra(c.writeMetrics)
	srv.SetExtraRoutes(c.routes)
}

func (c *Coordinator) routes(mux *http.ServeMux) {
	mux.HandleFunc("POST /cluster/register", c.handleRegister)
	mux.HandleFunc("GET /cluster/nodes", c.handleNodes)
}

// Start runs the health loop until ctx ends.
func (c *Coordinator) Start(ctx context.Context) {
	go c.healthLoop(ctx)
}

// healthLoop probes every registered node each interval (with
// per-node exponential backoff for nodes that stay dead) and feeds
// the outcomes to the registry.
func (c *Coordinator) healthLoop(ctx context.Context) {
	for ctx.Err() == nil {
		for _, info := range c.reg.probeTargets() {
			pctx, cancel := context.WithTimeout(ctx, c.cfg.HealthTimeout)
			var stats WorkerStats
			err := getJSON(pctx, c.client, info.URL+"/cluster/stats", &stats)
			cancel()
			if ctx.Err() != nil {
				return
			}
			c.reg.probeResult(info.ID, stats, err, c.cfg.MaxNodeFails)
		}
		c.cfg.Clock.Sleep(ctx, c.cfg.HealthInterval)
	}
}

// --- dispatch (the remote profd.Runner) ---

// Run executes one job on the cluster: assign, remote-run, replicate,
// verify. A node failure reassigns the job to another node; the
// returned result carries only the experiment (no machine), and the
// coordinator's scheduler stores it like any local run.
func (c *Coordinator) Run(ctx context.Context, spec *profd.JobSpec) (*collect.Result, error) {
	tried := make(map[string]bool)
	var lastErr error
	for attempt := 0; attempt < c.cfg.AssignRetries; attempt++ {
		if attempt > 0 {
			c.reassigned.Add(1)
		}
		n, err := c.reg.Acquire(ctx, tried)
		if err != nil {
			return nil, err
		}
		exp, expID, err := c.runOn(ctx, n, spec)
		c.reg.Release(n)
		if err == nil {
			c.setOrigin(spec.ConfigHash(), origin{NodeID: n.ID(), ExpID: expID})
			return &collect.Result{Exp: exp}, nil
		}
		if ctx.Err() != nil {
			return nil, err
		}
		tried[n.ID()] = true
		lastErr = err
	}
	return nil, fmt.Errorf("cluster: job failed after %d assignments: %w", c.cfg.AssignRetries, lastErr)
}

func (c *Coordinator) setOrigin(hash string, o origin) {
	c.originMu.Lock()
	c.origins[hash] = o
	c.originMu.Unlock()
}

func (c *Coordinator) getOrigin(hash string) (origin, bool) {
	c.originMu.Lock()
	o, ok := c.origins[hash]
	c.originMu.Unlock()
	return o, ok
}

// nodeDown marks the node dead and wraps err as a node failure.
func (c *Coordinator) nodeDown(n *Node, stage string, err error) error {
	c.reg.MarkDead(n.ID(), stage+": "+err.Error())
	return fmt.Errorf("cluster: node %s %s: %w", n.ID(), stage, err)
}

// runOn drives one job on one worker node to completion and returns
// the verified experiment replica plus the worker's experiment ID.
func (c *Coordinator) runOn(ctx context.Context, n *Node, spec *profd.JobSpec) (*experiment.Experiment, string, error) {
	// Submit; a 503 is worker back-pressure, not failure — wait and
	// resubmit while the job's context allows.
	var st profd.JobStatus
	for {
		err := postJSON(ctx, c.client, n.URL()+"/jobs", spec, &st)
		if err == nil {
			break
		}
		if statusCode(err) == http.StatusServiceUnavailable {
			c.cfg.Clock.Sleep(ctx, c.cfg.PollInterval)
			if ctx.Err() != nil {
				return nil, "", ctx.Err()
			}
			continue
		}
		if code := statusCode(err); code != 0 && code < 500 {
			// The worker is alive and rejected the spec: not a node fault.
			return nil, "", fmt.Errorf("cluster: node %s rejected job: %w", n.ID(), err)
		}
		return nil, "", c.nodeDown(n, "submitting job", err)
	}

	// Poll to a terminal state; consecutive poll failures mean the
	// node is gone and the job must be reassigned.
	fails := 0
	for !st.State.Terminal() {
		c.cfg.Clock.Sleep(ctx, c.cfg.PollInterval)
		if ctx.Err() != nil {
			return nil, "", ctx.Err()
		}
		if err := getJSON(ctx, c.client, n.URL()+"/jobs/"+st.ID, &st); err != nil {
			if ctx.Err() != nil {
				return nil, "", ctx.Err()
			}
			if fails++; fails >= c.cfg.PollFailLimit {
				return nil, "", c.nodeDown(n, "polling job "+st.ID, err)
			}
			continue
		}
		fails = 0
	}
	switch st.State {
	case profd.JobDone:
	case profd.JobCanceled:
		return nil, "", fmt.Errorf("cluster: node %s canceled job %s: %s", n.ID(), st.ID, st.Error)
	default:
		return nil, "", fmt.Errorf("cluster: node %s job %s failed: %s", n.ID(), st.ID, st.Error)
	}

	exp, err := c.fetchExperiment(ctx, n, st.Experiment)
	if err != nil {
		return nil, "", err
	}
	return exp, st.Experiment, nil
}

// fetchExperiment replicates one experiment from its worker:
// streaming archive → checksummed unpack → manifest verification →
// load. The replica is admitted only if every file and shard checksum
// in its manifest verifies; a replica that fails verification counts
// as a node failure (the data cannot be trusted), not a job failure.
func (c *Coordinator) fetchExperiment(ctx context.Context, n *Node, expID string) (*experiment.Experiment, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		n.URL()+"/cluster/experiments/"+expID+"/archive", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, c.nodeDown(n, "fetching archive "+expID, err)
	}
	defer resp.Body.Close()
	if err := checkStatus(resp); err != nil {
		return nil, c.nodeDown(n, "fetching archive "+expID, err)
	}

	// Stage under the store root with the .tmp suffix the store sweeps
	// on open, so a crash mid-replication never leaks a directory.
	staging, err := os.MkdirTemp(c.store.Root(), "replica-*.tmp")
	if err != nil {
		return nil, fmt.Errorf("cluster: staging replica: %w", err)
	}
	defer os.RemoveAll(staging)

	cr := &countingReader{r: resp.Body}
	if err := experiment.ReadArchive(faultfs.OS, cr, staging); err != nil {
		c.replRejected.Add(1)
		return nil, c.nodeDown(n, "replicating "+expID, err)
	}
	c.replBytes.Add(cr.n)
	if err := experiment.VerifyDir(staging); err != nil {
		c.replRejected.Add(1)
		return nil, c.nodeDown(n, "verifying replica "+expID, err)
	}
	// Load eagerly: the staging directory is removed on return, and
	// the coordinator's store re-persists the experiment on commit.
	exp, err := experiment.Load(staging)
	if err != nil {
		c.replRejected.Add(1)
		return nil, c.nodeDown(n, "loading replica "+expID, err)
	}
	return exp, nil
}

type countingReader struct {
	r io.Reader
	n uint64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n += uint64(n)
	return n, err
}

// --- distributed reduce (the profd.AnalyzerProvider) ---

// Analyzer reduces the selected experiments across the cluster: each
// work unit's partial is fetched from the experiment's origin node
// (which computes it over its local replica, memoized) and merged in
// canonical order; units whose origin is dead or failing are
// recomputed locally. The result is memoized and byte-identical to
// the store's local reduction.
func (c *Coordinator) Analyzer(ids []string) (*analyzer.Analyzer, error) {
	if len(ids) == 0 {
		return nil, fmt.Errorf("cluster: no experiments selected")
	}
	key := analyzerKey(ids)
	c.cacheMu.Lock()
	e := c.analyzers[key]
	if e == nil {
		e = &analyzerEntry{}
		if len(c.analyzers) >= maxCachedAnalyzers {
			for k := range c.analyzers {
				delete(c.analyzers, k)
				break
			}
		}
		c.analyzers[key] = e
	}
	c.cacheMu.Unlock()

	e.once.Do(func() { e.a, e.err = c.reduce(ids) })
	if e.err != nil {
		c.cacheMu.Lock()
		if c.analyzers[key] == e {
			delete(c.analyzers, key)
		}
		c.cacheMu.Unlock()
	}
	return e.a, e.err
}

// analyzerKey canonicalizes an ID set (order-insensitive), matching
// the store's memo keying.
func analyzerKey(ids []string) string {
	sorted := append([]string(nil), ids...)
	sort.Strings(sorted)
	return strings.Join(sorted, ",")
}

// reduce performs one distributed reduction over the ID set.
func (c *Coordinator) reduce(ids []string) (*analyzer.Analyzer, error) {
	dirs, err := c.store.Dirs(ids)
	if err != nil {
		return nil, err
	}
	hashes := make([]string, len(ids))
	for i, id := range ids {
		rec, ok := c.store.Get(id)
		if !ok {
			return nil, fmt.Errorf("cluster: no experiment %q", id)
		}
		hashes[i] = rec.Hash
	}
	exps := make([]*experiment.Experiment, len(dirs))
	for i, d := range dirs {
		exp, err := experiment.Open(d)
		if err != nil {
			return nil, err
		}
		exps[i] = exp
	}
	a, err := analyzer.NewContext(analyzer.Config{}, exps...)
	if err != nil {
		return nil, err
	}
	refs := analyzer.Units(exps)
	wires := make([][]byte, len(refs))
	errs := make([]error, len(refs))
	sem := make(chan struct{}, c.cfg.PartialFanout)
	var wg sync.WaitGroup
	for i, r := range refs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, r analyzer.UnitRef) {
			defer wg.Done()
			defer func() { <-sem }()
			wires[i], errs[i] = c.partialFor(a, hashes[r.Exp], r)
		}(i, r)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("cluster: unit %v: %w", refs[i], err)
		}
	}
	if err := a.ReduceFromPartials(wires); err != nil {
		return nil, err
	}
	return a, nil
}

// partialFor obtains one unit's serialized partial: from the
// experiment's origin node when it is known and live, locally
// otherwise (including when the remote fetch fails mid-reduce — the
// local replica is always authoritative enough to recompute).
func (c *Coordinator) partialFor(a *analyzer.Analyzer, hash string, r analyzer.UnitRef) ([]byte, error) {
	if o, ok := c.getOrigin(hash); ok && c.reg.Live(o.NodeID) {
		c.onPartialMu.Lock()
		hook := c.onPartial
		c.onPartialMu.Unlock()
		if hook != nil {
			hook(r, o.NodeID)
		}
		if w, err := c.remotePartial(o, r); err == nil {
			c.partialsRemote.Add(1)
			return w, nil
		}
	}
	c.partialsLocal.Add(1)
	return a.ReducePartial(r)
}

// partialRequest asks a worker for one unit's partial over its local
// replica of the experiment (so Exp is the worker's experiment ID and
// the unit's experiment index is implicitly 0).
type partialRequest struct {
	Exp   string `json:"exp"`
	Clock bool   `json:"clock,omitempty"`
	PIC   int    `json:"pic"`
	Shard int    `json:"shard"`
}

// remotePartial fetches one serialized partial from a worker node.
func (c *Coordinator) remotePartial(o origin, r analyzer.UnitRef) ([]byte, error) {
	node, ok := c.nodeURL(o.NodeID)
	if !ok {
		return nil, fmt.Errorf("cluster: node %s not registered", o.NodeID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.PartialTimeout)
	defer cancel()
	body, err := jsonBody(partialRequest{Exp: o.ExpID, Clock: r.Clock, PIC: r.PIC, Shard: r.Shard})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, node+"/cluster/partial", body)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if err := checkStatus(resp); err != nil {
		return nil, err
	}
	return io.ReadAll(resp.Body)
}

// setOnPartial installs the test seam observing remote partial
// fetches.
func (c *Coordinator) setOnPartial(fn func(r analyzer.UnitRef, nodeID string)) {
	c.onPartialMu.Lock()
	c.onPartial = fn
	c.onPartialMu.Unlock()
}

func (c *Coordinator) nodeURL(id string) (string, bool) {
	for _, n := range c.reg.Snapshot() {
		if n.ID == id {
			return n.URL, true
		}
	}
	return "", false
}

// --- HTTP surface ---

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var info NodeInfo
	if err := jsonDecode(r.Body, &info); err != nil {
		jsonError(w, http.StatusBadRequest, fmt.Errorf("decoding registration: %w", err))
		return
	}
	if err := c.reg.Register(info); err != nil {
		jsonError(w, http.StatusBadRequest, err)
		return
	}
	jsonWrite(w, http.StatusOK, map[string]string{"status": "registered", "id": info.ID})
}

func (c *Coordinator) handleNodes(w http.ResponseWriter, r *http.Request) {
	jsonWrite(w, http.StatusOK, c.reg.Snapshot())
}

// writeMetrics appends the cluster gauges to /metrics.
func (c *Coordinator) writeMetrics(w io.Writer) {
	live, dead, inflight := c.reg.Counts()
	fmt.Fprintf(w, "cluster_workers_live %d\n", live)
	fmt.Fprintf(w, "cluster_workers_dead %d\n", dead)
	fmt.Fprintf(w, "cluster_jobs_inflight %d\n", inflight)
	fmt.Fprintf(w, "cluster_jobs_reassigned_total %d\n", c.reassigned.Load())
	fmt.Fprintf(w, "cluster_replication_bytes_total %d\n", c.replBytes.Load())
	fmt.Fprintf(w, "cluster_replicas_rejected_total %d\n", c.replRejected.Load())
	fmt.Fprintf(w, "cluster_partials_remote_total %d\n", c.partialsRemote.Load())
	fmt.Fprintf(w, "cluster_partials_local_total %d\n", c.partialsLocal.Load())
	for _, n := range c.reg.Snapshot() {
		fmt.Fprintf(w, "cluster_node_partial_cache_hit_rate{node=%q} %.4f\n", n.ID, n.Stats.HitRate())
		fmt.Fprintf(w, "cluster_node_inflight{node=%q} %d\n", n.ID, n.InFlight)
	}
}
