package cluster

// client.go: minimal JSON-over-HTTP helpers shared by the coordinator
// (dispatch, polling, health probes) and the worker (registration).
// Error bodies follow the profd convention {"error": "..."}.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// maxErrorBody bounds how much of an error response is read back into
// an error message.
const maxErrorBody = 4 << 10

// httpStatusError preserves the status code so callers can
// distinguish back-pressure (503) from hard failures.
type httpStatusError struct {
	code int
	msg  string
}

func (e *httpStatusError) Error() string {
	return fmt.Sprintf("HTTP %d: %s", e.code, e.msg)
}

// statusCode extracts the HTTP status from an error chain (0 if the
// error is not an HTTP status error, e.g. a transport failure).
func statusCode(err error) int {
	var se *httpStatusError
	if errors.As(err, &se) {
		return se.code
	}
	return 0
}

// checkStatus turns a non-2xx response into an httpStatusError,
// extracting the profd JSON error body when present.
func checkStatus(resp *http.Response) error {
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return nil
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, maxErrorBody))
	var e struct {
		Error string `json:"error"`
	}
	msg := string(body)
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		msg = e.Error
	}
	return &httpStatusError{code: resp.StatusCode, msg: msg}
}

// doJSON issues a request with an optional JSON body and decodes a
// JSON response into out (when non-nil).
func doJSON(ctx context.Context, client *http.Client, method, url string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if err := checkStatus(resp); err != nil {
		return err
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func getJSON(ctx context.Context, client *http.Client, url string, out any) error {
	return doJSON(ctx, client, http.MethodGet, url, nil, out)
}

func postJSON(ctx context.Context, client *http.Client, url string, in, out any) error {
	return doJSON(ctx, client, http.MethodPost, url, in, out)
}

// jsonBody marshals v into a request body reader.
func jsonBody(v any) (io.Reader, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return bytes.NewReader(b), nil
}

// jsonDecode decodes a strict JSON request body.
func jsonDecode(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// jsonWrite mirrors the profd server's JSON response convention.
func jsonWrite(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// jsonError mirrors the profd server's error body convention.
func jsonError(w http.ResponseWriter, code int, err error) {
	jsonWrite(w, code, map[string]string{"error": err.Error()})
}
