package cluster

// worker.go is the data plane of a cluster node: an ordinary profd
// scheduler + store (jobs run locally on the node's VM pool) extended
// with the /cluster/... endpoints the coordinator drives — experiment
// archive streaming, per-shard partial computation for the
// distributed reduce, and a stats probe for health checks. A worker
// announces itself to the coordinator with retrying registration and
// re-registers periodically, which doubles as recovery after a
// coordinator restart.

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"dsprof/internal/analyzer"
	"dsprof/internal/experiment"
	"dsprof/internal/profd"
)

// maxWorkerContexts bounds the worker's memo of partial-serving
// analyzer contexts (one per experiment the coordinator asks about).
const maxWorkerContexts = 32

// registerBackoff / registerBackoffMax shape the registration retry
// (exponential, capped — the scheduler's retry-backoff style).
const (
	registerBackoff    = 50 * time.Millisecond
	registerBackoffMax = 2 * time.Second
	// reRegisterInterval is the steady-state heartbeat registration.
	reRegisterInterval = 10 * time.Second
)

type workerCtx struct {
	once sync.Once
	a    *analyzer.Analyzer
	err  error
}

// Worker is one cluster node's service bundle.
type Worker struct {
	id    string
	store *profd.Store
	sched *profd.Scheduler
	srv   *profd.Server

	ctxMu sync.Mutex
	ctxs  map[string]*workerCtx // by experiment ID

	partialsServed atomic.Uint64
	archiveBytes   atomic.Uint64
}

// NewWorker wraps a node's scheduler and store in the cluster surface.
func NewWorker(id string, store *profd.Store, sched *profd.Scheduler) *Worker {
	w := &Worker{
		id:    id,
		store: store,
		sched: sched,
		ctxs:  make(map[string]*workerCtx),
	}
	srv := profd.NewServer(sched, store)
	srv.SetExtraRoutes(w.routes)
	srv.SetMetricsExtra(w.writeMetrics)
	w.srv = srv
	return w
}

// ID returns the worker's node identifier.
func (w *Worker) ID() string { return w.id }

// Handler returns the worker's full HTTP handler: the profd API plus
// the cluster endpoints.
func (w *Worker) Handler() http.Handler { return w.srv.Handler() }

func (w *Worker) routes(mux *http.ServeMux) {
	mux.HandleFunc("GET /cluster/experiments/{id}/archive", w.handleArchive)
	mux.HandleFunc("POST /cluster/partial", w.handlePartial)
	mux.HandleFunc("GET /cluster/stats", w.handleStats)
}

// handleArchive streams one stored experiment as a checksummed
// archive. Errors after the first byte cannot change the status code;
// the archive's frame and stream checksums make any truncation or
// corruption detectable on the coordinator side.
func (w *Worker) handleArchive(rw http.ResponseWriter, r *http.Request) {
	rec, ok := w.store.Get(r.PathValue("id"))
	if !ok {
		jsonError(rw, http.StatusNotFound, fmt.Errorf("no experiment %q", r.PathValue("id")))
		return
	}
	rw.Header().Set("Content-Type", "application/octet-stream")
	cw := &countingWriter{w: rw}
	if err := experiment.WriteArchive(cw, filepath.Join(w.store.Root(), rec.Dir)); err != nil && cw.n == 0 {
		jsonError(rw, http.StatusInternalServerError, err)
		return
	}
	w.archiveBytes.Add(cw.n)
}

type countingWriter struct {
	w io.Writer
	n uint64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += uint64(n)
	return n, err
}

// handlePartial computes one reduction unit's serialized partial over
// the local replica of the requested experiment. Contexts are
// memoized per experiment and wired to the store's shard-partial
// cache, so repeated distributed queries re-encode cached aggregates
// instead of re-attributing events.
func (w *Worker) handlePartial(rw http.ResponseWriter, r *http.Request) {
	var req partialRequest
	if err := jsonDecode(r.Body, &req); err != nil {
		jsonError(rw, http.StatusBadRequest, fmt.Errorf("decoding partial request: %w", err))
		return
	}
	a, err := w.context(req.Exp)
	if err != nil {
		jsonError(rw, http.StatusNotFound, err)
		return
	}
	wire, err := a.ReducePartial(analyzer.UnitRef{
		Exp: 0, Clock: req.Clock, PIC: req.PIC, Shard: req.Shard,
	})
	if err != nil {
		jsonError(rw, http.StatusBadRequest, err)
		return
	}
	w.partialsServed.Add(1)
	rw.Header().Set("Content-Type", "application/octet-stream")
	rw.Write(wire)
}

// context returns the memoized partial-serving analyzer context for
// one stored experiment.
func (w *Worker) context(expID string) (*analyzer.Analyzer, error) {
	w.ctxMu.Lock()
	e := w.ctxs[expID]
	if e == nil {
		e = &workerCtx{}
		if len(w.ctxs) >= maxWorkerContexts {
			for k := range w.ctxs {
				delete(w.ctxs, k)
				break
			}
		}
		w.ctxs[expID] = e
	}
	w.ctxMu.Unlock()
	e.once.Do(func() {
		dirs, err := w.store.Dirs([]string{expID})
		if err != nil {
			e.err = err
			return
		}
		exp, err := experiment.Open(dirs[0])
		if err != nil {
			e.err = err
			return
		}
		// The cache key namespace matches the store's local reduction
		// (experiment ID), so both paths share memoized partials.
		e.a, e.err = analyzer.NewContext(analyzer.Config{
			Cache: w.store.PartialCache(),
			Keys:  []string{expID},
		}, exp)
	})
	if e.err != nil {
		w.ctxMu.Lock()
		if w.ctxs[expID] == e {
			delete(w.ctxs, expID)
		}
		w.ctxMu.Unlock()
	}
	return e.a, e.err
}

// Stats snapshots the worker's self-reported state.
func (w *Worker) Stats() WorkerStats {
	m := w.sched.Metrics()
	hits, misses := w.store.ShardCacheStats()
	return WorkerStats{
		ID:                 w.id,
		Experiments:        m.Experiments,
		JobsRunning:        m.Running,
		PartialsServed:     w.partialsServed.Load(),
		PartialCacheHits:   hits,
		PartialCacheMisses: misses,
		ArchiveBytes:       w.archiveBytes.Load(),
	}
}

func (w *Worker) handleStats(rw http.ResponseWriter, r *http.Request) {
	jsonWrite(rw, http.StatusOK, w.Stats())
}

func (w *Worker) writeMetrics(out io.Writer) {
	fmt.Fprintf(out, "worker_partials_served_total %d\n", w.partialsServed.Load())
	fmt.Fprintf(out, "worker_archive_bytes_total %d\n", w.archiveBytes.Load())
}

// Register announces the worker to the coordinator once. Capacity <= 0
// advertises the scheduler's worker-pool size.
func (w *Worker) Register(ctx context.Context, client *http.Client, coordinatorURL, selfURL string, capacity int) error {
	if capacity <= 0 {
		capacity = w.sched.Metrics().Workers
	}
	info := NodeInfo{ID: w.id, URL: selfURL, Capacity: capacity}
	return postJSON(ctx, client, coordinatorURL+"/cluster/register", info, nil)
}

// RegisterLoop registers with exponential backoff until it succeeds,
// then re-registers every reRegisterInterval as a heartbeat (and as
// recovery from a coordinator restart, which loses the node table).
// It blocks until ctx ends.
func (w *Worker) RegisterLoop(ctx context.Context, coordinatorURL, selfURL string, capacity int, clk Clock) {
	if clk == nil {
		clk = RealClock{}
	}
	client := &http.Client{}
	backoff := registerBackoff
	for ctx.Err() == nil {
		if err := w.Register(ctx, client, coordinatorURL, selfURL, capacity); err != nil {
			clk.Sleep(ctx, backoff)
			if backoff *= 2; backoff > registerBackoffMax {
				backoff = registerBackoffMax
			}
			continue
		}
		backoff = registerBackoff
		clk.Sleep(ctx, reRegisterInterval)
	}
}
