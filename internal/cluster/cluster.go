// Package cluster turns the single-node profd service into a
// multi-node profiling cluster. One coordinator node owns the public
// API (job submission, experiment registry, report queries) and fans
// work out to registered worker nodes, each running an ordinary profd
// scheduler + store behind the same HTTP surface plus a few
// /cluster/... endpoints:
//
//	coordinator                      worker
//	POST /cluster/register  <──────  self-registration (retry+backoff)
//	GET  /cluster/nodes              node table
//	                        ──────>  POST /jobs            (dispatch)
//	                        ──────>  GET  /jobs/{id}       (poll)
//	                        ──────>  GET  /cluster/experiments/{id}/archive
//	                        ──────>  POST /cluster/partial (distributed reduce)
//	                        ──────>  GET  /cluster/stats   (health probe)
//
// Dispatch installs a remote executor into the coordinator's profd
// scheduler (SchedulerConfig.Runner): every job is assigned to the
// least-loaded live worker under a per-node concurrency bound, and a
// worker that dies mid-job has the job reassigned to another node.
// Completed experiments replicate back as content-addressed archives
// (experiment.WriteArchive) and are admitted only after the replica's
// manifest checksums verify (experiment.VerifyDir).
//
// Report queries run a distributed reduction: the coordinator builds
// an analyzer context over its replicas, asks each experiment's origin
// worker for serialized per-shard partials (analyzer.ReducePartial),
// and merges them in canonical unit order (ReduceFromPartials). Any
// partial whose origin is dead is recomputed locally, so the rendered
// reports are byte-identical to a single-process reduction even when a
// worker crashes mid-reduce.
package cluster

import (
	"context"
	"time"
)

// Clock abstracts delay so tests drive registration retries, health
// probes, and job polling with a fake clock instead of real sleeps —
// the same seam the profd scheduler uses for retry backoff.
type Clock interface {
	// Sleep waits for d or until ctx is cancelled.
	Sleep(ctx context.Context, d time.Duration)
}

// RealClock is the production Clock.
type RealClock struct{}

// Sleep waits for d or until ctx is cancelled.
func (RealClock) Sleep(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}
