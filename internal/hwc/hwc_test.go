package hwc

import (
	"testing"
)

func TestEventNamesAndParse(t *testing.T) {
	for e := Event(1); e < NumEvents; e++ {
		got, err := ParseEvent(e.String())
		if err != nil || got != e {
			t.Errorf("ParseEvent(%q) = %v, %v", e.String(), got, err)
		}
	}
	if _, err := ParseEvent("bogus"); err == nil {
		t.Error("ParseEvent accepted bogus name")
	}
	names := EventNames()
	if len(names) != int(NumEvents)-1 {
		t.Errorf("EventNames returned %d names", len(names))
	}
}

func TestEventClassification(t *testing.T) {
	if !EvCycles.CountsCycles() || !EvECStall.CountsCycles() {
		t.Error("cycle counters misclassified")
	}
	if EvECRdMiss.CountsCycles() || EvDTLBMiss.CountsCycles() {
		t.Error("event counters misclassified as cycles")
	}
	for _, e := range []Event{EvDCRdMiss, EvECRef, EvECRdMiss, EvECStall, EvDTLBMiss} {
		if !e.MemoryRelated() {
			t.Errorf("%v should be memory related", e)
		}
	}
	for _, e := range []Event{EvCycles, EvInstrs, EvICMiss} {
		if e.MemoryRelated() {
			t.Errorf("%v should not be memory related", e)
		}
	}
	if !EvECRdMiss.LoadsOnly() || !EvDCRdMiss.LoadsOnly() {
		t.Error("read-miss events should be loads-only")
	}
	if EvECRef.LoadsOnly() || EvECStall.LoadsOnly() || EvDTLBMiss.LoadsOnly() {
		t.Error("LoadsOnly too broad")
	}
}

func TestParseInterval(t *testing.T) {
	for _, preset := range []string{"on", "high", "low"} {
		n, err := ParseInterval(preset, EvECRdMiss)
		if err != nil || n == 0 {
			t.Errorf("ParseInterval(%q) = %d, %v", preset, n, err)
		}
		c, err := ParseInterval(preset, EvCycles)
		if err != nil || c == 0 {
			t.Errorf("ParseInterval(%q, cycles) = %d, %v", preset, c, err)
		}
		if c == n {
			t.Errorf("preset %q: cycle and event intervals should differ", preset)
		}
	}
	if n, err := ParseInterval("12345", EvECRef); err != nil || n != 12345 {
		t.Errorf("numeric interval = %d, %v", n, err)
	}
	for _, bad := range []string{"", "x", "0", "-5"} {
		if _, err := ParseInterval(bad, EvECRef); err == nil {
			t.Errorf("ParseInterval(%q) accepted", bad)
		}
	}
	// high fires more often than on, which fires more often than low.
	hi, _ := ParseInterval("high", EvECRdMiss)
	on, _ := ParseInterval("on", EvECRdMiss)
	lo, _ := ParseInterval("low", EvECRdMiss)
	if !(hi < on && on < lo) {
		t.Errorf("preset ordering wrong: high=%d on=%d low=%d", hi, on, lo)
	}
}

func TestCounterOverflow(t *testing.T) {
	c := NewCounter(EvECRdMiss, 10)
	if over := c.Add(9); over != 0 {
		t.Errorf("Add(9) overflowed %d times", over)
	}
	if over := c.Add(1); over != 1 {
		t.Errorf("Add(1) at boundary overflowed %d times", over)
	}
	if over := c.Add(25); over != 2 {
		t.Errorf("Add(25) overflowed %d times, want 2", over)
	}
	if c.Total != 35 {
		t.Errorf("Total = %d", c.Total)
	}
}

func TestCounterLargeDelta(t *testing.T) {
	// A single stall larger than the interval must fire multiple times.
	c := NewCounter(EvECStall, 100)
	if over := c.Add(350); over != 3 {
		t.Errorf("Add(350) overflowed %d times, want 3", over)
	}
}

func TestSkidProperties(t *testing.T) {
	s := NewSkid(42)
	for i := 0; i < 1000; i++ {
		if got := s.Instrs(EvDTLBMiss); got != 1 {
			t.Fatalf("DTLB skid = %d, want 1 (precise)", got)
		}
	}
	maxOf := func(ev Event) int {
		max := 0
		for i := 0; i < 2000; i++ {
			if k := s.Instrs(ev); k > max {
				max = k
			}
			if k := s.Instrs(ev); k < 1 {
				t.Fatalf("%v skid < 1", ev)
			}
		}
		return max
	}
	if maxOf(EvECRef) <= maxOf(EvECRdMiss) {
		t.Error("EC ref skid should exceed EC read-miss skid (paper: greater skid)")
	}
}

func TestSkidDeterminism(t *testing.T) {
	a, b := NewSkid(7), NewSkid(7)
	for i := 0; i < 100; i++ {
		if a.Instrs(EvECStall) != b.Instrs(EvECStall) {
			t.Fatal("skid not deterministic for equal seeds")
		}
	}
}

func TestCounterRemaining(t *testing.T) {
	c := NewCounter(EvInstrs, 100)
	if r := c.Remaining(); r != 100 {
		t.Errorf("fresh Remaining = %d, want 100", r)
	}
	c.Add(99)
	if r := c.Remaining(); r != 1 {
		t.Errorf("Remaining = %d, want 1", r)
	}
	if over := c.Add(1); over != 1 {
		t.Errorf("overflow count = %d, want 1", over)
	}
	if r := c.Remaining(); r != 100 {
		t.Errorf("post-overflow Remaining = %d, want 100", r)
	}
	// The invariant interpreters batch against: Remaining()-1 events never
	// overflow, however the counts arrive.
	for i := 0; i < 1000; i++ {
		r := c.Remaining()
		if r < 1 {
			t.Fatalf("Remaining = %d < 1", r)
		}
		if r > 1 {
			if over := c.Add(r - 1); over != 0 {
				t.Fatalf("batched Add(%d) overflowed %d times", r-1, over)
			}
		}
		if over := c.Add(1); over != 1 {
			t.Fatalf("single Add at boundary fired %d overflows, want 1", over)
		}
	}
}
