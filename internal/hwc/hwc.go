// Package hwc models the processor's hardware performance counters.
//
// Like the UltraSPARC-III, the simulated chip has two counter registers
// (PIC0/PIC1), each programmable to count one event. A counter can be
// preloaded so that after a chosen number of events it overflows and
// raises an interrupt. The interrupt is imprecise: it is delivered some
// instructions after the triggering one (counter skid), with the PC of the
// next instruction to issue — exactly the problem the paper's apropos
// backtracking search exists to solve. DTLB miss overflows are precise.
package hwc

import (
	"fmt"
	"sort"
	"strings"

	"dsprof/internal/xrand"
)

// Event identifies a countable hardware event.
type Event uint8

// The counter events. Names follow the paper's collect(1) spellings.
const (
	EvNone     Event = iota
	EvCycles         // Cycle_cnt: processor cycles
	EvInstrs         // Instr_cnt: instructions completed
	EvICMiss         // IC_miss: instruction cache misses (modeled as always hitting)
	EvDCRdMiss       // dcrm: D$ read misses
	EvECRef          // ecref: E$ references
	EvECRdMiss       // ecrm: E$ read misses
	EvECStall        // ecstall: cycles stalled for E$ misses (counts cycles)
	EvDTLBMiss       // dtlbm: DTLB misses (precise)

	NumEvents
)

var evInfo = [NumEvents]struct {
	name   string
	desc   string
	cycles bool // the counter counts cycles, not events
	memRel bool // memory-related: apropos backtracking applies
}{
	EvNone:     {"none", "no event", false, false},
	EvCycles:   {"cycles", "processor cycles", true, false},
	EvInstrs:   {"insts", "instructions completed", false, false},
	EvICMiss:   {"icm", "I$ misses", false, false},
	EvDCRdMiss: {"dcrm", "D$ read misses", false, true},
	EvECRef:    {"ecref", "E$ references", false, true},
	EvECRdMiss: {"ecrm", "E$ read misses", false, true},
	EvECStall:  {"ecstall", "E$ stall cycles", true, true},
	EvDTLBMiss: {"dtlbm", "DTLB misses", false, true},
}

func (e Event) String() string {
	if e < NumEvents {
		return evInfo[e].name
	}
	return fmt.Sprintf("event?%d", uint8(e))
}

// Desc returns a human-readable description.
func (e Event) Desc() string {
	if e < NumEvents {
		return evInfo[e].desc
	}
	return "unknown"
}

// CountsCycles reports whether the counter value is in cycles (so the
// metric converts to seconds) rather than event counts.
func (e Event) CountsCycles() bool { return e < NumEvents && evInfo[e].cycles }

// MemoryRelated reports whether the event is caused by data memory
// reference instructions, i.e. whether apropos backtracking is meaningful.
func (e Event) MemoryRelated() bool { return e < NumEvents && evInfo[e].memRel }

// LoadsOnly reports whether only load instructions can raise the event
// (read misses); the backtracking search uses this to pick the
// instruction class to look for.
func (e Event) LoadsOnly() bool {
	return e == EvDCRdMiss || e == EvECRdMiss
}

// ParseEvent resolves a collect-style event name.
func ParseEvent(name string) (Event, error) {
	for e := Event(1); e < NumEvents; e++ {
		if evInfo[e].name == name {
			return e, nil
		}
	}
	return EvNone, fmt.Errorf("hwc: unknown counter %q (known: %s)", name, strings.Join(EventNames(), ", "))
}

// EventNames lists all selectable counter names, sorted.
func EventNames() []string {
	names := make([]string, 0, NumEvents-1)
	for e := Event(1); e < NumEvents; e++ {
		names = append(names, evInfo[e].name)
	}
	sort.Strings(names)
	return names
}

// Preset overflow intervals. The paper: intervals "are chosen as prime
// numbers, to reduce the probability of correlations in the profiles",
// with on/high/low presets. Event counters get event-count intervals;
// cycle counters get cycle intervals.
var presets = map[string]struct{ events, cycles uint64 }{
	"on":   {100003, 9000011},   // ~10 ms of cycles at 900 MHz
	"high": {10007, 900001},     // ~1 ms
	"low":  {1000003, 90000049}, // ~100 ms
}

// ParseInterval resolves an overflow interval spec: "on", "high", "low"
// or a positive integer.
func ParseInterval(spec string, ev Event) (uint64, error) {
	if p, ok := presets[spec]; ok {
		if ev.CountsCycles() {
			return p.cycles, nil
		}
		return p.events, nil
	}
	var n uint64
	if _, err := fmt.Sscanf(spec, "%d", &n); err != nil || n == 0 {
		return 0, fmt.Errorf("hwc: bad overflow interval %q", spec)
	}
	return n, nil
}

// Counter is one PIC register programmed to count an event.
type Counter struct {
	Event    Event
	Interval uint64 // overflow after this many events/cycles
	Total    uint64 // cumulative count since arming
	next     uint64 // count at which the next overflow fires
}

// NewCounter arms a counter.
func NewCounter(ev Event, interval uint64) *Counter {
	return &Counter{Event: ev, Interval: interval, next: interval}
}

// Add accumulates n events and reports how many overflows fired.
func (c *Counter) Add(n uint64) int {
	c.Total += n
	over := 0
	for c.Total >= c.next {
		over++
		c.next += c.Interval
	}
	return over
}

// Remaining returns how many further events the counter accepts before
// its next overflow fires. The Add invariant (Total < next between
// calls) keeps it >= 1, so interpreters can batch Remaining()-1 events
// with no overflow and still attribute the overflow to the exact
// triggering event on the next single-event Add.
func (c *Counter) Remaining() uint64 { return c.next - c.Total }

// Headroom converts the counter's remaining capacity into an instruction
// budget for a batched interpreter, given the event's worst-case
// contribution per instruction. It returns the largest n such that n
// instructions plus one extra instruction's worth of events — headroom
// for an instruction that issues its events but then traps instead of
// retiring — total at most Remaining()-1, so a batch of n instructions
// can never overflow the counter. ok is false when the counter is too
// close to overflow to cover even one instruction; the caller must fall
// back to exact per-instruction counting until the overflow fires.
func (c *Counter) Headroom(perInstr uint64) (n uint64, ok bool) {
	r := c.Remaining()
	if r <= 2*perInstr {
		return 0, false
	}
	return (r-1)/perInstr - 1, true
}

// Skid models counter-overflow interrupt skid: how many further
// instructions retire before the trap is delivered. Per-event ranges; the
// paper observes that E$ references "have significantly greater skid than
// the other memory metrics" and that DTLB misses are precise.
type Skid struct {
	rng *xrand.Rand
}

// NewSkid returns a deterministic skid model.
func NewSkid(seed uint64) *Skid { return &Skid{rng: xrand.New(seed)} }

// Instrs returns the number of instructions the trap for ev skids past
// the triggering instruction. The minimum of 1 means the delivered PC is
// at best the instruction after the trigger — never the trigger itself.
//
// Events raised by long-stalling accesses (E$ misses and their stall
// cycles) skid very little: the pipeline is stalled on the triggering
// load when the counter overflows, so few further instructions retire
// before the trap. E$ references are counted on D$ misses that often hit
// E$ with a short stall, so many instructions retire first — the paper
// observes E$ references "have significantly greater skid than the other
// memory metrics". DTLB misses are precise.
func (s *Skid) Instrs(ev Event) int {
	switch ev {
	case EvDTLBMiss:
		return 1 // precise: next instruction, no intervening retirement
	case EvECRdMiss, EvECStall, EvDCRdMiss:
		return 1 + s.rng.Intn(2) // trap taken while stalled on the access
	case EvECRef:
		return 2 + s.rng.Intn(4) // widest skid
	default:
		return 1 + s.rng.Intn(3)
	}
}
