// Package faultfs is the collector pipeline's pluggable filesystem: a
// small interface over the mutating operations the experiment writer,
// the spool, and the profd store perform (create/write/sync/rename/
// remove), with three implementations:
//
//   - OS, the passthrough to the real filesystem;
//   - Injected, a deterministic fault injector (fail the Nth operation
//     with an error, ENOSPC, a torn write, a short write, or a crash
//     point that freezes all further I/O) for testing every error path
//     of the experiment pipeline;
//   - Recorder/Replay, which capture a run's complete mutation trace and
//     re-materialize the filesystem state as of any operation boundary —
//     the engine of the crash-point soak harness, which replays hundreds
//     of crash points over one recorded collect without re-running it.
//
// Read paths stay on the real filesystem: torn and truncated *reads* are
// already covered by the experiment loader's corruption handling and its
// fuzz targets; what needed a seam was the write side.
package faultfs

import (
	"io"
	"os"
)

// File is the writable handle the pipeline uses: sequential writes, an
// explicit durability point, and close.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FS is the mutating-filesystem interface threaded through the
// experiment writer, the collector spool, and the profd store.
type FS interface {
	// Create creates (truncating) the named file for writing.
	Create(name string) (File, error)
	// Rename atomically moves oldpath to newpath.
	Rename(oldpath, newpath string) error
	// Remove deletes the named file.
	Remove(name string) error
	// RemoveAll deletes the named tree.
	RemoveAll(path string) error
	// MkdirAll creates the named directory and any missing parents.
	MkdirAll(path string, perm os.FileMode) error
	// SyncDir fsyncs the named directory, making preceding renames and
	// creates in it durable across power loss.
	SyncDir(dir string) error
}

// OS is the passthrough implementation over the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) Create(name string) (File, error) { return os.Create(name) }
func (osFS) Rename(oldpath, newpath string) error {
	return os.Rename(oldpath, newpath)
}
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) RemoveAll(path string) error                  { return os.RemoveAll(path) }
func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) SyncDir(dir string) error                     { return syncDir(dir) }

// syncDir fsyncs a directory. Filesystems that do not support fsync on
// directories report EINVAL/ENOTSUP; that is not a durability failure
// the caller can act on, so sync errors are swallowed — only a missing
// or unreadable directory is reported.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	d.Sync()
	return nil
}

// WriteFile writes data to the named file through fsys, syncing it
// before close — the faultfs analogue of os.WriteFile.
func WriteFile(fsys FS, name string, data []byte) error {
	f, err := fsys.Create(name)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Or returns fsys, or OS when fsys is nil — the idiom option structs use
// to make the real filesystem the zero-value default.
func Or(fsys FS) FS {
	if fsys == nil {
		return OS
	}
	return fsys
}
