package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

// writeTwo runs a fixed small workload — mkdir, two files of two writes
// each with sync, a rename, a dir sync — and returns the first error.
// Its deterministic op sequence is:
//
//	1 MkdirAll, 2 Create a, 3 Write a, 4 Write a, 5 Sync a,
//	6 Create b, 7 Write b, 8 Write b, 9 Sync b, 10 Rename b->c,
//	11 SyncDir
func writeTwo(fsys FS, dir string) error {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string) error {
		f, err := fsys.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		for _, chunk := range []string{"hello ", "world"} {
			if _, err := f.Write([]byte(chunk)); err != nil {
				f.Close()
				return err
			}
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := write("a"); err != nil {
		return err
	}
	if err := write("b"); err != nil {
		return err
	}
	if err := fsys.Rename(filepath.Join(dir, "b"), filepath.Join(dir, "c")); err != nil {
		return err
	}
	return fsys.SyncDir(dir)
}

const writeTwoOps = 11

func TestOSPassthrough(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "w")
	if err := writeTwo(OS, dir); err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]string{"a": "hello world", "c": "hello world"} {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if string(b) != want {
			t.Errorf("%s = %q, want %q", name, b, want)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "b")); !os.IsNotExist(err) {
		t.Error("rename left the source behind")
	}
}

func TestInjectedOpCount(t *testing.T) {
	inj := NewInjected(OS, Schedule{Op: 1 << 30})
	if err := writeTwo(inj, filepath.Join(t.TempDir(), "w")); err != nil {
		t.Fatal(err)
	}
	if inj.Ops() != writeTwoOps {
		t.Fatalf("workload counted %d ops, want %d", inj.Ops(), writeTwoOps)
	}
	if inj.Fired() {
		t.Error("out-of-range schedule fired")
	}
}

// TestInjectedEveryOp fails the workload at each op index in each
// "fail once" mode and checks the error surfaces and later runs of the
// same FS instance are unaffected only for non-freezing modes.
func TestInjectedEveryOp(t *testing.T) {
	for op := 1; op <= writeTwoOps; op++ {
		for _, mode := range []Mode{ModeError, ModeENOSPC, ModeCrash} {
			inj := NewInjected(OS, Schedule{Op: op, Mode: mode})
			err := writeTwo(inj, filepath.Join(t.TempDir(), "w"))
			if err == nil {
				t.Fatalf("op %d mode %v: workload succeeded", op, mode)
			}
			if !inj.Fired() {
				t.Fatalf("op %d mode %v: fault did not fire", op, mode)
			}
			switch mode {
			case ModeError:
				if !errors.Is(err, ErrInjected) {
					t.Errorf("op %d: err = %v, want ErrInjected", op, err)
				}
			case ModeENOSPC:
				if !errors.Is(err, syscall.ENOSPC) {
					t.Errorf("op %d: err = %v, want ENOSPC", op, err)
				}
			case ModeCrash:
				if !errors.Is(err, ErrCrashed) {
					t.Errorf("op %d: err = %v, want ErrCrashed", op, err)
				}
				if !inj.Crashed() {
					t.Errorf("op %d: crash point did not freeze the FS", op)
				}
			}
		}
	}
}

func TestInjectedTornWrite(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "w")
	// Op 4 is the second write to file a ("world").
	inj := NewInjected(OS, Schedule{Op: 4, Mode: ModeTorn})
	err := writeTwo(inj, dir)
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("torn write err = %v, want ErrCrashed", err)
	}
	if !inj.Crashed() {
		t.Fatal("torn write did not freeze the FS")
	}
	b, err := os.ReadFile(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "hello wo" { // "hello " + half of "world"
		t.Errorf("torn file = %q, want %q", b, "hello wo")
	}
	// The freeze must hold: no further I/O works.
	if _, err := inj.Create(filepath.Join(dir, "later")); !errors.Is(err, ErrCrashed) {
		t.Errorf("post-crash Create = %v, want ErrCrashed", err)
	}
}

func TestInjectedShortWrite(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "w")
	inj := NewInjected(OS, Schedule{Op: 4, Mode: ModeShort})
	err := writeTwo(inj, dir)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("short write err = %v, want ErrInjected", err)
	}
	if inj.Crashed() {
		t.Fatal("short write froze the FS; only torn writes crash")
	}
	// Later I/O still works.
	if err := WriteFile(inj, filepath.Join(dir, "later"), []byte("x")); err != nil {
		t.Errorf("post-short-write I/O failed: %v", err)
	}
}

func TestReplayPrefixes(t *testing.T) {
	src := filepath.Join(t.TempDir(), "src")
	rec := NewRecorder(OS)
	if err := writeTwo(rec, src); err != nil {
		t.Fatal(err)
	}
	ops := rec.Ops()
	// Close ops are recorded too, so the trace is longer than the
	// counted mutations.
	if len(ops) <= writeTwoOps {
		t.Fatalf("trace has %d ops, want > %d", len(ops), writeTwoOps)
	}

	// Full replay reproduces the directory byte-for-byte.
	dst := filepath.Join(t.TempDir(), "dst")
	if err := Replay(OS, ops, len(ops), false, RemapPrefix(src, dst)); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "c"} {
		want, _ := os.ReadFile(filepath.Join(src, name))
		got, err := os.ReadFile(filepath.Join(dst, name))
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Errorf("replayed %s = %q, want %q", name, got, want)
		}
	}

	// Every prefix replays cleanly, and file sizes grow monotonically
	// with the prefix.
	lastA := int64(-1)
	for n := 0; n <= len(ops); n++ {
		d := filepath.Join(t.TempDir(), "p")
		if err := Replay(OS, ops, n, false, RemapPrefix(src, d)); err != nil {
			t.Fatalf("prefix %d: %v", n, err)
		}
		if st, err := os.Stat(filepath.Join(d, "a")); err == nil {
			if st.Size() < lastA {
				t.Fatalf("prefix %d: file a shrank (%d -> %d)", n, lastA, st.Size())
			}
			lastA = st.Size()
		}
	}

	// A torn replay of a write op leaves half its payload.
	var writeIdx = -1
	for i, op := range ops {
		if op.Kind == OpWrite && op.Path == filepath.Join(src, "a") {
			writeIdx = i // second write to a wins
		}
	}
	d := filepath.Join(t.TempDir(), "torn")
	if err := Replay(OS, ops, writeIdx, true, RemapPrefix(src, d)); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(d, "a"))
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "hello wo" {
		t.Errorf("torn replay of a = %q, want %q", b, "hello wo")
	}
}

func TestWriteFileAndOr(t *testing.T) {
	if Or(nil) != OS {
		t.Error("Or(nil) != OS")
	}
	inj := NewInjected(OS, Schedule{Op: 1 << 30})
	if fs := Or(inj); fs != FS(inj) {
		t.Error("Or(fs) != fs")
	}
	path := filepath.Join(t.TempDir(), "f")
	if err := WriteFile(OS, path, []byte("data")); err != nil {
		t.Fatal(err)
	}
	b, _ := os.ReadFile(path)
	if string(b) != "data" {
		t.Errorf("WriteFile wrote %q", b)
	}
}
