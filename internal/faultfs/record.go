package faultfs

// record.go captures a workload's complete mutation trace and replays
// any prefix of it into a fresh directory tree. This is how the
// crash-point soak harness turns one recorded collect run into hundreds
// of deterministic crash images: record the ~N I/O operations of a full
// run once, then for every boundary k materialize "the filesystem the
// moment the machine died after operation k" (optionally tearing the
// k-th write in half) and drive recovery over it — no re-simulation.

import (
	"fmt"
	"os"
	"strings"
	"sync"
)

// OpKind identifies one recorded filesystem mutation.
type OpKind int

// Recorded operation kinds.
const (
	OpCreate OpKind = iota
	OpWrite
	OpSync
	OpClose
	OpRename
	OpRemove
	OpRemoveAll
	OpMkdirAll
	OpSyncDir
)

func (k OpKind) String() string {
	switch k {
	case OpCreate:
		return "create"
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpClose:
		return "close"
	case OpRename:
		return "rename"
	case OpRemove:
		return "remove"
	case OpRemoveAll:
		return "removeall"
	case OpMkdirAll:
		return "mkdirall"
	case OpSyncDir:
		return "syncdir"
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Op is one recorded mutation. Path2 is the rename target; Data is the
// written payload (a private copy); Perm is the MkdirAll mode.
type Op struct {
	Kind  OpKind
	Path  string
	Path2 string
	Data  []byte
	Perm  os.FileMode
}

// Recorder is an FS that forwards every operation to an inner FS while
// appending it to a trace.
type Recorder struct {
	inner FS

	mu  sync.Mutex
	ops []Op
}

// NewRecorder returns a recording wrapper around inner.
func NewRecorder(inner FS) *Recorder {
	return &Recorder{inner: inner}
}

// Ops returns a snapshot of the trace recorded so far.
func (r *Recorder) Ops() []Op {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Op, len(r.ops))
	copy(out, r.ops)
	return out
}

func (r *Recorder) record(op Op) {
	r.mu.Lock()
	r.ops = append(r.ops, op)
	r.mu.Unlock()
}

func (r *Recorder) Create(name string) (File, error) {
	f, err := r.inner.Create(name)
	if err != nil {
		return nil, err
	}
	r.record(Op{Kind: OpCreate, Path: name})
	return &recordedFile{r: r, path: name, f: f}, nil
}

func (r *Recorder) Rename(oldpath, newpath string) error {
	if err := r.inner.Rename(oldpath, newpath); err != nil {
		return err
	}
	r.record(Op{Kind: OpRename, Path: oldpath, Path2: newpath})
	return nil
}

func (r *Recorder) Remove(name string) error {
	if err := r.inner.Remove(name); err != nil {
		return err
	}
	r.record(Op{Kind: OpRemove, Path: name})
	return nil
}

func (r *Recorder) RemoveAll(path string) error {
	if err := r.inner.RemoveAll(path); err != nil {
		return err
	}
	r.record(Op{Kind: OpRemoveAll, Path: path})
	return nil
}

func (r *Recorder) MkdirAll(path string, perm os.FileMode) error {
	if err := r.inner.MkdirAll(path, perm); err != nil {
		return err
	}
	r.record(Op{Kind: OpMkdirAll, Path: path, Perm: perm})
	return nil
}

func (r *Recorder) SyncDir(dir string) error {
	if err := r.inner.SyncDir(dir); err != nil {
		return err
	}
	r.record(Op{Kind: OpSyncDir, Path: dir})
	return nil
}

type recordedFile struct {
	r    *Recorder
	path string
	f    File
}

func (f *recordedFile) Write(p []byte) (int, error) {
	n, err := f.f.Write(p)
	if err != nil {
		return n, err
	}
	data := make([]byte, len(p))
	copy(data, p)
	f.r.record(Op{Kind: OpWrite, Path: f.path, Data: data})
	return n, nil
}

func (f *recordedFile) Sync() error {
	if err := f.f.Sync(); err != nil {
		return err
	}
	f.r.record(Op{Kind: OpSync, Path: f.path})
	return nil
}

func (f *recordedFile) Close() error {
	if err := f.f.Close(); err != nil {
		return err
	}
	f.r.record(Op{Kind: OpClose, Path: f.path})
	return nil
}

// RemapPrefix returns a path-rewriting function replacing the from
// directory prefix with to — the usual way to replay a trace recorded
// in one directory into another.
func RemapPrefix(from, to string) func(string) string {
	return func(p string) string {
		if p == from {
			return to
		}
		if strings.HasPrefix(p, from+string(os.PathSeparator)) {
			return to + p[len(from):]
		}
		return p
	}
}

// Replay applies the first n operations of a recorded trace to fsys,
// remapping every path through remap (nil = identity). With torn set
// and ops[n] a write, half of that write's payload is applied too —
// the crash image of a machine dying mid-write. Any handles still open
// after the prefix are closed (the data written through them stays, as
// it would on a real crash). Replay fails only on filesystem errors:
// a well-formed trace prefix always applies cleanly.
func Replay(fsys FS, ops []Op, n int, torn bool, remap func(string) string) error {
	if remap == nil {
		remap = func(p string) string { return p }
	}
	if n < 0 || n > len(ops) {
		return fmt.Errorf("faultfs: replay prefix %d out of range (trace has %d ops)", n, len(ops))
	}
	handles := make(map[string]File)
	defer func() {
		for _, f := range handles {
			f.Close()
		}
	}()
	apply := func(op Op, tear bool) error {
		switch op.Kind {
		case OpCreate:
			f, err := fsys.Create(remap(op.Path))
			if err != nil {
				return err
			}
			if old, ok := handles[op.Path]; ok {
				old.Close()
			}
			handles[op.Path] = f
			return nil
		case OpWrite:
			f, ok := handles[op.Path]
			if !ok {
				return fmt.Errorf("faultfs: replay: write to %s with no open handle", op.Path)
			}
			data := op.Data
			if tear {
				data = data[:len(data)/2]
			}
			_, err := f.Write(data)
			return err
		case OpSync:
			if f, ok := handles[op.Path]; ok {
				return f.Sync()
			}
			return nil
		case OpClose:
			if f, ok := handles[op.Path]; ok {
				delete(handles, op.Path)
				return f.Close()
			}
			return nil
		case OpRename:
			return fsys.Rename(remap(op.Path), remap(op.Path2))
		case OpRemove:
			return fsys.Remove(remap(op.Path))
		case OpRemoveAll:
			return fsys.RemoveAll(remap(op.Path))
		case OpMkdirAll:
			return fsys.MkdirAll(remap(op.Path), op.Perm)
		case OpSyncDir:
			return fsys.SyncDir(remap(op.Path))
		}
		return fmt.Errorf("faultfs: replay: unknown op kind %v", op.Kind)
	}
	for k := 0; k < n; k++ {
		if err := apply(ops[k], false); err != nil {
			return fmt.Errorf("faultfs: replay op %d (%v %s): %w", k, ops[k].Kind, ops[k].Path, err)
		}
	}
	if torn && n < len(ops) && ops[n].Kind == OpWrite {
		if err := apply(ops[n], true); err != nil {
			return fmt.Errorf("faultfs: replay torn op %d (%s): %w", n, ops[n].Path, err)
		}
	}
	return nil
}
