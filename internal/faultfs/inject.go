package faultfs

// inject.go is the deterministic fault injector: an FS wrapper that
// counts mutating operations and makes exactly one of them misbehave
// according to a schedule — an injected error, ENOSPC, a torn write
// (half the bytes reach the disk, then the machine "dies"), a short
// write, or a crash point after which every further operation fails as
// if the process had been killed. Because the experiment pipeline's
// write sequence is deterministic, (schedule, workload) reproduces the
// same failure byte-for-byte on every run.

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"syscall"
)

// Mode selects what happens at the scheduled operation.
type Mode int

// Fault modes.
const (
	// ModeError fails the scheduled operation with ErrInjected; later
	// operations proceed normally (a transient fault).
	ModeError Mode = iota
	// ModeENOSPC fails the scheduled operation with ENOSPC; later
	// operations proceed normally (the disk-full window passed).
	ModeENOSPC
	// ModeShort performs half of the scheduled write, returns a short
	// count with ErrInjected, and lets later operations proceed.
	ModeShort
	// ModeTorn performs half of the scheduled write and then freezes:
	// the write fails and every later operation fails with ErrCrashed,
	// as if power was lost mid-write.
	ModeTorn
	// ModeCrash freezes before the scheduled operation: it and every
	// later operation fail with ErrCrashed and touch nothing.
	ModeCrash
)

func (m Mode) String() string {
	switch m {
	case ModeError:
		return "error"
	case ModeENOSPC:
		return "enospc"
	case ModeShort:
		return "short"
	case ModeTorn:
		return "torn"
	case ModeCrash:
		return "crash"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Injection errors.
var (
	// ErrInjected is the generic injected failure.
	ErrInjected = errors.New("faultfs: injected fault")
	// ErrCrashed is returned by every operation after a crash point.
	ErrCrashed = errors.New("faultfs: crashed (I/O frozen)")
)

// Schedule names one fault: the 1-based index of the mutating operation
// to hit, and how it misbehaves. Operations are counted across the
// whole FS in call order: Create, each Write, Sync, Rename, Remove,
// RemoveAll, MkdirAll and SyncDir are one operation each (Close is
// free). Op 0 with ModeCrash crashes before any I/O.
type Schedule struct {
	Op   int
	Mode Mode
}

// Injected wraps an FS with one scheduled fault.
type Injected struct {
	inner FS

	mu      sync.Mutex
	sched   Schedule
	ops     int
	fired   bool
	crashed bool
}

// NewInjected returns an FS that behaves like inner except at the
// scheduled operation.
func NewInjected(inner FS, sched Schedule) *Injected {
	inj := &Injected{inner: inner, sched: sched}
	if sched.Mode == ModeCrash && sched.Op <= 0 {
		inj.crashed = true
	}
	return inj
}

// Ops returns how many mutating operations have been attempted so far —
// run a workload over an Injected with an out-of-range schedule (or over
// a Recorder) to discover a workload's operation count.
func (i *Injected) Ops() int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.ops
}

// Fired reports whether the scheduled fault has triggered.
func (i *Injected) Fired() bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.fired
}

// Crashed reports whether the FS is frozen (a torn write or crash point
// triggered).
func (i *Injected) Crashed() bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.crashed
}

// step accounts one operation and decides its fate: err non-nil means
// the operation must fail with that error without touching the inner
// FS; tear true means a write must deliver only half its payload (and,
// for ModeTorn, freeze afterwards).
func (i *Injected) step() (tear bool, err error) {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.crashed {
		return false, ErrCrashed
	}
	i.ops++
	if i.fired || i.ops != i.sched.Op {
		return false, nil
	}
	i.fired = true
	switch i.sched.Mode {
	case ModeError:
		return false, ErrInjected
	case ModeENOSPC:
		return false, fmt.Errorf("faultfs: injected fault: %w", syscall.ENOSPC)
	case ModeShort, ModeTorn:
		return true, nil
	case ModeCrash:
		i.crashed = true
		return false, ErrCrashed
	}
	return false, nil
}

func (i *Injected) Create(name string) (File, error) {
	if _, err := i.step(); err != nil {
		return nil, err
	}
	f, err := i.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &injectedFile{fs: i, f: f}, nil
}

func (i *Injected) Rename(oldpath, newpath string) error {
	if _, err := i.step(); err != nil {
		return err
	}
	return i.inner.Rename(oldpath, newpath)
}

func (i *Injected) Remove(name string) error {
	if _, err := i.step(); err != nil {
		return err
	}
	return i.inner.Remove(name)
}

func (i *Injected) RemoveAll(path string) error {
	if _, err := i.step(); err != nil {
		return err
	}
	return i.inner.RemoveAll(path)
}

func (i *Injected) MkdirAll(path string, perm os.FileMode) error {
	if _, err := i.step(); err != nil {
		return err
	}
	return i.inner.MkdirAll(path, perm)
}

func (i *Injected) SyncDir(dir string) error {
	if _, err := i.step(); err != nil {
		return err
	}
	return i.inner.SyncDir(dir)
}

type injectedFile struct {
	fs *Injected
	f  File
}

func (f *injectedFile) Write(p []byte) (int, error) {
	tear, err := f.fs.step()
	if err != nil {
		return 0, err
	}
	if tear {
		n, werr := f.f.Write(p[:len(p)/2])
		if f.fs.sched.Mode == ModeTorn {
			f.fs.mu.Lock()
			f.fs.crashed = true
			f.fs.mu.Unlock()
			if werr == nil {
				werr = ErrCrashed
			}
			return n, werr
		}
		if werr == nil {
			werr = fmt.Errorf("faultfs: injected short write: %w", ErrInjected)
		}
		return n, werr
	}
	return f.f.Write(p)
}

func (f *injectedFile) Sync() error {
	if _, err := f.fs.step(); err != nil {
		return err
	}
	return f.f.Sync()
}

// Close is not a counted operation, but a crashed FS refuses it too so
// no buffered state is flushed "after death".
func (f *injectedFile) Close() error {
	f.fs.mu.Lock()
	crashed := f.fs.crashed
	f.fs.mu.Unlock()
	closeErr := f.f.Close()
	if crashed {
		return ErrCrashed
	}
	return closeErr
}
