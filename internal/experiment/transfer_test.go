package experiment

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"dsprof/internal/faultfs"
)

// archiveRoundtrip saves the sample experiment, archives it, unpacks it
// elsewhere, and returns both directories plus the archive bytes.
func archiveRoundtrip(t *testing.T) (src, dst string, stream []byte) {
	t.Helper()
	root := t.TempDir()
	src = filepath.Join(root, "src.er")
	dst = filepath.Join(root, "dst.er")
	if err := sample().Save(src); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteArchive(&buf, src); err != nil {
		t.Fatal(err)
	}
	if err := ReadArchive(faultfs.OS, bytes.NewReader(buf.Bytes()), dst); err != nil {
		t.Fatal(err)
	}
	return src, dst, buf.Bytes()
}

func TestArchiveRoundtrip(t *testing.T) {
	src, dst, _ := archiveRoundtrip(t)
	// Every replicated file must be byte-identical to the source.
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		want, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(dst, e.Name()))
		if err != nil {
			t.Fatalf("replicated %s: %v", e.Name(), err)
		}
		if !bytes.Equal(want, got) {
			t.Errorf("replicated %s differs from source", e.Name())
		}
	}
	// The replica must pass manifest verification and load cleanly.
	if err := VerifyDir(dst); err != nil {
		t.Errorf("VerifyDir on replica: %v", err)
	}
	if _, err := Load(dst); err != nil {
		t.Errorf("loading replica: %v", err)
	}
}

func TestArchiveDetectsCorruption(t *testing.T) {
	_, _, stream := archiveRoundtrip(t)
	// Flip one byte at every offset region: header, payload, trailer.
	for _, off := range []int{3, len(stream) / 2, len(stream) - 2} {
		mutated := append([]byte(nil), stream...)
		mutated[off] ^= 0x40
		dst := filepath.Join(t.TempDir(), "bad.er")
		err := ReadArchive(faultfs.OS, bytes.NewReader(mutated), dst)
		if err == nil {
			// A payload flip can land in a file the frame checksum
			// catches only via the stream CRC — but some flips (e.g. in
			// manifest.json payload) survive framing and must then fail
			// verification instead.
			if verr := VerifyDir(dst); verr == nil {
				t.Errorf("bit flip at %d: archive read and verification both passed", off)
			}
			continue
		}
		if !errors.Is(err, ErrArchiveCorrupt) {
			t.Errorf("bit flip at %d: error %v does not wrap ErrArchiveCorrupt", off, err)
		}
	}
	// Truncations at any point must fail, never hang or panic.
	for _, cut := range []int{0, 4, len(stream) / 3, len(stream) - 3} {
		dst := filepath.Join(t.TempDir(), "cut.er")
		if err := ReadArchive(faultfs.OS, bytes.NewReader(stream[:cut]), dst); err == nil {
			t.Errorf("truncation at %d bytes read without error", cut)
		}
	}
}

func TestArchiveRejectsUnsafeNames(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "exp.er")
	if err := sample().Save(sub); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteArchive(&buf, sub); err != nil {
		t.Fatal(err)
	}
	// Patch the first frame's name to a traversal attempt of the same
	// length, fixing nothing else: the reader must reject it before
	// writing anything (the name check precedes the payload copy).
	stream := buf.Bytes()
	i := bytes.Index(stream, []byte("allocs.gob"))
	if i < 0 {
		t.Fatal("allocs.gob frame not found")
	}
	copy(stream[i:], "../zz.gob\x00"[:10])
	if err := ReadArchive(faultfs.OS, bytes.NewReader(stream), filepath.Join(dir, "out.er")); err == nil {
		t.Fatal("traversal name accepted")
	}
	if _, err := os.Stat(filepath.Join(dir, "zz.gob")); !os.IsNotExist(err) {
		t.Fatal("traversal name escaped the target directory")
	}
}

func TestVerifyDirCatchesTamper(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "exp.er")
	if err := sample().Save(dir); err != nil {
		t.Fatal(err)
	}
	if err := VerifyDir(dir); err != nil {
		t.Fatalf("intact dir: %v", err)
	}
	// Flip a byte inside the shard file: shard CRC must catch it.
	path := filepath.Join(dir, ShardFileName(0))
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 1
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := VerifyDir(dir); err == nil {
		t.Error("tampered shard passed VerifyDir")
	}
	b[len(b)-1] ^= 1
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := VerifyDir(dir); err != nil {
		t.Fatalf("restored dir: %v", err)
	}
	// A manifest-less directory is not admissible.
	if err := os.Remove(filepath.Join(dir, ManifestName)); err != nil {
		t.Fatal(err)
	}
	if err := VerifyDir(dir); !errors.Is(err, ErrMissingManifest) {
		t.Errorf("missing manifest: got %v, want ErrMissingManifest", err)
	}
}
