package experiment

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dsprof/internal/faultfs"
)

func shardEvents(n int) []HWCEvent {
	evs := make([]HWCEvent, n)
	for i := range evs {
		evs[i] = HWCEvent{PIC: 0, DeliveredPC: 0x1000 + uint64(4*i), Cycles: uint64(10 + i)}
	}
	return evs
}

func TestShardWriterRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hwc0.ev2")
	w, err := NewShardWriter(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	evs := shardEvents(2*DefaultShardEvents + 5)
	for _, ev := range evs {
		if err := w.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != len(evs) {
		t.Errorf("Count = %d, want %d", w.Count(), len(evs))
	}
	shards := w.Shards()
	if len(shards) != 3 {
		t.Fatalf("shards = %d, want 3", len(shards))
	}
	if shards[2].Count != 5 {
		t.Errorf("tail count = %d", shards[2].Count)
	}
	idx, err := readShardIndex(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != len(shards) {
		t.Fatalf("index has %d shards, wrote %d", len(idx), len(shards))
	}
	var got []HWCEvent
	for i, sh := range idx {
		if sh != shards[i] {
			t.Errorf("shard %d index mismatch: %+v vs %+v", i, sh, shards[i])
		}
		sevs, err := readShardFile(path, sh)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, sevs...)
	}
	if len(got) != len(evs) {
		t.Fatalf("read %d events, wrote %d", len(got), len(evs))
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], evs[i]) {
			t.Fatalf("event %d differs", i)
		}
	}
}

// TestShardWriterFlushPartial: Flush mid-stream writes the partial
// shard, so a cancelled collection keeps delivered events.
func TestShardWriterFlushPartial(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hwc1.ev2")
	w, err := NewShardWriter(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range shardEvents(3) {
		ev.PIC = 1
		if err := w.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	idx, err := readShardIndex(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 1 || idx[0].Count != 3 || idx[0].PIC != 1 {
		t.Fatalf("index = %+v", idx)
	}
	if idx[0].MinCycles != 10 || idx[0].MaxCycles != 12 {
		t.Errorf("cycle range = [%d,%d]", idx[0].MinCycles, idx[0].MaxCycles)
	}
}

func TestShardIndexTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hwc0.ev2")
	if _, err := writeShardFile(faultfs.OS, path, 0, shardEvents(10)); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{len(b) - 1, len(shardMagic) + shardHeaderBytes + 3, len(shardMagic) + 5, 3} {
		if err := os.WriteFile(path, b[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := readShardIndex(path, 0); err == nil {
			t.Errorf("cut=%d: truncated shard file indexed without error", cut)
		}
	}
}

func TestSyntheticShards(t *testing.T) {
	evs := shardEvents(DefaultShardEvents + 1)
	shards := syntheticShards(0, evs)
	if len(shards) != 2 || shards[0].Count != DefaultShardEvents || shards[1].Count != 1 {
		t.Fatalf("shards = %+v", shards)
	}
	if shards[1].MinCycles != evs[len(evs)-1].Cycles {
		t.Errorf("tail MinCycles = %d", shards[1].MinCycles)
	}
	if syntheticShards(0, nil) != nil {
		t.Error("synthetic shards of empty stream")
	}
}
