package experiment

// recover.go salvages crash-damaged experiment directories. The write
// path makes exactly one promise (see Save): every data file is either
// complete or detectably partial, and the manifest — written last —
// certifies completeness and carries per-shard checksums. Recover holds
// the read side of that promise: given a directory left behind by a
// crash (mid-collect, mid-Save, or mid-commit), it keeps the longest
// prefix of counter-event shards that is structurally whole, decodable,
// and checksum-clean, drops everything after the first damage, rewrites
// the directory so Load succeeds, and reports exactly what was lost with
// a typed error per loss.
//
// The floor for recovery is a readable meta header and program object:
// without the armed-counter specs and the profiled program no report can
// be built, so such directories are ErrUnrecoverable. Everything else —
// clock data, allocation data, the manifest, any suffix of the event
// stream — degrades gracefully.

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"dsprof/internal/faultfs"
	"dsprof/internal/machine"
)

// Typed recovery losses. Each Loss.Err in a RecoveryReport wraps one of
// these (or carries a descriptive validation error); errors.Is selects
// the category.
var (
	// ErrTruncatedHeader: a shard file ends inside a shard header (or
	// its magic), or the header bytes are implausible.
	ErrTruncatedHeader = errors.New("truncated shard header")
	// ErrTornShard: a shard's payload is cut off mid-write, or its gob
	// stream does not decode.
	ErrTornShard = errors.New("torn shard write")
	// ErrChecksumMismatch: a shard's payload bytes disagree with the
	// manifest checksum.
	ErrChecksumMismatch = errors.New("shard checksum mismatch")
	// ErrMissingManifest: the directory has no manifest.json, so shards
	// could only be validated structurally, not against checksums.
	ErrMissingManifest = errors.New("missing manifest")
	// ErrUnrecoverable: the meta header or program object is unreadable;
	// no report can be built from what remains.
	ErrUnrecoverable = errors.New("experiment unrecoverable")
)

// Loss records one thing recovery could not keep.
type Loss struct {
	File string // file the loss occurred in
	Err  error  // wraps a typed recovery error
}

// RecoveryReport says what Recover kept and what it lost.
type RecoveryReport struct {
	Dir        string
	Losses     []Loss
	ShardsKept [NumPICs]int
	ShardsLost [NumPICs]int // -1 when unknowable (no manifest and no structural evidence)
	EventsKept [NumPICs]int
	EventsLost [NumPICs]int // -1 when unknowable without a manifest
	// Provenance salvage, same semantics as the per-PIC fields.
	ProvShardsKept int
	ProvShardsLost int // -1 when unknowable
	ProvKept       int
	ProvLost       int // -1 when unknowable without a manifest
	ClockLost      bool
	AllocsLost     bool
	Clean          bool // nothing was wrong; the directory was left untouched
}

// Degraded reports whether anything was lost.
func (r *RecoveryReport) Degraded() bool { return len(r.Losses) > 0 }

// Summary renders the report's one-line degradation note — what Meta.
// Degraded is set to and what report headers warn with.
func (r *RecoveryReport) Summary() string {
	if !r.Degraded() {
		return ""
	}
	var parts []string
	for pic := 0; pic < NumPICs; pic++ {
		if r.ShardsLost[pic] == 0 && r.EventsLost[pic] == 0 {
			continue
		}
		switch {
		case r.EventsLost[pic] >= 0:
			parts = append(parts, fmt.Sprintf("pic%d lost %d shards (%d events)",
				pic, r.ShardsLost[pic], r.EventsLost[pic]))
		case r.ShardsLost[pic] >= 0:
			parts = append(parts, fmt.Sprintf("pic%d lost %d shards (event count unknown)",
				pic, r.ShardsLost[pic]))
		default:
			parts = append(parts, fmt.Sprintf("pic%d lost an unknown tail after shard %d",
				pic, r.ShardsKept[pic]-1))
		}
	}
	if r.ProvShardsLost != 0 || r.ProvLost != 0 {
		switch {
		case r.ProvLost >= 0:
			parts = append(parts, fmt.Sprintf("provenance lost %d shards (%d records)",
				r.ProvShardsLost, r.ProvLost))
		case r.ProvShardsLost >= 0:
			parts = append(parts, fmt.Sprintf("provenance lost %d shards (record count unknown)",
				r.ProvShardsLost))
		default:
			parts = append(parts, fmt.Sprintf("provenance lost an unknown tail after shard %d",
				r.ProvShardsKept-1))
		}
	}
	if r.ClockLost {
		parts = append(parts, "clock data lost")
	}
	if r.AllocsLost {
		parts = append(parts, "alloc data lost")
	}
	for _, l := range r.Losses {
		if errors.Is(l.Err, ErrMissingManifest) {
			parts = append(parts, "manifest missing (shards unverified)")
			break
		}
	}
	if len(parts) == 0 {
		parts = append(parts, "recovered after interrupted write")
	}
	return "recovered: " + strings.Join(parts, "; ")
}

func (r *RecoveryReport) addLoss(file string, err error) {
	r.Losses = append(r.Losses, Loss{File: file, Err: err})
}

// ProvisionalExitStatus marks a meta header written before its run
// completed. A spooled collect writes such a header (plus the program
// object) into the spool directory up front, so a crash at any point
// mid-run leaves a directory Recover can salvage: the spooled shard
// prefix becomes a degraded but analyzable experiment instead of an
// undiagnosable pile of files.
const ProvisionalExitStatus = "in progress"

// WriteProvisional writes the recovery floor into dir before a spooled
// run starts: the meta header (ExitStatus forced to
// ProvisionalExitStatus) and the program object. Save later overwrites
// both with their final contents.
func (e *Experiment) WriteProvisional(fsys faultfs.FS, dir string) error {
	fsys = faultfs.Or(fsys)
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	meta := e.Meta
	meta.FormatVersion = FormatVersion
	meta.ExitStatus = ProvisionalExitStatus
	if err := writeGob(fsys, dir, metaFile, &meta); err != nil {
		return err
	}
	if e.Prog != nil {
		var buf bytes.Buffer
		if err := e.Prog.Save(&buf); err != nil {
			return err
		}
		if err := writeFileAtomic(fsys, dir, progFile, buf.Bytes()); err != nil {
			return err
		}
	}
	return nil
}

// Recover salvages dir in place: it validates every file against the
// manifest, keeps the longest clean shard prefix per PIC, rewrites the
// directory (marking Meta.Degraded when anything was lost) so Load
// succeeds, and returns a report of exactly what was kept and lost. An
// intact directory is reported Clean and not rewritten. Only a
// directory without a readable meta header and program object fails,
// with an error wrapping ErrUnrecoverable.
func Recover(dir string) (*RecoveryReport, error) {
	return RecoverFS(faultfs.OS, dir)
}

// RecoverFS is Recover through a pluggable filesystem (reads stay on the
// real filesystem; only the repair writes go through fsys).
func RecoverFS(fsys faultfs.FS, dir string) (*RecoveryReport, error) {
	fsys = faultfs.Or(fsys)
	st, err := os.Stat(dir)
	if err != nil {
		return nil, fmt.Errorf("experiment %s: %w", dir, err)
	}
	if !st.IsDir() {
		return nil, fmt.Errorf("experiment %s: not a directory", dir)
	}
	rep := &RecoveryReport{Dir: dir}

	// Sweep temp files stranded between write and rename.
	strays, _ := filepath.Glob(filepath.Join(dir, "*.tmp"))
	for _, s := range strays {
		fsys.Remove(s)
	}
	dirty := len(strays) > 0

	// The recovery floor: header and program.
	e := &Experiment{}
	if err := readGob(dir, metaFile, &e.Meta); err != nil {
		return nil, fmt.Errorf("experiment %s: %w: reading meta: %v", dir, ErrUnrecoverable, err)
	}
	if v := e.Meta.FormatVersion; v < oldestReadableVersion || v > FormatVersion {
		return nil, fmt.Errorf("experiment %s: %w: format version %d, want %d..%d",
			dir, ErrUnrecoverable, v, oldestReadableVersion, FormatVersion)
	}
	if n := len(e.Meta.Counters); n != NumPICs {
		return nil, fmt.Errorf("experiment %s: %w: corrupted meta: %d counter slots, want %d",
			dir, ErrUnrecoverable, n, NumPICs)
	}
	prog, err := loadProgram(filepath.Join(dir, progFile))
	if err != nil {
		return nil, fmt.Errorf("experiment %s: %w: reading program: %v", dir, ErrUnrecoverable, err)
	}
	e.Prog = prog

	// Small side files degrade to empty.
	if err := readGob(dir, clockFile, &e.Clock); err != nil {
		rep.addLoss(clockFile, fmt.Errorf("%w (clock data dropped)", ErrTornShard))
		e.Clock, rep.ClockLost = nil, true
	}
	if err := readGob(dir, allocsFile, &e.Allocs); err != nil {
		rep.addLoss(allocsFile, fmt.Errorf("%w (alloc data dropped)", ErrTornShard))
		e.Allocs, rep.AllocsLost = nil, true
	}

	man, err := ReadManifest(dir)
	if err != nil {
		man = nil
		rep.addLoss(ManifestName, err)
	}

	for pic := 0; pic < NumPICs; pic++ {
		kept, shardsKept, lost, eventsLost, loss := recoverPIC(dir, pic, e.Meta, man)
		if loss != nil {
			rep.addLoss(shardLossFile(e.Meta.FormatVersion, pic), loss)
		}
		e.HWC[pic] = kept
		rep.ShardsKept[pic] = shardsKept
		rep.ShardsLost[pic] = lost
		rep.EventsKept[pic] = len(kept)
		rep.EventsLost[pic] = eventsLost
	}

	if e.Meta.FormatVersion >= 2 {
		kept, shardsKept, lost, recsLost, loss := recoverProv(dir, man)
		if loss != nil {
			rep.addLoss(ProvFileName, loss)
		}
		e.Prov = kept
		rep.ProvShardsKept = shardsKept
		rep.ProvShardsLost = lost
		rep.ProvKept = len(kept)
		rep.ProvLost = recsLost
	}

	if !dirty && !rep.Degraded() {
		rep.Clean = true
		return rep, nil
	}
	if rep.Degraded() {
		e.Meta.Degraded = rep.Summary()
	}
	if e.Meta.ExitStatus == "" {
		e.Meta.ExitStatus = "unknown (recovered)"
	}
	if err := e.SaveFS(fsys, dir); err != nil {
		return rep, fmt.Errorf("experiment %s: rewriting recovered experiment: %w", dir, err)
	}
	return rep, nil
}

// shardLossFile names the event file a PIC's loss is attributed to.
func shardLossFile(version, pic int) string {
	if version == 1 {
		if pic == 0 {
			return hwcFile0
		}
		return hwcFile1
	}
	return hwcV2Name(pic)
}

// recoverPIC salvages one PIC's event stream: the longest prefix of
// shards that is structurally whole, checksum-clean against the
// manifest (when one exists), gob-decodable, and consistent with the
// armed counters. It returns the kept events, the number of shards and
// events known lost (-1 when unknowable), and the typed loss that cut
// the prefix (nil if nothing was cut).
func recoverPIC(dir string, pic int, meta Meta, man *Manifest) (kept []HWCEvent, shardsKept, shardsLost, eventsLost int, loss error) {
	if meta.FormatVersion == 1 {
		// v1: one monolithic gob blob — it decodes whole or not at all.
		var evs []HWCEvent
		name := shardLossFile(1, pic)
		if err := readGob(dir, name, &evs); err != nil {
			if errors.Is(err, os.ErrNotExist) {
				return nil, 0, 0, 0, nil
			}
			return nil, 0, -1, -1, fmt.Errorf("%w: %v (whole v1 event blob dropped)", ErrTornShard, err)
		}
		if err := validateEvents(pic, evs, meta.Counters); err != nil {
			return nil, 0, -1, -1, fmt.Errorf("%s: %v (whole v1 event blob dropped)", name, err)
		}
		return evs, 1, 0, 0, nil
	}

	path := filepath.Join(dir, hwcV2Name(pic))
	shards, structLoss := scanShardPrefix(path, pic)

	// Checksum-validate the structural prefix against the manifest; the
	// first mismatch cuts the prefix there.
	var sums []ShardSum
	if man != nil {
		sums = man.Shards[pic]
		for i := range shards {
			if i >= len(sums) {
				// More shards on disk than the manifest certifies (a
				// stale manifest from an interrupted re-Save): the
				// uncertified tail cannot be trusted.
				shards = shards[:i]
				structLoss = fmt.Errorf("%s: shard %d: %w: shard not in manifest", path, i, ErrChecksumMismatch)
				break
			}
			if shards[i].length != sums[i].Bytes || shards[i].Count != sums[i].Count {
				shards = shards[:i]
				structLoss = fmt.Errorf("%s: shard %d: %w: size/count disagree with manifest", path, i, ErrChecksumMismatch)
				break
			}
			shards[i].crc = sums[i].CRC32
			shards[i].hasCRC = true
		}
		// A file cut exactly at a shard boundary scans clean but is
		// still short of what the manifest certifies.
		if structLoss == nil && len(shards) < len(sums) {
			structLoss = fmt.Errorf("%s: %w: %d shards on disk, manifest certifies %d",
				path, ErrTornShard, len(shards), len(sums))
		}
	}

	// Decode the prefix; ReadShard-level verification (checksum, gob,
	// header/event count agreement) can still cut it further.
	for i, sh := range shards {
		evs, err := readShardFile(path, sh)
		if err == nil {
			err = validateEvents(pic, evs, meta.Counters)
		}
		if err != nil {
			if !errors.Is(err, ErrChecksumMismatch) {
				err = fmt.Errorf("%w: %v", ErrTornShard, err)
			}
			shards = shards[:i]
			structLoss = err
			break
		}
		kept = append(kept, evs...)
	}

	if structLoss == nil {
		return kept, len(shards), 0, 0, nil
	}
	// Quantify the cut. With a manifest the exact event deficit is
	// known; without one, the tail length is unknowable.
	if sums != nil {
		shardsLost = len(sums) - len(shards)
		eventsLost = 0
		for _, s := range sums[len(shards):] {
			eventsLost += s.Count
		}
		return kept, len(shards), shardsLost, eventsLost, structLoss
	}
	return kept, len(shards), -1, -1, structLoss
}

// recoverProv salvages the provenance stream the same way recoverPIC
// salvages a PIC's events: longest structurally whole prefix, cut at the
// first manifest disagreement or decode failure, exact losses when the
// manifest quantifies them.
func recoverProv(dir string, man *Manifest) (kept []machine.ProvRecord, shardsKept, shardsLost, recsLost int, loss error) {
	path := filepath.Join(dir, ProvFileName)
	shards, structLoss := scanShardPrefixMagic(path, provMagic, provPIC)

	var sums []ShardSum
	if man != nil {
		sums = man.Prov
		for i := range shards {
			if i >= len(sums) {
				shards = shards[:i]
				structLoss = fmt.Errorf("%s: shard %d: %w: shard not in manifest", path, i, ErrChecksumMismatch)
				break
			}
			if shards[i].length != sums[i].Bytes || shards[i].Count != sums[i].Count {
				shards = shards[:i]
				structLoss = fmt.Errorf("%s: shard %d: %w: size/count disagree with manifest", path, i, ErrChecksumMismatch)
				break
			}
			shards[i].crc = sums[i].CRC32
			shards[i].hasCRC = true
		}
		if structLoss == nil && len(shards) < len(sums) {
			structLoss = fmt.Errorf("%s: %w: %d shards on disk, manifest certifies %d",
				path, ErrTornShard, len(shards), len(sums))
		}
	}

	for i, sh := range shards {
		recs, err := readProvShardFile(path, sh)
		if err != nil {
			if !errors.Is(err, ErrChecksumMismatch) {
				err = fmt.Errorf("%w: %v", ErrTornShard, err)
			}
			shards = shards[:i]
			structLoss = err
			break
		}
		kept = append(kept, recs...)
	}

	if structLoss == nil {
		return kept, len(shards), 0, 0, nil
	}
	if sums != nil {
		shardsLost = len(sums) - len(shards)
		recsLost = 0
		for _, s := range sums[len(shards):] {
			recsLost += s.Count
		}
		return kept, len(shards), shardsLost, recsLost, structLoss
	}
	return kept, len(shards), -1, -1, structLoss
}
