package experiment

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"dsprof/internal/machine"
)

// multiShardSample returns a sample experiment with enough PIC-0 events
// for exactly four v2 shards (three full, one 17-event tail).
func multiShardSample() *Experiment {
	e := sample()
	e.HWC[0] = nil
	for i := 0; i < 3*DefaultShardEvents+17; i++ {
		e.HWC[0] = append(e.HWC[0], HWCEvent{
			PIC: 0, DeliveredPC: machine.TextBase + 4, CandidatePC: machine.TextBase,
			EA: 0x40000000 + uint64(i), HasEA: true, Cycles: uint64(i) * 3,
		})
	}
	return e
}

// shardOffsets computes, from the manifest, the file offset where each
// PIC-0 shard's header begins (and, one past the end, where the file
// ends): offsets[k] = 8-byte magic + preceding (24-byte header + payload)
// records.
func shardOffsets(t *testing.T, man *Manifest) []int64 {
	t.Helper()
	offs := []int64{8}
	for _, s := range man.Shards[0] {
		offs = append(offs, offs[len(offs)-1]+24+s.Bytes)
	}
	return offs
}

func truncateAt(t *testing.T, path string, n int64) {
	t.Helper()
	if err := os.Truncate(path, n); err != nil {
		t.Fatal(err)
	}
}

func flipByteAt(t *testing.T, path string, off int64) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[off] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverTable drives Recover over every damage category the fault
// model defines. Each case must salvage exactly the validated shard
// prefix, report the loss with the right typed error, and leave a
// directory that loads with the prefix's events intact.
func TestRecoverTable(t *testing.T) {
	cases := []struct {
		name string
		// corrupt damages the saved directory; evPath is hwc0.ev2,
		// offs the shard-boundary offsets from the intact manifest.
		corrupt    func(t *testing.T, dir, evPath string, offs []int64, counts []int)
		wantErr    error                  // typed error the pic-0 (or manifest) loss must wrap
		keptShards int                    // shards salvaged on pic 0 (4 = all)
		lostEvents func(counts []int) int // -1 = unknowable
	}{
		{
			name: "truncated header",
			corrupt: func(t *testing.T, dir, evPath string, offs []int64, counts []int) {
				// Cut inside shard 2's 24-byte header.
				truncateAt(t, evPath, offs[2]+9)
			},
			wantErr:    ErrTruncatedHeader,
			keptShards: 2,
			lostEvents: func(c []int) int { return c[2] + c[3] },
		},
		{
			name: "torn mid-shard write",
			corrupt: func(t *testing.T, dir, evPath string, offs []int64, counts []int) {
				// Cut midway through shard 1's payload.
				truncateAt(t, evPath, offs[1]+24+(offs[2]-offs[1]-24)/2)
			},
			wantErr:    ErrTornShard,
			keptShards: 1,
			lostEvents: func(c []int) int { return c[1] + c[2] + c[3] },
		},
		{
			name: "truncated at shard boundary",
			corrupt: func(t *testing.T, dir, evPath string, offs []int64, counts []int) {
				// The file scans structurally clean at 3 shards; only the
				// manifest knows a 4th was certified.
				truncateAt(t, evPath, offs[3])
			},
			wantErr:    ErrTornShard,
			keptShards: 3,
			lostEvents: func(c []int) int { return c[3] },
		},
		{
			name: "missing manifest",
			corrupt: func(t *testing.T, dir, evPath string, offs []int64, counts []int) {
				if err := os.Remove(filepath.Join(dir, ManifestName)); err != nil {
					t.Fatal(err)
				}
			},
			wantErr:    ErrMissingManifest,
			keptShards: 4,
			lostEvents: func(c []int) int { return 0 },
		},
		{
			name: "checksum mismatch",
			corrupt: func(t *testing.T, dir, evPath string, offs []int64, counts []int) {
				// Flip one payload byte in shard 2: structure stays whole,
				// only the manifest checksum can catch it.
				flipByteAt(t, evPath, offs[2]+24+5)
			},
			wantErr:    ErrChecksumMismatch,
			keptShards: 2,
			lostEvents: func(c []int) int { return c[2] + c[3] },
		},
		{
			name: "stale manifest certifies fewer shards",
			corrupt: func(t *testing.T, dir, evPath string, offs []int64, counts []int) {
				// A manifest from before a re-Save appended shards: the
				// uncertified tail cannot be trusted.
				man, err := ReadManifest(dir)
				if err != nil {
					t.Fatal(err)
				}
				man.Shards[0] = man.Shards[0][:2]
				if err := writeManifestRaw(dir, man); err != nil {
					t.Fatal(err)
				}
			},
			wantErr:    ErrChecksumMismatch,
			keptShards: 2,
			// The uncertified tail never counted as validated data, so
			// zero *validated* events are reported lost.
			lostEvents: func(c []int) int { return 0 },
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := multiShardSample()
			dir := filepath.Join(t.TempDir(), "s.er")
			if err := e.Save(dir); err != nil {
				t.Fatal(err)
			}
			man, err := ReadManifest(dir)
			if err != nil {
				t.Fatal(err)
			}
			offs := shardOffsets(t, man)
			counts := make([]int, len(man.Shards[0]))
			for i, s := range man.Shards[0] {
				counts[i] = s.Count
			}
			evPath := filepath.Join(dir, hwcV2Name(0))
			tc.corrupt(t, dir, evPath, offs, counts)

			rep, err := Recover(dir)
			if err != nil {
				t.Fatalf("Recover: %v", err)
			}
			if rep.Clean {
				t.Fatal("damaged directory reported Clean")
			}
			var match bool
			for _, l := range rep.Losses {
				if errors.Is(l.Err, tc.wantErr) {
					match = true
				}
			}
			if !match {
				t.Errorf("losses %v carry no %v", rep.Losses, tc.wantErr)
			}
			if rep.ShardsKept[0] != tc.keptShards {
				t.Errorf("ShardsKept[0] = %d, want %d", rep.ShardsKept[0], tc.keptShards)
			}
			wantKept := 0
			for _, c := range counts[:tc.keptShards] {
				wantKept += c
			}
			if rep.EventsKept[0] != wantKept {
				t.Errorf("EventsKept[0] = %d, want %d", rep.EventsKept[0], wantKept)
			}
			if want := tc.lostEvents(counts); rep.EventsLost[0] != want {
				t.Errorf("EventsLost[0] = %d, want %d", rep.EventsLost[0], want)
			}

			// The rewritten directory must load, carry the degradation
			// note, and hold exactly the validated event prefix.
			back, err := Load(dir)
			if err != nil {
				t.Fatalf("Load after Recover: %v", err)
			}
			if back.Meta.Degraded == "" || !strings.HasPrefix(back.Meta.Degraded, "recovered:") {
				t.Errorf("Meta.Degraded = %q, want a recovery note", back.Meta.Degraded)
			}
			if len(back.HWC[0]) != wantKept {
				t.Fatalf("recovered experiment has %d events, want %d", len(back.HWC[0]), wantKept)
			}
			for i := range back.HWC[0] {
				if !reflect.DeepEqual(back.HWC[0][i], e.HWC[0][i]) {
					t.Fatalf("recovered event %d differs: %+v vs %+v", i, back.HWC[0][i], e.HWC[0][i])
				}
			}

			// A second recovery finds nothing more to fix (the degradation
			// note in meta is expected and not a defect).
			rep2, err := Recover(dir)
			if err != nil {
				t.Fatalf("second Recover: %v", err)
			}
			if !rep2.Clean {
				t.Errorf("second Recover not Clean: losses %v", rep2.Losses)
			}
		})
	}
}

// writeManifestRaw writes an explicit (possibly wrong) manifest, for
// stale-manifest tests.
func writeManifestRaw(dir string, m *Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, ManifestName), append(data, '\n'), 0o644)
}

// TestRecoverUnrecoverable: without a readable meta header or program
// object no report can be built; Recover must refuse with
// ErrUnrecoverable rather than fabricate an empty experiment.
func TestRecoverUnrecoverable(t *testing.T) {
	for _, file := range []string{metaFile, progFile} {
		t.Run(file, func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "s.er")
			if err := sample().Save(dir); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, file), []byte("garbage"), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := Recover(dir)
			if !errors.Is(err, ErrUnrecoverable) {
				t.Errorf("Recover with corrupt %s: %v, want ErrUnrecoverable", file, err)
			}
		})
	}
}

// TestRecoverSideFilesDegrade: damaged clock/alloc gobs degrade to empty
// with a loss entry instead of failing recovery.
func TestRecoverSideFilesDegrade(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "s.er")
	if err := sample().Save(dir); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{clockFile, allocsFile} {
		if err := os.WriteFile(filepath.Join(dir, f), []byte{0x13}, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ClockLost || !rep.AllocsLost {
		t.Errorf("ClockLost=%v AllocsLost=%v, want both true", rep.ClockLost, rep.AllocsLost)
	}
	back, err := Load(dir)
	if err != nil {
		t.Fatalf("Load after Recover: %v", err)
	}
	if len(back.Clock) != 0 || len(back.Allocs) != 0 {
		t.Errorf("degraded side data not emptied: %d clock, %d allocs", len(back.Clock), len(back.Allocs))
	}
	for _, want := range []string{"clock data lost", "alloc data lost"} {
		if !strings.Contains(back.Meta.Degraded, want) {
			t.Errorf("Meta.Degraded = %q, missing %q", back.Meta.Degraded, want)
		}
	}
}

// TestRecoverProvisional: a spool directory holding only the provisional
// header, program, and a shard prefix — the state a crash mid-collect
// leaves behind — recovers into a loadable degraded experiment.
func TestRecoverProvisional(t *testing.T) {
	e := multiShardSample()
	dir := filepath.Join(t.TempDir(), "spool.er")
	if err := e.WriteProvisional(nil, dir); err != nil {
		t.Fatal(err)
	}
	// Spool two full shards, as the collector would have before dying.
	w, err := NewShardWriter(filepath.Join(dir, hwcV2Name(0)), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range e.HWC[0][:2*DefaultShardEvents] {
		if err := w.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean {
		t.Error("provisional directory reported Clean")
	}
	back, err := Load(dir)
	if err != nil {
		t.Fatalf("Load after Recover: %v", err)
	}
	if len(back.HWC[0]) != 2*DefaultShardEvents {
		t.Errorf("recovered %d spooled events, want %d", len(back.HWC[0]), 2*DefaultShardEvents)
	}
	if back.Meta.ExitStatus != ProvisionalExitStatus {
		t.Errorf("ExitStatus = %q, want the provisional marker preserved", back.Meta.ExitStatus)
	}
	if back.Meta.Degraded == "" {
		t.Error("recovered provisional experiment carries no degradation note")
	}
}
