package experiment

// shard.go implements the format-v2 counter-event files: instead of one
// monolithic gob blob per PIC (format v1), events are appended in
// fixed-size shards — length-prefixed chunks, each carrying its own
// event count and cycle range in a binary header, each independently
// gob-decodable. The collector appends shards as events are produced
// (and flushes the partial tail shard on cancellation), and the
// analyzer's sharded reduction reads disjoint shards in parallel
// without ever materializing the whole event stream.
//
// File layout (hwc0.ev2 / hwc1.ev2):
//
//	magic "dsprofe2" (8 bytes)
//	shard*:
//	  header (24 bytes, little-endian):
//	    uint32 payload length in bytes
//	    uint32 event count
//	    uint64 min Cycles in the shard
//	    uint64 max Cycles in the shard
//	  payload: a fresh gob stream encoding []HWCEvent
//
// The file ends at EOF after the last shard; a truncated tail (crash
// mid-append) is detected by the length prefix and reported as a
// corruption error, never a panic.

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"dsprof/internal/faultfs"
)

// shardMagic begins every v2 counter-event file.
const shardMagic = "dsprofe2"

// DefaultShardEvents is the fixed shard size: how many counter events
// one shard holds (the tail shard of a file may hold fewer). It
// balances decode granularity for the parallel reduction against
// per-shard header and gob-stream overhead.
const DefaultShardEvents = 4096

// shardHeaderBytes is the size of the binary per-shard header.
const shardHeaderBytes = 24

// maxShardPayload bounds a single shard's payload so a corrupted length
// prefix cannot drive a multi-gigabyte allocation.
const maxShardPayload = 1 << 28

// Shard describes one chunk of a counter-event stream: its event count
// and cycle range (from the shard header), and where its payload lives.
// Shards are the unit of the analyzer's parallel reduction and of
// profd's per-shard memoization.
type Shard struct {
	PIC       int
	Index     int
	Count     int
	MinCycles uint64
	MaxCycles uint64

	offset int64 // payload offset in the shard file (0 for in-memory shards)
	length int64 // payload length in bytes (0 for in-memory shards)

	// Manifest-sourced payload checksum. When hasCRC is set, ReadShard
	// verifies the raw payload bytes against crc before decoding, so a
	// bit flip inside a shard is reported as a checksum mismatch rather
	// than a gob decode error (or worse, silently wrong events).
	crc    uint32
	hasCRC bool
}

// ShardWriter appends counter events to a v2 shard file, flushing a
// shard every DefaultShardEvents events. It is the collector's sink:
// events stream to disk as they are produced, so collection memory does
// not grow with run length, and Flush writes the partial tail shard so
// a cancelled run still leaves a readable experiment.
type ShardWriter struct {
	f      faultfs.File
	pic    int
	limit  int
	buf    []HWCEvent
	shards []Shard
	count  int
	off    int64
	err    error
}

// NewShardWriter creates (truncating) the shard file at path for the
// given PIC on the real filesystem.
func NewShardWriter(path string, pic int) (*ShardWriter, error) {
	return NewShardWriterFS(faultfs.OS, path, pic)
}

// NewShardWriterFS is NewShardWriter through a pluggable filesystem, the
// collector's spool seam for fault injection and crash-trace recording.
func NewShardWriterFS(fsys faultfs.FS, path string, pic int) (*ShardWriter, error) {
	f, err := faultfs.Or(fsys).Create(path)
	if err != nil {
		return nil, fmt.Errorf("experiment: shard file: %w", err)
	}
	if _, err := f.Write([]byte(shardMagic)); err != nil {
		f.Close()
		return nil, fmt.Errorf("experiment: shard file: %w", err)
	}
	return &ShardWriter{
		f:     f,
		pic:   pic,
		limit: DefaultShardEvents,
		buf:   make([]HWCEvent, 0, DefaultShardEvents),
		off:   int64(len(shardMagic)),
	}, nil
}

// SetShardEvents overrides the shard size for subsequently flushed
// shards. The fault soak uses small shards so a short collect still
// crosses many shard boundaries; n <= 0 keeps the current size.
func (w *ShardWriter) SetShardEvents(n int) {
	if n > 0 {
		w.limit = n
	}
}

// Append buffers one event, writing a full shard to disk whenever the
// fixed shard size is reached.
func (w *ShardWriter) Append(ev HWCEvent) error {
	if w.err != nil {
		return w.err
	}
	w.buf = append(w.buf, ev)
	if len(w.buf) >= w.limit {
		return w.Flush()
	}
	return nil
}

// Flush writes the buffered (possibly partial) shard. It is called on
// run completion and on cancellation, so interrupted collections keep
// every event delivered before the cut.
func (w *ShardWriter) Flush() error {
	if w.err != nil {
		return w.err
	}
	if len(w.buf) == 0 {
		return nil
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(w.buf); err != nil {
		w.err = fmt.Errorf("experiment: encoding shard: %w", err)
		return w.err
	}
	sh := Shard{
		PIC:       w.pic,
		Index:     len(w.shards),
		Count:     len(w.buf),
		MinCycles: w.buf[0].Cycles,
		MaxCycles: w.buf[0].Cycles,
		offset:    w.off + shardHeaderBytes,
		length:    int64(payload.Len()),
	}
	for _, ev := range w.buf {
		if ev.Cycles < sh.MinCycles {
			sh.MinCycles = ev.Cycles
		}
		if ev.Cycles > sh.MaxCycles {
			sh.MaxCycles = ev.Cycles
		}
	}
	var hdr [shardHeaderBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(payload.Len()))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(sh.Count))
	binary.LittleEndian.PutUint64(hdr[8:], sh.MinCycles)
	binary.LittleEndian.PutUint64(hdr[16:], sh.MaxCycles)
	if _, err := w.f.Write(hdr[:]); err != nil {
		w.err = fmt.Errorf("experiment: writing shard header: %w", err)
		return w.err
	}
	if _, err := w.f.Write(payload.Bytes()); err != nil {
		w.err = fmt.Errorf("experiment: writing shard payload: %w", err)
		return w.err
	}
	w.shards = append(w.shards, sh)
	w.count += sh.Count
	w.off += shardHeaderBytes + int64(payload.Len())
	w.buf = w.buf[:0]
	return nil
}

// Close flushes the tail shard and closes the file.
func (w *ShardWriter) Close() error {
	flushErr := w.Flush()
	closeErr := w.f.Close()
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}

// Shards returns the shard table written so far.
func (w *ShardWriter) Shards() []Shard { return w.shards }

// Count returns the number of events written (flushed) so far.
func (w *ShardWriter) Count() int { return w.count }

// readShardIndex scans a v2 shard file's headers (seeking over the
// payloads) and returns the shard table. A missing file means zero
// events (a PIC with no armed counter writes no file).
func readShardIndex(path string, pic int) ([]Shard, error) {
	return readShardIndexMagic(path, shardMagic, pic)
}

// readShardIndexMagic is readShardIndex for any shard-kind magic; the
// header layout is shared between counter-event and provenance files.
func readShardIndexMagic(path, wantMagic string, pic int) ([]Shard, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	magic := make([]byte, len(wantMagic))
	if _, err := io.ReadFull(f, magic); err != nil {
		return nil, fmt.Errorf("corrupted %s: short magic", path)
	}
	if string(magic) != wantMagic {
		return nil, fmt.Errorf("corrupted %s: bad magic %q", path, magic)
	}
	var shards []Shard
	off := int64(len(wantMagic))
	for {
		var hdr [shardHeaderBytes]byte
		_, err := io.ReadFull(f, hdr[:])
		if err == io.EOF {
			return shards, nil
		}
		if err != nil {
			return nil, fmt.Errorf("corrupted %s: truncated shard header", path)
		}
		length := int64(binary.LittleEndian.Uint32(hdr[0:]))
		count := int(binary.LittleEndian.Uint32(hdr[4:]))
		if length <= 0 || length > maxShardPayload || count <= 0 {
			return nil, fmt.Errorf("corrupted %s: shard %d: implausible header (len %d, count %d)",
				path, len(shards), length, count)
		}
		sh := Shard{
			PIC:       pic,
			Index:     len(shards),
			Count:     count,
			MinCycles: binary.LittleEndian.Uint64(hdr[8:]),
			MaxCycles: binary.LittleEndian.Uint64(hdr[16:]),
			offset:    off + shardHeaderBytes,
			length:    length,
		}
		if _, err := f.Seek(length, io.SeekCurrent); err != nil {
			return nil, fmt.Errorf("corrupted %s: shard %d: %v", path, len(shards), err)
		}
		// Seek past EOF succeeds silently; verify the payload is really
		// there by checking the next read position against file size.
		pos, _ := f.Seek(0, io.SeekCurrent)
		if st, err := f.Stat(); err == nil && pos > st.Size() {
			return nil, fmt.Errorf("corrupted %s: shard %d: truncated payload", path, len(shards))
		}
		off = sh.offset + length
		shards = append(shards, sh)
	}
}

// readShardFile decodes one shard's payload from a v2 shard file,
// first verifying the payload checksum when the shard carries one (from
// the experiment manifest). Decoding never panics even on corrupted
// payload bytes.
func readShardFile(path string, sh Shard) ([]HWCEvent, error) {
	return decodeShardPayload[HWCEvent](path, sh)
}

// decodeShardPayload is the shard-kind-independent payload reader: CRC
// verification against the manifest when present, panic-safe gob decode,
// record-count cross-check against the header.
func decodeShardPayload[T any](path string, sh Shard) (recs []T, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	defer func() {
		if r := recover(); r != nil {
			recs, err = nil, fmt.Errorf("corrupted %s: shard %d: %v", path, sh.Index, r)
		}
	}()
	var payload io.Reader = io.NewSectionReader(f, sh.offset, sh.length)
	if sh.hasCRC {
		raw := make([]byte, sh.length)
		if _, err := io.ReadFull(payload.(*io.SectionReader), raw); err != nil {
			return nil, fmt.Errorf("corrupted %s: shard %d: truncated payload", path, sh.Index)
		}
		if got := crc32.ChecksumIEEE(raw); got != sh.crc {
			return nil, fmt.Errorf("corrupted %s: shard %d: %w (crc %08x, manifest says %08x)",
				path, sh.Index, ErrChecksumMismatch, got, sh.crc)
		}
		payload = bytes.NewReader(raw)
	}
	if err := gob.NewDecoder(payload).Decode(&recs); err != nil {
		return nil, fmt.Errorf("corrupted %s: shard %d: %w", path, sh.Index, err)
	}
	if len(recs) != sh.Count {
		return nil, fmt.Errorf("corrupted %s: shard %d: %d records, header says %d",
			path, sh.Index, len(recs), sh.Count)
	}
	return recs, nil
}

// writeShardFile writes one PIC's in-memory events as a v2 shard file
// and returns the shard table. No file is written when evs is empty.
func writeShardFile(fsys faultfs.FS, path string, pic int, evs []HWCEvent) ([]Shard, error) {
	if len(evs) == 0 {
		return nil, nil
	}
	w, err := NewShardWriterFS(fsys, path, pic)
	if err != nil {
		return nil, err
	}
	for _, ev := range evs {
		if err := w.Append(ev); err != nil {
			w.Close()
			return nil, err
		}
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return w.Shards(), nil
}

// scanShardPrefix is the recovery-path variant of readShardIndex: it
// scans as many structurally valid shards as the file holds and, instead
// of failing on a damaged tail, returns the good prefix plus a typed
// loss describing the cut — ErrTruncatedHeader for a short or
// implausible header (including a missing/short magic), ErrTornShard for
// a payload cut off mid-write. A missing file is zero shards and no
// loss. The returned prefix is structural only; checksum validation
// against the manifest is the caller's job.
func scanShardPrefix(path string, pic int) (shards []Shard, loss error) {
	return scanShardPrefixMagic(path, shardMagic, pic)
}

// scanShardPrefixMagic is scanShardPrefix for any shard-kind magic.
func scanShardPrefixMagic(path, wantMagic string, pic int) (shards []Shard, loss error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("%s: %w: %v", path, ErrTornShard, err)
	}
	defer f.Close()
	size := int64(0)
	if st, err := f.Stat(); err == nil {
		size = st.Size()
	}
	magic := make([]byte, len(wantMagic))
	if _, err := io.ReadFull(f, magic); err != nil || string(magic) != wantMagic {
		return nil, fmt.Errorf("%s: %w: bad or short magic", path, ErrTruncatedHeader)
	}
	off := int64(len(wantMagic))
	for off < size {
		if size-off < shardHeaderBytes {
			return shards, fmt.Errorf("%s: shard %d: %w: %d trailing bytes",
				path, len(shards), ErrTruncatedHeader, size-off)
		}
		var hdr [shardHeaderBytes]byte
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			return shards, fmt.Errorf("%s: shard %d: %w", path, len(shards), ErrTruncatedHeader)
		}
		length := int64(binary.LittleEndian.Uint32(hdr[0:]))
		count := int(binary.LittleEndian.Uint32(hdr[4:]))
		if length <= 0 || length > maxShardPayload || count <= 0 {
			return shards, fmt.Errorf("%s: shard %d: %w: implausible header (len %d, count %d)",
				path, len(shards), ErrTruncatedHeader, length, count)
		}
		if size-off-shardHeaderBytes < length {
			return shards, fmt.Errorf("%s: shard %d: %w: payload %d bytes, %d on disk",
				path, len(shards), ErrTornShard, length, size-off-shardHeaderBytes)
		}
		sh := Shard{
			PIC:       pic,
			Index:     len(shards),
			Count:     count,
			MinCycles: binary.LittleEndian.Uint64(hdr[8:]),
			MaxCycles: binary.LittleEndian.Uint64(hdr[16:]),
			offset:    off + shardHeaderBytes,
			length:    length,
		}
		if _, err := f.Seek(length, io.SeekCurrent); err != nil {
			return shards, fmt.Errorf("%s: shard %d: %w: %v", path, len(shards), ErrTornShard, err)
		}
		off = sh.offset + length
		shards = append(shards, sh)
	}
	return shards, nil
}

// syntheticShards slices an in-memory event stream into fixed-size
// shard descriptors, so experiments that never touched disk (or were
// loaded eagerly) expose the same sharded view the parallel reduction
// consumes.
func syntheticShards(pic int, evs []HWCEvent) []Shard {
	if len(evs) == 0 {
		return nil
	}
	n := (len(evs) + DefaultShardEvents - 1) / DefaultShardEvents
	shards := make([]Shard, 0, n)
	for i := 0; i < n; i++ {
		lo := i * DefaultShardEvents
		hi := lo + DefaultShardEvents
		if hi > len(evs) {
			hi = len(evs)
		}
		sh := Shard{PIC: pic, Index: i, Count: hi - lo, MinCycles: evs[lo].Cycles, MaxCycles: evs[lo].Cycles}
		for _, ev := range evs[lo:hi] {
			if ev.Cycles < sh.MinCycles {
				sh.MinCycles = ev.Cycles
			}
			if ev.Cycles > sh.MaxCycles {
				sh.MaxCycles = ev.Cycles
			}
		}
		shards = append(shards, sh)
	}
	return shards
}
